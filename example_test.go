package parsecureml_test

import (
	"fmt"

	"parsecureml"
)

// A single protected multiplication: the client's matrices are split into
// additive shares, the servers run the Beaver protocol, and the merged
// product matches plaintext within float tolerance.
func ExampleFramework_SecureMatMul() {
	cfg := parsecureml.DefaultConfig()
	cfg.TensorCores = false
	fw := parsecureml.New(cfg)

	a := parsecureml.MatrixFromSlice(2, 2, []float32{1, 2, 3, 4})
	b := parsecureml.MatrixFromSlice(2, 2, []float32{5, 6, 7, 8})
	c, _ := fw.SecureMatMul("example", a, b)

	fmt.Printf("%.0f %.0f\n", c.At(0, 0), c.At(0, 1))
	fmt.Printf("%.0f %.0f\n", c.At(1, 0), c.At(1, 1))
	// Output:
	// 19 22
	// 43 50
}

// Secure training end to end: prepare the offline material, run SGD on
// shares, and reveal the trained model to the client.
func ExampleFramework_Secure() {
	cfg := parsecureml.SecureMLBaselineConfig()
	fw := parsecureml.New(cfg)

	plain := parsecureml.NewLinearRegression(2, parsecureml.NewRand(1))
	model := fw.Secure(plain, parsecureml.MSE)

	// y = x0 + 2*x1, four samples.
	x := parsecureml.MatrixFromSlice(4, 2, []float32{1, 0, 0, 1, 1, 1, 2, 1})
	y := parsecureml.MatrixFromSlice(4, 1, []float32{1, 2, 3, 4})
	model.Prepare([]*parsecureml.Matrix{x}, []*parsecureml.Matrix{y})
	model.TrainEpochs(400, 0.2)

	model.RevealInto(plain)
	pred := plain.Predict(x)
	fmt.Printf("max error %.2f\n", pred.MaxAbsDiff(y))
	// Output:
	// max error 0.00
}
