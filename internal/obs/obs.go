// Package obs is the runtime observability layer: dependency-free
// counters, gauges, and duration histograms cheap enough for the serving
// hot path, a structured event logger, and a Prometheus-text exposition
// endpoint. The paper's whole method is profiling-guided — it decides
// what runs where by measuring the offline Z = U×V phase, the online
// Eq. (8) phase, reconstruction, and inter-node transfer — so the
// serving stack publishes exactly those phases as metrics instead of
// relying on ad-hoc log lines.
//
// Hot-path contract: Observe/Inc/Add/Set are single atomic operations on
// preallocated storage and never allocate, so instrumenting the wire
// serving path does not move its allocs/op (the BENCH_wire.json
// baseline). Scrape-side work (quantiles, text rendering) happens only
// when /metrics is read.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, which double as the Prometheus TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// entry is one registered metric: a family name, an optional fixed label
// set (the `phase="gemm"` inside the braces), and exactly one backing
// store.
type entry struct {
	family string
	labels string // contents of the braces, "" when unlabeled
	help   string
	kind   string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // read-only collector (counter or gauge kind)
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Metric constructors are get-or-create: asking for an existing
// name+labels returns the same instance (and panics if the kind
// differs), so package-level instrumentation can be initialized from
// several places without coordination.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// Default is the process-wide registry; package-level instrumentation
// registers here and cmd binaries expose it via DebugMux.
var Default = NewRegistry()

// splitName separates `family{labels}` into its parts. Panics on a
// malformed name — registration happens at init time, so this is a
// programming error, not an operational one.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if !strings.HasSuffix(name, "}") {
		panic(fmt.Sprintf("obs: malformed metric name %q", name))
	}
	return name[:i], name[i+1 : len(name)-1]
}

// register returns the existing entry for name or creates one via make.
func (r *Registry) register(name, help, kind string, make func(*entry)) *entry {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{family: family, labels: labels, help: help, kind: kind}
	make(e)
	r.entries = append(r.entries, e)
	r.byKey[name] = e
	return e
}

// Counter returns the counter registered under name (which may carry a
// fixed label set, e.g. `psml_requests_total{path="wire"}`), creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// Histogram returns the duration histogram registered under name with the
// default bounds, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram, func(e *entry) { e.hist = NewHistogram(nil) }).hist
}

// FuncCounter registers a read-only collector rendered as a counter:
// fn is called at scrape time. For totals owned by packages that should
// not depend on obs (comm byte counts, tensor pool hits).
func (r *Registry) FuncCounter(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, func(e *entry) { e.fn = fn })
}

// FuncGauge registers a read-only collector rendered as a gauge.
func (r *Registry) FuncGauge(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, func(e *entry) { e.fn = fn })
}

// writeNum renders a float the way Prometheus expects (integers without
// an exponent, everything else in shortest form).
func writeNum(w io.Writer, v float64) {
	if v == float64(int64(v)) {
		fmt.Fprintf(w, "%d", int64(v))
		return
	}
	fmt.Fprintf(w, "%g", v)
}

// sample writes one exposition line: name, optional label block, value.
func sample(w io.Writer, name, labels string, v float64) {
	io.WriteString(w, name)
	if labels != "" {
		io.WriteString(w, "{")
		io.WriteString(w, labels)
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	writeNum(w, v)
	io.WriteString(w, "\n")
}

// joinLabels merges a fixed label block with one extra label (the
// histogram `le`).
func joinLabels(fixed, extra string) string {
	if fixed == "" {
		return extra
	}
	return fixed + "," + extra
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, grouping samples by family (HELP/TYPE emitted once
// per family, in first-registration order).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	// Group by family, preserving first-registration order.
	var families []string
	byFamily := make(map[string][]*entry)
	for _, e := range entries {
		if _, ok := byFamily[e.family]; !ok {
			families = append(families, e.family)
		}
		byFamily[e.family] = append(byFamily[e.family], e)
	}
	for _, fam := range families {
		group := byFamily[fam]
		if group[0].help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, group[0].help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, group[0].kind)
		for _, e := range group {
			switch {
			case e.counter != nil:
				sample(w, fam, e.labels, float64(e.counter.Value()))
			case e.gauge != nil:
				sample(w, fam, e.labels, float64(e.gauge.Value()))
			case e.fn != nil:
				sample(w, fam, e.labels, e.fn())
			case e.hist != nil:
				snap := e.hist.snapshot()
				cum := uint64(0)
				for i, c := range snap.counts {
					cum += c
					sample(w, fam+"_bucket", joinLabels(e.labels, e.hist.leLabels[i]), float64(cum))
				}
				sample(w, fam+"_sum", e.labels, snap.sum.Seconds())
				sample(w, fam+"_count", e.labels, float64(snap.count))
			}
		}
	}
}
