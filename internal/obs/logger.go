package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger is a small structured event logger in logfmt style:
//
//	ts=2026-08-05T12:00:00.000Z level=info event=session_start party=0
//
// It replaces the ad-hoc Logf plumbing: the serving layer emits events,
// and because the logger shares counters with the metrics registry, the
// event stream and /metrics agree by construction (every Error also
// shows up in psml_log_errors_total). A nil *Logger discards everything,
// so call sites never nil-check.
//
// Logging happens on session boundaries and failures, not on the
// per-request hot path, so the formatting cost is irrelevant; the buffer
// is still reused under the lock to keep steady churn off the GC.
type Logger struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	events  *Counter
	errors  *Counter
	timeNow func() time.Time // test hook; nil means time.Now
}

// NewLogger returns a logger writing to w. When reg is non-nil the
// logger registers psml_log_events_total / psml_log_errors_total there
// and bumps them on every emission.
func NewLogger(w io.Writer, reg *Registry) *Logger {
	l := &Logger{w: w}
	if reg != nil {
		l.events = reg.Counter("psml_log_events_total", "Structured log events emitted.")
		l.errors = reg.Counter("psml_log_errors_total", "Structured log error events emitted.")
	}
	return l
}

// LogfLogger adapts a printf-style sink (log.Printf, testing.T.Logf) into
// a Logger: each event renders to one formatted line. Counters are not
// registered; pass the result only where a Logger is expected.
func LogfLogger(logf func(format string, args ...any)) *Logger {
	return NewLogger(logfWriter{logf}, nil)
}

type logfWriter struct {
	logf func(format string, args ...any)
}

func (w logfWriter) Write(p []byte) (int, error) {
	w.logf("%s", strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

// appendValue renders one logfmt value, quoting anything with spaces,
// quotes, or '=' so lines stay machine-splittable.
func appendValue(buf []byte, v any) []byte {
	s, ok := v.(string)
	if !ok {
		if err, isErr := v.(error); isErr {
			s = err.Error()
		} else {
			s = fmt.Sprint(v)
		}
	}
	if strings.ContainsAny(s, " \"=\n") || s == "" {
		return fmt.Appendf(buf, "%q", s)
	}
	return append(buf, s...)
}

// emit renders and writes one line: ts, level, event, then the key/value
// pairs (alternating key string, value).
func (l *Logger) emit(level, event string, kv []any) {
	if l == nil || l.w == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now
	if l.timeNow != nil {
		now = l.timeNow
	}
	buf := l.buf[:0]
	buf = append(buf, "ts="...)
	buf = now().UTC().AppendFormat(buf, "2006-01-02T15:04:05.000Z")
	buf = append(buf, " level="...)
	buf = append(buf, level...)
	buf = append(buf, " event="...)
	buf = appendValue(buf, event)
	for i := 0; i+1 < len(kv); i += 2 {
		buf = append(buf, ' ')
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		buf = append(buf, key...)
		buf = append(buf, '=')
		buf = appendValue(buf, kv[i+1])
	}
	buf = append(buf, '\n')
	l.buf = buf
	l.w.Write(buf)
}

// Event emits one info-level event with alternating key/value pairs.
func (l *Logger) Event(event string, kv ...any) {
	if l == nil {
		return
	}
	if l.events != nil {
		l.events.Inc()
	}
	l.emit("info", event, kv)
}

// Error emits one error-level event carrying err, and counts it.
func (l *Logger) Error(event string, err error, kv ...any) {
	if l == nil {
		return
	}
	if l.events != nil {
		l.events.Inc()
	}
	if l.errors != nil {
		l.errors.Inc()
	}
	l.emit("error", event, append([]any{"err", err}, kv...))
}
