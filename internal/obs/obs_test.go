package obs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 1..1000 ms uniformly: p50 ≈ 500ms, p95 ≈ 950ms, p99 ≈ 990ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// The 1-2-5 series is coarse; the estimate must land within the
		// true value's bucket (at most a factor 2.5 wide).
		lo, hi := c.want/3, c.want*3
		if got < lo || got > hi {
			t.Errorf("p%g = %v, want within [%v, %v]", c.q*100, got, lo, hi)
		}
	}
	if h.Quantile(1.0) < h.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(-time.Second) // clamps to zero, lands in the first bucket
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got > time.Microsecond {
		t.Errorf("clamped observation p50 = %v", got)
	}
	// Beyond the last bound lands in +Inf and reports the last edge.
	h2 := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h2.Observe(time.Hour)
	if got := h2.Quantile(0.99); got != time.Second {
		t.Errorf("+Inf bucket quantile = %v, want last bound", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		i := i
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(time.Duration(i+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	sumFromBuckets := uint64(0)
	for i := range h.counts {
		sumFromBuckets += h.counts[i].Load()
	}
	if sumFromBuckets != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sumFromBuckets, workers*per)
	}
}

func TestSpan(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Start()
	time.Sleep(time.Millisecond)
	d := s.Stop()
	if d < time.Millisecond {
		t.Fatalf("span measured %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("psml_requests_total", "Requests.").Add(3)
	r.Gauge("psml_sessions_active", "Active sessions.").Set(2)
	r.Histogram(`psml_phase_seconds{phase="gemm"}`, "Phase timings.").Observe(3 * time.Millisecond)
	r.Histogram(`psml_phase_seconds{phase="exchange"}`, "Phase timings.").Observe(70 * time.Millisecond)
	r.FuncCounter("psml_pool_hits_total", "Pool hits.", func() float64 { return 9 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE psml_requests_total counter",
		"psml_requests_total 3",
		"# TYPE psml_sessions_active gauge",
		"psml_sessions_active 2",
		"# TYPE psml_phase_seconds histogram",
		`psml_phase_seconds_bucket{phase="gemm",le="0.005"} 1`,
		`psml_phase_seconds_bucket{phase="gemm",le="+Inf"} 1`,
		`psml_phase_seconds_sum{phase="gemm"} 0.003`,
		`psml_phase_seconds_count{phase="gemm"} 1`,
		`psml_phase_seconds_count{phase="exchange"} 1`,
		"psml_pool_hits_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE for a family must appear exactly once even with two
	// labeled members.
	if strings.Count(out, "# TYPE psml_phase_seconds histogram") != 1 {
		t.Errorf("family TYPE emitted more than once\n%s", out)
	}
}

func TestLogger(t *testing.T) {
	reg := NewRegistry()
	var sb strings.Builder
	l := NewLogger(&sb, reg)
	l.timeNow = func() time.Time { return time.Unix(0, 0) }
	l.Event("session_start", "party", 0, "addr", "1.2.3.4:9")
	l.Error("session", errors.New("peer gone"), "party", 1)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "level=info event=session_start party=0 addr=1.2.3.4:9") {
		t.Errorf("event line: %s", lines[0])
	}
	if !strings.Contains(lines[1], `level=error event=session err="peer gone" party=1`) {
		t.Errorf("error line: %s", lines[1])
	}
	if !strings.HasPrefix(lines[0], "ts=1970-01-01T00:00:00.000Z") {
		t.Errorf("timestamp: %s", lines[0])
	}
	if got := reg.Counter("psml_log_events_total", "").Value(); got != 2 {
		t.Errorf("events counter = %d", got)
	}
	if got := reg.Counter("psml_log_errors_total", "").Value(); got != 1 {
		t.Errorf("errors counter = %d", got)
	}
	// Nil logger is a no-op, not a crash.
	var nl *Logger
	nl.Event("x")
	nl.Error("x", errors.New("y"))
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("psml_up", "").Inc()
	healthErr := error(nil)
	srv := httptest.NewServer(DebugMux(r, func() error { return healthErr }))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "psml_up 1") {
		t.Errorf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}
	healthErr = errors.New("peer link down")
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "peer link down") {
		t.Errorf("unhealthy /healthz: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}
}
