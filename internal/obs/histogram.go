package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a lock-cheap duration histogram: fixed exponential bins
// allocated once at construction, observed with a single atomic add per
// bucket. Quantiles (p50/p95/p99) are computed at read time by linear
// interpolation within the winning bucket, the standard Prometheus
// estimate — accurate to within one bucket width, which the 1-2-5 bound
// series keeps under a factor of 2.5 everywhere.
//
// Observe never allocates; snapshot reads are relaxed (a concurrent
// scrape may see a sum/count pair mid-update), which is the usual
// monitoring trade.
type Histogram struct {
	bounds   []time.Duration // ascending bucket upper bounds; +Inf implicit
	leLabels []string        // precomputed `le="…"` label per bucket (incl. +Inf)
	counts   []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum      atomic.Int64    // nanoseconds
	count    atomic.Uint64
}

// defBounds is the default bucket series: 1-2-5 decades from 1µs to 50s,
// wide enough to cover a triplet decode at the bottom and a wedged peer
// exchange hitting its deadline at the top.
func defBounds() []time.Duration {
	var b []time.Duration
	for base := time.Microsecond; base <= 10*time.Second; base *= 10 {
		b = append(b, base, 2*base, 5*base)
	}
	return b
}

// NewHistogram returns a histogram with the given ascending upper bounds
// (nil selects the default 1µs–50s 1-2-5 series). Prefer
// Registry.Histogram, which also exposes it on /metrics.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = defBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{
		bounds:   bounds,
		leLabels: make([]string, len(bounds)+1),
		counts:   make([]atomic.Uint64, len(bounds)+1),
	}
	for i, b := range bounds {
		h.leLabels[i] = `le="` + strconv.FormatFloat(b.Seconds(), 'g', -1, 64) + `"`
	}
	h.leLabels[len(bounds)] = `le="+Inf"`
	return h
}

// Observe records one duration. Negative durations (clock steps) clamp
// to zero. Allocation-free.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	// Manual binary search: sort.Search's closure could escape on some
	// inlining decisions, and this path must stay allocation-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// histSnapshot is one relaxed read of every bucket.
type histSnapshot struct {
	counts []uint64
	sum    time.Duration
	count  uint64
}

func (h *Histogram) snapshot() histSnapshot {
	s := histSnapshot{counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	s.sum = time.Duration(h.sum.Load())
	s.count = h.count.Load()
	return s
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts: find the bucket holding the target rank, interpolate linearly
// inside it. Observations in the +Inf bucket report the largest finite
// bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.snapshot()
	total := uint64(0)
	for _, c := range s.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := uint64(0)
	for i, c := range s.counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: the best bounded estimate is the last edge.
			return h.bounds[len(h.bounds)-1]
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		frac := float64(rank-cum) / float64(c)
		return lower + time.Duration(frac*float64(upper-lower))
	}
	return h.bounds[len(h.bounds)-1] // unreachable: rank <= total
}

// Span is an in-flight phase measurement. It is a value type so starting
// and stopping a phase stays allocation-free on the serving hot path.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing one phase; Stop on the returned Span records it.
func (h *Histogram) Start() Span { return Span{h: h, t0: time.Now()} }

// Stop records the elapsed time and returns it.
func (s Span) Stop() time.Duration {
	d := time.Since(s.t0)
	s.h.Observe(d)
	return d
}
