package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Debug HTTP listener: an opt-in sidecar endpoint (psml-server
// -debug-addr) serving the metrics registry, a liveness probe, and the
// stdlib profiler. It binds its own mux — never http.DefaultServeMux —
// so importing this package cannot leak pprof onto an application
// listener.

// DebugMux returns a mux serving:
//
//	/metrics        – reg in the Prometheus text exposition format
//	/healthz        – 200 "ok" (503 with the error text when health fails)
//	/debug/pprof/…  – the stdlib profiler (CPU, heap, goroutine, trace)
//
// health may be nil, which means always healthy.
func DebugMux(reg *Registry, health func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug listens on addr and serves DebugMux(reg, health) until ctx
// is cancelled, then shuts the server down. It returns the bound
// listener address (useful with ":0") and a channel that closes when the
// server has fully stopped. Errors after a successful bind are
// swallowed: a broken debug listener must never take the serving process
// down.
func ServeDebug(ctx context.Context, addr string, reg *Registry, health func() error) (string, <-chan struct{}, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugMux(reg, health)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := context.AfterFunc(ctx, func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	})
	go func() {
		<-done
		stop()
	}()
	return ln.Addr().String(), done, nil
}
