package dataset

import (
	"parsecureml/internal/tensor"
)

// Streaming batch generation. The full-size datasets cannot be
// materialized (VGGFace2 alone is 40 000 × 40 000 FP32 = 6.4 TB), and no
// real deployment would try: clients stream batches. A Stream produces
// batch #i deterministically and independently — batch b of a given
// (spec, seed) is always the same matrix, whatever order or subset is
// generated — so training, resuming, and distributed sharding all see
// consistent data.
type Stream struct {
	Spec  Spec
	Batch int
	Seed  uint64
	kind  string
}

// StreamClassification returns a classification batch stream.
func StreamClassification(spec Spec, batch int, seed uint64) *Stream {
	return &Stream{Spec: spec, Batch: batch, Seed: seed, kind: "class"}
}

// StreamRegression returns a regression batch stream.
func StreamRegression(spec Spec, batch int, seed uint64) *Stream {
	return &Stream{Spec: spec, Batch: batch, Seed: seed, kind: "reg"}
}

// Batches returns the number of full batches in one epoch of the spec's
// nominal sample count.
func (s *Stream) Batches() int { return s.Spec.Samples / s.Batch }

// At generates batch i: features plus targets (one-hot for
// classification, scalar for regression).
func (s *Stream) At(i int) (x, y *tensor.Matrix) {
	// Derive a per-batch seed; batches are independent streams.
	seed := s.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	switch s.kind {
	case "reg":
		return Regression(s.Spec, s.Batch, seed)
	default:
		xb, labels := Classification(s.Spec, s.Batch, seed)
		return xb, OneHotLabels(labels, s.Spec.Classes)
	}
}
