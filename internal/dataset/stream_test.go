package dataset

import "testing"

func TestStreamDeterministicAndIndependent(t *testing.T) {
	s := StreamClassification(MNIST, 32, 5)
	x1, y1 := s.At(3)
	x2, y2 := s.At(3)
	if !x1.Equal(x2) || !y1.Equal(y2) {
		t.Fatal("batch 3 not reproducible")
	}
	x3, _ := s.At(4)
	if x1.Equal(x3) {
		t.Fatal("adjacent batches identical")
	}
	// Access order must not matter.
	s2 := StreamClassification(MNIST, 32, 5)
	x4, _ := s2.At(4)
	x5, _ := s2.At(3)
	if !x4.Equal(x3) || !x5.Equal(x1) {
		t.Fatal("batch content depends on access order")
	}
}

func TestStreamShapes(t *testing.T) {
	s := StreamClassification(MNIST, 16, 1)
	x, y := s.At(0)
	if x.Rows != 16 || x.Cols != 784 || y.Rows != 16 || y.Cols != 10 {
		t.Fatalf("shapes %dx%d / %dx%d", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	if s.Batches() != 60000/16 {
		t.Fatalf("Batches = %d", s.Batches())
	}

	r := StreamRegression(Spec{Name: "t", H: 2, W: 3, Classes: 2, Density: 1}, 8, 2)
	xr, yr := r.At(0)
	if xr.Cols != 6 || yr.Cols != 1 {
		t.Fatalf("regression shapes %d / %d", xr.Cols, yr.Cols)
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	a := StreamClassification(MNIST, 32, 1)
	b := StreamClassification(MNIST, 32, 2)
	xa, _ := a.At(0)
	xb, _ := b.At(0)
	if xa.Equal(xb) {
		t.Fatal("different stream seeds produced identical batches")
	}
}
