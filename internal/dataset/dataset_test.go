package dataset

import (
	"math"
	"testing"

	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
)

func TestSpecGeometry(t *testing.T) {
	if MNIST.InDim() != 784 {
		t.Fatalf("MNIST dim %d", MNIST.InDim())
	}
	if VGGFace2.InDim() != 40000 {
		t.Fatalf("VGGFace2 dim %d", VGGFace2.InDim())
	}
	if NIST.InDim() != 262144 {
		t.Fatalf("NIST dim %d", NIST.InDim())
	}
	if Synthetic.InDim() != 2048 || Synthetic.SeqSteps != 32 {
		t.Fatalf("Synthetic %+v", Synthetic)
	}
	if len(All()) != 5 {
		t.Fatal("All() must list five datasets")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("MNIST")
	if err != nil || s.Name != "MNIST" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("ImageNet"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestClassificationDeterministic(t *testing.T) {
	x1, l1 := Classification(MNIST, 100, 7)
	x2, l2 := Classification(MNIST, 100, 7)
	if !x1.Equal(x2) {
		t.Fatal("same seed produced different features")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	x3, _ := Classification(MNIST, 100, 8)
	if x1.Equal(x3) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassificationShapesAndBalance(t *testing.T) {
	n := 200
	x, labels := Classification(MNIST, n, 1)
	if x.Rows != n || x.Cols != 784 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	counts := make([]int, MNIST.Classes)
	for _, l := range labels {
		if l < 0 || l >= MNIST.Classes {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for c, cnt := range counts {
		if cnt != n/MNIST.Classes {
			t.Fatalf("class %d has %d samples, want %d", c, cnt, n/MNIST.Classes)
		}
	}
}

func TestSparsityProfile(t *testing.T) {
	x, _ := Classification(MNIST, 300, 2)
	sp := x.Sparsity()
	// Template+noise union of two Bernoulli(0.2) masks: ~36% nonzero.
	if sp < 0.5 || sp > 0.8 {
		t.Fatalf("MNIST-like sparsity %v, want dark-background profile", sp)
	}
	xd, _ := Classification(VGGFace2, 20, 2)
	if xd.Sparsity() > 0.2 {
		t.Fatalf("VGGFace2-like data too sparse: %v", xd.Sparsity())
	}
}

func TestClassificationLearnable(t *testing.T) {
	r := rng.NewRand(3)
	x, labels := Classification(MNIST, 400, 3)
	y := OneHotLabels(labels, 10)
	m := ml.NewMLP(784, r)
	m.Fit(x, y, 64, 30, 0.3)
	if acc := ml.Accuracy(m.Predict(x), y); acc < 0.9 {
		t.Fatalf("template data should be easily learnable; accuracy %v", acc)
	}
}

func TestRegressionLearnable(t *testing.T) {
	r := rng.NewRand(4)
	spec := Spec{Name: "toy", H: 4, W: 4, Classes: 2, Density: 1}
	x, y := Regression(spec, 300, 4)
	m := ml.NewLinearRegression(16, r)
	losses := m.Fit(x, y, 32, 150, 0.2)
	if losses[len(losses)-1] > 1e-2 {
		t.Fatalf("regression loss %v", losses[len(losses)-1])
	}
}

func TestBinarySeparable(t *testing.T) {
	spec := Spec{Name: "toy", H: 3, W: 3, Classes: 2, Density: 1}
	x, y := Binary(spec, 200, 5, true)
	pos, neg := 0, 0
	for _, v := range y.Data {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("±1 labels expected, got %v", v)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("degenerate label distribution")
	}
	r := rng.NewRand(6)
	m := ml.NewSVM(9, r)
	m.Fit(x, y, 32, 150, 0.3)
	if acc := ml.BinaryAccuracy(m.Predict(x), y, false); acc < 0.93 {
		t.Fatalf("separable SVM accuracy %v", acc)
	}

	_, y01 := Binary(spec, 50, 5, false)
	for _, v := range y01.Data {
		if v != 0 && v != 1 {
			t.Fatalf("0/1 labels expected, got %v", v)
		}
	}
}

func TestRegressionNoiseSmall(t *testing.T) {
	spec := Spec{Name: "toy", H: 2, W: 2, Classes: 2, Density: 1}
	_, y := Regression(spec, 100, 7)
	var mean float64
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean-0.1) > 0.2 {
		t.Fatalf("regression intercept drifted: mean %v", mean)
	}
}
