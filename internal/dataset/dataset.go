// Package dataset synthesizes the five evaluation datasets of §7.1. The
// module is offline and the paper's experiments consume only each
// dataset's geometry (image size × sample count) plus a learnable signal
// for accuracy sanity checks, so each generator reproduces: the exact
// shapes, an approximate zero-fraction (sparsity drives the compression
// experiment), and a class-template structure simple models can learn.
// Generation is deterministic in the seed.
package dataset

import (
	"fmt"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Spec describes one dataset's geometry.
type Spec struct {
	Name    string
	Samples int // full-size sample count used by the paper
	H, W    int // per-sample image geometry (flattened to H·W features)
	// Channels > 1 marks multi-channel images (CIFAR-10 is 32×32×3); 0 is
	// treated as 1.
	Channels int
	Classes  int
	Density  float64 // fraction of non-zero pixels
	// SeqSteps > 0 marks a sequence dataset (RNN): features are read as
	// SeqSteps timesteps of width W.
	SeqSteps int
}

// InChannels returns the channel count (>= 1).
func (s Spec) InChannels() int {
	if s.Channels < 1 {
		return 1
	}
	return s.Channels
}

// InDim returns the flattened feature width (Channels·H·W).
func (s Spec) InDim() int { return s.InChannels() * s.H * s.W }

// String formats the spec.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%dx%d×%d)", s.Name, s.H, s.W, s.Samples)
}

// The paper's datasets (§7.1).
var (
	// MNIST: 60 000 train samples of 28×28 handwritten digits; mostly
	// black background (~80 % zeros).
	MNIST = Spec{Name: "MNIST", Samples: 60000, H: 28, W: 28, Classes: 10, Density: 0.20}
	// VGGFace2: 40 000 face images processed to 200×200 (dense).
	VGGFace2 = Spec{Name: "VGGFace2", Samples: 40000, H: 200, W: 200, Classes: 10, Density: 0.95}
	// NIST: 4 000 fingerprint images of 512×512 (ridge patterns, ~50 %).
	NIST = Spec{Name: "NIST", Samples: 4000, H: 512, W: 512, Classes: 10, Density: 0.50}
	// CIFAR10: 50 000 train images of 32×32×3 (three dense color planes).
	CIFAR10 = Spec{Name: "CIFAR-10", Samples: 50000, H: 32, W: 32, Channels: 3, Classes: 10, Density: 0.98}
	// Synthetic: 640 000 matrices of 32×64 used for the workload-size
	// studies (Figs. 7, 17); also the RNN dataset (32 timesteps × 64).
	Synthetic = Spec{Name: "SYNTHETIC", Samples: 640000, H: 32, W: 64, Classes: 10, Density: 0.60, SeqSteps: 32}
)

// All lists the five specs in the paper's presentation order.
func All() []Spec { return []Spec{VGGFace2, NIST, Synthetic, MNIST, CIFAR10} }

// ByName resolves a spec from its name (case-sensitive).
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Classification generates n samples with one-hot-learnable structure:
// each class c has a fixed sparse template; a sample is its class template
// plus noise, masked to the spec's density. Labels cycle deterministically
// so every batch is balanced. Returns the feature matrix and labels.
func Classification(s Spec, n int, seed uint64) (*tensor.Matrix, []int) {
	pool := rng.NewPool(seed)
	r := rng.NewRand(seed ^ 0xd1ce)
	dim := s.InDim()

	templates := make([]*tensor.Matrix, s.Classes)
	for c := range templates {
		t := tensor.New(1, dim)
		pool.FillBernoulli(t, s.Density, func(g *rng.Rand) float32 { return g.Float32()*2 - 1 })
		templates[c] = t
	}

	x := tensor.New(n, dim)
	labels := make([]int, n)
	noise := tensor.New(n, dim)
	pool.FillBernoulli(noise, s.Density, func(g *rng.Rand) float32 { return (g.Float32()*2 - 1) * 0.3 })
	for i := 0; i < n; i++ {
		c := i % s.Classes
		labels[i] = c
		row := x.Row(i)
		tpl := templates[c].Data
		nz := noise.Row(i)
		for j := range row {
			row[j] = tpl[j] + nz[j]
		}
	}
	// Deterministic shuffle so class order does not leak into batches.
	perm := r.Perm(n)
	shuffled := tensor.New(n, dim)
	outLabels := make([]int, n)
	for i, p := range perm {
		copy(shuffled.Row(i), x.Row(p))
		outLabels[i] = labels[p]
	}
	return shuffled, outLabels
}

// Regression generates n samples with a linear target y = x·w* + b* (+
// small noise), for the linear-regression benchmark.
func Regression(s Spec, n int, seed uint64) (x, y *tensor.Matrix) {
	pool := rng.NewPool(seed)
	r := rng.NewRand(seed ^ 0xbeef)
	dim := s.InDim()
	x = tensor.New(n, dim)
	pool.FillBernoulli(x, s.Density, func(g *rng.Rand) float32 { return g.Float32()*2 - 1 })
	w := make([]float32, dim)
	for j := range w {
		w[j] = (r.Float32()*2 - 1) / float32(dim)
	}
	y = tensor.New(n, 1)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var acc float32
		for j, v := range row {
			acc += v * w[j]
		}
		y.Set(i, 0, acc+0.1+0.01*(r.Float32()-0.5))
	}
	return x, y
}

// Binary generates ±1-labeled, linearly separable data (with margin) for
// the SVM and logistic benchmarks. plusMinus selects ±1 targets; otherwise
// 0/1.
func Binary(s Spec, n int, seed uint64, plusMinus bool) (x, y *tensor.Matrix) {
	pool := rng.NewPool(seed)
	r := rng.NewRand(seed ^ 0xcafe)
	dim := s.InDim()
	x = tensor.New(n, dim)
	pool.FillBernoulli(x, s.Density, func(g *rng.Rand) float32 { return g.Float32()*2 - 1 })
	w := make([]float32, dim)
	for j := range w {
		w[j] = r.Float32()*2 - 1
	}
	y = tensor.New(n, 1)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		var acc float32
		for j, v := range row {
			acc += v * w[j]
		}
		pos := acc > 0
		if pos {
			y.Set(i, 0, 1)
		} else if plusMinus {
			y.Set(i, 0, -1)
		}
	}
	return x, y
}

// OneHotLabels is a convenience wrapper producing the one-hot target
// matrix for Classification output.
func OneHotLabels(labels []int, classes int) *tensor.Matrix {
	m := tensor.New(len(labels), classes)
	for i, l := range labels {
		m.Set(i, l, 1)
	}
	return m
}
