package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// FaultConn is a net.Conn wrapper that injects transport faults for
// tests: delayed operations, fragmented (short) writes, corrupted bytes
// at a chosen stream offset, and hard failures after a byte budget. Wrap
// one under a framed Conn (comm.Wrap) to exercise the codec and the
// serving layer against the failure modes a real fabric produces:
//
//	raw, peer := net.Pipe()
//	fc := comm.NewFaultConn(raw)
//	fc.CorruptWriteAt = 3 // flip the length prefix's high byte
//	conn := comm.Wrap(fc)
//
// Fault fields are read without locking by the Read/Write paths;
// configure them before moving traffic. Each direction assumes the usual
// single-reader/single-writer discipline.
type FaultConn struct {
	Inner net.Conn

	ReadDelay  time.Duration // sleep before every Read
	WriteDelay time.Duration // sleep before every Write

	// WriteBytesPerSec > 0 throttles the outgoing stream to roughly this
	// rate: every Write sleeps in proportion to the bytes it moves before
	// they are passed on. WriteDelay models fixed per-operation latency;
	// this models serialization delay on a bandwidth-limited fabric, the
	// regime where overlapping transfer with compute pays.
	WriteBytesPerSec int64

	// WriteChunk > 0 fragments writes into chunks of at most this many
	// bytes (legal short writes a stream transport may always produce;
	// the reader must reassemble).
	WriteChunk int

	// CorruptWriteAt >= 0 XORs 0xFF into the single byte at that offset
	// of the outgoing byte stream (offset 0..3 hits a frame's length
	// prefix). -1 disables.
	CorruptWriteAt int64

	// FailWriteAfter >= 0 makes writes fail (with ErrInjected) once this
	// many bytes have been sent; a write straddling the boundary is cut
	// short first — a mid-frame truncation. -1 disables.
	FailWriteAfter int64

	// FailReadAfter >= 0 makes reads fail (with ErrInjected) once this
	// many bytes have been delivered. -1 disables.
	FailReadAfter int64

	// Frame-boundary drop state (see DropAfterFrames). The parser tracks
	// the outgoing stream's u32-LE length prefixes across Write calls, so
	// the cut always lands exactly between two frames regardless of how
	// the writer fragments its writes.
	dropArmed     bool
	dropRemaining int
	dropHdrFill   int
	dropHdr       [4]byte
	dropBodyLeft  int
	dropped       bool

	// Byte counters are atomic so a concurrent observer (a test
	// assertion, a metrics scrape) can snapshot them while traffic moves.
	written, read atomic.Int64
	injected      atomic.Int64
}

// DropAfterFrames arms a hard connection loss at a frame boundary: after
// n more complete length-prefixed frames have been written, the
// underlying connection is closed — both directions die, as with a peer
// crash or an RST — with the cut guaranteed to land between frames, not
// inside one. This is the deterministic link-loss mode the supervised
// link's chaos tests use: the receiver sees clean frames up to the cut,
// so what is being exercised is reconnection and replay, not codec
// resynchronization.
//
// Must be called before traffic moves (fault fields are unsynchronized,
// like the rest of FaultConn); only the write direction is parsed, so
// wrap the side whose outgoing stream should be cut.
func (f *FaultConn) DropAfterFrames(n int) {
	f.dropArmed = true
	f.dropRemaining = n
	f.dropHdrFill = 0
	f.dropBodyLeft = 0
	f.dropped = false
}

// dropAllowance consumes p against the frame parser and returns how many
// bytes may still pass before the armed cut, and whether the cut is
// reached within p.
func (f *FaultConn) dropAllowance(p []byte) (allowed int, cut bool) {
	for allowed < len(p) {
		if f.dropRemaining <= 0 {
			return allowed, true
		}
		if f.dropBodyLeft == 0 && f.dropHdrFill < 4 {
			take := 4 - f.dropHdrFill
			if take > len(p)-allowed {
				take = len(p) - allowed
			}
			copy(f.dropHdr[f.dropHdrFill:], p[allowed:allowed+take])
			f.dropHdrFill += take
			allowed += take
			if f.dropHdrFill == 4 {
				f.dropBodyLeft = int(binary.LittleEndian.Uint32(f.dropHdr[:]))
				if f.dropBodyLeft == 0 {
					f.dropHdrFill = 0
					f.dropRemaining--
				}
			}
			continue
		}
		take := f.dropBodyLeft
		if take > len(p)-allowed {
			take = len(p) - allowed
		}
		f.dropBodyLeft -= take
		allowed += take
		if f.dropBodyLeft == 0 {
			f.dropHdrFill = 0
			f.dropRemaining--
		}
	}
	return allowed, f.dropRemaining <= 0 && f.dropBodyLeft == 0 && f.dropHdrFill == 0
}

// FaultStats is a snapshot of a FaultConn's byte accounting.
type FaultStats struct {
	BytesWritten, BytesRead int64
	Injected                int64 // faults fired by the byte budgets
}

// Stats returns the connection's current byte counters.
func (f *FaultConn) Stats() FaultStats {
	return FaultStats{
		BytesWritten: f.written.Load(),
		BytesRead:    f.read.Load(),
		Injected:     f.injected.Load(),
	}
}

// ErrInjected marks failures produced by a FaultConn's byte budgets.
var ErrInjected = errors.New("comm: injected fault")

// NewFaultConn wraps inner with all faults disabled.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{Inner: inner, CorruptWriteAt: -1, FailWriteAfter: -1, FailReadAfter: -1}
}

// Write implements net.Conn, applying the configured write-side faults.
func (f *FaultConn) Write(p []byte) (int, error) {
	if f.dropArmed {
		if f.dropped {
			return 0, fmt.Errorf("comm: connection dropped at frame boundary: %w", ErrInjected)
		}
		allowed, cut := f.dropAllowance(p)
		if cut {
			n, err := f.writeFaulty(p[:allowed])
			f.dropped = true
			f.injected.Add(1)
			f.Inner.Close()
			if err != nil {
				return n, err
			}
			if n < len(p) {
				return n, fmt.Errorf("comm: connection dropped at frame boundary: %w", ErrInjected)
			}
			return n, nil
		}
	}
	return f.writeFaulty(p)
}

// writeFaulty applies the byte-level write faults (delay, throttle,
// fragmentation, corruption, byte budget) and forwards to Inner.
func (f *FaultConn) writeFaulty(p []byte) (int, error) {
	if f.WriteDelay > 0 {
		time.Sleep(f.WriteDelay)
	}
	if f.WriteBytesPerSec > 0 {
		time.Sleep(time.Duration(int64(len(p)) * int64(time.Second) / f.WriteBytesPerSec))
	}
	total := 0
	for total < len(p) {
		n := len(p) - total
		if f.WriteChunk > 0 && n > f.WriteChunk {
			n = f.WriteChunk
		}
		written := f.written.Load()
		if f.FailWriteAfter >= 0 {
			remain := f.FailWriteAfter - written
			if remain <= 0 {
				f.injected.Add(1)
				return total, fmt.Errorf("comm: write stopped after %d bytes: %w", written, ErrInjected)
			}
			if int64(n) > remain {
				n = int(remain)
			}
		}
		chunk := p[total : total+n]
		if off := f.CorruptWriteAt; off >= written && off < written+int64(n) {
			c := append([]byte(nil), chunk...)
			c[off-written] ^= 0xFF
			chunk = c
		}
		m, err := f.Inner.Write(chunk)
		f.written.Add(int64(m))
		total += m
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read implements net.Conn, applying the configured read-side faults.
func (f *FaultConn) Read(p []byte) (int, error) {
	if f.ReadDelay > 0 {
		time.Sleep(f.ReadDelay)
	}
	if f.FailReadAfter >= 0 {
		remain := f.FailReadAfter - f.read.Load()
		if remain <= 0 {
			f.injected.Add(1)
			return 0, fmt.Errorf("comm: read stopped after %d bytes: %w", f.read.Load(), ErrInjected)
		}
		if int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := f.Inner.Read(p)
	f.read.Add(int64(n))
	return n, err
}

func (f *FaultConn) Close() error                       { return f.Inner.Close() }
func (f *FaultConn) LocalAddr() net.Addr                { return f.Inner.LocalAddr() }
func (f *FaultConn) RemoteAddr() net.Addr               { return f.Inner.RemoteAddr() }
func (f *FaultConn) SetDeadline(t time.Time) error      { return f.Inner.SetDeadline(t) }
func (f *FaultConn) SetReadDeadline(t time.Time) error  { return f.Inner.SetReadDeadline(t) }
func (f *FaultConn) SetWriteDeadline(t time.Time) error { return f.Inner.SetWriteDeadline(t) }
