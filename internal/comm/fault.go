package comm

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// FaultConn is a net.Conn wrapper that injects transport faults for
// tests: delayed operations, fragmented (short) writes, corrupted bytes
// at a chosen stream offset, and hard failures after a byte budget. Wrap
// one under a framed Conn (comm.Wrap) to exercise the codec and the
// serving layer against the failure modes a real fabric produces:
//
//	raw, peer := net.Pipe()
//	fc := comm.NewFaultConn(raw)
//	fc.CorruptWriteAt = 3 // flip the length prefix's high byte
//	conn := comm.Wrap(fc)
//
// Fault fields are read without locking by the Read/Write paths;
// configure them before moving traffic. Each direction assumes the usual
// single-reader/single-writer discipline.
type FaultConn struct {
	Inner net.Conn

	ReadDelay  time.Duration // sleep before every Read
	WriteDelay time.Duration // sleep before every Write

	// WriteBytesPerSec > 0 throttles the outgoing stream to roughly this
	// rate: every Write sleeps in proportion to the bytes it moves before
	// they are passed on. WriteDelay models fixed per-operation latency;
	// this models serialization delay on a bandwidth-limited fabric, the
	// regime where overlapping transfer with compute pays.
	WriteBytesPerSec int64

	// WriteChunk > 0 fragments writes into chunks of at most this many
	// bytes (legal short writes a stream transport may always produce;
	// the reader must reassemble).
	WriteChunk int

	// CorruptWriteAt >= 0 XORs 0xFF into the single byte at that offset
	// of the outgoing byte stream (offset 0..3 hits a frame's length
	// prefix). -1 disables.
	CorruptWriteAt int64

	// FailWriteAfter >= 0 makes writes fail (with ErrInjected) once this
	// many bytes have been sent; a write straddling the boundary is cut
	// short first — a mid-frame truncation. -1 disables.
	FailWriteAfter int64

	// FailReadAfter >= 0 makes reads fail (with ErrInjected) once this
	// many bytes have been delivered. -1 disables.
	FailReadAfter int64

	// Byte counters are atomic so a concurrent observer (a test
	// assertion, a metrics scrape) can snapshot them while traffic moves.
	written, read atomic.Int64
	injected      atomic.Int64
}

// FaultStats is a snapshot of a FaultConn's byte accounting.
type FaultStats struct {
	BytesWritten, BytesRead int64
	Injected                int64 // faults fired by the byte budgets
}

// Stats returns the connection's current byte counters.
func (f *FaultConn) Stats() FaultStats {
	return FaultStats{
		BytesWritten: f.written.Load(),
		BytesRead:    f.read.Load(),
		Injected:     f.injected.Load(),
	}
}

// ErrInjected marks failures produced by a FaultConn's byte budgets.
var ErrInjected = errors.New("comm: injected fault")

// NewFaultConn wraps inner with all faults disabled.
func NewFaultConn(inner net.Conn) *FaultConn {
	return &FaultConn{Inner: inner, CorruptWriteAt: -1, FailWriteAfter: -1, FailReadAfter: -1}
}

// Write implements net.Conn, applying the configured write-side faults.
func (f *FaultConn) Write(p []byte) (int, error) {
	if f.WriteDelay > 0 {
		time.Sleep(f.WriteDelay)
	}
	if f.WriteBytesPerSec > 0 {
		time.Sleep(time.Duration(int64(len(p)) * int64(time.Second) / f.WriteBytesPerSec))
	}
	total := 0
	for total < len(p) {
		n := len(p) - total
		if f.WriteChunk > 0 && n > f.WriteChunk {
			n = f.WriteChunk
		}
		written := f.written.Load()
		if f.FailWriteAfter >= 0 {
			remain := f.FailWriteAfter - written
			if remain <= 0 {
				f.injected.Add(1)
				return total, fmt.Errorf("comm: write stopped after %d bytes: %w", written, ErrInjected)
			}
			if int64(n) > remain {
				n = int(remain)
			}
		}
		chunk := p[total : total+n]
		if off := f.CorruptWriteAt; off >= written && off < written+int64(n) {
			c := append([]byte(nil), chunk...)
			c[off-written] ^= 0xFF
			chunk = c
		}
		m, err := f.Inner.Write(chunk)
		f.written.Add(int64(m))
		total += m
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read implements net.Conn, applying the configured read-side faults.
func (f *FaultConn) Read(p []byte) (int, error) {
	if f.ReadDelay > 0 {
		time.Sleep(f.ReadDelay)
	}
	if f.FailReadAfter >= 0 {
		remain := f.FailReadAfter - f.read.Load()
		if remain <= 0 {
			f.injected.Add(1)
			return 0, fmt.Errorf("comm: read stopped after %d bytes: %w", f.read.Load(), ErrInjected)
		}
		if int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := f.Inner.Read(p)
	f.read.Add(int64(n))
	return n, err
}

func (f *FaultConn) Close() error                       { return f.Inner.Close() }
func (f *FaultConn) LocalAddr() net.Addr                { return f.Inner.LocalAddr() }
func (f *FaultConn) RemoteAddr() net.Addr               { return f.Inner.RemoteAddr() }
func (f *FaultConn) SetDeadline(t time.Time) error      { return f.Inner.SetDeadline(t) }
func (f *FaultConn) SetReadDeadline(t time.Time) error  { return f.Inner.SetReadDeadline(t) }
func (f *FaultConn) SetWriteDeadline(t time.Time) error { return f.Inner.SetWriteDeadline(t) }
