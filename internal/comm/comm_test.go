package comm

import (
	"sync"
	"testing"

	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

func newTestLink() (*Link, *simtime.Engine) {
	eng := simtime.NewEngine()
	return NewLink("net.s0->s1", hw.Paper().Net, eng), eng
}

func TestSendMatrixChargesTimeAndBytes(t *testing.T) {
	l, eng := newTestLink()
	m := tensor.New(100, 100)
	frame, task := l.SendMatrix(m)
	if len(frame) != tensor.EncodedSizeDense(100, 100) {
		t.Fatalf("frame %d bytes", len(frame))
	}
	st := l.Stats()
	if st.Messages != 1 || st.WireBytes != int64(len(frame)) {
		t.Fatalf("stats %+v", st)
	}
	want := hw.Paper().Net.TransferTime(len(frame))
	if task.Duration() != want {
		t.Fatalf("duration %v, want %v", task.Duration(), want)
	}
	if eng.Makespan() != want {
		t.Fatalf("makespan %v", eng.Makespan())
	}
}

func TestLinkSerializesMessages(t *testing.T) {
	l, _ := newTestLink()
	m := tensor.New(10, 10)
	_, t1 := l.SendMatrix(m)
	_, t2 := l.SendMatrix(m)
	if t2.Start < t1.End {
		t.Fatal("messages on one link must serialize")
	}
}

func TestDeltaStreamReconstruction(t *testing.T) {
	l, _ := newTestLink()
	s := NewDeltaSender(l)
	r := &DeltaReceiver{}
	p := rng.NewPool(1)

	cur := p.NewUniform(40, 40, -1, 1)
	for epoch := 0; epoch < 5; epoch++ {
		frame, _, _ := s.Send(cur)
		got, err := r.Receive(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(cur, 1e-5) {
			t.Fatalf("epoch %d: receiver diverged by %v", epoch, got.MaxAbsDiff(cur))
		}
		// Sparse update: bump 3% of entries.
		delta := tensor.New(40, 40)
		p.FillBernoulli(delta, 0.03, func(r *rng.Rand) float32 { return r.Float32() })
		tensor.Add(cur, cur, delta)
	}
}

func TestDeltaCompressionKicksIn(t *testing.T) {
	l, _ := newTestLink()
	s := NewDeltaSender(l)
	r := &DeltaReceiver{}
	p := rng.NewPool(2)

	cur := p.NewUniform(64, 64, -1, 1)
	frame, _, compressed := s.Send(cur)
	if compressed {
		t.Fatal("first frame must be the dense base")
	}
	if _, err := r.Receive(frame); err != nil {
		t.Fatal(err)
	}

	// Tiny change -> very sparse delta -> CSR.
	cur.Set(3, 3, cur.At(3, 3)+1)
	frame, _, compressed = s.Send(cur)
	if !compressed {
		t.Fatal("sparse delta must be compressed")
	}
	if len(frame) >= tensor.EncodedSizeDense(64, 64) {
		t.Fatalf("compressed frame %d not smaller than dense %d", len(frame), tensor.EncodedSizeDense(64, 64))
	}
	got, err := r.Receive(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(cur, 1e-6) {
		t.Fatal("reconstruction after compressed delta failed")
	}

	// Dense change -> dense delta.
	p.FillUniform(cur, -1, 1)
	frame, _, compressed = s.Send(cur)
	if compressed {
		t.Fatal("dense delta must not be compressed")
	}
	got, err = r.Receive(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(cur, 1e-5) {
		t.Fatal("reconstruction after dense delta failed")
	}

	st := l.Stats()
	if st.CompressedSends != 1 {
		t.Fatalf("CompressedSends = %d", st.CompressedSends)
	}
	if st.SavedFraction() <= 0 {
		t.Fatalf("no savings recorded: %+v", st)
	}
}

func TestDeltaDisabledNeverCompresses(t *testing.T) {
	l, _ := newTestLink()
	s := NewDeltaSender(l)
	s.Enabled = false
	r := &DeltaReceiver{}
	cur := tensor.New(32, 32)
	for i := 0; i < 3; i++ {
		cur.Set(i, i, float32(i)+1)
		frame, _, compressed := s.Send(cur)
		if compressed {
			t.Fatal("disabled sender compressed")
		}
		got, err := r.Receive(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(cur) {
			t.Fatal("disabled-sender stream diverged")
		}
	}
	if l.Stats().SavedFraction() != 0 {
		t.Fatal("disabled sender must save nothing")
	}
}

func TestDeltaShapeChangeRebases(t *testing.T) {
	l, _ := newTestLink()
	s := NewDeltaSender(l)
	r := &DeltaReceiver{}
	a := tensor.New(4, 4)
	frame, _, _ := s.Send(a)
	if _, err := r.Receive(frame); err != nil {
		t.Fatal(err)
	}
	b := tensor.New(8, 8)
	b.Set(0, 0, 5)
	frame, _, compressed := s.Send(b)
	if compressed {
		t.Fatal("shape change must resend dense base")
	}
	r.Reset()
	got, err := r.Receive(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatal("rebase failed")
	}
}

func TestReceiverRejectsGarbage(t *testing.T) {
	r := &DeltaReceiver{}
	if _, err := r.Receive([]byte{0x00, 0x01}); err == nil {
		t.Fatal("garbage frame must error")
	}
	// First frame must be dense.
	c := tensor.FromDense(tensor.New(2, 2))
	if _, err := r.Receive(tensor.EncodeCSR(nil, c)); err == nil {
		t.Fatal("CSR base frame must error")
	}
}

func TestPipeFrameRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var got []byte
	var rerr error
	go func() {
		defer wg.Done()
		got, rerr = b.ReadFrame()
	}()
	payload := []byte("triplet share payload")
	if err := a.WriteFrame(payload); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != string(payload) {
		t.Fatalf("frame mismatch: %q", got)
	}
}

func TestTCPMatrixExchange(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	p := rng.NewPool(3)
	want := p.NewUniform(50, 30, -1, 1)

	done := make(chan error, 1)
	go func() {
		c, err := Accept(ln)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		frame, err := c.ReadFrame()
		if err != nil {
			done <- err
			return
		}
		// Echo the frame back.
		done <- c.WriteFrame(frame)
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFrame(tensor.EncodeMatrix(nil, want)); err != nil {
		t.Fatal(err)
	}
	echo, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, _, err := tensor.DecodeMatrix(echo)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("TCP round trip corrupted matrix")
	}
}

func TestStatsSavedFractionEmpty(t *testing.T) {
	var s Stats
	if s.SavedFraction() != 0 {
		t.Fatal("empty stats must report 0 savings")
	}
}
