package comm

import (
	"bytes"
	"testing"
)

const testCapMagic = 0x70534d4c

func TestCapabilityFrameRoundTrip(t *testing.T) {
	f := CapabilityFrame{Version: 1, Caps: 0b11}
	wire := AppendCapabilityFrame(nil, testCapMagic, f)
	if len(wire) != capFrameFixedBytes {
		t.Fatalf("frame is %d bytes, want %d", len(wire), capFrameFixedBytes)
	}
	got, err := ParseCapabilityFrame(wire, testCapMagic)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != f.Version || got.Caps != f.Caps || got.Ext != nil {
		t.Fatalf("round trip: %+v, want %+v", got, f)
	}
}

// A future (higher-version) frame with extra capability bits and an
// extension payload must still parse: old peers mask the caps they know
// and ignore the extension.
func TestCapabilityFrameForwardCompatible(t *testing.T) {
	future := CapabilityFrame{Version: 9, Caps: 0xffff_ffff, Ext: []byte("future fields")}
	wire := AppendCapabilityFrame(nil, testCapMagic, future)
	got, err := ParseCapabilityFrame(wire, testCapMagic)
	if err != nil {
		t.Fatalf("old parser rejected a newer frame: %v", err)
	}
	if got.Version != 9 || got.Caps&0b11 != 0b11 {
		t.Fatalf("fixed fields moved: %+v", got)
	}
	if !bytes.Equal(got.Ext, future.Ext) {
		t.Fatalf("ext payload lost: %q", got.Ext)
	}
	// The returned Ext must be a copy — mutating the wire buffer afterwards
	// (frame buffers are reused) must not change it.
	wire[capFrameFixedBytes] ^= 0xff
	if !bytes.Equal(got.Ext, future.Ext) {
		t.Fatal("Ext aliases the reusable frame buffer")
	}
}

func TestCapabilityFrameRejects(t *testing.T) {
	good := AppendCapabilityFrame(nil, testCapMagic, CapabilityFrame{Version: 1, Caps: 1})
	for name, frame := range map[string][]byte{
		"short":       good[:capFrameFixedBytes-1],
		"empty":       {},
		"wrong magic": AppendCapabilityFrame(nil, testCapMagic+1, CapabilityFrame{Version: 1}),
		"ext too short": AppendCapabilityFrame(nil, testCapMagic,
			CapabilityFrame{Version: 1, Ext: []byte{1, 2, 3}})[:capFrameFixedBytes+1],
		"trailing junk": append(append([]byte(nil), good...), 0xde, 0xad),
	} {
		if _, err := ParseCapabilityFrame(frame, testCapMagic); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
	// A hostile extension length beyond the bound is rejected even when the
	// payload is actually present.
	huge := CapabilityFrame{Version: 1, Ext: make([]byte, maxCapExtBytes+1)}
	if _, err := ParseCapabilityFrame(AppendCapabilityFrame(nil, testCapMagic, huge), testCapMagic); err == nil {
		t.Error("oversized ext parsed without error")
	}
}
