package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// FuzzMuxFrameHeader feeds arbitrary bytes through the mux header parser
// and then through a live demux as a raw wire frame. Invariants: the
// parser never panics, a parsed frame's routing id is exactly what its
// own header bytes say (no cross-routing), and a session only ever
// receives payloads addressed to its id — corrupt input may kill the
// session or the mux, but never misdeliver.
func FuzzMuxFrameHeader(f *testing.F) {
	const sessID = 42
	mk := func(id uint64, kind byte, payload string) []byte {
		b := binary.LittleEndian.AppendUint64(nil, id)
		b = append(b, kind)
		return append(b, payload...)
	}
	f.Add(mk(sessID, muxKindData, "hello"))  // valid frame for the open session
	f.Add(mk(sessID, muxKindClose, ""))      // close for the open session
	f.Add(mk(7, muxKindData, "unclaimed"))   // frame for a session never opened
	f.Add(mk(7, muxKindClose, ""))           // close for a session never opened
	f.Add(mk(sessID, 0xFF, "bogus kind"))    // unknown kind byte
	f.Add([]byte{})                          // empty frame
	f.Add([]byte{0x2A, 0, 0, 0, 0, 0, 0, 0}) // one byte short of a header
	f.Add(bytes.Repeat([]byte{0xA5}, 100))   // garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		id, kind, payload, err := parseMuxFrame(data)
		if err != nil {
			if len(data) >= MuxHeaderBytes {
				t.Fatalf("parse rejected a %d-byte frame: %v", len(data), err)
			}
		} else {
			if len(data) < MuxHeaderBytes {
				t.Fatalf("parse accepted a %d-byte frame", len(data))
			}
			if id != binary.LittleEndian.Uint64(data) || kind != data[8] {
				t.Fatalf("parse mangled the header: id=%d kind=%d", id, kind)
			}
			if !bytes.Equal(payload, data[MuxHeaderBytes:]) {
				t.Fatal("parse mangled the payload")
			}
		}

		// Live routing: a raw peer writes the fuzz frame, then a valid
		// sentinel for the one open session.
		raw, muxSide := Pipe()
		m := NewMux(muxSide, MuxConfig{ReadTimeout: 2 * time.Second})
		defer m.Close()
		defer raw.Close()
		s, oerr := m.Open(sessID)
		if oerr != nil {
			t.Fatalf("Open: %v", oerr)
		}
		sentinel := mk(sessID, muxKindData, "sentinel")
		raw.SetTimeouts(0, time.Second)
		if werr := raw.WriteFrame(data); werr == nil {
			_ = raw.WriteFrame(sentinel)
		}
		got, rerr := s.ReadFrame()
		if rerr != nil {
			// Acceptable only as a consequence the fuzz frame can cause:
			// a header-less frame kills the mux, a CLOSE for our id kills
			// the session, and an unroutable write can die with the pipe.
			fatal := len(data) < MuxHeaderBytes
			closed := err == nil && id == sessID && kind != muxKindData
			if !fatal && !closed && !errors.Is(rerr, ErrMuxClosed) && !IsTimeout(rerr) {
				t.Fatalf("session read failed unexpectedly: %v", rerr)
			}
			return
		}
		// Whatever arrived must have been addressed to our session: either
		// the sentinel, or the fuzz frame itself carrying our id.
		if !bytes.Equal(got, []byte("sentinel")) {
			if err != nil || id != sessID || kind != muxKindData || !bytes.Equal(got, payload) {
				t.Fatalf("session %d received a misrouted payload: %q", sessID, got)
			}
		}
	})
}
