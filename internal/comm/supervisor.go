package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Link supervision: the paper's deployment assumes a flawless 100 Gb/s
// InfiniBand edge between the two servers; over commodity TCP that single
// connection is the whole run's point of failure. A SupervisedLink wraps
// the dial/accept of that edge with
//
//   - heartbeat frames on a configurable interval and miss budget, so a
//     dead peer is detected in ~HeartbeatInterval×(MissBudget+1) instead
//     of TCP keepalive's minutes;
//   - transparent re-establishment with jittered exponential backoff: the
//     supervisor owns a connect function (re-dial or re-accept) and keeps
//     calling it until a connection resyncs;
//   - sequence-numbered data frames with a bounded replay buffer: every
//     outbound frame is retained until the peer acknowledges it
//     (cumulative acks piggyback on data and heartbeat frames), and on
//     reconnect both sides exchange RESYNC frames stating what they last
//     delivered, prune the acknowledged prefix, and replay the rest — so
//     in-flight exchange legs are replayed or discarded and a reconnect
//     is invisible to the protocol above except as latency.
//
// What it survives: connection loss (RST, silent blackhole, a flapping
// fabric). What it does not: a peer *process* restart — a restarted peer
// answers the resync handshake with zeroed sequence state, which is
// detected (ErrPeerStateLost) and surfaced as a permanent link failure;
// recovering from process death is the checkpoint/resume path's job
// (secureml.Model Checkpoint/Restore), not the transport's.
//
// A SupervisedLink implements Framer, VecFramer, FramerInto and
// io.Closer, so it slots under a Mux exactly where a *Conn would go. The
// mux's contract is preserved: reads block with no deadline (per-session
// reads are bounded by the mux), and writes return nil once the frame is
// buffered — a frame only fails when the link is permanently dead.

// supHeaderBytes is the supervised-frame header: one kind byte followed
// by two u64 fields (little-endian) whose meaning depends on the kind.
const supHeaderBytes = 17

// Supervised frame kinds. Field a / field b per kind:
//
//	data:   a = sequence number (first frame is 1), b = cumulative ack
//	hb:     a = sender's unix-nano send time,       b = cumulative ack
//	hback:  a = echoed hb send time,                b = cumulative ack
//	resync: a = highest seq delivered,              b = highest seq sent
const (
	supKindData   = 0x01
	supKindHB     = 0x02
	supKindHBAck  = 0x03
	supKindResync = 0x04
)

// Supervised-link failure modes.
var (
	// ErrLinkClosed reports an operation on a link after Close.
	ErrLinkClosed = errors.New("comm: supervised link closed")
	// ErrPeerStateLost reports a resync handshake with a peer whose
	// sequence state does not cover ours — the peer process restarted (or
	// we are talking to a different process). The link cannot resume;
	// recovery is the application's checkpoint path.
	ErrPeerStateLost = errors.New("comm: supervised link peer lost sequence state (peer restarted?); resume from checkpoint")
	// ErrHeartbeatExpired marks a connection declared dead because no
	// traffic arrived within the heartbeat miss budget.
	ErrHeartbeatExpired = errors.New("comm: supervised link heartbeat missed")
	// ErrReplayGap reports a resync needing frames no longer buffered.
	ErrReplayGap = errors.New("comm: supervised link replay gap")
)

// Package-wide supervisor accounting, exposed to the observability layer
// through SupervisorTotals (comm must not depend on obs; internal/mpc
// registers the collectors).
var (
	supReconnects     atomic.Int64
	supLinkFailures   atomic.Int64
	supReplayedFrames atomic.Int64
	supResyncDiscards atomic.Int64
	supDupFrames      atomic.Int64
	supShedFrames     atomic.Int64
	supPeerResets     atomic.Int64
	supHeartbeats     atomic.Int64
	supBufferedFrames atomic.Int64
	supBufferedBytes  atomic.Int64
)

// SupervisorStats is a snapshot of process-wide supervised-link
// accounting across every SupervisedLink.
type SupervisorStats struct {
	Reconnects     int64 // connections re-established after a failure
	LinkFailures   int64 // connections declared dead (read/write error or heartbeat)
	ReplayedFrames int64 // buffered frames re-sent after a resync
	ResyncDiscards int64 // in-flight frames discarded at resync (peer already had them)
	DupFrames      int64 // inbound duplicates dropped after a replay overlap
	ShedFrames     int64 // buffered frames dropped because the link died for good
	PeerResets     int64 // tolerated peer restarts (AllowPeerRestart stream resets)
	Heartbeats     int64 // heartbeat frames sent
	BufferedFrames int64 // gauge: unacknowledged frames currently buffered
	BufferedBytes  int64 // gauge: bytes of unacknowledged frames
}

// SupervisorTotals returns process-wide supervised-link accounting.
func SupervisorTotals() SupervisorStats {
	return SupervisorStats{
		Reconnects:     supReconnects.Load(),
		LinkFailures:   supLinkFailures.Load(),
		ReplayedFrames: supReplayedFrames.Load(),
		ResyncDiscards: supResyncDiscards.Load(),
		DupFrames:      supDupFrames.Load(),
		ShedFrames:     supShedFrames.Load(),
		PeerResets:     supPeerResets.Load(),
		Heartbeats:     supHeartbeats.Load(),
		BufferedFrames: supBufferedFrames.Load(),
		BufferedBytes:  supBufferedBytes.Load(),
	}
}

// SupervisorConfig tunes a SupervisedLink. The zero value selects the
// stated defaults.
type SupervisorConfig struct {
	// HeartbeatInterval is the gap between heartbeat frames. 0 selects
	// 500ms; negative disables heartbeats (death is then detected only by
	// read/write errors).
	HeartbeatInterval time.Duration
	// MissBudget is how many consecutive silent intervals are tolerated
	// before the connection is declared dead: no inbound traffic for
	// HeartbeatInterval×(MissBudget+1) kills it. Default 3.
	MissBudget int
	// ReconnectAttempts bounds connect calls per outage. Default 10.
	ReconnectAttempts int
	// ReconnectBase / ReconnectMax shape the jittered exponential backoff
	// between attempts. Defaults 50ms / 2s.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Jitter is the ± fraction applied to every backoff sleep, so two
	// supervisors restarting together do not retry in lockstep. 0 selects
	// 0.2; negative disables.
	Jitter float64
	// ResyncTimeout bounds the resync handshake on a fresh connection
	// (the peer may not have noticed the old one die yet — this must
	// comfortably exceed its heartbeat detection time). Default 10s.
	ResyncTimeout time.Duration
	// ReplayFrames / ReplayBytes bound the buffer of unacknowledged
	// outbound frames; a writer blocks when it is full (backpressure, not
	// loss). Defaults 1024 frames / 256 MiB.
	ReplayFrames int
	ReplayBytes  int64
	// InboxFrames is the delivered-frame queue depth between the receive
	// goroutine and ReadFrame callers. Default 256.
	InboxFrames int
	// ObserveRTT, when set, receives one heartbeat round-trip sample per
	// acknowledged heartbeat (the hook the metrics layer uses).
	ObserveRTT func(time.Duration)
	// AllowPeerRestart makes a resync with a peer whose sequence state
	// does not cover ours a recoverable event instead of ErrPeerStateLost:
	// the link resets to a fresh stream (sequence numbers restart at 1,
	// unacknowledged buffered frames are shed and counted on
	// SupervisorTotals) and OnPeerReset callbacks fire so the application
	// can re-establish its own state. This is only sound for protocols
	// whose per-link state is re-derivable — the dealer feed is the model:
	// triplet streams are deterministic functions of (seed, shape, cursor),
	// so a replica re-sends its cursors and the restarted dealer resumes
	// exactly where the old one died.
	AllowPeerRestart bool
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MissBudget <= 0 {
		c.MissBudget = 3
	}
	if c.ReconnectAttempts <= 0 {
		c.ReconnectAttempts = 10
	}
	if c.ReconnectBase <= 0 {
		c.ReconnectBase = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.ResyncTimeout <= 0 {
		c.ResyncTimeout = 10 * time.Second
	}
	if c.ReplayFrames <= 0 {
		c.ReplayFrames = 1024
	}
	if c.ReplayBytes <= 0 {
		c.ReplayBytes = 256 << 20
	}
	if c.InboxFrames <= 0 {
		c.InboxFrames = 256
	}
	return c
}

// jitterDuration scales d by a uniform factor in [1-f, 1+f].
func jitterDuration(d time.Duration, f float64) time.Duration {
	if f <= 0 || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - f + 2*f*rand.Float64()))
}

// deadliner is the optional deadline surface of a connect result (*Conn
// implements it); the resync handshake uses it to bound its read.
type deadliner interface {
	SetTimeouts(read, write time.Duration)
	Timeouts() (read, write time.Duration)
}

// supFrame is one buffered outbound frame: its sequence number and the
// complete wire frame (header included), immutable once appended.
type supFrame struct {
	seq uint64
	buf []byte
}

// supConn is one connection incarnation with its goroutines' lifecycle.
type supConn struct {
	c        Framer
	gen      int
	stop     chan struct{} // closed when the incarnation is being torn down
	down     chan struct{} // closed when the connection was declared dead
	downOnce sync.Once
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// parseSupFrame splits a supervised frame into kind, fields and payload.
func parseSupFrame(f []byte) (kind byte, a, b uint64, payload []byte, err error) {
	if len(f) < supHeaderBytes {
		return 0, 0, 0, nil, fmt.Errorf("comm: supervised frame of %d bytes has no header", len(f))
	}
	return f[0], binary.LittleEndian.Uint64(f[1:9]), binary.LittleEndian.Uint64(f[9:17]), f[supHeaderBytes:], nil
}

func putSupHeader(dst []byte, kind byte, a, b uint64) {
	dst[0] = kind
	binary.LittleEndian.PutUint64(dst[1:9], a)
	binary.LittleEndian.PutUint64(dst[9:17], b)
}

// SupervisedLink is a self-healing framed connection. See the package
// comment block above for the protocol; both ends must run one.
type SupervisedLink struct {
	cfg     SupervisorConfig
	connect func() (Framer, error)

	inbox    chan []byte   // delivered payloads, in sequence order
	done     chan struct{} // closed when the link is permanently dead
	ackNudge chan uint64   // recv → heartbeat goroutine: send an HBAck echoing this timestamp

	// wmu serializes user writers: sequence assignment and the network
	// write happen under it, so concurrent WriteFrame calls cannot put
	// frames on the wire out of sequence order. Lock order: wmu before mu.
	wmu sync.Mutex

	mu          sync.Mutex
	space       *sync.Cond // signaled when replay shrinks or the link dies
	conn        Framer     // current connection; nil while reconnecting
	cur         *supConn
	gen         int
	closed      bool
	err         error
	onReconnect []func() // run after every successful re-establishment
	onPeerReset []func() // run after a tolerated peer-restart resync
	peerReset   bool     // the last resync reset the stream (consumed by supervise)
	nextSeq     uint64   // next outbound data sequence number (first is 1)
	delivered   uint64   // highest inbound seq handed to the inbox
	peerAck     uint64   // highest outbound seq the peer confirmed
	replay      []supFrame
	replayBytes int64

	lastInbound atomic.Int64 // unix-nano of the last inbound frame
}

// NewSupervisedLink establishes the link: connect is called (with the
// configured retry policy) until a connection completes the resync
// handshake, then supervision starts. connect is owned by the link for
// its lifetime — it is the re-dial (or re-accept) used after every
// failure, and each returned connection should arrive with no read
// deadline and whatever write deadline the application wants per frame.
func NewSupervisedLink(connect func() (Framer, error), cfg SupervisorConfig) (*SupervisedLink, error) {
	s := &SupervisedLink{
		cfg:      cfg.withDefaults(),
		connect:  connect,
		done:     make(chan struct{}),
		ackNudge: make(chan uint64, 1),
		nextSeq:  1,
	}
	s.inbox = make(chan []byte, s.cfg.InboxFrames)
	s.space = sync.NewCond(&s.mu)
	sc, err := s.reconnect()
	if err != nil {
		s.fail(err)
		return nil, err
	}
	// A reset on the *initial* handshake (we are the fresh side talking to
	// a peer with state) needs no callback: nothing could have registered
	// one yet, and the application has no stream state to re-derive.
	s.mu.Lock()
	s.peerReset = false
	s.mu.Unlock()
	go s.supervise(sc)
	return s, nil
}

// Err returns the link's permanent failure, or nil while it is healthy
// (including while it is mid-reconnect).
func (s *SupervisedLink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		return nil
	}
	return s.err
}

// Close permanently tears the link down; buffered undelivered frames are
// shed (counted on SupervisorTotals).
func (s *SupervisedLink) Close() error {
	s.fail(ErrLinkClosed)
	return nil
}

// fail marks the link permanently dead. The first cause wins.
func (s *SupervisedLink) fail(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	shedFrames := int64(len(s.replay))
	shedBytes := s.replayBytes
	s.replay = nil
	s.replayBytes = 0
	conn := s.conn
	s.conn = nil
	cur := s.cur
	close(s.done)
	s.space.Broadcast()
	s.mu.Unlock()
	if shedFrames > 0 {
		supShedFrames.Add(shedFrames)
		supBufferedFrames.Add(-shedFrames)
		supBufferedBytes.Add(-shedBytes)
	}
	if c, ok := conn.(io.Closer); ok {
		c.Close()
	}
	if cur != nil {
		cur.downOnce.Do(func() { close(cur.down) })
	}
}

// connFailed declares one connection incarnation dead (stale generations
// are ignored) and wakes the supervise loop to replace it.
func (s *SupervisedLink) connFailed(gen int, cause error) {
	s.mu.Lock()
	if s.closed || gen != s.gen || s.cur == nil {
		s.mu.Unlock()
		return
	}
	s.conn = nil
	cur := s.cur
	s.mu.Unlock()
	supLinkFailures.Add(1)
	_ = cause // recorded by the caller's error path; the supervisor retries regardless
	cur.downOnce.Do(func() { close(cur.down) })
}

// stopConn tears down one incarnation: close the connection (unblocking
// its reader), stop its goroutines, and wait for them.
func (s *SupervisedLink) stopConn(sc *supConn) {
	sc.stopOnce.Do(func() { close(sc.stop) })
	if c, ok := sc.c.(io.Closer); ok {
		c.Close()
	}
	sc.wg.Wait()
}

// OnReconnect registers f to run after every successful link
// re-establishment (resync complete, connection installed). The path
// under a reconnected link is a different path — a new route, a
// different congestion state — so state learned from the previous
// incarnation (bandwidth estimates, RTT baselines) is stale; this is
// the hook that lets its owners reset it. Callbacks run on the
// supervisor goroutine, after the new connection is live, and must not
// block.
func (s *SupervisedLink) OnReconnect(f func()) {
	s.mu.Lock()
	s.onReconnect = append(s.onReconnect, f)
	s.mu.Unlock()
}

// notifyReconnect runs the registered reconnect callbacks.
func (s *SupervisedLink) notifyReconnect() {
	s.mu.Lock()
	cbs := append([]func(){}, s.onReconnect...)
	s.mu.Unlock()
	for _, f := range cbs {
		f()
	}
}

// OnPeerReset registers f to run after a resync that reset the stream
// because the peer restarted (AllowPeerRestart). Unlike OnReconnect —
// which means "the same conversation resumed over a new path" — a peer
// reset means the conversation itself restarted from scratch: every
// unacknowledged outbound frame was shed and the peer remembers nothing.
// This is where the application re-derives its link state (the dealer
// feed re-sends its per-shape resume cursors here). Callbacks run on the
// supervisor goroutine before the OnReconnect callbacks and must not
// block.
func (s *SupervisedLink) OnPeerReset(f func()) {
	s.mu.Lock()
	s.onPeerReset = append(s.onPeerReset, f)
	s.mu.Unlock()
}

// notifyPeerReset runs the registered peer-reset callbacks.
func (s *SupervisedLink) notifyPeerReset() {
	s.mu.Lock()
	cbs := append([]func(){}, s.onPeerReset...)
	s.mu.Unlock()
	for _, f := range cbs {
		f()
	}
}

// supervise replaces dead connections until the link closes or a
// reconnect cycle fails for good.
func (s *SupervisedLink) supervise(sc *supConn) {
	for {
		select {
		case <-s.done:
			s.stopConn(sc)
			return
		case <-sc.down:
		}
		s.stopConn(sc)
		nc, err := s.reconnect()
		if err != nil {
			s.fail(err)
			return
		}
		supReconnects.Add(1)
		s.mu.Lock()
		reset := s.peerReset
		s.peerReset = false
		s.mu.Unlock()
		if reset {
			s.notifyPeerReset()
		}
		s.notifyReconnect()
		sc = nc
	}
}

// reconnect runs the jittered-backoff connect/resync cycle and returns
// the installed incarnation.
func (s *SupervisedLink) reconnect() (*supConn, error) {
	delay := s.cfg.ReconnectBase
	var lastErr error
	for attempt := 0; attempt < s.cfg.ReconnectAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-s.done:
				return nil, ErrLinkClosed
			case <-time.After(jitterDuration(delay, s.cfg.Jitter)):
			}
			delay *= 2
			if delay > s.cfg.ReconnectMax {
				delay = s.cfg.ReconnectMax
			}
		}
		select {
		case <-s.done:
			return nil, ErrLinkClosed
		default:
		}
		c, err := s.connect()
		if err != nil {
			lastErr = err
			continue
		}
		sc, err := s.resync(c)
		if err != nil {
			if cl, ok := c.(io.Closer); ok {
				cl.Close()
			}
			if errors.Is(err, ErrPeerStateLost) || errors.Is(err, ErrReplayGap) {
				return nil, err // unrecoverable: retrying cannot help
			}
			lastErr = err
			continue
		}
		return sc, nil
	}
	return nil, fmt.Errorf("comm: supervised link: %d reconnect attempts exhausted: %w", s.cfg.ReconnectAttempts, lastErr)
}

// resync runs the re-handshake on a fresh connection: exchange RESYNC
// frames, prune the acknowledged replay prefix, replay the rest, then
// install the connection and start its goroutines.
//
// The connection is deliberately NOT published in s.conn until every
// buffered frame has been replayed, so user writers cannot interleave
// with the replay; a writer that buffers a frame during the replay
// either has it picked up by the replay loop's growth pass or writes it
// itself after installation — a possible duplicate send, which the
// receiver's sequence check drops.
func (s *SupervisedLink) resync(c Framer) (*supConn, error) {
	restore := func() {}
	if d, ok := c.(deadliner); ok {
		r0, w0 := d.Timeouts()
		d.SetTimeouts(s.cfg.ResyncTimeout, w0)
		restore = func() { d.SetTimeouts(r0, w0) }
	}
	defer restore()
	s.mu.Lock()
	delivered, highest := s.delivered, s.nextSeq-1
	s.mu.Unlock()
	var hdr [supHeaderBytes]byte
	putSupHeader(hdr[:], supKindResync, delivered, highest)
	if err := c.WriteFrame(hdr[:]); err != nil {
		return nil, fmt.Errorf("comm: supervised resync write: %w", err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("comm: supervised resync read: %w", err)
	}
	kind, peerDelivered, peerSent, _, err := parseSupFrame(f)
	if err != nil || kind != supKindResync {
		return nil, fmt.Errorf("comm: supervised resync: peer is not speaking the supervised protocol (kind 0x%02x, err %v)", kind, err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, s.err
	}
	if stateLost := peerDelivered > s.nextSeq-1 || s.delivered > peerSent; stateLost {
		if !s.cfg.AllowPeerRestart {
			if peerDelivered > s.nextSeq-1 {
				s.mu.Unlock()
				return nil, fmt.Errorf("comm: peer acknowledges frame %d, only %d were sent: %w", peerDelivered, s.nextSeq-1, ErrPeerStateLost)
			}
			s.mu.Unlock()
			return nil, fmt.Errorf("comm: peer claims %d frames sent, %d were already delivered: %w", peerSent, s.delivered, ErrPeerStateLost)
		}
		// Tolerated peer restart: the old conversation is unrecoverable on
		// the wire, but the application can re-derive it. Reset to a fresh
		// stream — shed every unacknowledged frame (the restarted peer
		// could not sequence-check a replay anyway) and restart sequence
		// numbers from 1 on both directions. Both ends run this same check,
		// so the side that kept state resets to match the fresh side.
		shedFrames := int64(len(s.replay))
		shedBytes := s.replayBytes
		s.replay = nil
		s.replayBytes = 0
		s.nextSeq = 1
		s.delivered = 0
		s.peerAck = 0
		s.peerReset = true
		if shedFrames > 0 {
			supShedFrames.Add(shedFrames)
			supBufferedFrames.Add(-shedFrames)
			supBufferedBytes.Add(-shedBytes)
			s.space.Broadcast()
		}
		supPeerResets.Add(1)
		peerDelivered = 0
	}
	// Frames the peer delivered but whose acks died with the old
	// connection: their in-flight legs are discarded here, not replayed.
	if peerDelivered > s.peerAck {
		s.peerAck = peerDelivered
	}
	discarded, discardedBytes := s.pruneLocked()
	supResyncDiscards.Add(discarded)
	if discarded > 0 {
		supBufferedFrames.Add(-discarded)
		supBufferedBytes.Add(-discardedBytes)
		s.space.Broadcast()
	}
	if len(s.replay) > 0 && s.replay[0].seq != peerDelivered+1 {
		s.mu.Unlock()
		return nil, fmt.Errorf("comm: peer needs frame %d, oldest buffered is %d: %w", peerDelivered+1, s.replay[0].seq, ErrReplayGap)
	}
	// Replay everything the peer has not seen. Writers may buffer more
	// frames while the lock is dropped (they see conn == nil and skip
	// their own write), so loop until no growth is observed under the
	// lock, then install.
	idx := 0
	for idx < len(s.replay) {
		batch := s.replay[idx:]
		idx = len(s.replay)
		s.mu.Unlock()
		for _, fr := range batch {
			if err := c.WriteFrame(fr.buf); err != nil {
				return nil, fmt.Errorf("comm: supervised replay: %w", err)
			}
		}
		supReplayedFrames.Add(int64(len(batch)))
		s.mu.Lock()
	}
	// Restore the connection's normal deadlines before publishing it:
	// once installed the mux owns the read side, and a lingering resync
	// read deadline would time out an idle (but healthy) link. restore()
	// only touches the connection's deadline fields, so calling it under
	// mu is fine; the deferred second call is idempotent.
	restore()
	s.gen++
	sc := &supConn{c: c, gen: s.gen, stop: make(chan struct{}), down: make(chan struct{})}
	s.conn = c
	s.cur = sc
	s.mu.Unlock()

	s.lastInbound.Store(time.Now().UnixNano())
	sc.wg.Add(1)
	go s.recvLoop(sc)
	if s.cfg.HeartbeatInterval > 0 {
		sc.wg.Add(1)
		go s.hbLoop(sc)
	}
	return sc, nil
}

// pruneLocked drops replay entries the peer has acknowledged. Callers
// hold s.mu and own the gauge accounting for what is returned.
func (s *SupervisedLink) pruneLocked() (frames, bytes int64) {
	for len(s.replay) > 0 && s.replay[0].seq <= s.peerAck {
		bytes += int64(len(s.replay[0].buf))
		s.replay[0].buf = nil
		s.replay = s.replay[1:]
		frames++
	}
	s.replayBytes -= bytes
	return frames, bytes
}

// noteAck processes a cumulative ack from any inbound frame.
func (s *SupervisedLink) noteAck(ack uint64) {
	s.mu.Lock()
	if ack > s.peerAck {
		s.peerAck = ack
	}
	frames, bytes := s.pruneLocked()
	if frames > 0 {
		supBufferedFrames.Add(-frames)
		supBufferedBytes.Add(-bytes)
		s.space.Broadcast()
	}
	s.mu.Unlock()
}

// recvLoop owns one incarnation's read side: sequence-check data frames
// into the inbox, answer heartbeats, absorb acks.
func (s *SupervisedLink) recvLoop(sc *supConn) {
	defer sc.wg.Done()
	for {
		f, err := sc.c.ReadFrame()
		if err != nil {
			s.connFailed(sc.gen, err)
			return
		}
		s.lastInbound.Store(time.Now().UnixNano())
		kind, a, b, payload, perr := parseSupFrame(f)
		if perr != nil {
			// Not a supervised peer: no reconnect can fix a protocol
			// mismatch.
			s.fail(perr)
			return
		}
		switch kind {
		case supKindData:
			s.noteAck(b)
			s.mu.Lock()
			del := s.delivered
			s.mu.Unlock()
			if a <= del {
				// Replay overlap (our ack for it died with the old
				// connection): drop the duplicate.
				supDupFrames.Add(1)
				continue
			}
			if a != del+1 {
				s.fail(fmt.Errorf("comm: supervised link sequence gap: frame %d after %d", a, del))
				return
			}
			// Delivery before advancing `delivered`: a frame dropped here
			// by incarnation teardown stays unacknowledged and is replayed
			// by the peer after the next resync.
			select {
			case s.inbox <- payload:
				s.mu.Lock()
				s.delivered = a
				s.mu.Unlock()
			case <-sc.stop:
				return
			case <-s.done:
				return
			}
		case supKindHB:
			s.noteAck(b)
			// Coalesce: only the newest unanswered heartbeat matters.
			select {
			case <-s.ackNudge:
			default:
			}
			select {
			case s.ackNudge <- a:
			default:
			}
		case supKindHBAck:
			s.noteAck(b)
			if obs := s.cfg.ObserveRTT; obs != nil {
				if rtt := time.Duration(time.Now().UnixNano() - int64(a)); rtt >= 0 {
					obs(rtt)
				}
			}
		case supKindResync:
			// A resync on an established connection: the peer re-dialed a
			// connection we still think is live. Declare ours dead so both
			// sides converge on a fresh handshake.
			s.connFailed(sc.gen, errors.New("comm: supervised link: unexpected resync mid-stream"))
			return
		default:
			// Unknown kind from a newer peer: ignore.
		}
	}
}

// hbLoop owns one incarnation's heartbeat side: periodic HB frames,
// HBAck replies (nudged by recvLoop), and the miss-budget death check.
func (s *SupervisedLink) hbLoop(sc *supConn) {
	defer sc.wg.Done()
	interval := s.cfg.HeartbeatInterval
	deadAfter := time.Duration(s.cfg.MissBudget+1) * interval
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-s.done:
			return
		case ts := <-s.ackNudge:
			var hdr [supHeaderBytes]byte
			s.mu.Lock()
			del := s.delivered
			s.mu.Unlock()
			putSupHeader(hdr[:], supKindHBAck, ts, del)
			if err := sc.c.WriteFrame(hdr[:]); err != nil {
				s.connFailed(sc.gen, err)
				return
			}
		case <-t.C:
			idle := time.Duration(time.Now().UnixNano() - s.lastInbound.Load())
			if idle > deadAfter {
				s.connFailed(sc.gen, fmt.Errorf("%w: no traffic for %v (budget %d × %v)",
					ErrHeartbeatExpired, idle.Round(time.Millisecond), s.cfg.MissBudget, interval))
				return
			}
			var hdr [supHeaderBytes]byte
			s.mu.Lock()
			del := s.delivered
			s.mu.Unlock()
			putSupHeader(hdr[:], supKindHB, uint64(time.Now().UnixNano()), del)
			if err := sc.c.WriteFrame(hdr[:]); err != nil {
				s.connFailed(sc.gen, err)
				return
			}
			supHeartbeats.Add(1)
		}
	}
}

// WriteFrame buffers one frame and puts it on the wire when a connection
// is up. It returns nil once the frame is safely buffered — a connection
// failure mid-write is absorbed (the frame replays on reconnect). It
// blocks for backpressure when the replay buffer is full, and only
// errors when the link is permanently dead.
func (s *SupervisedLink) WriteFrame(frame []byte) error {
	return s.writeParts(frame, nil)
}

// WriteFrameVec is WriteFrame over several parts (the frame must be
// copied into the replay buffer regardless, so this costs nothing extra).
func (s *SupervisedLink) WriteFrameVec(parts ...[]byte) error {
	return s.writeParts(nil, parts)
}

func (s *SupervisedLink) writeParts(one []byte, parts [][]byte) error {
	n := supHeaderBytes + len(one)
	for _, p := range parts {
		n += len(p)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.mu.Lock()
	// Backpressure: hold the writer while the replay buffer is over
	// budget (acks drain it; death unblocks it). A frame bigger than the
	// whole budget is still accepted when the buffer is empty.
	for !s.closed && len(s.replay) > 0 &&
		(len(s.replay) >= s.cfg.ReplayFrames || s.replayBytes+int64(n) > s.cfg.ReplayBytes) {
		s.space.Wait()
	}
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	seq := s.nextSeq
	s.nextSeq++
	buf := make([]byte, 0, n)
	var hdr [supHeaderBytes]byte
	putSupHeader(hdr[:], supKindData, seq, s.delivered)
	buf = append(buf, hdr[:]...)
	buf = append(buf, one...)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	s.replay = append(s.replay, supFrame{seq: seq, buf: buf})
	s.replayBytes += int64(n)
	supBufferedFrames.Add(1)
	supBufferedBytes.Add(int64(n))
	conn, gen := s.conn, s.gen
	s.mu.Unlock()
	if conn == nil {
		return nil // parked: the resync replay will carry it
	}
	if err := conn.WriteFrame(buf); err != nil {
		// The frame is buffered; the reconnect path replays it.
		s.connFailed(gen, err)
	}
	return nil
}

// ReadFrame returns the next delivered payload, blocking with no
// deadline (per-session timeouts belong to the mux above). Frames
// delivered before a permanent failure are still drained first.
func (s *SupervisedLink) ReadFrame() ([]byte, error) {
	select {
	case f := <-s.inbox:
		return f, nil
	default:
	}
	select {
	case f := <-s.inbox:
		return f, nil
	case <-s.done:
		select {
		case f := <-s.inbox:
			return f, nil
		default:
		}
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
}

// ReadFrameInto is ReadFrame copying into buf when it fits (the mux's
// buffer-recycling read path).
func (s *SupervisedLink) ReadFrameInto(buf []byte) ([]byte, error) {
	f, err := s.ReadFrame()
	if err != nil {
		return nil, err
	}
	if cap(buf) >= len(f) {
		out := buf[:len(f)]
		copy(out, f)
		return out, nil
	}
	return f, nil
}
