package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastSupCfg is a supervisor tuning tight enough for tests: 10ms
// heartbeats, quick reconnects, generous budgets elsewhere.
func fastSupCfg() SupervisorConfig {
	return SupervisorConfig{
		HeartbeatInterval: 10 * time.Millisecond,
		MissBudget:        3,
		ReconnectAttempts: 50,
		ReconnectBase:     5 * time.Millisecond,
		ReconnectMax:      50 * time.Millisecond,
		ResyncTimeout:     2 * time.Second,
	}
}

// supPair builds two supervised links over real TCP. faultFor, when non
// nil, wraps the dialer's raw connection per incarnation (incarnation 0
// is the first connect) — the hook DropAfterFrames tests use. Cleanup
// closes both links and the listener.
func supPair(t *testing.T, cfgA, cfgB SupervisorConfig, faultFor func(incarnation int, raw net.Conn) net.Conn) (accept, dial *SupervisedLink) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	acceptConnect := func() (Framer, error) {
		c, err := Accept(ln)
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	var incarnation atomic.Int64
	dialConnect := func() (Framer, error) {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		n := int(incarnation.Add(1)) - 1
		if faultFor != nil {
			raw = faultFor(n, raw)
		}
		return Wrap(raw), nil
	}
	// Both ends connect concurrently: the accept side blocks in Accept
	// until the dialer arrives.
	type res struct {
		s   *SupervisedLink
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := NewSupervisedLink(acceptConnect, cfgA)
		ch <- res{s, err}
	}()
	dial, err = NewSupervisedLink(dialConnect, cfgB)
	if err != nil {
		t.Fatalf("dial side: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept side: %v", r.err)
	}
	accept = r.s
	t.Cleanup(func() { accept.Close(); dial.Close() })
	return accept, dial
}

func payload(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestSupervisedLinkRoundTrip(t *testing.T) {
	a, b := supPair(t, fastSupCfg(), fastSupCfg(), nil)
	const n = 100
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.WriteFrame(payload(i)); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		f, err := b.ReadFrame()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := int(binary.LittleEndian.Uint64(f)); got != i {
			t.Fatalf("frame %d: got payload %d", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	// And the other direction, with the vectored write path.
	if err := b.WriteFrameVec([]byte("hel"), []byte("lo")); err != nil {
		t.Fatalf("write vec: %v", err)
	}
	f, err := a.ReadFrame()
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(f) != "hello" {
		t.Fatalf("got %q", f)
	}
}

func TestSupervisedLinkSurvivesFrameBoundaryDrops(t *testing.T) {
	before := SupervisorTotals()
	// Drop the dialer's outgoing stream at a frame boundary twice: once
	// 7 frames into the first connection, once 11 frames into the second.
	drops := map[int]int{0: 7, 1: 11}
	a, b := supPair(t, fastSupCfg(), fastSupCfg(), func(inc int, raw net.Conn) net.Conn {
		fc := NewFaultConn(raw)
		if n, ok := drops[inc]; ok {
			fc.DropAfterFrames(n)
		}
		return fc
	})
	const n = 200
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := b.WriteFrame(payload(i)); err != nil {
				errc <- fmt.Errorf("write %d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		f, err := a.ReadFrame()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got := int(binary.LittleEndian.Uint64(f)); got != i {
			t.Fatalf("frame %d: got payload %d (reorder or loss across reconnect)", i, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if d := SupervisorTotals().Reconnects - before.Reconnects; d < 2 {
		t.Fatalf("expected >= 2 reconnects, got %d", d)
	}
}

func TestSupervisedLinkBidirectionalUnderDrop(t *testing.T) {
	a, b := supPair(t, fastSupCfg(), fastSupCfg(), func(inc int, raw net.Conn) net.Conn {
		fc := NewFaultConn(raw)
		if inc == 0 {
			fc.DropAfterFrames(13)
		}
		return fc
	})
	const n = 60
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	send := func(s *SupervisedLink) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := s.WriteFrame(payload(i)); err != nil {
				errs <- err
				return
			}
		}
	}
	recv := func(s *SupervisedLink) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			f, err := s.ReadFrame()
			if err != nil {
				errs <- err
				return
			}
			if got := int(binary.LittleEndian.Uint64(f)); got != i {
				errs <- fmt.Errorf("frame %d: got %d", i, got)
				return
			}
		}
	}
	wg.Add(4)
	go send(a)
	go send(b)
	go recv(a)
	go recv(b)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestSupervisedLinkDetectsPeerRestart(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	cfg := fastSupCfg()
	cfg.ReconnectAttempts = 3

	// The "peer" is scripted by hand: first incarnation speaks the
	// protocol and delivers one data frame; the restarted incarnation
	// answers the resync with zeroed state, as a fresh process would.
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- func() error {
			c, err := Accept(ln)
			if err != nil {
				return err
			}
			f, err := c.ReadFrame() // link's RESYNC
			if err != nil {
				return err
			}
			if f[0] != supKindResync {
				return fmt.Errorf("expected resync, got kind 0x%02x", f[0])
			}
			var hdr [supHeaderBytes]byte
			putSupHeader(hdr[:], supKindResync, 0, 0)
			if err := c.WriteFrame(hdr[:]); err != nil {
				return err
			}
			// Deliver data frame seq 1, then die.
			putSupHeader(hdr[:], supKindData, 1, 0)
			if err := c.WriteFrameVec(hdr[:], []byte("x")); err != nil {
				return err
			}
			time.Sleep(50 * time.Millisecond)
			c.Close()

			// Restarted peer: resync claiming nothing sent, nothing
			// delivered — while the link already delivered seq 1.
			c2, err := Accept(ln)
			if err != nil {
				return err
			}
			defer c2.Close()
			if _, err := c2.ReadFrame(); err != nil {
				return err
			}
			putSupHeader(hdr[:], supKindResync, 0, 0)
			if err := c2.WriteFrame(hdr[:]); err != nil {
				return err
			}
			// The link should give up rather than resync; absorb reads
			// until it closes.
			for {
				if _, err := c2.ReadFrame(); err != nil {
					return nil
				}
			}
		}()
	}()

	s, err := NewSupervisedLink(func() (Framer, error) {
		return Dial(ln.Addr().String())
	}, cfg)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer s.Close()
	if f, err := s.ReadFrame(); err != nil || string(f) != "x" {
		t.Fatalf("first frame: %q, %v", f, err)
	}
	// The next read outlives the first connection; it must fail with
	// ErrPeerStateLost once the restarted peer's resync is rejected.
	if _, err := s.ReadFrame(); !errors.Is(err, ErrPeerStateLost) {
		t.Fatalf("expected ErrPeerStateLost, got %v", err)
	}
	if err := <-peerDone; err != nil {
		t.Fatalf("scripted peer: %v", err)
	}
}

func TestSupervisedLinkHeartbeatDetectsSilentPeer(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	var connects atomic.Int64
	secondConnect := make(chan struct{})
	// Scripted peer: completes the resync handshake, then goes silent
	// without closing — the TCP blackhole case keepalive takes minutes to
	// notice. Runs for each incarnation so the reconnect also lands here.
	go func() {
		for {
			c, err := Accept(ln)
			if err != nil {
				return
			}
			go func(c *Conn) {
				if _, err := c.ReadFrame(); err != nil {
					return
				}
				var hdr [supHeaderBytes]byte
				putSupHeader(hdr[:], supKindResync, 0, 0)
				c.WriteFrame(hdr[:])
				// Silent: never read or write again, never close.
			}(c)
		}
	}()

	cfg := fastSupCfg()
	cfg.ReconnectAttempts = 5
	s, err := NewSupervisedLink(func() (Framer, error) {
		if connects.Add(1) == 2 {
			close(secondConnect)
		}
		return Dial(ln.Addr().String())
	}, cfg)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer s.Close()

	// With a 10ms interval and miss budget 3 the silent peer must be
	// declared dead and a second connect attempted well within a second.
	select {
	case <-secondConnect:
	case <-time.After(5 * time.Second):
		t.Fatalf("heartbeat expiry never triggered a reconnect (connects=%d)", connects.Load())
	}
}

func TestSupervisedLinkCloseShedsBufferedFrames(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	// Handshake-only peer: acknowledges the resync and then ignores the
	// link (never acks), so written frames stay buffered.
	go func() {
		c, err := Accept(ln)
		if err != nil {
			return
		}
		if _, err := c.ReadFrame(); err != nil {
			return
		}
		var hdr [supHeaderBytes]byte
		putSupHeader(hdr[:], supKindResync, 0, 0)
		c.WriteFrame(hdr[:])
		for {
			if _, err := c.ReadFrame(); err != nil {
				return
			}
		}
	}()
	cfg := fastSupCfg()
	cfg.HeartbeatInterval = -1 // no heartbeats: nothing inbound would reset the clock
	s, err := NewSupervisedLink(func() (Framer, error) {
		return Dial(ln.Addr().String())
	}, cfg)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	before := SupervisorTotals()
	for i := 0; i < 5; i++ {
		if err := s.WriteFrame(payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	s.Close()
	after := SupervisorTotals()
	if d := after.ShedFrames - before.ShedFrames; d != 5 {
		t.Fatalf("expected 5 shed frames, got %d", d)
	}
	if err := s.WriteFrame([]byte("late")); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := s.ReadFrame(); !errors.Is(err, ErrLinkClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestSupervisedLinkWriterBackpressure(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	release := make(chan struct{})
	// Peer that completes the handshake but only starts acking (by
	// reading; acks ride its heartbeats) after release. Until then the
	// link's replay buffer can only drain via acks — which never come.
	go func() {
		c, err := Accept(ln)
		if err != nil {
			return
		}
		if _, err := c.ReadFrame(); err != nil {
			return
		}
		var hdr [supHeaderBytes]byte
		putSupHeader(hdr[:], supKindResync, 0, 0)
		c.WriteFrame(hdr[:])
		var delivered uint64
		<-release
		for {
			f, err := c.ReadFrame()
			if err != nil {
				return
			}
			kind, a, _, _, err := parseSupFrame(f)
			if err != nil {
				return
			}
			if kind == supKindData && a == delivered+1 {
				delivered = a
				putSupHeader(hdr[:], supKindHB, 1, delivered)
				if err := c.WriteFrame(hdr[:]); err != nil {
					return
				}
			}
		}
	}()
	cfg := fastSupCfg()
	cfg.HeartbeatInterval = -1
	cfg.ReplayFrames = 4
	s, err := NewSupervisedLink(func() (Framer, error) {
		return Dial(ln.Addr().String())
	}, cfg)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer s.Close()
	wrote := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			if err := s.WriteFrame(payload(i)); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		close(wrote)
	}()
	// The 5th write must park on the full replay buffer.
	select {
	case <-wrote:
		t.Fatalf("writes finished with no acks and ReplayFrames=4")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case <-wrote:
	case <-time.After(5 * time.Second):
		t.Fatalf("writer still parked after acks resumed")
	}
}

func TestJitterDurationBounds(t *testing.T) {
	const d = time.Second
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		j := jitterDuration(d, 0.2)
		if j < 800*time.Millisecond || j > 1200*time.Millisecond {
			t.Fatalf("jitter %v outside +-20%% of %v", j, d)
		}
		seen[j] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter looks constant: %d distinct values in 200 draws", len(seen))
	}
	if got := jitterDuration(d, 0); got != d {
		t.Fatalf("zero jitter changed the duration: %v", got)
	}
	if got := jitterDuration(d, -1); got != d {
		t.Fatalf("negative jitter changed the duration: %v", got)
	}
}

func TestFaultConnDropAfterFrames(t *testing.T) {
	left, right := net.Pipe()
	fc := NewFaultConn(left)
	fc.DropAfterFrames(2)
	w := Wrap(fc)
	r := Wrap(right)

	read := make(chan []byte, 3)
	readErr := make(chan error, 1)
	go func() {
		for {
			f, err := r.ReadFrame()
			if err != nil {
				readErr <- err
				return
			}
			read <- append([]byte(nil), f...)
		}
	}()

	if err := w.WriteFrame([]byte("first")); err != nil {
		t.Fatalf("frame 1: %v", err)
	}
	if err := w.WriteFrame([]byte("second")); err != nil {
		// The cut lands exactly at this frame's end; a nil error is also
		// acceptable if the close raced after the full write.
		if !errors.Is(err, ErrInjected) && !isClosedErr(err) {
			t.Fatalf("frame 2: %v", err)
		}
	}
	if err := w.WriteFrame([]byte("third")); err == nil {
		t.Fatalf("frame 3 succeeded after the armed drop")
	}
	for i, want := range []string{"first", "second"} {
		select {
		case f := <-read:
			if string(f) != want {
				t.Fatalf("frame %d: got %q want %q", i, f, want)
			}
		case err := <-readErr:
			t.Fatalf("reader failed before frame %d: %v", i, err)
		case <-time.After(2 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatalf("reader got nil error after the drop")
		}
	case f := <-read:
		t.Fatalf("unexpected frame after the drop: %q", f)
	case <-time.After(2 * time.Second):
		t.Fatalf("reader never observed the drop")
	}
	if fc.Stats().Injected == 0 {
		t.Fatalf("drop not counted as injected")
	}
}

// TestFaultConnDropAfterFramesFragmented checks the cut still lands on a
// frame boundary when the writer fragments its writes mid-frame.
func TestFaultConnDropAfterFramesFragmented(t *testing.T) {
	left, right := net.Pipe()
	fc := NewFaultConn(left)
	fc.WriteChunk = 3
	fc.DropAfterFrames(1)
	w := Wrap(fc)
	r := Wrap(right)

	got := make(chan []byte, 1)
	readErr := make(chan error, 1)
	go func() {
		f, err := r.ReadFrame()
		if err != nil {
			readErr <- err
			return
		}
		got <- append([]byte(nil), f...)
		_, err = r.ReadFrame()
		readErr <- err
	}()

	if err := w.WriteFrame([]byte("only frame")); err != nil && !errors.Is(err, ErrInjected) && !isClosedErr(err) {
		t.Fatalf("frame 1: %v", err)
	}
	select {
	case f := <-got:
		if string(f) != "only frame" {
			t.Fatalf("got %q", f)
		}
	case err := <-readErr:
		t.Fatalf("read: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatalf("frame never arrived")
	}
	if err := <-readErr; err == nil {
		t.Fatalf("second read succeeded after the drop")
	}
}

func isClosedErr(err error) bool {
	return err != nil && (errors.Is(err, net.ErrClosed) || errors.Is(err, ErrInjected))
}

// TestSupervisedLinkOnReconnectHook checks registered callbacks fire on
// every successful reconnect — the hook stale-rate-estimate consumers
// (the wire codec's bandwidth EWMA) use to reset per-link state when
// the underlying connection is replaced.
func TestSupervisedLinkOnReconnectHook(t *testing.T) {
	var fired atomic.Int64
	a, b := supPair(t, fastSupCfg(), fastSupCfg(), func(inc int, raw net.Conn) net.Conn {
		fc := NewFaultConn(raw)
		if inc == 0 {
			fc.DropAfterFrames(5)
		}
		return fc
	})
	b.OnReconnect(func() { fired.Add(1) })
	const n = 50
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := b.WriteFrame(payload(i)); err != nil {
				errc <- fmt.Errorf("write %d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		if _, err := a.ReadFrame(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if fired.Load() < 1 {
		t.Fatal("OnReconnect callback did not fire across a reconnect")
	}
}

// TestSupervisedLinkAllowsPeerRestart checks the tolerant resync mode:
// under AllowPeerRestart a peer that answers the resync with zeroed
// state (a restarted process) resets the stream instead of failing the
// link with ErrPeerStateLost — unacked buffered frames are shed with
// accounting, sequence numbering restarts at 1, and the OnPeerReset
// hooks fire before traffic resumes, so protocol layers can re-state
// their per-link conversation (the dealer feed's RESUME).
func TestSupervisedLinkAllowsPeerRestart(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	cfg := fastSupCfg()
	cfg.AllowPeerRestart = true

	peerDone := make(chan error, 1)
	go func() {
		peerDone <- func() error {
			// First incarnation: handshake, deliver data seq 1, absorb
			// whatever the link writes without acking, then die.
			c, err := Accept(ln)
			if err != nil {
				return err
			}
			if _, err := c.ReadFrame(); err != nil {
				return err
			}
			var hdr [supHeaderBytes]byte
			putSupHeader(hdr[:], supKindResync, 0, 0)
			if err := c.WriteFrame(hdr[:]); err != nil {
				return err
			}
			putSupHeader(hdr[:], supKindData, 1, 0)
			if err := c.WriteFrameVec(hdr[:], []byte("x")); err != nil {
				return err
			}
			time.Sleep(50 * time.Millisecond)
			c.Close()

			// Restarted incarnation: resyncs claiming nothing sent and
			// nothing delivered, while the link has delivered seq 1 and
			// holds an unacked write — detectable state loss on both axes.
			c2, err := Accept(ln)
			if err != nil {
				return err
			}
			defer c2.Close()
			if _, err := c2.ReadFrame(); err != nil {
				return err
			}
			putSupHeader(hdr[:], supKindResync, 0, 0)
			if err := c2.WriteFrame(hdr[:]); err != nil {
				return err
			}
			// The post-reset conversation restarts at seq 1: the shed "w"
			// is gone, the next app write is the first frame of the new
			// stream.
			for {
				f, err := c2.ReadFrame()
				if err != nil {
					return err
				}
				kind, seq, _, payload, err := parseSupFrame(f)
				if err != nil {
					return err
				}
				if kind != supKindData {
					continue
				}
				if seq != 1 || string(payload) != "z" {
					return fmt.Errorf("post-reset frame: seq %d payload %q, want seq 1 %q", seq, payload, "z")
				}
				putSupHeader(hdr[:], supKindData, 1, 1)
				return c2.WriteFrameVec(hdr[:], []byte("y"))
			}
		}()
	}()

	resetsBefore := SupervisorTotals().PeerResets
	s, err := NewSupervisedLink(func() (Framer, error) {
		return Dial(ln.Addr().String())
	}, cfg)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer s.Close()
	resets := make(chan struct{}, 4)
	s.OnPeerReset(func() { resets <- struct{}{} })

	if f, err := s.ReadFrame(); err != nil || string(f) != "x" {
		t.Fatalf("first frame: %q, %v", f, err)
	}
	if err := s.WriteFrame([]byte("w")); err != nil {
		t.Fatalf("pre-restart write: %v", err)
	}
	select {
	case <-resets:
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerReset hook did not fire across the peer restart")
	}
	// Writes after the reset ride the fresh stream from seq 1.
	if err := s.WriteFrame([]byte("z")); err != nil {
		t.Fatalf("post-reset write: %v", err)
	}
	if f, err := s.ReadFrame(); err != nil || string(f) != "y" {
		t.Fatalf("post-reset read: %q, %v", f, err)
	}
	if err := <-peerDone; err != nil {
		t.Fatalf("scripted peer: %v", err)
	}
	if SupervisorTotals().PeerResets <= resetsBefore {
		t.Fatal("PeerResets not accounted")
	}
}
