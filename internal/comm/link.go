// Package comm is the inter-node communication substrate. The paper's
// deployment is a client and two servers on 100 Gb/s InfiniBand driven by
// MPI; here a directed Link charges encoded payload bytes against a
// simtime resource (so transfers overlap computation exactly like the
// paper's schedules), while a separate TCP transport moves the same framed
// byte stream over real sockets for integration tests and the examples.
//
// The compressed transmission of §4.4 is implemented by DeltaSender /
// DeltaReceiver: between epochs only Δ = cur − prev changes E and F
// (Eqs. 10–12), so when Δ is at least 75 % zero it is CSR-encoded. Byte
// counts are measured on the actual encoded frames, not estimated.
package comm

import (
	"fmt"

	"parsecureml/internal/hw"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// Stats accumulates traffic accounting for one link direction.
type Stats struct {
	Messages        int
	WireBytes       int64 // bytes actually sent
	DenseBytes      int64 // bytes a dense-only sender would have sent
	CompressedSends int
	Seconds         float64 // modeled transfer time charged
}

// SavedFraction returns the fraction of dense traffic avoided by
// compression (0 when nothing was sent).
func (s Stats) SavedFraction() float64 {
	if s.DenseBytes == 0 {
		return 0
	}
	return 1 - float64(s.WireBytes)/float64(s.DenseBytes)
}

// Link is one directed server→server channel, metered by a LinkModel and
// serialized on its own simtime resource.
type Link struct {
	eng   *simtime.Engine
	res   *simtime.Resource
	model hw.LinkModel
	stats Stats
}

// NewLink creates a directed link named e.g. "net.s0->s1" on eng.
func NewLink(name string, model hw.LinkModel, eng *simtime.Engine) *Link {
	return &Link{eng: eng, res: eng.Resource(name), model: model}
}

// Stats returns a copy of the link's accounting.
func (l *Link) Stats() Stats { return l.stats }

// ResetStats zeroes the accounting.
func (l *Link) ResetStats() { l.stats = Stats{} }

// sendBytes charges one framed payload and returns its completion task.
func (l *Link) sendBytes(label string, wire, dense int, compressed bool, deps ...*simtime.Task) *simtime.Task {
	dur := l.model.TransferTime(wire)
	t := l.eng.Schedule(l.res, "net", fmt.Sprintf("%s %dB", label, wire), dur, deps...)
	l.stats.Messages++
	l.stats.WireBytes += int64(wire)
	l.stats.DenseBytes += int64(dense)
	l.stats.Seconds += dur
	if compressed {
		l.stats.CompressedSends++
	}
	return t
}

// SendMatrix transmits a dense matrix, returning the encoded frame (for a
// paired real transport) and the completion task.
func (l *Link) SendMatrix(m *tensor.Matrix, deps ...*simtime.Task) ([]byte, *simtime.Task) {
	frame := tensor.EncodeMatrix(nil, m)
	t := l.sendBytes("dense", len(frame), len(frame), false, deps...)
	return frame, t
}

// SendRaw transmits pre-encoded bytes (e.g. scalars, control messages).
func (l *Link) SendRaw(frame []byte, deps ...*simtime.Task) *simtime.Task {
	return l.sendBytes("raw", len(frame), len(frame), false, deps...)
}

// SendSized charges a transmission of the given size without a payload —
// the dry-run path for messages whose values are not materialized.
func (l *Link) SendSized(label string, bytes int, deps ...*simtime.Task) *simtime.Task {
	return l.sendBytes(label, bytes, bytes, false, deps...)
}

// DeltaSender implements the sending half of the compressed transmission.
// The first Send always ships the full dense matrix (establishing the
// receiver's base); subsequent Sends ship Δ = cur − prev, CSR-encoded when
// it is at least Threshold sparse.
type DeltaSender struct {
	Link      *Link
	Threshold float64 // zero-fraction required to compress; default 0.75
	Enabled   bool    // when false, always sends dense (the Fig. 16 baseline)
	// DrySparsity is the assumed delta sparsity when the tensor compute
	// switch is off and real values are unavailable (see tensor.SetCompute).
	// Calibrate it from a small-scale real run; 0 (dense) is conservative.
	DrySparsity float64
	prev        *tensor.Matrix
	dryEpochs   int
}

// NewDeltaSender returns a compression-enabled sender on l.
func NewDeltaSender(l *Link) *DeltaSender {
	return &DeltaSender{Link: l, Threshold: tensor.DefaultSparsityThreshold, Enabled: true}
}

// Frame type bytes: the wire carries its own semantics so sender and
// receiver need no out-of-band agreement about compression settings.
const (
	frameBase  = 0x42 // 'B': full dense matrix; receiver replaces state
	frameDelta = 0x44 // 'D': delta (dense or CSR); receiver accumulates
)

// Send transmits cur, returning the encoded frame, the completion task and
// whether the frame was CSR-compressed.
func (s *DeltaSender) Send(cur *tensor.Matrix, deps ...*simtime.Task) ([]byte, *simtime.Task, bool) {
	// +1 for the frame-type byte a dense-only sender would also pay.
	denseSize := 1 + tensor.EncodedSizeDense(cur.Rows, cur.Cols)
	if !tensor.ComputeEnabled() {
		return s.sendDry(cur, denseSize, deps...)
	}
	if s.prev == nil || !s.Enabled || !s.prev.SameShape(cur) {
		if s.Enabled {
			s.prev = cur.Clone()
		}
		frame := tensor.EncodeMatrix([]byte{frameBase}, cur)
		t := s.Link.sendBytes("dense", len(frame), denseSize, false, deps...)
		return frame, t, false
	}
	delta := tensor.SubTo(cur, s.prev)
	s.prev.CopyFrom(cur)
	if tensor.CompressionWorthwhile(delta, s.Threshold) {
		frame := tensor.EncodeCSR([]byte{frameDelta}, tensor.FromDense(delta))
		t := s.Link.sendBytes("delta.csr", len(frame), denseSize, true, deps...)
		return frame, t, true
	}
	frame := tensor.EncodeMatrix([]byte{frameDelta}, delta)
	t := s.Link.sendBytes("delta.dense", len(frame), denseSize, false, deps...)
	return frame, t, false
}

// sendDry charges a dry-run (shape-only) transmission: the first epoch is
// the dense base; later epochs are deltas whose sparsity is DrySparsity.
// The returned frame is nil — receivers are skipped in dry runs.
func (s *DeltaSender) sendDry(cur *tensor.Matrix, denseSize int, deps ...*simtime.Task) ([]byte, *simtime.Task, bool) {
	first := s.dryEpochs == 0
	s.dryEpochs++
	if first || !s.Enabled {
		return nil, s.Link.sendBytes("dense", denseSize, denseSize, false, deps...), false
	}
	if s.DrySparsity >= s.Threshold {
		nnz := int(float64(cur.Rows*cur.Cols) * (1 - s.DrySparsity))
		// Mirror CompressionWorthwhile's size crossover: a sparse-enough
		// delta still goes dense when CSR index overhead outweighs the win.
		if wire := 1 + tensor.EncodedSizeCSR(cur.Rows, cur.Cols, nnz); wire < denseSize {
			return nil, s.Link.sendBytes("delta.csr", wire, denseSize, true, deps...), true
		}
	}
	return nil, s.Link.sendBytes("delta.dense", denseSize, denseSize, false, deps...), false
}

// DeltaReceiver reconstructs the sender's stream. The protocol is
// stateful: the first frame is the dense base, subsequent frames are
// deltas (dense or CSR) accumulated onto it.
type DeltaReceiver struct {
	cur  *tensor.Matrix
	base bool
}

// Receive decodes one frame and returns the reconstructed current matrix
// (a copy safe to retain).
func (r *DeltaReceiver) Receive(frame []byte) (*tensor.Matrix, error) {
	if len(frame) < 1 {
		return nil, fmt.Errorf("comm: empty frame")
	}
	kind := frame[0]
	dense, sparse, _, err := tensor.Decode(frame[1:])
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameBase:
		if dense == nil {
			return nil, fmt.Errorf("comm: base frame must be dense")
		}
		r.cur = dense.Clone()
		r.base = true
	case frameDelta:
		if !r.base {
			return nil, fmt.Errorf("comm: delta frame before base")
		}
		if dense != nil {
			tensor.Add(r.cur, r.cur, dense)
		} else {
			sparse.AddInto(r.cur)
		}
	default:
		return nil, fmt.Errorf("comm: unknown frame type 0x%02x", kind)
	}
	return r.cur.Clone(), nil
}

// Reset drops the sender's base so its next Send ships a dense base
// frame. Delta streams are fp32-history-dependent: two runs produce
// bit-identical values only if their accumulated delta histories match,
// so a checkpoint/restore boundary must rebase every stream on both
// sides (pair with DeltaReceiver.Reset on the receiving end).
func (s *DeltaSender) Reset() { s.prev, s.dryEpochs = nil, 0 }

// Reset clears receiver state (e.g. when the sender restarts a stream).
func (r *DeltaReceiver) Reset() { r.cur, r.base = nil, false }
