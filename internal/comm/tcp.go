package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// TCP transport: the same frames the modeled Link meters, moved over real
// sockets. The paper's MPI layer plays this role; stdlib net is the
// closest equivalent. Frames are length-prefixed (u32 little-endian).

// MaxFrameBytes bounds a single frame (1 GiB) to fail fast on corrupted
// length prefixes.
const MaxFrameBytes = 1 << 30

// Conn is a framed connection.
type Conn struct {
	c net.Conn
}

// WriteFrame sends one length-prefixed frame.
func (fc *Conn) WriteFrame(frame []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := fc.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("comm: write frame header: %w", err)
	}
	if _, err := fc.c.Write(frame); err != nil {
		return fmt.Errorf("comm: write frame body: %w", err)
	}
	return nil
}

// ReadFrame receives one frame.
func (fc *Conn) ReadFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fc.c, hdr[:]); err != nil {
		return nil, fmt.Errorf("comm: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("comm: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(fc.c, frame); err != nil {
		return nil, fmt.Errorf("comm: read frame body: %w", err)
	}
	return frame, nil
}

// Close closes the underlying connection.
func (fc *Conn) Close() error { return fc.c.Close() }

// Pipe returns two framed connections wired to each other in memory
// (net.Pipe), handy for tests.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return &Conn{c: a}, &Conn{c: b}
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0") and returns
// it; use Accept to obtain framed connections.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Accept wraps l.Accept with framing.
func Accept(l net.Listener) (*Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}

// Dial connects to a framed TCP peer.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{c: c}, nil
}
