package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP transport: the same frames the modeled Link meters, moved over real
// sockets. The paper's MPI layer plays this role; stdlib net is the
// closest equivalent. Frames are length-prefixed (u32 little-endian).
//
// Concurrency contract: WriteFrame and ReadFrame are each safe for
// concurrent use — a frame is written and read atomically (never
// interleaved with another goroutine's frame) — but the ordering of
// frames from concurrent writers is unspecified, and concurrent readers
// race for whole frames. The usual shape is one reader and any number of
// writers per direction.

// MaxFrameBytes bounds a single frame (1 GiB) to fail fast on corrupted
// length prefixes. The bound is enforced symmetrically: WriteFrame
// rejects oversized frames before touching the wire (a frame over 4 GiB
// would otherwise silently truncate its u32 length prefix and desync the
// stream), and ReadFrame rejects prefixes that claim more.
const MaxFrameBytes = 1 << 30

// ErrFrameTooLarge is wrapped by WriteFrame and ReadFrame when a frame
// exceeds the size limit.
var ErrFrameTooLarge = errors.New("frame exceeds size limit")

// Framer is the frame-level transport contract: atomic whole-frame writes
// and reads. *Conn implements it over real sockets; the mpc serving layer
// wraps it to scope frames to a request.
type Framer interface {
	WriteFrame(frame []byte) error
	ReadFrame() ([]byte, error)
}

// VecFramer is the optional zero-copy extension of Framer: one frame
// written from several non-contiguous parts (header + payload) without
// assembling them first. *Conn implements it; wrappers that prefix frames
// (the mpc request tagging) use it to avoid one full-frame copy per
// write.
type VecFramer interface {
	WriteFrameVec(parts ...[]byte) error
}

// FramerInto is the optional allocation-free extension of Framer: a frame
// read into a caller-owned buffer. *Conn implements it; steady-state
// serving loops use it to reuse one receive buffer per session.
type FramerInto interface {
	ReadFrameInto(buf []byte) ([]byte, error)
}

// Package-wide traffic totals across every *Conn, mirrored by the
// per-Conn counters. The observability layer exposes these through
// read-only collectors (internal/mpc registers them on obs.Default), so
// a metrics scrape needs no handle on individual connections.
var (
	totalBytesRead, totalBytesWritten   atomic.Int64
	totalFramesRead, totalFramesWritten atomic.Int64
)

// WireTotals returns process-wide framed-transport accounting: bytes and
// whole frames moved in each direction (length prefixes included).
func WireTotals() (bytesIn, bytesOut, framesIn, framesOut int64) {
	return totalBytesRead.Load(), totalBytesWritten.Load(),
		totalFramesRead.Load(), totalFramesWritten.Load()
}

// ConnStats is one connection's traffic accounting (length prefixes
// included in the byte counts).
type ConnStats struct {
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
}

// Conn is a framed connection with optional per-frame deadlines.
type Conn struct {
	c     net.Conn
	limit int // max frame size; MaxFrameBytes unless overridden in tests

	wmu, rmu sync.Mutex
	// Vectored-write scratch (guarded by wmu): the header bytes and the
	// net.Buffers backing array, reused so WriteFrameVec does not allocate
	// per frame.
	whdr [4]byte
	wvec [][]byte
	// wnb is the net.Buffers header handed to WriteTo. A field rather
	// than a local: WriteTo passes its receiver through an interface
	// check, so a stack header would escape to the heap on every frame.
	wnb net.Buffers
	// Read-header scratch (guarded by rmu), a field so io.ReadFull's
	// interface call cannot force a per-read heap escape.
	rhdr [4]byte
	// Per-frame timeouts (nanoseconds); 0 means no deadline. Stored
	// atomically so a serving loop can keep reading while timeouts change.
	readTO, writeTO atomic.Int64
	// Traffic counters (length prefixes included), updated on every
	// successful frame; see Stats and the package WireTotals.
	bytesIn, bytesOut   atomic.Int64
	framesIn, framesOut atomic.Int64
}

func newConn(c net.Conn) *Conn { return &Conn{c: c, limit: MaxFrameBytes} }

// Wrap frames an arbitrary net.Conn — the hook for injecting a FaultConn
// (or any other transport) under the framed codec.
func Wrap(c net.Conn) *Conn { return newConn(c) }

// SetTimeouts configures per-frame deadlines: every subsequent WriteFrame
// (ReadFrame) must complete within write (read) or fail with a timeout
// error (see IsTimeout). Zero disables the corresponding deadline.
// Prefer calling this before the connection is in active use.
func (fc *Conn) SetTimeouts(read, write time.Duration) {
	fc.readTO.Store(int64(read))
	fc.writeTO.Store(int64(write))
	if read <= 0 {
		fc.c.SetReadDeadline(time.Time{})
	}
	if write <= 0 {
		fc.c.SetWriteDeadline(time.Time{})
	}
}

// Timeouts returns the per-frame deadlines last set with SetTimeouts
// (zero meaning disabled), so a caller can scope a temporary deadline —
// the handshake path does — and restore the previous configuration.
func (fc *Conn) Timeouts() (read, write time.Duration) {
	return time.Duration(fc.readTO.Load()), time.Duration(fc.writeTO.Load())
}

// Stats returns a snapshot of the connection's traffic counters.
func (fc *Conn) Stats() ConnStats {
	return ConnStats{
		BytesIn:   fc.bytesIn.Load(),
		BytesOut:  fc.bytesOut.Load(),
		FramesIn:  fc.framesIn.Load(),
		FramesOut: fc.framesOut.Load(),
	}
}

// countWrite charges one sent frame (n payload bytes) to the connection
// and package totals.
func (fc *Conn) countWrite(n int) {
	fc.bytesOut.Add(int64(n) + 4)
	fc.framesOut.Add(1)
	totalBytesWritten.Add(int64(n) + 4)
	totalFramesWritten.Add(1)
}

// IsTimeout reports whether err (from WriteFrame/ReadFrame) is a deadline
// expiry rather than a peer failure.
func IsTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// WriteFrame sends one length-prefixed frame atomically: concurrent
// writers never interleave bytes. Frames over MaxFrameBytes are rejected
// before anything is written, mirroring ReadFrame's limit — without this
// a ≥4 GiB frame would truncate its u32 length prefix and desync the
// stream.
func (fc *Conn) WriteFrame(frame []byte) error {
	if len(frame) > fc.limit {
		return fmt.Errorf("comm: write frame of %d bytes (limit %d): %w", len(frame), fc.limit, ErrFrameTooLarge)
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	binary.LittleEndian.PutUint32(fc.whdr[:], uint32(len(frame)))
	if d := fc.writeTO.Load(); d > 0 {
		fc.c.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
	// One vectored write keeps header+body a single syscall on TCP; the
	// mutex keeps the pair atomic on transports without writev. The header
	// and vector scratch live on the Conn so steady-state writes do not
	// allocate.
	fc.wvec = append(fc.wvec[:0], fc.whdr[:], frame)
	fc.wnb = net.Buffers(fc.wvec)
	if _, err := fc.wnb.WriteTo(fc.c); err != nil {
		return fmt.Errorf("comm: write frame: %w", err)
	}
	fc.countWrite(len(frame))
	return nil
}

// WriteFrameVec sends one frame assembled from several parts, atomically
// like WriteFrame, without copying them into a contiguous buffer first:
// the header and every part go to the socket as a single vectored write.
// This is the zero-copy path for wrappers that prefix frames (request
// tags) and for encode-in-place senders.
func (fc *Conn) WriteFrameVec(parts ...[]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total > fc.limit {
		return fmt.Errorf("comm: write frame of %d bytes (limit %d): %w", total, fc.limit, ErrFrameTooLarge)
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	binary.LittleEndian.PutUint32(fc.whdr[:], uint32(total))
	if d := fc.writeTO.Load(); d > 0 {
		fc.c.SetWriteDeadline(time.Now().Add(time.Duration(d)))
	}
	// Reuse the connection's scratch vector so steady-state writes do not
	// allocate the net.Buffers backing array (guarded by wmu).
	fc.wvec = fc.wvec[:0]
	fc.wvec = append(fc.wvec, fc.whdr[:])
	fc.wvec = append(fc.wvec, parts...)
	fc.wnb = net.Buffers(fc.wvec)
	if _, err := fc.wnb.WriteTo(fc.c); err != nil {
		return fmt.Errorf("comm: write frame: %w", err)
	}
	fc.countWrite(total)
	return nil
}

// ReadFrame receives one frame. The read deadline, when set, covers the
// whole frame (header and body).
func (fc *Conn) ReadFrame() ([]byte, error) {
	return fc.readFrame(nil)
}

// ReadFrameInto receives one frame into buf's storage when its capacity
// suffices, allocating only when the frame is larger. The returned slice
// aliases buf in the reuse case; the caller owns both and must not issue
// another read before consuming the frame.
func (fc *Conn) ReadFrameInto(buf []byte) ([]byte, error) {
	return fc.readFrame(buf)
}

func (fc *Conn) readFrame(buf []byte) ([]byte, error) {
	fc.rmu.Lock()
	defer fc.rmu.Unlock()
	if d := fc.readTO.Load(); d > 0 {
		fc.c.SetReadDeadline(time.Now().Add(time.Duration(d)))
	}
	if _, err := io.ReadFull(fc.c, fc.rhdr[:]); err != nil {
		return nil, fmt.Errorf("comm: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(fc.rhdr[:])
	if int64(n) > int64(fc.limit) {
		return nil, fmt.Errorf("comm: read frame of %d bytes (limit %d): %w", n, fc.limit, ErrFrameTooLarge)
	}
	var frame []byte
	if int64(cap(buf)) >= int64(n) {
		frame = buf[:n]
	} else {
		frame = make([]byte, n)
	}
	if _, err := io.ReadFull(fc.c, frame); err != nil {
		return nil, fmt.Errorf("comm: read frame body: %w", err)
	}
	fc.bytesIn.Add(int64(n) + 4)
	fc.framesIn.Add(1)
	totalBytesRead.Add(int64(n) + 4)
	totalFramesRead.Add(1)
	return frame, nil
}

// Close closes the underlying connection, unblocking any in-flight
// ReadFrame/WriteFrame.
func (fc *Conn) Close() error { return fc.c.Close() }

// Pipe returns two framed connections wired to each other in memory
// (net.Pipe), handy for tests. Note net.Pipe is synchronous: a WriteFrame
// blocks until the peer reads it, unlike a buffered TCP socket.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return newConn(a), newConn(b)
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0") and returns
// it; use Accept to obtain framed connections.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Accept wraps l.Accept with framing.
func Accept(l net.Listener) (*Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, err
	}
	return newConn(c), nil
}

// Dial connects to a framed TCP peer with a single attempt.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newConn(c), nil
}

// RetryConfig bounds DialRetry. Zero fields take the stated defaults.
type RetryConfig struct {
	Attempts    int           // max dial attempts (default 5)
	BaseDelay   time.Duration // backoff before the 2nd attempt, doubling after (default 50ms)
	MaxDelay    time.Duration // backoff cap (default 2s)
	DialTimeout time.Duration // per-attempt connect timeout (default 3s)
	// Jitter is the ± fraction applied to every backoff sleep. Two
	// servers restarted by the same supervisor otherwise retry in
	// lockstep and hammer the peer listener at the same instants. 0
	// selects 0.2; negative disables.
	Jitter float64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 5
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	return c
}

// DialRetry connects to a framed TCP peer, retrying with jittered
// bounded exponential backoff. This closes the startup race where one
// server dials its peer before the peer's listener is up: transient
// refusals are absorbed instead of being fatal.
func DialRetry(addr string, cfg RetryConfig) (*Conn, error) {
	cfg = cfg.withDefaults()
	delay := cfg.BaseDelay
	var lastErr error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(jitterDuration(delay, cfg.Jitter))
			delay *= 2
			if delay > cfg.MaxDelay {
				delay = cfg.MaxDelay
			}
		}
		c, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
		if err == nil {
			return newConn(c), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("comm: dial %s: %d attempts exhausted: %w", addr, cfg.Attempts, lastErr)
}
