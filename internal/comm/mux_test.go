package comm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// muxPair returns two muxes joined by an in-memory pipe, cleaned up with
// the test.
func muxPair(t *testing.T, cfg MuxConfig) (*Mux, *Mux) {
	t.Helper()
	ca, cb := Pipe()
	ma := NewMux(ca, cfg)
	mb := NewMux(cb, cfg)
	t.Cleanup(func() {
		ma.Close()
		mb.Close()
	})
	return ma, mb
}

func TestMuxRoundTrip(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 2 * time.Second})
	sa, err := ma.Open(7)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sb, err := mb.Open(7)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := sa.WriteFrame([]byte("ping")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := sb.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if string(got) != "ping" {
		t.Fatalf("got %q, want ping", got)
	}
	if err := sb.WriteFrame([]byte("pong")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err = sa.ReadFrameInto(make([]byte, 0, 16))
	if err != nil {
		t.Fatalf("ReadFrameInto: %v", err)
	}
	if string(got) != "pong" {
		t.Fatalf("got %q, want pong", got)
	}
}

// TestMuxRouting drives many concurrent sessions in both directions and
// checks every session sees exactly its own frames, in order.
func TestMuxRouting(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 5 * time.Second})
	const sessions, frames = 8, 32
	var wg sync.WaitGroup
	errs := make(chan error, 2*sessions)
	for i := 0; i < sessions; i++ {
		id := uint64(100 + i)
		sa, err := ma.Open(id)
		if err != nil {
			t.Fatalf("Open a/%d: %v", id, err)
		}
		sb, err := mb.Open(id)
		if err != nil {
			t.Fatalf("Open b/%d: %v", id, err)
		}
		run := func(tx, rx *MuxSession, tag string) {
			defer wg.Done()
			for n := 0; n < frames; n++ {
				want := []byte(fmt.Sprintf("%s session %d frame %d", tag, id, n))
				if err := tx.WriteFrame(want); err != nil {
					errs <- fmt.Errorf("%s/%d write %d: %w", tag, id, n, err)
					return
				}
				got, err := rx.ReadFrame()
				if err != nil {
					errs <- fmt.Errorf("%s/%d read %d: %w", tag, id, n, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s/%d frame %d: got %q", tag, id, n, got)
					return
				}
			}
		}
		wg.Add(2)
		go run(sa, sb, "a2b")
		go run(sb, sa, "b2a")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxPendingClaim checks frames sent before the receiving side opens
// the session are buffered and delivered on Open.
func TestMuxPendingClaim(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 2 * time.Second})
	sa, err := ma.Open(9)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for n := 0; n < 3; n++ {
		if err := sa.WriteFrame([]byte{byte(n)}); err != nil {
			t.Fatalf("WriteFrame %d: %v", n, err)
		}
	}
	// The synchronous WriteFrame only guarantees the frame hit the wire;
	// give the peer's demux reader a moment to park all three.
	deadline := time.Now().Add(2 * time.Second)
	for MuxTotals().PendingFrames < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sb, err := mb.Open(9)
	if err != nil {
		t.Fatalf("Open after send: %v", err)
	}
	for n := 0; n < 3; n++ {
		got, err := sb.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", n, err)
		}
		if len(got) != 1 || got[0] != byte(n) {
			t.Fatalf("frame %d: got %v", n, got)
		}
	}
}

// TestMuxPendingEviction checks the unclaimed-frame buffer sheds oldest
// first and keeps the newest frames for a late Open.
func TestMuxPendingEviction(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 2 * time.Second, PendingFrames: 2})
	sa, err := ma.Open(5)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for n := 0; n < 5; n++ {
		if err := sa.WriteFrame([]byte{byte(n)}); err != nil {
			t.Fatalf("WriteFrame %d: %v", n, err)
		}
	}
	// Wait until the receiver has routed all five (3 evicted, 2 parked):
	// the pending buffer reaches capacity after frame 1, so poll for the
	// last written frame specifically, not just the length.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mb.mu.Lock()
		routedAll := len(mb.pending) == 2 &&
			mb.pending[1].buf[MuxHeaderBytes] == 4
		mb.mu.Unlock()
		if routedAll {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sb, err := mb.Open(5)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, want := range []byte{3, 4} {
		got, err := sb.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("got %v, want [%d]", got, want)
		}
	}
}

func TestMuxDuplicateOpen(t *testing.T) {
	ma, _ := muxPair(t, MuxConfig{})
	if _, err := ma.Open(1); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := ma.Open(1); !errors.Is(err, ErrMuxSessionDup) {
		t.Fatalf("duplicate Open: err=%v, want ErrMuxSessionDup", err)
	}
}

func TestMuxReopenClosedIDFails(t *testing.T) {
	ma, _ := muxPair(t, MuxConfig{})
	s, err := ma.Open(3)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Close()
	if _, err := ma.Open(3); !errors.Is(err, ErrMuxSessionClosed) {
		t.Fatalf("reopen closed id: err=%v, want ErrMuxSessionClosed", err)
	}
}

// TestMuxReadTimeout checks a session read is bounded by ReadTimeout and
// classified as a timeout by IsTimeout.
func TestMuxReadTimeout(t *testing.T) {
	ma, _ := muxPair(t, MuxConfig{ReadTimeout: 50 * time.Millisecond})
	s, err := ma.Open(2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	start := time.Now()
	_, err = s.ReadFrame()
	if err == nil {
		t.Fatal("ReadFrame succeeded with no peer data")
	}
	if !IsTimeout(err) {
		t.Fatalf("err=%v, want a timeout per IsTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("read took %v, want ~50ms", el)
	}
}

// TestMuxAbortNotifiesPeer checks Abort makes the peer's half fail fast
// with ErrMuxPeerClosed, well before its read deadline.
func TestMuxAbortNotifiesPeer(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 30 * time.Second})
	sa, err := ma.Open(4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sb, err := mb.Open(4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sb.ReadFrame()
		done <- err
	}()
	sa.Abort()
	select {
	case err := <-done:
		if !errors.Is(err, ErrMuxPeerClosed) {
			t.Fatalf("peer read err=%v, want ErrMuxPeerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer read did not fail after Abort")
	}
}

// TestMuxInboxOverflowIsolated checks a flooded session is killed alone:
// the sibling session keeps exchanging frames.
func TestMuxInboxOverflowIsolated(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 2 * time.Second, InboxFrames: 2})
	flood, err := ma.Open(1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	victim, err := mb.Open(1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sa, err := ma.Open(2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sb, err := mb.Open(2)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Nobody reads victim's inbox (cap 2): the third routed frame kills
	// the session.
	for n := 0; n < 5; n++ {
		if err := flood.WriteFrame([]byte("flood")); err != nil {
			break // the overflow CLOSE can race back and kill our half
		}
	}
	// Buffered frames still drain, then the overflow surfaces.
	var ferr error
	for n := 0; n < 5; n++ {
		if _, ferr = victim.ReadFrame(); ferr != nil {
			break
		}
	}
	if !errors.Is(ferr, ErrMuxInboxOverflow) {
		t.Fatalf("victim read err=%v, want ErrMuxInboxOverflow", ferr)
	}
	// The sibling session is unaffected.
	if err := sa.WriteFrame([]byte("alive")); err != nil {
		t.Fatalf("sibling write: %v", err)
	}
	got, err := sb.ReadFrame()
	if err != nil || string(got) != "alive" {
		t.Fatalf("sibling read: %q, %v", got, err)
	}
}

// TestMuxTransportErrorFailsAll checks a dead link fails every open
// session and subsequent Opens.
func TestMuxTransportErrorFailsAll(t *testing.T) {
	ca, cb := Pipe()
	ma := NewMux(ca, MuxConfig{ReadTimeout: 5 * time.Second})
	mb := NewMux(cb, MuxConfig{ReadTimeout: 5 * time.Second})
	defer ma.Close()
	defer mb.Close()
	sa, err := ma.Open(1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mb.Close() // closes cb: ca's reads/writes start failing
	if _, err := sa.ReadFrame(); err == nil {
		t.Fatal("read on dead link succeeded")
	}
	// Writes fail too (possibly after the writer notices).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sa.WriteFrame([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write on dead link kept succeeding")
		}
	}
	if _, err := ma.Open(2); err == nil {
		t.Fatal("Open on dead mux succeeded")
	}
	if ma.Err() == nil {
		t.Fatal("Err() nil on dead mux")
	}
}

// TestMuxCloseDrainsBufferedFrames checks frames routed before a clean
// peer Close are still readable on the surviving side.
func TestMuxCloseDrainsBufferedFrames(t *testing.T) {
	ma, mb := muxPair(t, MuxConfig{ReadTimeout: 2 * time.Second})
	sa, err := ma.Open(6)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sb, err := mb.Open(6)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := sa.WriteFrame([]byte("last words")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	// Ensure the frame is routed into sb's inbox before the abort lands.
	deadline := time.Now().Add(2 * time.Second)
	for len(sb.inbox) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sa.Abort()
	got, err := sb.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame after peer abort: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("got %q", got)
	}
	if _, err := sb.ReadFrame(); !errors.Is(err, ErrMuxPeerClosed) {
		t.Fatalf("drained read err=%v, want ErrMuxPeerClosed", err)
	}
}

// TestMuxTombstoneRingWraparound pins the closed-id memory contract:
// the ring remembers the last TombstoneIDs closed sessions, wrapping
// evicts the oldest (counted on TombstoneWraps), and an id that wrapped
// out is no longer recognized — a late frame for it is queued for a
// future Open instead of shed. The configurable size exists precisely
// so long-lived links size the ring above their session churn.
func TestMuxTombstoneRingWraparound(t *testing.T) {
	ca, cb := Pipe()
	defer ca.Close()
	mb := NewMux(cb, MuxConfig{ReadTimeout: 2 * time.Second, TombstoneIDs: 4})
	defer mb.Close()
	wrapsBefore := MuxTotals().TombstoneWraps
	// Close five sessions through a four-slot ring: id 1 wraps out.
	for id := uint64(1); id <= 5; id++ {
		s, err := mb.Open(id)
		if err != nil {
			t.Fatalf("Open(%d): %v", id, err)
		}
		s.Close()
	}
	if d := MuxTotals().TombstoneWraps - wrapsBefore; d != 1 {
		t.Fatalf("TombstoneWraps delta = %d, want 1", d)
	}
	// Ids still remembered are refused; the wrapped-out id is not.
	if _, err := mb.Open(5); !errors.Is(err, ErrMuxSessionClosed) {
		t.Fatalf("Open(5) err = %v, want ErrMuxSessionClosed", err)
	}
	// A late data frame for the forgotten id is indistinguishable from a
	// peer running ahead: it parks as pending and a fresh Open(1)
	// receives it. This is the mis-delivery an undersized ring risks —
	// asserted here so the hazard stays visible and counted.
	raw := make([]byte, MuxHeaderBytes, MuxHeaderBytes+5)
	binary.LittleEndian.PutUint64(raw, 1)
	raw[8] = muxKindData
	raw = append(raw, []byte("stale")...)
	if err := ca.WriteFrame(raw); err != nil {
		t.Fatalf("raw frame write: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mb.mu.Lock()
		n := len(mb.pending)
		mb.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s1, err := mb.Open(1)
	if err != nil {
		t.Fatalf("Open(1) after wraparound: %v", err)
	}
	f, err := s1.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if string(f) != "stale" {
		t.Fatalf("got %q, want the late frame", f)
	}
}

// TestMuxTombstoneRingSized is the fix-side half of the wraparound
// regression: a ring sized above the churn keeps refusing every closed
// id, so late frames for them are shed as stale rather than delivered
// to a reused id.
func TestMuxTombstoneRingSized(t *testing.T) {
	ca, cb := Pipe()
	defer ca.Close()
	mb := NewMux(cb, MuxConfig{ReadTimeout: 2 * time.Second, TombstoneIDs: 16})
	defer mb.Close()
	shedBefore := MuxTotals().StaleFrames
	for id := uint64(1); id <= 5; id++ {
		s, err := mb.Open(id)
		if err != nil {
			t.Fatalf("Open(%d): %v", id, err)
		}
		s.Close()
	}
	for id := uint64(1); id <= 5; id++ {
		if _, err := mb.Open(id); !errors.Is(err, ErrMuxSessionClosed) {
			t.Fatalf("Open(%d) err = %v, want ErrMuxSessionClosed", id, err)
		}
	}
	raw := make([]byte, MuxHeaderBytes)
	binary.LittleEndian.PutUint64(raw, 1)
	raw[8] = muxKindData
	if err := ca.WriteFrame(raw); err != nil {
		t.Fatalf("raw frame write: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for MuxTotals().StaleFrames == shedBefore && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if MuxTotals().StaleFrames == shedBefore {
		t.Fatal("late frame for a remembered tombstone was not shed")
	}
}
