package comm

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestWriteFrameVecMatchesWriteFrame(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	parts := [][]byte{{1, 2, 3}, {}, {4, 5}, {6}}
	whole := []byte{1, 2, 3, 4, 5, 6}

	go func() {
		a.WriteFrameVec(parts...)
		a.WriteFrame(whole)
	}()
	got1, err := b.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := b.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, whole) || !bytes.Equal(got2, whole) {
		t.Fatalf("vectored frame %v, contiguous %v, want %v", got1, got2, whole)
	}
}

func TestWriteFrameVecRespectsLimit(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.limit = 8
	if err := a.WriteFrameVec(make([]byte, 5), make([]byte, 5)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized vectored frame: %v", err)
	}
}

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	payload := []byte("0123456789")
	go func() {
		a.WriteFrame(payload)
		a.WriteFrame(payload[:4])
	}()
	buf := make([]byte, 0, 32)
	got, err := b.ReadFrameInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame %q", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("large-enough buffer was not reused")
	}
	// A second read reuses it again for a shorter frame.
	got, err = b.ReadFrameInto(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:4]) {
		t.Fatalf("frame %q", got)
	}
}

func TestReadFrameIntoGrowsWhenSmall(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{7}, 64)
	go a.WriteFrame(payload)
	got, err := b.ReadFrameInto(make([]byte, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("grown read mismatch")
	}
}

func TestFaultConnWriteThrottle(t *testing.T) {
	left, right := net.Pipe()
	defer left.Close()
	defer right.Close()
	fc := NewFaultConn(left)
	fc.WriteBytesPerSec = 1 << 20 // 1 MiB/s

	done := make(chan struct{})
	go func() {
		buf := make([]byte, 64<<10)
		for n := 0; n < 64<<10; {
			m, err := right.Read(buf)
			if err != nil {
				t.Error(err)
				break
			}
			n += m
		}
		close(done)
	}()
	start := time.Now()
	if _, err := fc.Write(make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	<-done
	// 64 KiB at 1 MiB/s ≈ 62.5 ms of injected serialization delay.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("throttled 64KiB write took only %v", el)
	}
}
