package comm

import (
	"encoding/binary"
	"fmt"
)

// Versioned capability negotiation frames, the lattigo marshaler idiom
// (leading magic + version, explicit extension length) applied to peer
// feature discovery: each party advertises a bitmask of optional wire
// features on a reserved control stream, and a peer enables only the
// intersection of what both sides advertised. The codec is deliberately
// dumb about semantics — the meaning of the bits belongs to the caller
// (internal/mpc assigns wire-codec capabilities) — so one frame format
// serves every future negotiation.
//
// Layout (little-endian):
//
//	u32 magic | u8 version | u32 caps | u16 extLen | extLen bytes
//
// Forward compatibility: a parser accepts ANY version — the fixed fields
// never move — and callers mask caps to the bits they know, so a newer
// peer's extra bits and extension payload are ignored rather than fatal.
// An old peer that has never heard of the control stream simply never
// replies, which callers must treat as "no optional capabilities".

// CapabilityFrame is one advertised capability set.
type CapabilityFrame struct {
	Version byte
	Caps    uint32
	Ext     []byte // version-specific extension payload; nil for version 1
}

// capFrameFixedBytes is the size of the fixed fields: magic, version,
// caps, extension length.
const capFrameFixedBytes = 4 + 1 + 4 + 2

// maxCapExtBytes bounds the extension payload so a hostile frame cannot
// claim an absurd length.
const maxCapExtBytes = 1 << 12

// AppendCapabilityFrame appends the wire form of f under the given magic.
func AppendCapabilityFrame(buf []byte, magic uint32, f CapabilityFrame) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = append(buf, f.Version)
	buf = binary.LittleEndian.AppendUint32(buf, f.Caps)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Ext)))
	return append(buf, f.Ext...)
}

// ParseCapabilityFrame decodes a capability frame, validating the magic
// and the declared extension length. Unknown (newer) versions parse
// successfully — the caller masks Caps to the bits it implements and
// ignores Ext — so upgrading the frame never breaks old peers.
func ParseCapabilityFrame(frame []byte, magic uint32) (CapabilityFrame, error) {
	var f CapabilityFrame
	if len(frame) < capFrameFixedBytes {
		return f, fmt.Errorf("comm: capability frame of %d bytes", len(frame))
	}
	if got := binary.LittleEndian.Uint32(frame); got != magic {
		return f, fmt.Errorf("comm: capability frame magic %08x, want %08x", got, magic)
	}
	f.Version = frame[4]
	f.Caps = binary.LittleEndian.Uint32(frame[5:])
	extLen := int(binary.LittleEndian.Uint16(frame[9:]))
	if extLen > maxCapExtBytes || len(frame) != capFrameFixedBytes+extLen {
		return f, fmt.Errorf("comm: capability frame length %d for ext %d", len(frame), extLen)
	}
	if extLen > 0 {
		f.Ext = append([]byte(nil), frame[capFrameFixedBytes:]...) // copy: frame buffers are reused
	}
	return f, nil
}
