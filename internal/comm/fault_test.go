package comm

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two framed conns joined by a real (buffered) TCP socket
// on localhost.
func tcpPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   *Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := Accept(ln)
		ch <- accepted{c, err}
	}()
	d, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { a.c.Close(); d.Close() })
	return a.c, d
}

func TestWriteFrameRejectsOversizeSymmetrically(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.limit, b.limit = 64, 64 // shrink so the test doesn't allocate 1 GiB

	// Write side: rejected before anything hits the wire.
	err := a.WriteFrame(make([]byte, 65))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
	// The stream must not be desynced: a legal frame still round-trips.
	done := make(chan error, 1)
	go func() { done <- a.WriteFrame(bytes.Repeat([]byte{0xAB}, 64)) }()
	got, err := b.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 || got[0] != 0xAB {
		t.Fatalf("post-rejection frame corrupted: %d bytes", len(got))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Read side: an honest peer with a larger limit triggers the
	// receiver's bound.
	a.limit = MaxFrameBytes
	go a.WriteFrame(make([]byte, 65))
	if _, err := b.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTimeout(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	b.SetTimeouts(50*time.Millisecond, 0)
	start := time.Now()
	_, err := b.ReadFrame()
	if err == nil {
		t.Fatal("read with silent peer must time out")
	}
	if !IsTimeout(err) {
		t.Fatalf("IsTimeout(%v) = false", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
	// Clearing the timeout clears the stuck deadline too.
	b.SetTimeouts(0, 0)
	go a.WriteFrame([]byte("ok"))
	if _, err := b.ReadFrame(); err != nil {
		t.Fatalf("read after clearing timeout: %v", err)
	}
}

func TestWriteFrameTimeout(t *testing.T) {
	a, b := Pipe() // net.Pipe: writes block until the peer reads
	defer a.Close()
	defer b.Close()
	a.SetTimeouts(0, 50*time.Millisecond)
	err := a.WriteFrame([]byte("stuck"))
	if err == nil || !IsTimeout(err) {
		t.Fatalf("write with absent reader: got %v, want timeout", err)
	}
}

// Concurrent writers on one shared conn must emit whole frames, never
// interleaved bytes. Run under -race this also checks the locking.
func TestWriteFrameAtomicAcrossGoroutines(t *testing.T) {
	srv, cli := tcpPair(t)

	const writers = 4
	const perWriter = 32
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(tag byte) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{tag}, 100+int(tag))
			for i := 0; i < perWriter; i++ {
				if err := cli.WriteFrame(payload); err != nil {
					t.Errorf("writer %d: %v", tag, err)
					return
				}
			}
		}(byte(w + 1))
	}

	counts := map[byte]int{}
	for i := 0; i < writers*perWriter; i++ {
		frame, err := srv.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) == 0 {
			t.Fatal("empty frame")
		}
		tag := frame[0]
		if len(frame) != 100+int(tag) {
			t.Fatalf("frame tagged %d has %d bytes: interleaved write", tag, len(frame))
		}
		for _, bb := range frame {
			if bb != tag {
				t.Fatalf("frame tagged %d contains byte %d: interleaved write", tag, bb)
			}
		}
		counts[tag]++
	}
	wg.Wait()
	for w := 1; w <= writers; w++ {
		if counts[byte(w)] != perWriter {
			t.Fatalf("writer %d delivered %d/%d frames", w, counts[byte(w)], perWriter)
		}
	}
}

func TestDialRetryEventualSuccess(t *testing.T) {
	// Reserve an address, release it, start the listener only after a
	// delay: the first dial attempts must fail and be retried.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(120 * time.Millisecond)
		ln2, err := Listen(addr)
		if err != nil {
			return // port raced away; the dial error path covers us
		}
		defer ln2.Close()
		c, err := Accept(ln2)
		if err == nil {
			c.Close()
		}
	}()

	c, err := DialRetry(addr, RetryConfig{Attempts: 20, BaseDelay: 20 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialRetry never connected: %v", err)
	}
	c.Close()
}

func TestDialRetryExhaustsAttempts(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening here anymore
	start := time.Now()
	_, err = DialRetry(addr, RetryConfig{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address must fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retries took %v", time.Since(start))
	}
}

// faultPair wires a FaultConn under the client side of a TCP pair.
func faultPair(t *testing.T) (srv *Conn, fault *FaultConn, cli *Conn) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   *Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := Accept(ln)
		ch <- accepted{c, err}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	fault = NewFaultConn(raw)
	cli = Wrap(fault)
	t.Cleanup(func() { a.c.Close(); cli.Close() })
	return a.c, fault, cli
}

func TestFaultConnShortWritesReassemble(t *testing.T) {
	srv, fault, cli := faultPair(t)
	fault.WriteChunk = 3 // fragment every write into 3-byte chunks
	payload := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 41)
	go cli.WriteFrame(payload)
	srv.SetTimeouts(2*time.Second, 0)
	got, err := srv.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fragmented frame did not reassemble")
	}
}

func TestFaultConnCorruptLengthPrefix(t *testing.T) {
	for offset := int64(0); offset < 4; offset++ {
		t.Run(fmt.Sprintf("byte%d", offset), func(t *testing.T) {
			srv, fault, cli := faultPair(t)
			fault.CorruptWriteAt = offset
			// 2-byte payload: flipping any prefix byte changes the length;
			// flipping byte 3 makes it huge (>1 GiB) and must be rejected,
			// lower bytes just desync — either way the reader must not
			// return the original frame and must not hang.
			go cli.WriteFrame([]byte{0x11, 0x22})
			srv.SetTimeouts(300*time.Millisecond, 0)
			got, err := srv.ReadFrame()
			if err == nil && bytes.Equal(got, []byte{0x11, 0x22}) {
				t.Fatal("corrupted prefix yielded the original frame")
			}
			if offset == 3 {
				if !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("huge corrupted prefix: got %v, want ErrFrameTooLarge", err)
				}
			}
		})
	}
}

func TestFaultConnTruncatedFrame(t *testing.T) {
	srv, fault, cli := faultPair(t)
	fault.FailWriteAfter = 6 // header + 2 of 64 payload bytes
	werr := cli.WriteFrame(bytes.Repeat([]byte{0xCC}, 64))
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("truncated write: got %v, want ErrInjected", werr)
	}
	cli.Close() // the dead-client scenario: conn drops mid-frame
	srv.SetTimeouts(2*time.Second, 0)
	if _, err := srv.ReadFrame(); err == nil {
		t.Fatal("reader must surface the truncated frame as an error")
	}
}

func TestFaultConnReadBudget(t *testing.T) {
	srv, fault, cli := faultPair(t)
	fault.FailReadAfter = 4 // deliver only the header
	go srv.WriteFrame([]byte("payload"))
	if _, err := cli.ReadFrame(); !errors.Is(err, ErrInjected) {
		t.Fatalf("read past budget: got %v, want ErrInjected", err)
	}
}

func TestFaultConnDelaysStillDeliver(t *testing.T) {
	srv, fault, cli := faultPair(t)
	fault.WriteDelay = 5 * time.Millisecond
	fault.ReadDelay = 5 * time.Millisecond
	go cli.WriteFrame([]byte("slow"))
	srv.SetTimeouts(2*time.Second, 0)
	got, err := srv.ReadFrame()
	if err != nil || string(got) != "slow" {
		t.Fatalf("delayed frame: %q, %v", got, err)
	}
	go srv.WriteFrame([]byte("echo"))
	cli.SetTimeouts(2*time.Second, 0)
	if got, err := cli.ReadFrame(); err != nil || string(got) != "echo" {
		t.Fatalf("delayed read: %q, %v", got, err)
	}
}
