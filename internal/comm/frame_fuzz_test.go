package comm

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// FuzzReadFrame feeds arbitrary bytes — truncated headers, corrupt and
// oversized length prefixes, garbage bodies — into the framed codec. The
// decoder must never panic, never hang past its deadline, and must
// reject any prefix claiming more than MaxFrameBytes.
func FuzzReadFrame(f *testing.F) {
	// Seeds: a valid small frame, an empty frame, a truncated header, a
	// truncated body, a prefix at the limit, and prefixes beyond it.
	valid := binary.LittleEndian.AppendUint32(nil, 3)
	valid = append(valid, 'a', 'b', 'c')
	f.Add(valid)
	f.Add(binary.LittleEndian.AppendUint32(nil, 0))
	f.Add([]byte{0x01, 0x02})
	f.Add(binary.LittleEndian.AppendUint32(nil, 100))
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		raw0, raw1 := net.Pipe()
		defer raw0.Close()
		src := Wrap(raw0)
		dst := Wrap(raw1)
		dst.SetTimeouts(500*time.Millisecond, 0)
		go func() {
			raw0.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
			raw0.Write(data)
			raw0.Close() // sender dies: reader must terminate either way
		}()
		frame, err := dst.ReadFrame()
		if err == nil {
			// A successful decode must be consistent with the wire bytes:
			// prefix within bounds, body exactly as sent.
			if len(frame) > MaxFrameBytes {
				t.Fatalf("accepted %d-byte frame beyond MaxFrameBytes", len(frame))
			}
			if len(data) < 4+len(frame) {
				t.Fatalf("decoded %d-byte frame from %d input bytes", len(frame), len(data))
			}
			if got := binary.LittleEndian.Uint32(data); int(got) != len(frame) {
				t.Fatalf("frame length %d does not match prefix %d", len(frame), got)
			}
			if !bytes.Equal(frame, data[4:4+len(frame)]) {
				t.Fatal("frame body differs from wire bytes")
			}
		}
		dst.Close()
		_ = src
	})
}

// FuzzFrameRoundTrip checks that any payload the writer accepts is
// returned intact by the reader, including through a fragmenting
// transport (short writes).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte("beaver triplet share"), 3)
	f.Add(bytes.Repeat([]byte{0xA5}, 1000), 7)

	f.Fuzz(func(t *testing.T, payload []byte, chunk int) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		raw0, raw1 := net.Pipe()
		fc := NewFaultConn(raw0)
		if chunk > 0 {
			fc.WriteChunk = chunk%64 + 1
		}
		src := Wrap(fc)
		dst := Wrap(raw1)
		src.SetTimeouts(0, 2*time.Second)
		dst.SetTimeouts(2*time.Second, 0)
		defer src.Close()
		defer dst.Close()

		werr := make(chan error, 1)
		go func() { werr <- src.WriteFrame(payload) }()
		got, rerr := dst.ReadFrame()
		if err := <-werr; err != nil {
			t.Fatalf("write: %v", err)
		}
		if rerr != nil {
			t.Fatalf("read: %v", rerr)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip corrupted %d-byte payload", len(payload))
		}
	})
}
