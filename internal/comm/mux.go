package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Session multiplexing: N independent protocol sessions over one framed
// connection. The paper's deployment has exactly one inter-server link
// (the MPI edge of Fig. 1b); serving many clients concurrently means many
// Beaver exchanges must share it. A Mux gives each exchange its own
// ordered sub-stream: every frame carries a 9-byte header (u64 session id
// + kind byte), one writer goroutine drains per-session send queues in
// fair round-robin (no session can starve its siblings by flooding), and
// a demux reader routes arriving frames into bounded per-session inboxes.
//
// Failure containment mirrors the request-id tagging it replaces:
//
//   - Frames for a session the local side has not opened yet (the peer's
//     half of an exchange racing ahead of ours) wait in a bounded pending
//     buffer and are handed over when Open claims the id; the buffer
//     evicts oldest-first under pressure, so orphans from dead clients
//     cannot pin memory.
//   - A session torn down abnormally (Abort) best-effort notifies the
//     peer with a CLOSE frame, so the peer's half fails fast instead of
//     waiting out its read deadline; closed ids are tombstoned and late
//     frames for them are shed.
//   - A session whose inbox overflows (a runaway peer) is killed alone;
//     its siblings and the mux keep running.
//   - Transport errors are fatal to the whole mux (the link is gone):
//     every open session's reads and writes fail with the cause.
//
// Per-session frame reads are bounded by MuxConfig.ReadTimeout; the
// underlying connection must NOT have a read deadline set (the demux
// reader blocks on it while the link is idle).

// MuxHeaderBytes is the per-frame mux overhead: u64 session id
// (little-endian) followed by one kind byte.
const MuxHeaderBytes = 9

// Mux frame kinds.
const (
	muxKindData  = 0x00
	muxKindClose = 0x01
)

// Mux failure modes.
var (
	// ErrMuxClosed reports an operation on a mux after Close.
	ErrMuxClosed = errors.New("comm: mux closed")
	// ErrMuxSessionDup reports Open on an id that is already open.
	ErrMuxSessionDup = errors.New("comm: mux session id already open")
	// ErrMuxSessionClosed reports an operation on a locally closed (or
	// tombstoned) session.
	ErrMuxSessionClosed = errors.New("comm: mux session closed")
	// ErrMuxPeerClosed reports the peer abandoning the session (it sent a
	// CLOSE frame, e.g. after its half of the exchange failed).
	ErrMuxPeerClosed = errors.New("comm: mux session closed by peer")
	// ErrMuxInboxOverflow reports a session killed because frames arrived
	// faster than its reader consumed them past the inbox bound.
	ErrMuxInboxOverflow = errors.New("comm: mux session inbox overflow")
	// ErrMuxHeader reports a frame too short to carry a mux header — the
	// peer is not speaking the mux protocol; the link is declared dead.
	ErrMuxHeader = errors.New("comm: mux frame has no header")
)

// muxTimeoutError satisfies net.Error so IsTimeout classifies session
// read deadline expiries like connection deadline expiries.
type muxTimeoutError struct{}

func (muxTimeoutError) Error() string   { return "comm: mux session read timeout" }
func (muxTimeoutError) Timeout() bool   { return true }
func (muxTimeoutError) Temporary() bool { return true }

// errMuxTimeout is the singleton session-read-deadline error.
var errMuxTimeout error = muxTimeoutError{}

// parseMuxFrame splits a raw link frame into its routing header and
// payload. It never panics on corrupt input: a frame too short for the
// header is an error, and the id is taken verbatim from the bytes — a
// frame can only ever route to the session whose id its own header
// carries.
func parseMuxFrame(frame []byte) (id uint64, kind byte, payload []byte, err error) {
	if len(frame) < MuxHeaderBytes {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrMuxHeader, len(frame))
	}
	return binary.LittleEndian.Uint64(frame), frame[8], frame[MuxHeaderBytes:], nil
}

// Package-wide mux accounting, exposed to the observability layer through
// MuxTotals (comm must not depend on obs; internal/mpc registers the
// collectors).
var (
	muxSessionsActive atomic.Int64
	muxPendingFrames  atomic.Int64
	muxPendingBytes   atomic.Int64
	muxStaleFrames    atomic.Int64 // shed: tombstoned ids, unknown CLOSEs
	muxEvictedFrames  atomic.Int64 // pending buffer evictions
	muxOverflows      atomic.Int64 // sessions killed by inbox overflow
	muxTombWraps      atomic.Int64 // tombstones forgotten by ring wraparound
	muxFramesIn       atomic.Int64 // frames the demux reader routed
	muxFramesOut      atomic.Int64 // frames the link writer put on the wire
	muxBytesIn        atomic.Int64 // routed frame bytes, headers included
	muxBytesOut       atomic.Int64 // written frame bytes, headers included
)

// MuxStats is a snapshot of process-wide mux accounting.
type MuxStats struct {
	SessionsActive int64 // currently open sessions across all muxes
	PendingFrames  int64 // frames buffered for not-yet-opened sessions
	PendingBytes   int64 // bytes buffered for not-yet-opened sessions
	StaleFrames    int64 // frames shed (tombstoned or unroutable)
	EvictedFrames  int64 // pending frames evicted under pressure
	Overflows      int64 // sessions killed by inbox overflow
	TombstoneWraps int64 // closed ids forgotten because the tombstone ring wrapped
	FramesIn       int64 // frames routed off peer links (data + control)
	FramesOut      int64 // frames written to peer links (data + control)
	BytesIn        int64 // bytes routed off peer links, mux headers included
	BytesOut       int64 // bytes written to peer links, mux headers included
}

// MuxTotals returns process-wide mux accounting across every Mux.
func MuxTotals() MuxStats {
	return MuxStats{
		SessionsActive: muxSessionsActive.Load(),
		PendingFrames:  muxPendingFrames.Load(),
		PendingBytes:   muxPendingBytes.Load(),
		StaleFrames:    muxStaleFrames.Load(),
		EvictedFrames:  muxEvictedFrames.Load(),
		Overflows:      muxOverflows.Load(),
		TombstoneWraps: muxTombWraps.Load(),
		FramesIn:       muxFramesIn.Load(),
		FramesOut:      muxFramesOut.Load(),
		BytesIn:        muxBytesIn.Load(),
		BytesOut:       muxBytesOut.Load(),
	}
}

// MuxConfig tunes a Mux. The zero value selects the stated defaults.
type MuxConfig struct {
	// ReadTimeout bounds each session ReadFrame: the longest a session
	// blocks waiting for its peer's next frame (the complementary request
	// that never arrives when a client died half-uploaded). 0 disables.
	ReadTimeout time.Duration
	// InboxFrames is the per-session inbox depth; a session whose inbox
	// overflows is killed (its siblings are unaffected). Default 1024 —
	// comfortably above the longest banded exchange a request produces.
	InboxFrames int
	// PendingFrames / PendingBytes bound the buffer holding frames for
	// sessions not yet opened locally; oldest frames are evicted first.
	// Defaults 256 frames / 64 MiB.
	PendingFrames int
	PendingBytes  int64
	// TombstoneIDs bounds how many recently closed session ids are
	// remembered (to shed their late frames and fail fast a late Open).
	// Once session churn wraps the ring, a late frame for an id older
	// than the oldest remembered tombstone is no longer recognized as
	// stale — it parks in the pending buffer and a subsequent Open of a
	// recycled id would receive it. Size the ring well above the number
	// of sessions that can close within one peer read timeout (a router
	// fronting many clients churns ids far faster than a single serving
	// loop); wraparounds are counted on MuxStats.TombstoneWraps. Default
	// DefaultTombstoneIDs.
	TombstoneIDs int
}

// DefaultTombstoneIDs is the closed-session memory when
// MuxConfig.TombstoneIDs is unset.
const DefaultTombstoneIDs = 1024

func (c MuxConfig) withDefaults() MuxConfig {
	if c.InboxFrames <= 0 {
		c.InboxFrames = 1024
	}
	if c.PendingFrames <= 0 {
		c.PendingFrames = 256
	}
	if c.PendingBytes <= 0 {
		c.PendingBytes = 64 << 20
	}
	if c.TombstoneIDs <= 0 {
		c.TombstoneIDs = DefaultTombstoneIDs
	}
	return c
}

// muxWrite is one queued outgoing frame: header + payload parts for a
// single vectored write, and the ack channel the blocked sender waits on.
type muxWrite struct {
	hdr     []byte
	payload []byte
	ack     chan error // nil for fire-and-forget control frames
}

// muxPending is one buffered frame for a session not yet opened locally.
type muxPending struct {
	id  uint64
	buf []byte // whole frame, header included
}

// Mux multiplexes independent frame sessions over one underlying framed
// connection (both ends must run a Mux). Safe for concurrent use.
type Mux struct {
	c   Framer
	cfg MuxConfig

	done chan struct{} // closed on fatal error or Close
	wake chan struct{} // writer wakeup, capacity 1
	ctl  chan muxWrite // control frames (CLOSE), drained before data

	mu           sync.Mutex
	err          error
	closed       bool
	sessions     map[uint64]*MuxSession
	rr           []*MuxSession // writer's round-robin order
	pending      []muxPending
	pendingBytes int64
	tombs        map[uint64]struct{}
	tombRing     []uint64 // len cfg.TombstoneIDs
	tombNext     int
	tombFull     bool

	bufs sync.Pool // recycled frame buffers ([]byte)
}

// NewMux starts multiplexing over c (one reader and one writer goroutine).
// c must not have a read deadline configured; write deadlines apply
// per-frame as usual. Closing the mux closes c when it is an io.Closer.
func NewMux(c Framer, cfg MuxConfig) *Mux {
	m := &Mux{
		c:        c,
		cfg:      cfg.withDefaults(),
		done:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
		ctl:      make(chan muxWrite, 16),
		sessions: make(map[uint64]*MuxSession),
		tombs:    make(map[uint64]struct{}),
	}
	m.tombRing = make([]uint64, m.cfg.TombstoneIDs)
	go m.readLoop()
	go m.writeLoop()
	return m
}

// Err returns the mux's fatal error, or nil while it is healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		return nil
	}
	return m.err
}

// Close tears down the mux: every open session fails with ErrMuxClosed,
// both goroutines stop, and the underlying connection is closed when it
// supports it (which unblocks the demux reader).
func (m *Mux) Close() error {
	m.fail(ErrMuxClosed)
	if c, ok := m.c.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// fail marks the mux dead with err and tears down every session. The
// first cause wins; later calls are no-ops.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	sessions := m.rr
	m.rr = nil
	m.sessions = map[uint64]*MuxSession{}
	for _, p := range m.pending {
		m.pendingBytes -= int64(len(p.buf))
		muxPendingFrames.Add(-1)
		muxPendingBytes.Add(-int64(len(p.buf)))
	}
	m.pending = nil
	close(m.done)
	m.mu.Unlock()
	for _, s := range sessions {
		s.fail(err)
		muxSessionsActive.Add(-1)
	}
}

// getBuf returns a recycled frame buffer (nil when none is available —
// ReadFrameInto then allocates to size).
func (m *Mux) getBuf() []byte {
	if v := m.bufs.Get(); v != nil {
		return v.([]byte)
	}
	return nil
}

// recycle retires a frame buffer for reuse by the demux reader.
func (m *Mux) recycle(frame []byte) {
	if cap(frame) == 0 {
		return
	}
	//lint:ignore SA6002 the slice-header allocation is dwarfed by the frame reuse
	m.bufs.Put(frame[:0:cap(frame)])
}

// notifyClose best-effort queues a CLOSE frame for id, telling the peer
// its half of the session can fail fast. Fire-and-forget: when the
// control queue is full the peer falls back to its read deadline.
func (m *Mux) notifyClose(id uint64) {
	select {
	case <-m.done:
		return
	default:
	}
	f := make([]byte, MuxHeaderBytes)
	binary.LittleEndian.PutUint64(f, id)
	f[8] = muxKindClose
	select {
	case m.ctl <- muxWrite{hdr: f}:
		m.wakeWriter()
	default:
	}
}

// wakeWriter nudges the writer goroutine (non-blocking; capacity 1).
func (m *Mux) wakeWriter() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// tombstoneLocked remembers id as closed, evicting the oldest remembered
// id once the ring is full. Every eviction is one id whose late frames
// can no longer be recognized as stale, counted on TombstoneWraps so
// an under-sized ring is visible before it mis-delivers. Callers hold
// m.mu.
func (m *Mux) tombstoneLocked(id uint64) {
	if _, ok := m.tombs[id]; ok {
		return
	}
	if m.tombFull {
		delete(m.tombs, m.tombRing[m.tombNext])
		muxTombWraps.Add(1)
	}
	m.tombRing[m.tombNext] = id
	m.tombs[id] = struct{}{}
	m.tombNext++
	if m.tombNext == len(m.tombRing) {
		m.tombNext = 0
		m.tombFull = true
	}
}

// Open claims session id and returns its frame stream. Frames that
// arrived for id before Open (the peer ran ahead) are already waiting in
// the returned session's inbox. Fails on a duplicate id, on an id the
// peer already closed, and on a dead mux.
func (m *Mux) Open(id uint64) (*MuxSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, m.err
	}
	if _, ok := m.sessions[id]; ok {
		return nil, fmt.Errorf("%w: %016x", ErrMuxSessionDup, id)
	}
	if _, dead := m.tombs[id]; dead {
		return nil, fmt.Errorf("comm: mux session %016x: %w", id, ErrMuxSessionClosed)
	}
	s := &MuxSession{
		id:    id,
		m:     m,
		out:   make(chan muxWrite, 1),
		ack:   make(chan error, 1),
		inbox: make(chan []byte, m.cfg.InboxFrames),
		done:  make(chan struct{}),
	}
	m.sessions[id] = s
	m.rr = append(m.rr, s)
	// Hand over frames the peer sent before we opened.
	if len(m.pending) > 0 {
		kept := m.pending[:0]
		for _, p := range m.pending {
			if p.id != id {
				kept = append(kept, p)
				continue
			}
			m.pendingBytes -= int64(len(p.buf))
			muxPendingFrames.Add(-1)
			muxPendingBytes.Add(-int64(len(p.buf)))
			select {
			case s.inbox <- p.buf:
			default: // inbox smaller than the backlog: shed the excess
				muxStaleFrames.Add(1)
				m.recycle(p.buf)
			}
		}
		m.pending = kept
	}
	muxSessionsActive.Add(1)
	return s, nil
}

// retire removes s from routing (idempotent), tombstones its id, and
// fails any blocked session reads/writes with reason.
func (m *Mux) retire(s *MuxSession, reason error) {
	m.mu.Lock()
	if _, ok := m.sessions[s.id]; ok {
		delete(m.sessions, s.id)
		for i, x := range m.rr {
			if x == s {
				m.rr = append(m.rr[:i], m.rr[i+1:]...)
				break
			}
		}
		m.tombstoneLocked(s.id)
		muxSessionsActive.Add(-1)
	}
	m.mu.Unlock()
	s.fail(reason)
}

// readLoop is the demux reader: it owns the connection's read side and
// routes every arriving frame by the id its header carries.
func (m *Mux) readLoop() {
	ri, hasInto := m.c.(FramerInto)
	for {
		var frame []byte
		var err error
		if hasInto {
			frame, err = ri.ReadFrameInto(m.getBuf())
		} else {
			frame, err = m.c.ReadFrame()
		}
		if err != nil {
			m.fail(fmt.Errorf("comm: mux read: %w", err))
			return
		}
		if !m.route(frame) {
			return
		}
	}
}

// route delivers one raw frame; false means the mux died.
func (m *Mux) route(frame []byte) bool {
	id, kind, _, err := parseMuxFrame(frame)
	if err != nil {
		m.recycle(frame)
		m.fail(err)
		return false
	}
	muxFramesIn.Add(1)
	muxBytesIn.Add(int64(len(frame)))
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.recycle(frame)
		return false
	}
	if s, ok := m.sessions[id]; ok {
		if kind == muxKindClose {
			m.mu.Unlock()
			m.recycle(frame)
			m.retire(s, ErrMuxPeerClosed)
			return true
		}
		if kind != muxKindData {
			// Unknown kind: shed rather than hand garbage to the session.
			m.mu.Unlock()
			muxStaleFrames.Add(1)
			m.recycle(frame)
			return true
		}
		select {
		case s.inbox <- frame:
			m.mu.Unlock()
		default:
			// Overflow kills this session only; the link stays healthy.
			m.mu.Unlock()
			muxOverflows.Add(1)
			m.recycle(frame)
			m.notifyClose(id)
			m.retire(s, ErrMuxInboxOverflow)
		}
		return true
	}
	if _, dead := m.tombs[id]; dead || kind != muxKindData {
		// Late frame of a finished session, or a CLOSE for a session we
		// never opened (the peer gave up first): shed, and make sure a
		// subsequent Open of a peer-closed id fails fast.
		if kind == muxKindClose {
			m.tombstoneLocked(id)
		}
		m.mu.Unlock()
		muxStaleFrames.Add(1)
		m.recycle(frame)
		return true
	}
	// Unclaimed data frame: the peer's half of this exchange is ahead of
	// ours. Park it until Open claims the id, evicting oldest-first when
	// the buffer is over budget.
	m.pending = append(m.pending, muxPending{id: id, buf: frame})
	m.pendingBytes += int64(len(frame))
	muxPendingFrames.Add(1)
	muxPendingBytes.Add(int64(len(frame)))
	for len(m.pending) > m.cfg.PendingFrames || m.pendingBytes > m.cfg.PendingBytes {
		ev := m.pending[0]
		m.pending = m.pending[1:]
		m.pendingBytes -= int64(len(ev.buf))
		muxPendingFrames.Add(-1)
		muxPendingBytes.Add(-int64(len(ev.buf)))
		muxEvictedFrames.Add(1)
		m.recycle(ev.buf)
	}
	m.mu.Unlock()
	return true
}

// writeLoop is the single link writer: it drains control frames first,
// then per-session send queues in round-robin — one frame per session per
// pass — so concurrent sessions share the link fairly.
func (m *Mux) writeLoop() {
	vf, hasVec := m.c.(VecFramer)
	var snap []*MuxSession
	write := func(w muxWrite) bool {
		var err error
		if hasVec {
			err = vf.WriteFrameVec(w.hdr, w.payload)
		} else {
			f := make([]byte, 0, len(w.hdr)+len(w.payload))
			f = append(f, w.hdr...)
			f = append(f, w.payload...)
			err = m.c.WriteFrame(f)
		}
		if err == nil {
			muxFramesOut.Add(1)
			muxBytesOut.Add(int64(len(w.hdr) + len(w.payload)))
		}
		if w.ack != nil {
			select {
			case w.ack <- err:
			default:
			}
		}
		if err != nil {
			m.fail(fmt.Errorf("comm: mux write: %w", err))
			return false
		}
		return true
	}
	for {
		wrote := false
		for {
			select {
			case w := <-m.ctl:
				if !write(w) {
					return
				}
				wrote = true
				continue
			default:
			}
			break
		}
		m.mu.Lock()
		snap = append(snap[:0], m.rr...)
		m.mu.Unlock()
		for _, s := range snap {
			select {
			case w := <-s.out:
				if !write(w) {
					return
				}
				wrote = true
			default:
			}
		}
		if wrote {
			select {
			case <-m.done:
				return
			default:
			}
			continue
		}
		select {
		case <-m.wake:
		case <-m.done:
			return
		}
	}
}

// MuxSession is one multiplexed frame stream. It implements Framer (and
// FramerInto) with the mux header stripped, so protocol code written
// against a dedicated connection runs unchanged over a shared one. The
// usual discipline applies: one concurrent reader and one concurrent
// writer per session.
type MuxSession struct {
	id uint64
	m  *Mux

	wmu sync.Mutex
	hdr [MuxHeaderBytes]byte
	out chan muxWrite
	ack chan error

	inbox chan []byte // whole frames, header included

	closeOnce sync.Once
	err       error // set before done closes
	done      chan struct{}

	timer *time.Timer // reused read-deadline timer (reader-owned)
}

// ID returns the session id frames are routed by.
func (s *MuxSession) ID() uint64 { return s.id }

// reason returns why the session ended (only valid after done closed).
func (s *MuxSession) reason() error { return s.err }

// fail ends the session with reason; the first cause wins.
func (s *MuxSession) fail(reason error) {
	s.closeOnce.Do(func() {
		s.err = reason
		close(s.done)
	})
}

// Close retires the session cleanly: it stops routing, sheds late
// frames, and sends nothing on the wire (a completed exchange has nothing
// left to say). Safe to call more than once.
func (s *MuxSession) Close() error {
	s.m.retire(s, ErrMuxSessionClosed)
	return nil
}

// Abort retires the session after a failure and best-effort notifies the
// peer with a CLOSE frame, so its half of the exchange fails fast instead
// of waiting out its read deadline.
func (s *MuxSession) Abort() {
	select {
	case <-s.done:
	default:
		// Control frames bypass the session queue (which a wedged sender
		// may occupy) so the notification cannot deadlock.
		s.m.notifyClose(s.id)
	}
	s.m.retire(s, ErrMuxSessionClosed)
}

// WriteFrame queues one frame for the session and blocks until the link
// writer has it on the wire (so the caller may immediately reuse the
// backing buffer), sharing the link fairly with sibling sessions.
func (s *MuxSession) WriteFrame(frame []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	binary.LittleEndian.PutUint64(s.hdr[:], s.id)
	s.hdr[8] = muxKindData
	select {
	case s.out <- muxWrite{hdr: s.hdr[:], payload: frame, ack: s.ack}:
	case <-s.done:
		return s.reason()
	case <-s.m.done:
		return s.m.Err()
	}
	s.m.wakeWriter()
	select {
	case err := <-s.ack:
		return err
	case <-s.done:
		// The session was retired with our frame possibly still queued —
		// the writer will never visit a retired session again. Reclaim it
		// if the writer hasn't taken it; if it has, the ack is guaranteed.
		select {
		case <-s.out:
			return s.reason()
		default:
		}
		select {
		case err := <-s.ack:
			return err
		case <-s.m.done:
			return s.m.Err()
		}
	case <-s.m.done:
		return s.m.Err()
	}
}

// readRaw pops the next whole frame (header included) from the inbox,
// bounded by the mux's ReadTimeout. Frames already routed before the
// session ended are still delivered.
func (s *MuxSession) readRaw() ([]byte, error) {
	select {
	case f := <-s.inbox:
		return f, nil
	default:
	}
	var deadline <-chan time.Time
	if to := s.m.cfg.ReadTimeout; to > 0 {
		if s.timer == nil {
			s.timer = time.NewTimer(to)
		} else {
			s.timer.Reset(to)
		}
		deadline = s.timer.C
		defer func() {
			if !s.timer.Stop() {
				select {
				case <-s.timer.C:
				default:
				}
			}
		}()
	}
	select {
	case f := <-s.inbox:
		return f, nil
	case <-s.done:
		select {
		case f := <-s.inbox:
			return f, nil
		default:
		}
		return nil, s.reason()
	case <-deadline:
		return nil, errMuxTimeout
	}
}

// ReadFrame returns the next frame's payload. The returned slice is
// owned by the caller.
func (s *MuxSession) ReadFrame() ([]byte, error) {
	f, err := s.readRaw()
	if err != nil {
		return nil, err
	}
	return f[MuxHeaderBytes:], nil
}

// ReadFrameInto returns the next frame's payload, copied into buf when it
// fits (recycling the internal buffer); otherwise the internal buffer is
// handed over, exactly like Conn.ReadFrameInto's grow path.
func (s *MuxSession) ReadFrameInto(buf []byte) ([]byte, error) {
	f, err := s.readRaw()
	if err != nil {
		return nil, err
	}
	payload := f[MuxHeaderBytes:]
	if cap(buf) >= len(payload) {
		out := buf[:len(payload)]
		copy(out, payload)
		s.m.recycle(f)
		return out, nil
	}
	return payload, nil
}
