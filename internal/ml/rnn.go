package ml

import (
	"fmt"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// RNN is an Elman recurrent layer unrolled over Steps timesteps:
//
//	h_t = act(x_t·Wx + h_{t−1}·Wh + b)
//
// The batch input packs the timesteps side by side: each row is
// [x_1 | x_2 | … | x_T] with per-step width InStep. The output is the
// final hidden state h_T (batch × Hidden), trained with backpropagation
// through time.
type RNN struct {
	InStep, Hidden, Steps int
	Wx                    *tensor.Matrix // InStep × Hidden
	Wh                    *tensor.Matrix // Hidden × Hidden
	B                     *tensor.Matrix // 1 × Hidden
	Act                   Activation

	dWx, dWh, dB *tensor.Matrix

	xs   []*tensor.Matrix // cached step inputs
	pres []*tensor.Matrix // cached pre-activations per step
	hs   []*tensor.Matrix // cached hidden states (hs[0] is zeros)
}

// NewRNN builds the unrolled cell.
func NewRNN(inStep, hidden, steps int, act Activation, r *rng.Rand) *RNN {
	n := &RNN{
		InStep: inStep, Hidden: hidden, Steps: steps,
		Wx:  tensor.New(inStep, hidden),
		Wh:  tensor.New(hidden, hidden),
		B:   tensor.New(1, hidden),
		Act: act,
		dWx: tensor.New(inStep, hidden),
		dWh: tensor.New(hidden, hidden),
		dB:  tensor.New(1, hidden),
	}
	bx := float32(1.0 / float32(inStep))
	for i := range n.Wx.Data {
		n.Wx.Data[i] = (r.Float32()*2 - 1) * bx
	}
	bh := float32(1.0 / float32(hidden))
	for i := range n.Wh.Data {
		n.Wh.Data[i] = (r.Float32()*2 - 1) * bh
	}
	return n
}

// InitGradients allocates gradient accumulators (deserialization path).
func (n *RNN) InitGradients() {
	n.dWx = tensor.New(n.InStep, n.Hidden)
	n.dWh = tensor.New(n.Hidden, n.Hidden)
	n.dB = tensor.New(1, n.Hidden)
}

// InDim returns Steps·InStep.
func (n *RNN) InDim() int { return n.Steps * n.InStep }

// OutDim returns the hidden width.
func (n *RNN) OutDim() int { return n.Hidden }

// Forward unrolls the recurrence.
func (n *RNN) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != n.InDim() {
		panic(fmt.Sprintf("ml: RNN forward input %d, want %d", x.Cols, n.InDim()))
	}
	batch := x.Rows
	n.xs = n.xs[:0]
	n.pres = n.pres[:0]
	n.hs = n.hs[:0]
	h := tensor.New(batch, n.Hidden)
	n.hs = append(n.hs, h)
	for t := 0; t < n.Steps; t++ {
		xt := tensor.New(batch, n.InStep)
		for r := 0; r < batch; r++ {
			copy(xt.Row(r), x.Row(r)[t*n.InStep:(t+1)*n.InStep])
		}
		n.xs = append(n.xs, xt)
		pre := tensor.MulTo(xt, n.Wx)
		hw := tensor.MulTo(h, n.Wh)
		tensor.Add(pre, pre, hw)
		for r := 0; r < batch; r++ {
			row := pre.Row(r)
			for c := range row {
				row[c] += n.B.Data[c]
			}
		}
		n.pres = append(n.pres, pre)
		h = tensor.New(batch, n.Hidden)
		tensor.Apply(h, pre, n.Act.Apply)
		n.hs = append(n.hs, h)
	}
	return h.Clone()
}

// Backward runs truncated BPTT over the full unroll.
func (n *RNN) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if len(n.pres) == 0 {
		panic("ml: RNN backward before forward")
	}
	batch := dout.Rows
	dx := tensor.New(batch, n.InDim())
	dh := dout.Clone()
	for t := n.Steps - 1; t >= 0; t-- {
		deriv := tensor.New(batch, n.Hidden)
		tensor.Apply(deriv, n.pres[t], n.Act.Deriv)
		delta := tensor.New(batch, n.Hidden)
		tensor.Hadamard(delta, dh, deriv)

		g := tensor.New(n.InStep, n.Hidden)
		tensor.MulATB(g, n.xs[t], delta)
		tensor.Add(n.dWx, n.dWx, g)
		gh := tensor.New(n.Hidden, n.Hidden)
		tensor.MulATB(gh, n.hs[t], delta)
		tensor.Add(n.dWh, n.dWh, gh)
		for r := 0; r < batch; r++ {
			row := delta.Row(r)
			for c := range row {
				n.dB.Data[c] += row[c]
			}
		}

		dxt := tensor.New(batch, n.InStep)
		tensor.MulABT(dxt, delta, n.Wx)
		for r := 0; r < batch; r++ {
			copy(dx.Row(r)[t*n.InStep:(t+1)*n.InStep], dxt.Row(r))
		}
		dhPrev := tensor.New(batch, n.Hidden)
		tensor.MulABT(dhPrev, delta, n.Wh)
		dh = dhPrev
	}
	return dx
}

// Update applies SGD and clears gradients.
func (n *RNN) Update(lr float32) {
	tensor.AXPY(n.Wx, -lr, n.dWx)
	tensor.AXPY(n.Wh, -lr, n.dWh)
	tensor.AXPY(n.B, -lr, n.dB)
	n.dWx.Zero()
	n.dWh.Zero()
	n.dB.Zero()
}

// ForwardOps reports per-step GEMMs over the unroll.
func (n *RNN) ForwardOps(batch int) []Op {
	ops := make([]Op, 0, 3*n.Steps)
	for t := 0; t < n.Steps; t++ {
		ops = append(ops,
			GemmOp(batch, n.InStep, n.Hidden),
			GemmOp(batch, n.Hidden, n.Hidden),
			ElemOp(3*4*batch*n.Hidden),
		)
	}
	return ops
}

// BackwardOps reports the BPTT GEMMs.
func (n *RNN) BackwardOps(batch int) []Op {
	ops := make([]Op, 0, 5*n.Steps)
	for t := 0; t < n.Steps; t++ {
		ops = append(ops,
			ElemOp(3*4*batch*n.Hidden),
			GemmOp(n.InStep, batch, n.Hidden),
			GemmOp(n.Hidden, batch, n.Hidden),
			GemmOp(batch, n.Hidden, n.InStep),
			GemmOp(batch, n.Hidden, n.Hidden),
		)
	}
	return ops
}
