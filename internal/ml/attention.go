package ml

import (
	"fmt"
	"math"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Secure multi-head attention treats the batch rows as the token
// sequence: a T×d input is one sequence of T tokens with model width d.
// The softmax over attention scores uses the same polynomial/piecewise
// approximation machinery as the existing activations (Eq. 9,
// SigmoidTaylor) so the secure path can reveal scores, apply the public
// approximation, and re-share — see "Softmax approximation contract" in
// DESIGN.md for the error bound.

// SoftmaxCutoff is the piecewise range-reduction cutoff: after the
// row-max shift every score is ≤ 0, and entries below -SoftmaxCutoff
// get weight exactly 0 (e^-16 ≈ 1.1e-7 is below FP32 resolution of the
// row sum anyway).
const SoftmaxCutoff = 16

// expNegTable holds e^-k for k = 0..SoftmaxCutoff, the coarse half of
// the piecewise range reduction.
var expNegTable [SoftmaxCutoff + 1]float32

func init() {
	for k := range expNegTable {
		expNegTable[k] = float32(math.Exp(-float64(k)))
	}
}

// approxExpNeg evaluates e^x for x ≤ 0 as e^-k · P₇(f) with x = -k + f,
// k ∈ {0..SoftmaxCutoff}, f ∈ (-1, 0], and P₇ the degree-7 Taylor
// polynomial of eˣ (Horner form, like sigmoidTaylor). The polynomial
// remainder on (-1, 0] is below 1/8! ≈ 2.5e-5 relative.
func approxExpNeg(x float32) float32 {
	if x <= -SoftmaxCutoff {
		return 0
	}
	if x > 0 {
		x = 0
	}
	k := int(-x) // floor of -x, so f = x + k ∈ (-1, 0]
	f := x + float32(k)
	p := 1 + f*(1+f/2*(1+f/3*(1+f/4*(1+f/5*(1+f/6*(1+f/7))))))
	return expNegTable[k] * p
}

// ApproxSoftmax writes the row-wise approximate softmax of src into
// dst. When causal is true, row r attends only to columns 0..r (later
// columns get probability exactly 0); src must then be square. The
// row max is subtracted first, so absolute score magnitude never
// reaches the polynomial — only score *spread* beyond SoftmaxCutoff is
// truncated to 0.
func ApproxSoftmax(dst, src *tensor.Matrix, causal bool) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("ml: ApproxSoftmax shape mismatch")
	}
	if causal && src.Rows != src.Cols {
		panic("ml: causal ApproxSoftmax needs square scores")
	}
	for r := 0; r < src.Rows; r++ {
		in, out := src.Row(r), dst.Row(r)
		lim := len(in)
		if causal {
			lim = r + 1
		}
		max := in[0]
		for c := 1; c < lim; c++ {
			if in[c] > max {
				max = in[c]
			}
		}
		var sum float32
		for c := 0; c < lim; c++ {
			w := approxExpNeg(in[c] - max)
			out[c] = w
			sum += w
		}
		for c := lim; c < len(in); c++ {
			out[c] = 0
		}
		inv := 1 / sum // sum ≥ 1: the max entry contributes exactly 1
		for c := 0; c < lim; c++ {
			out[c] *= inv
		}
	}
}

// SoftmaxBackward writes ∂L/∂scores into dst given the softmax output p
// and ∂L/∂p: dS = p ⊙ (dp − rowsum(dp ⊙ p)). Masked entries have p = 0
// and therefore dS = 0 automatically.
func SoftmaxBackward(dst, p, dp *tensor.Matrix) {
	for r := 0; r < p.Rows; r++ {
		pr, dr, or := p.Row(r), dp.Row(r), dst.Row(r)
		var dot float32
		for c := range pr {
			dot += pr[c] * dr[c]
		}
		for c := range pr {
			or[c] = pr[c] * (dr[c] - dot)
		}
	}
}

// ResidualScale is the 1/√2 residual combiner used in place of
// layernorm: y = (x + f(x))/√2 keeps the output variance of a sum of
// two roughly-unit-variance branches bounded while staying linear —
// and linear means it is share-local in the secure path, where a true
// layernorm would need a secure reciprocal-sqrt.
const ResidualScale = float32(0.7071067811865476)

// Attention is one multi-head self-attention block with a scaled
// residual: y = (x + MHA(x)) · ResidualScale. Weights are d×d, biases
// 1×d; the head width is d/Heads.
type Attention struct {
	Heads  int
	Causal bool

	Wq, Wk, Wv, Wo *tensor.Matrix
	Bq, Bk, Bv, Bo *tensor.Matrix

	dWq, dWk, dWv, dWo *tensor.Matrix
	dBq, dBk, dBv, dBo *tensor.Matrix

	// forward caches for Backward
	x, q, k, v, ctx *tensor.Matrix
	probs           []*tensor.Matrix // per-head T×T softmax outputs
}

// NewAttention builds a multi-head attention block of model width d.
func NewAttention(d, heads int, causal bool, r *rng.Rand) *Attention {
	if heads <= 0 || d%heads != 0 {
		panic(fmt.Sprintf("ml: attention width %d not divisible by %d heads", d, heads))
	}
	a := &Attention{Heads: heads, Causal: causal}
	initW := func() *tensor.Matrix {
		w := tensor.New(d, d)
		bound := float32(1.0 / float32(d))
		for i := range w.Data {
			w.Data[i] = (r.Float32()*2 - 1) * bound
		}
		return w
	}
	a.Wq, a.Wk, a.Wv, a.Wo = initW(), initW(), initW(), initW()
	a.Bq, a.Bk, a.Bv, a.Bo = tensor.New(1, d), tensor.New(1, d), tensor.New(1, d), tensor.New(1, d)
	a.InitGradients()
	return a
}

// InitGradients allocates the gradient accumulators (deserialization
// path, mirroring Dense.InitGradients).
func (a *Attention) InitGradients() {
	d := a.Wq.Rows
	a.dWq, a.dWk, a.dWv, a.dWo = tensor.New(d, d), tensor.New(d, d), tensor.New(d, d), tensor.New(d, d)
	a.dBq, a.dBk, a.dBv, a.dBo = tensor.New(1, d), tensor.New(1, d), tensor.New(1, d), tensor.New(1, d)
}

// InDim returns the model width.
func (a *Attention) InDim() int { return a.Wq.Rows }

// OutDim returns the model width.
func (a *Attention) OutDim() int { return a.Wq.Rows }

func affine(x, w, b *tensor.Matrix) *tensor.Matrix {
	out := tensor.MulTo(x, w)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c := range row {
			row[c] += b.Data[c]
		}
	}
	return out
}

// sliceCols copies columns [lo, hi) of m into a fresh matrix.
func sliceCols(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// writeCols copies src into columns [lo, lo+src.Cols) of dst.
func writeCols(dst, src *tensor.Matrix, lo int) {
	for r := 0; r < src.Rows; r++ {
		copy(dst.Row(r)[lo:lo+src.Cols], src.Row(r))
	}
}

// Forward runs multi-head attention over a T×d token sequence.
func (a *Attention) Forward(x *tensor.Matrix) *tensor.Matrix {
	d := a.Wq.Rows
	if x.Cols != d {
		panic(fmt.Sprintf("ml: attention forward input %d, want %d", x.Cols, d))
	}
	a.x = x
	a.q = affine(x, a.Wq, a.Bq)
	a.k = affine(x, a.Wk, a.Bk)
	a.v = affine(x, a.Wv, a.Bv)
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	a.ctx = tensor.New(x.Rows, d)
	a.probs = a.probs[:0]
	for h := 0; h < a.Heads; h++ {
		lo := h * dh
		qh := sliceCols(a.q, lo, lo+dh)
		kh := sliceCols(a.k, lo, lo+dh)
		vh := sliceCols(a.v, lo, lo+dh)
		s := tensor.New(x.Rows, x.Rows)
		tensor.MulABT(s, qh, kh)
		tensor.Scale(s, s, scale)
		p := tensor.New(x.Rows, x.Rows)
		ApproxSoftmax(p, s, a.Causal)
		a.probs = append(a.probs, p)
		writeCols(a.ctx, tensor.MulTo(p, vh), lo)
	}
	out := affine(a.ctx, a.Wo, a.Bo)
	y := tensor.New(x.Rows, d)
	tensor.Add(y, x, out)
	tensor.Scale(y, y, ResidualScale)
	return y
}

func colSumInto(acc *tensor.Matrix, m *tensor.Matrix) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			acc.Data[c] += row[c]
		}
	}
}

// Backward computes gradients given ∂L/∂y and returns ∂L/∂x.
func (a *Attention) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if a.ctx == nil {
		panic("ml: attention backward before forward")
	}
	d := a.Wq.Rows
	dh := d / a.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	// y = (x + ctx·Wo + bo) · ResidualScale
	dres := tensor.New(dout.Rows, d)
	tensor.Scale(dres, dout, ResidualScale)
	// through the output projection
	dctx := tensor.New(dout.Rows, d)
	tensor.MulABT(dctx, dres, a.Wo)
	gwo := tensor.New(d, d)
	tensor.MulATB(gwo, a.ctx, dres)
	tensor.Add(a.dWo, a.dWo, gwo)
	colSumInto(a.dBo, dres)
	// per head, back through score·V and softmax(QKᵀ)
	dq := tensor.New(dout.Rows, d)
	dk := tensor.New(dout.Rows, d)
	dv := tensor.New(dout.Rows, d)
	for h := 0; h < a.Heads; h++ {
		lo := h * dh
		qh := sliceCols(a.q, lo, lo+dh)
		kh := sliceCols(a.k, lo, lo+dh)
		vh := sliceCols(a.v, lo, lo+dh)
		dch := sliceCols(dctx, lo, lo+dh)
		p := a.probs[h]
		dp := tensor.New(p.Rows, p.Cols)
		tensor.MulABT(dp, dch, vh)
		dvh := tensor.New(p.Rows, dh)
		tensor.MulATB(dvh, p, dch)
		ds := tensor.New(p.Rows, p.Cols)
		SoftmaxBackward(ds, p, dp)
		tensor.Scale(ds, ds, scale)
		dqh := tensor.MulTo(ds, kh)
		dkh := tensor.New(p.Rows, dh)
		tensor.MulATB(dkh, ds, qh)
		writeCols(dq, dqh, lo)
		writeCols(dk, dkh, lo)
		writeCols(dv, dvh, lo)
	}
	// through the Q/K/V projections, plus the residual path
	dx := dres.Clone()
	for _, t := range []struct {
		dproj  *tensor.Matrix
		w      *tensor.Matrix
		gw, gb *tensor.Matrix
	}{
		{dq, a.Wq, a.dWq, a.dBq},
		{dk, a.Wk, a.dWk, a.dBk},
		{dv, a.Wv, a.dWv, a.dBv},
	} {
		gw := tensor.New(d, d)
		tensor.MulATB(gw, a.x, t.dproj)
		tensor.Add(t.gw, t.gw, gw)
		colSumInto(t.gb, t.dproj)
		dxp := tensor.New(dout.Rows, d)
		tensor.MulABT(dxp, t.dproj, t.w)
		tensor.Add(dx, dx, dxp)
	}
	return dx
}

// Update applies SGD and clears the gradients.
func (a *Attention) Update(lr float32) {
	for _, p := range []struct{ w, g *tensor.Matrix }{
		{a.Wq, a.dWq}, {a.Wk, a.dWk}, {a.Wv, a.dWv}, {a.Wo, a.dWo},
		{a.Bq, a.dBq}, {a.Bk, a.dBk}, {a.Bv, a.dBv}, {a.Bo, a.dBo},
	} {
		tensor.AXPY(p.w, -lr, p.g)
		p.g.Zero()
	}
}

// ForwardOps reports the GEMMs of one forward pass at sequence length
// batch (projections, per-head QKᵀ and P·V, output projection).
func (a *Attention) ForwardOps(batch int) []Op {
	d := a.Wq.Rows
	dh := d / a.Heads
	ops := []Op{
		GemmOp(batch, d, d), GemmOp(batch, d, d), GemmOp(batch, d, d), // Q,K,V
		GemmOp(batch, d, d), // out
		ElemOp(4 * batch * d * 3),
	}
	for h := 0; h < a.Heads; h++ {
		ops = append(ops, GemmOp(batch, dh, batch), GemmOp(batch, batch, dh))
	}
	return ops
}

// BackwardOps reports the GEMMs of one backward pass.
func (a *Attention) BackwardOps(batch int) []Op {
	d := a.Wq.Rows
	dh := d / a.Heads
	ops := []Op{
		GemmOp(batch, d, d), GemmOp(d, batch, d), // dctx, dWo
	}
	for h := 0; h < a.Heads; h++ {
		ops = append(ops,
			GemmOp(batch, dh, batch), GemmOp(batch, batch, dh), // dP, dV
			GemmOp(batch, batch, dh), GemmOp(batch, batch, dh), // dQ, dK
		)
	}
	for i := 0; i < 3; i++ {
		ops = append(ops, GemmOp(d, batch, d), GemmOp(batch, d, d)) // dW, dX
	}
	return ops
}

// TransformerBlock is attention followed by a two-layer feed-forward
// stack, each wrapped in a scaled residual:
//
//	y = (x + MHA(x)) · ResidualScale
//	out = (y + FF2(FF1(y))) · ResidualScale
//
// FF1/FF2 are ordinary Dense layers, so the secure path reuses the
// existing dense machinery for them.
type TransformerBlock struct {
	Att      *Attention
	FF1, FF2 *Dense

	y *tensor.Matrix // attention output cache
}

// NewTransformerBlock builds a block of model width d with the given
// head count and feed-forward hidden width.
func NewTransformerBlock(d, heads, ff int, act Activation, causal bool, r *rng.Rand) *TransformerBlock {
	return &TransformerBlock{
		Att: NewAttention(d, heads, causal, r),
		FF1: NewDense(d, ff, act, r),
		FF2: NewDense(ff, d, Identity, r),
	}
}

// InDim returns the model width.
func (t *TransformerBlock) InDim() int { return t.Att.InDim() }

// OutDim returns the model width.
func (t *TransformerBlock) OutDim() int { return t.Att.OutDim() }

// Forward runs attention then the feed-forward residual branch.
func (t *TransformerBlock) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := t.Att.Forward(x)
	t.y = y
	h := t.FF2.Forward(t.FF1.Forward(y))
	out := tensor.New(y.Rows, y.Cols)
	tensor.Add(out, y, h)
	tensor.Scale(out, out, ResidualScale)
	return out
}

// Backward computes gradients given ∂L/∂out and returns ∂L/∂x.
func (t *TransformerBlock) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if t.y == nil {
		panic("ml: transformer backward before forward")
	}
	d1 := tensor.New(dout.Rows, dout.Cols)
	tensor.Scale(d1, dout, ResidualScale)
	dff := t.FF1.Backward(t.FF2.Backward(d1))
	dy := tensor.New(d1.Rows, d1.Cols)
	tensor.Add(dy, d1, dff)
	return t.Att.Backward(dy)
}

// Update applies SGD to all sub-layers.
func (t *TransformerBlock) Update(lr float32) {
	t.Att.Update(lr)
	t.FF1.Update(lr)
	t.FF2.Update(lr)
}

// ForwardOps reports the operations of one forward pass.
func (t *TransformerBlock) ForwardOps(batch int) []Op {
	ops := t.Att.ForwardOps(batch)
	ops = append(ops, t.FF1.ForwardOps(batch)...)
	ops = append(ops, t.FF2.ForwardOps(batch)...)
	return ops
}

// BackwardOps reports the operations of one backward pass.
func (t *TransformerBlock) BackwardOps(batch int) []Op {
	ops := t.Att.BackwardOps(batch)
	ops = append(ops, t.FF1.BackwardOps(batch)...)
	ops = append(ops, t.FF2.BackwardOps(batch)...)
	return ops
}
