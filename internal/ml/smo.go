package ml

import (
	"math"

	"parsecureml/internal/tensor"
)

// SMO trains a linear soft-margin SVM with the sequential minimal
// optimization algorithm (Platt 1998, simplified working-set selection),
// the training method the paper cites for its SVM benchmark (§7.1, [55]).
// Targets are ±1; the returned classifier is f(x) = w·x + b — the
// inference form (w^T x + b) the paper evaluates securely.
type SMO struct {
	C       float64 // box constraint
	Tol     float64 // KKT tolerance
	MaxIter int     // passes without progress before stopping

	W *tensor.Matrix // 1 × d
	B float64
	// Alphas holds the dual variables after Train.
	Alphas []float64
}

// NewSMO returns a trainer with standard defaults.
func NewSMO(c float64) *SMO {
	return &SMO{C: c, Tol: 1e-3, MaxIter: 20}
}

// Train fits the SVM on x (rows = samples) and ±1 labels y.
func (s *SMO) Train(x *tensor.Matrix, y []float32) {
	n, d := x.Rows, x.Cols
	alpha := make([]float64, n)
	b := 0.0

	// Linear kernel cache: K(i,j) = x_i·x_j computed on demand.
	dot := func(i, j int) float64 {
		ri, rj := x.Row(i), x.Row(j)
		var s float64
		for k := range ri {
			s += float64(ri[k]) * float64(rj[k])
		}
		return s
	}
	// f(i) via the weight vector maintained incrementally.
	w := make([]float64, d)
	f := func(i int) float64 {
		ri := x.Row(i)
		var s float64
		for k := range ri {
			s += w[k] * float64(ri[k])
		}
		return s + b
	}
	updateW := func(i int, delta float64) {
		ri := x.Row(i)
		for k := range ri {
			w[k] += delta * float64(y[i]) * float64(ri[k])
		}
	}

	passes := 0
	for passes < s.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - float64(y[i])
			yi := float64(y[i])
			if (yi*ei < -s.Tol && alpha[i] < s.C) || (yi*ei > s.Tol && alpha[i] > 0) {
				// Second index: maximal |E_i − E_j| heuristic over a
				// bounded deterministic candidate window.
				j := -1
				var bestGap float64
				for step := 1; step < n && step <= 101; step++ {
					cand := (i + step*7) % n
					if cand == i {
						continue
					}
					gap := math.Abs(ei - (f(cand) - float64(y[cand])))
					if gap > bestGap {
						bestGap, j = gap, cand
					}
				}
				if j < 0 {
					continue
				}
				ej := f(j) - float64(y[j])
				yj := float64(y[j])

				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if yi != yj {
					lo = math.Max(0, aj-ai)
					hi = math.Min(s.C, s.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-s.C)
					hi = math.Min(s.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*dot(i, j) - dot(i, i) - dot(j, j)
				if eta >= 0 {
					continue
				}
				ajNew := aj - yj*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-6 {
					continue
				}
				aiNew := ai + yi*yj*(aj-ajNew)

				// Threshold update (Platt's rules).
				b1 := b - ei - yi*(aiNew-ai)*dot(i, i) - yj*(ajNew-aj)*dot(i, j)
				b2 := b - ej - yi*(aiNew-ai)*dot(i, j) - yj*(ajNew-aj)*dot(j, j)
				switch {
				case aiNew > 0 && aiNew < s.C:
					b = b1
				case ajNew > 0 && ajNew < s.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}

				updateW(i, aiNew-ai)
				updateW(j, ajNew-aj)
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	s.Alphas = alpha
	s.B = b
	s.W = tensor.New(1, d)
	for k := range w {
		s.W.Data[k] = float32(w[k])
	}
}

// Decision returns w·x + b for each row of x.
func (s *SMO) Decision(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, 1)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var acc float64
		for k, v := range row {
			acc += float64(s.W.Data[k]) * float64(v)
		}
		out.Set(r, 0, float32(acc+s.B))
	}
	return out
}

// Accuracy scores ±1 labels by decision sign.
func (s *SMO) Accuracy(x *tensor.Matrix, y []float32) float64 {
	if x.Rows == 0 {
		return 0
	}
	dec := s.Decision(x)
	correct := 0
	for i, v := range dec.Data {
		if (v >= 0) == (y[i] >= 0) {
			correct++
		}
	}
	return float64(correct) / float64(x.Rows)
}
