package ml

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"parsecureml/internal/tensor"
)

// Model serialization: a compact, versioned binary format so a model
// trained in one process (securely or not) can be served from another —
// the client's "download the final model" step made durable. Matrices use
// the tensor wire codec; everything is little-endian.
//
//	magic "PSML" | u32 version | name | u32 lossTag | u32 layerCount |
//	layers: u32 typeTag + type-specific fields
//
// Strings are u32-length-prefixed UTF-8.

const (
	modelMagic   = "PSMLMODL"
	modelVersion = 1
)

// Layer type tags.
const (
	tagLayerDense uint32 = iota + 1
	tagLayerConv
	tagLayerRNN
	tagLayerAvgPool
	tagLayerAttention
	tagLayerTransformer
)

// Loss tags.
const (
	tagLossMSE uint32 = iota + 1
	tagLossHinge
)

type countingWriter struct {
	w *bufio.Writer
}

func (cw countingWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.w.Write(b[:])
	return err
}

func (cw countingWriter) str(s string) error {
	if err := cw.u32(uint32(len(s))); err != nil {
		return err
	}
	_, err := cw.w.WriteString(s)
	return err
}

func (cw countingWriter) matrix(m *tensor.Matrix) error {
	frame := tensor.EncodeMatrix(nil, m)
	if err := cw.u32(uint32(len(frame))); err != nil {
		return err
	}
	_, err := cw.w.Write(frame)
	return err
}

func (cw countingWriter) attention(a *Attention) error {
	causal := uint32(0)
	if a.Causal {
		causal = 1
	}
	for _, v := range []uint32{uint32(a.Heads), causal} {
		if err := cw.u32(v); err != nil {
			return err
		}
	}
	for _, m := range []*tensor.Matrix{a.Wq, a.Wk, a.Wv, a.Wo, a.Bq, a.Bk, a.Bv, a.Bo} {
		if err := cw.matrix(m); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the model to w.
func Save(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	cw := countingWriter{bw}
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	if err := cw.u32(modelVersion); err != nil {
		return err
	}
	if err := cw.str(m.Name); err != nil {
		return err
	}
	lossTag := tagLossMSE
	if _, ok := m.Loss.(Hinge); ok {
		lossTag = tagLossHinge
	}
	if err := cw.u32(lossTag); err != nil {
		return err
	}
	if err := cw.u32(uint32(len(m.Layers))); err != nil {
		return err
	}
	for _, l := range m.Layers {
		switch lt := l.(type) {
		case *Dense:
			if err := cw.u32(tagLayerDense); err != nil {
				return err
			}
			if err := cw.u32(uint32(lt.Act)); err != nil {
				return err
			}
			if err := cw.matrix(lt.W); err != nil {
				return err
			}
			if err := cw.matrix(lt.B); err != nil {
				return err
			}
		case *Conv2D:
			if err := cw.u32(tagLayerConv); err != nil {
				return err
			}
			for _, v := range []uint32{
				uint32(lt.Shape.InH), uint32(lt.Shape.InW), uint32(lt.Shape.InChannels()),
				uint32(lt.Shape.KH), uint32(lt.Shape.KW),
				uint32(lt.Shape.Stride), uint32(lt.Shape.Pad),
				uint32(lt.Filters), uint32(lt.Act),
			} {
				if err := cw.u32(v); err != nil {
					return err
				}
			}
			if err := cw.matrix(lt.K); err != nil {
				return err
			}
			if err := cw.matrix(lt.B); err != nil {
				return err
			}
		case *RNN:
			if err := cw.u32(tagLayerRNN); err != nil {
				return err
			}
			for _, v := range []uint32{
				uint32(lt.InStep), uint32(lt.Hidden), uint32(lt.Steps), uint32(lt.Act),
			} {
				if err := cw.u32(v); err != nil {
					return err
				}
			}
			if err := cw.matrix(lt.Wx); err != nil {
				return err
			}
			if err := cw.matrix(lt.Wh); err != nil {
				return err
			}
			if err := cw.matrix(lt.B); err != nil {
				return err
			}
		case *AvgPool:
			if err := cw.u32(tagLayerAvgPool); err != nil {
				return err
			}
			for _, v := range []uint32{
				uint32(lt.InH), uint32(lt.InW), uint32(lt.Channels), uint32(lt.Win),
			} {
				if err := cw.u32(v); err != nil {
					return err
				}
			}
		case *Attention:
			if err := cw.u32(tagLayerAttention); err != nil {
				return err
			}
			if err := cw.attention(lt); err != nil {
				return err
			}
		case *TransformerBlock:
			if err := cw.u32(tagLayerTransformer); err != nil {
				return err
			}
			if err := cw.attention(lt.Att); err != nil {
				return err
			}
			for _, ff := range []*Dense{lt.FF1, lt.FF2} {
				if err := cw.u32(uint32(ff.Act)); err != nil {
					return err
				}
				if err := cw.matrix(ff.W); err != nil {
					return err
				}
				if err := cw.matrix(ff.B); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("ml: cannot serialize layer type %T", l)
		}
	}
	return bw.Flush()
}

type reader struct {
	r *bufio.Reader
}

func (rd reader) u32() (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(rd.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (rd reader) str() (string, error) {
	n, err := rd.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("ml: string of %d bytes", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (rd reader) matrix() (*tensor.Matrix, error) {
	n, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("ml: matrix frame of %d bytes", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(rd.r, frame); err != nil {
		return nil, err
	}
	m, used, err := tensor.DecodeMatrix(frame)
	if err != nil {
		return nil, err
	}
	if used != int(n) {
		return nil, fmt.Errorf("ml: matrix frame trailing bytes")
	}
	return m, nil
}

func (rd reader) attention() (*Attention, error) {
	heads, err := rd.u32()
	if err != nil {
		return nil, err
	}
	causal, err := rd.u32()
	if err != nil {
		return nil, err
	}
	var ws [8]*tensor.Matrix
	for j := range ws {
		if ws[j], err = rd.matrix(); err != nil {
			return nil, err
		}
	}
	a := &Attention{
		Heads: int(heads), Causal: causal != 0,
		Wq: ws[0], Wk: ws[1], Wv: ws[2], Wo: ws[3],
		Bq: ws[4], Bk: ws[5], Bv: ws[6], Bo: ws[7],
	}
	d := a.Wq.Rows
	if heads == 0 || d%int(heads) != 0 {
		return nil, fmt.Errorf("ml: attention width %d for %d heads", d, heads)
	}
	for _, w := range ws[:4] {
		if w.Rows != d || w.Cols != d {
			return nil, fmt.Errorf("ml: attention weight %dx%d, want %dx%d", w.Rows, w.Cols, d, d)
		}
	}
	for _, b := range ws[4:] {
		if b.Rows != 1 || b.Cols != d {
			return nil, fmt.Errorf("ml: attention bias %dx%d, want 1x%d", b.Rows, b.Cols, d)
		}
	}
	a.InitGradients()
	return a, nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	rd := reader{bufio.NewReader(r)}
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(rd.r, magic); err != nil {
		return nil, err
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("ml: bad model magic %q", magic)
	}
	version, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if version != modelVersion {
		return nil, fmt.Errorf("ml: unsupported model version %d", version)
	}
	name, err := rd.str()
	if err != nil {
		return nil, err
	}
	lossTag, err := rd.u32()
	if err != nil {
		return nil, err
	}
	var loss Loss
	switch lossTag {
	case tagLossMSE:
		loss = MSE{}
	case tagLossHinge:
		loss = Hinge{}
	default:
		return nil, fmt.Errorf("ml: unknown loss tag %d", lossTag)
	}
	count, err := rd.u32()
	if err != nil {
		return nil, err
	}
	if count < 1 || count > 1024 {
		return nil, fmt.Errorf("ml: layer count %d", count)
	}
	layers := make([]Layer, 0, count)
	for i := uint32(0); i < count; i++ {
		tag, err := rd.u32()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagLayerDense:
			act, err := rd.u32()
			if err != nil {
				return nil, err
			}
			w, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			b, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			if b.Rows != 1 || b.Cols != w.Cols {
				return nil, fmt.Errorf("ml: dense bias %dx%d for %d outputs", b.Rows, b.Cols, w.Cols)
			}
			d := &Dense{W: w, B: b, Act: Activation(act)}
			d.InitGradients()
			layers = append(layers, d)
		case tagLayerConv:
			var vals [9]uint32
			for j := range vals {
				if vals[j], err = rd.u32(); err != nil {
					return nil, err
				}
			}
			k, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			b, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			shape := tensor.NewConvShapeCh(int(vals[0]), int(vals[1]), int(vals[2]), int(vals[3]), int(vals[4]), int(vals[5]), int(vals[6]))
			if k.Rows != shape.PatchSize() || k.Cols != int(vals[7]) {
				return nil, fmt.Errorf("ml: conv kernel %dx%d for %d filters", k.Rows, k.Cols, vals[7])
			}
			c := &Conv2D{Shape: shape, Filters: int(vals[7]), Act: Activation(vals[8]), K: k, B: b}
			c.InitGradients()
			layers = append(layers, c)
		case tagLayerRNN:
			var vals [4]uint32
			for j := range vals {
				if vals[j], err = rd.u32(); err != nil {
					return nil, err
				}
			}
			wx, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			wh, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			b, err := rd.matrix()
			if err != nil {
				return nil, err
			}
			n := &RNN{
				InStep: int(vals[0]), Hidden: int(vals[1]), Steps: int(vals[2]),
				Act: Activation(vals[3]), Wx: wx, Wh: wh, B: b,
			}
			if wx.Rows != n.InStep || wx.Cols != n.Hidden || wh.Rows != n.Hidden || wh.Cols != n.Hidden {
				return nil, fmt.Errorf("ml: RNN weight shapes inconsistent")
			}
			n.InitGradients()
			layers = append(layers, n)
		case tagLayerAvgPool:
			var vals [4]uint32
			for j := range vals {
				if vals[j], err = rd.u32(); err != nil {
					return nil, err
				}
			}
			layers = append(layers, NewAvgPool(int(vals[0]), int(vals[1]), int(vals[2]), int(vals[3])))
		case tagLayerAttention:
			a, err := rd.attention()
			if err != nil {
				return nil, err
			}
			layers = append(layers, a)
		case tagLayerTransformer:
			a, err := rd.attention()
			if err != nil {
				return nil, err
			}
			t := &TransformerBlock{Att: a}
			for _, ff := range []**Dense{&t.FF1, &t.FF2} {
				act, err := rd.u32()
				if err != nil {
					return nil, err
				}
				w, err := rd.matrix()
				if err != nil {
					return nil, err
				}
				b, err := rd.matrix()
				if err != nil {
					return nil, err
				}
				if b.Rows != 1 || b.Cols != w.Cols {
					return nil, fmt.Errorf("ml: transformer FF bias %dx%d for %d outputs", b.Rows, b.Cols, w.Cols)
				}
				d := &Dense{W: w, B: b, Act: Activation(act)}
				d.InitGradients()
				*ff = d
			}
			if t.FF1.InDim() != a.OutDim() || t.FF2.OutDim() != a.OutDim() || t.FF2.InDim() != t.FF1.OutDim() {
				return nil, fmt.Errorf("ml: transformer FF shapes inconsistent")
			}
			layers = append(layers, t)
		default:
			return nil, fmt.Errorf("ml: unknown layer tag %d", tag)
		}
	}
	return NewModel(name, loss, layers...), nil
}
