package ml

import (
	"fmt"

	"parsecureml/internal/tensor"
)

// AvgPool is 2-D average pooling over non-overlapping windows. Average
// pooling is linear, so its secure counterpart applies share-locally with
// no protocol cost — the pooling choice the MPC literature prefers over
// max pooling (which needs comparisons). Inputs carry Channels feature
// maps per row, laid out channel-major: [c0 row-major | c1 | …].
type AvgPool struct {
	InH, InW, Channels int
	Win                int // window edge (stride == window: non-overlapping)
	OutH, OutW         int

	batch int
}

// NewAvgPool builds the layer; the input height/width must be divisible
// by the window.
func NewAvgPool(inH, inW, channels, win int) *AvgPool {
	if win < 1 || inH%win != 0 || inW%win != 0 {
		panic(fmt.Sprintf("ml: AvgPool %dx%d not divisible by window %d", inH, inW, win))
	}
	return &AvgPool{
		InH: inH, InW: inW, Channels: channels, Win: win,
		OutH: inH / win, OutW: inW / win,
	}
}

// InDim returns Channels·InH·InW.
func (p *AvgPool) InDim() int { return p.Channels * p.InH * p.InW }

// OutDim returns Channels·OutH·OutW.
func (p *AvgPool) OutDim() int { return p.Channels * p.OutH * p.OutW }

// Forward averages each window.
func (p *AvgPool) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != p.InDim() {
		panic(fmt.Sprintf("ml: AvgPool forward input %d, want %d", x.Cols, p.InDim()))
	}
	p.batch = x.Rows
	out := tensor.New(x.Rows, p.OutDim())
	if !tensor.ComputeEnabled() {
		return out
	}
	inv := 1 / float32(p.Win*p.Win)
	for b := 0; b < x.Rows; b++ {
		in := x.Row(b)
		dst := out.Row(b)
		for c := 0; c < p.Channels; c++ {
			inC := in[c*p.InH*p.InW:]
			dstC := dst[c*p.OutH*p.OutW:]
			for oy := 0; oy < p.OutH; oy++ {
				for ox := 0; ox < p.OutW; ox++ {
					var acc float32
					for wy := 0; wy < p.Win; wy++ {
						row := inC[(oy*p.Win+wy)*p.InW+ox*p.Win:]
						for wx := 0; wx < p.Win; wx++ {
							acc += row[wx]
						}
					}
					dstC[oy*p.OutW+ox] = acc * inv
				}
			}
		}
	}
	return out
}

// Backward distributes each output gradient uniformly over its window.
func (p *AvgPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	dx := tensor.New(p.batch, p.InDim())
	if !tensor.ComputeEnabled() {
		return dx
	}
	inv := 1 / float32(p.Win*p.Win)
	for b := 0; b < dout.Rows; b++ {
		g := dout.Row(b)
		dst := dx.Row(b)
		for c := 0; c < p.Channels; c++ {
			gC := g[c*p.OutH*p.OutW:]
			dstC := dst[c*p.InH*p.InW:]
			for oy := 0; oy < p.OutH; oy++ {
				for ox := 0; ox < p.OutW; ox++ {
					v := gC[oy*p.OutW+ox] * inv
					for wy := 0; wy < p.Win; wy++ {
						row := dstC[(oy*p.Win+wy)*p.InW+ox*p.Win:]
						for wx := 0; wx < p.Win; wx++ {
							row[wx] += v
						}
					}
				}
			}
		}
	}
	return dx
}

// Update is a no-op: pooling has no parameters.
func (p *AvgPool) Update(lr float32) {}

// ForwardOps reports one streaming pass.
func (p *AvgPool) ForwardOps(batch int) []Op {
	return []Op{ElemOp(4 * batch * (p.InDim() + p.OutDim()))}
}

// BackwardOps reports one streaming pass.
func (p *AvgPool) BackwardOps(batch int) []Op {
	return []Op{ElemOp(4 * batch * (p.InDim() + p.OutDim()))}
}
