package ml

import (
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Constructors for the six benchmark models of §7.1, parameterized by the
// dataset's input geometry.

// NewMLP is the paper's multilayer perceptron: input → 128 → 64 → 10 with
// ReLU activations (§7.1 describes the MNIST instance; for other datasets
// the input layer width follows the data).
func NewMLP(inDim int, r *rng.Rand) *Model {
	return NewModel("MLP", MSE{},
		NewDense(inDim, 128, ReLU, r),
		NewDense(128, 64, ReLU, r),
		NewDense(64, 10, Piecewise, r),
	)
}

// NewCNN is the paper's CNN: one 5×5 convolution (valid padding) followed
// by two fully connected layers (64 hidden neurons, 10 outputs) with ReLU.
func NewCNN(inH, inW, filters int, r *rng.Rand) *Model {
	return NewCNNCh(inH, inW, 1, filters, r)
}

// NewCNNCh is NewCNN over multi-channel images (CIFAR-10 is 32×32×3).
func NewCNNCh(inH, inW, channels, filters int, r *rng.Rand) *Model {
	shape := tensor.NewConvShapeCh(inH, inW, channels, 5, 5, 1, 0)
	conv := NewConv2D(shape, filters, ReLU, r)
	return NewModel("CNN", MSE{},
		conv,
		NewDense(conv.OutDim(), 64, ReLU, r),
		NewDense(64, 10, Piecewise, r),
	)
}

// NewRNNModel is the recurrent benchmark: an Elman cell over the input
// sequence followed by a dense readout.
func NewRNNModel(inStep, hidden, steps int, r *rng.Rand) *Model {
	cell := NewRNN(inStep, hidden, steps, Piecewise, r)
	return NewModel("RNN", MSE{},
		cell,
		NewDense(hidden, 10, Piecewise, r),
	)
}

// NewTransformer is the secure-transformer benchmark: a dense embedding
// into the model width, one TransformerBlock (causal multi-head
// attention + feed-forward, scaled residuals), and a dense readout.
// Batch rows are the token sequence.
func NewTransformer(inDim, dModel, heads, ff int, r *rng.Rand) *Model {
	return NewModel("transformer", MSE{},
		NewDense(inDim, dModel, ReLU, r),
		NewTransformerBlock(dModel, heads, ff, ReLU, true, r),
		NewDense(dModel, 10, Piecewise, r),
	)
}

// NewLinearRegression is a single linear layer trained with MSE.
func NewLinearRegression(inDim int, r *rng.Rand) *Model {
	return NewModel("linear", MSE{},
		NewDense(inDim, 1, Identity, r),
	)
}

// NewLogisticRegression is a single layer with the paper's piecewise
// activation standing in for the sigmoid (Eq. 9 — "ReLU does not have an
// upper limit which cannot be used in ... logistic regression").
func NewLogisticRegression(inDim int, r *rng.Rand) *Model {
	return NewModel("logistic", MSE{},
		NewDense(inDim, 1, Piecewise, r),
	)
}

// NewSVM is a linear SVM trained by hinge-loss subgradient descent (the
// gradient formulation whose per-iteration cost matches the triplet
// pattern the secure framework protects; plaintext SMO lives in smo.go).
func NewSVM(inDim int, r *rng.Rand) *Model {
	return NewModel("SVM", Hinge{},
		NewDense(inDim, 1, Identity, r),
	)
}

// Accuracy returns the fraction of rows whose arg-max prediction matches
// the arg-max target (one-hot classification).
func Accuracy(pred, target *tensor.Matrix) float64 {
	if pred.Rows == 0 {
		return 0
	}
	correct := 0
	for r := 0; r < pred.Rows; r++ {
		if argmax(pred.Row(r)) == argmax(target.Row(r)) {
			correct++
		}
	}
	return float64(correct) / float64(pred.Rows)
}

// BinaryAccuracy scores ±1-labeled single-output predictions by sign (for
// SVM/linear) or 0/1 labels against a 0.5 threshold when threshold05 is
// set (logistic with piecewise outputs).
func BinaryAccuracy(pred, target *tensor.Matrix, threshold05 bool) float64 {
	if pred.Rows == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred.Data {
		want := target.Data[i]
		var got float32
		if threshold05 {
			if p >= 0.5 {
				got = 1
			}
			if want >= 0.5 {
				want = 1
			} else {
				want = 0
			}
		} else {
			if p >= 0 {
				got = 1
			} else {
				got = -1
			}
		}
		if got == want {
			correct++
		}
	}
	return float64(correct) / float64(len(pred.Data))
}

func argmax(row []float32) int {
	best, bi := row[0], 0
	for i, v := range row {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// OneHot encodes integer labels into an n-class one-hot matrix.
func OneHot(labels []int, classes int) *tensor.Matrix {
	m := tensor.New(len(labels), classes)
	for i, l := range labels {
		m.Set(i, l, 1)
	}
	return m
}
