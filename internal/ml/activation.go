// Package ml is the plaintext machine-learning substrate: the six model
// families the paper evaluates (CNN, MLP, RNN, linear regression, logistic
// regression, SVM), dense/convolutional/recurrent layers with SGD
// training, losses and metrics, and per-layer operation metadata that the
// hardware cost models consume. The secure counterparts in
// internal/secureml execute the same architectures through the 2PC engine;
// this package is both the accuracy oracle and the "original
// (security-ignorant) machine learning" baseline of Tables 1 and 2.
package ml

import "math"

// Activation is a pointwise nonlinearity with derivative.
type Activation int

// Supported activations. Piecewise is the paper's Eq. (9) MPC-friendly
// function; Identity is used by regression outputs. Sigmoid is the exact
// logistic function, and SigmoidTaylor its 5th-order Taylor fit around 0 —
// the alternative the paper considers and rejects ("use Taylor Formula to
// fit the nonlinear functions ... but the expansion has high
// complexities", §4.2); both exist so the activation study can quantify
// that tradeoff.
const (
	Identity Activation = iota
	Piecewise
	ReLU
	Sigmoid
	SigmoidTaylor
)

// Apply evaluates the activation.
func (a Activation) Apply(x float32) float32 {
	switch a {
	case Piecewise:
		switch {
		case x < -0.5:
			return 0
		case x > 0.5:
			return 1
		default:
			return x + 0.5
		}
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Sigmoid:
		return float32(1 / (1 + math.Exp(-float64(x))))
	case SigmoidTaylor:
		return sigmoidTaylor(x)
	default:
		return x
	}
}

// sigmoidTaylor is the 5th-order Maclaurin expansion of the logistic
// function, clamped to [0,1] (the series diverges from σ beyond |x|≈2.7).
func sigmoidTaylor(x float32) float32 {
	v := 0.5 + x/4 - x*x*x/48 + x*x*x*x*x/480
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// sigmoidTaylorDeriv differentiates the clamped expansion.
func sigmoidTaylorDeriv(x float32) float32 {
	raw := 0.5 + x/4 - x*x*x/48 + x*x*x*x*x/480
	if raw < 0 || raw > 1 {
		return 0
	}
	return 0.25 - x*x/16 + x*x*x*x/96
}

// Deriv evaluates the activation derivative.
func (a Activation) Deriv(x float32) float32 {
	switch a {
	case Piecewise:
		if x > -0.5 && x < 0.5 {
			return 1
		}
		return 0
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		s := 1 / (1 + math.Exp(-float64(x)))
		return float32(s * (1 - s))
	case SigmoidTaylor:
		return sigmoidTaylorDeriv(x)
	default:
		return 1
	}
}

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Piecewise:
		return "piecewise"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case SigmoidTaylor:
		return "sigmoid-taylor"
	default:
		return "identity"
	}
}
