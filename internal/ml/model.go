package ml

import (
	"fmt"

	"parsecureml/internal/tensor"
)

// Loss is a training objective over batch predictions and targets. Grad
// returns ∂L/∂pred (already normalized by batch size).
type Loss interface {
	Value(pred, target *tensor.Matrix) float64
	Grad(pred, target *tensor.Matrix) *tensor.Matrix
}

// MSE is mean squared error ½‖pred−target‖²/batch — used by linear
// regression and, following SecureML, by the piecewise-activated
// classifiers (the piecewise function bounds outputs to [0,1] like a
// squashed logistic output).
type MSE struct{}

// Value returns the mean squared error.
func (MSE) Value(pred, target *tensor.Matrix) float64 {
	diff := tensor.SubTo(pred, target)
	var s float64
	for _, v := range diff.Data {
		s += float64(v) * float64(v)
	}
	return s / (2 * float64(pred.Rows))
}

// Grad returns (pred−target)/batch.
func (MSE) Grad(pred, target *tensor.Matrix) *tensor.Matrix {
	g := tensor.SubTo(pred, target)
	tensor.Scale(g, g, 1/float32(pred.Rows))
	return g
}

// Hinge is the SVM objective mean(max(0, 1−y·f(x))) for targets in {−1,+1}.
type Hinge struct{}

// Value returns the mean hinge loss.
func (Hinge) Value(pred, target *tensor.Matrix) float64 {
	var s float64
	for i, p := range pred.Data {
		m := 1 - float64(target.Data[i])*float64(p)
		if m > 0 {
			s += m
		}
	}
	return s / float64(pred.Rows)
}

// Grad returns the hinge subgradient.
func (Hinge) Grad(pred, target *tensor.Matrix) *tensor.Matrix {
	g := tensor.New(pred.Rows, pred.Cols)
	for i, p := range pred.Data {
		if float64(target.Data[i])*float64(p) < 1 {
			g.Data[i] = -target.Data[i] / float32(pred.Rows)
		}
	}
	return g
}

// Model is a sequential network with a loss.
type Model struct {
	Name   string
	Layers []Layer
	Loss   Loss
}

// NewModel validates layer dimension chaining.
func NewModel(name string, loss Loss, layers ...Layer) *Model {
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutDim() != layers[i].InDim() {
			panic(fmt.Sprintf("ml: %s layer %d out %d != layer %d in %d",
				name, i-1, layers[i-1].OutDim(), i, layers[i].InDim()))
		}
	}
	return &Model{Name: name, Layers: layers, Loss: loss}
}

// Predict runs the forward pass.
func (m *Model) Predict(x *tensor.Matrix) *tensor.Matrix {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out)
	}
	return out
}

// TrainBatch runs one SGD step on a batch and returns the pre-update loss.
func (m *Model) TrainBatch(x, y *tensor.Matrix, lr float32) float64 {
	pred := m.Predict(x)
	loss := m.Loss.Value(pred, y)
	grad := m.Loss.Grad(pred, y)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	for _, l := range m.Layers {
		l.Update(lr)
	}
	return loss
}

// Fit runs epochs of mini-batch SGD over the dataset (rows of x), visiting
// batches in order (deterministic).
func (m *Model) Fit(x, y *tensor.Matrix, batch int, epochs int, lr float32) []float64 {
	if x.Rows != y.Rows {
		panic("ml: Fit sample count mismatch")
	}
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		var total float64
		var batches int
		for lo := 0; lo < x.Rows; lo += batch {
			hi := lo + batch
			if hi > x.Rows {
				hi = x.Rows
			}
			total += m.TrainBatch(x.SliceRows(lo, hi), y.SliceRows(lo, hi), lr)
			batches++
		}
		losses = append(losses, total/float64(batches))
	}
	return losses
}

// ForwardOps aggregates one forward pass's operations at the given batch.
func (m *Model) ForwardOps(batch int) []Op {
	var ops []Op
	for _, l := range m.Layers {
		ops = append(ops, l.ForwardOps(batch)...)
	}
	return ops
}

// BackwardOps aggregates one backward pass's operations.
func (m *Model) BackwardOps(batch int) []Op {
	var ops []Op
	for i := len(m.Layers) - 1; i >= 0; i-- {
		ops = append(ops, m.Layers[i].BackwardOps(batch)...)
	}
	return ops
}

// TrainOps is forward + backward.
func (m *Model) TrainOps(batch int) []Op {
	return append(m.ForwardOps(batch), m.BackwardOps(batch)...)
}

// InDim returns the model's input width.
func (m *Model) InDim() int { return m.Layers[0].InDim() }

// OutDim returns the model's output width.
func (m *Model) OutDim() int { return m.Layers[len(m.Layers)-1].OutDim() }
