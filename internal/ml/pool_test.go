package ml

import (
	"math"
	"testing"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestAvgPoolForwardValues(t *testing.T) {
	p := NewAvgPool(4, 4, 1, 2)
	x := tensor.FromSlice(1, 16, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out := p.Forward(x)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestAvgPoolMultiChannel(t *testing.T) {
	p := NewAvgPool(2, 2, 2, 2)
	x := tensor.FromSlice(1, 8, []float32{1, 1, 1, 1, 4, 4, 4, 4})
	out := p.Forward(x)
	if out.Cols != 2 || out.Data[0] != 1 || out.Data[1] != 4 {
		t.Fatalf("multi-channel pool: %v", out.Data)
	}
}

func TestAvgPoolAdjoint(t *testing.T) {
	// <Forward(x), y> == <x, Backward(y)>: average pooling is linear and
	// Backward must be its exact adjoint.
	p := NewAvgPool(6, 6, 2, 3)
	r := rng.NewRand(1)
	x := tensor.New(3, p.InDim())
	y := tensor.New(3, p.OutDim())
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32() - 0.5
	}
	fx := p.Forward(x)
	var lhs float64
	for i := range fx.Data {
		lhs += float64(fx.Data[i]) * float64(y.Data[i])
	}
	bty := p.Backward(y)
	var rhs float64
	for i := range bty.Data {
		rhs += float64(bty.Data[i]) * float64(x.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestAvgPoolInModel(t *testing.T) {
	r := rng.NewRand(2)
	// conv(8x8 -> 6x6 x2 filters) -> pool(6x6 -> 3x3) -> dense
	shape := tensor.NewConvShape(8, 8, 3, 3, 1, 0)
	conv := NewConv2D(shape, 2, ReLU, r)
	pool := NewAvgPool(6, 6, 2, 2)
	m := NewModel("cnn-pool", MSE{},
		conv, pool, NewDense(pool.OutDim(), 4, Piecewise, r))
	x := tensor.New(5, 64)
	y := tensor.New(5, 4)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	l0 := m.TrainBatch(x, y, 0.1)
	var lN float64
	for i := 0; i < 30; i++ {
		lN = m.TrainBatch(x, y, 0.1)
	}
	if !(lN < l0) {
		t.Fatalf("pooled CNN loss did not decrease: %v -> %v", l0, lN)
	}
	if len(m.ForwardOps(5)) == 0 || TotalFLOPs(m.TrainOps(5)) <= 0 {
		t.Fatal("ops metadata missing")
	}
}

func TestAvgPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible window")
		}
	}()
	NewAvgPool(5, 5, 1, 2)
}
