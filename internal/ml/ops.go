package ml

// Operation metadata: every layer reports the dense-algebra operations one
// batch pass performs, so the benchmark harness can charge the same
// workload to any hardware model (plain CPU, plain GPU, or the secure
// protocol's cost structure) without re-deriving shapes.

// OpKind classifies an operation.
type OpKind int

// Operation kinds.
const (
	OpGemm OpKind = iota // dense m×k × k×n multiplication
	OpElem               // memory-bound element-wise pass
)

// Op is one operation of a pass.
type Op struct {
	Kind    OpKind
	M, K, N int // GEMM geometry (Kind == OpGemm)
	Bytes   int // streamed bytes (Kind == OpElem)
}

// GemmOp builds GEMM metadata.
func GemmOp(m, k, n int) Op { return Op{Kind: OpGemm, M: m, K: k, N: n} }

// ElemOp builds element-wise metadata.
func ElemOp(bytes int) Op { return Op{Kind: OpElem, Bytes: bytes} }

// FLOPs returns the arithmetic work of the op (2mkn for GEMM, bytes/4 for
// element-wise).
func (o Op) FLOPs() float64 {
	if o.Kind == OpGemm {
		return 2 * float64(o.M) * float64(o.K) * float64(o.N)
	}
	return float64(o.Bytes) / 4
}

// TotalFLOPs sums FLOPs over ops.
func TotalFLOPs(ops []Op) float64 {
	var s float64
	for _, o := range ops {
		s += o.FLOPs()
	}
	return s
}
