package ml

import (
	"bytes"
	"testing"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSaveLoadMLP(t *testing.T) {
	r := rng.NewRand(1)
	m := NewMLP(32, r)
	x := tensor.New(5, 32)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	m.TrainBatch(x, tensor.New(5, 10), 0.1) // non-trivial weights

	got := roundTrip(t, m)
	if got.Name != m.Name {
		t.Fatalf("name %q", got.Name)
	}
	if !got.Predict(x).Equal(m.Predict(x)) {
		t.Fatal("loaded MLP predicts differently")
	}
	// Loaded model must be trainable (gradients allocated).
	if l := got.TrainBatch(x, tensor.New(5, 10), 0.1); l < 0 {
		t.Fatal("training failed")
	}
}

func TestSaveLoadCNNWithPoolAndRNN(t *testing.T) {
	r := rng.NewRand(2)
	shape := tensor.NewConvShape(8, 8, 3, 3, 1, 0)
	conv := NewConv2D(shape, 2, ReLU, r)
	pool := NewAvgPool(6, 6, 2, 2)
	cnn := NewModel("cnn", MSE{}, conv, pool, NewDense(pool.OutDim(), 3, Piecewise, r))
	x := tensor.New(4, 64)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	got := roundTrip(t, cnn)
	if !got.Predict(x).Equal(cnn.Predict(x)) {
		t.Fatal("loaded CNN predicts differently")
	}

	rnn := NewRNNModel(4, 8, 3, r)
	xr := tensor.New(4, 12)
	for i := range xr.Data {
		xr.Data[i] = r.Float32() - 0.5
	}
	gotR := roundTrip(t, rnn)
	if !gotR.Predict(xr).Equal(rnn.Predict(xr)) {
		t.Fatal("loaded RNN predicts differently")
	}
}

func TestSaveLoadHingeLoss(t *testing.T) {
	r := rng.NewRand(3)
	m := NewSVM(8, r)
	got := roundTrip(t, m)
	if _, ok := got.Loss.(Hinge); !ok {
		t.Fatalf("loss type %T", got.Loss)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTMODEL"),
		[]byte("PSMLMODL\x63\x00\x00\x00"), // bad version
	}
	for i, c := range cases {
		if _, err := Load(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d: garbage loaded", i)
		}
	}
	// Truncations of a valid stream.
	r := rng.NewRand(4)
	var buf bytes.Buffer
	if err := Save(&buf, NewLogisticRegression(4, r)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{4, 12, 20, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d loaded", n)
		}
	}
}

func TestSaveLoadCorruptedLayerTag(t *testing.T) {
	r := rng.NewRand(5)
	var buf bytes.Buffer
	if err := Save(&buf, NewLinearRegression(4, r)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Layer tag sits right after magic+version+name+loss+count.
	off := len("PSMLMODL") + 4 + 4 + len("linear") + 4 + 4
	b[off] = 0xEE
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("unknown layer tag loaded")
	}
}
