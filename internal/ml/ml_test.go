package ml

import (
	"math"
	"testing"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// numericalGrad estimates ∂loss/∂p for parameter element p via central
// differences, where run() computes the batch loss from scratch.
func numericalGrad(p *float32, run func() float64) float64 {
	const eps = 1e-2
	orig := *p
	*p = orig + eps
	lp := run()
	*p = orig - eps
	lm := run()
	*p = orig
	return (lp - lm) / (2 * eps)
}

func TestDenseGradientCheck(t *testing.T) {
	r := rng.NewRand(1)
	layer := NewDense(4, 3, Piecewise, r)
	model := NewModel("g", MSE{}, layer)
	x := tensor.New(5, 4)
	y := tensor.New(5, 3)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32()
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }

	// Analytic gradients.
	pred := model.Predict(x)
	grad := model.Loss.Grad(pred, y)
	layer.Backward(grad)

	checked := 0
	for i := range layer.W.Data {
		want := numericalGrad(&layer.W.Data[i], run)
		got := float64(layer.dW.Data[i])
		if math.Abs(want) < 1e-4 && math.Abs(got) < 1e-4 {
			continue // flat region of the piecewise activation
		}
		if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dW[%d]: analytic %v, numerical %v", i, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("gradient check exercised no elements")
	}
}

func TestConvGradientCheck(t *testing.T) {
	r := rng.NewRand(2)
	shape := tensor.NewConvShape(6, 6, 3, 3, 1, 0)
	conv := NewConv2D(shape, 2, ReLU, r)
	model := NewModel("g", MSE{}, conv)
	x := tensor.New(2, 36)
	y := tensor.New(2, conv.OutDim())
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32() * 0.1
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }
	pred := model.Predict(x)
	conv.Backward(model.Loss.Grad(pred, y))
	for i := range conv.K.Data {
		want := numericalGrad(&conv.K.Data[i], run)
		got := float64(conv.dK.Data[i])
		if math.Abs(got-want) > 3e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dK[%d]: analytic %v, numerical %v", i, got, want)
		}
	}
}

func TestRNNGradientCheck(t *testing.T) {
	r := rng.NewRand(3)
	cell := NewRNN(3, 4, 3, Piecewise, r)
	model := NewModel("g", MSE{}, cell)
	x := tensor.New(2, 9)
	y := tensor.New(2, 4)
	for i := range x.Data {
		x.Data[i] = (r.Float32() - 0.5) * 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32()
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }
	pred := model.Predict(x)
	cell.Backward(model.Loss.Grad(pred, y))
	for i := range cell.Wh.Data {
		want := numericalGrad(&cell.Wh.Data[i], run)
		got := float64(cell.dWh.Data[i])
		if math.Abs(want) < 1e-4 && math.Abs(got) < 1e-4 {
			continue
		}
		if math.Abs(got-want) > 3e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dWh[%d]: analytic %v, numerical %v", i, got, want)
		}
	}
}

func TestDenseBackwardInputGradient(t *testing.T) {
	r := rng.NewRand(4)
	layer := NewDense(3, 2, Identity, r)
	model := NewModel("g", MSE{}, layer)
	x := tensor.New(1, 3)
	y := tensor.New(1, 2)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }
	pred := model.Predict(x)
	dx := layer.Backward(model.Loss.Grad(pred, y))
	for i := range x.Data {
		want := numericalGrad(&x.Data[i], run)
		if math.Abs(float64(dx.Data[i])-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("dX[%d]: analytic %v, numerical %v", i, dx.Data[i], want)
		}
	}
}

// Linear regression on an exactly linear synthetic target must converge to
// near-zero loss.
func TestLinearRegressionConverges(t *testing.T) {
	r := rng.NewRand(5)
	trueW := []float32{0.5, -1.2, 2.0, 0.3}
	x := tensor.New(256, 4)
	y := tensor.New(256, 1)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var acc float32
		for j := range row {
			row[j] = r.Float32()*2 - 1
			acc += row[j] * trueW[j]
		}
		y.Set(i, 0, acc+0.7)
	}
	m := NewLinearRegression(4, r)
	losses := m.Fit(x, y, 32, 200, 0.1)
	if final := losses[len(losses)-1]; final > 1e-3 {
		t.Fatalf("linear regression did not converge: final loss %v", final)
	}
	if losses[0] <= losses[len(losses)-1] {
		t.Fatal("loss did not decrease")
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	r := rng.NewRand(6)
	x := tensor.New(200, 2)
	y := tensor.New(200, 1)
	for i := 0; i < 200; i++ {
		x.Set(i, 0, r.Float32()*2-1)
		x.Set(i, 1, r.Float32()*2-1)
		if x.At(i, 0)+x.At(i, 1) > 0 {
			y.Set(i, 0, 1)
		}
	}
	m := NewLogisticRegression(2, r)
	m.Fit(x, y, 32, 300, 0.5)
	acc := BinaryAccuracy(m.Predict(x), y, true)
	if acc < 0.95 {
		t.Fatalf("logistic accuracy %v on separable data", acc)
	}
}

func TestMLPLearnsXORish(t *testing.T) {
	r := rng.NewRand(7)
	// 10-class toy: class = argmax of 10 fixed random projections.
	proj := tensor.New(16, 10)
	for i := range proj.Data {
		proj.Data[i] = r.Float32()*2 - 1
	}
	n := 512
	x := tensor.New(n, 16)
	for i := range x.Data {
		x.Data[i] = r.Float32()*2 - 1
	}
	scores := tensor.MulTo(x, proj)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = argmax(scores.Row(i))
	}
	y := OneHot(labels, 10)
	m := NewMLP(16, r)
	m.Fit(x, y, 64, 60, 0.5)
	if acc := Accuracy(m.Predict(x), y); acc < 0.7 {
		t.Fatalf("MLP training accuracy %v, want >= 0.7", acc)
	}
}

func TestCNNForwardBackwardShapes(t *testing.T) {
	r := rng.NewRand(8)
	m := NewCNN(12, 12, 4, r)
	x := tensor.New(6, 144)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	pred := m.Predict(x)
	if pred.Rows != 6 || pred.Cols != 10 {
		t.Fatalf("CNN output %dx%d", pred.Rows, pred.Cols)
	}
	y := tensor.New(6, 10)
	loss1 := m.TrainBatch(x, y, 0.01)
	loss2 := m.TrainBatch(x, y, 0.01)
	if math.IsNaN(loss1) || math.IsNaN(loss2) {
		t.Fatal("NaN loss")
	}
}

func TestRNNModelTrains(t *testing.T) {
	r := rng.NewRand(9)
	m := NewRNNModel(8, 16, 4, r)
	x := tensor.New(32, 32)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	labels := make([]int, 32)
	for i := range labels {
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	y := OneHot(labels, 10)
	l0 := m.TrainBatch(x, y, 0.2)
	var lN float64
	for i := 0; i < 60; i++ {
		lN = m.TrainBatch(x, y, 0.2)
	}
	if lN >= l0 {
		t.Fatalf("RNN loss did not decrease: %v -> %v", l0, lN)
	}
}

func TestSVMSGDSeparable(t *testing.T) {
	r := rng.NewRand(10)
	x := tensor.New(200, 3)
	y := tensor.New(200, 1)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, r.Float32()*2-1)
		}
		if 2*x.At(i, 0)-x.At(i, 1) > 0 {
			y.Set(i, 0, 1)
		} else {
			y.Set(i, 0, -1)
		}
	}
	m := NewSVM(3, r)
	m.Fit(x, y, 32, 200, 0.2)
	if acc := BinaryAccuracy(m.Predict(x), y, false); acc < 0.95 {
		t.Fatalf("SVM-SGD accuracy %v", acc)
	}
}

func TestSMOSeparable(t *testing.T) {
	r := rng.NewRand(11)
	n := 120
	x := tensor.New(n, 2)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.Float32()*2-1)
		x.Set(i, 1, r.Float32()*2-1)
		// Margin-separated classes.
		if x.At(i, 0)+x.At(i, 1) > 0.2 {
			y[i] = 1
		} else if x.At(i, 0)+x.At(i, 1) < -0.2 {
			y[i] = -1
		} else {
			x.Set(i, 0, x.At(i, 0)+1)
			x.Set(i, 1, x.At(i, 1)+1)
			y[i] = 1
		}
	}
	s := NewSMO(1.0)
	s.Train(x, y)
	if acc := s.Accuracy(x, y); acc < 0.97 {
		t.Fatalf("SMO accuracy %v", acc)
	}
	// Dual feasibility: 0 <= alpha <= C.
	for i, a := range s.Alphas {
		if a < -1e-9 || a > s.C+1e-9 {
			t.Fatalf("alpha[%d] = %v outside [0, C]", i, a)
		}
	}
}

func TestModelOpsMetadata(t *testing.T) {
	r := rng.NewRand(12)
	m := NewMLP(128, r)
	fops := m.ForwardOps(64)
	if len(fops) != 6 { // 3 layers × (gemm + elem)
		t.Fatalf("MLP forward ops: %d", len(fops))
	}
	if fops[0].Kind != OpGemm || fops[0].M != 64 || fops[0].K != 128 || fops[0].N != 128 {
		t.Fatalf("first op %+v", fops[0])
	}
	if TotalFLOPs(fops) <= 0 {
		t.Fatal("zero FLOPs")
	}
	tops := m.TrainOps(64)
	if len(tops) <= len(fops) {
		t.Fatal("train ops must include backward")
	}
	if TotalFLOPs(m.BackwardOps(64)) < TotalFLOPs(fops) {
		t.Fatal("backward is cheaper than forward — wrong for dense nets")
	}
}

func TestLossFunctions(t *testing.T) {
	pred := tensor.FromSlice(2, 1, []float32{1, -1})
	tgt := tensor.FromSlice(2, 1, []float32{1, 1})
	if got := (MSE{}).Value(pred, tgt); got != 1 { // (0+4)/(2*2)
		t.Fatalf("MSE = %v", got)
	}
	h := (Hinge{}).Value(pred, tgt)
	if h != 1 { // max(0,0)+max(0,2) over 2
		t.Fatalf("hinge = %v", h)
	}
	g := (Hinge{}).Grad(pred, tgt)
	if g.Data[0] != 0 || g.Data[1] != -0.5 {
		t.Fatalf("hinge grad %v", g.Data)
	}
}

func TestAccuracyHelpers(t *testing.T) {
	pred := tensor.FromSlice(2, 3, []float32{0.9, 0.1, 0, 0, 0.2, 0.7})
	tgt := OneHot([]int{0, 1}, 3)
	if got := Accuracy(pred, tgt); got != 0.5 {
		t.Fatalf("accuracy %v", got)
	}
	if OneHot([]int{2}, 3).At(0, 2) != 1 {
		t.Fatal("OneHot")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	r := rng.NewRand(13)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModel("bad", MSE{}, NewDense(4, 8, ReLU, r), NewDense(9, 2, ReLU, r))
}

func TestActivationString(t *testing.T) {
	if Piecewise.String() != "piecewise" || ReLU.String() != "relu" || Identity.String() != "identity" {
		t.Fatal("activation names")
	}
}

// Multi-channel CNN (CIFAR-10 geometry) must train.
func TestMultiChannelCNNTrains(t *testing.T) {
	r := rng.NewRand(40)
	m := NewCNNCh(8, 8, 3, 2, r)
	if m.InDim() != 192 {
		t.Fatalf("3-channel 8x8 input dim %d", m.InDim())
	}
	x := tensor.New(6, 192)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	labels := make([]int, 6)
	for i := range labels {
		labels[i] = i % 10
	}
	y := OneHot(labels, 10)
	l0 := m.TrainBatch(x, y, 0.05)
	var lN float64
	for i := 0; i < 40; i++ {
		lN = m.TrainBatch(x, y, 0.05)
	}
	if !(lN < l0) {
		t.Fatalf("multi-channel CNN loss did not decrease: %v -> %v", l0, lN)
	}
}
