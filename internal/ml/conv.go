package ml

import (
	"fmt"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Conv2D is a single-input-channel 2-D convolution with Filters output
// channels, lowered to GEMM through im2col (the paper's CNN uses one 5×5
// convolutional layer, §7.1). Input batches carry one flattened InH×InW
// image per row; output rows are flattened OutH·OutW·Filters features.
type Conv2D struct {
	Shape   tensor.ConvShape
	Filters int
	K       *tensor.Matrix // (KH·KW) × Filters
	B       *tensor.Matrix // 1 × Filters
	Act     Activation

	dK, dB *tensor.Matrix

	batch int
	cols  *tensor.Matrix // cached im2col patches
	pre   *tensor.Matrix // cached pre-activation (batch·patches × filters)
}

// NewConv2D builds the layer.
func NewConv2D(shape tensor.ConvShape, filters int, act Activation, r *rng.Rand) *Conv2D {
	c := &Conv2D{
		Shape:   shape,
		Filters: filters,
		K:       tensor.New(shape.PatchSize(), filters),
		B:       tensor.New(1, filters),
		Act:     act,
		dK:      tensor.New(shape.PatchSize(), filters),
		dB:      tensor.New(1, filters),
	}
	bound := float32(1.0 / float32(shape.PatchSize()))
	for i := range c.K.Data {
		c.K.Data[i] = (r.Float32()*2 - 1) * bound
	}
	return c
}

// InitGradients allocates gradient accumulators (deserialization path).
func (c *Conv2D) InitGradients() {
	c.dK = tensor.New(c.K.Rows, c.K.Cols)
	c.dB = tensor.New(1, c.Filters)
}

// InDim returns the flattened input width (Channels·InH·InW).
func (c *Conv2D) InDim() int { return c.Shape.InDim() }

// OutDim returns the flattened output width.
func (c *Conv2D) OutDim() int { return c.Shape.Patches() * c.Filters }

// Forward lowers to patches and multiplies by the kernel matrix.
func (c *Conv2D) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != c.InDim() {
		panic(fmt.Sprintf("ml: Conv2D forward input %d, want %d", x.Cols, c.InDim()))
	}
	c.batch = x.Rows
	c.cols = tensor.Im2Col(x, c.Shape) // (batch·patches) × patchSize
	pre := tensor.MulTo(c.cols, c.K)   // (batch·patches) × filters
	for r := 0; r < pre.Rows; r++ {
		row := pre.Row(r)
		for j := range row {
			row[j] += c.B.Data[j]
		}
	}
	c.pre = pre
	act := pre
	if c.Act != Identity {
		act = tensor.New(pre.Rows, pre.Cols)
		tensor.Apply(act, pre, c.Act.Apply)
	}
	// Reshape (batch·patches) × filters into batch × (patches·filters).
	return act.Reshape(c.batch, c.Shape.Patches()*c.Filters).Clone()
}

// Backward propagates gradients through the lowering.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if c.pre == nil {
		panic("ml: Conv2D backward before forward")
	}
	delta := dout.Reshape(c.batch*c.Shape.Patches(), c.Filters).Clone()
	if c.Act != Identity {
		deriv := tensor.New(c.pre.Rows, c.pre.Cols)
		tensor.Apply(deriv, c.pre, c.Act.Deriv)
		tensor.Hadamard(delta, delta, deriv)
	}
	gk := tensor.New(c.K.Rows, c.K.Cols)
	tensor.MulATB(gk, c.cols, delta)
	tensor.Add(c.dK, c.dK, gk)
	for r := 0; r < delta.Rows; r++ {
		row := delta.Row(r)
		for j := range row {
			c.dB.Data[j] += row[j]
		}
	}
	dcols := tensor.New(delta.Rows, c.K.Rows)
	tensor.MulABT(dcols, delta, c.K)
	return tensor.Col2Im(dcols, c.batch, c.Shape)
}

// Update applies SGD and clears gradients.
func (c *Conv2D) Update(lr float32) {
	tensor.AXPY(c.K, -lr, c.dK)
	tensor.AXPY(c.B, -lr, c.dB)
	c.dK.Zero()
	c.dB.Zero()
}

// ForwardOps reports im2col plus the lowered GEMM.
func (c *Conv2D) ForwardOps(batch int) []Op {
	rows := batch * c.Shape.Patches()
	return []Op{
		ElemOp(2 * 4 * rows * c.Shape.PatchSize()), // im2col
		GemmOp(rows, c.Shape.PatchSize(), c.Filters),
		ElemOp(2 * 4 * rows * c.Filters),
	}
}

// BackwardOps reports the gradient GEMMs and col2im.
func (c *Conv2D) BackwardOps(batch int) []Op {
	rows := batch * c.Shape.Patches()
	return []Op{
		ElemOp(3 * 4 * rows * c.Filters),
		GemmOp(c.Shape.PatchSize(), rows, c.Filters),
		GemmOp(rows, c.Filters, c.Shape.PatchSize()),
		ElemOp(2 * 4 * rows * c.Shape.PatchSize()), // col2im
	}
}
