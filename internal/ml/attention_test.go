package ml

import (
	"bytes"
	"math"
	"testing"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// exactSoftmaxRow is the float64 reference for the approximation
// contract in DESIGN.md.
func exactSoftmaxRow(in []float32, lim int) []float64 {
	max := float64(in[0])
	for c := 1; c < lim; c++ {
		if float64(in[c]) > max {
			max = float64(in[c])
		}
	}
	out := make([]float64, len(in))
	var sum float64
	for c := 0; c < lim; c++ {
		out[c] = math.Exp(float64(in[c]) - max)
		sum += out[c]
	}
	for c := 0; c < lim; c++ {
		out[c] /= sum
	}
	return out
}

// TestApproxSoftmaxContract enforces the DESIGN.md bound: per-entry
// error vs the exact softmax ≤ 2e-4 for row widths up to 512, across
// score spreads that exercise every polynomial segment and the cutoff.
func TestApproxSoftmaxContract(t *testing.T) {
	r := rng.NewRand(7)
	for _, spread := range []float32{0.5, 3, 8, 20, 100} {
		src := tensor.New(64, 512)
		for i := range src.Data {
			src.Data[i] = (r.Float32()*2 - 1) * spread
		}
		dst := tensor.New(64, 512)
		ApproxSoftmax(dst, src, false)
		var worst float64
		for row := 0; row < src.Rows; row++ {
			want := exactSoftmaxRow(src.Row(row), src.Cols)
			got := dst.Row(row)
			var sum float64
			for c := range want {
				if d := math.Abs(float64(got[c]) - want[c]); d > worst {
					worst = d
				}
				sum += float64(got[c])
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("spread %v: row %d sums to %v", spread, row, sum)
			}
		}
		if worst > 2e-4 {
			t.Fatalf("spread %v: approximation error %v exceeds the 2e-4 contract", spread, worst)
		}
	}
}

func TestApproxSoftmaxCausalMask(t *testing.T) {
	r := rng.NewRand(3)
	src := tensor.New(9, 9)
	for i := range src.Data {
		src.Data[i] = r.Float32()*4 - 2
	}
	dst := tensor.New(9, 9)
	ApproxSoftmax(dst, src, true)
	for row := 0; row < 9; row++ {
		got := dst.Row(row)
		for c := row + 1; c < 9; c++ {
			if got[c] != 0 {
				t.Fatalf("row %d col %d: masked entry has weight %v", row, c, got[c])
			}
		}
		want := exactSoftmaxRow(src.Row(row), row+1)
		for c := 0; c <= row; c++ {
			if math.Abs(float64(got[c])-want[c]) > 2e-4 {
				t.Fatalf("row %d col %d: %v vs %v", row, c, got[c], want[c])
			}
		}
	}
}

func TestAttentionGradientCheck(t *testing.T) {
	r := rng.NewRand(5)
	layer := NewAttention(8, 2, true, r)
	// Scale the weights up so softmax-path gradients clear the flat-region
	// skip threshold below.
	for _, w := range []*tensor.Matrix{layer.Wq, layer.Wk, layer.Wv, layer.Wo} {
		tensor.Scale(w, w, 4)
	}
	model := NewModel("g", MSE{}, layer)
	x := tensor.New(6, 8)
	y := tensor.New(6, 8)
	for i := range x.Data {
		x.Data[i] = (r.Float32() - 0.5) * 2
	}
	for i := range y.Data {
		y.Data[i] = r.Float32()
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }

	pred := model.Predict(x)
	grad := model.Loss.Grad(pred, y)
	layer.Backward(grad)

	for name, pair := range map[string]struct{ w, g *tensor.Matrix }{
		"Wq": {layer.Wq, layer.dWq}, "Wk": {layer.Wk, layer.dWk},
		"Wv": {layer.Wv, layer.dWv}, "Wo": {layer.Wo, layer.dWo},
		"Bq": {layer.Bq, layer.dBq}, "Bo": {layer.Bo, layer.dBo},
	} {
		checked := 0
		for i := range pair.w.Data {
			want := numericalGrad(&pair.w.Data[i], run)
			got := float64(pair.g.Data[i])
			if math.Abs(want) < 1e-4 && math.Abs(got) < 1e-4 {
				continue
			}
			if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("d%s[%d]: analytic %v, numerical %v", name, i, got, want)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%s: gradient check exercised no elements", name)
		}
	}
}

func TestTransformerBlockGradientCheck(t *testing.T) {
	r := rng.NewRand(9)
	layer := NewTransformerBlock(8, 2, 12, ReLU, true, r)
	model := NewModel("g", MSE{}, layer)
	x := tensor.New(5, 8)
	y := tensor.New(5, 8)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32()
	}
	run := func() float64 { return model.Loss.Value(model.Predict(x), y) }

	pred := model.Predict(x)
	grad := model.Loss.Grad(pred, y)
	layer.Backward(grad)

	for name, pair := range map[string]struct{ w, g *tensor.Matrix }{
		"Att.Wv": {layer.Att.Wv, layer.Att.dWv},
		"FF1.W":  {layer.FF1.W, layer.FF1.dW},
		"FF2.W":  {layer.FF2.W, layer.FF2.dW},
	} {
		checked := 0
		for i := range pair.w.Data {
			want := numericalGrad(&pair.w.Data[i], run)
			got := float64(pair.g.Data[i])
			if math.Abs(want) < 1e-4 && math.Abs(got) < 1e-4 {
				continue
			}
			if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("d%s[%d]: analytic %v, numerical %v", name, i, got, want)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("%s: gradient check exercised no elements", name)
		}
	}
}

func TestTransformerTrainingLearns(t *testing.T) {
	r := rng.NewRand(11)
	m := NewTransformer(12, 16, 4, 24, r)
	x := tensor.New(16, 12)
	labels := make([]int, 16)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range labels {
		labels[i] = i % 10
		x.Set(i, labels[i]%12, x.At(i, labels[i]%12)+2) // plant a signal
	}
	y := OneHot(labels, 10)
	before := m.Loss.Value(m.Predict(x), y)
	for epoch := 0; epoch < 30; epoch++ {
		m.TrainBatch(x, y, 0.1)
	}
	after := m.Loss.Value(m.Predict(x), y)
	if after >= before {
		t.Fatalf("transformer loss did not decrease: %v -> %v", before, after)
	}
}

func TestSaveLoadTransformer(t *testing.T) {
	r := rng.NewRand(2)
	m := NewTransformer(12, 16, 4, 24, r)
	x := tensor.New(8, 12)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	m.TrainBatch(x, tensor.New(8, 10), 0.1)

	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Predict(x).Equal(m.Predict(x)) {
		t.Fatal("loaded transformer predicts differently")
	}
	if l := got.TrainBatch(x, tensor.New(8, 10), 0.1); l < 0 {
		t.Fatal("training failed")
	}
}
