package ml

import (
	"fmt"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch-rows input; Backward consumes ∂L/∂output and returns ∂L/∂input
// while accumulating parameter gradients; Update applies SGD and clears
// gradients.
type Layer interface {
	Forward(x *tensor.Matrix) *tensor.Matrix
	Backward(dout *tensor.Matrix) *tensor.Matrix
	Update(lr float32)
	// InDim and OutDim are per-sample feature widths.
	InDim() int
	OutDim() int
	// ForwardOps and BackwardOps report the operations of one pass at the
	// given batch size.
	ForwardOps(batch int) []Op
	BackwardOps(batch int) []Op
}

// Dense is a fully connected layer Y = act(X·W + b).
type Dense struct {
	W, B   *tensor.Matrix // W: in×out, B: 1×out
	Act    Activation
	dW, dB *tensor.Matrix

	x, pre *tensor.Matrix // cached forward state
}

// NewDense builds an in×out dense layer with scaled uniform init.
func NewDense(in, out int, act Activation, r *rng.Rand) *Dense {
	d := &Dense{
		W:   tensor.New(in, out),
		B:   tensor.New(1, out),
		Act: act,
		dW:  tensor.New(in, out),
		dB:  tensor.New(1, out),
	}
	bound := float32(1.0 / float32(in))
	for i := range d.W.Data {
		d.W.Data[i] = (r.Float32()*2 - 1) * bound
	}
	return d
}

// InitGradients allocates the gradient accumulators for a layer whose
// weights were set directly (deserialization path).
func (d *Dense) InitGradients() {
	d.dW = tensor.New(d.W.Rows, d.W.Cols)
	d.dB = tensor.New(1, d.W.Cols)
}

// InDim returns the input width.
func (d *Dense) InDim() int { return d.W.Rows }

// OutDim returns the output width.
func (d *Dense) OutDim() int { return d.W.Cols }

// Forward computes act(X·W + b), caching state for Backward.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != d.W.Rows {
		panic(fmt.Sprintf("ml: Dense forward input %d, want %d", x.Cols, d.W.Rows))
	}
	d.x = x
	pre := tensor.MulTo(x, d.W)
	for r := 0; r < pre.Rows; r++ {
		row := pre.Row(r)
		for c := range row {
			row[c] += d.B.Data[c]
		}
	}
	d.pre = pre
	if d.Act == Identity {
		return pre.Clone()
	}
	out := tensor.New(pre.Rows, pre.Cols)
	tensor.Apply(out, pre, d.Act.Apply)
	return out
}

// Backward computes gradients given ∂L/∂Y.
func (d *Dense) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if d.pre == nil {
		panic("ml: Dense backward before forward")
	}
	// δ = dout ⊙ act'(pre)
	delta := dout.Clone()
	if d.Act != Identity {
		deriv := tensor.New(d.pre.Rows, d.pre.Cols)
		tensor.Apply(deriv, d.pre, d.Act.Deriv)
		tensor.Hadamard(delta, delta, deriv)
	}
	// dW += Xᵀ·δ ; dB += colsum(δ) ; dX = δ·Wᵀ
	gw := tensor.New(d.W.Rows, d.W.Cols)
	tensor.MulATB(gw, d.x, delta)
	tensor.Add(d.dW, d.dW, gw)
	for r := 0; r < delta.Rows; r++ {
		row := delta.Row(r)
		for c := range row {
			d.dB.Data[c] += row[c]
		}
	}
	dx := tensor.New(delta.Rows, d.W.Rows)
	tensor.MulABT(dx, delta, d.W)
	return dx
}

// Update applies SGD with learning rate lr (normalized by batch inside the
// loss gradient) and zeroes the gradients.
func (d *Dense) Update(lr float32) {
	tensor.AXPY(d.W, -lr, d.dW)
	tensor.AXPY(d.B, -lr, d.dB)
	d.dW.Zero()
	d.dB.Zero()
}

// ForwardOps reports X·W (GEMM) plus bias/activation passes.
func (d *Dense) ForwardOps(batch int) []Op {
	return []Op{
		GemmOp(batch, d.W.Rows, d.W.Cols),
		ElemOp(2 * 4 * batch * d.W.Cols),
	}
}

// BackwardOps reports δ masking, XᵀḊ, δ·Wᵀ and update passes.
func (d *Dense) BackwardOps(batch int) []Op {
	return []Op{
		ElemOp(3 * 4 * batch * d.W.Cols),
		GemmOp(d.W.Rows, batch, d.W.Cols), // dW = Xᵀδ
		GemmOp(batch, d.W.Cols, d.W.Rows), // dX = δWᵀ
		ElemOp(3 * 4 * d.W.Rows * d.W.Cols),
	}
}
