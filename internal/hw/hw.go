// Package hw provides analytic performance models of the paper's testbed
// hardware (§7.1): per node 2× Intel Xeon E5-2670 v3 (24 cores), an NVIDIA
// Tesla V100 (FP32 and Tensor Cores), PCIe 3.0 ×16 between host and device,
// and 100 Gb/s 4×EDR InfiniBand between nodes. The models return operation
// latencies in seconds; the simulated GPU, transports and pipeline engine
// charge these against simtime resource timelines, which is how the
// repository reproduces the *shape* of the paper's results without CUDA
// hardware (see DESIGN.md, "Hardware substitution").
//
// First-order models only: throughput ramps with problem size through a
// half-saturation constant (an op at size == HalfSize runs at 50 % of peak)
// plus fixed launch/latency costs. Constants are calibrated to public
// figures for the paper's parts, not fitted to its results.
package hw

// CPUModel describes the host processors.
type CPUModel struct {
	Cores            int     // hardware cores across both sockets
	GemmFlopsPerCore float64 // effective SGEMM FLOP/s per core
	ParallelEff      float64 // multi-core scaling efficiency in (0,1]
	MemBandwidth     float64 // streaming bytes/s, all cores
	MemBandwidthCore float64 // streaming bytes/s, single core
	RandPerCore      float64 // MT19937 outputs/s per core
	// RingGemmFlopsPerCore is the per-core rate of scalar Z_2^64
	// fixed-point multiply-accumulate (SecureML's share domain): plain
	// uint64 loops, no SIMD — the arithmetic style of the SecureML
	// implementation the paper baselines against.
	RingGemmFlopsPerCore float64
}

// GemmTime returns the modeled time of an m×k × k×n SGEMM on the CPU.
func (c CPUModel) GemmTime(m, k, n int, parallel bool) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	rate := c.GemmFlopsPerCore
	if parallel {
		rate *= float64(c.Cores) * c.ParallelEff
	}
	return flops / rate
}

// RingGemmTime returns the modeled time of an m×k × k×n multiplication in
// the Z_2^64 ring (scalar uint64 loops).
func (c CPUModel) RingGemmTime(m, k, n int, parallel bool) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	rate := c.RingGemmFlopsPerCore
	if parallel {
		rate *= float64(c.Cores) * c.ParallelEff
	}
	return flops / rate
}

// ElemwiseTime returns the modeled time to stream the given bytes through
// an element-wise kernel (memory-bound: reads + writes combined).
func (c CPUModel) ElemwiseTime(bytes int, parallel bool) float64 {
	bw := c.MemBandwidthCore
	if parallel {
		bw = c.MemBandwidth
	}
	return float64(bytes) / bw
}

// RandTime returns the modeled time to generate n random values with
// thread-local MT19937 generators (parallel) or one generator (serial).
func (c CPUModel) RandTime(n int, parallel bool) float64 {
	rate := c.RandPerCore
	if parallel {
		rate *= float64(c.Cores) * c.ParallelEff
	}
	return float64(n) / rate
}

// GPUModel describes the accelerator.
type GPUModel struct {
	FP32Flops       float64 // peak FP32 FLOP/s
	TensorFlops     float64 // peak Tensor-Core FLOP/s (FP16 in, FP32 acc)
	GemmEff         float64 // asymptotic fraction of peak reachable by GEMM
	GemmHalfDim     float64 // min(m,k,n) at which GEMM reaches eff/2
	TensorHalfDim   float64 // same for Tensor-Core GEMM (larger: needs bigger tiles)
	MemBandwidth    float64 // device memory bytes/s
	KernelLaunch    float64 // per-kernel launch latency, seconds
	WarmUp          float64 // one-time context/clock warm-up, seconds
	RandRate        float64 // cuRAND outputs/s on device
	RandKernelSetup float64 // cuRAND generator setup per call
}

// gemmRampEff models how GEMM efficiency grows with the smallest matrix
// dimension: tiny GEMMs cannot fill the SMs/tensor tiles.
func gemmRampEff(minDim int, half float64) float64 {
	d := float64(minDim)
	return d / (d + half)
}

func min3(a, b, c int) int {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// GemmTime returns the modeled kernel time of an m×k × k×n GEMM, excluding
// transfers. With tensorCore set it uses the Tensor-Core pipe but never
// reports slower than the FP32 pipe (cuBLAS falls back the same way).
func (g GPUModel) GemmTime(m, k, n int, tensorCore bool) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	d := min3(m, k, n)
	fp32 := g.KernelLaunch + flops/(g.FP32Flops*g.GemmEff*gemmRampEff(d, g.GemmHalfDim))
	if !tensorCore {
		return fp32
	}
	tc := g.KernelLaunch + flops/(g.TensorFlops*g.GemmEff*gemmRampEff(d, g.TensorHalfDim))
	if tc < fp32 {
		return tc
	}
	return fp32
}

// ElemwiseTime returns the modeled time of a memory-bound element-wise
// kernel over the given bytes (reads + writes combined).
func (g GPUModel) ElemwiseTime(bytes int) float64 {
	return g.KernelLaunch + float64(bytes)/g.MemBandwidth
}

// RandTime returns the modeled time to generate n values with cuRAND on
// the device (excluding any copy of the result to the host).
func (g GPUModel) RandTime(n int) float64 {
	return g.KernelLaunch + g.RandKernelSetup + float64(n)/g.RandRate
}

// LinkModel is a latency+bandwidth pipe: PCIe channels and network links.
type LinkModel struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes/s
}

// TransferTime returns the modeled time to move the given bytes.
func (l LinkModel) TransferTime(bytes int) float64 {
	return l.Latency + float64(bytes)/l.Bandwidth
}

// Platform bundles one node's hardware plus the inter-node fabric.
type Platform struct {
	CPU  CPUModel
	GPU  GPUModel
	PCIe LinkModel // host<->device, per direction (duplex channels)
	Net  LinkModel // server<->server
}

// Batch-crossover queries: the cost-model side of the serving layer's
// cross-session request batching (internal/mpc's planner). One online
// Beaver exchange moves E (m×k) and F (k×n) each way; its cost splits into
// a size-dependent transfer term and a fixed per-round term (per-frame
// link latency, syscalls, scheduler handoffs) that does NOT shrink with
// the payload. Coalescing B same-shape exchanges into one pays the
// transfer term once per byte either way, but pays the fixed term once
// instead of B times — so "how long is it worth holding a request to
// merge one more tenant" is exactly the fixed term, and the crossover is
// a computed quantity rather than a tuned constant. The runtime planner
// blends these model figures with measured phase histograms; the model
// alone gives the floor an idle server starts from.

// MulExchangeBytes returns the bytes one party ships per direction in one
// m×k × k×n online exchange: the E share (m×k) plus the F share (k×n),
// 4 bytes per FP32 element.
func MulExchangeBytes(m, k, n int) int { return 4 * (m*k + k*n) }

// ExchangeFixedCost returns the modeled fixed overhead of one online
// exchange carried in frames frames per direction: the per-frame latency
// floor that coalescing amortizes. Merging B exchanges into one saves
// (B−1) of these.
func (p Platform) ExchangeFixedCost(frames int) float64 {
	if frames < 1 {
		frames = 1
	}
	return float64(frames) * p.Net.Latency
}

// ExchangeTransferTime returns the modeled size-dependent transfer time of
// one m×k × k×n exchange (one direction; the duplex link carries both
// concurrently). This term is NOT amortized by batching — it scales with
// payload bytes regardless of how requests are framed.
func (p Platform) ExchangeTransferTime(m, k, n int) float64 {
	return float64(MulExchangeBytes(m, k, n)) / p.Net.Bandwidth
}

// BatchWindow returns the modeled crossover for holding a request to
// coalesce it with one more same-shape arrival: the fixed exchange
// overhead the merge would save (one F frame + one E frame per
// direction). Holding a request longer than this costs it more latency
// than the merge recovers, so it is the floor a planner should wait when
// the expected inter-arrival gap is unknown.
func (p Platform) BatchWindow() float64 {
	return p.ExchangeFixedCost(2)
}

// BatchBandRows returns the row-band height for streaming a stacked
// stackRows×k E matrix whose bands feed k×n member GEMMs: the smallest
// band whose compute time covers the next band's transfer, so the stream
// stays pipelined without paying the per-frame latency on needlessly tiny
// frames. When the link outruns the GEMM (compute can never hide
// transfer) it returns stackRows — one whole-matrix frame minimizes the
// fixed cost. The result is clamped to [1, stackRows].
func (p Platform) BatchBandRows(stackRows, k, n int) int {
	if stackRows <= 1 {
		return 1
	}
	perRowXfer := 4 * float64(k) / p.Net.Bandwidth
	gemmRate := p.CPU.GemmFlopsPerCore * float64(p.CPU.Cores) * p.CPU.ParallelEff
	perRowGemm := 2 * float64(k) * float64(n) / gemmRate
	if perRowGemm <= perRowXfer {
		return stackRows
	}
	rows := int(p.Net.Latency/(perRowGemm-perRowXfer)) + 1
	if rows < 1 {
		rows = 1
	}
	if rows > stackRows {
		rows = stackRows
	}
	return rows
}

// Wire-codec crossover queries: the cost-model side of the serving layer's
// adaptive per-tensor compression (internal/mpc's wirecodec). Re-encoding
// a tensor trades CPU passes for wire bytes; whether that pays is purely a
// function of the codec's streaming rate against the link's effective
// bandwidth, so — like the batch window — it is a computed quantity, not a
// tuned constant. Entry points follow the Exchange*/Batch* naming of the
// batching queries above: CodecTime is the per-pass cost model,
// CodecWorthwhile the crossover.

// CodecTime returns the modeled single-core time of one streaming codec
// pass over n FP32 elements (encode or decode). The pass is memory-bound —
// each element is read and written once, ~8 bytes of traffic — so the
// per-element conversion arithmetic (binary16 rounding, CSR index
// bookkeeping) hides under the memory streams.
func (c CPUModel) CodecTime(elems int) float64 {
	return 8 * float64(elems) / c.MemBandwidthCore
}

// CodecWorthwhile reports whether re-encoding an elems-element tensor to
// save bytesSaved wire bytes pays on a link shipping linkBps bytes/s: the
// transfer time saved must cover one encode pass on the sender plus one
// decode pass on the receiver. linkBps <= 0 charges the platform's Net
// model. On the paper's InfiniBand fabric this is never worthwhile — the
// link outruns the codec passes — which is the correct answer there; the
// runtime selector feeds measured effective bandwidth instead, so throttled
// or congested deployments cross over.
func (p Platform) CodecWorthwhile(bytesSaved, elems int, linkBps float64) bool {
	if bytesSaved <= 0 {
		return false
	}
	if linkBps <= 0 {
		linkBps = p.Net.Bandwidth
	}
	return float64(bytesSaved)/linkBps > 2*p.CPU.CodecTime(elems)
}

// Paper returns the model of the paper's evaluation platform.
func Paper() Platform {
	return Platform{
		CPU: CPUModel{
			Cores:            24,    // 2× E5-2670 v3
			GemmFlopsPerCore: 4.0e9, // AVX2 SGEMM ≈ 4 GFLOP/s/core sustained
			ParallelEff:      0.85,
			MemBandwidth:     60e9,  // ~2×34 GB/s DDR4-2133, stream efficiency
			MemBandwidthCore: 18e9,  // single-core stream (DDR4-2133, one socket)
			RandPerCore:      120e6, // MT19937 ≈ 8 ns per 32-bit draw
			// Scalar uint64 multiply-accumulate, plain loops: ~1.3 ops/cycle
			// at 2.3 GHz. Matches the throughput implied by SecureML's
			// published CPU timings within a small factor.
			RingGemmFlopsPerCore: 3.0e9,
		},
		GPU: GPUModel{
			FP32Flops:       15.7e12, // V100 peak FP32
			TensorFlops:     125e12,  // V100 peak Tensor Core
			GemmEff:         0.85,    // cuBLAS large-GEMM fraction of peak
			GemmHalfDim:     192,
			TensorHalfDim:   768,   // TC needs larger tiles to saturate ([53]: 2.5–12×)
			MemBandwidth:    900e9, // HBM2
			KernelLaunch:    8e-6,
			WarmUp:          0.5e-3,
			RandRate:        40e9, // cuRAND XORWOW bulk rate
			RandKernelSetup: 30e-6,
		},
		PCIe: LinkModel{Latency: 10e-6, Bandwidth: 12e9},  // PCIe 3.0 ×16 effective
		Net:  LinkModel{Latency: 2e-6, Bandwidth: 11.5e9}, // 100 Gb/s EDR, ~92 % eff
	}
}

// SlowNet returns the paper platform with a 10 Gb/s Ethernet fabric, used
// by ablations to study communication-bound regimes (the SecureML paper's
// own WAN/LAN sensitivity).
func SlowNet() Platform {
	p := Paper()
	p.Net = LinkModel{Latency: 50e-6, Bandwidth: 1.17e9}
	return p
}

// P100 returns the paper platform with the previous GPU generation (Tesla
// P100, Pascal): no Tensor Cores, lower FP32 peak and memory bandwidth.
// §5.2 cites a 12× Tensor-Core throughput advantage of the V100 over it;
// the models reproduce that ratio (125·eff vs 10.6·eff ≈ 11.8×).
func P100() Platform {
	p := Paper()
	p.GPU.FP32Flops = 10.6e12
	p.GPU.TensorFlops = 10.6e12 // no tensor cores: TC requests fall back
	p.GPU.MemBandwidth = 732e9
	return p
}
