package hw

import (
	"testing"
	"testing/quick"
)

func TestCPUGemmParallelFaster(t *testing.T) {
	c := Paper().CPU
	ser := c.GemmTime(1024, 1024, 1024, false)
	par := c.GemmTime(1024, 1024, 1024, true)
	if par >= ser {
		t.Fatalf("parallel GEMM %v not faster than serial %v", par, ser)
	}
	wantRatio := float64(c.Cores) * c.ParallelEff
	if r := ser / par; r < wantRatio*0.99 || r > wantRatio*1.01 {
		t.Fatalf("parallel speedup %v, want ~%v", r, wantRatio)
	}
}

func TestGPUGemmBeatsCPUForLarge(t *testing.T) {
	p := Paper()
	n := 4096
	gpu := p.GPU.GemmTime(n, n, n, false)
	cpu := p.CPU.GemmTime(n, n, n, true)
	if gpu >= cpu {
		t.Fatalf("GPU (%v) must beat CPU (%v) on large GEMM", gpu, cpu)
	}
	if ratio := cpu / gpu; ratio < 50 || ratio > 300 {
		t.Fatalf("large-GEMM GPU/CPU ratio %v outside plausible [50,300]", ratio)
	}
}

func TestCPUWinsTinyOps(t *testing.T) {
	p := Paper()
	// A 16×16 GEMM: launch latency dominates the GPU.
	gpu := p.GPU.GemmTime(16, 16, 16, false) + 2*p.PCIe.TransferTime(16*16*4) + p.PCIe.TransferTime(16*16*4)
	cpu := p.CPU.GemmTime(16, 16, 16, true)
	if cpu >= gpu {
		t.Fatalf("CPU (%v) must beat GPU+PCIe (%v) on tiny GEMM", cpu, gpu)
	}
}

func TestTensorCoreGainGrowsWithSize(t *testing.T) {
	g := Paper().GPU
	gain := func(n int) float64 {
		return g.GemmTime(n, n, n, false) / g.GemmTime(n, n, n, true)
	}
	small, mid, large := gain(256), gain(2048), gain(16384)
	if small > mid || mid > large {
		t.Fatalf("tensor-core gain must grow with size: %v %v %v", small, mid, large)
	}
	if large < 2.5 || large > 12 {
		t.Fatalf("large tensor-core gain %v outside the paper's [2.5,12] range", large)
	}
	if small < 1 {
		t.Fatalf("tensor-core path must never be slower (gain %v < 1)", small)
	}
}

func TestCuRandCrossover(t *testing.T) {
	p := Paper()
	// Fig. 7: CPU MT19937 wins for small matrices, GPU cuRAND (including
	// the copy back to the host) wins for large ones.
	gpuRand := func(n int) float64 {
		return p.GPU.RandTime(n*n) + p.PCIe.TransferTime(4*n*n)
	}
	small := 512
	if cpu, gpu := p.CPU.RandTime(small*small, true), gpuRand(small); cpu >= gpu {
		t.Fatalf("CPU RNG (%v) should win at n=%d (GPU %v)", cpu, small, gpu)
	}
	large := 16384
	if cpu, gpu := p.CPU.RandTime(large*large, true), gpuRand(large); gpu >= cpu {
		t.Fatalf("GPU RNG (%v) should win at n=%d (CPU %v)", gpu, large, cpu)
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := LinkModel{Latency: 1e-6, Bandwidth: 1e9}
	if got := l.TransferTime(0); got != 1e-6 {
		t.Fatalf("zero-byte transfer %v, want latency only", got)
	}
	if got := l.TransferTime(1e9); got < 1.0 || got > 1.001 {
		t.Fatalf("1 GB over 1 GB/s = %v, want ~1s", got)
	}
}

func TestMonotoneCosts(t *testing.T) {
	p := Paper()
	f := func(a, b uint16) bool {
		x, y := int(a%2000)+1, int(b%2000)+1
		if x > y {
			x, y = y, x
		}
		if p.GPU.GemmTime(x, x, x, false) > p.GPU.GemmTime(y, y, y, false) {
			return false
		}
		if p.GPU.GemmTime(x, x, x, true) > p.GPU.GemmTime(y, y, y, true) {
			return false
		}
		if p.CPU.GemmTime(x, x, x, true) > p.CPU.GemmTime(y, y, y, true) {
			return false
		}
		if p.PCIe.TransferTime(x) > p.PCIe.TransferTime(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElemwiseParallelFaster(t *testing.T) {
	c := Paper().CPU
	if c.ElemwiseTime(1<<20, true) >= c.ElemwiseTime(1<<20, false) {
		t.Fatal("parallel elementwise must be faster")
	}
}

func TestGemmEffRamp(t *testing.T) {
	// Efficiency at minDim == half must be exactly 50 % of asymptote.
	if e := gemmRampEff(192, 192); e != 0.5 {
		t.Fatalf("ramp at half-dim = %v, want 0.5", e)
	}
	if e := gemmRampEff(1<<20, 192); e < 0.99 {
		t.Fatalf("ramp should saturate: %v", e)
	}
}

func TestSlowNetSlower(t *testing.T) {
	fast, slow := Paper().Net, SlowNet().Net
	if slow.TransferTime(1<<20) <= fast.TransferTime(1<<20) {
		t.Fatal("SlowNet must be slower than the paper fabric")
	}
}

func TestPositiveCosts(t *testing.T) {
	p := Paper()
	if p.GPU.GemmTime(1, 1, 1, true) <= 0 ||
		p.CPU.GemmTime(1, 1, 1, false) <= 0 ||
		p.GPU.ElemwiseTime(1) <= 0 ||
		p.CPU.RandTime(1, true) <= 0 ||
		p.GPU.RandTime(1) <= 0 {
		t.Fatal("all costs must be strictly positive")
	}
}

func TestCodecCrossover(t *testing.T) {
	p := Paper()
	const elems = 256 * 256
	halved := 2 * elems // FP16 saves 2 of the 4 bytes per element
	// On the paper's InfiniBand the link outruns the codec passes.
	if p.CodecWorthwhile(halved, elems, 0) {
		t.Fatal("compression should not pay on the 11.5 GB/s fabric")
	}
	// On a 16 MiB/s throttled link it pays decisively.
	if !p.CodecWorthwhile(halved, elems, 16<<20) {
		t.Fatal("halving bytes must pay at 16 MiB/s")
	}
	// No bytes saved, no crossover, at any bandwidth.
	if p.CodecWorthwhile(0, elems, 16<<20) || p.CodecWorthwhile(-4, elems, 16<<20) {
		t.Fatal("non-positive savings must never be worthwhile")
	}
	// The crossover is monotone in link speed: the slowest link where it
	// stops paying bounds the fastest where it still does.
	if p.CodecWorthwhile(halved, elems, 100e9) {
		t.Fatal("crossover not monotone: pays at 100 GB/s")
	}
	if ct := p.CPU.CodecTime(elems); ct <= 0 {
		t.Fatalf("CodecTime = %v", ct)
	}
}
