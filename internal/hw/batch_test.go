package hw

import "testing"

// TestBatchCrossoverQueries pins the cost-model side of cross-session
// batching: the fixed term grows with frame count and link latency (it is
// what coalescing amortizes), and the band-height query stays in range and
// widens when the link gets slower relative to compute.
func TestBatchCrossoverQueries(t *testing.T) {
	p := Paper()

	if got := MulExchangeBytes(32, 16, 8); got != 4*(32*16+16*8) {
		t.Fatalf("MulExchangeBytes(32,16,8) = %d", got)
	}

	f1, f4 := p.ExchangeFixedCost(1), p.ExchangeFixedCost(4)
	if f1 <= 0 || f4 != 4*f1 {
		t.Fatalf("fixed cost not linear in frames: %g vs %g", f1, f4)
	}
	if got := p.ExchangeFixedCost(0); got != f1 {
		t.Fatalf("zero frames should clamp to one: %g vs %g", got, f1)
	}

	if w := p.BatchWindow(); w != p.ExchangeFixedCost(2) {
		t.Fatalf("BatchWindow %g, want the two-frame fixed cost %g", w, p.ExchangeFixedCost(2))
	}
	slow := SlowNet()
	if slow.BatchWindow() <= p.BatchWindow() {
		t.Fatalf("higher-latency fabric should raise the batch window: %g vs %g",
			slow.BatchWindow(), p.BatchWindow())
	}

	xfer := p.ExchangeTransferTime(256, 256, 256)
	if xfer <= 0 {
		t.Fatalf("transfer time %g", xfer)
	}
	if big := p.ExchangeTransferTime(512, 256, 256); big <= xfer {
		t.Fatalf("transfer time should grow with payload: %g vs %g", big, xfer)
	}

	for _, tc := range []struct{ rows, k, n int }{
		{1, 64, 64}, {4096, 64, 64}, {4096, 8, 2}, {4096, 512, 512},
	} {
		band := p.BatchBandRows(tc.rows, tc.k, tc.n)
		if band < 1 || band > tc.rows {
			t.Fatalf("BatchBandRows(%d,%d,%d) = %d out of range", tc.rows, tc.k, tc.n, band)
		}
	}
	// A fabric whose transfer outruns compute by a wide margin should
	// stream whole matrices; a slow fabric with heavy compute should band.
	if band := p.BatchBandRows(4096, 8, 2); band != 4096 {
		t.Fatalf("cheap GEMM should select whole-matrix bands, got %d", band)
	}
	sb := slow.BatchBandRows(4096, 512, 512)
	if sb >= 4096 {
		t.Fatalf("compute-heavy stacked exchange on a slow fabric should band, got %d", sb)
	}
}
