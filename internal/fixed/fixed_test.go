package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x float32) bool {
		v := float64(x)
		if math.Abs(v) > 1e6 || math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := Decode(Encode(v))
		return math.Abs(got-v) <= 1.0/Scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNegative(t *testing.T) {
	if got := Decode(Encode(-1.5)); got != -1.5 {
		t.Fatalf("Decode(Encode(-1.5)) = %v", got)
	}
	if got := Decode(Encode(0)); got != 0 {
		t.Fatalf("zero round trip = %v", got)
	}
}

func TestMatrixEncodeDecode(t *testing.T) {
	m := tensor.FromSlice(2, 2, []float32{1.25, -0.5, 0, 3})
	back := DecodeMatrix(EncodeMatrix(m))
	if !back.ApproxEqual(m, 1.0/Scale) {
		t.Fatal("matrix encode/decode round trip failed")
	}
}

func TestShareHidesAndReconstructs(t *testing.T) {
	r := rng.NewRand(1)
	secret := EncodeMatrix(tensor.FromSlice(2, 3, []float32{1, -2, 3, -4, 5, -6}))
	s0, s1 := Share(secret, r)
	rec := Reconstruct(s0, s1)
	for i := range rec.Data {
		if rec.Data[i] != secret.Data[i] {
			t.Fatal("shares do not reconstruct the secret")
		}
	}
	// A share alone should look nothing like the secret (it is uniform).
	same := 0
	for i := range s0.Data {
		if s0.Data[i] == secret.Data[i] {
			same++
		}
	}
	if same == len(s0.Data) {
		t.Fatal("share equals secret — no hiding")
	}
}

func TestRingAddSubWraparound(t *testing.T) {
	a := NewMatrix(1, 1)
	b := NewMatrix(1, 1)
	a.Data[0] = ^uint64(0) // -1 in two's complement
	b.Data[0] = 1
	c := AddTo(a, b)
	if c.Data[0] != 0 {
		t.Fatalf("(-1)+1 = %d in the ring", c.Data[0])
	}
	d := SubTo(b, a) // 1 - (-1) = 2
	if d.Data[0] != 2 {
		t.Fatalf("1-(-1) = %d", d.Data[0])
	}
}

func TestTruncationPairPreservesSum(t *testing.T) {
	r := rng.NewRand(2)
	f := func(x float32) bool {
		v := float64(x)
		if math.Abs(v) > 1000 || math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		// A value with 2*FracBits fractional bits, as after a product.
		wide := NewMatrix(1, 1)
		wide.Data[0] = uint64(int64(v * Scale * Scale))
		s0, s1 := Share(wide, r)
		Truncate(s0, 0)
		Truncate(s1, 1)
		rec := Reconstruct(s0, s1)
		got := Decode(rec.Data[0])
		return math.Abs(got-v) <= 2.0/Scale // ±1 ULP from sharing + 1 from truncation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRingMulMatchesFloat(t *testing.T) {
	r := rng.NewRand(3)
	a := tensor.New(5, 7)
	b := tensor.New(7, 4)
	for i := range a.Data {
		a.Data[i] = r.Float32()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = r.Float32()*2 - 1
	}
	ra, rb := EncodeMatrix(a), EncodeMatrix(b)
	prod := MulTo(ra, rb)
	TruncatePublic(prod)
	got := DecodeMatrix(prod)
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 7*2.0/Scale) {
		t.Fatalf("ring GEMM off by %v", got.MaxAbsDiff(want))
	}
}

// The full Beaver protocol in the ring: C0+C1 == A×B within fixed-point
// tolerance, for random A, B.
func TestBeaverMultiplicationEndToEnd(t *testing.T) {
	r := rng.NewRand(4)
	const m, k, n = 6, 9, 5
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = r.Float32()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = r.Float32()*2 - 1
	}
	ra, rb := EncodeMatrix(a), EncodeMatrix(b)

	// Client: share inputs and a triplet.
	a0, a1 := Share(ra, r)
	b0, b1 := Share(rb, r)
	t0, t1 := GenTriplet(m, k, n, r)

	// Servers: E_i = A_i−U_i, F_i = B_i−V_i; exchange; reconstruct.
	e0, f0 := SubTo(a0, t0.U), SubTo(b0, t0.V)
	e1, f1 := SubTo(a1, t1.U), SubTo(b1, t1.V)
	e := AddTo(e0, e1)
	f := AddTo(f0, f1)

	c0 := MulShares(0, e, f, a0, b0, t0.Z)
	c1 := MulShares(1, e, f, a1, b1, t1.Z)

	got := DecodeMatrix(Reconstruct(c0, c1))
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, float64(k)*4.0/Scale) {
		t.Fatalf("Beaver product off by %v", got.MaxAbsDiff(want))
	}
}

// Property version over random shapes and seeds.
func TestBeaverProperty(t *testing.T) {
	f := func(seed uint32, m8, k8, n8 uint8) bool {
		r := rng.NewRand(uint64(seed))
		m, k, n := int(m8%6)+1, int(k8%6)+1, int(n8%6)+1
		a := tensor.New(m, k)
		b := tensor.New(k, n)
		for i := range a.Data {
			a.Data[i] = r.Float32() - 0.5
		}
		for i := range b.Data {
			b.Data[i] = r.Float32() - 0.5
		}
		ra, rb := EncodeMatrix(a), EncodeMatrix(b)
		a0, a1 := Share(ra, r)
		b0, b1 := Share(rb, r)
		t0, t1 := GenTriplet(m, k, n, r)
		e := AddTo(SubTo(a0, t0.U), SubTo(a1, t1.U))
		fm := AddTo(SubTo(b0, t0.V), SubTo(b1, t1.V))
		c0 := MulShares(0, e, fm, a0, b0, t0.Z)
		c1 := MulShares(1, e, fm, a1, b1, t1.Z)
		got := DecodeMatrix(Reconstruct(c0, c1))
		return got.ApproxEqual(tensor.MulNaive(a, b), float64(k)*4.0/Scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatePanicsOnBadParty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Truncate(NewMatrix(1, 1), 2)
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulTo(NewMatrix(2, 3), NewMatrix(4, 5))
}

func BenchmarkRingGemm256(b *testing.B) {
	r := rng.NewRand(1)
	a := NewMatrix(256, 256)
	c := NewMatrix(256, 256)
	FillRandom(a, r)
	FillRandom(c, r)
	dst := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, a, c)
	}
}
