package fixed

import (
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Ring-domain secure inference: a dense layer evaluated entirely in
// Z_2^64, demonstrating that the cryptographically faithful domain runs
// complete model layers (not just isolated multiplications). Activations
// use the framework's reveal substitute (DESIGN.md) — reconstruct, apply,
// re-share — which in the ring is exact.

// DenseLayer is one party's share of a dense layer plus its triplet,
// sized for a fixed batch.
type DenseLayer struct {
	W, B *Matrix
	T    TripletShares
}

// ShareDense splits a plaintext dense layer (weights in×out, bias 1×out)
// for the given batch size.
func ShareDense(w, b *tensor.Matrix, batch int, r *rng.Rand) (p0, p1 DenseLayer) {
	rw := EncodeMatrix(w)
	rb := EncodeMatrix(b)
	w0, w1 := Share(rw, r)
	b0, b1 := Share(rb, r)
	t0, t1 := GenTriplet(batch, w.Rows, w.Cols, r)
	return DenseLayer{W: w0, B: b0, T: t0}, DenseLayer{W: w1, B: b1, T: t1}
}

// DenseForward evaluates Y_i = (X×W)_i + B_i for both parties given their
// input shares, exchanging only the Beaver masks (returned for
// inspection). Reconstruct(y0, y1) equals X×W + broadcast(B) at
// fixed-point precision.
func DenseForward(x0, x1 *Matrix, l0, l1 DenseLayer) (y0, y1 *Matrix) {
	// E = X − U, F = W − V (public after exchange).
	e := AddTo(SubTo(x0, l0.T.U), SubTo(x1, l1.T.U))
	f := AddTo(SubTo(l0.W, l0.T.V), SubTo(l1.W, l1.T.V))

	y0 = MulShares(0, e, f, x0, l0.W, l0.T.Z)
	y1 = MulShares(1, e, f, x1, l1.W, l1.T.Z)

	// Bias: share-local broadcast add.
	for _, pair := range [][2]*Matrix{{y0, l0.B}, {y1, l1.B}} {
		y, b := pair[0], pair[1]
		for r := 0; r < y.Rows; r++ {
			row := y.Data[r*y.Cols : (r+1)*y.Cols]
			for c := range row {
				row[c] += b.Data[c]
			}
		}
	}
	return y0, y1
}

// PiecewiseActivate applies the paper's Eq. (9) activation to a shared
// value via reveal-and-reshare (exact in the ring): returns fresh shares
// of f(Y).
func PiecewiseActivate(y0, y1 *Matrix, r *rng.Rand) (a0, a1 *Matrix) {
	y := Reconstruct(y0, y1)
	fy := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		x := Decode(v)
		var out float64
		switch {
		case x < -0.5:
			out = 0
		case x > 0.5:
			out = 1
		default:
			out = x + 0.5
		}
		fy.Data[i] = Encode(out)
	}
	return Share(fy, r)
}

// MLPForward chains dense layers with piecewise activations between them
// (none after the last), returning the prediction shares.
func MLPForward(x0, x1 *Matrix, layers0, layers1 []DenseLayer, r *rng.Rand) (*Matrix, *Matrix) {
	for i := range layers0 {
		x0, x1 = DenseForward(x0, x1, layers0[i], layers1[i])
		if i < len(layers0)-1 {
			x0, x1 = PiecewiseActivate(x0, x1, r)
		}
	}
	return x0, x1
}
