package fixed

import (
	"testing"
	"testing/quick"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestMulParallelMatchesSerial(t *testing.T) {
	r := rng.NewRand(1)
	f := func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%20)+1, int(k8%20)+1, int(n8%20)+1
		a := NewMatrix(m, k)
		b := NewMatrix(k, n)
		FillRandom(a, r)
		FillRandom(b, r)
		serial := NewMatrix(m, n)
		Mul(serial, a, b)
		par := NewMatrix(m, n)
		MulParallel(par, a, b)
		for i := range serial.Data {
			if serial.Data[i] != par.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulSharesParallelBeaver(t *testing.T) {
	r := rng.NewRand(2)
	const m, k, n = 9, 13, 7
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = r.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = r.Float32() - 0.5
	}
	ra, rb := EncodeMatrix(a), EncodeMatrix(b)
	a0, a1 := Share(ra, r)
	b0, b1 := Share(rb, r)
	t0, t1 := GenTriplet(m, k, n, r)
	e := AddTo(SubTo(a0, t0.U), SubTo(a1, t1.U))
	fm := AddTo(SubTo(b0, t0.V), SubTo(b1, t1.V))
	c0 := MulSharesParallel(0, e, fm, a0, b0, t0.Z)
	c1 := MulSharesParallel(1, e, fm, a1, b1, t1.Z)
	got := DecodeMatrix(Reconstruct(c0, c1))
	if !got.ApproxEqual(tensor.MulNaive(a, b), float64(k)*4.0/Scale) {
		t.Fatalf("parallel Beaver off by %v", got.MaxAbsDiff(tensor.MulNaive(a, b)))
	}
}

func TestMulParallelShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulParallel(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

func BenchmarkRingGemmParallel256(b *testing.B) {
	r := rng.NewRand(1)
	x := NewMatrix(256, 256)
	y := NewMatrix(256, 256)
	FillRandom(x, r)
	FillRandom(y, r)
	dst := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulParallel(dst, x, y)
	}
}
