package fixed

import (
	"runtime"
	"sync"
)

// MulParallel computes dst = a × b in the ring with row-band parallelism —
// the multi-core variant a modernized SecureML server would run (the A2
// ablation compares domains; this keeps the ring domain from being
// handicapped by threading rather than by arithmetic).
func MulParallel(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic("fixed: MulParallel inner dimension mismatch")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("fixed: MulParallel destination shape")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		Mul(dst, a, b)
		return
	}
	cols := b.Cols
	chunk := (a.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				drow := dst.Data[i*cols : (i+1)*cols]
				for j := range drow {
					drow[j] = 0
				}
				arow := a.Data[i*a.Cols : (i+1)*a.Cols]
				for p, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Data[p*cols : (p+1)*cols]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// MulSharesParallel is MulShares with the parallel ring GEMM.
func MulSharesParallel(party int, e, f, ai, bi, zi *Matrix) *Matrix {
	c := NewMatrix(ai.Rows, f.Cols)
	MulParallel(c, ai, f)
	eb := NewMatrix(e.Rows, bi.Cols)
	MulParallel(eb, e, bi)
	Add(c, c, eb)
	Add(c, c, zi)
	if party == 1 {
		ef := NewMatrix(e.Rows, f.Cols)
		MulParallel(ef, e, f)
		Sub(c, c, ef)
	}
	Truncate(c, party)
	return c
}
