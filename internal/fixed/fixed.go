// Package fixed implements the cryptographically faithful share domain of
// SecureML [10]: values are fixed-point numbers embedded in the ring
// Z_2^64 (two's complement, FracBits fractional bits), secret-shared
// additively, and multiplied with Beaver triplets followed by SecureML's
// local truncation trick (each party truncates its own share; the
// reconstruction is off by at most one unit in the last place with
// overwhelming probability).
//
// ParSecureML's released implementation computes on FP32 shares instead —
// faster on GPUs but not information-theoretically hiding. The framework
// uses the float domain for the paper's performance experiments and this
// package for the soundness ablation (bench A2 in DESIGN.md), which
// quantifies what the ring domain costs.
package fixed

import (
	"fmt"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// FracBits is the fixed-point precision: 13 fractional bits, SecureML's
// choice (§4.1 of [10]).
const FracBits = 13

// Scale is 2^FracBits.
const Scale = 1 << FracBits

// Encode converts a float to its ring representation.
func Encode(f float64) uint64 {
	return uint64(int64(f * Scale))
}

// Decode converts a ring element back to a float, interpreting the element
// as a two's-complement signed value.
func Decode(r uint64) float64 {
	return float64(int64(r)) / Scale
}

// Matrix is a dense row-major matrix over Z_2^64.
type Matrix struct {
	Rows, Cols int
	Data       []uint64
}

// NewMatrix allocates a zeroed ring matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]uint64, rows*cols)}
}

// EncodeMatrix lifts a float matrix into the ring.
func EncodeMatrix(m *tensor.Matrix) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = Encode(float64(v))
	}
	return out
}

// DecodeMatrix lowers a ring matrix to floats.
func DecodeMatrix(m *Matrix) *tensor.Matrix {
	out := tensor.New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(Decode(v))
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("fixed: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add computes dst = a + b in the ring (wrapping).
func Add(dst, a, b *Matrix) {
	a.mustSameShape(b, "Add")
	dst.mustSameShape(a, "Add")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b in the ring (wrapping).
func Sub(dst, a, b *Matrix) {
	a.mustSameShape(b, "Sub")
	dst.mustSameShape(a, "Sub")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// AddTo returns a newly allocated a + b.
func AddTo(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	Add(out, a, b)
	return out
}

// SubTo returns a newly allocated a - b.
func SubTo(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	Sub(out, a, b)
	return out
}

// Mul computes dst = a × b in the ring. The product of two FracBits
// fixed-point values carries 2·FracBits fractional bits; callers must
// Truncate afterwards (or use MulTruncate on public values).
func Mul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("fixed: Mul inner dimension %d vs %d", a.Cols, b.Rows))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("fixed: Mul destination shape")
	}
	cols := b.Cols
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*cols : (i+1)*cols]
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*cols : (p+1)*cols]
			for j, bv := range brow {
				drow[j] += av * bv // wraps mod 2^64
			}
		}
	}
}

// MulTo returns a newly allocated a × b (untruncated).
func MulTo(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	Mul(out, a, b)
	return out
}

// Truncate divides every element by 2^FracBits as a signed value,
// restoring single-precision fixed point after a multiplication. party is
// 0 or 1: SecureML's local truncation has party 0 compute ⌊x₀/2^d⌋ and
// party 1 compute −⌊−x₁/2^d⌋ so the shares still sum to the truncated
// secret up to one ULP.
func Truncate(m *Matrix, party int) {
	switch party {
	case 0:
		for i, v := range m.Data {
			m.Data[i] = uint64(int64(v) >> FracBits)
		}
	case 1:
		for i, v := range m.Data {
			m.Data[i] = uint64(-(int64(-v) >> FracBits))
		}
	default:
		panic(fmt.Sprintf("fixed: Truncate party %d", party))
	}
}

// TruncatePublic truncates a public (non-shared) value.
func TruncatePublic(m *Matrix) { Truncate(m, 0) }

// FillRandom fills m with uniform ring elements from r.
func FillRandom(m *Matrix, r *rng.Rand) {
	for i := range m.Data {
		m.Data[i] = r.Uint64()
	}
}

// Share splits secret into two additive shares: s0 uniform, s1 = secret−s0.
// Uniform shares make each share individually independent of the secret —
// the information-theoretic hiding the float domain lacks.
func Share(secret *Matrix, r *rng.Rand) (s0, s1 *Matrix) {
	s0 = NewMatrix(secret.Rows, secret.Cols)
	FillRandom(s0, r)
	s1 = SubTo(secret, s0)
	return s0, s1
}

// Reconstruct returns s0 + s1.
func Reconstruct(s0, s1 *Matrix) *Matrix { return AddTo(s0, s1) }

// Triplet is one Beaver triplet in the ring: Z = U×V (untruncated product,
// carrying 2·FracBits fractional bits, matching the E/F masked product).
type Triplet struct {
	U, V, Z *Matrix
}

// TripletShares holds one party's share of a triplet.
type TripletShares struct {
	U, V, Z *Matrix
}

// GenTriplet draws U, V uniformly at fixed-point scale and computes
// Z = U×V, then shares all three. m×k by k×n geometry.
func GenTriplet(m, k, n int, r *rng.Rand) (p0, p1 TripletShares) {
	u := NewMatrix(m, k)
	v := NewMatrix(k, n)
	// Draw U, V as small fixed-point values (|x| < 1) so products stay
	// well inside the ring.
	for i := range u.Data {
		u.Data[i] = Encode(r.Float64()*2 - 1)
	}
	for i := range v.Data {
		v.Data[i] = Encode(r.Float64()*2 - 1)
	}
	z := MulTo(u, v)
	u0, u1 := Share(u, r)
	v0, v1 := Share(v, r)
	z0, z1 := Share(z, r)
	return TripletShares{u0, v0, z0}, TripletShares{u1, v1, z1}
}

// MulShares executes the online phase of one Beaver multiplication for
// party i given the already-reconstructed public E = A−U and F = B−V:
//
//	C_i = (−i)·E×F + A_i×F + E×B_i + Z_i      (paper Eq. 6)
//
// followed by local truncation. Reconstructing C_0+C_1 yields A×B at
// fixed-point precision (±1 ULP).
func MulShares(party int, e, f, ai, bi, zi *Matrix) *Matrix {
	c := MulTo(ai, f)
	ebi := MulTo(e, bi)
	Add(c, c, ebi)
	Add(c, c, zi)
	if party == 1 {
		ef := MulTo(e, f)
		Sub(c, c, ef) // (−i)·E×F with i = 1
	}
	Truncate(c, party)
	return c
}
