package fixed

import (
	"testing"

	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestRingDenseForwardMatchesFloat(t *testing.T) {
	r := rng.NewRand(1)
	const batch, in, out = 6, 10, 4
	w := tensor.New(in, out)
	b := tensor.New(1, out)
	x := tensor.New(batch, in)
	for i := range w.Data {
		w.Data[i] = r.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = r.Float32() - 0.5
	}
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}

	// Plaintext reference.
	want := tensor.MulTo(x, w)
	for row := 0; row < batch; row++ {
		for c := 0; c < out; c++ {
			want.Set(row, c, want.At(row, c)+b.At(0, c))
		}
	}

	l0, l1 := ShareDense(w, b, batch, r)
	x0, x1 := Share(EncodeMatrix(x), r)
	y0, y1 := DenseForward(x0, x1, l0, l1)
	got := DecodeMatrix(Reconstruct(y0, y1))
	if !got.ApproxEqual(want, float64(in)*4.0/Scale) {
		t.Fatalf("ring dense forward off by %v", got.MaxAbsDiff(want))
	}
}

func TestRingPiecewiseActivate(t *testing.T) {
	r := rng.NewRand(2)
	y := tensor.FromSlice(1, 5, []float32{-2, -0.25, 0, 0.25, 2})
	y0, y1 := Share(EncodeMatrix(y), r)
	a0, a1 := PiecewiseActivate(y0, y1, r)
	got := DecodeMatrix(Reconstruct(a0, a1))
	want := tensor.FromSlice(1, 5, []float32{0, 0.25, 0.5, 0.75, 1})
	if !got.ApproxEqual(want, 3.0/Scale) {
		t.Fatalf("ring activation off by %v", got.MaxAbsDiff(want))
	}
}

// A 2-layer ring-domain MLP forward must match the float plaintext model
// at fixed-point precision — the SecureML-faithful inference path end to
// end.
func TestRingMLPForwardMatchesPlaintext(t *testing.T) {
	r := rng.NewRand(3)
	plain := ml.NewModel("ringmlp", ml.MSE{},
		ml.NewDense(8, 6, ml.Piecewise, r),
		ml.NewDense(6, 3, ml.Identity, r),
	)
	const batch = 5
	x := tensor.New(batch, 8)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	want := plain.Predict(x)

	d1 := plain.Layers[0].(*ml.Dense)
	d2 := plain.Layers[1].(*ml.Dense)
	l10, l11 := ShareDense(d1.W, d1.B, batch, r)
	l20, l21 := ShareDense(d2.W, d2.B, batch, r)
	x0, x1 := Share(EncodeMatrix(x), r)
	y0, y1 := MLPForward(x0, x1, []DenseLayer{l10, l20}, []DenseLayer{l11, l21}, r)
	got := DecodeMatrix(Reconstruct(y0, y1))
	// Two layers of fixed-point rounding: tolerance scales with fan-in.
	if !got.ApproxEqual(want, 0.02) {
		t.Fatalf("ring MLP forward off by %v", got.MaxAbsDiff(want))
	}
}
