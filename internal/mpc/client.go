package mpc

import (
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// TripletShares is one party's share of a Beaver triplet (U, V, Z = U×V for
// GEMM geometry, or Z = U⊙V for the Hadamard geometry the paper's CNN
// uses).
type TripletShares struct {
	U, V, Z *tensor.Matrix
}

// Shares is one party's input to a secure multiplication: shares of A and
// B plus its triplet shares.
type Shares struct {
	A, B *tensor.Matrix
	T    TripletShares
}

// Client is the data owner: it splits inputs into shares and prepares
// triplets during the offline phase. Its GPU (if present) accelerates the
// Z = U×V multiplication, which the paper measures at >90 % of offline
// time (§4.2).
type Client struct {
	*Node
	Pool *rng.Pool
}

// NewClient wraps a node with a seeded share/mask generator.
func NewClient(n *Node, seed uint64) *Client {
	return &Client{Node: n, Pool: rng.NewPool(seed)}
}

// ShareRange bounds the uniform masks used for float-domain sharing.
// Shares are secret ± U(-ShareRange, ShareRange); larger ranges hide more
// but cost FP32 precision, since the online GEMMs accumulate products of
// masked values — error grows with the mask magnitude squared times the
// inner dimension. ±2 keeps secure training within <1 % of plaintext
// accuracy (the paper's claim) on the benchmark models; the fixed package
// has the cryptographically sound alternative.
const ShareRange = 2

// Split divides secret into two float shares (secret = s0 + s1), charging
// the random generation and subtraction to the client CPU. This is the
// §2.2 partitioning step for A and B.
func (c *Client) Split(secret *tensor.Matrix, deps ...*simtime.Task) (s0, s1 *tensor.Matrix, done *simtime.Task) {
	s0 = c.Pool.NewUniform(secret.Rows, secret.Cols, -ShareRange, ShareRange)
	s1 = tensor.SubTo(secret, s0)
	t := c.RandTask("split.rand", secret.Rows*secret.Cols, deps...)
	t = c.ElemTask("split.sub", 3*secret.Bytes(), t)
	return s0, s1, t
}

// GenGemmTriplet prepares a Beaver triplet for an (m×k)·(k×n)
// multiplication and splits it, charging the offline-phase costs: mask
// generation on the CPU, Z = U×V on the GPU when useGPU is set (otherwise
// the CPU), and the share splits on the CPU.
func (c *Client) GenGemmTriplet(m, k, n int, useGPU bool, deps ...*simtime.Task) (p0, p1 TripletShares, done *simtime.Task) {
	defer metrics.phaseTriplet.Start().Stop()
	u := c.Pool.NewUniform(m, k, -1, 1)
	v := c.Pool.NewUniform(k, n, -1, 1)
	genT := c.RandTask("triplet.rand", m*k+k*n, deps...)

	var z *tensor.Matrix
	var zT *simtime.Task
	if useGPU && c.Dev != nil {
		du, tu, err := c.Dev.H2D(u, genT)
		if err != nil {
			panic(err)
		}
		dv, tv, err := c.Dev.H2D(v, genT)
		if err != nil {
			panic(err)
		}
		dz := c.Dev.MustAlloc(m, n)
		kt := c.Dev.Gemm(dz, du, dv, tu, tv)
		z, zT = c.Dev.D2H(dz, kt)
		c.Dev.Free(du)
		c.Dev.Free(dv)
		c.Dev.Free(dz)
	} else {
		z = tensor.MulTo(u, v)
		zT = c.GemmTask("triplet.Z", m, k, n, genT)
	}

	u0, u1, t1 := c.Split(u, zT)
	v0, v1, t2 := c.Split(v, t1)
	z0, z1, t3 := c.Split(z, t2)
	return TripletShares{U: u0, V: v0, Z: z0}, TripletShares{U: u1, V: v1, Z: z1}, t3
}

// GenHadamardTriplet prepares a triplet for an element-wise product of
// rows×cols matrices (Z = U⊙V), the pattern the paper's CNN sliding
// windows use (§7.2).
func (c *Client) GenHadamardTriplet(rows, cols int, useGPU bool, deps ...*simtime.Task) (p0, p1 TripletShares, done *simtime.Task) {
	defer metrics.phaseTriplet.Start().Stop()
	u := c.Pool.NewUniform(rows, cols, -1, 1)
	v := c.Pool.NewUniform(rows, cols, -1, 1)
	genT := c.RandTask("triplet.rand", 2*rows*cols, deps...)

	z := tensor.New(rows, cols)
	tensor.Hadamard(z, u, v)
	var zT *simtime.Task
	if useGPU && c.Dev != nil {
		du, tu, err := c.Dev.H2D(u, genT)
		if err != nil {
			panic(err)
		}
		dv, tv, err := c.Dev.H2D(v, genT)
		if err != nil {
			panic(err)
		}
		dz := c.Dev.MustAlloc(rows, cols)
		kt := c.Dev.Hadamard(dz, du, dv, tu, tv)
		_, zT = c.Dev.D2H(dz, kt)
		c.Dev.Free(du)
		c.Dev.Free(dv)
		c.Dev.Free(dz)
	} else {
		zT = c.ElemTask("triplet.Zhad", 3*z.Bytes(), genT)
	}

	u0, u1, t1 := c.Split(u, zT)
	v0, v1, t2 := c.Split(v, t1)
	z0, z1, t3 := c.Split(z, t2)
	return TripletShares{U: u0, V: v0, Z: z0}, TripletShares{U: u1, V: v1, Z: z1}, t3
}

// Combine reconstructs a secret from its two shares (the client-side merge
// of the returned C_i results), charging the addition.
func (c *Client) Combine(s0, s1 *tensor.Matrix, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	out := tensor.AddTo(s0, s1)
	return out, c.ElemTask("combine", 3*out.Bytes(), deps...)
}
