package mpc

import (
	"encoding/json"
	"net"
	"os"
	"sync"
	"testing"

	"parsecureml/internal/comm"
	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Wall-clock benchmarks for the wire double pipeline. The latency pair
// runs on a bandwidth-throttled link (FaultConn.WriteBytesPerSec), the
// regime Fig. 5 targets: both paths pay the same total serialization
// delay, so any gap is genuine transfer/compute overlap, not an artifact
// of fewer sleep calls. The serving pair measures allocations per
// steady-state inference request through a buffer-reusing client, so the
// reported allocs/op isolate the two server paths.
//
// TestEmitWireBenchBaseline records both pairs to a JSON baseline when
// BENCH_WIRE_OUT is set (CI writes BENCH_wire.json with it).

// newThrottledPipe wires two framed conns through write-rate-limited
// FaultConns, modelling a bandwidth-bound fabric.
func newThrottledPipe(bytesPerSec int64) (c0, c1 *comm.Conn, closeAll func()) {
	r0, r1 := net.Pipe()
	f0, f1 := comm.NewFaultConn(r0), comm.NewFaultConn(r1)
	f0.WriteBytesPerSec = bytesPerSec
	f1.WriteBytesPerSec = bytesPerSec
	c0, c1 = comm.Wrap(f0), comm.Wrap(f1)
	return c0, c1, func() { c0.Close(); c1.Close() }
}

// benchWireShapes is the latency benchmark's fixed geometry: large enough
// that both transfer (~256 KiB per E/F matrix) and compute (a 256³ GEMM)
// are material, so overlap has something to hide.
const benchMulDim = 256

// benchThrottleBps throttles each direction to 16 MiB/s: ~16 ms per E/F
// matrix, a material fraction of the ~60 ms GEMM, so the double
// pipeline has transfer time worth hiding under compute.
const benchThrottleBps = 16 << 20

func benchRemoteMulThrottled(b *testing.B, pipelined bool) {
	p := rng.NewPool(90)
	a := p.NewUniform(benchMulDim, benchMulDim, -1, 1)
	bm := p.NewUniform(benchMulDim, benchMulDim, -1, 1)
	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, bm, client)
	c0, c1, closeAll := newThrottledPipe(benchThrottleBps)
	defer closeAll()
	cfg := WireConfig{ChunkRows: 32}
	w0, w1 := newWireMul(0, cfg), newWireMul(1, cfg)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		var e0, e1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			if pipelined {
				r, err := w0.mul(c0, in0.A, in0.B, in0.T, nil, nil)
				if err == nil {
					w0.put(r)
				}
				e0 = err
			} else {
				_, e0 = RemoteParty(0, c0, in0)
			}
		}()
		go func() {
			defer wg.Done()
			if pipelined {
				r, err := w1.mul(c1, in1.A, in1.B, in1.T, nil, nil)
				if err == nil {
					w1.put(r)
				}
				e1 = err
			} else {
				_, e1 = RemoteParty(1, c1, in1)
			}
		}()
		wg.Wait()
		if e0 != nil || e1 != nil {
			b.Fatalf("parties failed: %v / %v", e0, e1)
		}
	}
}

func BenchmarkRemoteMulThrottled(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchRemoteMulThrottled(b, false) })
	b.Run("pipelined", func(b *testing.B) { benchRemoteMulThrottled(b, true) })
}

// newCountingThrottledPipe is newThrottledPipe exposing the FaultConns,
// whose Stats().BytesWritten count what actually hit the wire.
func newCountingThrottledPipe(bytesPerSec int64) (c0, c1 *comm.Conn, f0, f1 *comm.FaultConn, closeAll func()) {
	r0, r1 := net.Pipe()
	f0, f1 = comm.NewFaultConn(r0), comm.NewFaultConn(r1)
	f0.WriteBytesPerSec = bytesPerSec
	f1.WriteBytesPerSec = bytesPerSec
	c0, c1 = comm.Wrap(f0), comm.Wrap(f1)
	return c0, c1, f0, f1, func() { c0.Close(); c1.Close() }
}

// benchWireSparsity: fraction of E's elements that are zero in the
// compressed-wire workload — the sparse-activation regime (ReLU outputs,
// embedding gradients) the CSR codec targets.
const benchWireSparsity = 0.9

// benchRemoteMulCompressed is the codec benchmark pair: the pipelined
// exchange on the same 16 MiB/s throttled link, over shares built so the
// revealed E is ~90% sparse (CSR territory) while F stays dense (FP16
// territory). With codec=false every tensor ships raw; with codec=true
// the selector picks per tensor. Bytes on the wire are reported as the
// "wireB/op" metric so the baseline can gate the compression ratio.
func benchRemoteMulCompressed(b *testing.B, codec bool) {
	p := rng.NewPool(92)
	s := tensor.New(benchMulDim, benchMulDim)
	src := p.NewUniform(benchMulDim, benchMulDim, -1, 1)
	for i, v := range src.Data {
		// Deterministic ~10% fill via a multiplicative index hash.
		if uint32(i)*2654435761%1000 < uint32(1000*(1-benchWireSparsity)) {
			s.Data[i] = v
		}
	}
	in0, in1, _, _ := sparseEShares(p, s, benchMulDim)
	c0, c1, f0, f1, closeAll := newCountingThrottledPipe(benchThrottleBps)
	defer closeAll()
	cfg := WireConfig{ChunkRows: 32}
	if codec {
		cfg.Codec = &WireCodec{
			Enabled: CodecFP16 | CodecCSR,
			HW:      hw.Paper(),
			Link:    hw.LinkModel{Bandwidth: benchThrottleBps},
		}
	}
	w0, w1 := newWireMul(0, cfg), newWireMul(1, cfg)
	run := func() {
		var wg sync.WaitGroup
		var e0, e1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			r, err := w0.mul(c0, in0.A, in0.B, in0.T, nil, nil)
			if err == nil {
				w0.put(r)
			}
			e0 = err
		}()
		go func() {
			defer wg.Done()
			r, err := w1.mul(c1, in1.A, in1.B, in1.T, nil, nil)
			if err == nil {
				w1.put(r)
			}
			e1 = err
		}()
		wg.Wait()
		if e0 != nil || e1 != nil {
			b.Fatalf("parties failed: %v / %v", e0, e1)
		}
	}
	run() // warm up pools and send buffers before counting anything

	start := f0.Stats().BytesWritten + f1.Stats().BytesWritten
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	wire := f0.Stats().BytesWritten + f1.Stats().BytesWritten - start
	b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
}

func BenchmarkRemoteMulCompressed(b *testing.B) {
	b.Run("raw", func(b *testing.B) { benchRemoteMulCompressed(b, false) })
	b.Run("codec", func(b *testing.B) { benchRemoteMulCompressed(b, true) })
}

// benchInferClient is a steady-state inference client that reuses every
// buffer, so a serving benchmark's allocs/op measure the servers, not the
// test harness.
type benchInferClient struct {
	s0, s1       *comm.Conn
	b0, b1       []byte
	f0, f1       []byte
	p0, p1, mrgd *tensor.Matrix
}

func newBenchInferClient(s0, s1 *comm.Conn, batch, out int) *benchInferClient {
	return &benchInferClient{
		s0: s0, s1: s1,
		p0: tensor.New(batch, out), p1: tensor.New(batch, out), mrgd: tensor.New(batch, out),
	}
}

func (c *benchInferClient) request(x0, x1 *tensor.Matrix) (*tensor.Matrix, error) {
	c.b0 = tensor.EncodeMatrix(c.b0[:0], x0)
	if err := c.s0.WriteFrame(c.b0); err != nil {
		return nil, err
	}
	c.b1 = tensor.EncodeMatrix(c.b1[:0], x1)
	if err := c.s1.WriteFrame(c.b1); err != nil {
		return nil, err
	}
	f0, err := c.s0.ReadFrameInto(c.f0)
	if err != nil {
		return nil, err
	}
	c.f0 = f0
	f1, err := c.s1.ReadFrameInto(c.f1)
	if err != nil {
		return nil, err
	}
	c.f1 = f1
	if _, err := tensor.DecodeMatrixInto(c.p0, f0); err != nil {
		return nil, err
	}
	if _, err := tensor.DecodeMatrixInto(c.p1, f1); err != nil {
		return nil, err
	}
	tensor.Add(c.mrgd, c.p0, c.p1)
	return c.mrgd, nil
}

func benchInferRequest(b *testing.B, wire, codec bool) {
	const batch, in, hidden, out = 16, 64, 64, 16
	p := rng.NewPool(91)
	w1m := p.NewUniform(in, hidden, -0.3, 0.3)
	b1m := p.NewUniform(1, hidden, -0.1, 0.1)
	w2m := p.NewUniform(hidden, out, -0.3, 0.3)
	b2m := p.NewUniform(1, out, -0.1, 0.1)
	client := newRemoteClient()
	s0, s1 := BuildInferSession(client, batch,
		[]*tensor.Matrix{w1m, w2m}, []*tensor.Matrix{b1m, b2m},
		[]ActivationKind{ActReLU, ActPiecewise}, []bool{true, true})
	x := p.NewUniform(batch, in, -1, 1)
	x0, x1, _ := client.Split(x)

	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB := comm.Pipe()
	cfg := WireConfig{ChunkRows: 8}
	if codec {
		// A low static budget makes the selector actually elect FP16 on the
		// revealed E tensors, so the allocation baseline covers the codec
		// hot path (pick, round, encode, tag-dispatched decode), not just
		// its raw bypass.
		cfg.Codec = &WireCodec{
			Enabled: CodecFP16 | CodecCSR,
			HW:      hw.Paper(),
			Link:    hw.LinkModel{Bandwidth: 1 << 20},
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if wire {
			ServeInferenceWire(0, client0b, peerA, rng.NewPool(77), cfg)
		} else {
			ServeInference(0, client0b, peerA, rng.NewPool(77))
		}
	}()
	go func() {
		defer wg.Done()
		if wire {
			ServeInferenceWire(1, client1b, peerB, rng.NewPool(0), cfg)
		} else {
			ServeInference(1, client1b, peerB, rng.NewPool(0))
		}
	}()
	if err := client0a.WriteFrame(EncodeInferSession(s0)); err != nil {
		b.Fatal(err)
	}
	if err := client1a.WriteFrame(EncodeInferSession(s1)); err != nil {
		b.Fatal(err)
	}
	bc := newBenchInferClient(client0a, client1a, batch, out)
	// Warm up: session setup on the wire path, pools on both.
	if _, err := bc.request(x0, x1); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bc.request(x0, x1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client0a.Close()
	client1a.Close()
	wg.Wait()
	peerA.Close()
	peerB.Close()
}

func BenchmarkInferRequest(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchInferRequest(b, false, false) })
	b.Run("wire", func(b *testing.B) { benchInferRequest(b, true, false) })
	b.Run("wire-codec", func(b *testing.B) { benchInferRequest(b, true, true) })
}

// TestEmitWireBenchBaseline runs the two benchmark pairs via
// testing.Benchmark and writes the comparison to the JSON file named by
// BENCH_WIRE_OUT. Skipped when the variable is unset, so plain `go test`
// stays fast; CI sets it to produce BENCH_wire.json.
func TestEmitWireBenchBaseline(t *testing.T) {
	out := os.Getenv("BENCH_WIRE_OUT")
	if out == "" {
		t.Skip("BENCH_WIRE_OUT not set")
	}
	type result struct {
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		N           int     `json:"n"`
		MsPerOp     float64 `json:"ms_per_op"`
	}
	record := func(r testing.BenchmarkResult) result {
		return result{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
	}
	serialMul := record(testing.Benchmark(func(b *testing.B) { benchRemoteMulThrottled(b, false) }))
	pipedMul := record(testing.Benchmark(func(b *testing.B) { benchRemoteMulThrottled(b, true) }))
	serialInf := record(testing.Benchmark(func(b *testing.B) { benchInferRequest(b, false, false) }))
	wireInf := record(testing.Benchmark(func(b *testing.B) { benchInferRequest(b, true, false) }))
	codecInf := record(testing.Benchmark(func(b *testing.B) { benchInferRequest(b, true, true) }))
	conc1 := record(testing.Benchmark(func(b *testing.B) { benchConcurrentMul(b, 1) }))
	conc8 := record(testing.Benchmark(func(b *testing.B) { benchConcurrentMul(b, 8) }))
	// One concurrent op completes 8 requests, one single op completes 1.
	scaling := float64(conc1.NsPerOp) * 8 / float64(conc8.NsPerOp)
	// Same geometry for both batching arms: one op = 64 clients × 1 request.
	perSess := record(testing.Benchmark(func(b *testing.B) { benchBatchedMul(b, 64, nil) }))
	batched := record(testing.Benchmark(func(b *testing.B) { benchBatchedMul(b, 64, benchBatchConfig()) }))
	batchGain := float64(perSess.NsPerOp) / float64(batched.NsPerOp)
	// Compressed-wire pair: same throttled link, sparse-E/dense-F shares.
	rawCmpRes := testing.Benchmark(func(b *testing.B) { benchRemoteMulCompressed(b, false) })
	codecCmpRes := testing.Benchmark(func(b *testing.B) { benchRemoteMulCompressed(b, true) })
	rawCmp, codecCmp := record(rawCmpRes), record(codecCmpRes)
	rawWireB := rawCmpRes.Extra["wireB/op"]
	codecWireB := codecCmpRes.Extra["wireB/op"]
	byteRatio := codecWireB / rawWireB
	nsRatio := float64(codecCmp.NsPerOp) / float64(rawCmp.NsPerOp)
	// Transformer inference pair: one attention block (14 RequestMuls) per
	// op over the same throttled peer link, raw vs negotiated codecs.
	rawTrRes := testing.Benchmark(func(b *testing.B) { benchTransformerInfer(b, false) })
	codecTrRes := testing.Benchmark(func(b *testing.B) { benchTransformerInfer(b, true) })
	rawTr, codecTr := record(rawTrRes), record(codecTrRes)
	trTokens, trDModel, trHeads := 16, 32, 4
	rawTrTokS := float64(trTokens) / (float64(rawTr.NsPerOp) / 1e9)
	codecTrTokS := float64(trTokens) / (float64(codecTr.NsPerOp) / 1e9)
	rawTrBTok := rawTrRes.Extra["wireB/tok"]
	codecTrBTok := codecTrRes.Extra["wireB/tok"]
	trByteRatio := codecTrRes.Extra["wireB/op"] / rawTrRes.Extra["wireB/op"]
	trNsRatio := float64(codecTr.NsPerOp) / float64(rawTr.NsPerOp)

	baseline := map[string]any{
		"description": "serving-path baseline: throttled-link remote mul (ns/op), steady-state inference request (allocs/op), concurrent-session scaling, and cross-session batched throughput",
		"remote_mul_throttled": map[string]any{
			"dim":                           benchMulDim,
			"chunk_rows":                    32,
			"throttle_bps":                  int64(benchThrottleBps),
			"serial":                        serialMul,
			"pipelined":                     pipedMul,
			"speedup_serial_over_pipelined": float64(serialMul.NsPerOp) / float64(pipedMul.NsPerOp),
		},
		"infer_request": map[string]any{
			"layers":                 2,
			"chunk_rows":             8,
			"serial":                 serialInf,
			"wire":                   wireInf,
			"wire_codec":             codecInf,
			"alloc_reduction_factor": float64(serialInf.AllocsPerOp) / float64(max(wireInf.AllocsPerOp, 1)),
		},
		"concurrent_sessions": map[string]any{
			"clients":               8,
			"dim":                   32,
			"client_write_delay_ms": benchClientDelay.Milliseconds(),
			"single":                conc1,
			"concurrent":            conc8,
			"throughput_scaling":    scaling,
		},
		"batched_throughput": map[string]any{
			"clients":             64,
			"dim":                 benchBatchDim,
			"peer_frame_delay_us": benchPeerFrameDelay.Microseconds(),
			"per_session":         perSess,
			"batched":             batched,
			"throughput_gain":     batchGain,
		},
		"transformer_infer": map[string]any{
			"tokens":                trTokens,
			"d_model":               trDModel,
			"heads":                 trHeads,
			"request_muls":          14,
			"chunk_rows":            8,
			"throttle_bps":          int64(benchThrottleBps),
			"raw":                   rawTr,
			"codec":                 codecTr,
			"raw_tokens_per_sec":    rawTrTokS,
			"codec_tokens_per_sec":  codecTrTokS,
			"raw_bytes_per_token":   rawTrBTok,
			"codec_bytes_per_token": codecTrBTok,
			"byte_ratio":            trByteRatio,
			"ns_ratio":              trNsRatio,
		},
		"compressed_wire": map[string]any{
			"dim":                 benchMulDim,
			"chunk_rows":          32,
			"e_sparsity":          benchWireSparsity,
			"throttle_bps":        int64(benchThrottleBps),
			"raw":                 rawCmp,
			"codec":               codecCmp,
			"raw_wire_bytes_op":   rawWireB,
			"codec_wire_bytes_op": codecWireB,
			"byte_ratio":          byteRatio,
			"ns_ratio":            nsRatio,
		},
	}
	// The hard claims behind the optimization, enforced, not just logged:
	// overlap must beat serial on a bandwidth-bound link, and the serving
	// hot path must allocate an order of magnitude less.
	if pipedMul.NsPerOp >= serialMul.NsPerOp {
		t.Errorf("pipelined mul (%d ns/op) not faster than serial (%d ns/op) on throttled link",
			pipedMul.NsPerOp, serialMul.NsPerOp)
	}
	if wireInf.AllocsPerOp*10 > serialInf.AllocsPerOp {
		t.Errorf("wire infer request allocs %d not 10x below serial %d",
			wireInf.AllocsPerOp, serialInf.AllocsPerOp)
	}
	// The tentpole's claim: 8 concurrent clients must beat 3x the
	// single-client request throughput through one multiplexed peer link.
	if scaling < 3.0 {
		t.Errorf("concurrent throughput scaling %.2fx below the 3x bar (single %d ns/op, 8 clients %d ns/op)",
			scaling, conc1.NsPerOp, conc8.NsPerOp)
	}
	// The batching scheduler's claim: 64 same-shape clients served as
	// stacked exchanges must beat the per-session path outright.
	if batchGain <= 1.0 {
		t.Errorf("batched throughput gain %.2fx not above 1x (per-session %d ns/op, batched %d ns/op)",
			batchGain, perSess.NsPerOp, batched.NsPerOp)
	}
	// The codec's claim (ISSUE 7): on the throttled link the adaptive
	// selector must at least halve the bytes on the wire for the sparse-E
	// workload, and the encode work must not cost wall-clock — on a
	// bandwidth-bound link shipping fewer bytes should WIN time, so even
	// 5% slower than raw means the crossover model is mistuned.
	if rawWireB <= 0 || codecWireB <= 0 {
		t.Errorf("compressed-wire pair recorded no wire bytes (raw %.0f, codec %.0f)", rawWireB, codecWireB)
	}
	if byteRatio > 0.5 {
		t.Errorf("codec wire bytes %.0f/op are %.2fx of raw %.0f/op, above the 0.5x bar",
			codecWireB, byteRatio, rawWireB)
	}
	if nsRatio > 1.05 {
		t.Errorf("codec mul %d ns/op is %.2fx of raw %d ns/op, above the 1.05x regression bar",
			codecCmp.NsPerOp, nsRatio, rawCmp.NsPerOp)
	}
	// The transformer block's claims: the codecs must clear the dense-E/F
	// byte bar on the throttled link without material encode cost (see
	// transformerNsRatioBar on why this bar is looser than the mul pair's).
	if rawTrBTok <= 0 || codecTrBTok <= 0 {
		t.Errorf("transformer pair recorded no peer bytes (raw %.0f/tok, codec %.0f/tok)", rawTrBTok, codecTrBTok)
	}
	if trByteRatio > transformerByteRatioBar {
		t.Errorf("transformer codec bytes %.0f/tok are %.2fx of raw %.0f/tok, above the %.2fx bar",
			codecTrBTok, trByteRatio, rawTrBTok, transformerByteRatioBar)
	}
	if trNsRatio > transformerNsRatioBar {
		t.Errorf("transformer codec %d ns/op is %.2fx of raw %d ns/op, above the %.2fx bar",
			codecTr.NsPerOp, trNsRatio, rawTr.NsPerOp, transformerNsRatioBar)
	}
	enc, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestWireAllocsBaseline re-runs the steady-state wire inference bench
// and fails if allocs/op regressed past the committed BENCH_wire.json
// figure — the guard that keeps instrumentation and other serving-layer
// changes off the hot path's allocation budget. Gated on
// BENCH_WIRE_BASELINE (the baseline file's path) so plain `go test`
// stays fast; CI points it at the repo's committed baseline.
func TestWireAllocsBaseline(t *testing.T) {
	path := os.Getenv("BENCH_WIRE_BASELINE")
	if path == "" {
		t.Skip("BENCH_WIRE_BASELINE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		InferRequest struct {
			Wire struct {
				AllocsPerOp int64 `json:"allocs_per_op"`
			} `json:"wire"`
		} `json:"infer_request"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	want := baseline.InferRequest.Wire.AllocsPerOp
	if want <= 0 {
		t.Fatalf("baseline %s has no infer_request.wire.allocs_per_op", path)
	}
	got := testing.Benchmark(func(b *testing.B) { benchInferRequest(b, true, false) }).AllocsPerOp()
	if got > want {
		t.Errorf("wire infer request allocates %d/op, baseline %s allows %d", got, path, want)
	} else {
		t.Logf("wire infer request: %d allocs/op (baseline %d)", got, want)
	}
	// The codec hot path (pick, in-place round, FP16/CSR encode, tag
	// dispatch on receive) must be exactly as alloc-free as the raw wire
	// path: same budget, no headroom for per-request garbage.
	codec := testing.Benchmark(func(b *testing.B) { benchInferRequest(b, true, true) }).AllocsPerOp()
	if codec > want {
		t.Errorf("codec-enabled wire infer request allocates %d/op, baseline %s allows %d", codec, path, want)
	} else {
		t.Logf("codec-enabled wire infer request: %d allocs/op (baseline %d)", codec, want)
	}
}

// TestCompressedWireBaseline re-runs the compressed-wire pair and fails
// if the adaptive codec no longer at least halves the bytes on the
// throttled link, or costs more than 5% wall-clock against raw — the
// regression guards behind BENCH_wire.json's compressed_wire section,
// gated on BENCH_WIRE_BASELINE like the other baseline tests. The
// committed baseline must itself record a passing ratio, so a regressed
// baseline can't be silently committed either.
func TestCompressedWireBaseline(t *testing.T) {
	path := os.Getenv("BENCH_WIRE_BASELINE")
	if path == "" {
		t.Skip("BENCH_WIRE_BASELINE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		CompressedWire struct {
			ByteRatio float64 `json:"byte_ratio"`
			NsRatio   float64 `json:"ns_ratio"`
		} `json:"compressed_wire"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if r := baseline.CompressedWire.ByteRatio; r <= 0 || r > 0.5 {
		t.Fatalf("baseline %s records compressed_wire byte_ratio %.3f, outside (0, 0.5]", path, r)
	}
	rawRes := testing.Benchmark(func(b *testing.B) { benchRemoteMulCompressed(b, false) })
	codecRes := testing.Benchmark(func(b *testing.B) { benchRemoteMulCompressed(b, true) })
	rawB, codecB := rawRes.Extra["wireB/op"], codecRes.Extra["wireB/op"]
	if rawB <= 0 || codecB <= 0 {
		t.Fatalf("compressed-wire pair recorded no wire bytes (raw %.0f, codec %.0f)", rawB, codecB)
	}
	byteRatio := codecB / rawB
	nsRatio := float64(codecRes.NsPerOp()) / float64(rawRes.NsPerOp())
	if byteRatio > 0.5 {
		t.Errorf("codec wire bytes regressed to %.2fx of raw (baseline %.3fx, bar 0.5x; raw %.0f B/op, codec %.0f B/op)",
			byteRatio, baseline.CompressedWire.ByteRatio, rawB, codecB)
	} else {
		t.Logf("compressed wire: %.3fx bytes, %.3fx ns (baseline %.3fx bytes)",
			byteRatio, nsRatio, baseline.CompressedWire.ByteRatio)
	}
	if nsRatio > 1.05 {
		t.Errorf("codec mul wall-clock regressed to %.2fx of raw (bar 1.05x; raw %d ns/op, codec %d ns/op)",
			nsRatio, rawRes.NsPerOp(), codecRes.NsPerOp())
	}
}

// TestConcurrentScalingBaseline re-runs the multi-client throughput pair
// and fails if 8 concurrent sessions no longer clear 3x the single-client
// request throughput — the regression guard on the session-multiplexing
// layer, gated on BENCH_WIRE_BASELINE exactly like TestWireAllocsBaseline.
// The committed baseline must itself record a passing scaling figure, so
// a regressed baseline can't be silently committed either.
func TestConcurrentScalingBaseline(t *testing.T) {
	path := os.Getenv("BENCH_WIRE_BASELINE")
	if path == "" {
		t.Skip("BENCH_WIRE_BASELINE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		ConcurrentSessions struct {
			Clients           int     `json:"clients"`
			ThroughputScaling float64 `json:"throughput_scaling"`
		} `json:"concurrent_sessions"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if baseline.ConcurrentSessions.ThroughputScaling < 3.0 {
		t.Fatalf("baseline %s records concurrent scaling %.2fx, below the 3x bar",
			path, baseline.ConcurrentSessions.ThroughputScaling)
	}
	conc1 := testing.Benchmark(func(b *testing.B) { benchConcurrentMul(b, 1) })
	conc8 := testing.Benchmark(func(b *testing.B) { benchConcurrentMul(b, 8) })
	scaling := float64(conc1.NsPerOp()) * 8 / float64(conc8.NsPerOp())
	if scaling < 3.0 {
		t.Errorf("concurrent throughput scaling regressed to %.2fx (baseline %.2fx, bar 3x)",
			scaling, baseline.ConcurrentSessions.ThroughputScaling)
	} else {
		t.Logf("concurrent throughput scaling: %.2fx (baseline %.2fx)",
			scaling, baseline.ConcurrentSessions.ThroughputScaling)
	}
}

// TestBatchedThroughputBaseline re-runs the 64-client batching pair and
// fails if the batched path no longer beats per-session serving — the
// regression guard on the cross-session batching scheduler, gated on
// BENCH_WIRE_BASELINE like the other baseline tests. The committed
// baseline must itself record a winning gain, so a regressed baseline
// can't be silently committed either.
func TestBatchedThroughputBaseline(t *testing.T) {
	path := os.Getenv("BENCH_WIRE_BASELINE")
	if path == "" {
		t.Skip("BENCH_WIRE_BASELINE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		BatchedThroughput struct {
			Clients        int     `json:"clients"`
			ThroughputGain float64 `json:"throughput_gain"`
		} `json:"batched_throughput"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if baseline.BatchedThroughput.ThroughputGain <= 1.0 {
		t.Fatalf("baseline %s records batched throughput gain %.2fx, not above 1x",
			path, baseline.BatchedThroughput.ThroughputGain)
	}
	perSess := testing.Benchmark(func(b *testing.B) { benchBatchedMul(b, 64, nil) })
	batched := testing.Benchmark(func(b *testing.B) { benchBatchedMul(b, 64, benchBatchConfig()) })
	gain := float64(perSess.NsPerOp()) / float64(batched.NsPerOp())
	if gain <= 1.0 {
		t.Errorf("batched serving regressed to %.2fx of per-session (baseline %.2fx; per-session %d ns/op, batched %d ns/op)",
			gain, baseline.BatchedThroughput.ThroughputGain, perSess.NsPerOp(), batched.NsPerOp())
	} else {
		t.Logf("batched throughput gain: %.2fx (baseline %.2fx)",
			gain, baseline.BatchedThroughput.ThroughputGain)
	}
}

// benchTransformerInfer drives one full WireTransformer block (3
// projections, per-head score and context products, output projection,
// two FF layers — 14 RequestMuls) through a ServeLoopWire pair whose
// peer link is bandwidth-throttled and byte-counted. One op = one
// 16-token sequence, so ns/op converts to tokens/s and the counted
// peer traffic to bytes/token. With codec=true the adaptive selector
// runs with a static bandwidth budget, the regime where FP16 pays on
// the dense revealed E/F frames.
func benchTransformerInfer(b *testing.B, codec bool) {
	blk, x := wireTransformerFixture(53)
	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB, p0, p1, closePeer := newCountingThrottledPipe(benchThrottleBps)
	cfg := WireConfig{ChunkRows: 8}
	if codec {
		cfg.Codec = &WireCodec{
			Enabled: CodecFP16 | CodecCSR,
			HW:      hw.Paper(),
			Link:    hw.LinkModel{Bandwidth: benchThrottleBps},
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ServeLoopWire(0, client0b, peerA, cfg)
	}()
	go func() {
		defer wg.Done()
		ServeLoopWire(1, client1b, peerB, cfg)
	}()
	wt := NewWireTransformer(blk, 60)
	run := func() {
		if _, err := wt.Infer(client0a, client1a, x); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm up pools and frame buffers before counting

	start := p0.Stats().BytesWritten + p1.Stats().BytesWritten
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	wire := p0.Stats().BytesWritten + p1.Stats().BytesWritten - start
	b.ReportMetric(float64(wire)/float64(b.N), "wireB/op")
	b.ReportMetric(float64(wire)/float64(b.N)/float64(x.Rows), "wireB/tok")
	client0a.Close()
	client1a.Close()
	wg.Wait()
	closePeer()
}

func BenchmarkTransformerInfer(b *testing.B) {
	b.Run("raw", func(b *testing.B) { benchTransformerInfer(b, false) })
	b.Run("codec", func(b *testing.B) { benchTransformerInfer(b, true) })
}

// transformerByteRatioBar is the enforced ceiling on codec-vs-raw peer
// bytes for the transformer workload: the revealed E/F frames are dense,
// so FP16 (not CSR) is the codec that pays — half the payload bytes plus
// band headers. 0.75 leaves room for the uncompressible framing.
const transformerByteRatioBar = 0.75

// transformerNsRatioBar bounds the codec's wall-clock cost on the
// transformer pair. Unlike the single 256-cubed mul, this workload is 14
// sequential small round trips, so op time is pipe-latency-dominated and
// halving the bytes moves only a sliver of it; the bar guards against
// encode work becoming material, not for a bandwidth win.
const transformerNsRatioBar = 1.15

// TestTransformerInferBaseline re-runs the transformer inference pair
// and fails if the codec no longer clears the byte-per-token bar on the
// throttled link, or costs wall-clock against raw, or the secure result
// drifts past the documented FP16 tolerance of the plaintext reference —
// the regression guards behind BENCH_wire.json's transformer_infer
// section, gated on BENCH_WIRE_BASELINE like the other baseline tests.
func TestTransformerInferBaseline(t *testing.T) {
	path := os.Getenv("BENCH_WIRE_BASELINE")
	if path == "" {
		t.Skip("BENCH_WIRE_BASELINE not set")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var baseline struct {
		TransformerInfer struct {
			ByteRatio float64 `json:"byte_ratio"`
		} `json:"transformer_infer"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatal(err)
	}
	if r := baseline.TransformerInfer.ByteRatio; r <= 0 || r > transformerByteRatioBar {
		t.Fatalf("baseline %s records transformer_infer byte_ratio %.3f, outside (0, %.2f]",
			path, r, transformerByteRatioBar)
	}
	rawRes := testing.Benchmark(func(b *testing.B) { benchTransformerInfer(b, false) })
	codecRes := testing.Benchmark(func(b *testing.B) { benchTransformerInfer(b, true) })
	rawB, codecB := rawRes.Extra["wireB/op"], codecRes.Extra["wireB/op"]
	if rawB <= 0 || codecB <= 0 {
		t.Fatalf("transformer pair recorded no peer bytes (raw %.0f, codec %.0f)", rawB, codecB)
	}
	byteRatio := codecB / rawB
	nsRatio := float64(codecRes.NsPerOp()) / float64(rawRes.NsPerOp())
	if byteRatio > transformerByteRatioBar {
		t.Errorf("transformer codec bytes regressed to %.2fx of raw (baseline %.3fx, bar %.2fx)",
			byteRatio, baseline.TransformerInfer.ByteRatio, transformerByteRatioBar)
	} else {
		t.Logf("transformer wire: %.3fx bytes, %.3fx ns (baseline %.3fx bytes)",
			byteRatio, nsRatio, baseline.TransformerInfer.ByteRatio)
	}
	if nsRatio > transformerNsRatioBar {
		t.Errorf("transformer codec wall-clock regressed to %.2fx of raw (bar %.2fx; raw %d ns/op, codec %d ns/op)",
			nsRatio, transformerNsRatioBar, rawRes.NsPerOp(), codecRes.NsPerOp())
	}
	// Accuracy under the codec: one full secure pass must stay within the
	// documented FP16 tolerance of the plaintext block (DESIGN.md).
	blk, x := wireTransformerFixture(53)
	want := blk.Forward(x)
	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB := comm.Pipe()
	cfg := WireConfig{ChunkRows: 8, Codec: &WireCodec{
		Enabled: CodecFP16 | CodecCSR,
		HW:      hw.Paper(),
		Link:    hw.LinkModel{Bandwidth: benchThrottleBps},
	}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ServeLoopWire(0, client0b, peerA, cfg) }()
	go func() { defer wg.Done(); ServeLoopWire(1, client1b, peerB, cfg) }()
	got, err := NewWireTransformer(blk, 61).Infer(client0a, client1a, x)
	client0a.Close()
	client1a.Close()
	wg.Wait()
	peerA.Close()
	peerB.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, wireTransformerFP16Tol) {
		t.Errorf("codec-path transformer off plaintext by %v (FP16 tolerance %v)",
			got.MaxAbsDiff(want), wireTransformerFP16Tol)
	}
}
