package mpc

import (
	"fmt"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Remote execution: the same Beaver protocol run between two genuinely
// concurrent parties over a framed byte transport (TCP or an in-memory
// pipe). The simulated deployment above models the paper's cluster
// timing; this path demonstrates that the protocol logic is wire-complete
// — each party sees only its shares and the masked E/F frames, and the
// client recovers the exact product. The paper's MPI layer plays this
// role (§6); stdlib net is the closest substitute.

// RemoteParty executes party i of one triplet multiplication C = A×B over
// conn, which must be connected to the other party running the same
// function with the complementary index. Blocking (bounded by conn's
// deadlines, if any); returns this party's share C_i. conn is any framed
// transport — a raw comm.Conn, or the serving layer's request-tagged
// wrapper.
func RemoteParty(party int, conn comm.Framer, in Shares) (*tensor.Matrix, error) {
	if party != 0 && party != 1 {
		return nil, fmt.Errorf("mpc: remote party index %d", party)
	}
	// Local E_i = A_i − U_i, F_i = B_i − V_i (Eq. 4).
	ei := tensor.SubTo(in.A, in.T.U)
	fi := tensor.SubTo(in.B, in.T.V)

	// Exchange. Party 0 sends first, then receives; party 1 mirrors —
	// a deadlock-free fixed order on one duplex connection. The whole
	// round is the transfer phase the paper's profiling isolates.
	exchT0 := time.Now()
	frame := make([]byte, 0, tensor.EncodedSize(ei)+tensor.EncodedSize(fi))
	frame = tensor.EncodeMatrix(frame, ei)
	frame = tensor.EncodeMatrix(frame, fi)
	var peerFrame []byte
	var err error
	if party == 0 {
		if err = conn.WriteFrame(frame); err != nil {
			return nil, fmt.Errorf("mpc: send E/F: %w", err)
		}
		if peerFrame, err = conn.ReadFrame(); err != nil {
			return nil, fmt.Errorf("mpc: recv E/F: %w", err)
		}
	} else {
		if peerFrame, err = conn.ReadFrame(); err != nil {
			return nil, fmt.Errorf("mpc: recv E/F: %w", err)
		}
		if err = conn.WriteFrame(frame); err != nil {
			return nil, fmt.Errorf("mpc: send E/F: %w", err)
		}
	}
	metrics.phaseExchange.ObserveSince(exchT0)
	peerE, n, err := tensor.DecodeMatrix(peerFrame)
	if err != nil {
		return nil, fmt.Errorf("mpc: decode peer E: %w", err)
	}
	peerF, _, err := tensor.DecodeMatrix(peerFrame[n:])
	if err != nil {
		return nil, fmt.Errorf("mpc: decode peer F: %w", err)
	}

	// Reconstruct the public masks (Eq. 5).
	reconT0 := time.Now()
	e := tensor.AddTo(ei, peerE)
	f := tensor.AddTo(fi, peerF)
	metrics.phaseReconstruct.ObserveSince(reconT0)

	// C_i = ((−i)·E + A_i)×F + E×B_i + Z_i (Eq. 8).
	gemmT0 := time.Now()
	d := in.A.Clone()
	if party == 1 {
		tensor.AXPY(d, -1, e)
	}
	c := tensor.MulTo(d, f)
	eb := tensor.MulTo(e, in.B)
	tensor.Add(c, c, eb)
	tensor.Add(c, c, in.T.Z)
	metrics.phaseGemm.ObserveSince(gemmT0)
	return c, nil
}

// RemoteClientSplit prepares both parties' inputs for one remote
// multiplication: shares of A and B plus a Beaver triplet, exactly the
// client's offline role. pool drives all randomness.
func RemoteClientSplit(a, b *tensor.Matrix, c *Client) (in0, in1 Shares) {
	a0, a1, _ := c.Split(a)
	b0, b1, _ := c.Split(b)
	t0, t1, _ := c.GenGemmTriplet(a.Rows, a.Cols, b.Cols, false)
	return Shares{A: a0, B: b0, T: t0}, Shares{A: a1, B: b1, T: t1}
}

// RemoteCombine merges the parties' result shares (the client's final
// step).
func RemoteCombine(c0, c1 *tensor.Matrix) *tensor.Matrix {
	return tensor.AddTo(c0, c1)
}
