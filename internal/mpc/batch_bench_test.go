package mpc

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
)

// Throughput benchmark for cross-session batching. The peer link pays a
// fixed delay per write — the fixed per-frame cost (link latency,
// syscalls) that hw.Platform.BatchWindow models and batching amortizes.
// Payload bytes are identical on both paths; what batching removes is
// rounds, so a per-write delay is exactly the term it should win on.

// benchPeerFrameDelay is the modeled fixed cost of one peer-link write.
const benchPeerFrameDelay = 200 * time.Microsecond

// benchBatchDim keeps per-request compute small so the peer link's fixed
// costs dominate — the regime where same-shape tenants pile up.
const benchBatchDim = 32

// startServePairPeerDelay is startServePair with the peer link built from
// raw TCP conns behind write-delayed FaultConns.
func startServePairPeerDelay(tb testing.TB, cfg ServeConfig, delay time.Duration) (addr0, addr1 string, shutdown func()) {
	tb.Helper()
	peerLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	delayed := func(raw net.Conn) *comm.Conn {
		fc := comm.NewFaultConn(raw)
		fc.WriteDelay = delay
		return comm.Wrap(fc)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		raw, err := peerLn.Accept()
		peerLn.Close()
		if err != nil {
			tb.Errorf("peer accept: %v", err)
			return
		}
		peer := delayed(raw)
		defer peer.Close()
		if err := ServeClients(ctx, 0, ln0, peer, cfg); err != nil {
			tb.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		raw, err := net.Dial("tcp", peerLn.Addr().String())
		if err != nil {
			tb.Errorf("peer dial: %v", err)
			return
		}
		peer := delayed(raw)
		defer peer.Close()
		if err := ServeClients(ctx, 1, ln1, peer, cfg); err != nil {
			tb.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

// benchBatchConfig is the batched arm's scheduler setup: a window wide
// enough to collect a round of concurrent same-shape tenants.
func benchBatchConfig() *BatchConfig {
	return &BatchConfig{
		Window:   time.Millisecond,
		MaxBatch: 16,
		JoinWait: 2 * time.Second,
	}
}

// benchBatchedMul measures aggregate request throughput for `clients`
// concurrent same-shape tenants over a fixed-cost-per-frame peer link.
// batch nil is the per-session arm. One op = every client completing one
// request.
func benchBatchedMul(b *testing.B, clients int, batch *BatchConfig) {
	cfg := ServeConfig{
		ClientTimeout: 30 * time.Second,
		PeerTimeout:   30 * time.Second,
		MaxSessions:   clients,
		Batch:         batch,
	}
	addr0, addr1, shutdown := startServePairPeerDelay(b, cfg, benchPeerFrameDelay)
	defer shutdown()

	p := rng.NewPool(5151)
	jobs := make([]Shares, 2*clients) // client i: in0 = jobs[2i], in1 = jobs[2i+1]
	conns := make([]*comm.Conn, 2*clients)
	for i := 0; i < clients; i++ {
		a := p.NewUniform(benchBatchDim, benchBatchDim, -1, 1)
		bm := p.NewUniform(benchBatchDim, benchBatchDim, -1, 1)
		t0, t1 := GenGemmTripletShares(p, benchBatchDim, benchBatchDim, benchBatchDim)
		a0, a1 := SplitRand(p, a)
		b0, b1 := SplitRand(p, bm)
		jobs[2*i] = Shares{A: a0, B: b0, T: t0}
		jobs[2*i+1] = Shares{A: a1, B: b1, T: t1}
		conns[2*i], conns[2*i+1] = dialPair(b, addr0, addr1)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	run := func(rounds int) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if _, err := RequestMul(conns[2*i], conns[2*i+1], jobs[2*i], jobs[2*i+1]); err != nil {
						errs <- err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	run(1) // warm up link, pools, and (when enabled) the batch scheduler
	b.ResetTimer()
	run(b.N)
}

func BenchmarkBatchedClients(b *testing.B) {
	b.Run("per-session", func(b *testing.B) { benchBatchedMul(b, 64, nil) })
	b.Run("batched", func(b *testing.B) { benchBatchedMul(b, 64, benchBatchConfig()) })
}
