// Package mpc implements ParSecureML's two-party computation engine in the
// float-share domain the paper's released code uses: additive FP32 secret
// sharing, client-side Beaver-triplet generation (the offline phase, §4.2),
// and the server-side online phase — CPU reconstruct of the public masks
// E = A−U and F = B−V followed by the GPU triplet multiplication in the
// fused Eq. (8) form, with the Fig. 5 transfer/compute pipeline and the
// §4.4 compressed E/F transmission.
//
// The cryptographically faithful Z_2^64 domain lives in internal/fixed and
// is compared against this domain by the A2 ablation bench.
package mpc

import (
	"fmt"

	"parsecureml/internal/gpu"
	"parsecureml/internal/hw"
	"parsecureml/internal/simtime"
)

// Node is one machine of the deployment (the client or a server): a CPU
// timeline plus an optional GPU device, with the §5.1 CPU parallelism
// toggle used by the Fig. 14 experiment.
type Node struct {
	Name     string
	Platform hw.Platform
	Eng      *simtime.Engine
	CPU      *simtime.Resource
	Dev      *gpu.Device // primary device; nil for a CPU-only node
	// Devs lists every attached device (Devs[0] == Dev). Multi-GPU nodes
	// split the online operation across them (the paper's multi-GPU
	// outlook, §8 [63]).
	Devs        []*gpu.Device
	ParallelCPU bool // thread-local MT19937 + parallel add/sub (§5.1)
	Ring        bool // scalar Z_2^64 arithmetic (SecureML baseline)
}

// NewNode creates a node named name on eng. withGPU attaches a simulated
// V100.
func NewNode(name string, p hw.Platform, eng *simtime.Engine, withGPU bool) *Node {
	return NewNodeGPUs(name, p, eng, map[bool]int{true: 1, false: 0}[withGPU])
}

// NewNodeGPUs creates a node with gpus simulated V100s (0 = CPU-only).
func NewNodeGPUs(name string, p hw.Platform, eng *simtime.Engine, gpus int) *Node {
	n := &Node{
		Name:        name,
		Platform:    p,
		Eng:         eng,
		CPU:         eng.Resource(name + ".cpu"),
		ParallelCPU: true,
	}
	for i := 0; i < gpus; i++ {
		suffix := ""
		if i > 0 {
			suffix = fmt.Sprintf("%d", i)
		}
		n.Devs = append(n.Devs, gpu.New(name+".gpu"+suffix, p, eng))
	}
	if len(n.Devs) > 0 {
		n.Dev = n.Devs[0]
	}
	return n
}

// ElemTask charges a CPU element-wise pass over the given bytes.
func (n *Node) ElemTask(name string, bytes int, deps ...*simtime.Task) *simtime.Task {
	dur := n.Platform.CPU.ElemwiseTime(bytes, n.ParallelCPU)
	return n.Eng.Schedule(n.CPU, "cpu.elem", name, dur, deps...)
}

// GemmTask charges a CPU GEMM of the given geometry (ring-domain rates on
// a SecureML-baseline node).
func (n *Node) GemmTask(name string, m, k, cols int, deps ...*simtime.Task) *simtime.Task {
	var dur float64
	if n.Ring {
		dur = n.Platform.CPU.RingGemmTime(m, k, cols, n.ParallelCPU)
	} else {
		dur = n.Platform.CPU.GemmTime(m, k, cols, n.ParallelCPU)
	}
	return n.Eng.Schedule(n.CPU, "cpu.gemm", name, dur, deps...)
}

// RandTask charges CPU generation of count random values.
func (n *Node) RandTask(name string, count int, deps ...*simtime.Task) *simtime.Task {
	dur := n.Platform.CPU.RandTime(count, n.ParallelCPU)
	return n.Eng.Schedule(n.CPU, "cpu.rand", name, dur, deps...)
}
