package mpc

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/obs"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Regression tests for the connection-lifecycle sweep: orphaned result
// frames on the client<->server conns, the unbounded-shutdown path in
// ServeClients, and the unbounded role handshake.

// startServePipes runs both parties' serial serving loops over in-memory
// pipes and returns the client-facing conn ends.
func startServePipes(t *testing.T) (c0, c1 *comm.Conn, shutdown func()) {
	t.Helper()
	c0, s0 := comm.Pipe()
	c1, s1 := comm.Pipe()
	p0, p1 := comm.Pipe()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ServeLoop(0, s0, p0) }()
	go func() { defer wg.Done(); ServeLoop(1, s1, p1) }()
	return c0, c1, func() {
		c0.Close()
		c1.Close()
		wg.Wait()
		s0.Close()
		s1.Close()
		p0.Close()
		p1.Close()
	}
}

// stalePrefixFramer returns queued frames ahead of the real stream — the
// shape of a socket buffer still holding result frames of an earlier
// request that died before reading them.
type stalePrefixFramer struct {
	comm.Framer
	pending [][]byte
}

func (s *stalePrefixFramer) ReadFrame() ([]byte, error) {
	if len(s.pending) > 0 {
		f := s.pending[0]
		s.pending = s.pending[1:]
		return f, nil
	}
	return s.Framer.ReadFrame()
}

func staleResultFrames(n int) [][]byte {
	frames := make([][]byte, n)
	for i := range frames {
		f := binary.LittleEndian.AppendUint64(nil, 0xABAD1DEA+uint64(i))
		frames[i] = append(f, "orphaned result"...)
	}
	return frames
}

// A result frame orphaned by an aborted earlier call must be shed on the
// next RequestMul over the same connections, not decoded as its answer.
func TestRequestMulShedsOrphanedResults(t *testing.T) {
	c0, c1, shutdown := startServePipes(t)
	defer shutdown()

	p := rng.NewPool(21)
	client := newRemoteClient()
	a := p.NewUniform(6, 6, -1, 1)
	b := p.NewUniform(6, 6, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)

	got, err := RequestMul(
		&stalePrefixFramer{Framer: c0, pending: staleResultFrames(3)},
		&stalePrefixFramer{Framer: c1, pending: staleResultFrames(1)},
		in0, in1)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MulTo(a, b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("product off by %v after shedding orphaned results", got.MaxAbsDiff(want))
	}
}

// A connection delivering nothing but orphaned results must fail with
// ErrPeerDesync after a bounded number of discards, not spin forever.
func TestRequestMulResultDesyncBound(t *testing.T) {
	c0, c1, shutdown := startServePipes(t)
	defer shutdown()

	p := rng.NewPool(22)
	client := newRemoteClient()
	a := p.NewUniform(4, 4, -1, 1)
	b := p.NewUniform(4, 4, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)

	_, err := RequestMul(
		&stalePrefixFramer{Framer: c0, pending: staleResultFrames(maxStaleFrames)},
		c1, in0, in1)
	if !errors.Is(err, ErrPeerDesync) {
		t.Fatalf("got %v, want ErrPeerDesync", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Server != 0 {
		t.Fatalf("desync not blamed on server 0's conn: %v", err)
	}
}

// When both uploads die on a faulty fabric, the joined error must carry a
// typed *ServerError for each leg — neither failure shadows the other.
func TestRequestMulSurfacesBothLegFailures(t *testing.T) {
	mkFaulty := func() (*comm.Conn, func()) {
		raw, peerRaw := net.Pipe()
		go io.Copy(io.Discard, peerRaw) // absorb the bytes that do get out
		fc := comm.NewFaultConn(raw)
		fc.FailWriteAfter = 4 // dies mid-frame, right after the length prefix
		return comm.Wrap(fc), func() { raw.Close(); peerRaw.Close() }
	}
	c0, close0 := mkFaulty()
	defer close0()
	c1, close1 := mkFaulty()
	defer close1()

	p := rng.NewPool(23)
	client := newRemoteClient()
	a := p.NewUniform(4, 4, -1, 1)
	b := p.NewUniform(4, 4, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)

	_, err := RequestMul(c0, c1, in0, in1)
	if err == nil {
		t.Fatal("RequestMul with both uploads failing must error")
	}
	if !errors.Is(err, comm.ErrInjected) {
		t.Fatalf("joined error %v does not surface the injected fault", err)
	}
	legs := []error{err}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		legs = joined.Unwrap()
	}
	blamed := map[int]bool{}
	for _, leg := range legs {
		var se *ServerError
		if errors.As(leg, &se) {
			if se.Op != "upload" {
				t.Errorf("server %d blamed for %q, want upload", se.Server, se.Op)
			}
			blamed[se.Server] = true
		}
	}
	if !blamed[0] || !blamed[1] {
		t.Fatalf("joined error %v does not blame both servers (got %v)", err, blamed)
	}
}

// Cancelling ServeClients' context must end the loop promptly even when
// ClientTimeout is 0 and an idle client is connected: the shutdown hook
// closes the active conn, so the session's frame read cannot pin the
// loop until a deadline that never comes.
func TestServeClientsBoundedShutdown(t *testing.T) {
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := comm.Pipe()
	defer p0.Close()
	defer p1.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- ServeClients(ctx, 0, ln, p0, ServeConfig{Log: obs.LogfLogger(t.Logf)})
	}()

	client, err := comm.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Give the accept loop a beat to pick the session up (if cancellation
	// wins the race instead, the loop must still exit promptly), then
	// cancel while the client sits idle mid-session.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after cancel: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ServeClients did not return within 2s of cancellation")
	}
}

// The role handshake must bound itself on a silent or non-reading peer
// and put the caller's own deadlines back afterwards.
func TestHelloBoundedAndRestoresTimeouts(t *testing.T) {
	old := helloTimeout
	helloTimeout = 150 * time.Millisecond
	defer func() { helloTimeout = old }()

	a, b := comm.Pipe()
	defer a.Close()
	defer b.Close()
	a.SetTimeouts(5*time.Second, 7*time.Second)

	checkRestored := func(op string) {
		t.Helper()
		if r, w := a.Timeouts(); r != 5*time.Second || w != 7*time.Second {
			t.Fatalf("%s left timeouts read=%v write=%v, want 5s/7s", op, r, w)
		}
	}

	start := time.Now()
	if _, err := ReadHello(a); err == nil { // b never speaks
		t.Fatal("ReadHello from a silent peer must fail")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("ReadHello blocked %v with a %v hello timeout", el, helloTimeout)
	}
	checkRestored("ReadHello")

	start = time.Now()
	if err := WriteHello(a, 0); err == nil { // b never reads
		t.Fatal("WriteHello to a non-reading peer must fail")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("WriteHello blocked %v with a %v hello timeout", el, helloTimeout)
	}
	checkRestored("WriteHello")
}
