package mpc

import (
	"fmt"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Pipelined inference serving: ServeInference's session semantics on the
// wire double pipeline. Differences from the serial loop, in protocol
// order:
//
//   - Session setup reconstructs every layer's public F = W − V once, with
//     one concurrent frame each way (the weights' masks never change within
//     a session — the Fig. 6 cross-layer hoist). Per-request peer traffic
//     is then the banded E stream plus one frame per activation.
//
//   - Each layer's multiplication streams E in row bands that overlap the
//     fused Eq. 8 GEMM (wireMul.mul), writing pre-activations into a
//     session-owned buffer.
//
//   - The activation reveal is two concurrent frames instead of three
//     dependent ones: party 1 ships its pre-activation share while party 0
//     ships the re-sharing mask R it drew ahead of time. Party 0 alone
//     reconstructs and evaluates f; party 1's post-activation share IS R.
//     Predictions stay bit-identical to the serial path because party 0
//     draws the same mask sequence and reconstructs in the same order.
//
//   - Every per-request matrix and frame buffer is preallocated at session
//     setup or pooled, so the steady-state request loop allocates (nearly)
//     nothing.
//
// The two serving parties must run the same path (both ServeInference or
// both ServeInferenceWire with equal ChunkRows): the peer framing differs.
// The client protocol is unchanged — RequestInference works against either.

// MaskFiller generates party 0's activation re-sharing masks in place.
// *rng.Pool implements it; the fill sequence must match what the serial
// path's NewUniform would draw for output parity across the two paths.
type MaskFiller interface {
	FillUniform(m *tensor.Matrix, lo, hi float32)
}

// validateInferLayers checks a decoded session's geometry end to end —
// chained layer shapes, batch-consistent triplets, row-vector biases — so
// a malformed or hostile session frame is rejected with an error instead
// of panicking a kernel mid-request. Returns the session batch size.
func validateInferLayers(layers []InferLayer) (int, error) {
	if len(layers) == 0 {
		return 0, fmt.Errorf("mpc: session has no layers")
	}
	batch := layers[0].T.U.Rows
	if batch < 1 {
		return 0, fmt.Errorf("mpc: session batch %d", batch)
	}
	in := layers[0].W.Rows
	for i := range layers {
		l := &layers[i]
		if l.W.Rows != in || l.W.Rows < 1 || l.W.Cols < 1 {
			return 0, fmt.Errorf("mpc: layer %d weights %dx%d after width %d", i, l.W.Rows, l.W.Cols, in)
		}
		if l.B.Rows != 1 || l.B.Cols != l.W.Cols {
			return 0, fmt.Errorf("mpc: layer %d bias %dx%d for width %d", i, l.B.Rows, l.B.Cols, l.W.Cols)
		}
		if l.T.U.Rows != batch || l.T.U.Cols != l.W.Rows {
			return 0, fmt.Errorf("mpc: layer %d triplet U %dx%d, want %dx%d", i, l.T.U.Rows, l.T.U.Cols, batch, l.W.Rows)
		}
		if l.T.V.Rows != l.W.Rows || l.T.V.Cols != l.W.Cols {
			return 0, fmt.Errorf("mpc: layer %d triplet V %dx%d, want %dx%d", i, l.T.V.Rows, l.T.V.Cols, l.W.Rows, l.W.Cols)
		}
		if l.T.Z.Rows != batch || l.T.Z.Cols != l.W.Cols {
			return 0, fmt.Errorf("mpc: layer %d triplet Z %dx%d, want %dx%d", i, l.T.Z.Rows, l.T.Z.Cols, batch, l.W.Cols)
		}
		in = l.W.Cols
	}
	return batch, nil
}

// wireInferSession is one client session's steady-state serving state:
// the cached public F per layer and every buffer the request loop reuses.
type wireInferSession struct {
	party  int
	w      *wireMul
	layers []InferLayer
	fPub   []*tensor.Matrix // per-layer public F, fixed for the session
	x      *tensor.Matrix   // request input share
	ys     []*tensor.Matrix // per-layer (pre-)activation share
	masks  []*tensor.Matrix // party 0: mask R per activation layer
	peerYs []*tensor.Matrix // party 0: peer pre-activation share per activation layer
	// acts holds each activation's Apply bound once at setup: taking the
	// method value inside the request loop would allocate a closure per
	// layer per request.
	acts   []func(float32) float32
	reqBuf []byte // client request frame scratch
	outBuf []byte // client reply frame scratch
}

// newWireInferSession validates the session geometry, performs the one-off
// full-duplex F exchange with the peer, and preallocates the request-loop
// buffers.
func newWireInferSession(party int, peer comm.Framer, layers []InferLayer, cfg WireConfig) (*wireInferSession, error) {
	batch, err := validateInferLayers(layers)
	if err != nil {
		return nil, err
	}
	s := &wireInferSession{
		party:  party,
		layers: layers,
		fPub:   make([]*tensor.Matrix, len(layers)),
		ys:     make([]*tensor.Matrix, len(layers)),
		masks:  make([]*tensor.Matrix, len(layers)),
		peerYs: make([]*tensor.Matrix, len(layers)),
	}

	// One concurrent frame each way carries every layer's F share; after
	// this, F never touches the wire again for the session's lifetime.
	fis := make([]*tensor.Matrix, len(layers))
	size := 0
	for i, l := range layers {
		fi := tensor.New(l.W.Rows, l.W.Cols)
		tensor.Sub(fi, l.W, l.T.V)
		fis[i] = fi
		size += tensor.EncodedSize(fi)
	}
	frame := make([]byte, 0, size)
	for _, fi := range fis {
		frame = tensor.EncodeMatrix(frame, fi)
	}
	sendErr := make(chan error, 1)
	go func() { sendErr <- peer.WriteFrame(frame) }()
	peerFrame, err := peer.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("mpc: session F exchange: %w", err)
	}
	off := 0
	for i, fi := range fis {
		peerFi := tensor.New(fi.Rows, fi.Cols)
		n, err := tensor.DecodeMatrixInto(peerFi, peerFrame[off:])
		if err != nil {
			return nil, fmt.Errorf("mpc: session F exchange, layer %d: %w", i, err)
		}
		off += n
		s.fPub[i] = tensor.AddTo(fi, peerFi)
	}
	if off != len(peerFrame) {
		return nil, fmt.Errorf("mpc: session F exchange: %d trailing bytes", len(peerFrame)-off)
	}
	if err := <-sendErr; err != nil {
		return nil, fmt.Errorf("mpc: session F exchange: %w", err)
	}

	s.x = tensor.New(batch, layers[0].W.Rows)
	s.acts = make([]func(float32) float32, len(layers))
	for i, l := range layers {
		s.ys[i] = tensor.New(batch, l.W.Cols)
		if l.HasAct {
			s.acts[i] = l.Act.Apply
		}
		if l.HasAct && party == 0 {
			s.masks[i] = tensor.New(batch, l.W.Cols)
			s.peerYs[i] = tensor.New(batch, l.W.Cols)
		}
	}
	// Created last so the earlier error returns never leak its sender
	// goroutine; the caller owns s.close() from here.
	s.w = newWireMul(party, cfg)
	return s, nil
}

// close releases the session's sender goroutine.
func (s *wireInferSession) close() { s.w.close() }

// serveRequest runs one input batch through the session: banded layer
// multiplications against the cached F, bias, and the concurrent
// activation re-share, all into session-owned buffers.
func (s *wireInferSession) serveRequest(client, peer comm.Framer, masks MaskFiller) error {
	frame, err := readFrameInto(client, s.reqBuf)
	if err != nil {
		return err // EOF-family: session over (caller classifies)
	}
	span := metrics.reqInferWire.Start()
	metrics.requests.Inc()
	s.reqBuf = frame
	if _, err := tensor.DecodeMatrixInto(s.x, frame); err != nil {
		metrics.requestErrors.Inc()
		return fmt.Errorf("mpc: request input: %w", err)
	}
	x := s.x
	for i := range s.layers {
		l := &s.layers[i]
		y := s.ys[i]
		if _, err := s.w.mul(peer, x, l.W, l.T, s.fPub[i], y); err != nil {
			metrics.requestErrors.Inc()
			return fmt.Errorf("mpc: layer %d: %w", i, err)
		}
		// Bias: share-local row broadcast.
		for r := 0; r < y.Rows; r++ {
			row := y.Row(r)
			for c := range row {
				row[c] += l.B.Data[c]
			}
		}
		if l.HasAct {
			if s.party == 0 {
				r := s.masks[i]
				masks.FillUniform(r, -ShareRange, ShareRange)
				// R goes out while party 1's share streams in.
				if err := s.w.swap(peer, r, s.peerYs[i]); err != nil {
					metrics.requestErrors.Inc()
					return fmt.Errorf("mpc: layer %d activation: %w", i, err)
				}
				// share := f(y0 + y1) − R, reconstructed in the serial
				// path's order so predictions match it bit for bit.
				reconT0 := time.Now()
				tensor.Add(y, y, s.peerYs[i])
				tensor.Apply(y, y, s.acts[i])
				tensor.Sub(y, y, r)
				metrics.phaseReconstruct.ObserveSince(reconT0)
			} else {
				// Ship y1; the replacement share is party 0's mask R,
				// arriving concurrently (swap decodes it into y only after
				// y's bytes are on the wire).
				if err := s.w.swap(peer, y, y); err != nil {
					metrics.requestErrors.Inc()
					return fmt.Errorf("mpc: layer %d activation: %w", i, err)
				}
			}
		}
		x = y
	}
	s.outBuf = tensor.EncodeMatrix(s.outBuf[:0], x)
	if err := client.WriteFrame(s.outBuf); err != nil {
		metrics.requestErrors.Inc()
		return err
	}
	span.Stop()
	return nil
}

// ServeInferenceWire handles one inference session like ServeInference,
// but on the wire double pipeline: session-cached F, banded E streams
// overlapping the layer GEMMs, concurrent activation frames, and pooled /
// preallocated buffers throughout the request loop. Both serving parties
// must use it with the same cfg.ChunkRows. masks is party 0's re-sharing
// mask source (party 1's value is unused).
func ServeInferenceWire(party int, client, peer comm.Framer, masks MaskFiller, cfg WireConfig) error {
	setup, err := client.ReadFrame()
	if err != nil {
		return err
	}
	layers, err := DecodeInferSession(setup)
	if err != nil {
		return err
	}
	s, err := newWireInferSession(party, peer, layers, cfg)
	if err != nil {
		return err
	}
	defer s.close()
	for {
		if err := s.serveRequest(client, peer, masks); err != nil {
			return err
		}
	}
}
