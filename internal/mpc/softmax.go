package mpc

import (
	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// SecureRowSoftmax applies the row-wise approximate softmax (with
// optional causal masking) to shared attention scores S = s0 + s1. It
// follows the same reveal-and-reshare protocol as SecureActivation: the
// servers jointly reconstruct S (one exchange), apply ml.ApproxSoftmax
// — the piecewise/polynomial approximation whose error contract lives
// in DESIGN.md — and re-share: server 0 draws a fresh mask R, keeps
// P−R, and ships R to server 1. Both servers retain the public
// probabilities P in ActResult.Deriv; the backward pass uses them
// linearly (dS = P⊙(dP − rowsum(dP⊙P)) is share-local once P is
// public), exactly like the activation derivative mask.
//
// The reveal leaks the attention scores of the batch to the servers —
// the same per-layer leak profile as the activation reveal, documented
// in DESIGN.md.
func SecureRowSoftmax(stream string, s0, s1 *Server, mask *rng.Pool, causal bool,
	y0, y1 *tensor.Matrix, dep0, dep1 *simtime.Task) (ActResult, ActResult) {

	// Exchange the score shares.
	y0atPeer, t0 := s0.sendShare(stream+".sm", y0, dep0)
	y1atPeer, t1 := s1.sendShare(stream+".sm", y1, dep1)

	// Both reconstruct S and evaluate the public approximation.
	y := tensor.AddTo(y0, y1atPeer)
	yAt1 := tensor.AddTo(y1, y0atPeer)
	sum0 := s0.ElemTask("sm.sum", 3*y.Bytes(), dep0, t1)
	sum1 := s1.ElemTask("sm.sum", 3*y.Bytes(), dep1, t0)

	p := tensor.New(y.Rows, y.Cols)
	pAt1 := tensor.New(y.Rows, y.Cols)
	if tensor.ComputeEnabled() {
		ml.ApproxSoftmax(p, y, causal)
		ml.ApproxSoftmax(pAt1, yAt1, causal)
	}
	// exp poly + row max + normalize ≈ a few passes over the scores.
	a0t := s0.ElemTask("sm.eval", 4*y.Bytes(), sum0)
	a1t := s1.ElemTask("sm.eval", 4*y.Bytes(), sum1)

	// Re-share: server 0 draws R, keeps P−R, sends R.
	r := mask.NewUniform(y.Rows, y.Cols, -ShareRange, ShareRange)
	share0 := tensor.SubTo(p, r)
	tMask := s0.RandTask("sm.mask", y.Rows*y.Cols, a0t)
	tMask = s0.ElemTask("sm.resub", 3*r.Bytes(), tMask)
	var tSend *simtime.Task
	var rAt1 *tensor.Matrix
	if tensor.ComputeEnabled() {
		frame := tensor.EncodeMatrix(nil, r)
		tSend = s0.Link().SendRaw(frame, tMask)
		var err error
		rAt1, _, err = tensor.DecodeMatrix(frame)
		must(err)
	} else {
		tSend = s0.Link().SendSized("sm.mask", tensor.EncodedSizeDense(y.Rows, y.Cols), tMask)
		rAt1 = tensor.New(y.Rows, y.Cols)
	}

	done1 := s1.Eng.After(a1t, tSend)
	return ActResult{Share: share0, Deriv: p, Done: tMask},
		ActResult{Share: rAt1, Deriv: pAt1, Done: done1}
}
