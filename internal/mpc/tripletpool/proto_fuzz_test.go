package tripletpool

import (
	"bytes"
	"testing"

	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
)

// FuzzDealerProto throws arbitrary bytes at every dealer-protocol frame
// decoder — hello, WANT, RESUME, FEED. The decoders guard the dealer
// and the replicas against each other: a malformed or hostile frame
// must come back as an error, never a panic, and whatever a decoder
// does accept must re-encode to the same bytes (ctl frames are
// fixed-layout) or survive a second decode unchanged (FEED frames,
// whose matrix payloads have more than one wire form).
func FuzzDealerProto(f *testing.F) {
	p := rng.NewPool(7)
	t0, _ := mpc.GenGemmTripletShares(p, 2, 3, 2)
	f.Add(encodeDealerHello(1, 42))
	f.Add(encodeWant(shape{M: 5, K: 6, N: 4}, 8))
	f.Add(encodeResume(shape{M: 5, K: 6, N: 4}, 97, 3))
	f.Add(appendFeedFrame(nil, shape{M: 2, K: 3, N: 2}, 11, t0))
	f.Fuzz(func(t *testing.T, data []byte) {
		if party, pairID, err := decodeDealerHello(data); err == nil {
			if party != 0 && party != 1 {
				t.Fatalf("hello decoded party %d", party)
			}
			if !bytes.Equal(encodeDealerHello(party, pairID), data) {
				t.Fatal("hello did not re-encode to its own bytes")
			}
		}
		if s, count, err := decodeWant(data); err == nil {
			if s.M <= 0 || s.K <= 0 || s.N <= 0 || count <= 0 {
				t.Fatalf("WANT decoded degenerate %dx%dx%d count %d", s.M, s.K, s.N, count)
			}
			if !bytes.Equal(encodeWant(s, count), data) {
				t.Fatal("WANT did not re-encode to its own bytes")
			}
		}
		if s, from, count, err := decodeResume(data); err == nil {
			if s.M <= 0 || s.K <= 0 || s.N <= 0 || count < 0 {
				t.Fatalf("RESUME decoded degenerate %dx%dx%d count %d", s.M, s.K, s.N, count)
			}
			if !bytes.Equal(encodeResume(s, from, count), data) {
				t.Fatal("RESUME did not re-encode to its own bytes")
			}
		}
		if s, seq, tr, err := decodeFeedFrame(data); err == nil {
			if tr.U.Rows != s.M || tr.U.Cols != s.K ||
				tr.V.Rows != s.K || tr.V.Cols != s.N ||
				tr.Z.Rows != s.M || tr.Z.Cols != s.N {
				t.Fatalf("FEED accepted geometry off its %dx%dx%d header", s.M, s.K, s.N)
			}
			// The payload may arrive in any matrix wire form; a re-encoded
			// frame must decode back to the identical triplet.
			s2, seq2, tr2, err := decodeFeedFrame(appendFeedFrame(nil, s, seq, tr))
			if err != nil {
				t.Fatalf("re-encoded FEED frame rejected: %v", err)
			}
			if s2 != s || seq2 != seq ||
				!tr2.U.ApproxEqual(tr.U, 0) || !tr2.V.ApproxEqual(tr.V, 0) || !tr2.Z.ApproxEqual(tr.Z, 0) {
				t.Fatal("FEED frame did not survive a decode/encode/decode cycle")
			}
		}
	})
}
