package tripletpool

import (
	"math"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/mpc"
	"parsecureml/internal/tensor"
)

// checkTriplet verifies a split triplet is protocol-valid: Z0+Z1 =
// (U0+U1)×(V0+V1) within float tolerance, for the requested geometry.
func checkTriplet(t *testing.T, p0, p1 mpc.TripletShares, m, k, n int) {
	t.Helper()
	u := tensor.AddTo(p0.U, p1.U)
	v := tensor.AddTo(p0.V, p1.V)
	z := tensor.AddTo(p0.Z, p1.Z)
	if u.Rows != m || u.Cols != k || v.Rows != k || v.Cols != n || z.Rows != m || z.Cols != n {
		t.Fatalf("triplet geometry: U %dx%d V %dx%d Z %dx%d, want (%d,%d,%d)",
			u.Rows, u.Cols, v.Rows, v.Cols, z.Rows, z.Cols, m, k, n)
	}
	want := tensor.MulTo(u, v)
	for i := range z.Data {
		if d := math.Abs(float64(z.Data[i] - want.Data[i])); d > 1e-3 {
			t.Fatalf("Z[%d] off by %g: triplet does not satisfy Z = U×V", i, d)
		}
	}
}

func TestGetGemmValidTriplets(t *testing.T) {
	p := New(Config{Depth: 2, Workers: 1, Seed: 42})
	defer p.Close()
	for _, g := range [][3]int{{4, 5, 6}, {8, 8, 8}, {1, 16, 3}} {
		p0, p1 := p.GetGemm(g[0], g[1], g[2])
		checkTriplet(t, p0, p1, g[0], g[1], g[2])
	}
}

// TestPoolWarmsObservedShape checks the background workers refill a shape
// after first use, so later Gets are hits.
func TestPoolWarmsObservedShape(t *testing.T) {
	p := New(Config{Depth: 3, Workers: 2, Seed: 1})
	defer p.Close()
	p.GetGemm(6, 6, 6) // miss: registers the shape
	b := p.lookup(shape{6, 6, 6})
	deadline := time.Now().Add(5 * time.Second)
	for len(b.ready) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(b.ready) != 3 {
		t.Fatalf("ready depth %d after warmup, want 3", len(b.ready))
	}
	before := hitsTotal.Load()
	p0, p1 := p.GetGemm(6, 6, 6)
	if hitsTotal.Load() != before+1 {
		t.Fatal("warm Get was not a pool hit")
	}
	checkTriplet(t, p0, p1, 6, 6, 6)
}

// TestPoolLRUEviction checks the shape bound evicts the least recently
// used geometry.
func TestPoolLRUEviction(t *testing.T) {
	p := New(Config{Depth: 1, MaxShapes: 2, Workers: 1, Seed: 7})
	defer p.Close()
	p.GetGemm(2, 2, 2)
	p.GetGemm(3, 3, 3)
	p.GetGemm(2, 2, 2) // refresh (2,2,2): (3,3,3) is now LRU
	p.GetGemm(4, 4, 4) // third shape: evicts (3,3,3)
	p.mu.Lock()
	_, has222 := p.buckets[shape{2, 2, 2}]
	_, has333 := p.buckets[shape{3, 3, 3}]
	_, has444 := p.buckets[shape{4, 4, 4}]
	p.mu.Unlock()
	if !has222 || has333 || !has444 {
		t.Fatalf("buckets after eviction: 222=%v 333=%v 444=%v, want LRU (3,3,3) gone", has222, has333, has444)
	}
}

// TestPoolConcurrentGet hammers the pool from many goroutines under the
// race detector and validates every triplet.
func TestPoolConcurrentGet(t *testing.T) {
	p := New(Config{Depth: 2, Workers: 3, Seed: 9})
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, k, n := 3+g%3, 4, 5
			for i := 0; i < 10; i++ {
				p0, p1 := p.GetGemm(m, k, n)
				u := tensor.AddTo(p0.U, p1.U)
				v := tensor.AddTo(p0.V, p1.V)
				z := tensor.AddTo(p0.Z, p1.Z)
				want := tensor.MulTo(u, v)
				for j := range z.Data {
					if d := math.Abs(float64(z.Data[j] - want.Data[j])); d > 1e-3 {
						errs <- "invalid triplet under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSplitRoundTrip checks Pool.Split produces shares that reconstruct
// the plaintext product via the Eq. 8 party computation.
func TestSplitRoundTrip(t *testing.T) {
	p := New(Config{Depth: 1, Workers: 1, Seed: 3})
	defer p.Close()
	r := p.rng
	a := r.NewUniform(5, 4, -1, 1)
	b := r.NewUniform(4, 6, -1, 1)
	in0, in1 := p.Split(a, b)
	// Reconstruct the secrets from the shares.
	ra := tensor.AddTo(in0.A, in1.A)
	rb := tensor.AddTo(in0.B, in1.B)
	for i := range ra.Data {
		if math.Abs(float64(ra.Data[i]-a.Data[i])) > 1e-5 {
			t.Fatal("A shares do not reconstruct the secret")
		}
	}
	for i := range rb.Data {
		if math.Abs(float64(rb.Data[i]-b.Data[i])) > 1e-5 {
			t.Fatal("B shares do not reconstruct the secret")
		}
	}
	checkTriplet(t, in0.T, in1.T, 5, 4, 6)
}

// TestCloseThenGet checks a closed pool still serves (inline).
func TestCloseThenGet(t *testing.T) {
	p := New(Config{Workers: 1})
	p.Close()
	p0, p1 := p.GetGemm(3, 3, 3)
	checkTriplet(t, p0, p1, 3, 3, 3)
	p.Close() // idempotent
}

// TestPoolEvictionStormUnderContention is the regression for the
// lookup() drain: evicting an LRU shape used to drain its ready channel
// while holding p.mu, stalling every concurrent GetGemm behind the
// eviction. The drain now happens outside the lock, with the evicted
// flag making racing background fills re-drain their own deposits. The
// storm below forces constant eviction from many goroutines under the
// race detector and then checks the global ready gauge balances — a
// leaked "ready" triplet on a dead bucket would leave it high.
func TestPoolEvictionStormUnderContention(t *testing.T) {
	before := readyTriplets.Load()
	p := New(Config{Depth: 4, MaxShapes: 2, Workers: 4, Seed: 11})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Eight goroutines cycling six shapes through a two-shape
				// bound: nearly every lookup evicts.
				m := 2 + (g+i)%6
				p0, p1 := p.GetGemm(m, 3, 2)
				if p0.Z == nil || p1.Z == nil {
					t.Error("GetGemm returned a nil share")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for readyTriplets.Load() != before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := readyTriplets.Load(); got != before {
		t.Fatalf("ready gauge %d after close, want %d: eviction leaked ready triplets", got, before)
	}
}

// TestStreamSourceDeterminism pins the reproducibility contract the
// dealer tier rests on: stream j of a shape is a pure function of
// (base, shape) — independent of which other shapes were drawn in
// between — and distinct bases yield distinct streams.
func TestStreamSourceDeterminism(t *testing.T) {
	a := NewStreamSource(99)
	b := NewStreamSource(99)
	// Interleave other shapes on a only; the (3,4,5) stream must not care.
	var aT, bT []mpc.TripletShares
	for j := 0; j < 4; j++ {
		p0, p1 := a.Gen(3, 4, 5)
		a.Gen(7, 7, 7)
		a.Gen(2, 9, 2)
		aT = append(aT, p0, p1)
		q0, q1 := b.Gen(3, 4, 5)
		bT = append(bT, q0, q1)
		checkTriplet(t, p0, p1, 3, 4, 5)
	}
	for i := range aT {
		for _, m := range [][2]*tensor.Matrix{{aT[i].U, bT[i].U}, {aT[i].V, bT[i].V}, {aT[i].Z, bT[i].Z}} {
			if !m[0].Equal(m[1]) {
				t.Fatalf("stream element %d differs across instances with the same base", i)
			}
		}
	}
	// A different base diverges immediately.
	c := NewStreamSource(100)
	c0, _ := c.Gen(3, 4, 5)
	if c0.U.Equal(aT[0].U) {
		t.Fatal("distinct bases produced the same stream")
	}
	// And StreamSeed separates shapes: packed dims must not collide for
	// these near-miss geometries.
	if StreamSeed(99, 3, 4, 5) == StreamSeed(99, 3, 5, 4) || StreamSeed(99, 1, 1, 2) == StreamSeed(99, 1, 2, 1) {
		t.Fatal("StreamSeed collides on transposed shapes")
	}
}

// TestPoolWithStreamSource checks the Source seam: a pool over a
// deterministic stream source serves protocol-valid triplets drawn from
// that source's streams.
func TestPoolWithStreamSource(t *testing.T) {
	p := New(Config{Depth: 2, Workers: 1, Source: NewStreamSource(5)})
	defer p.Close()
	p0, p1 := p.GetGemm(4, 3, 2)
	checkTriplet(t, p0, p1, 4, 3, 2)
}
