package tripletpool

import (
	"math"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/mpc"
	"parsecureml/internal/tensor"
)

// checkTriplet verifies a split triplet is protocol-valid: Z0+Z1 =
// (U0+U1)×(V0+V1) within float tolerance, for the requested geometry.
func checkTriplet(t *testing.T, p0, p1 mpc.TripletShares, m, k, n int) {
	t.Helper()
	u := tensor.AddTo(p0.U, p1.U)
	v := tensor.AddTo(p0.V, p1.V)
	z := tensor.AddTo(p0.Z, p1.Z)
	if u.Rows != m || u.Cols != k || v.Rows != k || v.Cols != n || z.Rows != m || z.Cols != n {
		t.Fatalf("triplet geometry: U %dx%d V %dx%d Z %dx%d, want (%d,%d,%d)",
			u.Rows, u.Cols, v.Rows, v.Cols, z.Rows, z.Cols, m, k, n)
	}
	want := tensor.MulTo(u, v)
	for i := range z.Data {
		if d := math.Abs(float64(z.Data[i] - want.Data[i])); d > 1e-3 {
			t.Fatalf("Z[%d] off by %g: triplet does not satisfy Z = U×V", i, d)
		}
	}
}

func TestGetGemmValidTriplets(t *testing.T) {
	p := New(Config{Depth: 2, Workers: 1, Seed: 42})
	defer p.Close()
	for _, g := range [][3]int{{4, 5, 6}, {8, 8, 8}, {1, 16, 3}} {
		p0, p1 := p.GetGemm(g[0], g[1], g[2])
		checkTriplet(t, p0, p1, g[0], g[1], g[2])
	}
}

// TestPoolWarmsObservedShape checks the background workers refill a shape
// after first use, so later Gets are hits.
func TestPoolWarmsObservedShape(t *testing.T) {
	p := New(Config{Depth: 3, Workers: 2, Seed: 1})
	defer p.Close()
	p.GetGemm(6, 6, 6) // miss: registers the shape
	b := p.lookup(shape{6, 6, 6})
	deadline := time.Now().Add(5 * time.Second)
	for len(b.ready) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(b.ready) != 3 {
		t.Fatalf("ready depth %d after warmup, want 3", len(b.ready))
	}
	before := hitsTotal.Load()
	p0, p1 := p.GetGemm(6, 6, 6)
	if hitsTotal.Load() != before+1 {
		t.Fatal("warm Get was not a pool hit")
	}
	checkTriplet(t, p0, p1, 6, 6, 6)
}

// TestPoolLRUEviction checks the shape bound evicts the least recently
// used geometry.
func TestPoolLRUEviction(t *testing.T) {
	p := New(Config{Depth: 1, MaxShapes: 2, Workers: 1, Seed: 7})
	defer p.Close()
	p.GetGemm(2, 2, 2)
	p.GetGemm(3, 3, 3)
	p.GetGemm(2, 2, 2) // refresh (2,2,2): (3,3,3) is now LRU
	p.GetGemm(4, 4, 4) // third shape: evicts (3,3,3)
	p.mu.Lock()
	_, has222 := p.buckets[shape{2, 2, 2}]
	_, has333 := p.buckets[shape{3, 3, 3}]
	_, has444 := p.buckets[shape{4, 4, 4}]
	p.mu.Unlock()
	if !has222 || has333 || !has444 {
		t.Fatalf("buckets after eviction: 222=%v 333=%v 444=%v, want LRU (3,3,3) gone", has222, has333, has444)
	}
}

// TestPoolConcurrentGet hammers the pool from many goroutines under the
// race detector and validates every triplet.
func TestPoolConcurrentGet(t *testing.T) {
	p := New(Config{Depth: 2, Workers: 3, Seed: 9})
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, k, n := 3+g%3, 4, 5
			for i := 0; i < 10; i++ {
				p0, p1 := p.GetGemm(m, k, n)
				u := tensor.AddTo(p0.U, p1.U)
				v := tensor.AddTo(p0.V, p1.V)
				z := tensor.AddTo(p0.Z, p1.Z)
				want := tensor.MulTo(u, v)
				for j := range z.Data {
					if d := math.Abs(float64(z.Data[j] - want.Data[j])); d > 1e-3 {
						errs <- "invalid triplet under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSplitRoundTrip checks Pool.Split produces shares that reconstruct
// the plaintext product via the Eq. 8 party computation.
func TestSplitRoundTrip(t *testing.T) {
	p := New(Config{Depth: 1, Workers: 1, Seed: 3})
	defer p.Close()
	r := p.rng
	a := r.NewUniform(5, 4, -1, 1)
	b := r.NewUniform(4, 6, -1, 1)
	in0, in1 := p.Split(a, b)
	// Reconstruct the secrets from the shares.
	ra := tensor.AddTo(in0.A, in1.A)
	rb := tensor.AddTo(in0.B, in1.B)
	for i := range ra.Data {
		if math.Abs(float64(ra.Data[i]-a.Data[i])) > 1e-5 {
			t.Fatal("A shares do not reconstruct the secret")
		}
	}
	for i := range rb.Data {
		if math.Abs(float64(rb.Data[i]-b.Data[i])) > 1e-5 {
			t.Fatal("B shares do not reconstruct the secret")
		}
	}
	checkTriplet(t, in0.T, in1.T, 5, 4, 6)
}

// TestCloseThenGet checks a closed pool still serves (inline).
func TestCloseThenGet(t *testing.T) {
	p := New(Config{Workers: 1})
	p.Close()
	p0, p1 := p.GetGemm(3, 3, 3)
	checkTriplet(t, p0, p1, 3, 3, 3)
	p.Close() // idempotent
}
