package tripletpool

import (
	"encoding/binary"
	"fmt"

	"parsecureml/internal/mpc"
	"parsecureml/internal/tensor"
)

// Dealer wire protocol. Each server party holds one framed connection
// to the dealer: a hello frame on the raw connection establishes who is
// asking (party and pair), then a comm.Mux takes over with two
// fixed sub-streams — the demand stream (server → dealer WANT frames,
// shape-keyed credit grants) and the feed stream (dealer → server
// triplet shares). Credits are the backpressure: the dealer only ships
// what was asked for, and it only generates ahead of the slower party
// by its configured in-flight bound, so a stalled or dead party caps
// the memory both sides spend on its pair.
//
// Share separation is structural: a FEED frame carries exactly one
// party's (Uᵢ, Vᵢ, Zᵢ) and travels on that party's connection. The two
// halves of one triplet never appear on the same wire.

const (
	// dealerMagic tags dealer-protocol hello frames: "PSTD".
	dealerMagic = 0x50535444
	// dealerProtoVersion is bumped on incompatible frame changes; the
	// dealer rejects mismatches at hello time rather than mid-stream.
	// v2: ctl frames grew a kind tag and the RESUME frame (crash-resume
	// cursors) — v1 peers are rejected at hello time.
	dealerProtoVersion = 2
	// Mux sub-stream ids, fixed by the protocol.
	dealerCtlID  = 1 // server → dealer: WANT / RESUME frames
	dealerFeedID = 2 // dealer → server: FEED frames
)

// Ctl frame kinds (first byte of every frame on dealerCtlID).
const (
	// ctlWant grants incremental credit on an already-resumed stream.
	ctlWant = 0x01
	// ctlResume states the replica's consume cursor for one shape and
	// opens (or re-opens) that stream: the dealer rewinds or
	// fast-forwards to the cursor and replaces any prior credit with the
	// carried count. Sent on first contact per shape and again after
	// every dealer restart; the dealer ignores plain WANTs for a stream
	// until it has seen this link incarnation's RESUME, so credit
	// bookkeeping from a dead dealer can never leak into a fresh one.
	ctlResume = 0x02
)

// helloBytes is the dealer hello frame: magic, version, party, pair id.
const helloBytes = 4 + 4 + 4 + 8

func encodeDealerHello(party int, pairID uint64) []byte {
	buf := make([]byte, helloBytes)
	binary.LittleEndian.PutUint32(buf[0:4], dealerMagic)
	binary.LittleEndian.PutUint32(buf[4:8], dealerProtoVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(party))
	binary.LittleEndian.PutUint64(buf[12:20], pairID)
	return buf
}

func decodeDealerHello(f []byte) (party int, pairID uint64, err error) {
	if len(f) != helloBytes || binary.LittleEndian.Uint32(f[0:4]) != dealerMagic {
		return 0, 0, fmt.Errorf("tripletpool: bad dealer hello frame (%d bytes)", len(f))
	}
	if v := binary.LittleEndian.Uint32(f[4:8]); v != dealerProtoVersion {
		return 0, 0, fmt.Errorf("tripletpool: dealer protocol version %d, want %d", v, dealerProtoVersion)
	}
	party = int(binary.LittleEndian.Uint32(f[8:12]))
	if party != 0 && party != 1 {
		return 0, 0, fmt.Errorf("tripletpool: dealer hello claims party %d", party)
	}
	return party, binary.LittleEndian.Uint64(f[12:20]), nil
}

// wantBytes is a WANT frame: kind tag, shape dimensions, credit count.
const wantBytes = 1 + 4*3 + 4

func encodeWant(s shape, count int) []byte {
	buf := make([]byte, wantBytes)
	buf[0] = ctlWant
	binary.LittleEndian.PutUint32(buf[1:5], uint32(s.M))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(s.K))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(s.N))
	binary.LittleEndian.PutUint32(buf[13:17], uint32(count))
	return buf
}

func decodeWant(f []byte) (shape, int, error) {
	if len(f) != wantBytes || f[0] != ctlWant {
		return shape{}, 0, fmt.Errorf("tripletpool: bad WANT frame (%d bytes)", len(f))
	}
	s, err := decodeCtlShape(f[1:13])
	if err != nil {
		return shape{}, 0, fmt.Errorf("tripletpool: WANT frame: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(f[13:17]))
	if count <= 0 {
		return shape{}, 0, fmt.Errorf("tripletpool: WANT frame with degenerate count %d", count)
	}
	return s, count, nil
}

// resumeBytes is a RESUME frame: kind tag, shape dimensions, the
// replica's consume cursor (next stream seq it needs), credit count.
const resumeBytes = 1 + 4*3 + 8 + 4

func encodeResume(s shape, from uint64, count int) []byte {
	buf := make([]byte, resumeBytes)
	buf[0] = ctlResume
	binary.LittleEndian.PutUint32(buf[1:5], uint32(s.M))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(s.K))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(s.N))
	binary.LittleEndian.PutUint64(buf[13:21], from)
	binary.LittleEndian.PutUint32(buf[21:25], uint32(count))
	return buf
}

func decodeResume(f []byte) (s shape, from uint64, count int, err error) {
	if len(f) != resumeBytes || f[0] != ctlResume {
		return shape{}, 0, 0, fmt.Errorf("tripletpool: bad RESUME frame (%d bytes)", len(f))
	}
	s, err = decodeCtlShape(f[1:13])
	if err != nil {
		return shape{}, 0, 0, fmt.Errorf("tripletpool: RESUME frame: %w", err)
	}
	from = binary.LittleEndian.Uint64(f[13:21])
	count = int(binary.LittleEndian.Uint32(f[21:25]))
	if count < 0 {
		return shape{}, 0, 0, fmt.Errorf("tripletpool: RESUME frame with negative count %d", count)
	}
	return s, from, count, nil
}

// decodeCtlShape validates the 12-byte shape block shared by WANT and
// RESUME frames.
func decodeCtlShape(b []byte) (shape, error) {
	s := shape{
		M: int(binary.LittleEndian.Uint32(b[0:4])),
		K: int(binary.LittleEndian.Uint32(b[4:8])),
		N: int(binary.LittleEndian.Uint32(b[8:12])),
	}
	if s.M <= 0 || s.K <= 0 || s.N <= 0 {
		return shape{}, fmt.Errorf("degenerate shape %dx%dx%d", s.M, s.K, s.N)
	}
	return s, nil
}

// feedHeaderBytes prefixes a FEED frame: shape dimensions plus the
// triplet's stream sequence number, ahead of the encoded U, V, Z.
const feedHeaderBytes = 4*3 + 8

func appendFeedFrame(buf []byte, s shape, seq uint64, t mpc.TripletShares) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.M))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.N))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = tensor.EncodeMatrix(buf, t.U)
	buf = tensor.EncodeMatrix(buf, t.V)
	return tensor.EncodeMatrix(buf, t.Z)
}

func decodeFeedFrame(f []byte) (shape, uint64, mpc.TripletShares, error) {
	var t mpc.TripletShares
	if len(f) < feedHeaderBytes {
		return shape{}, 0, t, fmt.Errorf("tripletpool: FEED frame of %d bytes has no header", len(f))
	}
	s := shape{
		M: int(binary.LittleEndian.Uint32(f[0:4])),
		K: int(binary.LittleEndian.Uint32(f[4:8])),
		N: int(binary.LittleEndian.Uint32(f[8:12])),
	}
	seq := binary.LittleEndian.Uint64(f[12:20])
	off := feedHeaderBytes
	mats := [3]*tensor.Matrix{}
	for i := range mats {
		m, n, err := tensor.DecodeMatrix(f[off:])
		if err != nil {
			return shape{}, 0, t, fmt.Errorf("tripletpool: FEED frame matrix %d: %w", i, err)
		}
		mats[i] = m
		off += n
	}
	if off != len(f) {
		return shape{}, 0, t, fmt.Errorf("tripletpool: FEED frame has %d trailing bytes", len(f)-off)
	}
	t = mpc.TripletShares{U: mats[0], V: mats[1], Z: mats[2]}
	if t.U.Rows != s.M || t.U.Cols != s.K || t.V.Rows != s.K || t.V.Cols != s.N || t.Z.Rows != s.M || t.Z.Cols != s.N {
		return shape{}, 0, mpc.TripletShares{}, fmt.Errorf("tripletpool: FEED frame geometry does not match its %dx%dx%d header", s.M, s.K, s.N)
	}
	return s, seq, t, nil
}
