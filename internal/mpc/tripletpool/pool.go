// Package tripletpool keeps ready-to-use Beaver triplet shares ahead of
// demand — the paper's offline/online separation (§2.2, Eq. 6–8)
// realized as a serving-stack component. The data owner generates
// Z = U×V triplets during the offline phase; online, a request pops a
// ready triplet instead of paying generation latency (dominated by the
// U×V GEMM, §4.2) inline. The pool is shape-keyed: the first request of
// an (m,k,n) geometry generates inline (a miss) and registers the shape;
// background workers then keep a configurable depth of triplets ready
// per observed shape, evicting the least-recently-used shape when too
// many geometries are live. Generation runs on the thread-safe MT19937
// block streams of rng.Pool (§5.1's thread-local generators).
package tripletpool

import (
	"sync"
	"sync/atomic"

	"parsecureml/internal/mpc"
	"parsecureml/internal/obs"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Config tunes a Pool. The zero value selects the stated defaults.
type Config struct {
	// Depth is the target number of ready triplets per observed shape.
	// Default 4.
	Depth int
	// MaxShapes bounds the distinct (m,k,n) geometries kept warm; the
	// least recently used shape is evicted (its ready triplets dropped)
	// when a new shape would exceed the bound. Default 32.
	MaxShapes int
	// Workers is the number of background generator goroutines.
	// Default 2.
	Workers int
	// Seed seeds the pool's random source. The zero seed is valid.
	// Ignored when Source is set.
	Seed uint64
	// Source supplies the triplets. Nil selects local generation from
	// Seed (NewLocalSource) — the classic client-as-dealer role. A
	// dealer-backed deployment plugs a different Source here; the pool's
	// shape tracking, depth and LRU behavior are identical either way.
	Source Source
}

// Source produces both parties' shares of one ready Beaver triplet for
// a GEMM geometry. Implementations must be safe for concurrent use —
// the pool's background workers call Gen from several goroutines.
// NewLocalSource is the in-process default; NewStreamSource is the
// deterministic per-shape variant the dealer tier uses.
type Source interface {
	Gen(m, k, n int) (p0, p1 mpc.TripletShares)
}

// localSource generates triplets from one shared thread-safe rng.Pool.
type localSource struct{ rng *rng.Pool }

// NewLocalSource returns the default Source: wall-clock triplet
// generation on seed's MT19937 block streams (paper §5.1).
func NewLocalSource(seed uint64) Source {
	return localSource{rng: rng.NewPool(seed)}
}

func (s localSource) Gen(m, k, n int) (p0, p1 mpc.TripletShares) {
	return mpc.GenGemmTripletShares(s.rng, m, k, n)
}

// StreamSeed mixes a base seed with a GEMM geometry into the seed of
// that shape's triplet stream (splitmix64 finalizer over the packed
// dimensions). Every consumer that needs the dealer's exact triplet
// sequence for a shape — the dealer itself, a reference client in a
// bit-identity drill — derives it from the same base seed through this
// function.
func StreamSeed(base uint64, m, k, n int) uint64 {
	z := base ^ (uint64(m)<<42 + uint64(k)<<21 + uint64(n)) ^ 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamSource is a per-shape deterministic Source: the j-th Gen call
// for shape (m,k,n) yields the same triplet regardless of what other
// shapes were drawn in between, because every shape has its own
// StreamSeed-derived rng.Pool. This is what makes a dealer-fed fleet
// reproducible against a client-dealt reference run.
type streamSource struct {
	base  uint64
	mu    sync.Mutex
	pools map[shape]*rng.Pool
}

// NewStreamSource returns a Source whose triplet sequence per shape is
// a pure function of (base, shape): stream j of shape s is identical
// across processes and runs. Use distinct bases for distinct server
// pairs in deployments where triplet reuse across pairs matters.
func NewStreamSource(base uint64) Source {
	return &streamSource{base: base, pools: make(map[shape]*rng.Pool)}
}

func (s *streamSource) Gen(m, k, n int) (p0, p1 mpc.TripletShares) {
	sh := shape{M: m, K: k, N: n}
	s.mu.Lock()
	p, ok := s.pools[sh]
	if !ok {
		p = rng.NewPool(StreamSeed(s.base, m, k, n))
		s.pools[sh] = p
	}
	s.mu.Unlock()
	// Serialize draws per shape: a stream's j-th triplet must not depend
	// on concurrent draws of the same shape interleaving their fills.
	// (Distinct shapes still generate concurrently — each has its own
	// pool — and the per-shape lock only matters to the dealer tier,
	// whose per-shape generation is sequential anyway.)
	s.mu.Lock()
	defer s.mu.Unlock()
	return mpc.GenGemmTripletShares(p, m, k, n)
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// Stats is a snapshot of pool effectiveness counters.
type Stats struct {
	Ready         int64 // triplets currently ready across all shapes
	Hits          int64 // Gets served from precomputed triplets
	Misses        int64 // Gets that generated inline
	Generated     int64 // triplets generated (inline + background)
	EvictedShapes int64 // shapes evicted by the LRU bound
}

// Process-wide accounting across every Pool, mirrored to obs in init —
// the pool-depth gauge the serving dashboards watch.
var (
	readyTriplets atomic.Int64
	hitsTotal     atomic.Int64
	missesTotal   atomic.Int64
	genTotal      atomic.Int64
	evictedShapes atomic.Int64
)

// Totals returns process-wide accounting across every Pool.
func Totals() Stats {
	return Stats{
		Ready:         readyTriplets.Load(),
		Hits:          hitsTotal.Load(),
		Misses:        missesTotal.Load(),
		Generated:     genTotal.Load(),
		EvictedShapes: evictedShapes.Load(),
	}
}

func init() {
	obs.Default.FuncGauge("psml_triplet_pool_ready", "Beaver triplets precomputed and ready across all shapes.", func() float64 {
		return float64(readyTriplets.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_hits_total", "Triplet Gets served from the precompute pool.", func() float64 {
		return float64(hitsTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_misses_total", "Triplet Gets that paid generation latency inline.", func() float64 {
		return float64(missesTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_generated_total", "Beaver triplets generated (inline and background).", func() float64 {
		return float64(genTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_evicted_shapes_total", "Shapes evicted from the precompute pool by the LRU bound.", func() float64 {
		return float64(evictedShapes.Load())
	})
}

// shape is a GEMM geometry key: (m×k)·(k×n).
type shape struct{ M, K, N int }

// pair is both parties' shares of one triplet, as GenGemmTripletShares
// returns them.
type pair struct{ p0, p1 mpc.TripletShares }

// bucket holds the ready triplets of one shape.
type bucket struct {
	shape   shape
	ready   chan pair
	queued  atomic.Int32 // background generations in flight
	evicted atomic.Bool
	lastUse atomic.Int64 // LRU clock tick of the last Get
}

// Pool precomputes Beaver triplet shares per observed GEMM shape. Safe
// for concurrent use.
type Pool struct {
	cfg  Config
	rng  *rng.Pool
	src  Source
	stop chan struct{}
	wg   sync.WaitGroup

	refill chan *bucket

	clock atomic.Int64 // LRU ticks

	mu      sync.Mutex
	buckets map[shape]*bucket
	closed  bool
}

// New starts a Pool and its background generator workers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	src := cfg.Source
	if src == nil {
		src = NewLocalSource(cfg.Seed)
	}
	p := &Pool{
		cfg:     cfg,
		rng:     rng.NewPool(cfg.Seed),
		src:     src,
		stop:    make(chan struct{}),
		refill:  make(chan *bucket, cfg.MaxShapes*cfg.Depth),
		buckets: make(map[shape]*bucket),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Close stops the background workers and drops every ready triplet.
// Gets after Close still work — they generate inline.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	buckets := p.buckets
	p.buckets = map[shape]*bucket{}
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	for _, b := range buckets {
		b.evicted.Store(true)
		drain(b)
	}
}

// drain drops b's ready triplets (eviction or shutdown).
func drain(b *bucket) {
	for {
		select {
		case <-b.ready:
			readyTriplets.Add(-1)
		default:
			return
		}
	}
}

// worker generates triplets for buckets queued on the refill channel.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case b := <-p.refill:
			if b.evicted.Load() {
				b.queued.Add(-1)
				continue
			}
			pr := p.gen(b.shape)
			select {
			case b.ready <- pr:
				readyTriplets.Add(1)
				if b.evicted.Load() {
					// Raced with eviction: make sure nothing is leaked
					// as "ready" on a dead bucket.
					drain(b)
				}
			default:
				// Depth reached in the meantime: drop the extra.
			}
			b.queued.Add(-1)
		}
	}
}

// gen produces one triplet pair for s from the configured Source.
func (p *Pool) gen(s shape) pair {
	p0, p1 := p.src.Gen(s.M, s.K, s.N)
	genTotal.Add(1)
	return pair{p0: p0, p1: p1}
}

// topUp queues background generations until b's ready depth plus its
// in-flight generations reach the configured depth.
func (p *Pool) topUp(b *bucket) {
	for {
		q := b.queued.Load()
		if int(q)+len(b.ready) >= p.cfg.Depth || b.evicted.Load() {
			return
		}
		if !b.queued.CompareAndSwap(q, q+1) {
			continue
		}
		select {
		case p.refill <- b:
		default:
			b.queued.Add(-1)
			return
		}
	}
}

// lookup returns the bucket for s, creating it (and evicting the LRU
// shape over the MaxShapes bound) on first sight. Returns nil when the
// pool is closed.
func (p *Pool) lookup(s shape) *bucket {
	var evictedBuckets []*bucket
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	if b, ok := p.buckets[s]; ok {
		p.mu.Unlock()
		return b
	}
	for len(p.buckets) >= p.cfg.MaxShapes {
		var lru *bucket
		for _, b := range p.buckets {
			if lru == nil || b.lastUse.Load() < lru.lastUse.Load() {
				lru = b
			}
		}
		delete(p.buckets, lru.shape)
		lru.evicted.Store(true)
		evictedBuckets = append(evictedBuckets, lru)
		evictedShapes.Add(1)
	}
	b := &bucket{shape: s, ready: make(chan pair, p.cfg.Depth)}
	b.lastUse.Store(p.clock.Add(1))
	p.buckets[s] = b
	p.mu.Unlock()
	// Drain evicted buckets after releasing p.mu: the drain walks up to
	// Depth channel receives, and doing that under the lock stalled every
	// concurrent GetGemm behind the eviction. The evicted flag is already
	// set, so workers racing a late fill re-drain their own deposit.
	for _, e := range evictedBuckets {
		drain(e)
	}
	return b
}

// GetGemm returns both parties' shares of a Beaver triplet for an
// (m×k)·(k×n) multiplication: from the precompute pool when one is
// ready (scheduling a background refill), generated inline otherwise.
func (p *Pool) GetGemm(m, k, n int) (p0, p1 mpc.TripletShares) {
	s := shape{M: m, K: k, N: n}
	b := p.lookup(s)
	if b == nil {
		missesTotal.Add(1)
		pr := p.gen(s)
		return pr.p0, pr.p1
	}
	b.lastUse.Store(p.clock.Add(1))
	select {
	case pr := <-b.ready:
		readyTriplets.Add(-1)
		hitsTotal.Add(1)
		p.topUp(b)
		return pr.p0, pr.p1
	default:
	}
	missesTotal.Add(1)
	p.topUp(b)
	pr := p.gen(s)
	return pr.p0, pr.p1
}

// Split prepares both servers' inputs for one secure multiplication of
// a×b: input shares (§2.2) plus a pooled triplet. The complete
// client-side request prep, safe for concurrent use — what Client.Split
// + Client.GenGemmTriplet do for the simulator, for the serving path.
func (p *Pool) Split(a, b *tensor.Matrix) (in0, in1 mpc.Shares) {
	a0, a1 := mpc.SplitRand(p.rng, a)
	b0, b1 := mpc.SplitRand(p.rng, b)
	t0, t1 := p.GetGemm(a.Rows, a.Cols, b.Cols)
	return mpc.Shares{A: a0, B: b0, T: t0}, mpc.Shares{A: a1, B: b1, T: t1}
}
