// Package tripletpool keeps ready-to-use Beaver triplet shares ahead of
// demand — the paper's offline/online separation (§2.2, Eq. 6–8)
// realized as a serving-stack component. The data owner generates
// Z = U×V triplets during the offline phase; online, a request pops a
// ready triplet instead of paying generation latency (dominated by the
// U×V GEMM, §4.2) inline. The pool is shape-keyed: the first request of
// an (m,k,n) geometry generates inline (a miss) and registers the shape;
// background workers then keep a configurable depth of triplets ready
// per observed shape, evicting the least-recently-used shape when too
// many geometries are live. Generation runs on the thread-safe MT19937
// block streams of rng.Pool (§5.1's thread-local generators).
package tripletpool

import (
	"sync"
	"sync/atomic"

	"parsecureml/internal/mpc"
	"parsecureml/internal/obs"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Config tunes a Pool. The zero value selects the stated defaults.
type Config struct {
	// Depth is the target number of ready triplets per observed shape.
	// Default 4.
	Depth int
	// MaxShapes bounds the distinct (m,k,n) geometries kept warm; the
	// least recently used shape is evicted (its ready triplets dropped)
	// when a new shape would exceed the bound. Default 32.
	MaxShapes int
	// Workers is the number of background generator goroutines.
	// Default 2.
	Workers int
	// Seed seeds the pool's random source. The zero seed is valid.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 32
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	return c
}

// Stats is a snapshot of pool effectiveness counters.
type Stats struct {
	Ready         int64 // triplets currently ready across all shapes
	Hits          int64 // Gets served from precomputed triplets
	Misses        int64 // Gets that generated inline
	Generated     int64 // triplets generated (inline + background)
	EvictedShapes int64 // shapes evicted by the LRU bound
}

// Process-wide accounting across every Pool, mirrored to obs in init —
// the pool-depth gauge the serving dashboards watch.
var (
	readyTriplets atomic.Int64
	hitsTotal     atomic.Int64
	missesTotal   atomic.Int64
	genTotal      atomic.Int64
	evictedShapes atomic.Int64
)

// Totals returns process-wide accounting across every Pool.
func Totals() Stats {
	return Stats{
		Ready:         readyTriplets.Load(),
		Hits:          hitsTotal.Load(),
		Misses:        missesTotal.Load(),
		Generated:     genTotal.Load(),
		EvictedShapes: evictedShapes.Load(),
	}
}

func init() {
	obs.Default.FuncGauge("psml_triplet_pool_ready", "Beaver triplets precomputed and ready across all shapes.", func() float64 {
		return float64(readyTriplets.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_hits_total", "Triplet Gets served from the precompute pool.", func() float64 {
		return float64(hitsTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_misses_total", "Triplet Gets that paid generation latency inline.", func() float64 {
		return float64(missesTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_generated_total", "Beaver triplets generated (inline and background).", func() float64 {
		return float64(genTotal.Load())
	})
	obs.Default.FuncCounter("psml_triplet_pool_evicted_shapes_total", "Shapes evicted from the precompute pool by the LRU bound.", func() float64 {
		return float64(evictedShapes.Load())
	})
}

// shape is a GEMM geometry key: (m×k)·(k×n).
type shape struct{ M, K, N int }

// pair is both parties' shares of one triplet, as GenGemmTripletShares
// returns them.
type pair struct{ p0, p1 mpc.TripletShares }

// bucket holds the ready triplets of one shape.
type bucket struct {
	shape   shape
	ready   chan pair
	queued  atomic.Int32 // background generations in flight
	evicted atomic.Bool
	lastUse atomic.Int64 // LRU clock tick of the last Get
}

// Pool precomputes Beaver triplet shares per observed GEMM shape. Safe
// for concurrent use.
type Pool struct {
	cfg  Config
	rng  *rng.Pool
	stop chan struct{}
	wg   sync.WaitGroup

	refill chan *bucket

	clock atomic.Int64 // LRU ticks

	mu      sync.Mutex
	buckets map[shape]*bucket
	closed  bool
}

// New starts a Pool and its background generator workers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:     cfg,
		rng:     rng.NewPool(cfg.Seed),
		stop:    make(chan struct{}),
		refill:  make(chan *bucket, cfg.MaxShapes*cfg.Depth),
		buckets: make(map[shape]*bucket),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Close stops the background workers and drops every ready triplet.
// Gets after Close still work — they generate inline.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	buckets := p.buckets
	p.buckets = map[shape]*bucket{}
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	for _, b := range buckets {
		b.evicted.Store(true)
		drain(b)
	}
}

// drain drops b's ready triplets (eviction or shutdown).
func drain(b *bucket) {
	for {
		select {
		case <-b.ready:
			readyTriplets.Add(-1)
		default:
			return
		}
	}
}

// worker generates triplets for buckets queued on the refill channel.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case b := <-p.refill:
			if b.evicted.Load() {
				b.queued.Add(-1)
				continue
			}
			pr := p.gen(b.shape)
			select {
			case b.ready <- pr:
				readyTriplets.Add(1)
				if b.evicted.Load() {
					// Raced with eviction: make sure nothing is leaked
					// as "ready" on a dead bucket.
					drain(b)
				}
			default:
				// Depth reached in the meantime: drop the extra.
			}
			b.queued.Add(-1)
		}
	}
}

// gen produces one triplet pair for s.
func (p *Pool) gen(s shape) pair {
	p0, p1 := mpc.GenGemmTripletShares(p.rng, s.M, s.K, s.N)
	genTotal.Add(1)
	return pair{p0: p0, p1: p1}
}

// topUp queues background generations until b's ready depth plus its
// in-flight generations reach the configured depth.
func (p *Pool) topUp(b *bucket) {
	for {
		q := b.queued.Load()
		if int(q)+len(b.ready) >= p.cfg.Depth || b.evicted.Load() {
			return
		}
		if !b.queued.CompareAndSwap(q, q+1) {
			continue
		}
		select {
		case p.refill <- b:
		default:
			b.queued.Add(-1)
			return
		}
	}
}

// lookup returns the bucket for s, creating it (and evicting the LRU
// shape over the MaxShapes bound) on first sight. Returns nil when the
// pool is closed.
func (p *Pool) lookup(s shape) *bucket {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if b, ok := p.buckets[s]; ok {
		return b
	}
	for len(p.buckets) >= p.cfg.MaxShapes {
		var lru *bucket
		for _, b := range p.buckets {
			if lru == nil || b.lastUse.Load() < lru.lastUse.Load() {
				lru = b
			}
		}
		delete(p.buckets, lru.shape)
		lru.evicted.Store(true)
		drain(lru)
		evictedShapes.Add(1)
	}
	b := &bucket{shape: s, ready: make(chan pair, p.cfg.Depth)}
	b.lastUse.Store(p.clock.Add(1))
	p.buckets[s] = b
	return b
}

// GetGemm returns both parties' shares of a Beaver triplet for an
// (m×k)·(k×n) multiplication: from the precompute pool when one is
// ready (scheduling a background refill), generated inline otherwise.
func (p *Pool) GetGemm(m, k, n int) (p0, p1 mpc.TripletShares) {
	s := shape{M: m, K: k, N: n}
	b := p.lookup(s)
	if b == nil {
		missesTotal.Add(1)
		pr := p.gen(s)
		return pr.p0, pr.p1
	}
	b.lastUse.Store(p.clock.Add(1))
	select {
	case pr := <-b.ready:
		readyTriplets.Add(-1)
		hitsTotal.Add(1)
		p.topUp(b)
		return pr.p0, pr.p1
	default:
	}
	missesTotal.Add(1)
	p.topUp(b)
	pr := p.gen(s)
	return pr.p0, pr.p1
}

// Split prepares both servers' inputs for one secure multiplication of
// a×b: input shares (§2.2) plus a pooled triplet. The complete
// client-side request prep, safe for concurrent use — what Client.Split
// + Client.GenGemmTriplet do for the simulator, for the serving path.
func (p *Pool) Split(a, b *tensor.Matrix) (in0, in1 mpc.Shares) {
	a0, a1 := mpc.SplitRand(p.rng, a)
	b0, b1 := mpc.SplitRand(p.rng, b)
	t0, t1 := p.GetGemm(a.Rows, a.Cols, b.Cols)
	return mpc.Shares{A: a0, B: b0, T: t0}, mpc.Shares{A: a1, B: b1, T: t1}
}
