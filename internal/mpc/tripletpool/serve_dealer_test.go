package tripletpool

import (
	"context"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// startFedPair runs a ServeClients pair whose parties draw triplets
// from feeds instead of client uploads, over a real TCP peer link.
func startFedPair(t *testing.T, cfg0, cfg1 mpc.ServeConfig) (addr0, addr1 string, shutdown func()) {
	t.Helper()
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		peer, err := comm.Accept(peerLn)
		peerLn.Close()
		if err != nil {
			t.Errorf("peer accept: %v", err)
			return
		}
		defer peer.Close()
		if err := mpc.ServeClients(ctx, 0, ln0, peer, cfg0); err != nil {
			t.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		peer, err := comm.DialRetry(peerLn.Addr().String(), comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
		if err != nil {
			t.Errorf("peer dial: %v", err)
			return
		}
		defer peer.Close()
		if err := mpc.ServeClients(ctx, 1, ln1, peer, cfg1); err != nil {
			t.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

func dialBoth(t *testing.T, addr0, addr1 string) (c0, c1 *comm.Conn) {
	t.Helper()
	c0, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 20, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c1, err = comm.DialRetry(addr1, comm.RetryConfig{Attempts: 20, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		c0.Close()
		t.Fatal(err)
	}
	c0.SetTimeouts(20*time.Second, 20*time.Second)
	c1.SetTimeouts(20*time.Second, 20*time.Second)
	return c0, c1
}

// TestDealerFedServingBitIdentical is the deviation-retirement proof:
// a pair fed by cmd/psml-dealer's protocol serves requests whose
// results are BIT-identical to the classic client-as-dealer path given
// the same splits and the same (seeded) triplet stream — floating-point
// rounding makes anything weaker meaningless. Requests upload only A/B
// shares (the 2-matrix wire form); the parties agree on the triplet via
// the seq announcement and pull complementary halves from the dealer.
func TestDealerFedServingBitIdentical(t *testing.T) {
	const dealerSeed = 777
	addr, _ := startDealer(t, DealerConfig{Seed: dealerSeed})

	serveCfg := mpc.ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
	}
	cfg0, cfg1 := serveCfg, serveCfg
	feed0, err := NewDealerClient(feedConnect(addr), 0, 1, FeedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer feed0.Close()
	feed1, err := NewDealerClient(feedConnect(addr), 1, 1, FeedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer feed1.Close()
	cfg0.Feed, cfg1.Feed = feed0, feed1

	fedAddr0, fedAddr1, stopFed := startFedPair(t, cfg0, cfg1)
	defer stopFed()
	refAddr0, refAddr1, stopRef := startFedPair(t, serveCfg, serveCfg)
	defer stopRef()

	fed0c, fed1c := dialBoth(t, fedAddr0, fedAddr1)
	defer fed0c.Close()
	defer fed1c.Close()
	ref0c, ref1c := dialBoth(t, refAddr0, refAddr1)
	defer ref0c.Close()
	defer ref1c.Close()

	// The reference client deals triplets itself from the dealer's
	// stream: same base seed, same per-shape sequence.
	refSrc := NewStreamSource(dealerSeed)
	split := rng.NewPool(4)
	for round := 0; round < 4; round++ {
		m, k, n := 5+round, 7, 6
		a := split.NewUniform(m, k, -1, 1)
		b := split.NewUniform(k, n, -1, 1)
		a0, a1 := mpc.SplitRand(split, a)
		b0, b1 := mpc.SplitRand(split, b)
		id := uint64(0x1000 + round)

		// Dealer-fed: T stays zero; the pair pulls stream seq `round`
		// of this round's shape (each round uses a fresh shape, so the
		// per-shape seq is 0 — matching the reference's first Gen).
		got, err := mpc.RequestMulID(id, fed0c, fed1c,
			mpc.Shares{A: a0, B: b0}, mpc.Shares{A: a1, B: b1})
		if err != nil {
			t.Fatalf("round %d dealer-fed request: %v", round, err)
		}

		t0, t1 := refSrc.Gen(m, k, n)
		want, err := mpc.RequestMulID(id, ref0c, ref1c,
			mpc.Shares{A: a0, B: b0, T: t0}, mpc.Shares{A: a1, B: b1, T: t1})
		if err != nil {
			t.Fatalf("round %d reference request: %v", round, err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: dealer-fed result differs from the client-dealt reference by %v",
				round, got.MaxAbsDiff(want))
		}
		if !got.ApproxEqual(tensor.MulNaive(a, b), 1e-3) {
			t.Fatalf("round %d: served product off the plaintext by %v",
				round, got.MaxAbsDiff(tensor.MulNaive(a, b)))
		}
	}
}

// TestDealerFedServingConcurrentSessions hammers one dealer-fed pair
// with concurrent clients on one shape: the seq announcement must keep
// every request's two halves complementary no matter how draws
// interleave, which plaintext correctness on every result verifies
// (mismatched halves yield garbage, not small error).
func TestDealerFedServingConcurrentSessions(t *testing.T) {
	addr, _ := startDealer(t, DealerConfig{Seed: 5})
	serveCfg := mpc.ServeConfig{
		ClientTimeout: 20 * time.Second,
		PeerTimeout:   20 * time.Second,
	}
	cfg0, cfg1 := serveCfg, serveCfg
	for party, into := range []*mpc.ServeConfig{&cfg0, &cfg1} {
		feed, err := NewDealerClient(feedConnect(addr), party, 1, FeedConfig{Depth: 32})
		if err != nil {
			t.Fatal(err)
		}
		defer feed.Close()
		into.Feed = feed
	}
	addr0, addr1, stop := startFedPair(t, cfg0, cfg1)
	defer stop()

	const clients = 6
	const rounds = 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			c0, c1 := dialBoth(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			p := rng.NewPool(uint64(100 + c))
			for r := 0; r < rounds; r++ {
				a := p.NewUniform(6, 8, -1, 1)
				b := p.NewUniform(8, 4, -1, 1)
				a0, a1 := mpc.SplitRand(p, a)
				b0, b1 := mpc.SplitRand(p, b)
				id := uint64(c)<<32 | uint64(r) | 1<<60
				got, err := mpc.RequestMulID(id, c0, c1,
					mpc.Shares{A: a0, B: b0}, mpc.Shares{A: a1, B: b1})
				if err != nil {
					t.Errorf("client %d round %d: %v", c, r, err)
					return
				}
				if !got.ApproxEqual(tensor.MulNaive(a, b), 1e-3) {
					t.Errorf("client %d round %d: product off by %v — triplet halves disagreed",
						c, r, got.MaxAbsDiff(tensor.MulNaive(a, b)))
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
