package tripletpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parsecureml/internal/comm"
	"parsecureml/internal/mpc"
	"parsecureml/internal/obs"
)

// DealerClient is a computation party's end of the dealer feed: an
// mpc.TripletFeed backed by one connection to cmd/psml-dealer. It
// receives only THIS party's triplet halves — the share-separation
// invariant holds on the wire, not just in process memory. Credits
// (WANT frames) are issued lazily per shape, keeping Depth triplets of
// headroom beyond what has been consumed, so the dealer's generation
// follows observed demand instead of guessing shapes up front.
//
// A dead dealer connection fails the feed permanently: every blocked
// and future Next/Take returns the link error, which the serving loop
// surfaces as request failures. In a fleet deployment that is a replica
// failure — the router re-routes the replica's sessions — not a
// recovery problem this client solves.
type DealerClient struct {
	party int
	depth int
	mux   *comm.Mux
	ctl   *comm.MuxSession
	conn  *comm.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	shapes map[shape]*feedShape
	err    error
}

// feedShape is one shape's slice of the feed: delivered-but-unconsumed
// triplets keyed by stream seq, plus the consume and credit cursors.
type feedShape struct {
	buf       map[uint64]mpc.TripletShares
	low       uint64 // lowest seq not yet consumed via Next
	requested uint64 // total credits sent for this shape
}

// FeedConfig tunes a DealerClient. The zero value selects the defaults.
type FeedConfig struct {
	// Depth is the per-shape credit headroom kept beyond consumption —
	// the feed-side analogue of Config.Depth. Default 8.
	Depth int
}

// Feed accounting, exposed as psml_triplet_feed_* metrics.
var (
	feedReceived atomic.Int64
	feedBuffered atomic.Int64
	feedWaits    = obs.Default.Histogram("psml_triplet_feed_wait_seconds", "Time requests block waiting for a dealer-fed triplet to arrive.")
)

func init() {
	obs.Default.FuncCounter("psml_triplet_feed_received_total", "Triplet share halves received from the dealer.", func() float64 {
		return float64(feedReceived.Load())
	})
	obs.Default.FuncGauge("psml_triplet_feed_buffered", "Dealer-fed triplet halves delivered but not yet consumed.", func() float64 {
		return float64(feedBuffered.Load())
	})
}

// NewDealerClient registers party under pairID with the dealer over
// conn (freshly dialed, e.g. comm.DialRetry) and starts the feed. The
// connection is owned by the client from here on.
func NewDealerClient(conn *comm.Conn, party int, pairID uint64, cfg FeedConfig) (*DealerClient, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = 8
	}
	if err := conn.WriteFrame(encodeDealerHello(party, pairID)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tripletpool: dealer hello: %w", err)
	}
	mux := comm.NewMux(conn, comm.MuxConfig{})
	ctl, err := mux.Open(dealerCtlID)
	if err != nil {
		mux.Close()
		return nil, err
	}
	feed, err := mux.Open(dealerFeedID)
	if err != nil {
		mux.Close()
		return nil, err
	}
	c := &DealerClient{
		party:  party,
		depth:  cfg.Depth,
		mux:    mux,
		ctl:    ctl,
		conn:   conn,
		shapes: make(map[shape]*feedShape),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop(feed)
	return c, nil
}

// Close tears the feed down; blocked Next/Take calls fail.
func (c *DealerClient) Close() {
	c.mux.Close()
	c.conn.Close()
	c.failLocked(fmt.Errorf("tripletpool: dealer feed closed"))
}

func (c *DealerClient) failLocked(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// readLoop dispatches FEED frames into per-shape buffers.
func (c *DealerClient) readLoop(feed *comm.MuxSession) {
	for {
		f, err := feed.ReadFrame()
		if err != nil {
			c.failLocked(fmt.Errorf("tripletpool: dealer feed: %w", err))
			return
		}
		s, seq, t, err := decodeFeedFrame(f)
		if err != nil {
			c.failLocked(err)
			return
		}
		feedReceived.Add(1)
		feedBuffered.Add(1)
		c.mu.Lock()
		c.shape(s).buf[seq] = t
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// shape returns s's state, creating it. Caller holds c.mu.
func (c *DealerClient) shape(s shape) *feedShape {
	fs, ok := c.shapes[s]
	if !ok {
		fs = &feedShape{buf: make(map[uint64]mpc.TripletShares)}
		c.shapes[s] = fs
	}
	return fs
}

// ensureCredit tops the shape's outstanding credits up to cover seq
// `need` plus the configured headroom. Caller holds c.mu; the WANT
// write happens without dropping it (mux writes only enqueue).
func (c *DealerClient) ensureCredit(s shape, fs *feedShape, need uint64) error {
	target := need + 1 + uint64(c.depth)
	if fs.requested >= target {
		return nil
	}
	grant := target - fs.requested
	if err := c.ctl.WriteFrame(encodeWant(s, int(grant))); err != nil {
		return fmt.Errorf("tripletpool: dealer WANT: %w", err)
	}
	fs.requested = target
	return nil
}

// Next implements mpc.TripletFeed: pop this party's share of the next
// unconsumed triplet in s's stream, waiting for the dealer if none has
// arrived yet.
func (c *DealerClient) Next(m, k, n int) (uint64, mpc.TripletShares, error) {
	s := shape{M: m, K: k, N: n}
	span := feedWaits.Start()
	defer span.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.shape(s)
	seq := fs.low
	fs.low++
	return seq, c.waitLocked(s, fs, seq), c.err
}

// Take implements mpc.TripletFeed: the share of triplet seq of s's
// stream, waiting for delivery.
func (c *DealerClient) Take(m, k, n int, seq uint64) (mpc.TripletShares, error) {
	s := shape{M: m, K: k, N: n}
	span := feedWaits.Start()
	defer span.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.shape(s)
	if seq >= fs.low {
		fs.low = seq + 1
	}
	return c.waitLocked(s, fs, seq), c.err
}

// waitLocked blocks until triplet seq of shape s arrives (issuing
// credits to cover it) and pops it. On feed failure it returns the zero
// value and leaves the error in c.err for the caller to surface.
func (c *DealerClient) waitLocked(s shape, fs *feedShape, seq uint64) mpc.TripletShares {
	for {
		if c.err != nil {
			return mpc.TripletShares{}
		}
		if err := c.ensureCredit(s, fs, seq); err != nil {
			if c.err == nil {
				c.err = err
			}
			return mpc.TripletShares{}
		}
		if t, ok := fs.buf[seq]; ok {
			delete(fs.buf, seq)
			feedBuffered.Add(-1)
			return t
		}
		c.cond.Wait()
	}
}
