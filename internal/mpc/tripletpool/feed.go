package tripletpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"parsecureml/internal/comm"
	"parsecureml/internal/mpc"
	"parsecureml/internal/obs"
)

// DealerClient is a computation party's end of the dealer feed: an
// mpc.TripletFeed backed by one supervised connection to
// cmd/psml-dealer. It receives only THIS party's triplet halves — the
// share-separation invariant holds on the wire, not just in process
// memory. Credits (WANT frames) are issued lazily per shape, keeping
// Depth triplets of headroom beyond what has been consumed, so the
// dealer's generation follows observed demand instead of guessing
// shapes up front.
//
// The connection runs under comm.SupervisedLink with AllowPeerRestart:
// a dealer crash (or standby takeover) is an outage, not a failure.
// The client tracks a per-shape consumption floor (the lowest seq no
// session has consumed yet); when the link reconnects to a dealer with
// fresh state, every shape's stream is re-opened with a RESUME frame
// carrying that floor, and the deterministic
// (seed, shape, seq) streams make the resumed triplets bit-identical
// to the ones the dead dealer would have sent. Only exhausting the
// link's reconnect budget fails the feed permanently.
type DealerClient struct {
	party int
	depth int
	link  *comm.SupervisedLink
	mux   *comm.Mux
	ctl   *comm.MuxSession

	mu     sync.Mutex
	cond   *sync.Cond
	shapes map[shape]*feedShape
	err    error
}

// feedShape is one shape's slice of the feed: delivered-but-unconsumed
// triplets keyed by stream seq, the allocation and consumption cursors,
// and the credit high-water.
//
// Consumption is out of order: concurrent sessions Take announced seqs
// in whatever order their exchanges land. floor is the lowest seq not
// yet consumed and done records the holes above it, so floor — the
// stream position a RESUME re-opens from — never skips a seq some
// session still needs.
type feedShape struct {
	buf       map[uint64]mpc.TripletShares
	next      uint64              // next seq Next will allocate
	floor     uint64              // lowest seq not yet consumed
	done      map[uint64]struct{} // consumed seqs above floor (out-of-order holes)
	requested uint64              // credit high-water: seqs below this are covered
	resumed   bool                // RESUME sent on the current link incarnation
}

// consume marks seq consumed and slides floor over any contiguous run
// of done seqs. Caller holds c.mu.
func (fs *feedShape) consume(seq uint64) {
	if seq != fs.floor {
		fs.done[seq] = struct{}{}
		return
	}
	fs.floor++
	for {
		if _, ok := fs.done[fs.floor]; !ok {
			return
		}
		delete(fs.done, fs.floor)
		fs.floor++
	}
}

// FeedConfig tunes a DealerClient. The zero value selects the defaults.
type FeedConfig struct {
	// Depth is the per-shape credit headroom kept beyond consumption —
	// the feed-side analogue of Config.Depth. Default 8.
	Depth int
	// Supervisor tunes the underlying supervised link (reconnect budget,
	// heartbeat cadence). AllowPeerRestart is forced on — dealer
	// crash-resume is the point of this client.
	Supervisor comm.SupervisorConfig
}

// Feed accounting, exposed as psml_triplet_feed_* metrics.
var (
	feedReceived atomic.Int64
	feedBuffered atomic.Int64
	feedDups     atomic.Int64
	feedResumes  atomic.Int64
	feedWaits    = obs.Default.Histogram("psml_triplet_feed_wait_seconds", "Time requests block waiting for a dealer-fed triplet to arrive.")
)

func init() {
	obs.Default.FuncCounter("psml_triplet_feed_received_total", "Triplet share halves received from the dealer.", func() float64 {
		return float64(feedReceived.Load())
	})
	obs.Default.FuncGauge("psml_triplet_feed_buffered", "Dealer-fed triplet halves delivered but not yet consumed.", func() float64 {
		return float64(feedBuffered.Load())
	})
	obs.Default.FuncCounter("psml_triplet_feed_duplicates_total", "Duplicate or stale triplet deliveries dropped (resume overlap).", func() float64 {
		return float64(feedDups.Load())
	})
	obs.Default.FuncCounter("psml_dealer_resume_sent_total", "RESUME frames sent to the dealer (stream opens and post-restart re-opens).", func() float64 {
		return float64(feedResumes.Load())
	})
}

// NewDealerClient establishes party's feed under pairID. connect dials
// the dealer and is owned by the client for its lifetime: it is called
// for the initial connection and again after every link failure, so a
// restarted dealer is re-reached automatically (use a plain dial — the
// supervised link owns the retry/backoff policy). The hello frame is
// sent on each fresh connection before the link's resync handshake.
func NewDealerClient(connect func() (*comm.Conn, error), party int, pairID uint64, cfg FeedConfig) (*DealerClient, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = 8
	}
	scfg := cfg.Supervisor
	scfg.AllowPeerRestart = true
	link, err := comm.NewSupervisedLink(func() (comm.Framer, error) {
		conn, err := connect()
		if err != nil {
			return nil, err
		}
		if err := conn.WriteFrame(encodeDealerHello(party, pairID)); err != nil {
			conn.Close()
			return nil, fmt.Errorf("tripletpool: dealer hello: %w", err)
		}
		return conn, nil
	}, scfg)
	if err != nil {
		return nil, err
	}
	mux := comm.NewMux(link, comm.MuxConfig{})
	ctl, err := mux.Open(dealerCtlID)
	if err != nil {
		mux.Close()
		return nil, err
	}
	feed, err := mux.Open(dealerFeedID)
	if err != nil {
		mux.Close()
		return nil, err
	}
	c := &DealerClient{
		party:  party,
		depth:  cfg.Depth,
		link:   link,
		mux:    mux,
		ctl:    ctl,
		shapes: make(map[shape]*feedShape),
	}
	c.cond = sync.NewCond(&c.mu)
	link.OnPeerReset(c.onPeerReset)
	go c.readLoop(feed)
	return c, nil
}

// Close tears the feed down; blocked Next/Take calls fail.
func (c *DealerClient) Close() {
	c.mux.Close()
	c.link.Close()
	c.failLocked(fmt.Errorf("tripletpool: dealer feed closed"))
}

func (c *DealerClient) failLocked(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// onPeerReset runs on the supervisor goroutine after a resync that
// found a restarted dealer: every WANT in flight was shed with the old
// conversation, so mark every stream un-resumed and wake the waiters —
// each re-derives its credit through ensureCredit, which re-opens the
// stream with a RESUME from the earliest seq still needed.
func (c *DealerClient) onPeerReset() {
	c.mu.Lock()
	for _, fs := range c.shapes {
		fs.resumed = false
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// readLoop dispatches FEED frames into per-shape buffers. A resumed
// stream re-delivers from the consumption floor, overlapping what the
// old dealer already handed out, so already-buffered and
// already-consumed seqs are dropped as duplicates.
func (c *DealerClient) readLoop(feed *comm.MuxSession) {
	for {
		f, err := feed.ReadFrame()
		if err != nil {
			c.failLocked(fmt.Errorf("tripletpool: dealer feed: %w", err))
			return
		}
		s, seq, t, err := decodeFeedFrame(f)
		if err != nil {
			c.failLocked(err)
			return
		}
		feedReceived.Add(1)
		c.mu.Lock()
		fs := c.shape(s)
		_, dup := fs.buf[seq]
		_, consumed := fs.done[seq]
		if dup || consumed || seq < fs.floor {
			feedDups.Add(1)
		} else {
			fs.buf[seq] = t
			feedBuffered.Add(1)
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// shape returns s's state, creating it. Caller holds c.mu.
func (c *DealerClient) shape(s shape) *feedShape {
	fs, ok := c.shapes[s]
	if !ok {
		fs = &feedShape{
			buf:  make(map[uint64]mpc.TripletShares),
			done: make(map[uint64]struct{}),
		}
		c.shapes[s] = fs
	}
	return fs
}

// ensureCredit tops the shape's outstanding credits up to cover seq
// `need` plus the configured headroom. On a stream the current link
// incarnation has not opened yet (first use, or after a dealer restart)
// it sends a RESUME carrying the consume cursor instead of a plain
// WANT. Caller holds c.mu; the writes happen without dropping it (mux
// writes only enqueue, and the supervised link buffers while down).
func (c *DealerClient) ensureCredit(s shape, fs *feedShape, need uint64) error {
	target := need + 1 + uint64(c.depth)
	if !fs.resumed {
		from := fs.floor
		if target < fs.requested {
			// Keep the pre-restart high-water: other waiters' seqs up to it
			// are covered by this one RESUME instead of one WANT each.
			target = fs.requested
		}
		if target < from {
			target = from
		}
		if err := c.ctl.WriteFrame(encodeResume(s, from, int(target-from))); err != nil {
			return fmt.Errorf("tripletpool: dealer RESUME: %w", err)
		}
		feedResumes.Add(1)
		fs.resumed = true
		fs.requested = target
		return nil
	}
	if fs.requested >= target {
		return nil
	}
	grant := target - fs.requested
	if err := c.ctl.WriteFrame(encodeWant(s, int(grant))); err != nil {
		return fmt.Errorf("tripletpool: dealer WANT: %w", err)
	}
	fs.requested = target
	return nil
}

// Next implements mpc.TripletFeed: pop this party's share of the next
// unconsumed triplet in s's stream, waiting for the dealer if none has
// arrived yet.
func (c *DealerClient) Next(m, k, n int) (uint64, mpc.TripletShares, error) {
	s := shape{M: m, K: k, N: n}
	span := feedWaits.Start()
	defer span.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.shape(s)
	seq := fs.next
	fs.next++
	return seq, c.waitLocked(s, fs, seq), c.err
}

// Take implements mpc.TripletFeed: the share of triplet seq of s's
// stream, waiting for delivery.
func (c *DealerClient) Take(m, k, n int, seq uint64) (mpc.TripletShares, error) {
	s := shape{M: m, K: k, N: n}
	span := feedWaits.Start()
	defer span.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	fs := c.shape(s)
	if seq >= fs.next {
		fs.next = seq + 1
	}
	return c.waitLocked(s, fs, seq), c.err
}

// waitLocked blocks until triplet seq of shape s arrives (issuing
// credits to cover it) and pops it. An unconsumed seq pins the shape's
// consumption floor at or below it, so a dealer restart mid-wait
// re-delivers exactly this seq via the RESUME. On feed failure it
// returns the zero value and leaves the error in c.err for the caller
// to surface.
func (c *DealerClient) waitLocked(s shape, fs *feedShape, seq uint64) mpc.TripletShares {
	for {
		if c.err != nil {
			return mpc.TripletShares{}
		}
		if err := c.ensureCredit(s, fs, seq); err != nil {
			if c.err == nil {
				c.err = err
			}
			return mpc.TripletShares{}
		}
		if t, ok := fs.buf[seq]; ok {
			delete(fs.buf, seq)
			feedBuffered.Add(-1)
			fs.consume(seq)
			return t
		}
		c.cond.Wait()
	}
}
