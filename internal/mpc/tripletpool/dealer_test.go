package tripletpool

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/mpc"
	"parsecureml/internal/tensor"
)

// startDealer runs a Dealer on a loopback listener, cleaned up with the
// test.
func startDealer(t *testing.T, cfg DealerConfig) (addr string, d *Dealer) {
	t.Helper()
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d = NewDealer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("dealer serve: %v", err)
		}
	})
	return ln.Addr().String(), d
}

// feedConnect returns the dial func a test DealerClient runs under: a
// plain dial with a bounded write deadline (the supervised link owns
// retry and the read side).
func feedConnect(addr string) func() (*comm.Conn, error) {
	return func() (*comm.Conn, error) {
		conn, err := comm.Dial(addr)
		if err != nil {
			return nil, err
		}
		conn.SetTimeouts(0, 5*time.Second)
		return conn, nil
	}
}

// dialFeed connects one party's DealerClient.
func dialFeed(t *testing.T, addr string, party int, pairID uint64, cfg FeedConfig) *DealerClient {
	t.Helper()
	if cfg.Supervisor.ReconnectBase == 0 {
		cfg.Supervisor.ReconnectBase = 10 * time.Millisecond
	}
	c, err := NewDealerClient(feedConnect(addr), party, pairID, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDealerStreamsMatchReference checks the dealer's wire-fed triplets
// against NewStreamSource with the same base: triplet j of a shape must
// be bit-identical on both paths (the property bit-identity drills rest
// on), the two halves must reconstruct a valid triplet, and neither
// half alone may be one (share separation has to mean something).
func TestDealerStreamsMatchReference(t *testing.T) {
	const seed = 42
	addr, _ := startDealer(t, DealerConfig{Seed: seed})
	f0 := dialFeed(t, addr, 0, 1, FeedConfig{})
	f1 := dialFeed(t, addr, 1, 1, FeedConfig{})
	ref := NewStreamSource(seed)
	for j := 0; j < 5; j++ {
		seq, t0, err := f0.Next(3, 4, 5)
		if err != nil {
			t.Fatalf("Next %d: %v", j, err)
		}
		if seq != uint64(j) {
			t.Fatalf("Next %d returned seq %d", j, seq)
		}
		t1, err := f1.Take(3, 4, 5, seq)
		if err != nil {
			t.Fatalf("Take %d: %v", j, err)
		}
		checkTriplet(t, t0, t1, 3, 4, 5)
		r0, r1 := ref.Gen(3, 4, 5)
		for _, m := range [][2]*tensor.Matrix{
			{t0.U, r0.U}, {t0.V, r0.V}, {t0.Z, r0.Z},
			{t1.U, r1.U}, {t1.V, r1.V}, {t1.Z, r1.Z},
		} {
			if !m[0].Equal(m[1]) {
				t.Fatalf("triplet %d differs from the StreamSource reference", j)
			}
		}
		// One half alone is not a triplet: Z₀ ≠ U₀×V₀ (each half is a
		// uniform share; equality would mean the dealer leaked structure).
		half := tensor.MulTo(t0.U, t0.V)
		alone := true
		for i := range half.Data {
			if math.Abs(float64(half.Data[i]-t0.Z.Data[i])) > 1e-3 {
				alone = false
				break
			}
		}
		if alone {
			t.Fatal("one party's half satisfies the triplet identity on its own")
		}
	}
}

// TestDealerShapesAreIndependentStreams checks interleaving shapes does
// not perturb a shape's stream, and that distinct pairs get identical
// streams from one seeded dealer (pair isolation is by connection, the
// determinism is per (seed, shape)).
func TestDealerShapesAreIndependentStreams(t *testing.T) {
	const seed = 7
	addr, _ := startDealer(t, DealerConfig{Seed: seed})
	f0 := dialFeed(t, addr, 0, 1, FeedConfig{})
	f1 := dialFeed(t, addr, 1, 1, FeedConfig{})
	take := func(m, k, n int) (mpc.TripletShares, mpc.TripletShares) {
		t.Helper()
		seq, t0, err := f0.Next(m, k, n)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := f1.Take(m, k, n, seq)
		if err != nil {
			t.Fatal(err)
		}
		return t0, t1
	}
	take(2, 2, 2)
	a0, a1 := take(3, 3, 3)
	take(2, 2, 2)
	// A second pair draws (3,3,3) first: same stream position 0.
	g0 := dialFeed(t, addr, 0, 2, FeedConfig{})
	g1 := dialFeed(t, addr, 1, 2, FeedConfig{})
	seq, b0, err := g0.Next(3, 3, 3)
	if err != nil || seq != 0 {
		t.Fatalf("pair 2 Next: seq %d err %v", seq, err)
	}
	b1, err := g1.Take(3, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a0.U.Equal(b0.U) || !a1.Z.Equal(b1.Z) {
		t.Fatal("(seed, shape) streams differ across pairs or draw orders")
	}
}

// TestDealerBackpressure checks MaxInflight bounds how far the faster
// party runs ahead: with the slower party idle, the dealer stops
// generating at the bound and the fast party's Next blocks until the
// slow one consumes.
func TestDealerBackpressure(t *testing.T) {
	const inflight = 4
	addr, _ := startDealer(t, DealerConfig{Seed: 1, MaxInflight: inflight})
	f0 := dialFeed(t, addr, 0, 1, FeedConfig{Depth: 16})
	f1 := dialFeed(t, addr, 1, 1, FeedConfig{Depth: 16})
	for j := 0; j < inflight; j++ {
		if _, _, err := f0.Next(4, 4, 4); err != nil {
			t.Fatalf("Next %d within the in-flight bound: %v", j, err)
		}
	}
	blocked := make(chan mpc.TripletShares, 1)
	go func() {
		_, tr, err := f0.Next(4, 4, 4)
		if err != nil {
			t.Errorf("Next past the bound: %v", err)
		}
		blocked <- tr
	}()
	select {
	case <-blocked:
		t.Fatalf("Next %d returned with the peer %d behind: MaxInflight not enforced", inflight, inflight)
	case <-time.After(300 * time.Millisecond):
	}
	// The slower party consumes one triplet; that retires seq 0 and frees
	// one generation slot, unblocking the fast party.
	if _, err := f1.Take(4, 4, 4, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case tr := <-blocked:
		if tr.U == nil {
			t.Fatal("unblocked Next returned a zero triplet")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast party still blocked after the slow party consumed")
	}
}

// TestDealerFeedFailsOnDeadDealer checks the advertised failure mode: a
// feed whose reconnect budget is exhausted (the dealer is gone for
// good, not just restarting) fails blocked and future calls instead of
// wedging them.
func TestDealerFeedFailsOnDeadDealer(t *testing.T) {
	addr, _ := startDealer(t, DealerConfig{Seed: 3})
	var conn *comm.Conn
	dials := 0
	f0, err := NewDealerClient(func() (*comm.Conn, error) {
		dials++
		if dials > 1 {
			return nil, errors.New("dealer gone for good")
		}
		c, err := feedConnect(addr)()
		if err != nil {
			return nil, err
		}
		conn = c
		return c, nil
	}, 0, 9, FeedConfig{Supervisor: comm.SupervisorConfig{
		ReconnectAttempts: 2,
		ReconnectBase:     time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f0.Close)
	if _, _, err := f0.Next(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	conn.Close() // the transport dies under the feed; every re-dial fails
	// A fresh shape has nothing prefetched, so this Next must block until
	// the reconnect budget is exhausted and then fail — not wedge.
	errc := make(chan error, 1)
	go func() {
		_, _, err := f0.Next(3, 3, 3)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Next on a dead feed returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next wedged on a dead dealer connection")
	}
	if _, err := f0.Take(2, 3, 2, 100); err == nil {
		t.Fatal("Take on a dead feed returned nil error")
	}
}

func TestDealerProtoCodecs(t *testing.T) {
	party, pairID, err := decodeDealerHello(encodeDealerHello(1, 77))
	if err != nil || party != 1 || pairID != 77 {
		t.Fatalf("hello round trip: party %d pair %d err %v", party, pairID, err)
	}
	if _, _, err := decodeDealerHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello accepted")
	}
	s, count, err := decodeWant(encodeWant(shape{3, 4, 5}, 6))
	if err != nil || s != (shape{3, 4, 5}) || count != 6 {
		t.Fatalf("WANT round trip: %+v %d %v", s, count, err)
	}
	if _, _, err := decodeWant(encodeWant(shape{0, 4, 5}, 6)); err == nil {
		t.Fatal("degenerate WANT accepted")
	}
	rs, from, rcount, err := decodeResume(encodeResume(shape{3, 4, 5}, 1<<40, 7))
	if err != nil || rs != (shape{3, 4, 5}) || from != 1<<40 || rcount != 7 {
		t.Fatalf("RESUME round trip: %+v %d %d %v", rs, from, rcount, err)
	}
	if _, _, _, err := decodeResume(encodeResume(shape{3, 0, 5}, 0, 1)); err == nil {
		t.Fatal("degenerate RESUME accepted")
	}
	// The two ctl kinds must reject each other's frames.
	if _, _, err := decodeWant(encodeResume(shape{3, 4, 5}, 0, 1)); err == nil {
		t.Fatal("RESUME frame accepted as WANT")
	}
	if _, _, _, err := decodeResume(encodeWant(shape{3, 4, 5}, 1)); err == nil {
		t.Fatal("WANT frame accepted as RESUME")
	}
	src := NewStreamSource(2)
	p0, _ := src.Gen(2, 3, 4)
	gs, seq, tr, err := decodeFeedFrame(appendFeedFrame(nil, shape{2, 3, 4}, 9, p0))
	if err != nil || gs != (shape{2, 3, 4}) || seq != 9 {
		t.Fatalf("FEED round trip: %+v %d %v", gs, seq, err)
	}
	if !tr.U.Equal(p0.U) || !tr.V.Equal(p0.V) || !tr.Z.Equal(p0.Z) {
		t.Fatal("FEED round trip corrupted the triplet")
	}
	// Geometry mismatch between header and payload is rejected.
	if _, _, _, err := decodeFeedFrame(appendFeedFrame(nil, shape{3, 3, 4}, 9, p0)); err == nil {
		t.Fatal("FEED frame with mismatched header geometry accepted")
	}
}
