package tripletpool

import (
	"context"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
)

// crashableDealer is a dealer the test can SIGKILL-equivalently destroy
// (context cancel tears down the listener and every live connection)
// and resurrect on a fresh listener under the same seed. The feeds'
// connect func follows the current address, like a service rendezvous
// would in production.
type crashableDealer struct {
	t    *testing.T
	seed uint64

	mu     sync.Mutex
	addr   string
	cancel context.CancelFunc
	done   chan error
}

func startCrashableDealer(t *testing.T, seed uint64) *crashableDealer {
	cd := &crashableDealer{t: t, seed: seed}
	cd.start()
	t.Cleanup(cd.kill)
	return cd
}

func (cd *crashableDealer) start() {
	cd.t.Helper()
	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		cd.t.Fatal(err)
	}
	d := NewDealer(DealerConfig{Seed: cd.seed})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Serve(ctx, ln) }()
	cd.mu.Lock()
	cd.addr = ln.Addr().String()
	cd.cancel = cancel
	cd.done = done
	cd.mu.Unlock()
}

func (cd *crashableDealer) kill() {
	cd.mu.Lock()
	cancel, done := cd.cancel, cd.done
	cd.cancel = nil
	cd.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	if err := <-done; err != nil {
		cd.t.Errorf("dealer serve: %v", err)
	}
}

func (cd *crashableDealer) connect() (*comm.Conn, error) {
	cd.mu.Lock()
	addr := cd.addr
	cd.mu.Unlock()
	conn, err := comm.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn.SetTimeouts(0, 5*time.Second)
	return conn, nil
}

// TestDealerCrashResumeBitIdentical is the tentpole property in
// process form: kill the dealer mid-stream, bring a new one up under
// the same seed, and the feeds' RESUME handshake continues every
// (shape, seq) stream exactly where it stopped — the full pre- and
// post-crash sequence is bit-identical to an uninterrupted
// NewStreamSource reference. A waiter blocked across the crash is
// served by the restarted dealer, not failed.
func TestDealerCrashResumeBitIdentical(t *testing.T) {
	const seed = 20240808
	cd := startCrashableDealer(t, seed)
	sup := comm.SupervisorConfig{
		ReconnectAttempts: 400,
		ReconnectBase:     5 * time.Millisecond,
		ReconnectMax:      50 * time.Millisecond,
	}
	f0, err := NewDealerClient(cd.connect, 0, 1, FeedConfig{Supervisor: sup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f0.Close)
	f1, err := NewDealerClient(cd.connect, 1, 1, FeedConfig{Supervisor: sup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f1.Close)

	ref := NewStreamSource(seed)
	draw := func(m, k, n int, wantSeq uint64) {
		t.Helper()
		seq, t0, err := f0.Next(m, k, n)
		if err != nil {
			t.Fatalf("Next %d: %v", wantSeq, err)
		}
		if seq != wantSeq {
			t.Fatalf("Next returned seq %d, want %d", seq, wantSeq)
		}
		t1, err := f1.Take(m, k, n, seq)
		if err != nil {
			t.Fatalf("Take %d: %v", seq, err)
		}
		r0, r1 := ref.Gen(m, k, n)
		if !t0.U.Equal(r0.U) || !t0.V.Equal(r0.V) || !t0.Z.Equal(r0.Z) ||
			!t1.U.Equal(r1.U) || !t1.V.Equal(r1.V) || !t1.Z.Equal(r1.Z) {
			t.Fatalf("triplet %d of %dx%dx%d differs from the uninterrupted reference", seq, m, k, n)
		}
	}

	// Two interleaved shapes before the crash.
	for j := uint64(0); j < 6; j++ {
		draw(3, 4, 5, j)
	}
	draw(2, 2, 2, 0)
	draw(2, 2, 2, 1)

	cd.kill()

	// Draw far past anything the dead dealer could have prefetched into
	// the client buffers (credit headroom is Depth=8 past consumption):
	// the early post-crash seqs drain the buffers, then a draw blocks
	// with the dealer down until the timer resurrects it and the RESUME
	// handshake re-positions every stream. Every result — buffered,
	// blocked-across-the-outage, and freshly resumed — must stay
	// bit-identical to the uninterrupted reference.
	restart := time.AfterFunc(150*time.Millisecond, cd.start)
	defer restart.Stop()
	for j := uint64(6); j < 24; j++ {
		draw(3, 4, 5, j)
	}
	draw(2, 2, 2, 2)
	draw(2, 2, 2, 3)
}
