package mpc

import (
	"sync"
	"testing"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestSharesFrameRoundTrip(t *testing.T) {
	p := rng.NewPool(1)
	in := Shares{
		A: p.NewUniform(3, 4, -1, 1),
		B: p.NewUniform(4, 2, -1, 1),
		T: TripletShares{
			U: p.NewUniform(3, 4, -1, 1),
			V: p.NewUniform(4, 2, -1, 1),
			Z: p.NewUniform(3, 2, -1, 1),
		},
	}
	got, err := DecodeShares(EncodeShares(in))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*tensor.Matrix{
		{got.A, in.A}, {got.B, in.B}, {got.T.U, in.T.U}, {got.T.V, in.T.V}, {got.T.Z, in.T.Z},
	} {
		if !pair[0].Equal(pair[1]) {
			t.Fatal("shares frame round trip corrupted a matrix")
		}
	}
}

func TestDecodeSharesErrors(t *testing.T) {
	if _, err := DecodeShares([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage must error")
	}
	p := rng.NewPool(2)
	in := Shares{
		A: p.NewUniform(2, 2, -1, 1), B: p.NewUniform(2, 2, -1, 1),
		T: TripletShares{U: p.NewUniform(2, 2, -1, 1), V: p.NewUniform(2, 2, -1, 1), Z: p.NewUniform(2, 2, -1, 1)},
	}
	frame := EncodeShares(in)
	if _, err := DecodeShares(append(frame, 0xFF)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}

// Full service topology in-process: a client drives two serving parties
// that exchange between themselves, over three pipe pairs, for several
// multiplications on one session.
func TestServeLoopEndToEnd(t *testing.T) {
	client0a, client0b := comm.Pipe() // client <-> server0
	client1a, client1b := comm.Pipe() // client <-> server1
	peerA, peerB := comm.Pipe()       // server0 <-> server1

	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() {
		defer wg.Done()
		err0 = ServeLoop(0, client0b, peerA)
	}()
	go func() {
		defer wg.Done()
		err1 = ServeLoop(1, client1b, peerB)
	}()

	client := newRemoteClient()
	p := rng.NewPool(3)
	for round := 0; round < 3; round++ {
		a := p.NewUniform(7+round, 9, -1, 1)
		b := p.NewUniform(9, 5, -1, 1)
		in0, in1 := RemoteClientSplit(a, b, client)
		got, err := RequestMul(client0a, client1a, in0, in1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(tensor.MulNaive(a, b), 1e-3) {
			t.Fatalf("round %d: served product off by %v", round, got.MaxAbsDiff(tensor.MulNaive(a, b)))
		}
	}
	client0a.Close()
	client1a.Close()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("server loops: %v / %v", err0, err1)
	}
	peerA.Close()
	peerB.Close()
}

func TestHelloHandshake(t *testing.T) {
	a, b := comm.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- WriteHello(a, 1) }()
	party, err := ReadHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if party != 1 {
		t.Fatalf("party = %d", party)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Bad hello
	go a.WriteFrame([]byte{1, 2, 3})
	if _, err := ReadHello(b); err == nil {
		t.Fatal("bad hello must error")
	}
}
