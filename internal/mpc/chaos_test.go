package mpc

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Chaos drill: the peer link is hard-dropped (at deterministic frame
// boundaries, via FaultConn.DropAfterFrames) while 8 concurrent sessions
// exchange E/F legs over it. The supervised link must detect each loss,
// reconnect, resync, and replay the in-flight frames — every session
// finishes with results bit-identical to its serial reference and no
// session ever observes an error. This is the PR's headline guarantee:
// a link failure is visible to RequestMul callers only as latency.
func TestConcurrentSessionsSurviveLinkDrops(t *testing.T) {
	const clients, rounds = 8, 4
	reconnectsBefore := comm.SupervisorTotals().Reconnects

	p := rng.NewPool(777)
	type job struct {
		in0, in1 Shares
		want     *tensor.Matrix
	}
	jobs := make([]job, clients)
	for i := range jobs {
		m, k, n := 16+i, 12, 8+i
		a := p.NewUniform(m, k, -1, 1)
		b := p.NewUniform(k, n, -1, 1)
		t0, t1 := GenGemmTripletShares(p, m, k, n)
		a0, a1 := SplitRand(p, a)
		b0, b1 := SplitRand(p, b)
		jobs[i] = job{in0: Shares{A: a0, B: b0, T: t0}, in1: Shares{A: a1, B: b1, T: t1}}
		jobs[i].want = serialReference(t, jobs[i].in0, jobs[i].in1)
	}

	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peerLn.Close()
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	supCfg := comm.SupervisorConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		MissBudget:        5,
		ReconnectAttempts: 200,
		ReconnectBase:     5 * time.Millisecond,
		ReconnectMax:      100 * time.Millisecond,
		ResyncTimeout:     5 * time.Second,
	}
	serveCfg := ServeConfig{
		ClientTimeout: 60 * time.Second,
		// Must cover detect + reconnect + resync + replay, which the
		// supCfg above completes in well under a second per drop.
		PeerTimeout: 30 * time.Second,
		MaxSessions: clients + 2,
	}
	// Party 1's outgoing stream is cut at a frame boundary on its first
	// two connections: 25 frames into the first (mid-exchange for the
	// early sessions) and 55 into the second (which includes the replay
	// of whatever the first drop stranded).
	drops := map[int]int{0: 25, 1: 55}

	ctx, cancel := context.WithCancel(context.Background())
	var serveWg sync.WaitGroup
	serveWg.Add(2)
	go func() {
		defer serveWg.Done()
		peer, err := SupervisePeer(0, func() (*comm.Conn, error) {
			c, err := comm.Accept(peerLn)
			if err != nil {
				return nil, err
			}
			c.SetTimeouts(0, 10*time.Second)
			return c, nil
		}, supCfg)
		if err != nil {
			t.Errorf("party 0 link: %v", err)
			return
		}
		if err := ServeClients(ctx, 0, ln0, peer, serveCfg); err != nil {
			t.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer serveWg.Done()
		// connect calls are serialized by the supervisor, so a plain
		// counter is safe here.
		incarnation := 0
		peer, err := SupervisePeer(1, func() (*comm.Conn, error) {
			raw, err := net.Dial("tcp", peerLn.Addr().String())
			if err != nil {
				return nil, err
			}
			fc := comm.NewFaultConn(raw)
			if n, ok := drops[incarnation]; ok {
				fc.DropAfterFrames(n)
			}
			incarnation++
			c := comm.Wrap(fc)
			c.SetTimeouts(0, 10*time.Second)
			return c, nil
		}, supCfg)
		if err != nil {
			t.Errorf("party 1 link: %v", err)
			return
		}
		if err := ServeClients(ctx, 1, ln1, peer, serveCfg); err != nil {
			t.Errorf("server 1: %v", err)
		}
	}()
	defer func() {
		cancel()
		peerLn.Close() // unblock a pending re-accept in party 0's connect
		serveWg.Wait()
	}()
	addr0, addr1 := ln0.Addr().String(), ln1.Addr().String()

	var clientWg sync.WaitGroup
	var failed atomic.Bool
	for i := range jobs {
		clientWg.Add(1)
		go func(j job) {
			defer clientWg.Done()
			c0, c1 := dialPair(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			c0.SetTimeouts(60*time.Second, 60*time.Second)
			c1.SetTimeouts(60*time.Second, 60*time.Second)
			for r := 0; r < rounds; r++ {
				got, err := RequestMul(c0, c1, j.in0, j.in1)
				if err != nil {
					t.Errorf("request during link chaos: %v", err)
					failed.Store(true)
					return
				}
				if !got.Equal(j.want) {
					t.Errorf("result differs from serial reference by %v", got.MaxAbsDiff(j.want))
					failed.Store(true)
					return
				}
			}
		}(jobs[i])
	}
	clientWg.Wait()
	if failed.Load() {
		return
	}

	// Both drops must actually have fired. If the main wave outran the
	// second drop, keep traffic flowing (each result still verified)
	// until the supervisor has reconnected twice.
	reconnected := func() int64 { return comm.SupervisorTotals().Reconnects - reconnectsBefore }
	if reconnected() < 2 {
		c0, c1 := dialPair(t, addr0, addr1)
		defer c0.Close()
		defer c1.Close()
		c0.SetTimeouts(60*time.Second, 60*time.Second)
		c1.SetTimeouts(60*time.Second, 60*time.Second)
		deadline := time.Now().Add(60 * time.Second)
		for reconnected() < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("only %d reconnects observed, want >= 2", reconnected())
			}
			got, err := RequestMul(c0, c1, jobs[0].in0, jobs[0].in1)
			if err != nil {
				t.Fatalf("tail request during link chaos: %v", err)
			}
			if !got.Equal(jobs[0].want) {
				t.Fatalf("tail result differs from serial reference by %v", got.MaxAbsDiff(jobs[0].want))
			}
		}
	}
}

// A supervised pair must also come up when the dial side starts first
// (the listener's accept supervisor not yet running) — the reconnect
// loop inside NewSupervisedLink absorbs the startup race the same way
// DialRetry does for bare conns.
func TestSupervisePeerStartupOrder(t *testing.T) {
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peerLn.Close()
	supCfg := comm.SupervisorConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		ReconnectAttempts: 100,
		ReconnectBase:     5 * time.Millisecond,
		ResyncTimeout:     5 * time.Second,
	}
	type res struct {
		l   *comm.SupervisedLink
		err error
	}
	dialed := make(chan res, 1)
	go func() {
		l, err := SupervisePeer(1, func() (*comm.Conn, error) {
			return comm.Dial(peerLn.Addr().String())
		}, supCfg)
		dialed <- res{l, err}
	}()
	// Give the dialer a head start so its first attempts race the
	// accept side coming up.
	time.Sleep(50 * time.Millisecond)
	l0, err := SupervisePeer(0, func() (*comm.Conn, error) {
		return comm.Accept(peerLn)
	}, supCfg)
	if err != nil {
		t.Fatalf("accept side: %v", err)
	}
	defer l0.Close()
	r := <-dialed
	if r.err != nil {
		t.Fatalf("dial side: %v", r.err)
	}
	defer r.l.Close()
	if err := l0.WriteFrame([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	f, err := r.l.ReadFrame()
	if err != nil || string(f) != "ping" {
		t.Fatalf("got %q, %v", f, err)
	}
}
