package mpc

import (
	"testing"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Force the chunked path by shrinking the planning budget via a huge
// working set: a tall multiplication whose operands exceed the budget.
func TestOnlineMulGPUChunkedCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TensorCores = false
	d := NewDeployment(cfg)
	p := rng.NewPool(1)

	// Small matrices, but drive the chunked path directly.
	const m, k, n = 37, 11, 5
	a := p.NewUniform(m, k, -1, 1)
	b := p.NewUniform(k, n, -1, 1)
	a0, a1, _ := d.Client.Split(a)
	b0, b1, _ := d.Client.Split(b)
	t0, t1, tTrip := d.Client.GenGemmTriplet(m, k, n, false)

	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	ef0, ef1 := ReconstructEF("chunk", d.S0, d.S1, in0, in1, tTrip, tTrip, tTrip, tTrip)

	c0, tc0 := d.S0.onlineMulGPUChunked(ef0, in0)
	c1, tc1 := d.S1.onlineMulGPUChunked(ef1, in1)
	if tc0 == nil || tc1 == nil {
		t.Fatal("missing completion tasks")
	}
	got := tensor.AddTo(c0, c1)
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 0.05) {
		t.Fatalf("chunked product off by %v", got.MaxAbsDiff(want))
	}
}

// With a tiny memory budget, the automatic dispatch must switch to the
// chunked path and still produce correct results within device memory.
func TestOnlineMulGPUAutoChunksWhenOversized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TensorCores = false
	d := NewDeployment(cfg)
	// 3 GiB budget headroom consumed: cap each server's device small.
	d.S0.Dev.SetMemCapacity(1 << 20) // 1 MiB
	d.S1.Dev.SetMemCapacity(1 << 20)

	p := rng.NewPool(2)
	const m, k, n = 300, 80, 40 // working set ~ 100 KB bands; whole ~ 0.4 MB
	a := p.NewUniform(m, k, -1, 1)
	b := p.NewUniform(k, n, -1, 1)
	a0, a1, _ := d.Client.Split(a)
	b0, b1, _ := d.Client.Split(b)
	t0, t1, tTrip := d.Client.GenGemmTriplet(m, k, n, false)

	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	ef0, ef1 := ReconstructEF("auto", d.S0, d.S1, in0, in1, tTrip, tTrip, tTrip, tTrip)

	// Note: the dispatch plans against the default budget; with the tiny
	// capacity the chunked path's own banding must still respect it, so
	// call it directly (whole-matrix H2D would OOM).
	c0, _ := d.S0.onlineMulGPUChunked(ef0, in0)
	c1, _ := d.S1.onlineMulGPUChunked(ef1, in1)
	got := tensor.AddTo(c0, c1)
	if !got.ApproxEqual(tensor.MulNaive(a, b), 0.1) {
		t.Fatalf("auto-chunked product off by %v", got.MaxAbsDiff(tensor.MulNaive(a, b)))
	}
	if d.S0.Dev.MemUsed() != 0 {
		t.Fatalf("device memory leaked: %d", d.S0.Dev.MemUsed())
	}
}

// The oversized dispatch itself: build a dry-run multiplication whose
// planned working set exceeds the card and check it schedules (no OOM
// panic) with a sane timeline.
func TestOversizedMulSchedulesDry(t *testing.T) {
	prev := tensor.SetCompute(false)
	defer tensor.SetCompute(prev)

	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	// NIST-CNN-like geometry: 33 M patch rows would need >3 GB per buffer
	// at FP32; with 7 buffers the whole-matrix path would exceed 16 GB.
	const m, k, n = 16 << 20, 25, 16
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	a0, a1, _ := d.Client.Split(a)
	b0, b1, _ := d.Client.Split(b)
	t0, t1, tTrip := d.Client.GenGemmTriplet(m, k, n, false)
	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	ef0, ef1 := ReconstructEF("big", d.S0, d.S1, in0, in1, tTrip, tTrip, tTrip, tTrip)
	_, tc0 := d.S0.OnlineMulGPU(ef0, in0)
	_, tc1 := d.S1.OnlineMulGPU(ef1, in1)
	if tc0.End <= 0 || tc1.End <= 0 {
		t.Fatal("no modeled time")
	}
	if d.S0.Dev.MemUsed() != 0 {
		t.Fatalf("device memory leaked: %d", d.S0.Dev.MemUsed())
	}
}

func TestChunkedBudgetPositive(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	if DefaultGPUMemBudget(d.S0.Dev) <= 0 {
		t.Fatal("non-positive budget")
	}
}

func TestMultiGPUCorrectAndFaster(t *testing.T) {
	p := rng.NewPool(9)
	const m, k, n = 1024, 512, 512
	a := p.NewUniform(m, k, -1, 1)
	b := p.NewUniform(k, n, -1, 1)

	run := func(gpus int) (*tensor.Matrix, float64) {
		cfg := DefaultConfig()
		cfg.TensorCores = false
		cfg.GPUsPerServer = gpus
		d := NewDeployment(cfg)
		got, _ := d.SecureMatMul("mg", a, b)
		return got, d.Eng.Makespan()
	}
	c1, t1 := run(1)
	c2, t2 := run(2)
	if !c2.ApproxEqual(c1, 1e-3) {
		t.Fatalf("multi-GPU result differs by %v", c2.MaxAbsDiff(c1))
	}
	if !c1.ApproxEqual(tensor.MulNaive(a, b), 0.5) {
		t.Fatalf("product wrong by %v", c1.MaxAbsDiff(tensor.MulNaive(a, b)))
	}
	if t2 >= t1 {
		t.Fatalf("2 GPUs (%v) not faster than 1 (%v)", t2, t1)
	}
}
