package mpc

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// startServePair is servePair for any testing.TB (benchmarks included):
// both parties as concurrent accept loops over a real TCP peer link.
func startServePair(tb testing.TB, cfg ServeConfig) (addr0, addr1 string, shutdown func()) {
	tb.Helper()
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		peer, err := comm.Accept(peerLn)
		peerLn.Close()
		if err != nil {
			tb.Errorf("peer accept: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 0, ln0, peer, cfg); err != nil {
			tb.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		peer, err := comm.DialRetry(peerLn.Addr().String(), comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
		if err != nil {
			tb.Errorf("peer dial: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 1, ln1, peer, cfg); err != nil {
			tb.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

// dialPair connects one client to both parties with generous deadlines.
func dialPair(tb testing.TB, addr0, addr1 string) (c0, c1 *comm.Conn) {
	tb.Helper()
	c0, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		tb.Fatal(err)
	}
	c1, err = comm.DialRetry(addr1, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		c0.Close()
		tb.Fatal(err)
	}
	c0.SetTimeouts(20*time.Second, 20*time.Second)
	c1.SetTimeouts(20*time.Second, 20*time.Second)
	return c0, c1
}

// serialReference computes the ground truth for one request the way the
// pre-mux serving stack did: ServeLoop on both ends of dedicated pipes.
func serialReference(tb testing.TB, in0, in1 Shares) *tensor.Matrix {
	tb.Helper()
	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB := comm.Pipe()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ServeLoop(0, client0b, peerA) }()
	go func() { defer wg.Done(); ServeLoop(1, client1b, peerB) }()
	want, err := RequestMul(client0a, client1a, in0, in1)
	if err != nil {
		tb.Fatalf("serial reference: %v", err)
	}
	client0a.Close()
	client1a.Close()
	wg.Wait()
	peerA.Close()
	peerB.Close()
	return want
}

// TestConcurrentServeMatchesSerial pins the tentpole's correctness bar:
// a request served through the multiplexed concurrent stack returns a
// result bit-identical to the dedicated-connection serial path, on both
// the serial and the wire-pipelined peer protocols.
func TestConcurrentServeMatchesSerial(t *testing.T) {
	p := rng.NewPool(123)
	a := p.NewUniform(24, 16, -1, 1)
	b := p.NewUniform(16, 20, -1, 1)
	t0, t1 := GenGemmTripletShares(p, 24, 16, 20)
	a0, a1 := SplitRand(p, a)
	b0, b1 := SplitRand(p, b)
	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	want := serialReference(t, in0, in1)

	for _, tc := range []struct {
		name string
		wire *WireConfig
	}{
		{"serial", nil},
		{"wire", &WireConfig{ChunkRows: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addr0, addr1, shutdown := startServePair(t, ServeConfig{
				ClientTimeout: 10 * time.Second,
				PeerTimeout:   10 * time.Second,
				Wire:          tc.wire,
			})
			defer shutdown()
			c0, c1 := dialPair(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			got, err := RequestMul(c0, c1, in0, in1)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("concurrent-path result differs from serial path by %v", got.MaxAbsDiff(want))
			}
		})
	}
}

// TestConcurrentSessionsBitIdentical runs 8 clients concurrently —
// distinct inputs, interleaved mux sub-streams on one peer link — and
// checks every result is bit-identical to its own serial reference.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	const clients, rounds = 8, 3
	p := rng.NewPool(321)
	type job struct {
		in0, in1 Shares
		want     *tensor.Matrix
	}
	jobs := make([]job, clients)
	for i := range jobs {
		m, k, n := 16+i, 12, 8+i // distinct geometry per client
		a := p.NewUniform(m, k, -1, 1)
		b := p.NewUniform(k, n, -1, 1)
		t0, t1 := GenGemmTripletShares(p, m, k, n)
		a0, a1 := SplitRand(p, a)
		b0, b1 := SplitRand(p, b)
		jobs[i] = job{in0: Shares{A: a0, B: b0, T: t0}, in1: Shares{A: a1, B: b1, T: t1}}
		jobs[i].want = serialReference(t, jobs[i].in0, jobs[i].in1)
	}

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		MaxSessions:   clients,
	})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			c0, c1 := dialPair(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			for r := 0; r < rounds; r++ {
				got, err := RequestMul(c0, c1, j.in0, j.in1)
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(j.want) {
					t.Errorf("concurrent result differs from serial reference by %v", got.MaxAbsDiff(j.want))
					return
				}
			}
		}(jobs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeClientsShedsOverload pins the MaxSessions bound: with one
// slot occupied by an idle session, the next accept is closed
// immediately and counted on the shed counter.
func TestServeClientsShedsOverload(t *testing.T) {
	addr0, _, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		MaxSessions:   1,
	})
	defer shutdown()

	// Occupy the only slot with an idle session.
	hog, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	time.Sleep(100 * time.Millisecond) // let the handler claim the slot

	shedBefore := metrics.sessionsShed.Value()
	extra, err := comm.Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer extra.Close()
	extra.SetTimeouts(5*time.Second, 5*time.Second)
	if _, err := extra.ReadFrame(); err == nil {
		t.Fatal("over-capacity connection was served, want immediate shed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for metrics.sessionsShed.Value() == shedBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if metrics.sessionsShed.Value() == shedBefore {
		t.Fatal("shed counter did not move")
	}
}

// benchClientDelay is the per-write latency on each client link in the
// throughput benchmark: the serving deployment the concurrency work
// targets has co-located parties and remote data owners, so a request's
// wall time is dominated by the client's link, not the servers' compute.
// A serial accept loop cannot overlap that latency across clients no
// matter how fast the parties are; the mux-based stack must.
const benchClientDelay = 2 * time.Millisecond

// dialDelayed connects a client conn whose writes each pay
// benchClientDelay, modelling a remote data owner on loopback.
func dialDelayed(tb testing.TB, addr string) *comm.Conn {
	tb.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatal(err)
	}
	fc := comm.NewFaultConn(raw)
	fc.WriteDelay = benchClientDelay
	c := comm.Wrap(fc)
	c.SetTimeouts(30*time.Second, 30*time.Second)
	return c
}

// benchConcurrentMul measures multi-client request throughput through
// the full concurrent stack over loopback TCP, each client behind a
// latency-bearing link (dialDelayed). One benchmark op = every client
// completing one request, so ns/op at `clients` N covers N requests:
// throughput scaling vs the single-client run is (t1 * clients) / tN.
func benchConcurrentMul(b *testing.B, clients int) {
	const dim = 32
	addr0, addr1, shutdown := startServePair(b, ServeConfig{
		ClientTimeout: 30 * time.Second,
		PeerTimeout:   30 * time.Second,
		MaxSessions:   clients + 2,
	})
	defer shutdown()

	p := rng.NewPool(55)
	type cl struct {
		c0, c1   *comm.Conn
		in0, in1 Shares
	}
	cls := make([]cl, clients)
	for i := range cls {
		a := p.NewUniform(dim, dim, -1, 1)
		bm := p.NewUniform(dim, dim, -1, 1)
		t0, t1 := GenGemmTripletShares(p, dim, dim, dim)
		a0, a1 := SplitRand(p, a)
		b0, b1 := SplitRand(p, bm)
		c0, c1 := dialDelayed(b, addr0), dialDelayed(b, addr1)
		cls[i] = cl{c0: c0, c1: c1, in0: Shares{A: a0, B: b0, T: t0}, in1: Shares{A: a1, B: b1, T: t1}}
	}
	defer func() {
		for _, c := range cls {
			c.c0.Close()
			c.c1.Close()
		}
	}()
	// Warm up one request per client (conn setup, pool population).
	for _, c := range cls {
		if _, err := RequestMul(c.c0, c.c1, c.in0, c.in1); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for _, c := range cls {
		wg.Add(1)
		go func(c cl) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := RequestMul(c.c0, c.c1, c.in0, c.in1); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

func BenchmarkConcurrentClients(b *testing.B) {
	b.Run("clients=1", func(b *testing.B) { benchConcurrentMul(b, 1) })
	b.Run("clients=8", func(b *testing.B) { benchConcurrentMul(b, 8) })
}
