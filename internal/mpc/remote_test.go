package mpc

import (
	"sync"
	"testing"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// runRemotePair executes both parties concurrently over the given pair of
// framed connections and returns the merged product.
func runRemotePair(t *testing.T, c0, c1 *comm.Conn, in0, in1 Shares) *tensor.Matrix {
	t.Helper()
	var wg sync.WaitGroup
	var r0, r1 *tensor.Matrix
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		r0, e0 = RemoteParty(0, c0, in0)
	}()
	go func() {
		defer wg.Done()
		r1, e1 = RemoteParty(1, c1, in1)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("remote parties failed: %v / %v", e0, e1)
	}
	return RemoteCombine(r0, r1)
}

func newRemoteClient() *Client {
	eng := NewDeployment(SecureMLConfig())
	return eng.Client
}

func TestRemoteTripletMulOverPipe(t *testing.T) {
	p := rng.NewPool(1)
	a := p.NewUniform(13, 21, -1, 1)
	b := p.NewUniform(21, 9, -1, 1)

	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)

	c0, c1 := comm.Pipe()
	defer c0.Close()
	defer c1.Close()
	got := runRemotePair(t, c0, c1, in0, in1)
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("remote product off by %v", got.MaxAbsDiff(want))
	}
}

func TestRemoteTripletMulOverTCP(t *testing.T) {
	p := rng.NewPool(2)
	a := p.NewUniform(32, 48, -1, 1)
	b := p.NewUniform(48, 16, -1, 1)

	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)

	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type accepted struct {
		c   *comm.Conn
		err error
	}
	acceptCh := make(chan accepted, 1)
	go func() {
		c, err := comm.Accept(ln)
		acceptCh <- accepted{c, err}
	}()
	c1, err := comm.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	acc := <-acceptCh
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	defer acc.c.Close()

	got := runRemotePair(t, acc.c, c1, in0, in1)
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("TCP remote product off by %v", got.MaxAbsDiff(want))
	}
}

func TestRemotePartyRejectsBadIndex(t *testing.T) {
	c0, c1 := comm.Pipe()
	defer c0.Close()
	defer c1.Close()
	if _, err := RemoteParty(2, c0, Shares{}); err == nil {
		t.Fatal("bad party index must error")
	}
}

// A party must not be able to reconstruct the inputs from what it holds
// and receives: check that its share plus the public masks do not equal
// the true input (sanity, not a proof).
func TestRemoteSharesHideInputs(t *testing.T) {
	p := rng.NewPool(3)
	a := p.NewUniform(8, 8, -1, 1)
	b := p.NewUniform(8, 8, -1, 1)
	client := newRemoteClient()
	in0, _ := RemoteClientSplit(a, b, client)
	if in0.A.ApproxEqual(a, 0.25) {
		t.Fatal("party 0's share of A is close to A itself")
	}
	if in0.B.ApproxEqual(b, 0.25) {
		t.Fatal("party 0's share of B is close to B itself")
	}
}
