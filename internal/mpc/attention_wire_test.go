package mpc

import (
	"sync"
	"testing"
	"time"

	"parsecureml/internal/hw"
	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// wireTransformerTol is the raw-path secure-vs-plaintext tolerance
// documented in DESIGN.md ("Softmax approximation contract"): FP32
// share-range noise through the block's 14 GEMMs at the drill geometry.
const wireTransformerTol = 0.02

// wireTransformerFP16Tol is the documented tolerance with the lossy
// FP16 codec active on revealed E/F (DESIGN.md: per-GEMM bound 0.04·k,
// empirically ~2e-2 end to end at this geometry; 0.25 is the enforced
// ceiling).
const wireTransformerFP16Tol = 0.25

func wireTransformerFixture(seed uint64) (*ml.TransformerBlock, *tensor.Matrix) {
	r := rng.NewRand(seed)
	blk := ml.NewTransformerBlock(32, 4, 48, ml.ReLU, true, r)
	x := tensor.New(16, 32)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	return blk, x
}

// TestWireTransformerMatchesPlain: a full transformer block driven
// through the two-server serving stack must match the plaintext
// reference within the documented tolerance, and identical seeds must
// produce bit-identical outputs across runs.
func TestWireTransformerMatchesPlain(t *testing.T) {
	blk, x := wireTransformerFixture(31)
	want := blk.Forward(x)

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		Wire:          &WireConfig{ChunkRows: 8},
	})
	defer shutdown()

	run := func(seed uint64) *tensor.Matrix {
		c0, c1 := dialPair(t, addr0, addr1)
		defer c0.Close()
		defer c1.Close()
		wt := NewWireTransformer(blk, seed)
		got, err := wt.Infer(c0, c1, x)
		if err != nil {
			t.Fatal(err)
		}
		// 3 projections + per-head (scores, context) + output + 2 FF
		if wantMuls := 3 + 2*blk.Att.Heads + 1 + 2; wt.Muls() != wantMuls {
			t.Fatalf("issued %d RequestMuls, want %d", wt.Muls(), wantMuls)
		}
		return got
	}

	got := run(7)
	if !got.ApproxEqual(want, wireTransformerTol) {
		t.Fatalf("wire transformer off plaintext by %v (tolerance %v)",
			got.MaxAbsDiff(want), wireTransformerTol)
	}
	if again := run(7); !again.Equal(got) {
		t.Fatalf("same seed not bit-stable across runs: differs by %v", again.MaxAbsDiff(got))
	}
	// A different share/triplet seed changes every mask on the wire but
	// must land on the same answer.
	if other := run(8); !other.ApproxEqual(want, wireTransformerTol) {
		t.Fatalf("seed 8 off plaintext by %v", other.MaxAbsDiff(want))
	}
}

// TestWireAttentionOnlyMatchesPlain covers the attention-only client
// (no feed-forward stack) against ml.Attention.
func TestWireAttentionOnlyMatchesPlain(t *testing.T) {
	r := rng.NewRand(41)
	att := ml.NewAttention(16, 2, false, r)
	x := tensor.New(8, 16)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	want := att.Forward(x)

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		Wire:          &WireConfig{ChunkRows: 8},
	})
	defer shutdown()
	c0, c1 := dialPair(t, addr0, addr1)
	defer c0.Close()
	defer c1.Close()

	got, err := NewWireAttention(att, 5).Infer(c0, c1, x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, wireTransformerTol) {
		t.Fatalf("wire attention off plaintext by %v", got.MaxAbsDiff(want))
	}
}

// TestWireTransformerBatchedCodecStable is the drill's hard mode:
// concurrent same-shape transformer clients flow through cross-session
// batching AND the negotiated FP16/CSR codecs on a modeled-throttled
// link. Every client must stay within the documented FP16 tolerance of
// the plaintext reference, and a second identically-seeded round must
// be bit-identical to the first.
func TestWireTransformerBatchedCodecStable(t *testing.T) {
	const clients = 4
	blk, x := wireTransformerFixture(33)
	want := blk.Forward(x)

	mkCodec := func() *WireCodec {
		return &WireCodec{
			Enabled:   CodecFP16 | CodecCSR,
			HW:        hw.Paper(),
			Link:      throttledLink(), // static budget: compression pays
			Negotiate: true,
		}
	}
	// MaxSessions stays at the default: the second round redials the
	// instant the first round's clients hang up, and a bound of exactly
	// `clients` would shed those connections while the server is still
	// tearing the previous sessions down (shedding beyond the bound is
	// deliberate serve policy, not a queue).
	cfg0 := ServeConfig{
		ClientTimeout: 15 * time.Second,
		PeerTimeout:   15 * time.Second,
		Wire:          &WireConfig{ChunkRows: 8, Codec: mkCodec()},
		Batch: &BatchConfig{
			Window:   30 * time.Millisecond,
			MaxBatch: clients,
			JoinWait: 1 * time.Second,
		},
	}
	cfg1 := cfg0
	cfg1.Wire = &WireConfig{ChunkRows: 8, Codec: mkCodec()}
	addr0, addr1, shutdown := startServePairCfgs(t, cfg0, cfg1)
	defer shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for cfg0.Wire.Codec.usable() != CodecFP16|CodecCSR || cfg1.Wire.Codec.usable() != CodecFP16|CodecCSR {
		if time.Now().After(deadline) {
			t.Fatal("codec negotiation never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	fpBefore := metrics.wireCodecPicks[tensorE][codecFP16].Value()
	round := func() []*tensor.Matrix {
		outs := make([]*tensor.Matrix, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c0, c1 := dialPair(t, addr0, addr1)
				defer c0.Close()
				defer c1.Close()
				got, err := NewWireTransformer(blk, 100+uint64(i)).Infer(c0, c1, x)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				outs[i] = got
			}(i)
		}
		wg.Wait()
		return outs
	}

	first := round()
	if t.Failed() {
		t.FailNow()
	}
	for i, got := range first {
		if !got.ApproxEqual(want, wireTransformerFP16Tol) {
			t.Fatalf("client %d off plaintext by %v (FP16 tolerance %v)",
				i, got.MaxAbsDiff(want), wireTransformerFP16Tol)
		}
	}
	if after := metrics.wireCodecPicks[tensorE][codecFP16].Value(); after <= fpBefore {
		t.Fatal("no E tensor was FP16-coded; the codec leg exercised nothing")
	}
	second := round()
	if t.Failed() {
		t.FailNow()
	}
	for i := range second {
		if !second[i].Equal(first[i]) {
			t.Fatalf("client %d not bit-stable across batched+codec rounds: differs by %v",
				i, second[i].MaxAbsDiff(first[i]))
		}
	}
}
