package mpc

import (
	"context"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// throttledLink is a WireCodec Link override slow enough that every size
// win clears the hw crossover — the WAN-class regime the codecs target.
func throttledLink() hw.LinkModel { return hw.LinkModel{Bandwidth: 1 << 20} }

func TestWireCodecUsableGating(t *testing.T) {
	var nilWC *WireCodec
	if got := nilWC.usable(); got != 0 {
		t.Fatalf("nil codec usable %b", got)
	}
	wc := &WireCodec{Enabled: CodecFP16 | CodecCSR, HW: hw.Paper()}
	if got := wc.usable(); got != CodecFP16|CodecCSR {
		t.Fatalf("un-negotiated codec usable %b, want the enabled set", got)
	}
	// With negotiation on, nothing is usable until the peer advertises.
	wc.Negotiate = true
	if got := wc.usable(); got != 0 {
		t.Fatalf("negotiating codec usable %b before the peer's frame", got)
	}
	// Peer advertising CSR only: the intersection governs.
	wc.setPeer(uint32(CodecCSR))
	if got := wc.usable(); got != CodecCSR {
		t.Fatalf("usable %b after peer advertised CSR only", got)
	}
	// A newer peer's unknown capability bits are masked away.
	wc.setPeer(0xffff_ffff)
	if got := wc.usable(); got != CodecFP16|CodecCSR {
		t.Fatalf("usable %b after a future peer's advertisement", got)
	}
	// An explicitly raw peer (caps 0) pins the link raw.
	wc.setPeer(0)
	if got := wc.usable(); got != 0 {
		t.Fatalf("usable %b after a raw peer's advertisement", got)
	}
}

func TestWireCodecBudget(t *testing.T) {
	wc := &WireCodec{HW: hw.Paper()}
	if got := wc.budgetBps(); got != hw.Paper().Net.Bandwidth {
		t.Fatalf("default budget %g, want the hw model's %g", got, hw.Paper().Net.Bandwidth)
	}
	wc.Link = throttledLink()
	if got := wc.budgetBps(); got != float64(1<<20) {
		t.Fatalf("static override budget %g", got)
	}
	// A measured rate below the static budget takes over...
	wc.ObserveLink(1<<18, time.Second)
	if got := wc.budgetBps(); got != float64(1<<18) {
		t.Fatalf("measured budget %g, want %d", got, 1<<18)
	}
	// ...but a fast measurement can never raise the budget above the
	// static model (a local test pipe must not disable a configured
	// throttle): min(static, measured).
	for i := 0; i < 100; i++ {
		wc.ObserveLink(1<<30, time.Millisecond)
	}
	if got := wc.budgetBps(); got != float64(1<<20) {
		t.Fatalf("budget %g after fast samples, want the static %d", got, 1<<20)
	}
}

func TestWireCodecPick(t *testing.T) {
	r := rng.NewPool(7)
	sparse := tensor.New(32, 32)
	for i := 0; i < 32; i++ {
		sparse.Set(i, i, 1.5)
	}
	dense := r.NewUniform(32, 32, -1, 1)
	huge := r.NewUniform(32, 32, -1, 1)
	huge.Set(3, 3, 2*fp16SafeMax)

	// On the paper's InfiniBand the crossover never pays: raw always.
	paper := &WireCodec{Enabled: CodecFP16 | CodecCSR, HW: hw.Paper()}
	if got := paper.pick(sparse, tensorE); got != codecRaw {
		t.Fatalf("pick %d on the paper link, want raw", got)
	}
	// On a throttled link a sparse tensor goes CSR, a dense one FP16.
	slow := &WireCodec{Enabled: CodecFP16 | CodecCSR, HW: hw.Paper(), Link: throttledLink()}
	if got := slow.pick(sparse, tensorE); got != codecCSR {
		t.Fatalf("pick %d for a sparse tensor, want CSR", got)
	}
	if got := slow.pick(dense, tensorE); got != codecFP16 {
		t.Fatalf("pick %d for a dense tensor, want FP16", got)
	}
	// The binary16 magnitude gate falls back to raw, never to ±Inf.
	if got := slow.pick(huge, tensorE); got != codecRaw {
		t.Fatalf("pick %d for out-of-range values, want raw", got)
	}
	// FP16 disabled: a dense tensor has no worthwhile codec left.
	csrOnly := &WireCodec{Enabled: CodecCSR, HW: hw.Paper(), Link: throttledLink()}
	if got := csrOnly.pick(dense, tensorF); got != codecRaw {
		t.Fatalf("pick %d with only CSR enabled on dense data, want raw", got)
	}
}

func TestEstimateNNZOverestimates(t *testing.T) {
	r := rng.NewPool(8)
	for _, density := range []float64{0, 0.05, 0.3, 1} {
		m := randomSparseDense(r, 64, 48, density)
		est := estimateNNZ(m)
		if nnz := m.NNZ(); est < nnz {
			t.Fatalf("density %.2f: estimate %d below true nnz %d (must be pessimistic)", density, est, nnz)
		}
		if est > 64*48 {
			t.Fatalf("density %.2f: estimate %d exceeds the element count", density, est)
		}
	}
}

// randomSparseDense fills about density of the elements with uniforms.
func randomSparseDense(r *rng.Pool, rows, cols int, density float64) *tensor.Matrix {
	m := tensor.New(rows, cols)
	src := r.NewUniform(rows, cols, -1, 1)
	for i, v := range src.Data {
		if float64(i%100)/100 < density {
			m.Data[i] = v
		}
	}
	return m
}

func TestAppendWireTensorFallsBackToDense(t *testing.T) {
	r := rng.NewPool(9)
	dense := r.NewUniform(16, 16, -1, 1)
	// A CSR election on locally dense data must ship a raw frame: the
	// pick's sampled estimate can be wrong for one band, the bytes on the
	// wire must not be.
	frame := appendWireTensor(nil, dense, codecCSR)
	if frame[0] != 'D' {
		t.Fatalf("dense band under a CSR pick shipped tag %q, want 'D'", frame[0])
	}
	sparse := tensor.New(16, 16)
	sparse.Set(2, 3, 1)
	if frame := appendWireTensor(nil, sparse, codecCSR); frame[0] != 'S' {
		t.Fatalf("sparse tensor under a CSR pick shipped tag %q, want 'S'", frame[0])
	}
	if frame := appendWireTensor(nil, dense, codecFP16); frame[0] != 'H' {
		t.Fatalf("FP16 pick shipped tag %q, want 'H'", frame[0])
	}
	got := tensor.New(16, 16)
	if _, err := tensor.DecodeAnyInto(got, frame); err != nil {
		t.Fatal(err)
	}
}

func TestParseWireCodecName(t *testing.T) {
	for name, want := range map[string]CodecSet{
		"": 0, "raw": 0, "auto": CodecFP16 | CodecCSR, "fp16": CodecFP16, "csr": CodecCSR,
	} {
		got, err := ParseWireCodecName(name)
		if err != nil || got != want {
			t.Fatalf("ParseWireCodecName(%q) = %b, %v", name, got, err)
		}
	}
	if _, err := ParseWireCodecName("gzip"); err == nil {
		t.Fatal("unknown codec name accepted")
	}
}

// runWireMulPair executes both parties' pipelined multiplication over an
// in-process pipe and returns the combined result.
func runWireMulPair(t *testing.T, cfg0, cfg1 WireConfig, in0, in1 Shares) *tensor.Matrix {
	t.Helper()
	c0, c1 := comm.Pipe()
	defer c0.Close()
	defer c1.Close()
	w0, w1 := newWireMul(0, cfg0), newWireMul(1, cfg1)
	defer w0.close()
	defer w1.close()
	var wg sync.WaitGroup
	var r0, r1 *tensor.Matrix
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		r0, e0 = w0.mul(c0, in0.A, in0.B, in0.T, nil, nil)
	}()
	go func() {
		defer wg.Done()
		r1, e1 = w1.mul(c1, in1.A, in1.B, in1.T, nil, nil)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("wire parties failed: %v / %v", e0, e1)
	}
	return RemoteCombine(r0, r1)
}

// sparseEShares builds valid shares whose LOCAL E_i = A_i − U_i tensors
// are sparse: A_0 = U_0 + S (S sparse), A_1 = U_1, so E_0's zeros cancel
// exactly in fp32 and E_1 is identically zero. The triplet is honest
// (Z = U×V), so the protocol computes the true (U+S)×B product.
func sparseEShares(p *rng.Pool, s *tensor.Matrix, n int) (in0, in1 Shares, a, b *tensor.Matrix) {
	m, k := s.Rows, s.Cols
	u := p.NewUniform(m, k, -1, 1)
	v := p.NewUniform(k, n, -1, 1)
	z := tensor.MulTo(u, v)
	u0, u1 := SplitRand(p, u)
	v0, v1 := SplitRand(p, v)
	z0, z1 := SplitRand(p, z)
	a0 := tensor.New(m, k)
	tensor.Add(a0, u0, s)
	a1 := u1.Clone()
	a = tensor.New(m, k)
	tensor.Add(a, a0, a1)
	b = p.NewUniform(k, n, -1, 1)
	b0, b1 := SplitRand(p, b)
	in0 = Shares{A: a0, B: b0, T: TripletShares{U: u0, V: v0, Z: z0}}
	in1 = Shares{A: a1, B: b1, T: TripletShares{U: u1, V: v1, Z: z1}}
	return in0, in1, a, b
}

// TestWireMulCodecCSRBitIdentical: CSR is lossless, so a codec-enabled
// exchange over sparse E shares must reproduce the raw path bit for bit —
// and it must actually have used CSR (the picks counter moves).
func TestWireMulCodecCSRBitIdentical(t *testing.T) {
	p := rng.NewPool(41)
	s := tensor.New(24, 16)
	for i := 0; i < 6; i++ {
		s.Set((i*3)%24, (i*5)%16, float32(i%5)+0.5)
	}
	in0, in1, _, _ := sparseEShares(p, s, 20)
	raw := WireConfig{ChunkRows: 8}
	want := runWireMulPair(t, raw, raw, in0, in1)

	wc0 := &WireCodec{Enabled: CodecCSR, HW: hw.Paper(), Link: throttledLink()}
	wc1 := &WireCodec{Enabled: CodecCSR, HW: hw.Paper(), Link: throttledLink()}
	csrBefore := metrics.wireCodecPicks[tensorE][codecCSR].Value()
	got := runWireMulPair(t,
		WireConfig{ChunkRows: 8, Codec: wc0},
		WireConfig{ChunkRows: 8, Codec: wc1}, in0, in1)
	if !got.Equal(want) {
		t.Fatalf("CSR-coded result differs from raw by %v", got.MaxAbsDiff(want))
	}
	if after := metrics.wireCodecPicks[tensorE][codecCSR].Value(); after <= csrBefore {
		t.Fatal("no E tensor was CSR-coded; the test exercised nothing")
	}
}

// TestWireMulCodecFP16Tolerance: FP16 perturbs only the revealed E/F, so
// the result must stay within the documented reveal-only error bound of
// the raw path — and within plaintext tolerance of the true product.
func TestWireMulCodecFP16Tolerance(t *testing.T) {
	p := rng.NewPool(42)
	a := p.NewUniform(24, 16, -1, 1)
	b := p.NewUniform(16, 20, -1, 1)
	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)
	raw := WireConfig{ChunkRows: 8}
	want := runWireMulPair(t, raw, raw, in0, in1)

	wc0 := &WireCodec{Enabled: CodecFP16, HW: hw.Paper(), Link: throttledLink()}
	wc1 := &WireCodec{Enabled: CodecFP16, HW: hw.Paper(), Link: throttledLink()}
	fpBefore := metrics.wireCodecPicks[tensorE][codecFP16].Value()
	got := runWireMulPair(t,
		WireConfig{ChunkRows: 8, Codec: wc0},
		WireConfig{ChunkRows: 8, Codec: wc1}, in0, in1)
	if after := metrics.wireCodecPicks[tensorE][codecFP16].Value(); after <= fpBefore {
		t.Fatal("no E tensor was FP16-coded; the test exercised nothing")
	}
	// Error algebra (DESIGN.md): C' − C = U·γ + δ·V − δ·γ for rounding
	// perturbations δ, γ; with |values| ≲ ShareRange+1 and binary16 ulp
	// ~2^-10 at that magnitude, 0.04 per inner-dimension element is loose.
	k := float64(a.Cols)
	if diff := got.MaxAbsDiff(want); diff > 0.04*k {
		t.Fatalf("FP16-coded result off raw by %v, bound %v", diff, 0.04*k)
	}
	if !got.ApproxEqual(tensor.MulNaive(a, b), 0.04*k) {
		t.Fatalf("FP16-coded result off the plaintext product by %v",
			got.MaxAbsDiff(tensor.MulNaive(a, b)))
	}
}

// startServePairCfgs is startServePair with per-party configs, for
// mixed-version pairs (one codec-capable server, one without).
func startServePairCfgs(tb testing.TB, cfg0, cfg1 ServeConfig) (addr0, addr1 string, shutdown func()) {
	tb.Helper()
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		peer, err := comm.Accept(peerLn)
		peerLn.Close()
		if err != nil {
			tb.Errorf("peer accept: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 0, ln0, peer, cfg0); err != nil {
			tb.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		peer, err := comm.DialRetry(peerLn.Addr().String(), comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
		if err != nil {
			tb.Errorf("peer dial: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 1, ln1, peer, cfg1); err != nil {
			tb.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

func codecServeConfig(set CodecSet) ServeConfig {
	cfg := ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		Wire:          &WireConfig{ChunkRows: 8},
	}
	if set != 0 {
		cfg.Wire.Codec = &WireCodec{Enabled: set, HW: hw.Paper(), Negotiate: true}
	}
	return cfg
}

// TestServeCodecNegotiationUpgrades: two codec-capable servers exchange
// capability frames on the reserved control session and upgrade to the
// full set, and a request through the negotiated stack still matches the
// serial reference exactly (on a fast local link every pick stays raw —
// the hw crossover says compression doesn't pay there).
func TestServeCodecNegotiationUpgrades(t *testing.T) {
	p := rng.NewPool(77)
	a := p.NewUniform(24, 16, -1, 1)
	b := p.NewUniform(16, 20, -1, 1)
	t0, t1 := GenGemmTripletShares(p, 24, 16, 20)
	a0, a1 := SplitRand(p, a)
	b0, b1 := SplitRand(p, b)
	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	want := serialReference(t, in0, in1)

	cfg0 := codecServeConfig(CodecFP16 | CodecCSR)
	cfg1 := codecServeConfig(CodecFP16 | CodecCSR)
	addr0, addr1, shutdown := startServePairCfgs(t, cfg0, cfg1)
	defer shutdown()

	deadline := time.Now().Add(10 * time.Second)
	for cfg0.Wire.Codec.usable() != CodecFP16|CodecCSR || cfg1.Wire.Codec.usable() != CodecFP16|CodecCSR {
		if time.Now().After(deadline) {
			t.Fatalf("negotiation never completed: usable %b / %b",
				cfg0.Wire.Codec.usable(), cfg1.Wire.Codec.usable())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c0, c1 := dialPair(t, addr0, addr1)
	defer c0.Close()
	defer c1.Close()
	got, err := RequestMul(c0, c1, in0, in1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("negotiated-stack result differs from serial path by %v", got.MaxAbsDiff(want))
	}
}

// TestServeCodecMixedVersion is the backward-compatibility proof: a
// codec-capable server paired with an old (codec-less) one serves
// requests bit-identically to the serial path and NEVER upgrades — the
// old peer never answers on the control session, so the new sender stays
// raw forever instead of emitting frames the handshake didn't clear.
func TestServeCodecMixedVersion(t *testing.T) {
	p := rng.NewPool(78)
	a := p.NewUniform(24, 16, -1, 1)
	b := p.NewUniform(16, 20, -1, 1)
	t0, t1 := GenGemmTripletShares(p, 24, 16, 20)
	a0, a1 := SplitRand(p, a)
	b0, b1 := SplitRand(p, b)
	in0 := Shares{A: a0, B: b0, T: t0}
	in1 := Shares{A: a1, B: b1, T: t1}
	want := serialReference(t, in0, in1)

	cfg0 := codecServeConfig(CodecFP16 | CodecCSR) // new server
	cfg1 := codecServeConfig(0)                    // old server: no codec at all
	addr0, addr1, shutdown := startServePairCfgs(t, cfg0, cfg1)
	defer shutdown()
	c0, c1 := dialPair(t, addr0, addr1)
	defer c0.Close()
	defer c1.Close()
	for i := 0; i < 3; i++ {
		got, err := RequestMul(c0, c1, in0, in1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("mixed-version result differs from serial path by %v", got.MaxAbsDiff(want))
		}
	}
	if got := cfg0.Wire.Codec.usable(); got != 0 {
		t.Fatalf("new server upgraded to %b against a codec-less peer", got)
	}
}

// TestResetLinkRestoresStaticBudget is the regression for the stale
// bandwidth EWMA: a throttled measurement from a dead link incarnation
// must not survive a reconnect. ResetLink discards the estimate and the
// byte budget returns to the static hardware model until fresh samples
// arrive (ServeClients wires it to SupervisedLink.OnReconnect).
func TestResetLinkRestoresStaticBudget(t *testing.T) {
	wc := &WireCodec{Enabled: CodecFP16, HW: hw.Paper()}
	static := wc.budgetBps()
	if static <= 0 {
		t.Fatal("static budget must be positive for this test")
	}
	// One painfully slow observed transfer: 1 KiB over a full second.
	wc.ObserveLink(1024, time.Second)
	throttled := wc.budgetBps()
	if throttled >= static {
		t.Fatalf("measured budget %v not below static %v; EWMA never engaged", throttled, static)
	}
	wc.ResetLink()
	if got := wc.budgetBps(); got != static {
		t.Fatalf("budget after ResetLink = %v, want static %v", got, static)
	}
	// A fresh sample after the reset seeds the EWMA from scratch, not
	// from the discarded history.
	wc.ObserveLink(2048, time.Second)
	want := 2048.0
	if got := wc.budgetBps(); got != want {
		t.Fatalf("first post-reset sample yields budget %v, want %v", got, want)
	}
	// Nil receiver stays safe (codec-less configs call through).
	var none *WireCodec
	none.ResetLink()
}
