package mpc

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// envelopeShares builds one party's worth of 5×6×4 request shares.
func envelopeShares(seed uint64) Shares {
	p := rng.NewPool(seed)
	a := p.NewUniform(5, 6, -1, 1)
	b := p.NewUniform(6, 4, -1, 1)
	a0, _ := SplitRand(p, a)
	b0, _ := SplitRand(p, b)
	t0, _ := GenGemmTripletShares(p, 5, 6, 4)
	return Shares{A: a0, B: b0, T: t0}
}

// TestBudgetEnvelopeRoundTrip pins the deadline envelope's wire
// contract: the budget survives encode → peek, the payload decodes
// identically with and without the envelope, and legacy frames report
// no budget.
func TestBudgetEnvelopeRoundTrip(t *testing.T) {
	in := envelopeShares(31)
	const id = uint64(0xfeedbeefcafe)
	budget := 1500 * time.Microsecond
	frame := EncodeRequestBudget(id, budget, in)

	got, ok := PeekBudget(frame)
	if !ok || got != budget {
		t.Fatalf("PeekBudget = %v ok=%v, want %v", got, ok, budget)
	}
	gotID, dec, err := DecodeRequest(frame)
	if err != nil {
		t.Fatalf("DecodeRequest on enveloped frame: %v", err)
	}
	if gotID != id {
		t.Fatalf("id %#x, want %#x", gotID, id)
	}
	if !dec.A.ApproxEqual(in.A, 0) || !dec.B.ApproxEqual(in.B, 0) || !dec.T.Z.ApproxEqual(in.T.Z, 0) {
		t.Fatal("enveloped payload did not survive the round trip bit-identically")
	}

	legacy := EncodeRequest(id, in)
	if _, ok := PeekBudget(legacy); ok {
		t.Fatal("legacy frame reported a deadline envelope")
	}
	if _, dec, err := DecodeRequest(legacy); err != nil || !dec.A.ApproxEqual(in.A, 0) {
		t.Fatalf("legacy frame broken by envelope support: %v", err)
	}

	// Sub-microsecond and negative budgets clamp to zero (expired).
	if got, ok := PeekBudget(EncodeRequestBudget(id, 400*time.Nanosecond, in)); !ok || got != 0 {
		t.Fatalf("sub-µs budget = %v ok=%v, want 0", got, ok)
	}
	if got, ok := PeekBudget(EncodeRequestBudget(id, -time.Second, in)); !ok || got != 0 {
		t.Fatalf("negative budget = %v ok=%v, want 0", got, ok)
	}
}

// TestSetBudget checks the relay hop's in-place rewrite: only the budget
// field changes, the payload stays intact, and legacy frames refuse the
// write.
func TestSetBudget(t *testing.T) {
	in := envelopeShares(32)
	frame := EncodeRequestBudget(9, 800*time.Microsecond, in)
	if !SetBudget(frame, 300*time.Microsecond) {
		t.Fatal("SetBudget refused an enveloped frame")
	}
	if got, ok := PeekBudget(frame); !ok || got != 300*time.Microsecond {
		t.Fatalf("budget after rewrite = %v ok=%v, want 300µs", got, ok)
	}
	if _, dec, err := DecodeRequest(frame); err != nil || !dec.T.Z.ApproxEqual(in.T.Z, 0) {
		t.Fatalf("payload damaged by in-place budget rewrite: %v", err)
	}
	if SetBudget(EncodeRequest(9, in), time.Millisecond) {
		t.Fatal("SetBudget wrote to a legacy frame")
	}
}

// TestPeekRequestShape checks the router's header-only geometry read on
// both frame forms, and that non-request frames are refused.
func TestPeekRequestShape(t *testing.T) {
	in := envelopeShares(33)
	for _, frame := range [][]byte{
		EncodeRequest(5, in),
		EncodeRequestBudget(5, time.Millisecond, in),
	} {
		m, k, n, ok := PeekRequestShape(frame)
		if !ok || m != 5 || k != 6 || n != 4 {
			t.Fatalf("PeekRequestShape = (%d,%d,%d) ok=%v, want (5,6,4)", m, k, n, ok)
		}
	}
	for _, bad := range [][]byte{
		nil,
		{1, 2, 3},
		EncodeRequest(5, in)[:12],
		EncodeRouteError(5, RouteNoReplicas, 0),
	} {
		if _, _, _, ok := PeekRequestShape(bad); ok {
			t.Fatalf("PeekRequestShape accepted a non-request frame of %d bytes", len(bad))
		}
	}
	if est := DeadlineEstimate(5, 6, 4); est <= 0 || est > time.Millisecond {
		t.Fatalf("DeadlineEstimate(5,6,4) = %v, want a positive sub-ms exchange floor", est)
	}
}

// TestRouteErrorRoundTrip pins the typed error frame: codes,
// retry-after, retryability, and the discrimination against every other
// frame kind on the same connection.
func TestRouteErrorRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		code      RouteErrorCode
		retryable bool
	}{
		{RouteNoReplicas, true},
		{RouteRetriesExhausted, true},
		{RouteDeadlineExceeded, false},
		{RouteDraining, true},
	} {
		frame := EncodeRouteError(77, tc.code, 50*time.Millisecond)
		id, re, ok := DecodeRouteError(frame)
		if !ok || id != 77 {
			t.Fatalf("%s: decode id=%d ok=%v", tc.code, id, ok)
		}
		if re.Code != tc.code || re.RetryAfter != 50*time.Millisecond {
			t.Fatalf("%s: decoded %+v", tc.code, re)
		}
		if re.Retryable() != tc.retryable {
			t.Fatalf("%s: Retryable() = %v, want %v", tc.code, re.Retryable(), tc.retryable)
		}
		if re.Error() == "" {
			t.Fatalf("%s: empty error string", tc.code)
		}
	}
	// Nothing else on the wire may decode as an error frame: requests,
	// enveloped requests, and truncated/padded variants.
	in := envelopeShares(34)
	errFrame := EncodeRouteError(1, RouteNoReplicas, 0)
	for _, other := range [][]byte{
		nil,
		EncodeRequest(1, in),
		EncodeRequestBudget(1, time.Second, in),
		errFrame[:len(errFrame)-1],
		append(append([]byte{}, errFrame...), 0),
	} {
		if _, _, ok := DecodeRouteError(other); ok {
			t.Fatalf("DecodeRouteError accepted a %d-byte non-error frame", len(other))
		}
	}
	// The smallest legal result frame (id + dense 1×1 matrix) is 21
	// bytes; the error frame's exact-length check can never collide.
	if want := requestIDBytes + 9 + 4; want <= routeErrFrameB {
		t.Fatalf("result frames (≥%d bytes) can collide with %d-byte error frames", want, routeErrFrameB)
	}
}

// TestServeDeadlineShed drives the replica-side admission check end to
// end: a request whose budget cannot cover the exchange floor is
// refused with a typed deadline error before any MPC work, counted on
// the server shed metric, and the session keeps serving.
func TestServeDeadlineShed(t *testing.T) {
	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second, PeerTimeout: 10 * time.Second,
	})
	defer shutdown()
	c0, c1 := dialPair(t, addr0, addr1)
	defer c0.Close()
	defer c1.Close()

	p := rng.NewPool(35)
	a := p.NewUniform(5, 6, -1, 1)
	b := p.NewUniform(6, 4, -1, 1)
	a0, a1 := SplitRand(p, a)
	b0, b1 := SplitRand(p, b)
	t0, t1 := GenGemmTripletShares(p, 5, 6, 4)
	in := [2]Shares{{A: a0, B: b0, T: t0}, {A: a1, B: b1, T: t1}}

	before := metrics.deadlineShed.Value()
	const id = uint64(21)
	_, err := requestMulFrames(id, c0, c1,
		EncodeRequestBudget(id, time.Microsecond, in[0]),
		EncodeRequestBudget(id, time.Microsecond, in[1]))
	if err == nil {
		t.Fatal("1µs-budget request was served")
	}
	var re *RouteError
	if !errors.As(err, &re) || re.Code != RouteDeadlineExceeded {
		t.Fatalf("expired request failed with %v, want %s", err, RouteDeadlineExceeded)
	}
	if got := metrics.deadlineShed.Value(); got != before+2 {
		t.Fatalf("server sheds counted %d, want 2", got-before)
	}
	// The same connections still serve: admission refusal is in-band.
	got, err := RequestMulID(id+1, c0, c1, in[0], in[1])
	if err != nil {
		t.Fatalf("session did not survive the admission refusal: %v", err)
	}
	if !got.ApproxEqual(tensor.MulNaive(a, b), 1e-3) {
		t.Fatal("post-shed request returned a wrong product")
	}
}

// TestRetryHint checks the client ladder's safety condition: re-sending
// is offered only when EVERY leg failure is a retryable route error.
func TestRetryHint(t *testing.T) {
	retryable := func(server int, after time.Duration) error {
		return &ServerError{Server: server, Op: "route",
			Err: &RouteError{Code: RouteNoReplicas, RetryAfter: after}}
	}
	wait, ok := retryHint(errors.Join(
		retryable(0, 20*time.Millisecond), retryable(1, 70*time.Millisecond)))
	if !ok || wait != 70*time.Millisecond {
		t.Fatalf("both legs retryable: wait=%v ok=%v, want 70ms true", wait, ok)
	}
	if _, ok := retryHint(errors.Join(
		retryable(0, 0),
		&ServerError{Server: 1, Op: "result", Err: fmt.Errorf("connection reset")},
	)); ok {
		t.Fatal("mixed route/transport failure offered a retry")
	}
	if _, ok := retryHint(&ServerError{Server: 0, Op: "route",
		Err: &RouteError{Code: RouteDeadlineExceeded}}); ok {
		t.Fatal("deadline-exceeded offered a retry")
	}
	if _, ok := retryHint(fmt.Errorf("plain failure")); ok {
		t.Fatal("plain error offered a retry")
	}
}
