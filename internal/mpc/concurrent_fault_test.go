package mpc_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/mpc"
	"parsecureml/internal/mpc/tripletpool"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// External-package view of the concurrent serving stack: the full client
// flow (offline triplet pool -> input split -> RequestMul) against
// ServeClients through exported API only, with fault injection.

// startPair boots both parties as concurrent accept loops over a real
// TCP peer link.
func startPair(t *testing.T, cfg mpc.ServeConfig) (addr0, addr1 string, shutdown func()) {
	t.Helper()
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		peer, err := comm.Accept(peerLn)
		peerLn.Close()
		if err != nil {
			t.Errorf("peer accept: %v", err)
			return
		}
		defer peer.Close()
		if err := mpc.ServeClients(ctx, 0, ln0, peer, cfg); err != nil {
			t.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		peer, err := comm.DialRetry(peerLn.Addr().String(), comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
		if err != nil {
			t.Errorf("peer dial: %v", err)
			return
		}
		defer peer.Close()
		if err := mpc.ServeClients(ctx, 1, ln1, peer, cfg); err != nil {
			t.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

// TestConcurrentSessionsSurviveClientKill is the satellite fault drill:
// 8 clients run concurrently; one is killed mid-RequestMul (its upload
// to server 0 dies partway through a frame via comm.FaultConn), and the
// surviving 7 sessions must all complete with correct results. Run under
// -race in CI.
func TestConcurrentSessionsSurviveClientKill(t *testing.T) {
	const honest = 7
	addr0, addr1, shutdown := startPair(t, mpc.ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   700 * time.Millisecond,
		MaxSessions:   honest + 1,
	})
	defer shutdown()

	pool := tripletpool.New(tripletpool.Config{Depth: 2, Workers: 2, Seed: 77})
	defer pool.Close()
	p := rng.NewPool(88)

	var mu sync.Mutex // rng.Pool fills are thread-safe; plaintext draws stay ordered for determinism
	draw := func(rows, cols int) *tensor.Matrix {
		mu.Lock()
		defer mu.Unlock()
		return p.NewUniform(rows, cols, -1, 1)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup

	// The rogue: dials server 0 through a FaultConn whose write budget
	// dies mid-frame, so its request upload truncates while its server 1
	// leg completes — the exact half-uploaded state that used to wedge
	// the serial peer link.
	wg.Add(1)
	go func() {
		defer wg.Done()
		raw0, err := net.Dial("tcp", addr0)
		if err != nil {
			t.Errorf("rogue dial 0: %v", err)
			return
		}
		fc := comm.NewFaultConn(raw0)
		fc.FailWriteAfter = 256 // dies 256 bytes into the upload
		c0 := comm.Wrap(fc)
		defer c0.Close()
		c1, err := comm.Dial(addr1)
		if err != nil {
			t.Errorf("rogue dial 1: %v", err)
			return
		}
		defer c1.Close()
		c0.SetTimeouts(3*time.Second, 3*time.Second)
		c1.SetTimeouts(3*time.Second, 3*time.Second)
		a := draw(16, 12)
		b := draw(12, 16)
		in0, in1 := pool.Split(a, b)
		<-start
		if _, err := mpc.RequestMul(c0, c1, in0, in1); err == nil {
			t.Error("rogue RequestMul succeeded despite injected write failure")
		}
	}()

	// Seven honest clients, three verified requests each.
	for i := 0; i < honest; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c0, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
			if err != nil {
				t.Errorf("client %d dial 0: %v", i, err)
				return
			}
			defer c0.Close()
			c1, err := comm.DialRetry(addr1, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
			if err != nil {
				t.Errorf("client %d dial 1: %v", i, err)
				return
			}
			defer c1.Close()
			c0.SetTimeouts(10*time.Second, 10*time.Second)
			c1.SetTimeouts(10*time.Second, 10*time.Second)
			m, k, n := 14+i, 10, 12 // distinct geometry per client
			<-start
			for r := 0; r < 3; r++ {
				a := draw(m, k)
				b := draw(k, n)
				in0, in1 := pool.Split(a, b)
				got, err := mpc.RequestMul(c0, c1, in0, in1)
				if err != nil {
					t.Errorf("honest client %d round %d: %v", i, r, err)
					return
				}
				want := tensor.MulNaive(a, b)
				if !got.ApproxEqual(want, 1e-3) {
					t.Errorf("honest client %d round %d off by %v", i, r, got.MaxAbsDiff(want))
					return
				}
			}
		}(i)
	}

	close(start)
	wg.Wait()
}
