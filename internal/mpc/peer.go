package mpc

import (
	"fmt"

	"parsecureml/internal/comm"
)

// SupervisePeer wraps the inter-server link in a comm.SupervisedLink:
// connect is the raw dial or accept (it runs again after every
// connection loss), and each fresh connection re-runs the role handshake
// (WriteHello/ReadHello) before the supervisor's resync, so a reconnect
// can never silently attach to a process claiming the wrong party.
// Heartbeat RTT samples land on psml_link_heartbeat_rtt_seconds unless
// cfg.ObserveRTT is already set.
//
// The returned link slots directly into ServeClients' peer parameter.
// Both parties must run one (the supervised frame protocol is
// symmetric); mixing a supervised and a bare peer fails the first
// resync handshake.
func SupervisePeer(party int, connect func() (*comm.Conn, error), cfg comm.SupervisorConfig) (*comm.SupervisedLink, error) {
	if cfg.ObserveRTT == nil {
		cfg.ObserveRTT = metrics.linkRTT.Observe
	}
	return comm.NewSupervisedLink(func() (comm.Framer, error) {
		c, err := connect()
		if err != nil {
			return nil, err
		}
		if err := WriteHello(c, party); err != nil {
			c.Close()
			return nil, err
		}
		peerParty, err := ReadHello(c)
		if err != nil {
			c.Close()
			return nil, err
		}
		if peerParty == party {
			c.Close()
			return nil, fmt.Errorf("mpc: both ends of the peer link claim party %d", party)
		}
		return c, nil
	}, cfg)
}
