package mpc

import (
	"parsecureml/internal/gpu"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// DefaultGPUMemBudget returns the device-memory budget OnlineMulGPU plans
// against: the device capacity less a safety margin for allocator slack.
func DefaultGPUMemBudget(d *gpu.Device) int64 {
	// Keep 1/16 of the card free for allocator slack.
	cap := d.MemCapacity()
	return cap - cap/16
}

// onlineMulGPUChunked executes Eq. (8) for working sets that exceed device
// memory, the situation the NIST 512×512 convolutions create: F and B_i
// stay resident while row bands of E, A_i and Z_i stream through the
// device, each band's transfers overlapping the previous band's kernels —
// the fine-grained distribution challenge 1 (§3.3) calls for.
func (s *Server) onlineMulGPUChunked(ef EF, in Shares, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	d := s.Dev
	m, k, n := in.A.Rows, in.A.Cols, in.B.Cols
	pre := append([]*simtime.Task{ef.Done}, deps...)

	// Band height: fit 2× (band of E, A, D, Z, C) + resident F, B within
	// the budget (double buffering for the overlap).
	budget := DefaultGPUMemBudget(d) - d.MemUsed() - int64(8*k*n)
	perRow := int64(4 * (3*k + 2*n) * 2)
	band := int(budget / perRow)
	if band < 1 {
		band = 1
	}
	if band > m {
		band = m
	}

	dF, tF, err := d.H2D(ef.F, pre...)
	must(err)
	dB, tB, err := d.H2D(in.B, pre...)
	must(err)

	c := tensor.New(m, n)
	var outs []*simtime.Task
	var prevKernel *simtime.Task
	for lo := 0; lo < m; lo += band {
		hi := lo + band
		if hi > m {
			hi = m
		}
		eBand := ef.E.SliceRows(lo, hi)
		aBand := in.A.SliceRows(lo, hi)
		zBand := in.T.Z.SliceRows(lo, hi)

		dE, tE, err := d.H2D(eBand, pre...)
		must(err)
		dA, tA, err := d.H2D(aBand, pre...)
		must(err)
		dZ, tZ, err := d.H2D(zBand, pre...)
		must(err)

		dD := d.MustAlloc(hi-lo, k)
		var tD *simtime.Task
		if s.Party == 1 {
			d.Scale(dD, dE, -1, tE, prevKernel)
			tD = d.AXPY(dD, 1, dA, tA)
		} else {
			tD = d.Scale(dD, dA, 1, tA, prevKernel)
		}
		dC := d.MustAlloc(hi-lo, n)
		g1 := d.Gemm(dC, dD, dF, tD, tF)
		g2 := d.GemmAcc(dC, dE, dB, g1, tB)
		g3 := d.AXPY(dC, 1, dZ, g2, tZ)
		hostBand, tOut := d.D2H(dC, g3)
		if tensor.ComputeEnabled() {
			c.SliceRows(lo, hi).CopyFrom(hostBand)
		}
		outs = append(outs, tOut)
		prevKernel = g3

		d.Free(dE)
		d.Free(dA)
		d.Free(dZ)
		d.Free(dD)
		d.Free(dC)
	}
	d.Free(dF)
	d.Free(dB)
	done := s.Eng.After(outs...)
	return c, done
}

// onlineMulMultiGPU row-splits Eq. (8) across the server's devices: every
// GPU holds F and B_i and processes its band of E, A_i, Z_i — the
// data-parallel scheme the paper's multi-GPU outlook (§8, [63]) sketches.
// Bands run on independent device/PCIe timelines, so the modeled time
// approaches 1/G of the single-GPU kernel time plus the replicated
// transfers.
func (s *Server) onlineMulMultiGPU(ef EF, in Shares, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	devs := s.Devs
	m, n := in.A.Rows, in.B.Cols
	pre := append([]*simtime.Task{ef.Done}, deps...)

	c := tensor.New(m, n)
	band := (m + len(devs) - 1) / len(devs)
	var outs []*simtime.Task
	for g, d := range devs {
		lo := g * band
		if lo >= m {
			break
		}
		hi := lo + band
		if hi > m {
			hi = m
		}
		eBand := ef.E.SliceRows(lo, hi)
		aBand := in.A.SliceRows(lo, hi)
		zBand := in.T.Z.SliceRows(lo, hi)

		dF, tF, err := d.H2D(ef.F, pre...)
		must(err)
		dB, tB, err := d.H2D(in.B, pre...)
		must(err)
		dE, tE, err := d.H2D(eBand, pre...)
		must(err)
		dA, tA, err := d.H2D(aBand, pre...)
		must(err)
		dZ, tZ, err := d.H2D(zBand, pre...)
		must(err)

		dD := d.MustAlloc(hi-lo, in.A.Cols)
		var tD *simtime.Task
		if s.Party == 1 {
			d.Scale(dD, dE, -1, tE)
			tD = d.AXPY(dD, 1, dA, tA)
		} else {
			tD = d.Scale(dD, dA, 1, tA)
		}
		var barrier *simtime.Task
		if !s.PipelineTransfers {
			barrier = s.Eng.After(tE, tA, tF, tB, tZ)
		}
		dC := d.MustAlloc(hi-lo, n)
		g1 := d.Gemm(dC, dD, dF, tD, tF, barrier)
		g2 := d.GemmAcc(dC, dE, dB, g1, tB)
		g3 := d.AXPY(dC, 1, dZ, g2, tZ)
		hostBand, tOut := d.D2H(dC, g3)
		if tensor.ComputeEnabled() {
			c.SliceRows(lo, hi).CopyFrom(hostBand)
		}
		outs = append(outs, tOut)

		d.Free(dF)
		d.Free(dB)
		d.Free(dE)
		d.Free(dA)
		d.Free(dZ)
		d.Free(dD)
		d.Free(dC)
	}
	return c, s.Eng.After(outs...)
}
