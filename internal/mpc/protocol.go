package mpc

import (
	"fmt"

	"parsecureml/internal/comm"
	"parsecureml/internal/hw"
	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// Config selects the framework features for a deployment; the evaluation
// benches toggle these to isolate each optimization's contribution.
type Config struct {
	Platform hw.Platform
	UseGPU   bool // servers (and client offline) use their V100s
	// GPUsPerServer attaches extra V100s per server (0/1 = one GPU); the
	// online operation row-splits across them (paper §8's multi-GPU
	// outlook implemented).
	GPUsPerServer int
	TensorCores   bool // §5.2 GEMM math mode
	Compress      bool // §4.4 compressed E/F transmission
	Pipeline      bool // Fig. 5 transfer/compute overlap
	ParallelCPU   bool // §5.1 CPU parallelism
	// RingDomain marks the SecureML baseline's arithmetic: scalar Z_2^64
	// fixed-point loops instead of SIMD FP32 — the historically accurate
	// cost model for the comparison system ([10] computes in the ring;
	// internal/fixed implements it for real).
	RingDomain bool
	Seed       uint64
	// DrySparsityHint is the assumed E/F delta sparsity when scheduling in
	// dry-run mode (tensor.SetCompute(false)); calibrate from a small-scale
	// real run. Irrelevant when compute is on.
	DrySparsityHint float64
}

// DefaultConfig returns the full ParSecureML feature set on the paper
// platform.
func DefaultConfig() Config {
	return Config{
		Platform:    hw.Paper(),
		UseGPU:      true,
		TensorCores: true,
		Compress:    true,
		Pipeline:    true,
		ParallelCPU: true,
		Seed:        1,
	}
}

// SecureMLConfig returns the baseline configuration: CPU-only servers
// (multi-threaded — a competent CPU implementation), no transfer pipeline,
// no compressed transmission — the SecureML re-implementation of §7.1.
// ParSecureML's measured advantages are then exactly the paper's
// contributions: GPUs (+Tensor Cores), the double pipeline, and the
// compressed transmission.
func SecureMLConfig() Config {
	return Config{
		Platform:    hw.Paper(),
		UseGPU:      false,
		TensorCores: false,
		Compress:    false,
		Pipeline:    false,
		ParallelCPU: false,
		RingDomain:  true,
		Seed:        1,
	}
}

// Deployment is the paper's three-node topology: one client (data owner)
// and two computation servers sharing a simtime engine.
type Deployment struct {
	Cfg    Config
	Eng    *simtime.Engine
	Client *Client
	S0, S1 *Server
	mask   *rng.Pool // server-side re-sharing masks (held by server 0)
	sites  map[string]*mulSite
	up0    *comm.Link // client -> server 0 (share upload)
	up1    *comm.Link // client -> server 1
	down   *comm.Link // servers -> client (result return)
}

// mulSite caches the per-multiplication-site state the paper holds fixed
// across epochs: the share masks for A and B and the Beaver triplet
// (U, V, Z). Reuse is what makes the E/F deltas of Eqs. (10)–(12) sparse
// and hence compressible — with fresh masks every epoch nothing would ever
// compress.
type mulSite struct {
	kind         string // "gemm" or "hadamard"
	m, k, n      int
	maskA, maskB *tensor.Matrix
	t0, t1       TripletShares
}

// NewDeployment builds the topology with cfg's features.
func NewDeployment(cfg Config) *Deployment {
	eng := simtime.NewEngine()
	gpus := 0
	if cfg.UseGPU {
		gpus = cfg.GPUsPerServer
		if gpus < 1 {
			gpus = 1
		}
	}
	cn := NewNode("client", cfg.Platform, eng, cfg.UseGPU)
	n0 := NewNodeGPUs("server0", cfg.Platform, eng, gpus)
	n1 := NewNodeGPUs("server1", cfg.Platform, eng, gpus)
	for _, n := range []*Node{cn, n0, n1} {
		n.ParallelCPU = cfg.ParallelCPU
		n.Ring = cfg.RingDomain
		for _, d := range n.Devs {
			d.EnableTensorCores(cfg.TensorCores)
		}
		if n.Dev != nil && len(n.Devs) == 0 {
			n.Dev.EnableTensorCores(cfg.TensorCores)
		}
	}
	// The client is the data owner's own machine running the same
	// partitioning code under either system; the baseline's serial/ring
	// properties model the *servers*. Both systems' offline phases then
	// differ only where the paper says they do: the Z = U×V triplet
	// computation moves to the client GPU (Fig. 12's modest ~1.3×).
	cn.ParallelCPU = true
	s0, s1 := NewServerPair(n0, n1)
	s0.Compress, s1.Compress = cfg.Compress, cfg.Compress
	s0.PipelineTransfers, s1.PipelineTransfers = cfg.Pipeline, cfg.Pipeline
	s0.DrySparsity, s1.DrySparsity = cfg.DrySparsityHint, cfg.DrySparsityHint
	return &Deployment{
		Cfg:    cfg,
		Eng:    eng,
		Client: NewClient(cn, cfg.Seed),
		S0:     s0,
		S1:     s1,
		mask:   rng.NewPool(cfg.Seed ^ 0xa5a5a5a5),
		sites:  make(map[string]*mulSite),
		up0:    comm.NewLink("net.client->server0", cfg.Platform.Net, eng),
		up1:    comm.NewLink("net.client->server1", cfg.Platform.Net, eng),
		down:   comm.NewLink("net.servers->client", cfg.Platform.Net, eng),
	}
}

// Upload charges shipping one share of the given size to each server
// (the client's encrypted-data upload of Figs. 1b and 2).
func (d *Deployment) Upload(bytesPerServer int, deps ...*simtime.Task) *simtime.Task {
	t0 := d.up0.SendSized("upload", bytesPerServer, deps...)
	t1 := d.up1.SendSized("upload", bytesPerServer, deps...)
	return d.Eng.After(t0, t1)
}

// Download charges returning per-server results to the client.
func (d *Deployment) Download(bytesPerServer int, deps ...*simtime.Task) *simtime.Task {
	return d.down.SendSized("download", 2*bytesPerServer, deps...)
}

// UploadLinks exposes the client->server links (traffic accounting).
func (d *Deployment) UploadLinks() (*comm.Link, *comm.Link) { return d.up0, d.up1 }

// site returns the cached multiplication site for stream, creating it (and
// charging the offline costs: mask generation + triplet) on first use.
func (d *Deployment) site(stream, kind string, m, k, n int) (*mulSite, *simtime.Task) {
	if s, ok := d.sites[stream]; ok {
		if s.kind != kind || s.m != m || s.k != k || s.n != n {
			panic(fmt.Sprintf("mpc: stream %q reused with %s %dx%dx%d, was %s %dx%dx%d",
				stream, kind, m, k, n, s.kind, s.m, s.k, s.n))
		}
		return s, nil
	}
	s := &mulSite{kind: kind, m: m, k: k, n: n}
	s.maskA = d.Client.Pool.NewUniform(m, k, -ShareRange, ShareRange)
	tMask := d.Client.RandTask("site.masks", m*k+func() int {
		if kind == "hadamard" {
			return m * k
		}
		return k * n
	}())
	if kind == "hadamard" {
		s.maskB = d.Client.Pool.NewUniform(m, k, -ShareRange, ShareRange)
		s.t0, s.t1, tMask = d.Client.GenHadamardTriplet(m, k, d.Cfg.UseGPU, tMask)
	} else {
		s.maskB = d.Client.Pool.NewUniform(k, n, -ShareRange, ShareRange)
		s.t0, s.t1, tMask = d.Client.GenGemmTriplet(m, k, n, d.Cfg.UseGPU, tMask)
	}
	d.sites[stream] = s
	return s, tMask
}

// splitWithMask shares secret using the site's fixed mask: share 0 is the
// mask (constant across epochs), share 1 = secret − mask (drifts with the
// data). Only the subtraction is charged per epoch.
func (d *Deployment) splitWithMask(secret, mask *tensor.Matrix, deps ...*simtime.Task) (s0, s1 *tensor.Matrix, done *simtime.Task) {
	s1 = tensor.SubTo(secret, mask)
	return mask, s1, d.Client.ElemTask("split.sub", 3*secret.Bytes(), deps...)
}

// MaskPool returns the deployment's re-sharing mask generator (held by
// server 0).
func (d *Deployment) MaskPool() *rng.Pool { return d.mask }

// ResetDeltaStreams rebases both servers' compressed E/F delta streams
// (see Server.ResetStreams). Called at every checkpoint boundary so a
// run resumed from the checkpoint sees the same stream history — a dense
// base next epoch — as the run that wrote it.
func (d *Deployment) ResetDeltaStreams() {
	d.S0.ResetStreams()
	d.S1.ResetStreams()
}

// SecureMatMul runs the complete protocol for C = A×B: offline split +
// triplet on the client, reconstruct + online multiplication on the
// servers, merge on the client. stream names the multiplication for the
// compressed channels. Returns C and the completion task.
func (d *Deployment) SecureMatMul(stream string, a, b *tensor.Matrix) (*tensor.Matrix, *simtime.Task) {
	site, tOffline := d.site(stream, "gemm", a.Rows, a.Cols, b.Cols)
	a0, a1, tSplitA := d.splitWithMask(a, site.maskA, tOffline)
	b0, b1, tSplitB := d.splitWithMask(b, site.maskB, tSplitA)

	in0 := Shares{A: a0, B: b0, T: site.t0}
	in1 := Shares{A: a1, B: b1, T: site.t1}
	ef0, ef1 := ReconstructEF(stream, d.S0, d.S1, in0, in1, tSplitB, tSplitB, tSplitB, tSplitB)

	var c0, c1 *tensor.Matrix
	var tc0, tc1 *simtime.Task
	if d.Cfg.UseGPU {
		c0, tc0 = d.S0.OnlineMulGPU(ef0, in0)
		c1, tc1 = d.S1.OnlineMulGPU(ef1, in1)
	} else {
		c0, tc0 = d.S0.OnlineMulCPU(ef0, in0)
		c1, tc1 = d.S1.OnlineMulCPU(ef1, in1)
	}
	return d.Client.Combine(c0, c1, tc0, tc1)
}

// SecureHadamard runs the protocol for C = A⊙B (element-wise), the CNN
// point-to-point pattern.
func (d *Deployment) SecureHadamard(stream string, a, b *tensor.Matrix) (*tensor.Matrix, *simtime.Task) {
	site, tOffline := d.site(stream, "hadamard", a.Rows, a.Cols, b.Cols)
	a0, a1, tSplitA := d.splitWithMask(a, site.maskA, tOffline)
	b0, b1, tSplitB := d.splitWithMask(b, site.maskB, tSplitA)

	in0 := Shares{A: a0, B: b0, T: site.t0}
	in1 := Shares{A: a1, B: b1, T: site.t1}
	ef0, ef1 := ReconstructEF(stream, d.S0, d.S1, in0, in1, tSplitB, tSplitB, tSplitB, tSplitB)

	var c0, c1 *tensor.Matrix
	var tc0, tc1 *simtime.Task
	if d.Cfg.UseGPU {
		c0, tc0 = d.S0.OnlineHadamardGPU(ef0, in0)
		c1, tc1 = d.S1.OnlineHadamardGPU(ef1, in1)
	} else {
		// CPU Hadamard online: D = A_i − i·E, C = D⊙F + E⊙B_i + Z_i.
		run := func(s *Server, ef EF, in Shares) (*tensor.Matrix, *simtime.Task) {
			dm := in.A.Clone()
			if s.Party == 1 {
				tensor.AXPY(dm, -1, ef.E)
			}
			c := tensor.New(dm.Rows, dm.Cols)
			tensor.Hadamard(c, dm, ef.F)
			eb := tensor.New(dm.Rows, dm.Cols)
			tensor.Hadamard(eb, ef.E, in.B)
			tensor.Add(c, c, eb)
			tensor.Add(c, c, in.T.Z)
			t := s.ElemTask("online.hadamard", 4*3*c.Bytes(), ef.Done)
			return c, t
		}
		c0, tc0 = run(d.S0, ef0, in0)
		c1, tc1 = run(d.S1, ef1, in1)
	}
	return d.Client.Combine(c0, c1, tc0, tc1)
}

// ActivationKind selects the nonlinearity of SecureActivation.
type ActivationKind int

// Activation kinds: the paper's Eq. (9) piecewise-linear function (the
// default; has an upper limit so it also serves logistic regression) and
// ReLU (for CNN/MLP, §4.2 "Activation Function Design").
const (
	ActPiecewise ActivationKind = iota
	ActReLU
	ActSigmoid       // exact logistic (computable post-reveal)
	ActSigmoidTaylor // 5th-order Taylor fit, the paper's rejected option
)

// Apply evaluates the activation on a public value.
func (k ActivationKind) Apply(x float32) float32 {
	switch k {
	case ActReLU:
		return ml.ReLU.Apply(x)
	case ActSigmoid:
		return ml.Sigmoid.Apply(x)
	case ActSigmoidTaylor:
		return ml.SigmoidTaylor.Apply(x)
	default:
		return ml.Piecewise.Apply(x)
	}
}

// Deriv evaluates the activation derivative on a public value.
func (k ActivationKind) Deriv(x float32) float32 {
	switch k {
	case ActReLU:
		return ml.ReLU.Deriv(x)
	case ActSigmoid:
		return ml.Sigmoid.Deriv(x)
	case ActSigmoidTaylor:
		return ml.SigmoidTaylor.Deriv(x)
	default:
		return ml.Piecewise.Deriv(x)
	}
}

// ActResult carries one server's post-activation share plus the public
// pre-activation derivative mask both servers hold afterwards (used
// linearly in the backward pass).
type ActResult struct {
	Share *tensor.Matrix
	Deriv *tensor.Matrix
	Done  *simtime.Task
}

// SecureActivation applies a nonlinearity to a shared pre-activation
// Y = y0 + y1. Following the released ParSecureML implementation, the
// servers jointly reconstruct Y (one exchange), apply f, and re-share:
// server 0 draws a fresh mask R, keeps f(Y)−R, and ships R to server 1.
// SecureML proper evaluates comparisons under garbled circuits; this
// substitution preserves the round/volume profile the paper measures but
// reveals per-layer activations to the servers (documented in DESIGN.md).
func SecureActivation(stream string, s0, s1 *Server, mask *rng.Pool, kind ActivationKind,
	y0, y1 *tensor.Matrix, dep0, dep1 *simtime.Task) (ActResult, ActResult) {

	// Exchange the shares (compressed channels: gradients shrink late in
	// training, so deltas sparsify).
	y0atPeer, t0 := s0.sendShare(stream+".act", y0, dep0)
	y1atPeer, t1 := s1.sendShare(stream+".act", y1, dep1)

	// Both reconstruct Y and evaluate f and f'.
	y := tensor.AddTo(y0, y1atPeer)
	yAt1 := tensor.AddTo(y1, y0atPeer)
	sum0 := s0.ElemTask("act.sum", 3*y.Bytes(), dep0, t1)
	sum1 := s1.ElemTask("act.sum", 3*y.Bytes(), dep1, t0)

	fy := tensor.New(y.Rows, y.Cols)
	tensor.Apply(fy, y, kind.Apply)
	dv := tensor.New(y.Rows, y.Cols)
	tensor.Apply(dv, y, kind.Deriv)
	a0t := s0.ElemTask("act.eval", 2*2*y.Bytes(), sum0)

	// Server 1 only needs the derivative (its value share arrives as R).
	dvAt1 := tensor.New(y.Rows, y.Cols)
	tensor.Apply(dvAt1, yAt1, kind.Deriv)
	a1t := s1.ElemTask("act.eval", 2*y.Bytes(), sum1)

	// Re-share: server 0 draws R, keeps f(Y)−R, sends R.
	r := mask.NewUniform(y.Rows, y.Cols, -ShareRange, ShareRange)
	share0 := tensor.SubTo(fy, r)
	tMask := s0.RandTask("act.mask", y.Rows*y.Cols, a0t)
	tMask = s0.ElemTask("act.resub", 3*r.Bytes(), tMask)
	var tSend *simtime.Task
	var rAt1 *tensor.Matrix
	if tensor.ComputeEnabled() {
		frame := tensor.EncodeMatrix(nil, r)
		tSend = s0.Link().SendRaw(frame, tMask)
		var err error
		rAt1, _, err = tensor.DecodeMatrix(frame)
		must(err)
	} else {
		tSend = s0.Link().SendSized("act.mask", tensor.EncodedSizeDense(y.Rows, y.Cols), tMask)
		rAt1 = tensor.New(y.Rows, y.Cols)
	}

	done1 := s1.Eng.After(a1t, tSend)
	return ActResult{Share: share0, Deriv: dv, Done: tMask},
		ActResult{Share: rAt1, Deriv: dvAt1, Done: done1}
}
