package mpc

import (
	"testing"
	"testing/quick"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func randMat(p *rng.Pool, r, c int) *tensor.Matrix {
	return p.NewUniform(r, c, -1, 1)
}

func TestSecureMatMulCorrectness(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), SecureMLConfig()} {
		d := NewDeployment(cfg)
		p := rng.NewPool(99)
		a := randMat(p, 24, 32)
		b := randMat(p, 32, 16)
		got, task := d.SecureMatMul("test", a, b)
		want := tensor.MulNaive(a, b)
		// Float-share error: masks up to ±8 amplify rounding; tolerance
		// scales with inner dimension. Tensor-core mode adds f16 rounding
		// of values up to ~ShareRange².
		tol := 0.5
		if !got.ApproxEqual(want, tol) {
			t.Fatalf("cfg GPU=%v: secure product off by %v", cfg.UseGPU, got.MaxAbsDiff(want))
		}
		if task == nil || task.End <= 0 {
			t.Fatal("no completion task")
		}
		if d.Eng.Makespan() < task.End {
			t.Fatal("makespan below completion")
		}
	}
}

func TestSecureMatMulPropertyFP32(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TensorCores = false // full FP32 for tight tolerance
	f := func(seed uint32, m8, k8, n8 uint8) bool {
		m, k, n := int(m8%10)+1, int(k8%10)+1, int(n8%10)+1
		cfg.Seed = uint64(seed) + 1
		d := NewDeployment(cfg)
		p := rng.NewPool(uint64(seed) * 7)
		a := randMat(p, m, k)
		b := randMat(p, k, n)
		got, _ := d.SecureMatMul("prop", a, b)
		return got.ApproxEqual(tensor.MulNaive(a, b), 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureHadamardCorrectness(t *testing.T) {
	for _, useGPU := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.UseGPU = useGPU
		cfg.TensorCores = false
		d := NewDeployment(cfg)
		p := rng.NewPool(3)
		a := randMat(p, 20, 30)
		b := randMat(p, 20, 30)
		got, _ := d.SecureHadamard("h", a, b)
		want := tensor.New(20, 30)
		tensor.Hadamard(want, a, b)
		if !got.ApproxEqual(want, 0.05) {
			t.Fatalf("GPU=%v: secure Hadamard off by %v", useGPU, got.MaxAbsDiff(want))
		}
	}
}

func TestSharesHideSecret(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	p := rng.NewPool(4)
	secret := randMat(p, 16, 16)
	s0, s1, _ := d.Client.Split(secret)
	if !tensor.AddTo(s0, s1).ApproxEqual(secret, 1e-4) {
		t.Fatal("shares do not reconstruct")
	}
	// The share must not be within trivial distance of the secret.
	if s0.MaxAbsDiff(secret) < 0.5 {
		t.Fatal("share suspiciously close to secret")
	}
}

func TestGPUFasterThanCPUOnLargeMul(t *testing.T) {
	p := rng.NewPool(5)
	a := randMat(p, 256, 256)
	b := randMat(p, 256, 256)

	gpuCfg := DefaultConfig()
	dg := NewDeployment(gpuCfg)
	dg.SecureMatMul("x", a, b)
	gpuSpan := dg.Eng.Makespan()

	cpuCfg := SecureMLConfig()
	dc := NewDeployment(cpuCfg)
	dc.SecureMatMul("x", a, b)
	cpuSpan := dc.Eng.Makespan()

	if gpuSpan >= cpuSpan {
		t.Fatalf("GPU deployment (%v) not faster than CPU (%v) at 256³", gpuSpan, cpuSpan)
	}
}

func TestPipelineReducesMakespan(t *testing.T) {
	p := rng.NewPool(6)
	a := randMat(p, 512, 512)
	b := randMat(p, 512, 512)

	run := func(pipeline bool) float64 {
		cfg := DefaultConfig()
		cfg.Pipeline = pipeline
		d := NewDeployment(cfg)
		d.SecureMatMul("x", a, b)
		return d.Eng.Makespan()
	}
	withPipe, without := run(true), run(false)
	if withPipe > without {
		t.Fatalf("pipeline (%v) slower than serial (%v)", withPipe, without)
	}
	if withPipe == without {
		t.Log("pipeline made no difference at this size (acceptable but suspicious)")
	}
}

func TestCompressionSavesTrafficAcrossEpochs(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	p := rng.NewPool(7)
	a := randMat(p, 64, 64)
	b := randMat(p, 64, 64)

	// Reuse the same stream across "epochs" with a that never changes and
	// b drifting sparsely — the compression-friendly training pattern.
	for epoch := 0; epoch < 4; epoch++ {
		got, _ := d.SecureMatMul("layer0", a, b)
		want := tensor.MulNaive(a, b)
		if !got.ApproxEqual(want, 0.5) {
			t.Fatalf("epoch %d: wrong product (off by %v)", epoch, got.MaxAbsDiff(want))
		}
		delta := tensor.New(64, 64)
		p.FillBernoulli(delta, 0.02, func(r *rng.Rand) float32 { return 0.01 * r.Float32() })
		tensor.Add(b, b, delta)
	}
	s0 := d.S0.Link().Stats()
	if s0.CompressedSends == 0 {
		t.Fatalf("no compressed sends across epochs: %+v", s0)
	}
	if s0.SavedFraction() <= 0 {
		t.Fatalf("no traffic saved: %+v", s0)
	}
}

func TestCompressionCorrectWhenSharesDrift(t *testing.T) {
	// Property: compression must never change results, only bytes.
	f := func(seed uint32) bool {
		p := rng.NewPool(uint64(seed))
		a := randMat(p, 12, 12)
		b := randMat(p, 12, 12)
		run := func(compress bool) *tensor.Matrix {
			cfg := DefaultConfig()
			cfg.Compress = compress
			cfg.TensorCores = false
			cfg.Seed = uint64(seed) + 3
			d := NewDeployment(cfg)
			var last *tensor.Matrix
			for e := 0; e < 3; e++ {
				last, _ = d.SecureMatMul("s", a, b)
			}
			return last
		}
		on, off := run(true), run(false)
		return on.ApproxEqual(off, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSecureActivationCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	p := rng.NewPool(8)
	y := p.NewUniform(10, 10, -2, 2)
	y0, y1, ts := d.Client.Split(y)

	for _, kind := range []ActivationKind{ActPiecewise, ActReLU} {
		r0, r1 := SecureActivation("act-test", d.S0, d.S1, d.MaskPool(), kind, y0, y1, ts, ts)
		got := tensor.AddTo(r0.Share, r1.Share)
		want := tensor.New(10, 10)
		tensor.Apply(want, y, kind.Apply)
		if !got.ApproxEqual(want, 1e-3) {
			t.Fatalf("kind %v: activation shares off by %v", kind, got.MaxAbsDiff(want))
		}
		// Both servers must agree on the public derivative.
		if !r0.Deriv.ApproxEqual(r1.Deriv, 1e-4) {
			t.Fatalf("kind %v: servers disagree on derivative", kind)
		}
		wantD := tensor.New(10, 10)
		tensor.Apply(wantD, y, kind.Deriv)
		if !r0.Deriv.ApproxEqual(wantD, 1e-3) {
			t.Fatalf("kind %v: derivative wrong", kind)
		}
	}
}

func TestActivationKindFunctions(t *testing.T) {
	if ActPiecewise.Apply(0) != 0.5 || ActPiecewise.Apply(5) != 1 || ActPiecewise.Apply(-5) != 0 {
		t.Fatal("piecewise values")
	}
	if ActReLU.Apply(-1) != 0 || ActReLU.Apply(2) != 2 {
		t.Fatal("relu values")
	}
	if ActReLU.Deriv(2) != 1 || ActReLU.Deriv(-2) != 0 {
		t.Fatal("relu deriv")
	}
}

func TestTensorCoresChangeOnlineCost(t *testing.T) {
	p := rng.NewPool(9)
	a := randMat(p, 512, 512)
	b := randMat(p, 512, 512)
	run := func(tc bool) float64 {
		cfg := DefaultConfig()
		cfg.TensorCores = tc
		d := NewDeployment(cfg)
		d.SecureMatMul("x", a, b)
		return d.Eng.Makespan()
	}
	if withTC, without := run(true), run(false); withTC >= without {
		t.Fatalf("tensor cores (%v) not faster than FP32 (%v) at 512³", withTC, without)
	}
}

func TestOnlineMulGPUPanicsWithoutDevice(t *testing.T) {
	cfg := SecureMLConfig()
	d := NewDeployment(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.S0.OnlineMulGPU(EF{E: tensor.New(1, 1), F: tensor.New(1, 1)}, Shares{A: tensor.New(1, 1), B: tensor.New(1, 1), T: TripletShares{Z: tensor.New(1, 1)}})
}

// Property: resharing never changes the reconstructed value, and it
// bounds party 0's share to the mask range.
func TestReshareProperty(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDeployment(cfg)
	f := func(seed uint32, r8, c8 uint8) bool {
		rows, cols := int(r8%8)+1, int(c8%8)+1
		p := rng.NewPool(uint64(seed))
		secret := p.NewUniform(rows, cols, -3, 3)
		x0, x1, ts := d.Client.Split(secret)
		n0, n1, t0, t1 := Reshare("rsp", d.S0, d.S1, d.MaskPool(), x0, x1, ts, ts)
		if t0 == nil || t1 == nil {
			return false
		}
		if n0.MaxAbs() > ShareRange {
			return false // party 0's new share must be the bounded mask
		}
		return tensor.AddTo(n0, n1).ApproxEqual(secret, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
