package mpc

import (
	"fmt"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Wire double pipeline: the paper's transfer/compute overlap (Figs. 5/6)
// carried onto the real networked path. The virtual-time scheduler in
// internal/pipeline models the overlap; this file makes it happen on the
// wall clock between two genuinely concurrent parties:
//
//   - Intra-op (Fig. 5 analogue): one triplet multiplication splits the
//     E exchange into row bands. A dedicated sender goroutine streams this
//     party's bands to the peer while the main goroutine folds each
//     arriving peer band into the fused Eq. 8 GEMM — the network transfer
//     of band k overlaps the compute of band k−1, and the two directions
//     of the duplex link run simultaneously instead of in the serial
//     path's fixed send-then-receive order.
//
//   - Cross-layer (Fig. 6 analogue): within an inference session F = W−V
//     comes entirely from the session-fixed weights and triplets, so the
//     public F of every layer is reconstructed once at session setup and
//     cached; per-request traffic is the E stream only. The activation
//     reveal collapses from three dependent frames to one concurrent
//     frame each way (party 1's post-activation share is just the mask R,
//     which party 0 can generate and ship before the pre-activation
//     exchange completes).
//
// All per-request matrices come from a tensor.Pool and all frame buffers
// are session-scoped scratch, so the steady-state serving path does
// near-zero allocations per request.

// WireConfig tunes the networked double pipeline. The zero value selects
// whole-matrix bands (full-duplex exchange, no intra-op banding) and a
// private pool per serving loop.
type WireConfig struct {
	// ChunkRows is the row-band height of the streamed E exchange: party
	// i ships band k while fusing band k−1 into the GEMM. <= 0 uses one
	// whole-matrix band. Both parties must agree on the value — band
	// boundaries are part of the wire protocol.
	ChunkRows int
	// Pool recycles per-request matrices. nil lets each serving loop
	// create its own.
	Pool *tensor.Pool
	// Codec, when non-nil, adaptively compresses the revealed E/F tensors
	// on the wire (FP16/CSR, see wirecodec.go) when the link byte budget
	// makes it pay. Frames are self-describing, so receivers need no
	// matching setting; raw shares (activation reveals, session F setup)
	// are never lossy-encoded. nil sends everything raw.
	Codec *WireCodec
}

// bandRows clamps the configured band height to [1, m].
func (c WireConfig) bandRows(m int) int {
	b := c.ChunkRows
	if b <= 0 || b > m {
		b = m
	}
	if b < 1 {
		b = 1
	}
	return b
}

// readFrameInto reads a frame, reusing buf when the transport supports it.
func readFrameInto(conn comm.Framer, buf []byte) ([]byte, error) {
	if ri, ok := conn.(comm.FramerInto); ok {
		return ri.ReadFrameInto(buf)
	}
	return conn.ReadFrame()
}

// wireMul is the reusable state for pipelined exchanges over one peer
// link: encode/decode scratch, pooled band buffers, and the sender
// goroutine's arguments. One wireMul serves a whole session; it is not
// safe for concurrent use, and after any method returns an error it is
// poisoned — the sender goroutine may still hold its scratch until the
// connection closes — so the session must be torn down, not reused.
type wireMul struct {
	party int
	cfg   WireConfig

	sendBuf []byte        // sender-goroutine encode scratch
	recvBuf []byte        // main-goroutine frame scratch
	kick    chan struct{} // arms the persistent sender goroutine; closed by close()
	done    chan error    // sender completion, buffered so senders never leak

	// Sender arguments, set before the kick. sHead (optional) goes out
	// first as one whole frame; sE (optional) follows as row bands. The
	// per-tensor codec kinds are picked by the main goroutine before the
	// kick (any FP16 rounding of the retained share happens there too, so
	// both parties use what they ship). sentBytes is written by the
	// sender and read by the main goroutine only after draining done.
	sconn     comm.Framer
	sHead     *tensor.Matrix
	sE        *tensor.Matrix
	sBand     int
	sHeadKind wireCodecKind
	sEKind    wireCodecKind
	sentBytes int
	sView     tensor.Matrix // sender-side band view (sender goroutine only)

	// Persistent band-view headers (main goroutine only): retargeted with
	// SliceRowsInto each band instead of allocating a header per band.
	pbView, eView, dView, cView, aView, eiView, zView tensor.Matrix
}

func newWireMul(party int, cfg WireConfig) *wireMul {
	if cfg.Pool == nil {
		cfg.Pool = tensor.NewPool()
	}
	w := &wireMul{party: party, cfg: cfg, kick: make(chan struct{}, 1), done: make(chan error, 1)}
	// One persistent sender goroutine per session: spawning one per
	// exchange costs a stack and scheduler churn on the per-request path.
	go w.senderLoop()
	return w
}

// close retires the sender goroutine. Safe while a poisoned sender is
// still blocked on a dead connection — it exits once that write fails.
func (w *wireMul) close() { close(w.kick) }

func (w *wireMul) get(rows, cols int) *tensor.Matrix { return w.cfg.Pool.Get(rows, cols) }
func (w *wireMul) put(m *tensor.Matrix)              { w.cfg.Pool.Put(m) }

// senderLoop runs on its own goroutine so the outgoing stream overlaps
// the reader's band compute (and the peer's symmetric stream).
func (w *wireMul) senderLoop() {
	for range w.kick {
		w.done <- w.runSender()
	}
}

func (w *wireMul) runSender() error {
	w.sentBytes = 0
	if w.sHead != nil {
		w.sendBuf = appendWireTensor(w.sendBuf[:0], w.sHead, w.sHeadKind)
		w.sentBytes += len(w.sendBuf)
		if err := w.sconn.WriteFrame(w.sendBuf); err != nil {
			return err
		}
	}
	if w.sE == nil {
		return nil
	}
	rows := w.sE.Rows
	for lo := 0; lo < rows; lo += w.sBand {
		hi := min(lo+w.sBand, rows)
		w.sendBuf = appendWireTensor(w.sendBuf[:0], w.sE.SliceRowsInto(&w.sView, lo, hi), w.sEKind)
		w.sentBytes += len(w.sendBuf)
		if err := w.sconn.WriteFrame(w.sendBuf); err != nil {
			return err
		}
	}
	return nil
}

// launch arms the sender goroutine with head+bands (and their picked
// codec kinds) and kicks it.
func (w *wireMul) launch(conn comm.Framer, head, bands *tensor.Matrix, bandRows int, headKind, bandKind wireCodecKind) {
	w.sconn, w.sHead, w.sE, w.sBand = conn, head, bands, bandRows
	w.sHeadKind, w.sEKind = headKind, bandKind
	w.kick <- struct{}{}
}

// mul executes this party's side of one banded triplet multiplication
// C_i = ((−i)·E + A_i)×F + E×B_i + Z_i over conn. This party's E share
// streams to the peer band by band while the peer's arriving bands are
// fused into the Eq. 8 GEMM — transfer and compute overlap inside one
// multiplication. The result is bit-identical to the serial RemoteParty.
//
// fPub, when non-nil, is the session-cached public F and no F frames move
// (the inference fast path); when nil the F shares are exchanged ahead of
// the E bands. dst, when non-nil, receives the result (a.Rows×b.Cols);
// when nil a pooled matrix is returned — callers give it back with
// ReleaseTo or keep it.
//
// With cfg.Codec nil (or picking raw) the result is bit-identical to the
// serial RemoteParty. A lossy (FP16) pick perturbs only the REVEALED E/F
// difference shares — the retained copy is rounded in place before the
// sender starts, so both parties reconstruct the same public tensors and
// the result carries the documented reveal-only tolerance instead of a
// protocol desync.
func (w *wireMul) mul(conn comm.Framer, a, b *tensor.Matrix, t TripletShares, fPub, dst *tensor.Matrix) (*tensor.Matrix, error) {
	m, k, n := a.Rows, a.Cols, b.Cols
	band := w.cfg.bandRows(m)

	// Local shares (Eq. 4): E_i = A_i − U_i, F_i = B_i − V_i.
	ei := w.get(m, k)
	tensor.Sub(ei, a, t.U)
	var fi *tensor.Matrix
	if fPub == nil {
		fi = w.get(k, n)
		tensor.Sub(fi, b, t.V)
	}
	// Codec election, then use-what-you-ship: an FP16 pick rounds the
	// retained share in place BEFORE the sender goroutine starts, so the
	// local reconstruction sees exactly the values the peer receives (and
	// the concurrent encoder never races a mutation).
	eKind, fKind := codecRaw, codecRaw
	if wc := w.cfg.Codec; wc != nil {
		eKind = wc.pick(ei, tensorE)
		if eKind == codecFP16 {
			tensor.RoundMatrixFloat16InPlace(ei)
		}
		if fi != nil {
			fKind = wc.pick(fi, tensorF)
			if fKind == codecFP16 {
				tensor.RoundMatrixFloat16InPlace(fi)
			}
		}
	}
	w.launch(conn, fi, ei, band, fKind, eKind)

	// Per-phase accumulators: the banded loop interleaves transfer waits,
	// Eq. 5 reconstruction, and Eq. 8 compute, so each is summed across
	// bands and observed once per multiplication (cheap monotonic-clock
	// reads, no allocation).
	var exchDur, reconDur, gemmDur time.Duration

	// Public F (Eq. 5) — from cache, or the head frame of each stream.
	f := fPub
	if f == nil {
		t0 := time.Now()
		frame, err := readFrameInto(conn, w.recvBuf)
		exchDur += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("mpc: recv F: %w", err)
		}
		w.recvBuf = frame
		peerF := w.get(k, n)
		// Tag-dispatched: the peer's codec choice is sender-local, the
		// frame says what it is (raw senders emit plain 'D' frames).
		if _, err := tensor.DecodeAnyInto(peerF, frame); err != nil {
			return nil, fmt.Errorf("mpc: decode peer F: %w", err)
		}
		t0 = time.Now()
		f = w.get(k, n)
		tensor.Add(f, fi, peerF)
		reconDur += time.Since(t0)
		w.put(peerF)
	}

	c := dst
	if c == nil {
		c = w.get(m, n)
	}
	peerBand := w.get(band, k)
	eBandBuf := w.get(band, k)
	dBandBuf := w.get(band, k)
	for lo := 0; lo < m; lo += band {
		hi := min(lo+band, m)
		rows := hi - lo
		t0 := time.Now()
		frame, err := readFrameInto(conn, w.recvBuf)
		exchDur += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("mpc: recv E band %d: %w", lo/band, err)
		}
		w.recvBuf = frame
		pb := peerBand.SliceRowsInto(&w.pbView, 0, rows)
		if _, err := tensor.DecodeAnyInto(pb, frame); err != nil {
			return nil, fmt.Errorf("mpc: decode E band %d: %w", lo/band, err)
		}
		// Reconstruct the band of the public E and fuse it (Eqs. 5, 8).
		t0 = time.Now()
		eBand := eBandBuf.SliceRowsInto(&w.eView, 0, rows)
		tensor.Add(eBand, ei.SliceRowsInto(&w.eiView, lo, hi), pb)
		t1 := time.Now()
		reconDur += t1.Sub(t0)
		dBand := dBandBuf.SliceRowsInto(&w.dView, 0, rows)
		if w.party == 1 {
			tensor.Sub(dBand, a.SliceRowsInto(&w.aView, lo, hi), eBand)
		} else {
			dBand.CopyFrom(a.SliceRowsInto(&w.aView, lo, hi))
		}
		cBand := c.SliceRowsInto(&w.cView, lo, hi)
		tensor.Gemm(cBand, dBand, f, 1, 0)                         // D×F
		tensor.Gemm(cBand, eBand, b, 1, 1)                         // += E×B_i
		tensor.AXPY(cBand, 1, t.Z.SliceRowsInto(&w.zView, lo, hi)) // += Z_i
		gemmDur += time.Since(t1)
	}
	// The peer's reader consumes our bands symmetrically, so the sender
	// drains; a peer that died instead surfaces here as its write error
	// (bounded by the connection's deadlines).
	t0 := time.Now()
	sendErr := <-w.done
	exchDur += time.Since(t0)
	w.put(peerBand)
	w.put(eBandBuf)
	w.put(dBandBuf)
	w.put(ei)
	if fPub == nil {
		w.put(fi)
		w.put(f)
	}
	if sendErr != nil {
		if dst == nil {
			w.put(c)
		}
		return nil, fmt.Errorf("mpc: send E/F: %w", sendErr)
	}
	// Feed the measured link rate back into the codec's byte budget: what
	// we shipped over the summed transfer waits of this exchange.
	w.cfg.Codec.ObserveLink(w.sentBytes, exchDur)
	metrics.phaseExchange.Observe(exchDur)
	metrics.phaseReconstruct.Observe(reconDur)
	metrics.phaseGemm.Observe(gemmDur)
	return c, nil
}

// swap sends one matrix and receives one, concurrently — neither party
// waits for the other's frame before shipping its own, so a reveal or
// re-share round costs max(two one-way transfers), not their sum. The
// received frame is decoded into recvDst only after the sender drained,
// so recvDst may alias the sent matrix (a share being replaced in place).
//
// swap carries RAW shares (activation re-shares and masks) and is
// deliberately codec-free in both directions: lossy-encoding a share
// would corrupt the secret sharing itself, not a revealed public value,
// so the receive path also insists on the dense format.
func (w *wireMul) swap(conn comm.Framer, send, recvDst *tensor.Matrix) error {
	span := metrics.phaseExchange.Start()
	w.launch(conn, send, nil, 0, codecRaw, codecRaw)
	frame, err := readFrameInto(conn, w.recvBuf)
	if err != nil {
		return err
	}
	w.recvBuf = frame
	if err := <-w.done; err != nil {
		return err
	}
	span.Stop()
	_, err = tensor.DecodeMatrixInto(recvDst, frame)
	return err
}

// RemotePartyPipelined executes party i of one triplet multiplication
// like RemoteParty, but with the wire double pipeline: full-duplex F
// exchange followed by a banded E stream that overlaps the Eq. 8 compute.
// Both parties must call it with the same WireConfig.ChunkRows — the band
// layout is part of the wire protocol, and the serial RemoteParty framing
// is not compatible. The returned share is bit-identical to RemoteParty's.
func RemotePartyPipelined(party int, conn comm.Framer, in Shares, cfg WireConfig) (*tensor.Matrix, error) {
	if party != 0 && party != 1 {
		return nil, fmt.Errorf("mpc: remote party index %d", party)
	}
	w := newWireMul(party, cfg)
	defer w.close()
	c, err := w.mul(conn, in.A, in.B, in.T, nil, nil)
	if err != nil {
		return nil, err
	}
	// Detach the result from the pool: the caller owns it.
	return c, nil
}
