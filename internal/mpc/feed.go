package mpc

import (
	"encoding/binary"
	"fmt"

	"parsecureml/internal/comm"
)

// Dealer-fed serving: the SecureML trusted-dealer mapping of the
// paper's offline phase. A standalone dealer (cmd/psml-dealer) runs the
// triplet generation of §2.2 and streams each party ITS half of every
// triplet — party 0 never sees U₁/V₁/Z₁ and vice versa, so unlike the
// client-as-dealer deployment the precompute tier can sit server-side
// without ever assembling both shares in one process. The serving loop
// consumes the stream through this interface; tripletpool.DealerClient
// is the wire-backed implementation, and tests substitute in-process
// feeds.

// TripletFeed supplies one party's halves of ready Beaver triplets,
// keyed by GEMM shape. Triplets of one shape form a numbered stream the
// dealer emits identically to both parties; the sequence number is how
// the two serving loops agree on WHICH triplet a request consumes when
// concurrent sessions interleave their draws. Implementations must be
// safe for concurrent use.
type TripletFeed interface {
	// Next pops this party's share of the next ready triplet for the
	// shape and returns its stream sequence number. The leading party
	// (party 0) calls this.
	Next(m, k, n int) (seq uint64, t TripletShares, err error)
	// Take returns this party's share of triplet seq of the shape's
	// stream, blocking until the dealer delivers it. The following party
	// (party 1) calls this with the sequence number party 0 announced.
	Take(m, k, n int, seq uint64) (TripletShares, error)
}

// feedTriplet runs one request's triplet agreement over the request's
// mux session, ahead of the Beaver exchange: party 0 draws the next
// ready triplet from its feed and announces the sequence number; party
// 1 reads the announcement and takes the matching triplet from its own
// feed. The announcement frame is the session's first, so the exchange
// protocols above (serial or banded) start cleanly after it.
func feedTriplet(party int, feed TripletFeed, sess comm.Framer, m, k, n int) (TripletShares, error) {
	if party == 0 {
		seq, t, err := feed.Next(m, k, n)
		if err != nil {
			return TripletShares{}, fmt.Errorf("mpc: triplet feed: %w", err)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], seq)
		if err := sess.WriteFrame(buf[:]); err != nil {
			return TripletShares{}, fmt.Errorf("mpc: triplet seq announce: %w", err)
		}
		return t, nil
	}
	f, err := sess.ReadFrame()
	if err != nil {
		return TripletShares{}, fmt.Errorf("mpc: triplet seq announce: %w", err)
	}
	if len(f) != 8 {
		return TripletShares{}, fmt.Errorf("mpc: triplet seq announce frame is %d bytes, want 8", len(f))
	}
	t, err := feed.Take(m, k, n, binary.LittleEndian.Uint64(f))
	if err != nil {
		return TripletShares{}, fmt.Errorf("mpc: triplet feed: %w", err)
	}
	return t, nil
}
