package mpc

import (
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Wall-clock offline-phase primitives for the serving stack. They are
// the same mathematics as Client.Split / Client.GenGemmTriplet but carry
// no simulated-time accounting, so they are safe for concurrent use —
// rng.Pool fills are thread-safe (block-seeded per-stream MT19937, §5.1)
// and everything else is pure computation on fresh matrices. The triplet
// precompute pool (internal/mpc/tripletpool) and concurrent client
// drivers build on these.

// SplitRand divides secret into two float shares (secret = s0 + s1)
// using rp's uniform masks — the §2.2 partitioning step, without the
// simulator's cost model.
func SplitRand(rp *rng.Pool, secret *tensor.Matrix) (s0, s1 *tensor.Matrix) {
	s0 = rp.NewUniform(secret.Rows, secret.Cols, -ShareRange, ShareRange)
	s1 = tensor.SubTo(secret, s0)
	return s0, s1
}

// GenGemmTripletShares prepares and splits a Beaver triplet for an
// (m×k)·(k×n) multiplication: U, V uniform, Z = U×V, each split into two
// shares. Observed on the offline-phase histogram like the simulated
// generator. Safe for concurrent use with a shared rp.
//
// Each call consumes exactly gemmTripletFills rng.Pool fills — the
// invariant SkipGemmTriplets relies on to fast-forward a stream in O(1).
func GenGemmTripletShares(rp *rng.Pool, m, k, n int) (p0, p1 TripletShares) {
	defer metrics.phaseTriplet.Start().Stop()
	u := rp.NewUniform(m, k, -1, 1) // fill 1
	v := rp.NewUniform(k, n, -1, 1) // fill 2
	z := tensor.MulTo(u, v)         // pure compute, no fill
	u0, u1 := SplitRand(rp, u)      // fill 3
	v0, v1 := SplitRand(rp, v)      // fill 4
	z0, z1 := SplitRand(rp, z)      // fill 5
	return TripletShares{U: u0, V: v0, Z: z0}, TripletShares{U: u1, V: v1, Z: z1}
}

// gemmTripletFills is the number of rng.Pool fills one
// GenGemmTripletShares call consumes: U, V, and the three SplitRand
// masks. Fill IDs are what pin a pool's position in its deterministic
// sequence (shapes do not matter — each fill reserves exactly one
// stream namespace regardless of element count), so skipping a triplet
// is a counter bump, not a generation.
const gemmTripletFills = 5

// SkipGemmTriplets advances rp past count GenGemmTripletShares calls
// without generating anything: triplet j of a (seed, shape) stream is a
// pure function of the fill cursor, so a restarted dealer fast-forwards
// a stream to a replica's consume cursor in O(1) and then serves
// bit-identical triplets from there. The fill counter deliberately
// wraps exactly like sequential generation would (uint32 arithmetic),
// keeping skip ≡ N sequential calls even across the wrap.
func SkipGemmTriplets(rp *rng.Pool, count uint64) {
	if count == 0 {
		return
	}
	seed, fills := rp.Cursor()
	rp.SetCursor(seed, fills+uint32(count*gemmTripletFills))
}
