package mpc

import (
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Wall-clock offline-phase primitives for the serving stack. They are
// the same mathematics as Client.Split / Client.GenGemmTriplet but carry
// no simulated-time accounting, so they are safe for concurrent use —
// rng.Pool fills are thread-safe (block-seeded per-stream MT19937, §5.1)
// and everything else is pure computation on fresh matrices. The triplet
// precompute pool (internal/mpc/tripletpool) and concurrent client
// drivers build on these.

// SplitRand divides secret into two float shares (secret = s0 + s1)
// using rp's uniform masks — the §2.2 partitioning step, without the
// simulator's cost model.
func SplitRand(rp *rng.Pool, secret *tensor.Matrix) (s0, s1 *tensor.Matrix) {
	s0 = rp.NewUniform(secret.Rows, secret.Cols, -ShareRange, ShareRange)
	s1 = tensor.SubTo(secret, s0)
	return s0, s1
}

// GenGemmTripletShares prepares and splits a Beaver triplet for an
// (m×k)·(k×n) multiplication: U, V uniform, Z = U×V, each split into two
// shares. Observed on the offline-phase histogram like the simulated
// generator. Safe for concurrent use with a shared rp.
func GenGemmTripletShares(rp *rng.Pool, m, k, n int) (p0, p1 TripletShares) {
	defer metrics.phaseTriplet.Start().Stop()
	u := rp.NewUniform(m, k, -1, 1)
	v := rp.NewUniform(k, n, -1, 1)
	z := tensor.MulTo(u, v)
	u0, u1 := SplitRand(rp, u)
	v0, v1 := SplitRand(rp, v)
	z0, z1 := SplitRand(rp, z)
	return TripletShares{U: u0, V: v0, Z: z0}, TripletShares{U: u1, V: v1, Z: z1}
}
