package mpc

import (
	"testing"
	"time"

	"parsecureml/internal/hw"
)

// TestPlannerWindowClamp: whatever the cost models and measured exchange
// medians say, the hold window stays inside [MinWindow, MaxWindow] for
// shapes with batchable arrival rates.
func TestPlannerWindowClamp(t *testing.T) {
	for name, p := range map[string]hw.Platform{"paper": hw.Paper(), "slownet": hw.SlowNet()} {
		pl := NewPlanner(p)
		for _, s := range []batchShape{{1, 1, 1}, {32, 32, 32}, {4096, 512, 512}} {
			plan := pl.Plan(s.m, s.k, s.n, 4*s.m)
			if plan.window < pl.MinWindow || plan.window > pl.MaxWindow {
				t.Errorf("%s %v: window %v outside [%v, %v]", name, s, plan.window, pl.MinWindow, pl.MaxWindow)
			}
			if plan.stackBand < 1 || plan.stackBand > 4*s.m {
				t.Errorf("%s %v: stackBand %d outside [1, %d]", name, s, plan.stackBand, 4*s.m)
			}
		}
	}
}

// TestPlannerGapGate: a shape whose requests arrive far slower than the
// largest window could bridge dispatches immediately (window 0), while a
// dense arrival process keeps a positive hold window — and the processes
// are tracked per shape.
func TestPlannerGapGate(t *testing.T) {
	pl := NewPlanner(hw.Paper())
	base := time.Now()

	// Sparse shape: one request a second, EWMA gap ≫ 4×MaxWindow.
	for i := 0; i < 40; i++ {
		pl.Observe(8, 8, 8, base.Add(time.Duration(i)*time.Second))
	}
	if w := pl.Plan(8, 8, 8, 8).window; w != 0 {
		t.Errorf("sparse shape: window %v, want immediate dispatch", w)
	}

	// Dense shape: arrivals every 100µs keep the window open.
	for i := 0; i < 40; i++ {
		pl.Observe(9, 9, 9, base.Add(time.Duration(i)*100*time.Microsecond))
	}
	if w := pl.Plan(9, 9, 9, 9).window; w == 0 {
		t.Error("dense shape: window collapsed to immediate dispatch")
	}

	// A shape never observed has no gap evidence: keep the window open.
	if w := pl.Plan(10, 10, 10, 10).window; w == 0 {
		t.Error("unobserved shape: window collapsed to immediate dispatch")
	}

	// The sparse shape recovers once its arrival process densifies.
	at := base.Add(40 * time.Second)
	for i := 0; i < 200; i++ {
		pl.Observe(8, 8, 8, at.Add(time.Duration(i)*50*time.Microsecond))
	}
	if w := pl.Plan(8, 8, 8, 8).window; w == 0 {
		t.Error("densified shape: window stayed collapsed")
	}
}

// TestPlannerBandTracksPlatform: the paper's fabric keeps cheap GEMMs
// whole (compute never catches transfer), a slow fabric bands a
// compute-heavy stack so the fused GEMM can hide behind it.
func TestPlannerBandTracksPlatform(t *testing.T) {
	if got := NewPlanner(hw.Paper()).Plan(8, 8, 2, 4096).stackBand; got != 4096 {
		t.Errorf("paper platform banded a transfer-bound stack: %d", got)
	}
	if got := NewPlanner(hw.SlowNet()).Plan(512, 512, 512, 4096).stackBand; got >= 4096 {
		t.Errorf("slow fabric kept a compute-bound stack whole: %d", got)
	}
}
