package mpc

import (
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// The wire double pipeline must be a pure transport optimization: every
// share it produces is bit-identical to the serial protocol's, over
// in-memory pipes, real TCP, and a fault-injected link.

// runPipelinedPair executes both pipelined parties concurrently and
// returns their shares.
func runPipelinedPair(t *testing.T, c0, c1 comm.Framer, in0, in1 Shares, cfg WireConfig) (*tensor.Matrix, *tensor.Matrix) {
	t.Helper()
	var wg sync.WaitGroup
	var r0, r1 *tensor.Matrix
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		r0, e0 = RemotePartyPipelined(0, c0, in0, cfg)
	}()
	go func() {
		defer wg.Done()
		r1, e1 = RemotePartyPipelined(1, c1, in1, cfg)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("pipelined parties failed: %v / %v", e0, e1)
	}
	return r0, r1
}

// serialShares runs the serial protocol over a fresh pipe and returns both
// parties' shares (runRemotePair merges them; parity needs them raw).
func serialShares(t *testing.T, in0, in1 Shares) (*tensor.Matrix, *tensor.Matrix) {
	t.Helper()
	c0, c1 := comm.Pipe()
	defer c0.Close()
	defer c1.Close()
	var wg sync.WaitGroup
	var r0, r1 *tensor.Matrix
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		r0, e0 = RemoteParty(0, c0, in0)
	}()
	go func() {
		defer wg.Done()
		r1, e1 = RemoteParty(1, c1, in1)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("serial parties failed: %v / %v", e0, e1)
	}
	return r0, r1
}

func TestWirePipelineParityOverPipe(t *testing.T) {
	p := rng.NewPool(41)
	a := p.NewUniform(13, 21, -1, 1)
	b := p.NewUniform(21, 9, -1, 1)
	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)
	want0, want1 := serialShares(t, in0, in1)

	// Band heights below, at, and above the row count, plus the
	// whole-matrix default.
	for _, chunk := range []int{0, 1, 4, 5, 13, 64} {
		c0, c1 := comm.Pipe()
		cfg := WireConfig{ChunkRows: chunk}
		got0, got1 := runPipelinedPair(t, c0, c1, in0, in1, cfg)
		c0.Close()
		c1.Close()
		if !got0.Equal(want0) || !got1.Equal(want1) {
			t.Fatalf("ChunkRows=%d: pipelined shares differ from serial", chunk)
		}
	}
}

func TestWirePipelineParityOverTCP(t *testing.T) {
	p := rng.NewPool(42)
	a := p.NewUniform(37, 24, -1, 1)
	b := p.NewUniform(24, 17, -1, 1)
	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)
	want0, want1 := serialShares(t, in0, in1)

	ln, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptCh := make(chan *comm.Conn, 1)
	go func() {
		c, err := comm.Accept(ln)
		if err != nil {
			t.Error(err)
			return
		}
		acceptCh <- c
	}()
	c1, err := comm.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c0 := <-acceptCh
	defer c0.Close()

	cfg := WireConfig{ChunkRows: 8}
	got0, got1 := runPipelinedPair(t, c0, c1, in0, in1, cfg)
	if !got0.Equal(want0) || !got1.Equal(want1) {
		t.Fatal("TCP pipelined shares differ from serial")
	}
}

func TestWirePipelineParityUnderFaultDelays(t *testing.T) {
	p := rng.NewPool(43)
	a := p.NewUniform(19, 11, -1, 1)
	b := p.NewUniform(11, 7, -1, 1)
	client := newRemoteClient()
	in0, in1 := RemoteClientSplit(a, b, client)
	want0, want1 := serialShares(t, in0, in1)

	raw0, raw1 := net.Pipe()
	f0 := comm.NewFaultConn(raw0)
	f1 := comm.NewFaultConn(raw1)
	f0.WriteDelay = 200 * time.Microsecond
	f1.ReadDelay = 200 * time.Microsecond
	f1.WriteChunk = 64 // fragment writes: the reader must reassemble
	c0, c1 := comm.Wrap(f0), comm.Wrap(f1)
	defer c0.Close()
	defer c1.Close()

	cfg := WireConfig{ChunkRows: 3}
	got0, got1 := runPipelinedPair(t, c0, c1, in0, in1, cfg)
	if !got0.Equal(want0) || !got1.Equal(want1) {
		t.Fatal("pipelined shares differ from serial under injected faults")
	}
}

// The pipelined multiplication must also hold its own against tagged
// request framing plus pooled reuse across sequential requests — the
// serving loop's steady-state shape.
func TestWirePipelineTaggedPooledReuse(t *testing.T) {
	client := newRemoteClient()
	p := rng.NewPool(44)
	peer0, peer1 := comm.Pipe()
	defer peer0.Close()
	defer peer1.Close()
	w0 := newWireMul(0, WireConfig{ChunkRows: 4})
	w1 := newWireMul(1, WireConfig{ChunkRows: 4})
	tc0 := &taggedConn{c: peer0}
	tc1 := &taggedConn{c: peer1}

	for round := 0; round < 4; round++ {
		a := p.NewUniform(9+round, 6, -1, 1)
		b := p.NewUniform(6, 5, -1, 1)
		in0, in1 := RemoteClientSplit(a, b, client)
		want0, want1 := serialShares(t, in0, in1)
		id := uint64(round + 100)
		tc0.setID(id)
		tc1.setID(id)
		var wg sync.WaitGroup
		var r0, r1 *tensor.Matrix
		var e0, e1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			r0, e0 = w0.mul(tc0, in0.A, in0.B, in0.T, nil, nil)
		}()
		go func() {
			defer wg.Done()
			r1, e1 = w1.mul(tc1, in1.A, in1.B, in1.T, nil, nil)
		}()
		wg.Wait()
		if e0 != nil || e1 != nil {
			t.Fatalf("round %d: %v / %v", round, e0, e1)
		}
		if !r0.Equal(want0) || !r1.Equal(want1) {
			t.Fatalf("round %d: tagged pooled shares differ from serial", round)
		}
		w0.put(r0)
		w1.put(r1)
	}
}

// inferSessionFixture builds a deterministic 2-layer session plus request
// share batches, so the serial and pipelined services can be fed
// identical bytes.
type inferSessionFixture struct {
	s0, s1 []InferLayer
	xs     [][2]*tensor.Matrix
	want   []*tensor.Matrix // filled by the serial run
}

func buildInferFixture(t *testing.T, rounds int) *inferSessionFixture {
	t.Helper()
	p := rng.NewPool(7)
	const batch, in, hidden, out = 8, 12, 10, 4
	w1 := p.NewUniform(in, hidden, -0.3, 0.3)
	b1 := p.NewUniform(1, hidden, -0.1, 0.1)
	w2 := p.NewUniform(hidden, out, -0.3, 0.3)
	b2 := p.NewUniform(1, out, -0.1, 0.1)
	client := newRemoteClient()
	s0, s1 := BuildInferSession(client, batch,
		[]*tensor.Matrix{w1, w2}, []*tensor.Matrix{b1, b2},
		[]ActivationKind{ActReLU, ActPiecewise}, []bool{true, true})
	fx := &inferSessionFixture{s0: s0, s1: s1}
	for i := 0; i < rounds; i++ {
		x := p.NewUniform(batch, in, -1, 1)
		x0, x1, _ := client.Split(x)
		fx.xs = append(fx.xs, [2]*tensor.Matrix{x0, x1})
	}
	return fx
}

// runInferService drives one full session through the given serving
// function and returns the merged predictions per round.
func runInferService(t *testing.T, fx *inferSessionFixture,
	serve func(party int, client, peer *comm.Conn, masks *rng.Pool) error) []*tensor.Matrix {
	t.Helper()
	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB := comm.Pipe()
	var wg sync.WaitGroup
	var err0, err1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		err0 = serve(0, client0b, peerA, rng.NewPool(77))
	}()
	go func() {
		defer wg.Done()
		err1 = serve(1, client1b, peerB, rng.NewPool(0))
	}()
	if err := client0a.WriteFrame(EncodeInferSession(fx.s0)); err != nil {
		t.Fatal(err)
	}
	if err := client1a.WriteFrame(EncodeInferSession(fx.s1)); err != nil {
		t.Fatal(err)
	}
	var preds []*tensor.Matrix
	for _, x := range fx.xs {
		got, err := RequestInference(client0a, client1a, x[0], x[1])
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, got)
	}
	client0a.Close()
	client1a.Close()
	wg.Wait()
	if !isSessionEnd(err0) || !isSessionEnd(err1) {
		t.Fatalf("serving loops ended badly: %v / %v", err0, err1)
	}
	peerA.Close()
	peerB.Close()
	return preds
}

// A whole inference session served on the wire pipeline must return
// predictions bit-identical to the serial service: same session material,
// same request shares, same mask seed.
func TestServeInferenceWireMatchesSerial(t *testing.T) {
	const rounds = 3
	fx := buildInferFixture(t, rounds)

	serialPreds := runInferService(t, fx, func(party int, client, peer *comm.Conn, masks *rng.Pool) error {
		return ServeInference(party, client, peer, masks)
	})
	for _, chunk := range []int{0, 3, 8} {
		cfg := WireConfig{ChunkRows: chunk}
		wirePreds := runInferService(t, fx, func(party int, client, peer *comm.Conn, masks *rng.Pool) error {
			return ServeInferenceWire(party, client, peer, masks, cfg)
		})
		for i := range serialPreds {
			if !wirePreds[i].Equal(serialPreds[i]) {
				t.Fatalf("ChunkRows=%d round %d: wire prediction differs from serial", chunk, i)
			}
		}
	}
}

// ServeLoopWire end to end: a client's RequestMul against two pipelined
// serving loops must merge to the true product and bit-match the serial
// serving loops.
func TestServeLoopWireEndToEnd(t *testing.T) {
	p := rng.NewPool(45)
	client := newRemoteClient()
	a := p.NewUniform(23, 14, -1, 1)
	b := p.NewUniform(14, 6, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)

	run := func(loop func(party int, cl, peer comm.Framer) error) *tensor.Matrix {
		t.Helper()
		cl0a, cl0b := comm.Pipe()
		cl1a, cl1b := comm.Pipe()
		peerA, peerB := comm.Pipe()
		var wg sync.WaitGroup
		wg.Add(2)
		var e0, e1 error
		go func() { defer wg.Done(); e0 = loop(0, cl0b, peerA) }()
		go func() { defer wg.Done(); e1 = loop(1, cl1b, peerB) }()
		got, err := RequestMul(cl0a, cl1a, in0, in1)
		if err != nil {
			t.Fatal(err)
		}
		cl0a.Close()
		cl1a.Close()
		wg.Wait()
		if e0 != nil || e1 != nil {
			t.Fatalf("serving loops: %v / %v", e0, e1)
		}
		peerA.Close()
		peerB.Close()
		return got
	}

	serial := run(func(party int, cl, peer comm.Framer) error {
		return ServeLoop(party, cl, peer)
	})
	cfg := WireConfig{ChunkRows: 6}
	wire := run(func(party int, cl, peer comm.Framer) error {
		return ServeLoopWire(party, cl, peer, cfg)
	})
	want := tensor.MulNaive(a, b)
	if !wire.ApproxEqual(want, 1e-3) {
		t.Fatalf("wire served product off by %v", wire.MaxAbsDiff(want))
	}
	if !wire.Equal(serial) {
		t.Fatal("wire served product differs bitwise from serial")
	}
}

// A malformed session (triplet geometry not matching the weights) must be
// rejected by the wire service with an error, not a kernel panic.
func TestServeInferenceWireRejectsBadGeometry(t *testing.T) {
	fx := buildInferFixture(t, 0)
	bad := make([]InferLayer, len(fx.s0))
	copy(bad, fx.s0)
	bad[1].T.U = tensor.New(5, 3) // wrong batch and width
	if _, err := validateInferLayers(bad); err == nil {
		t.Fatal("bad triplet geometry must fail validation")
	}
	if _, err := validateInferLayers(fx.s0); err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
}
