package mpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Wire service: a long-running computation server speaking the framed
// protocol. A client uploads its shares (A_i, B_i, U_i, V_i, Z_i) to each
// server; the servers run the Beaver exchange between themselves and
// return C_i. cmd/psml-server wraps this in a binary, so the two parties
// can be separate processes (or machines) — the deployment shape of
// Fig. 1b with TCP standing in for MPI.

// EncodeShares serializes one party's multiplication inputs as a single
// frame: A, B, U, V, Z in order.
func EncodeShares(in Shares) []byte {
	frame := tensor.EncodeMatrix(nil, in.A)
	frame = tensor.EncodeMatrix(frame, in.B)
	frame = tensor.EncodeMatrix(frame, in.T.U)
	frame = tensor.EncodeMatrix(frame, in.T.V)
	return tensor.EncodeMatrix(frame, in.T.Z)
}

// DecodeShares parses a frame produced by EncodeShares.
func DecodeShares(frame []byte) (Shares, error) {
	var out Shares
	mats := make([]*tensor.Matrix, 5)
	off := 0
	for i := range mats {
		m, n, err := tensor.DecodeMatrix(frame[off:])
		if err != nil {
			return out, fmt.Errorf("mpc: shares frame matrix %d: %w", i, err)
		}
		mats[i] = m
		off += n
	}
	if off != len(frame) {
		return out, fmt.Errorf("mpc: shares frame has %d trailing bytes", len(frame)-off)
	}
	out.A, out.B = mats[0], mats[1]
	out.T = TripletShares{U: mats[2], V: mats[3], Z: mats[4]}
	return out, nil
}

// ServeTriplet handles one multiplication request: read the client's
// shares frame, run the party's protocol against the peer, return C_i to
// the client. io.EOF from the client ends a serving loop cleanly.
func ServeTriplet(party int, client, peer *comm.Conn) error {
	frame, err := client.ReadFrame()
	if err != nil {
		return err // including io.EOF: client done
	}
	in, err := DecodeShares(frame)
	if err != nil {
		return err
	}
	ci, err := RemoteParty(party, peer, in)
	if err != nil {
		return err
	}
	return client.WriteFrame(tensor.EncodeMatrix(nil, ci))
}

// ServeLoop runs ServeTriplet until the client disconnects.
func ServeLoop(party int, client, peer *comm.Conn) error {
	for {
		if err := ServeTriplet(party, client, peer); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil // client done
			}
			return err
		}
	}
}

// RequestMul is the client side of one remote multiplication: send the
// pre-split shares to both servers, collect and merge the result shares.
func RequestMul(s0, s1 *comm.Conn, in0, in1 Shares) (*tensor.Matrix, error) {
	if err := s0.WriteFrame(EncodeShares(in0)); err != nil {
		return nil, fmt.Errorf("mpc: upload to server 0: %w", err)
	}
	if err := s1.WriteFrame(EncodeShares(in1)); err != nil {
		return nil, fmt.Errorf("mpc: upload to server 1: %w", err)
	}
	f0, err := s0.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("mpc: result from server 0: %w", err)
	}
	f1, err := s1.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("mpc: result from server 1: %w", err)
	}
	c0, _, err := tensor.DecodeMatrix(f0)
	if err != nil {
		return nil, err
	}
	c1, _, err := tensor.DecodeMatrix(f1)
	if err != nil {
		return nil, err
	}
	return RemoteCombine(c0, c1), nil
}

// handshake tags so two psml-server processes can agree on who they are.
const (
	helloMagic = 0x50534d4c // "PSML"
)

// WriteHello sends a role handshake (party index) on a fresh connection.
func WriteHello(c *comm.Conn, party int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], helloMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(party))
	return c.WriteFrame(buf[:])
}

// ReadHello validates the handshake and returns the peer's party index.
func ReadHello(c *comm.Conn) (int, error) {
	frame, err := c.ReadFrame()
	if err != nil {
		return 0, err
	}
	if len(frame) != 8 || binary.LittleEndian.Uint32(frame[:4]) != helloMagic {
		return 0, fmt.Errorf("mpc: bad hello frame")
	}
	return int(binary.LittleEndian.Uint32(frame[4:])), nil
}
