package mpc

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/obs"
	"parsecureml/internal/tensor"
)

// Wire service: a long-running computation server speaking the framed
// protocol. A client uploads its shares (A_i, B_i, U_i, V_i, Z_i) to each
// server; the servers run the Beaver exchange between themselves and
// return C_i. cmd/psml-server wraps this in a binary, so the two parties
// can be separate processes (or machines) — the deployment shape of
// Fig. 1b with TCP standing in for MPI.
//
// Failure awareness: every request carries a client-chosen 64-bit id, and
// the servers tag their peer-exchange frames with it. A client that dies
// after uploading to only one server leaves that server's E/F frame
// orphaned on the peer link; with per-frame deadlines the stuck party
// times out instead of blocking forever, and on the next request the
// other party recognizes the orphaned frame as stale (wrong id) and
// discards it — one misbehaving client can neither wedge nor desync the
// inter-server link.

// sharesSize is the exact wire size of a shares payload, so encode
// buffers never append-grow through multi-MB reallocations.
func sharesSize(in Shares) int {
	n := tensor.EncodedSize(in.A) + tensor.EncodedSize(in.B)
	if in.T.U != nil {
		n += tensor.EncodedSize(in.T.U) + tensor.EncodedSize(in.T.V) + tensor.EncodedSize(in.T.Z)
	}
	return n
}

// EncodeShares serializes one party's multiplication inputs as a single
// payload: A, B, U, V, Z in order. A nil-triplet Shares (in.T.U == nil)
// encodes as the short A, B form — the dealer-fed request shape, where
// the servers draw the triplet from their TripletFeed instead of the
// client shipping it.
func EncodeShares(in Shares) []byte {
	return appendShares(make([]byte, 0, sharesSize(in)), in)
}

func appendShares(frame []byte, in Shares) []byte {
	frame = tensor.EncodeMatrix(frame, in.A)
	frame = tensor.EncodeMatrix(frame, in.B)
	if in.T.U == nil {
		return frame
	}
	frame = tensor.EncodeMatrix(frame, in.T.U)
	frame = tensor.EncodeMatrix(frame, in.T.V)
	return tensor.EncodeMatrix(frame, in.T.Z)
}

// DecodeShares parses a payload produced by EncodeShares: either the
// full five-matrix form (A, B, U, V, Z) or the two-matrix dealer-fed
// form (A, B with out.T zero) — the payload length after B decides.
func DecodeShares(frame []byte) (Shares, error) {
	var out Shares
	var mats [5]*tensor.Matrix
	off, count := 0, 0
	for count < len(mats) && off < len(frame) {
		m, n, err := tensor.DecodeMatrix(frame[off:])
		if err != nil {
			return out, fmt.Errorf("mpc: shares frame matrix %d: %w", count, err)
		}
		mats[count] = m
		count++
		off += n
	}
	if off != len(frame) || (count != 2 && count != 5) {
		return out, fmt.Errorf("mpc: shares frame holds %d matrices with %d trailing bytes, want 2 (dealer-fed) or 5", count, len(frame)-off)
	}
	out.A, out.B = mats[0], mats[1]
	if count == 5 {
		out.T = TripletShares{U: mats[2], V: mats[3], Z: mats[4]}
	}
	if err := validateShares(out); err != nil {
		return Shares{}, err
	}
	return out, nil
}

// validateShares rejects geometry the multiplication cannot run: the
// kernels index by A and B's dimensions, so a malformed request whose
// matrices decoded fine individually but disagree with each other would
// otherwise panic the serving goroutine mid-GEMM instead of failing the
// decode.
func validateShares(in Shares) error {
	m, k := in.A.Rows, in.A.Cols
	n := in.B.Cols
	if in.B.Rows != k {
		return fmt.Errorf("mpc: shares geometry: A is %dx%d but B is %dx%d", m, k, in.B.Rows, n)
	}
	if in.T.U == nil {
		return nil // dealer-fed form: the triplet geometry is the feed's to honor
	}
	switch {
	case in.T.U.Rows != m || in.T.U.Cols != k:
		return fmt.Errorf("mpc: shares geometry: U is %dx%d, want %dx%d", in.T.U.Rows, in.T.U.Cols, m, k)
	case in.T.V.Rows != k || in.T.V.Cols != n:
		return fmt.Errorf("mpc: shares geometry: V is %dx%d, want %dx%d", in.T.V.Rows, in.T.V.Cols, k, n)
	case in.T.Z.Rows != m || in.T.Z.Cols != n:
		return fmt.Errorf("mpc: shares geometry: Z is %dx%d, want %dx%d", in.T.Z.Rows, in.T.Z.Cols, m, n)
	}
	return nil
}

// requestIDBytes prefixes every client request and every peer-exchange
// frame of the session protocol.
const requestIDBytes = 8

// EncodeRequest serializes one multiplication request: the request id
// followed by the shares payload.
func EncodeRequest(id uint64, in Shares) []byte {
	frame := make([]byte, 0, requestIDBytes+sharesSize(in))
	frame = binary.LittleEndian.AppendUint64(frame, id)
	return appendShares(frame, in)
}

// DecodeRequest parses a frame produced by EncodeRequest or
// EncodeRequestBudget — a deadline envelope, when present, is skipped
// transparently (read it with PeekBudget).
func DecodeRequest(frame []byte) (uint64, Shares, error) {
	if len(frame) < requestIDBytes {
		return 0, Shares{}, fmt.Errorf("mpc: request frame of %d bytes has no id", len(frame))
	}
	id := binary.LittleEndian.Uint64(frame)
	in, err := DecodeShares(stripEnvelope(frame))
	return id, in, err
}

// reqCounter hands out process-unique request ids, starting from a
// random base so ids from a restarted client don't collide with frames a
// previous incarnation left on the servers' peer link.
var reqCounter atomic.Uint64

func init() {
	var seed [requestIDBytes]byte
	cryptorand.Read(seed[:]) // a zero base on error is merely less unique
	reqCounter.Store(binary.LittleEndian.Uint64(seed[:]))
}

func newRequestID() uint64 { return reqCounter.Add(1) }

// maxStaleFrames bounds how many orphaned peer frames one read will
// discard before declaring the link desynchronized.
const maxStaleFrames = 32

// ErrPeerDesync reports a peer link delivering nothing but frames from
// other requests.
var ErrPeerDesync = errors.New("mpc: peer link desynchronized")

// taggedConn scopes peer-exchange frames to one request: writes prefix
// the id, reads discard frames whose id differs (orphans of rounds that
// died on the other party before it consumed them). It is reusable across
// requests (setID) and keeps its own receive scratch, so a serving loop's
// steady state neither copies frames for tagging (vectored writes put the
// id prefix on the wire directly) nor allocates to receive them. One
// writer and one reader at a time, as with the underlying link.
type taggedConn struct {
	c     comm.Framer
	id    uint64
	idbuf [requestIDBytes]byte
	rbuf  []byte
	used  int // high-water frame size of the current request
}

// setID scopes subsequent frames to a new request. Request boundaries are
// where receive scratch grown by one oversized exchange is let go: a
// long-lived session must not pin the largest frame it ever saw.
func (t *taggedConn) setID(id uint64) {
	t.id = id
	t.rbuf = shrinkScratch(t.rbuf, t.used)
	t.used = 0
}

func (t *taggedConn) WriteFrame(b []byte) error {
	binary.LittleEndian.PutUint64(t.idbuf[:], t.id)
	if vf, ok := t.c.(comm.VecFramer); ok {
		return vf.WriteFrameVec(t.idbuf[:], b)
	}
	f := make([]byte, requestIDBytes+len(b))
	copy(f, t.idbuf[:])
	copy(f[requestIDBytes:], b)
	return t.c.WriteFrame(f)
}

func (t *taggedConn) ReadFrame() ([]byte, error) {
	for i := 0; i < maxStaleFrames; i++ {
		f, err := readFrameInto(t.c, t.rbuf)
		if err != nil {
			return nil, err
		}
		t.rbuf = f // keep the grown buffer, id prefix included
		if len(f) > t.used {
			t.used = len(f)
		}
		if len(f) < requestIDBytes {
			return nil, fmt.Errorf("mpc: peer frame of %d bytes has no request id", len(f))
		}
		if binary.LittleEndian.Uint64(f) == t.id {
			return f[requestIDBytes:], nil
		}
		// Stale frame from an aborted round: drop and keep reading.
		metrics.staleFrames.Inc()
	}
	metrics.desyncs.Inc()
	return nil, ErrPeerDesync
}

// ReadFrameInto implements comm.FramerInto. The tagged receive path
// already reuses t's own scratch (the id prefix must stay out of the
// caller's view), so buf is ignored.
func (t *taggedConn) ReadFrameInto(buf []byte) ([]byte, error) {
	return t.ReadFrame()
}

// bufShrinkCap is the high-water mark for serving-loop scratch buffers:
// scratch grown past it by one oversized frame is released at the next
// request boundary where the current usage no longer justifies it,
// instead of staying resident for the session lifetime.
const bufShrinkCap = 1 << 20

// shrinkScratch decides whether a scratch buffer earned its keep: buffers
// over the cap whose latest use filled less than half their capacity are
// dropped (the next request re-allocates to its own size), counted on
// psml_buf_shrinks_total. Everything else is kept as-is.
func shrinkScratch(buf []byte, used int) []byte {
	if cap(buf) > bufShrinkCap && used <= cap(buf)/2 {
		metrics.bufShrinks.Inc()
		return nil
	}
	return buf
}

// ServeTriplet handles one multiplication request: read the client's
// request frame, run the party's protocol against the peer under the
// request's id, return C_i to the client. The reply frame echoes the
// request id ahead of the result matrix, so a client whose earlier
// request died mid-read can recognize the orphaned result and discard
// it instead of silently desyncing. io.EOF from the client ends a
// serving loop cleanly.
func ServeTriplet(party int, client, peer comm.Framer) error {
	frame, err := client.ReadFrame()
	if err != nil {
		return err // including io.EOF: client done
	}
	span := metrics.reqSerial.Start()
	// Failed requests must record too: incident-time latency histograms
	// that only see successes under-report exactly when it matters.
	defer span.Stop()
	metrics.requests.Inc()
	id, in, err := DecodeRequest(frame)
	if err != nil {
		metrics.requestErrors.Inc()
		return err
	}
	tc := &taggedConn{c: peer}
	tc.setID(id)
	ci, err := RemoteParty(party, tc, in)
	if err != nil {
		metrics.requestErrors.Inc()
		return fmt.Errorf("mpc: request %016x: %w", id, err)
	}
	out := binary.LittleEndian.AppendUint64(make([]byte, 0, requestIDBytes+tensor.EncodedSize(ci)), id)
	out = tensor.EncodeMatrix(out, ci)
	return client.WriteFrame(out)
}

// isSessionEnd reports an error that means "client done", not a failure.
func isSessionEnd(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed)
}

// ServeLoop runs ServeTriplet until the client disconnects.
func ServeLoop(party int, client, peer comm.Framer) error {
	for {
		if err := ServeTriplet(party, client, peer); err != nil {
			if isSessionEnd(err) {
				return nil // client done
			}
			return err
		}
	}
}

// ServeLoopWire is ServeLoop on the wire double pipeline: the peer
// exchange runs banded and full-duplex (RemotePartyPipelined's protocol),
// and the loop's steady state reuses one wireMul, one tagged peer wrapper,
// and its request/reply frame buffers, with result matrices drawn from and
// returned to the configured pool. Both parties must run the same path
// with equal cfg.ChunkRows — the wire framing is not compatible with
// ServeLoop's.
func ServeLoopWire(party int, client, peer comm.Framer, cfg WireConfig) error {
	w := newWireMul(party, cfg)
	defer w.close()
	tc := &taggedConn{c: peer}
	var reqBuf, outBuf []byte
	for {
		frame, err := readFrameInto(client, reqBuf)
		if err != nil {
			if isSessionEnd(err) {
				return nil // client done
			}
			return err
		}
		reqBuf = frame
		// Explicit start time instead of a Span: the duration must be
		// observed on the error returns too, not only the success path.
		start := time.Now()
		metrics.requests.Inc()
		id, in, err := DecodeRequest(frame)
		if err != nil {
			metrics.requestErrors.Inc()
			metrics.reqWire.ObserveSince(start)
			return err
		}
		tc.setID(id)
		ci, err := w.mul(tc, in.A, in.B, in.T, nil, nil)
		if err != nil {
			metrics.requestErrors.Inc()
			metrics.reqWire.ObserveSince(start)
			return fmt.Errorf("mpc: request %016x: %w", id, err)
		}
		outBuf = binary.LittleEndian.AppendUint64(outBuf[:0], id)
		outBuf = tensor.EncodeMatrix(outBuf, ci)
		w.put(ci)
		if err := client.WriteFrame(outBuf); err != nil {
			metrics.requestErrors.Inc()
			metrics.reqWire.ObserveSince(start)
			return err
		}
		metrics.reqWire.ObserveSince(start)
		reqBuf = shrinkScratch(reqBuf, len(frame))
		outBuf = shrinkScratch(outBuf, len(outBuf))
	}
}

// ServerError is RequestMul's typed failure: which server, which step.
type ServerError struct {
	Server int    // 0 or 1
	Op     string // "upload", "result", "decode"
	Err    error
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("mpc: server %d %s: %v", e.Server, e.Op, e.Err)
}

func (e *ServerError) Unwrap() error { return e.Err }

// RequestMul is the client side of one remote multiplication: ship the
// pre-split shares to both servers concurrently, collect and merge the
// result shares. Deadlines come from the connections (comm.Conn
// SetTimeouts); failures identify the server and step via *ServerError.
//
// Failure containment: when one leg fails, the other leg is always
// drained to completion before RequestMul returns — a surviving server's
// goroutine is never left mid-protocol on a shared connection — and
// every leg error is surfaced via errors.Join (errors.As still finds
// each *ServerError). Result frames echo the request id, so a result
// orphaned by an earlier failed call (e.g. a read deadline that expired
// just before the server replied) is recognized as stale on the next
// call and discarded instead of silently desyncing the connection.
func RequestMul(s0, s1 comm.Framer, in0, in1 Shares) (*tensor.Matrix, error) {
	return RequestMulID(newRequestID(), s0, s1, in0, in1)
}

// RequestMulID is RequestMul under a caller-chosen request id. The id
// must be unique across every in-flight request of the server pair (it
// keys the peer-link mux sub-stream); callers that route through a
// session router also rely on it as the routing key, so both legs of
// one call must carry the same id — which this guarantees.
func RequestMulID(id uint64, s0, s1 comm.Framer, in0, in1 Shares) (*tensor.Matrix, error) {
	return requestMulFrames(id, s0, s1, EncodeRequest(id, in0), EncodeRequest(id, in1))
}

// requestMulFrames runs both legs of one multiplication with prebuilt
// request frames (EncodeRequest or EncodeRequestBudget output; both must
// carry id).
func requestMulFrames(id uint64, s0, s1 comm.Framer, f0, f1 []byte) (*tensor.Matrix, error) {
	results := make(chan *ServerError, 2)
	shares := [2]*tensor.Matrix{}
	leg := func(server int, c comm.Framer, req []byte) *ServerError {
		if err := c.WriteFrame(req); err != nil {
			return &ServerError{Server: server, Op: "upload", Err: err}
		}
		for tries := 0; tries < maxStaleFrames; tries++ {
			f, err := c.ReadFrame()
			if err != nil {
				return &ServerError{Server: server, Op: "result", Err: err}
			}
			if len(f) < requestIDBytes {
				return &ServerError{Server: server, Op: "decode",
					Err: fmt.Errorf("mpc: result frame of %d bytes has no request id", len(f))}
			}
			if binary.LittleEndian.Uint64(f) != id {
				// Orphaned result of an aborted earlier request: shed it,
				// like the peer link sheds stale exchange frames.
				metrics.staleFrames.Inc()
				continue
			}
			// A typed error frame instead of a result: the fleet refused or
			// failed this request in-band. Surface it through the usual
			// ServerError wrapper (errors.As finds the *RouteError).
			if _, re, ok := DecodeRouteError(f); ok {
				return &ServerError{Server: server, Op: "route", Err: re}
			}
			m, _, err := tensor.DecodeMatrix(f[requestIDBytes:])
			if err != nil {
				return &ServerError{Server: server, Op: "decode", Err: err}
			}
			shares[server] = m
			return nil
		}
		metrics.desyncs.Inc()
		return &ServerError{Server: server, Op: "result", Err: ErrPeerDesync}
	}
	go func() { results <- leg(0, s0, f0) }()
	go func() { results <- leg(1, s1, f1) }()
	// Always collect both legs — returning on the first failure would
	// leave the survivor mid-protocol on a connection the caller may
	// reuse.
	var legErrs [2]error
	for i := 0; i < 2; i++ {
		if se := <-results; se != nil {
			legErrs[se.Server] = se
		}
	}
	if err := errors.Join(legErrs[0], legErrs[1]); err != nil {
		return nil, err
	}
	return RemoteCombine(shares[0], shares[1]), nil
}

// RetryConfig tunes RequestMulRetry.
type RetryConfig struct {
	// Attempts bounds the total tries, the first included. <= 0 selects 3.
	Attempts int
	// Budget, when positive, rides a deadline envelope on every request
	// frame: the end-to-end time remaining, decremented by the client's
	// own elapsed time across retries, so routers and replicas can shed
	// work that can no longer make it.
	Budget time.Duration
	// MaxRetryAfter caps how long one retry sleeps on the fleet's
	// retry-after hint. <= 0 selects 250ms.
	MaxRetryAfter time.Duration
}

// RequestMulRetry is the session-level retry ladder on top of
// RequestMulID: when every leg failure of an attempt is a retryable
// RouteError (no replicas, a draining backend, an exhausted router
// ladder — conditions where no backend ran the request), the SAME
// request id is re-sent after the fleet's retry-after hint. The retried
// multiplication is idempotent — the result is a deterministic function
// of the input shares — so a duplicate execution is merely wasted work,
// never a wrong answer. Non-retryable failures (transport errors,
// decode failures, an exceeded deadline) surface immediately.
func RequestMulRetry(s0, s1 comm.Framer, in0, in1 Shares, cfg RetryConfig) (*tensor.Matrix, error) {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	maxWait := cfg.MaxRetryAfter
	if maxWait <= 0 {
		maxWait = 250 * time.Millisecond
	}
	id := newRequestID()
	start := time.Now()
	encode := func(in Shares) []byte {
		if cfg.Budget > 0 {
			return EncodeRequestBudget(id, cfg.Budget-time.Since(start), in)
		}
		return EncodeRequest(id, in)
	}
	for attempt := 1; ; attempt++ {
		if cfg.Budget > 0 && time.Since(start) >= cfg.Budget {
			return nil, &ServerError{Server: 0, Op: "route",
				Err: &RouteError{Code: RouteDeadlineExceeded}}
		}
		m, err := requestMulFrames(id, s0, s1, encode(in0), encode(in1))
		if err == nil {
			return m, nil
		}
		wait, retryable := retryHint(err)
		if !retryable || attempt >= attempts {
			return nil, err
		}
		metrics.clientRetries.Inc()
		if wait > maxWait {
			wait = maxWait
		}
		if wait > 0 {
			time.Sleep(wait)
		}
	}
}

// retryHint reports whether EVERY leg failure inside err is a retryable
// RouteError — the only condition under which re-sending the same id is
// known safe and useful — and the largest retry-after hint among them.
func retryHint(err error) (time.Duration, bool) {
	legs := []error{err}
	if j, ok := err.(interface{ Unwrap() []error }); ok {
		legs = j.Unwrap()
	}
	var wait time.Duration
	for _, e := range legs {
		var re *RouteError
		if !errors.As(e, &re) || !re.Retryable() {
			return 0, false
		}
		if re.RetryAfter > wait {
			wait = re.RetryAfter
		}
	}
	return wait, len(legs) > 0
}

// ServeConfig tunes a serving accept loop.
type ServeConfig struct {
	// ClientTimeout is the per-frame deadline on client connections; it
	// doubles as the session idle timeout (a client that goes quiet for
	// longer is disconnected). 0 disables.
	ClientTimeout time.Duration
	// PeerTimeout is the per-frame deadline on the inter-server link —
	// the bound on how long a party blocks when the complementary request
	// never arrives at its peer. 0 disables (and restores the wedge).
	PeerTimeout time.Duration
	// Wire, when non-nil, serves sessions on the wire double pipeline
	// (ServeLoopWire) instead of the serial per-request protocol. Both
	// parties must configure it identically — the peer framings differ.
	Wire *WireConfig
	// Batch, when non-nil, coalesces compatible same-shape requests across
	// sessions into single stacked exchanges (see batch.go) — bit-identical
	// results, one peer round per batch instead of one per request. Both
	// parties must enable it together: a peer without batching never
	// answers proposals, and every batch pays the ack timeout before
	// falling back.
	Batch *BatchConfig
	// Log receives structured serving events (session lifecycle, accept
	// failures); nil silences them. Metrics are recorded regardless — the
	// event stream and /metrics share the same call sites.
	Log *obs.Logger
	// MaxSessions bounds the client sessions served concurrently; accepts
	// beyond the bound are shed (connection closed immediately, counted on
	// psml_sessions_shed_total) rather than queued, so overload degrades
	// loudly instead of stacking invisible latency. <= 0 selects
	// DefaultMaxSessions.
	MaxSessions int
	// Feed, when non-nil, serves dealer-fed requests (the two-matrix A, B
	// form): the triplet comes from this party's feed instead of the
	// client. Party 0 draws the next ready triplet for the request's shape
	// and tells party 1 its stream sequence number over the request's mux
	// session (the first frame, ahead of the Beaver exchange), so both
	// parties always hold complementary halves of the same triplet no
	// matter how concurrent sessions interleave. Full five-matrix requests
	// are still honored — a pair can serve classic and dealer-fed clients
	// at once. Both parties must configure a Feed together.
	Feed TripletFeed
}

// DefaultMaxSessions is the concurrent-session bound when
// ServeConfig.MaxSessions is unset.
const DefaultMaxSessions = 16

// maxAcceptFailures bounds consecutive listener failures before
// ServeClients gives up (a closed or broken listener, not a bad client).
const maxAcceptFailures = 5

// ServeClients is the failure-contained accept loop of one computation
// party: serve up to cfg.MaxSessions client sessions concurrently over
// the single peer link until ctx is cancelled or the listener dies. The
// peer link is multiplexed (comm.Mux) with one sub-stream per in-flight
// request, keyed by the request id both parties already share — the
// paper's one MPI edge carrying every concurrent Beaver exchange.
// Accepts beyond MaxSessions are shed immediately. A session that fails —
// malformed frames, a client killed mid-protocol, a peer-exchange
// timeout — is logged and torn down alone; its mux sub-streams are
// aborted (notifying the peer's half) and its sibling sessions keep
// running. Returns nil on graceful shutdown.
//
// The peer connection is owned by the mux for the duration of the call
// and is closed on return. Shutdown is bounded: cancelling ctx closes
// the listener AND every tracked client connection, so in-flight
// sessions unblock immediately instead of running until ClientTimeout
// (or forever when it is 0).
//
// peer is any Framer: a *comm.Conn for the classic single-connection
// deployment, or a *comm.SupervisedLink (see SupervisePeer) when the
// link should survive connection loss — sessions then see a reconnect
// only as latency. Note PeerTimeout still bounds each session's peer
// reads via the mux, so it must comfortably exceed the supervisor's
// worst-case detect+reconnect+resync time.
func ServeClients(ctx context.Context, party int, ln net.Listener, peer comm.Framer, cfg ServeConfig) error {
	if cfg.PeerTimeout > 0 {
		// The peer's read side belongs to the demux reader, which must
		// idle freely between requests: per-session reads are bounded by
		// the mux's ReadTimeout instead of a connection deadline. A
		// supervised link has no deadline surface — its reads block until
		// delivery or permanent link death, which preserves the same
		// contract.
		if d, ok := peer.(interface {
			SetTimeouts(read, write time.Duration)
		}); ok {
			d.SetTimeouts(0, cfg.PeerTimeout)
		}
	}
	maxSessions := cfg.MaxSessions
	if maxSessions <= 0 {
		maxSessions = DefaultMaxSessions
	}
	// Size the stale-id tombstone ring to the session churn this loop can
	// generate: with many concurrent sessions each retiring a mux id per
	// request, the default ring can wrap within one slow request's
	// lifetime, and a frame for a wrapped-out id would be taken for a new
	// session's. 64 retired ids of headroom per concurrent session keeps
	// recognition comfortably ahead of churn.
	tombstones := maxSessions * 64
	if tombstones < comm.DefaultTombstoneIDs {
		tombstones = comm.DefaultTombstoneIDs
	}
	mux := comm.NewMux(peer, comm.MuxConfig{ReadTimeout: cfg.PeerTimeout, TombstoneIDs: tombstones})
	// Concurrent wire sessions share one result-matrix pool (a private
	// pool per session would defeat recycling across requests).
	if cfg.Wire != nil && cfg.Wire.Pool == nil {
		w := *cfg.Wire
		w.Pool = tensor.NewPool()
		cfg.Wire = &w
	}
	var codec *WireCodec
	if cfg.Wire != nil {
		codec = cfg.Wire.Codec
	}
	// A reconnected supervised link is a different network path: the
	// bandwidth EWMA measured on the dead incarnation must not keep the
	// codec selector pinned to a throttle (or a fast path) that no longer
	// exists. Reset it; fresh exchanges re-measure within a few requests.
	if codec != nil {
		if sl, ok := peer.(*comm.SupervisedLink); ok {
			sl.OnReconnect(codec.ResetLink)
		}
	}
	// Codec capability handshake: advertise once on the reserved control
	// session and upgrade when the peer's advertisement arrives. Until
	// then (or forever, against an old peer that never answers) every
	// send stays raw — no timeout in the startup path.
	if codec != nil && codec.Negotiate {
		ctl, err := mux.Open(wireCtlID)
		if err != nil {
			mux.Close()
			return fmt.Errorf("mpc: party %d: codec control session: %w", party, err)
		}
		go runCodecNegotiation(ctl, codec, cfg.Log)
	}
	var bt batcher
	if cfg.Batch != nil {
		var pool *tensor.Pool
		if cfg.Wire != nil {
			pool = cfg.Wire.Pool
		}
		b, err := newBatcher(party, mux, *cfg.Batch, pool, codec)
		if err != nil {
			mux.Close()
			return fmt.Errorf("mpc: party %d: %w", party, err)
		}
		bt = b
	}

	// Cancelling ctx closes the listener (unblocking Accept) and every
	// tracked session conn (unblocking their frame reads). The mutex
	// closes the race where ctx fires between Accept returning a conn and
	// the loop recording it: whichever side runs second sees the other's
	// state and closes the conn.
	var mu sync.Mutex
	active := make(map[*comm.Conn]struct{})
	stopping := false
	stop := context.AfterFunc(ctx, func() {
		mu.Lock()
		defer mu.Unlock()
		stopping = true
		ln.Close()
		for c := range active {
			c.Close()
		}
		if bt != nil {
			// Unpark collecting batches immediately: their members fall
			// back and then fail on their (now closing) client conns.
			bt.close()
		}
	})
	defer stop()

	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		if bt != nil {
			bt.close() // idempotent: the AfterFunc may have run already
		}
		mux.Close()
	}()

	sem := make(chan struct{}, maxSessions)
	failures := 0
	for {
		client, err := comm.Accept(ln)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			failures++
			if failures >= maxAcceptFailures {
				return fmt.Errorf("mpc: party %d accept: %w", party, err)
			}
			cfg.Log.Error("accept", err, "party", party, "failures", failures, "max", maxAcceptFailures)
			// Backoff, but never outlive a cancelled context.
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Duration(failures) * 10 * time.Millisecond):
			}
			continue
		}
		failures = 0
		select {
		case sem <- struct{}{}:
		default:
			// Overload: shed the connection instead of queueing it behind
			// an unbounded backlog.
			metrics.sessionsShed.Inc()
			cfg.Log.Event("session_shed", "party", party, "max_sessions", maxSessions)
			client.Close()
			continue
		}
		mu.Lock()
		if stopping {
			mu.Unlock()
			client.Close()
			<-sem
			return nil
		}
		active[client] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(client *comm.Conn) {
			defer wg.Done()
			serveMuxSession(party, client, mux, bt, cfg)
			mu.Lock()
			delete(active, client)
			mu.Unlock()
			client.Close()
			<-sem
		}(client)
	}
}

// serveMuxSession runs one client session's request loop with its
// lifecycle metrics and logging.
func serveMuxSession(party int, client *comm.Conn, mux *comm.Mux, bt batcher, cfg ServeConfig) {
	if cfg.ClientTimeout > 0 {
		client.SetTimeouts(cfg.ClientTimeout, cfg.ClientTimeout)
	}
	metrics.sessions.Inc()
	metrics.sessionsActive.Add(1)
	cfg.Log.Event("session_start", "party", party)
	err := serveMuxLoop(party, client, mux, bt, cfg)
	if err != nil && !isSessionEnd(err) {
		metrics.sessionErrors.Inc()
		cfg.Log.Error("session", err, "party", party)
	} else {
		cfg.Log.Event("session_done", "party", party)
	}
	metrics.sessionsActive.Add(-1)
}

// serveMuxLoop serves one client's requests until it disconnects, each
// request's peer exchange running on its own mux sub-stream keyed by the
// request id. The exchange itself is exactly ServeLoop's (serial) or
// ServeLoopWire's (banded double pipeline) protocol — the mux session
// replaces the dedicated tagged connection, so results stay bit-identical
// to the single-session paths. With bt non-nil each request is first
// offered to the batch scheduler; requests it cannot place (degenerate
// shapes, members dropped by the peer) run the individual path unchanged.
//
// The request latency histogram for the taken path is observed on EVERY
// exit, error returns included — an explicit start time instead of a Span
// so failures record too.
func serveMuxLoop(party int, client *comm.Conn, mux *comm.Mux, bt batcher, cfg ServeConfig) error {
	var w *wireMul
	if cfg.Wire != nil {
		w = newWireMul(party, *cfg.Wire)
		defer w.close()
	}
	var reqBuf, outBuf []byte
	for {
		frame, err := readFrameInto(client, reqBuf)
		if err != nil {
			return err // including io.EOF: client done
		}
		reqBuf = frame
		start := time.Now()
		h := metrics.reqSerial
		if w != nil {
			h = metrics.reqWire
		}
		metrics.requests.Inc()
		id, in, err := DecodeRequest(frame)
		if err != nil {
			metrics.requestErrors.Inc()
			h.ObserveSince(start)
			return err
		}
		// Deadline admission: a budget-enveloped request whose remaining
		// time cannot cover the cost model's exchange floor is refused
		// in-band and the session continues — the refusal is deterministic
		// in (budget, shape), so both parties of a pair decide identically.
		if budget, ok := PeekBudget(frame); ok && budget < DeadlineEstimate(in.A.Rows, in.A.Cols, in.B.Cols) {
			metrics.deadlineShed.Inc()
			h.ObserveSince(start)
			if err := client.WriteFrame(EncodeRouteError(id, RouteDeadlineExceeded, 0)); err != nil {
				metrics.requestErrors.Inc()
				return err
			}
			reqBuf = shrinkScratch(reqBuf, len(frame))
			continue
		}
		var ci *tensor.Matrix
		var release func()
		handled := false
		// Dealer-fed requests (nil triplet) skip the batcher: the stacked
		// exchange ships member triplets inside the proposal, which the
		// short request form deliberately does not carry.
		if bt != nil && in.T.U != nil {
			var berr error
			ci, release, handled, berr = bt.do(id, in)
			if handled {
				h = metrics.reqBatched
				if berr != nil {
					metrics.requestErrors.Inc()
					h.ObserveSince(start)
					return fmt.Errorf("mpc: request %016x: %w", id, berr)
				}
			}
		}
		if !handled {
			sess, err := mux.Open(id)
			if err != nil {
				metrics.requestErrors.Inc()
				h.ObserveSince(start)
				return fmt.Errorf("mpc: request %016x: %w", id, err)
			}
			if in.T.U == nil {
				if cfg.Feed == nil {
					sess.Abort()
					metrics.requestErrors.Inc()
					h.ObserveSince(start)
					return fmt.Errorf("mpc: request %016x: dealer-fed request on a party with no triplet feed", id)
				}
				tspan := metrics.phaseTriplet.Start()
				in.T, err = feedTriplet(party, cfg.Feed, sess, in.A.Rows, in.A.Cols, in.B.Cols)
				tspan.Stop()
				if err != nil {
					sess.Abort()
					metrics.requestErrors.Inc()
					h.ObserveSince(start)
					return fmt.Errorf("mpc: request %016x: %w", id, err)
				}
			}
			if w != nil {
				ci, err = w.mul(sess, in.A, in.B, in.T, nil, nil)
			} else {
				ci, err = RemoteParty(party, sess, in)
			}
			if err != nil {
				// Notify the peer's half so it fails fast instead of waiting
				// out its read deadline on frames that will never come.
				sess.Abort()
				metrics.requestErrors.Inc()
				h.ObserveSince(start)
				return fmt.Errorf("mpc: request %016x: %w", id, err)
			}
			sess.Close()
		}
		outBuf = binary.LittleEndian.AppendUint64(outBuf[:0], id)
		outBuf = tensor.EncodeMatrix(outBuf, ci)
		switch {
		case release != nil:
			release() // last member out returns the stacked result
		case w != nil && !handled:
			w.put(ci)
		}
		if err := client.WriteFrame(outBuf); err != nil {
			metrics.requestErrors.Inc()
			h.ObserveSince(start)
			return err
		}
		h.ObserveSince(start)
		reqBuf = shrinkScratch(reqBuf, len(frame))
		outBuf = shrinkScratch(outBuf, len(outBuf))
	}
}

// handshake tags so two psml-server processes can agree on who they are.
const (
	helloMagic = 0x50534d4c // "PSML"
)

// helloTimeout bounds each half of the role handshake. Without it the
// hello runs with whatever deadlines the connection already has — often
// none on a freshly dialed conn — and a silent or wedged peer blocks
// server startup indefinitely. A var so tests can shrink it.
var helloTimeout = 10 * time.Second

// WriteHello sends a role handshake (party index) on a fresh connection.
// The write runs under a bounded deadline (helloTimeout) regardless of
// the connection's configured timeouts, which are restored afterwards.
func WriteHello(c *comm.Conn, party int) error {
	r0, w0 := c.Timeouts()
	c.SetTimeouts(r0, helloTimeout)
	defer c.SetTimeouts(r0, w0)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], helloMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(party))
	if err := c.WriteFrame(buf[:]); err != nil {
		return fmt.Errorf("mpc: hello: %w", err)
	}
	return nil
}

// ReadHello validates the handshake and returns the peer's party index.
// The read runs under a bounded deadline (helloTimeout) regardless of
// the connection's configured timeouts, which are restored afterwards —
// a silent peer fails the handshake instead of hanging startup.
func ReadHello(c *comm.Conn) (int, error) {
	r0, w0 := c.Timeouts()
	c.SetTimeouts(helloTimeout, w0)
	defer c.SetTimeouts(r0, w0)
	frame, err := c.ReadFrame()
	if err != nil {
		return 0, fmt.Errorf("mpc: hello: %w", err)
	}
	if len(frame) != 8 || binary.LittleEndian.Uint32(frame[:4]) != helloMagic {
		return 0, fmt.Errorf("mpc: bad hello frame")
	}
	return int(binary.LittleEndian.Uint32(frame[4:])), nil
}
