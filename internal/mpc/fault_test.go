package mpc

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/obs"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// servePair boots both parties as failure-aware accept loops over a real
// TCP peer link (buffered, like production, so an orphaned E/F frame can
// sit in the socket between sessions) and returns the client-facing
// addresses plus a shutdown func.
func servePair(t *testing.T, cfg ServeConfig) (addr0, addr1 string, shutdown func()) {
	t.Helper()
	peerLn, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln0, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := comm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		peer, err := comm.Accept(peerLn)
		peerLn.Close()
		if err != nil {
			t.Errorf("peer accept: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 0, ln0, peer, cfg); err != nil {
			t.Errorf("server 0: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		peer, err := comm.DialRetry(peerLn.Addr().String(), comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
		if err != nil {
			t.Errorf("peer dial: %v", err)
			return
		}
		defer peer.Close()
		if err := ServeClients(ctx, 1, ln1, peer, cfg); err != nil {
			t.Errorf("server 1: %v", err)
		}
	}()
	return ln0.Addr().String(), ln1.Addr().String(), func() {
		cancel()
		wg.Wait()
	}
}

// requestOK drives one full RequestMul against the pair and verifies the
// product against plaintext.
func requestOK(t *testing.T, addr0, addr1 string, client *Client, p *rng.Pool) {
	t.Helper()
	c0, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := comm.DialRetry(addr1, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c0.SetTimeouts(5*time.Second, 5*time.Second)
	c1.SetTimeouts(5*time.Second, 5*time.Second)

	a := p.NewUniform(11, 13, -1, 1)
	b := p.NewUniform(13, 7, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)
	got, err := RequestMul(c0, c1, in0, in1)
	if err != nil {
		t.Fatalf("RequestMul after fault: %v", err)
	}
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("served product off by %v", got.MaxAbsDiff(want))
	}
}

// The headline regression: a client killed mid-RequestMul — after
// uploading to only one server — must not wedge the peer link. With peer
// deadlines the stuck party times out (no indefinite block), and both
// servers then serve the next client correctly even though the aborted
// round left an orphaned E/F frame on the wire. Exercised in both
// directions (rogue hits party 0 only, then party 1 only).
func TestKilledClientMidRequestRecovery(t *testing.T) {
	cfg := ServeConfig{
		ClientTimeout: 5 * time.Second,
		PeerTimeout:   300 * time.Millisecond,
		Log:           obs.LogfLogger(t.Logf),
	}
	addr0, addr1, shutdown := servePair(t, cfg)
	defer shutdown()

	client := newRemoteClient()
	p := rng.NewPool(7)

	for round, rogueAddr := range []string{addr0, addr1} {
		a := p.NewUniform(9, 9, -1, 1)
		b := p.NewUniform(9, 9, -1, 1)
		in0, _ := RemoteClientSplit(a, b, client)

		rogue, err := comm.Dial(rogueAddr)
		if err != nil {
			t.Fatal(err)
		}
		rogue.SetTimeouts(2*time.Second, 2*time.Second)
		if err := rogue.WriteFrame(EncodeRequest(uint64(0xDEAD+round), in0)); err != nil {
			t.Fatal(err)
		}
		rogue.Close() // dies without ever contacting the other server

		// Give the stuck party its full deadline to time out, then both
		// servers must be serving again: the request below succeeds and
		// verifies despite the orphaned E/F frame on the peer link.
		time.Sleep(2 * cfg.PeerTimeout)
		start := time.Now()
		requestOK(t, addr0, addr1, client, p)
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("recovery after rogue round %d took %v", round, elapsed)
		}
	}
}

// A client that sends a truncated request frame (dies mid-upload) is
// contained the same way.
func TestTruncatedUploadRecovery(t *testing.T) {
	cfg := ServeConfig{
		ClientTimeout: 500 * time.Millisecond,
		PeerTimeout:   300 * time.Millisecond,
		Log:           obs.LogfLogger(t.Logf),
	}
	addr0, addr1, shutdown := servePair(t, cfg)
	defer shutdown()

	// Hand-write a frame header promising 4096 bytes over a raw socket,
	// deliver 8, die: the server reads a truncated frame and must contain
	// the failure. A second rogue sends a complete frame whose payload is
	// too short to be a request (id only, no shares): decode error, same
	// containment.
	raw, err := net.Dial("tcp", addr0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := binary.LittleEndian.AppendUint32(nil, 4096)
	if _, err := raw.Write(append(hdr, 1, 2, 3, 4, 5, 6, 7, 8)); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	rogue, err := comm.Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	rogue.SetTimeouts(2*time.Second, 2*time.Second)
	if err := rogue.WriteFrame(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	rogue.Close()

	requestOK(t, addr0, addr1, newRemoteClient(), rng.NewPool(8))
}

func TestRequestMulTypedErrors(t *testing.T) {
	// Server 1's conn is dead: the leg must fail with a *ServerError
	// naming server 1, concurrently with server 0's leg.
	a0, b0 := comm.Pipe()
	a1, b1 := comm.Pipe()
	b1.Close() // kill server 1's side
	a0.SetTimeouts(200*time.Millisecond, 200*time.Millisecond)
	a1.SetTimeouts(200*time.Millisecond, 200*time.Millisecond)
	go func() { // server 0 absorbs the upload, then stays silent
		b0.SetTimeouts(time.Second, time.Second)
		b0.ReadFrame()
	}()

	p := rng.NewPool(9)
	client := newRemoteClient()
	a := p.NewUniform(4, 4, -1, 1)
	b := p.NewUniform(4, 4, -1, 1)
	in0, in1 := RemoteClientSplit(a, b, client)
	_, err := RequestMul(a0, a1, in0, in1)
	if err == nil {
		t.Fatal("RequestMul with a dead server must fail")
	}
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *ServerError", err)
	}
	// Both legs fail here — server 1's write hits the closed pipe and
	// server 0's result read times out waiting for a reply that never
	// comes — and the joined error must blame both, each as a typed
	// *ServerError naming its server.
	blamed := map[int]string{}
	legs := []error{err}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		legs = joined.Unwrap()
	}
	for _, leg := range legs {
		var se *ServerError
		if errors.As(leg, &se) {
			blamed[se.Server] = se.Op
		}
	}
	if _, ok := blamed[1]; !ok {
		t.Fatalf("joined error %v never blames the dead server 1", err)
	}
	if _, ok := blamed[0]; !ok {
		t.Fatalf("joined error %v never blames server 0's timed-out leg", err)
	}
	a0.Close()
	a1.Close()
	b0.Close()
}

func TestTaggedConnDiscardsStaleFrames(t *testing.T) {
	a, b := comm.Pipe()
	defer a.Close()
	defer b.Close()
	stale := &taggedConn{c: a, id: 1}
	fresh := &taggedConn{c: a, id: 2}
	reader := &taggedConn{c: b, id: 2}

	go func() {
		stale.WriteFrame([]byte("orphaned"))
		fresh.WriteFrame([]byte("current"))
	}()
	got, err := reader.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "current" {
		t.Fatalf("read %q, want the fresh frame", got)
	}
}

func TestTaggedConnDesyncBound(t *testing.T) {
	a, b := comm.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		w := &taggedConn{c: a, id: 99}
		for i := 0; i < maxStaleFrames+1; i++ {
			if w.WriteFrame([]byte("junk")) != nil {
				return
			}
		}
	}()
	reader := &taggedConn{c: b, id: 1}
	_, err := reader.ReadFrame()
	if !errors.Is(err, ErrPeerDesync) {
		t.Fatalf("got %v, want ErrPeerDesync", err)
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	p := rng.NewPool(10)
	in := Shares{
		A: p.NewUniform(3, 4, -1, 1),
		B: p.NewUniform(4, 2, -1, 1),
		T: TripletShares{
			U: p.NewUniform(3, 4, -1, 1),
			V: p.NewUniform(4, 2, -1, 1),
			Z: p.NewUniform(3, 2, -1, 1),
		},
	}
	id, got, err := DecodeRequest(EncodeRequest(0xFEEDFACE, in))
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xFEEDFACE {
		t.Fatalf("id %x", id)
	}
	if !got.A.Equal(in.A) || !got.T.Z.Equal(in.T.Z) {
		t.Fatal("request round trip corrupted shares")
	}
	if _, _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("short request must error")
	}
}

// Graceful shutdown: cancelling the serve context stops both accept
// loops even with no client connected.
func TestServeClientsGracefulShutdown(t *testing.T) {
	_, _, shutdown := servePair(t, ServeConfig{PeerTimeout: 200 * time.Millisecond, Log: obs.LogfLogger(t.Logf)})
	done := make(chan struct{})
	go func() {
		shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeClients did not stop on context cancel")
	}
}
