package mpc

import (
	"parsecureml/internal/comm"
	"parsecureml/internal/obs"
	"parsecureml/internal/tensor"
)

// Serving-stack instrumentation, registered once on obs.Default and
// exposed by cmd/psml-server's -debug-addr listener. The phase split
// mirrors the paper's profiling axes — offline triplet generation
// (§4.2), the online Eq. (8) GEMM, mask/activation reconstruction
// (Eq. 5), and inter-node transfer — so a scrape shows the same balance
// the paper's Fig. 9/10 measurements do. Everything here is atomic on
// preallocated storage: observing a phase adds nothing to the wire
// path's allocs/op (the BENCH_wire.json baseline is enforced in CI).
var metrics = struct {
	// Per-phase serving time (seconds). "triplet_gen" is the client-side
	// offline phase; the other three decompose every online request.
	phaseTriplet     *obs.Histogram
	phaseExchange    *obs.Histogram
	phaseGemm        *obs.Histogram
	phaseReconstruct *obs.Histogram

	// Whole-request latency per serving path.
	reqSerial, reqWire           *obs.Histogram
	reqBatched                   *obs.Histogram
	reqInferSerial, reqInferWire *obs.Histogram

	// Cross-session batching (batch.go): batches executed, requests they
	// carried, requests that fell back to the individual path, members the
	// peer dropped from a proposal, collector hold time, and stacked
	// exchange time.
	batches        *obs.Counter
	batchRequests  *obs.Counter
	batchFallbacks *obs.Counter
	batchDropped   *obs.Counter
	batchWait      *obs.Histogram
	batchExec      *obs.Histogram

	// Adaptive wire compression (wirecodec.go): per-tensor codec picks
	// indexed [tensorE|tensorF][codecRaw|codecFP16|codecCSR], dense bytes
	// the chosen encodings avoided, and the peer's negotiated capability
	// set (-1 is never reported; 0 means raw-only or not yet negotiated).
	wireCodecPicks      [2][3]*obs.Counter
	wireBytesSaved      *obs.Counter
	wireCodecNegotiated *obs.Gauge

	// Serving-loop scratch buffers released at request boundaries after
	// outgrowing the high-water cap (see shrinkScratch).
	bufShrinks *obs.Counter

	requests, requestErrors *obs.Counter
	sessions, sessionErrors *obs.Counter
	sessionsActive          *obs.Gauge
	sessionsShed            *obs.Counter

	// Connection-lifecycle pathologies the bugfix sweep made visible:
	// orphaned frames shed by request-id tagging, and links declared
	// desynchronized after the stale-frame bound.
	staleFrames *obs.Counter
	desyncs     *obs.Counter

	// Deadline budgets: requests refused at admission because the
	// remaining budget cannot cover the cost model's exchange floor, and
	// client-side retries of retryable route errors.
	deadlineShed  *obs.Counter
	clientRetries *obs.Counter

	// Supervised peer link: heartbeat round-trip time, observed once per
	// acknowledged heartbeat (SupervisePeer wires it in).
	linkRTT *obs.Histogram
}{
	phaseTriplet:     obs.Default.Histogram(`psml_phase_seconds{phase="triplet_gen"}`, "Serving time per protocol phase (paper: offline, online, reconstruct, transfer)."),
	phaseExchange:    obs.Default.Histogram(`psml_phase_seconds{phase="exchange"}`, "Serving time per protocol phase (paper: offline, online, reconstruct, transfer)."),
	phaseGemm:        obs.Default.Histogram(`psml_phase_seconds{phase="gemm"}`, "Serving time per protocol phase (paper: offline, online, reconstruct, transfer)."),
	phaseReconstruct: obs.Default.Histogram(`psml_phase_seconds{phase="reconstruct"}`, "Serving time per protocol phase (paper: offline, online, reconstruct, transfer)."),

	reqSerial:      obs.Default.Histogram(`psml_request_seconds{path="mul_serial"}`, "Whole-request serving latency per path."),
	reqWire:        obs.Default.Histogram(`psml_request_seconds{path="mul_wire"}`, "Whole-request serving latency per path."),
	reqBatched:     obs.Default.Histogram(`psml_request_seconds{path="mul_batched"}`, "Whole-request serving latency per path."),
	reqInferSerial: obs.Default.Histogram(`psml_request_seconds{path="infer_serial"}`, "Whole-request serving latency per path."),
	reqInferWire:   obs.Default.Histogram(`psml_request_seconds{path="infer_wire"}`, "Whole-request serving latency per path."),

	batches:        obs.Default.Counter("psml_batch_batches_total", "Cross-session batches executed as stacked exchanges."),
	batchRequests:  obs.Default.Counter("psml_batch_requests_total", "Requests served inside cross-session batches."),
	batchFallbacks: obs.Default.Counter("psml_batch_fallbacks_total", "Requests offered to the batcher that fell back to the individual path."),
	batchDropped:   obs.Default.Counter("psml_batch_dropped_members_total", "Proposed batch members the peer dropped (their half never arrived in time)."),
	batchWait:      obs.Default.Histogram("psml_batch_wait_seconds", "Collector hold time from a batch's first request to dispatch."),
	batchExec:      obs.Default.Histogram("psml_batch_exec_seconds", "Stacked batch exchange execution time."),

	wireCodecPicks: [2][3]*obs.Counter{
		{
			obs.Default.Counter(`psml_wire_codec_total{tensor="e",codec="raw"}`, "Per-tensor wire codec selections on the online exchange path."),
			obs.Default.Counter(`psml_wire_codec_total{tensor="e",codec="fp16"}`, "Per-tensor wire codec selections on the online exchange path."),
			obs.Default.Counter(`psml_wire_codec_total{tensor="e",codec="csr"}`, "Per-tensor wire codec selections on the online exchange path."),
		},
		{
			obs.Default.Counter(`psml_wire_codec_total{tensor="f",codec="raw"}`, "Per-tensor wire codec selections on the online exchange path."),
			obs.Default.Counter(`psml_wire_codec_total{tensor="f",codec="fp16"}`, "Per-tensor wire codec selections on the online exchange path."),
			obs.Default.Counter(`psml_wire_codec_total{tensor="f",codec="csr"}`, "Per-tensor wire codec selections on the online exchange path."),
		},
	},
	wireBytesSaved:      obs.Default.Counter("psml_wire_bytes_saved_total", "Dense-encoding bytes avoided by compressed wire frames (FP16/CSR)."),
	wireCodecNegotiated: obs.Default.Gauge("psml_wire_codec_negotiated", "Peer's negotiated codec capability bitmask (bit0 FP16, bit1 CSR); 0 until the peer advertises."),

	bufShrinks: obs.Default.Counter("psml_buf_shrinks_total", "Serving-loop scratch buffers released after exceeding the high-water cap."),

	requests:       obs.Default.Counter("psml_requests_total", "Requests served (all paths)."),
	requestErrors:  obs.Default.Counter("psml_request_errors_total", "Requests that failed mid-protocol."),
	sessions:       obs.Default.Counter("psml_sessions_total", "Client sessions accepted."),
	sessionErrors:  obs.Default.Counter("psml_session_errors_total", "Client sessions that ended in an error."),
	sessionsActive: obs.Default.Gauge("psml_sessions_active", "Client sessions currently being served."),
	sessionsShed:   obs.Default.Counter("psml_sessions_shed_total", "Client connections shed at accept because MaxSessions were already in flight."),

	staleFrames: obs.Default.Counter("psml_stale_frames_total", "Orphaned frames discarded by request-id tagging (peer link and client results)."),
	desyncs:     obs.Default.Counter("psml_peer_desync_total", "Links declared desynchronized after the stale-frame bound."),

	deadlineShed:  obs.Default.Counter("psml_deadline_server_shed_total", "Requests refused at replica admission: remaining budget below the cost-model exchange floor."),
	clientRetries: obs.Default.Counter("psml_client_retries_total", "RequestMulRetry attempts re-sent after a retryable route error."),

	linkRTT: obs.Default.Histogram("psml_link_heartbeat_rtt_seconds", "Supervised peer-link heartbeat round-trip time."),
}

func init() {
	// Transport and pool accounting live in packages that must not
	// depend on obs; expose their totals as read-only collectors.
	obs.Default.FuncCounter("psml_conn_bytes_in_total", "Bytes received over framed connections (length prefixes included).", func() float64 {
		in, _, _, _ := comm.WireTotals()
		return float64(in)
	})
	obs.Default.FuncCounter("psml_conn_bytes_out_total", "Bytes sent over framed connections (length prefixes included).", func() float64 {
		_, out, _, _ := comm.WireTotals()
		return float64(out)
	})
	obs.Default.FuncCounter("psml_conn_frames_in_total", "Whole frames received over framed connections.", func() float64 {
		_, _, in, _ := comm.WireTotals()
		return float64(in)
	})
	obs.Default.FuncCounter("psml_conn_frames_out_total", "Whole frames sent over framed connections.", func() float64 {
		_, _, _, out := comm.WireTotals()
		return float64(out)
	})
	obs.Default.FuncCounter("psml_pool_hits_total", "Matrix pool Gets served from retired buffers.", func() float64 {
		h, _ := tensor.PoolTotals()
		return float64(h)
	})
	obs.Default.FuncCounter("psml_pool_misses_total", "Matrix pool Gets that had to allocate.", func() float64 {
		_, m := tensor.PoolTotals()
		return float64(m)
	})
	// Peer-link multiplexing: one sub-stream per in-flight request.
	obs.Default.FuncGauge("psml_mux_sessions_active", "Mux sub-streams currently open on peer links.", func() float64 {
		return float64(comm.MuxTotals().SessionsActive)
	})
	obs.Default.FuncGauge("psml_mux_pending_frames", "Frames parked for mux sessions the local party has not opened yet.", func() float64 {
		return float64(comm.MuxTotals().PendingFrames)
	})
	obs.Default.FuncGauge("psml_mux_pending_bytes", "Bytes parked for mux sessions the local party has not opened yet.", func() float64 {
		return float64(comm.MuxTotals().PendingBytes)
	})
	obs.Default.FuncCounter("psml_mux_stale_frames_total", "Mux frames shed because their session was already closed.", func() float64 {
		return float64(comm.MuxTotals().StaleFrames)
	})
	obs.Default.FuncCounter("psml_mux_evicted_frames_total", "Parked mux frames evicted under pending-buffer pressure.", func() float64 {
		return float64(comm.MuxTotals().EvictedFrames)
	})
	obs.Default.FuncCounter("psml_mux_overflows_total", "Mux sessions killed by inbox overflow.", func() float64 {
		return float64(comm.MuxTotals().Overflows)
	})
	obs.Default.FuncCounter("psml_mux_tombstone_wraps_total", "Stale-id tombstones evicted by ring wraparound; a late frame for a wrapped-out id is no longer recognized as stale.", func() float64 {
		return float64(comm.MuxTotals().TombstoneWraps)
	})
	// Mux frame accounting: what batching amortizes. Fewer frames out per
	// served request is the direct signature of coalesced exchanges.
	obs.Default.FuncCounter("psml_mux_frames_in_total", "Mux frames routed off peer links (data + control).", func() float64 {
		return float64(comm.MuxTotals().FramesIn)
	})
	obs.Default.FuncCounter("psml_mux_frames_out_total", "Mux frames written to peer links (data + control).", func() float64 {
		return float64(comm.MuxTotals().FramesOut)
	})
	obs.Default.FuncCounter("psml_mux_bytes_in_total", "Bytes routed off peer links, mux headers included.", func() float64 {
		return float64(comm.MuxTotals().BytesIn)
	})
	obs.Default.FuncCounter("psml_mux_bytes_out_total", "Bytes written to peer links, mux headers included.", func() float64 {
		return float64(comm.MuxTotals().BytesOut)
	})
	// Supervised peer link: reconnect/replay accounting from the comm
	// layer's package totals (comm must not depend on obs).
	obs.Default.FuncCounter("psml_link_reconnects_total", "Peer-link connections re-established by the supervisor after a failure.", func() float64 {
		return float64(comm.SupervisorTotals().Reconnects)
	})
	obs.Default.FuncCounter("psml_link_failures_total", "Peer-link connections declared dead (read/write error or heartbeat expiry).", func() float64 {
		return float64(comm.SupervisorTotals().LinkFailures)
	})
	obs.Default.FuncCounter("psml_exchange_replays_total", "Buffered exchange frames replayed to the peer after a link resync.", func() float64 {
		return float64(comm.SupervisorTotals().ReplayedFrames)
	})
	obs.Default.FuncCounter("psml_exchange_replay_discards_total", "In-flight exchange frames discarded at resync because the peer already had them.", func() float64 {
		return float64(comm.SupervisorTotals().ResyncDiscards)
	})
	obs.Default.FuncCounter("psml_link_shed_frames_total", "Buffered frames shed because a supervised link died for good.", func() float64 {
		return float64(comm.SupervisorTotals().ShedFrames)
	})
	obs.Default.FuncGauge("psml_link_buffered_frames", "Unacknowledged frames currently buffered for replay on supervised links.", func() float64 {
		return float64(comm.SupervisorTotals().BufferedFrames)
	})
	obs.Default.FuncCounter("psml_link_peer_resets_total", "Supervised-link resyncs that found a restarted peer and reset the stream (AllowPeerRestart).", func() float64 {
		return float64(comm.SupervisorTotals().PeerResets)
	})
}
