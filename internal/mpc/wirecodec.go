package mpc

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/hw"
	"parsecureml/internal/obs"
	"parsecureml/internal/tensor"
)

// Adaptive per-tensor wire compression for the online exchange. The
// revealed tensors of the Beaver protocol — the E and F difference shares
// and the stacked batch variants — are the bulk of per-request traffic,
// and on a bandwidth-bound link encoding them smaller buys wall-clock
// even though it costs CPU. Each send picks raw ('D'), FP16 ('H'), or
// CSR ('S') per tensor from three inputs: a cheap sampled density
// estimate, the link byte budget (the static hw model overridden by a
// live bandwidth measurement, the planner's blend in miniature), and the
// hw crossover hw.Platform.CodecWorthwhile — bytes must be worth more
// than the encode+decode memory passes. On the paper's 100 Gb/s fabric
// nothing ever pays and every send stays raw; on a throttled WAN-class
// link CSR and FP16 cut the dominant term.
//
// Correctness contract ("use what you ship"): the public E (Eq. 5) is
// E_0 + E_1, so a sender that rounds its outgoing share to FP16 must use
// the SAME rounded values locally — wireMul rounds the retained share in
// place before the sender goroutine starts. Both parties then reconstruct
// the identical public E' from whatever mix of codecs the two directions
// chose, which keeps codec choice sender-local: no per-tensor agreement,
// only the capability handshake below. The resulting product is
// C = A×B + U·γ + δ·V − δ·γ for the rounding perturbations δ, γ of E and
// F — a bounded, documented tolerance (see DESIGN.md) paid only when a
// lossy codec is picked, which the selector only does for revealed
// tensors. Raw shares (the activation re-share and mask frames, session
// F setup) are NEVER lossy-encoded: they stay on the raw dense path.
//
// Frames are self-describing (tensor.DecodeAnyInto follows the tag), so
// the receive path is codec-oblivious; negotiation only gates what a
// sender may EMIT. Each party advertises its codec capabilities once on
// a reserved mux control session; until the peer's frame arrives the
// sender stays raw, so a new server paired with an old one (which never
// opens the session and never replies) degrades to raw forever instead
// of desyncing — no timeout, no version probe.

// CodecSet is a bitmask of optional wire codecs, as advertised in the
// capability handshake.
type CodecSet uint32

const (
	// CodecFP16 halves dense payloads by rounding revealed tensors to
	// binary16 on the wire (lossy, reveal-only; see the precision contract).
	CodecFP16 CodecSet = 1 << 0
	// CodecCSR sends sparse revealed tensors as index+value pairs
	// (lossless).
	CodecCSR CodecSet = 1 << 1
)

// codecMask is every codec this build understands; peer caps are masked
// to it so a newer peer's unknown bits are ignored.
const codecMask = CodecFP16 | CodecCSR

// wireCodecKind is one concrete per-tensor encoding decision.
type wireCodecKind uint8

const (
	codecRaw wireCodecKind = iota
	codecFP16
	codecCSR
)

// wireTensor labels which revealed tensor a pick was for (metrics only).
type wireTensor uint8

const (
	tensorE wireTensor = iota
	tensorF
)

// fp16SafeMax is the magnitude gate for electing FP16: binary16 tops out
// at 65504, and the public tensor is the SUM of two independently rounded
// shares, so shares are kept well inside the representable range. Shares
// drawn in ShareRange pass trivially; adversarially scaled inputs fall
// back to raw instead of rounding to ±Inf.
const fp16SafeMax = 1 << 14

// wireCtlID is the reserved mux session carrying the codec capability
// handshake ("psmlcdc1"), like batchCtlID for batching. An old peer never
// opens it; its mux parks our single small frame in the bounded pending
// buffer and the sender simply never upgrades.
const wireCtlID uint64 = 0x70736d6c63646331

// wireCodecMagic tags codec capability frames on the control session.
const wireCodecMagic uint32 = 0x43444350 // "PCDC"

// wireCodecCapVersion is this build's capability frame version. Parsers
// accept newer versions (fixed fields never move), so bumping it does not
// break old peers.
const wireCodecCapVersion byte = 1

// WireCodec is the per-link codec selector: which codecs may be emitted,
// the hw cost model for the crossover, and the live link-bandwidth
// estimate. One WireCodec is shared by every exchange on a peer link
// (all methods are safe for concurrent senders). The zero value — and a
// nil *WireCodec — always picks raw.
type WireCodec struct {
	// Enabled is the set this party is willing to emit.
	Enabled CodecSet
	// HW supplies the codec cost model (CodecWorthwhile) and the static
	// link bandwidth default.
	HW hw.Platform
	// Link, when its Bandwidth is set, overrides HW.Net as the static
	// byte budget — e.g. a known-throttled deployment link.
	Link hw.LinkModel
	// Negotiate gates Enabled on the capability handshake: no codec is
	// emitted until the peer has advertised its own set, and only the
	// intersection is used. Leave false only when both endpoints are
	// known to decode every enabled codec (e.g. single-process tests).
	Negotiate bool

	// negotiated holds the peer's masked capability set + 1; 0 means the
	// peer's frame has not arrived yet. The +1 lets the zero value mean
	// "not negotiated" so WireCodec literals need no constructor.
	negotiated atomic.Uint32
	// linkBps is the measured link bandwidth EWMA as float64 bits; 0
	// means no measurement yet.
	linkBps atomic.Uint64
}

// usable returns the codec set picks may draw from right now.
func (wc *WireCodec) usable() CodecSet {
	if wc == nil {
		return 0
	}
	if !wc.Negotiate {
		return wc.Enabled & codecMask
	}
	n := wc.negotiated.Load()
	if n == 0 {
		return 0 // peer capabilities unknown: raw only
	}
	return wc.Enabled & CodecSet(n-1)
}

// setPeer records the peer's advertised capability set.
func (wc *WireCodec) setPeer(caps uint32) {
	masked := caps & uint32(codecMask)
	wc.negotiated.Store(masked + 1)
	metrics.wireCodecNegotiated.Set(int64(masked))
}

// linkEwmaAlpha weights the newest bandwidth sample 1/8, enough history
// to ride out one anomalous exchange without going stale.
const linkEwmaAlpha = 1.0 / 8

// ObserveLink feeds one measured transfer into the bandwidth EWMA.
// Callers report what they actually shipped and how long the exchange's
// transfer phases took; the selector prefers this over the static model
// whenever it is lower (the budget is min(static, measured), so a fast
// local pipe cannot disable a deliberately configured throttle, and a
// genuinely slow link engages the codecs no matter what the model says).
func (wc *WireCodec) ObserveLink(bytes int, dur time.Duration) {
	if wc == nil || bytes <= 0 || dur <= 0 {
		return
	}
	sample := float64(bytes) / dur.Seconds()
	for {
		old := wc.linkBps.Load()
		cur := math.Float64frombits(old)
		next := sample
		if old != 0 {
			next = cur + linkEwmaAlpha*(sample-cur)
		}
		if wc.linkBps.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ResetLink discards the measured bandwidth EWMA, returning budgetBps
// to the static model until new samples arrive. Call it when the
// underlying transport path may have changed — a SupervisedLink
// reconnect lands on a new TCP connection (possibly a new route), and
// a throttled estimate from the dead incarnation must not keep pinning
// the codec and batch planners against a link that no longer exists.
func (wc *WireCodec) ResetLink() {
	if wc == nil {
		return
	}
	wc.linkBps.Store(0)
}

// budgetBps is the byte budget the crossover charges transfers against:
// the static model (Link override, else HW.Net), capped by the measured
// EWMA when one exists.
func (wc *WireCodec) budgetBps() float64 {
	static := wc.Link.Bandwidth
	if static <= 0 {
		static = wc.HW.Net.Bandwidth
	}
	measured := math.Float64frombits(wc.linkBps.Load())
	if measured > 0 && (static <= 0 || measured < static) {
		return measured
	}
	return static
}

// nnzSampleCap bounds the density estimate to a strided pass over at
// most this many elements, so pick() costs O(1) on large tensors.
const nnzSampleCap = 512

// estimateNNZ returns a deliberately pessimistic (high) NNZ estimate
// from a strided sample: overestimating density only costs a missed
// compression, while underestimating would elect CSR for a tensor whose
// exact encoding then falls back to dense anyway (appendWireTensor
// re-checks with the true count before committing bytes).
func estimateNNZ(m *tensor.Matrix) int {
	elems := len(m.Data)
	if elems == 0 {
		return 0
	}
	stride := elems/nnzSampleCap + 1
	nz, n := 0, 0
	for i := 0; i < elems; i += stride {
		n++
		if m.Data[i] != 0 {
			nz++
		}
	}
	est := nz*elems/n + elems/16 + 1 // +~6% margin for sampling error
	if est > elems {
		est = elems
	}
	return est
}

// pick selects the wire encoding for one revealed tensor. The decision
// is sender-local (see the package comment): lossless CSR is tried
// first, FP16 only when CSR did not qualify and every element is inside
// the binary16 safe range. Either must both shrink the frame and clear
// the hw crossover against the current byte budget. The pick is counted
// on psml_wire_codec_total.
func (wc *WireCodec) pick(m *tensor.Matrix, tk wireTensor) wireCodecKind {
	kind := codecRaw
	if set := wc.usable(); set != 0 && m.Data != nil && len(m.Data) > 0 {
		elems := len(m.Data)
		raw := tensor.EncodedSizeDense(m.Rows, m.Cols)
		bps := wc.budgetBps()
		if set&CodecCSR != 0 {
			if est := tensor.EncodedSizeCSR(m.Rows, m.Cols, estimateNNZ(m)); est < raw &&
				wc.HW.CodecWorthwhile(raw-est, elems, bps) {
				kind = codecCSR
			}
		}
		if kind == codecRaw && set&CodecFP16 != 0 {
			if est := tensor.EncodedSizeFP16(m.Rows, m.Cols); est < raw &&
				wc.HW.CodecWorthwhile(raw-est, elems, bps) && m.MaxAbs() <= fp16SafeMax {
				kind = codecFP16
			}
		}
	}
	metrics.wireCodecPicks[tk][kind].Inc()
	return kind
}

// appendWireTensor encodes m under kind, appending the self-describing
// frame to buf. A CSR election is re-checked against the EXACT nonzero
// count — the pick used a sampled estimate, and a band of a matrix that
// is sparse overall can be locally dense — and falls back to the raw
// dense encoding when CSR would not actually be smaller. Bytes saved
// against the dense encoding accumulate on psml_wire_bytes_saved_total.
func appendWireTensor(buf []byte, m *tensor.Matrix, kind wireCodecKind) []byte {
	start := len(buf)
	switch kind {
	case codecFP16:
		buf = tensor.EncodeMatrixFP16(buf, m)
	case codecCSR:
		if tensor.EncodedSizeCSR(m.Rows, m.Cols, m.NNZ()) < tensor.EncodedSizeDense(m.Rows, m.Cols) {
			buf = tensor.AppendMatrixCSR(buf, m)
		} else {
			buf = tensor.EncodeMatrix(buf, m)
		}
	default:
		return tensor.EncodeMatrix(buf, m)
	}
	if saved := tensor.EncodedSizeDense(m.Rows, m.Cols) - (len(buf) - start); saved > 0 {
		metrics.wireBytesSaved.Add(uint64(saved))
	}
	return buf
}

// runCodecNegotiation advertises wc.Enabled on the reserved control
// session and upgrades wc when the peer's advertisement arrives.
// Timeout-free by design: an old peer never answers and the selector
// just stays raw. Runs until the mux dies; safe as a fire-and-forget
// goroutine (ServeClients spawns it when Negotiate is set).
func runCodecNegotiation(ctl *comm.MuxSession, wc *WireCodec, log *obs.Logger) {
	frame := comm.AppendCapabilityFrame(nil, wireCodecMagic, comm.CapabilityFrame{
		Version: wireCodecCapVersion,
		Caps:    uint32(wc.Enabled & codecMask),
	})
	if err := ctl.WriteFrame(frame); err != nil {
		log.Error("codec_negotiate_send", err)
		return
	}
	var buf []byte
	for {
		f, err := readFrameInto(ctl, buf)
		if err != nil {
			if comm.IsTimeout(err) {
				continue // idle control session; keep listening
			}
			return // mux dead or shutdown
		}
		buf = f
		cf, err := comm.ParseCapabilityFrame(f, wireCodecMagic)
		if err != nil {
			log.Error("codec_negotiate_frame", err)
			continue
		}
		wc.setPeer(cf.Caps)
		log.Event("codec_negotiated", "peer_version", int(cf.Version), "peer_caps", int(cf.Caps))
		// Keep reading: a peer re-advertisement (e.g. after its restart on a
		// supervised link) re-applies idempotently.
	}
}

// ParseWireCodecName maps a -wire-codec flag value to the codec set it
// enables. "raw" (and "") disables compression entirely; "auto" enables
// everything and lets the selector decide per tensor.
func ParseWireCodecName(name string) (CodecSet, error) {
	switch name {
	case "", "raw":
		return 0, nil
	case "auto":
		return CodecFP16 | CodecCSR, nil
	case "fp16":
		return CodecFP16, nil
	case "csr":
		return CodecCSR, nil
	}
	return 0, fmt.Errorf("mpc: unknown wire codec %q (want auto, raw, fp16 or csr)", name)
}
