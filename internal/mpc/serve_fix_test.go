package mpc

import (
	"strings"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Regression tests for the serving-path correctness sweep: leaked latency
// spans on error paths, unvalidated share geometry, and scratch buffers
// pinned at their high-water mark.

// TestErroredRequestStillObservesLatency: a request that fails
// mid-protocol must still land a sample in the request-latency histogram.
// Before the fix the spans were only stopped on the success path, so
// incident-time scrapes under-reported exactly the failing traffic.
func TestErroredRequestStillObservesLatency(t *testing.T) {
	garbage := append(make([]byte, requestIDBytes), "not a shares payload"...)

	t.Run("serial", func(t *testing.T) {
		ca, cb := comm.Pipe()
		defer ca.Close()
		defer cb.Close()
		before := metrics.reqSerial.Count()
		wrote := make(chan error, 1)
		go func() { wrote <- ca.WriteFrame(garbage) }()
		if err := ServeTriplet(0, cb, nil); err == nil {
			t.Fatal("ServeTriplet accepted a malformed request")
		}
		if err := <-wrote; err != nil {
			t.Fatal(err)
		}
		if got := metrics.reqSerial.Count(); got != before+1 {
			t.Fatalf("reqSerial samples %d, want %d: failed request left no latency sample", got, before+1)
		}
	})

	t.Run("wire", func(t *testing.T) {
		ca, cb := comm.Pipe()
		defer ca.Close()
		defer cb.Close()
		before := metrics.reqWire.Count()
		wrote := make(chan error, 1)
		go func() { wrote <- ca.WriteFrame(garbage) }()
		if err := ServeLoopWire(0, cb, nil, WireConfig{}); err == nil {
			t.Fatal("ServeLoopWire accepted a malformed request")
		}
		if err := <-wrote; err != nil {
			t.Fatal(err)
		}
		if got := metrics.reqWire.Count(); got != before+1 {
			t.Fatalf("reqWire samples %d, want %d: failed request left no latency sample", got, before+1)
		}
	})
}

// validGeomShares builds a mutually consistent shares payload:
// A 2×3 · B 3×4 with matching triplet geometry.
func validGeomShares() Shares {
	return Shares{
		A: tensor.New(2, 3), B: tensor.New(3, 4),
		T: TripletShares{U: tensor.New(2, 3), V: tensor.New(3, 4), Z: tensor.New(2, 4)},
	}
}

// TestDecodeSharesValidatesGeometry: every way the five matrices can
// disagree must fail the decode with a geometry error instead of reaching
// the kernels (which index by A and B's dimensions and panic).
func TestDecodeSharesValidatesGeometry(t *testing.T) {
	if _, err := DecodeShares(EncodeShares(validGeomShares())); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Shares)
	}{
		{"B rows", func(s *Shares) { s.B = tensor.New(2, 4) }},
		{"U shape", func(s *Shares) { s.T.U = tensor.New(3, 3) }},
		{"V shape", func(s *Shares) { s.T.V = tensor.New(3, 5) }},
		{"Z shape", func(s *Shares) { s.T.Z = tensor.New(4, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := validGeomShares()
			tc.mutate(&bad)
			_, err := DecodeShares(EncodeShares(bad))
			if err == nil {
				t.Fatal("mismatched geometry decoded cleanly")
			}
			if !strings.Contains(err.Error(), "geometry") {
				t.Fatalf("want a geometry error, got: %v", err)
			}
			// The request codec must reject it the same way.
			if _, _, err := DecodeRequest(EncodeRequest(1, bad)); err == nil {
				t.Fatal("DecodeRequest accepted mismatched geometry")
			}
		})
	}
}

// FuzzDecodeShares: any payload that decodes cleanly must be safe to
// multiply. The committed corpus entry (testdata/fuzz/FuzzDecodeShares)
// is the pre-fix panic reproducer: five individually well-formed matrices
// whose U disagrees with A.
func FuzzDecodeShares(f *testing.F) {
	f.Add(EncodeShares(validGeomShares()))
	bad := validGeomShares()
	bad.T.U = tensor.New(3, 3)
	f.Add(EncodeShares(bad))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeShares(data)
		if err != nil {
			return
		}
		// Re-run the Eq. (8) index arithmetic the serving path performs;
		// pre-fix this panicked on geometry that decoded fine.
		m, k, n := in.A.Rows, in.A.Cols, in.B.Cols
		e := tensor.New(m, k)
		tensor.Sub(e, in.A, in.T.U)
		fm := tensor.New(k, n)
		tensor.Sub(fm, in.B, in.T.V)
		c := tensor.New(m, n)
		tensor.Gemm(c, in.A, fm, 1, 0)
		tensor.Gemm(c, e, in.B, 1, 1)
		tensor.AXPY(c, 1, in.T.Z)
	})
}

// TestShrinkScratch pins the release policy: only buffers past the
// high-water cap whose latest request used less than half of them are
// dropped, and each drop is counted.
func TestShrinkScratch(t *testing.T) {
	before := metrics.bufShrinks.Value()
	small := make([]byte, 1024)
	if shrinkScratch(small, 0) == nil {
		t.Error("released a buffer under the cap")
	}
	hot := make([]byte, 2*bufShrinkCap)
	if shrinkScratch(hot, cap(hot)) == nil {
		t.Error("released a buffer the current request still fills")
	}
	if metrics.bufShrinks.Value() != before {
		t.Error("kept buffers were counted as shrinks")
	}
	if shrinkScratch(hot, 100) != nil {
		t.Error("kept an oversized cold buffer")
	}
	if got := metrics.bufShrinks.Value(); got != before+1 {
		t.Errorf("psml_buf_shrinks_total moved by %d, want 1", got-before)
	}
}

// TestTaggedConnReleasesScratchAtRequestBoundary: the per-request peer
// wrapper lets go of receive scratch grown by one oversized exchange when
// the next request starts small.
func TestTaggedConnReleasesScratchAtRequestBoundary(t *testing.T) {
	cold := &taggedConn{rbuf: make([]byte, 2*bufShrinkCap), used: 100}
	cold.setID(1)
	if cold.rbuf != nil {
		t.Error("oversized receive scratch survived the request boundary")
	}
	if cold.used != 0 {
		t.Error("high-water mark not reset at the request boundary")
	}
	hot := &taggedConn{rbuf: make([]byte, 2*bufShrinkCap)}
	hot.used = cap(hot.rbuf)
	hot.setID(2)
	if hot.rbuf == nil {
		t.Error("receive scratch the last request filled was dropped")
	}
}

// TestServingLoopShedsOversizedScratch drives the full serving stack: one
// request whose frame dwarfs the high-water cap, then a small one. The
// session must survive (results exact) and release the grown buffers at
// the small request's boundary.
func TestServingLoopShedsOversizedScratch(t *testing.T) {
	before := metrics.bufShrinks.Value()
	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 20 * time.Second,
		PeerTimeout:   20 * time.Second,
		MaxSessions:   2,
	})
	defer shutdown()
	c0, c1 := dialPair(t, addr0, addr1)
	defer c0.Close()
	defer c1.Close()

	p := rng.NewPool(424)
	// ~2.4 MB request frame: well past bufShrinkCap.
	big := makeBatchJobs(t, p, 1, 600, 500, 1)[0]
	got, err := RequestMul(c0, c1, big.in0, big.in1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(big.want) {
		t.Fatalf("oversized request off by %v", got.MaxAbsDiff(big.want))
	}
	small := makeBatchJobs(t, p, 1, 4, 4, 4)[0]
	got, err = RequestMul(c0, c1, small.in0, small.in1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(small.want) {
		t.Fatalf("follow-up request off by %v", got.MaxAbsDiff(small.want))
	}
	if metrics.bufShrinks.Value() == before {
		t.Error("psml_buf_shrinks_total did not move: serving loop pinned its high-water scratch")
	}
}
