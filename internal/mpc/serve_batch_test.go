package mpc

import (
	"net"
	"sync"
	"testing"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// batchJob is one client's inputs plus its serial-path ground truth.
type batchJob struct {
	in0, in1 Shares
	want     *tensor.Matrix
}

// makeBatchJobs builds `clients` independent requests of one shared
// geometry, each with its serial reference result.
func makeBatchJobs(t *testing.T, p *rng.Pool, clients, m, k, n int) []batchJob {
	t.Helper()
	jobs := make([]batchJob, clients)
	for i := range jobs {
		a := p.NewUniform(m, k, -1, 1)
		b := p.NewUniform(k, n, -1, 1)
		t0, t1 := GenGemmTripletShares(p, m, k, n)
		a0, a1 := SplitRand(p, a)
		b0, b1 := SplitRand(p, b)
		jobs[i] = batchJob{in0: Shares{A: a0, B: b0, T: t0}, in1: Shares{A: a1, B: b1, T: t1}}
		jobs[i].want = serialReference(t, jobs[i].in0, jobs[i].in1)
	}
	return jobs
}

// TestBatchedBitIdentical is the tentpole's correctness drill: B clients
// of identical geometry fired concurrently through the batching scheduler
// produce results byte-identical to their own serial references, and the
// batch counters show the requests actually travelled the stacked path.
func TestBatchedBitIdentical(t *testing.T) {
	const clients = 6
	p := rng.NewPool(777)
	jobs := makeBatchJobs(t, p, clients, 24, 16, 20)

	batchesBefore := metrics.batches.Value()
	reqsBefore := metrics.batchRequests.Value()

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		MaxSessions:   clients,
		Batch: &BatchConfig{
			Window:   50 * time.Millisecond, // wide: collect all concurrent clients
			MaxBatch: clients,
			JoinWait: 2 * time.Second,
		},
	})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := range jobs {
		wg.Add(1)
		go func(j batchJob) {
			defer wg.Done()
			c0, c1 := dialPair(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			got, err := RequestMul(c0, c1, j.in0, j.in1)
			if err != nil {
				errs <- err
				return
			}
			if !got.Equal(j.want) {
				t.Errorf("batched result differs from serial reference by %v", got.MaxAbsDiff(j.want))
			}
		}(jobs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Both parties run in this process, so each counts its own side.
	if got := metrics.batchRequests.Value() - reqsBefore; got < clients {
		t.Errorf("psml_batch_requests_total moved by %d, want >= %d (requests bypassed the batch path)", got, clients)
	}
	if metrics.batches.Value() == batchesBefore {
		t.Error("psml_batch_batches_total did not move")
	}
}

// TestBatchedMixedShapes checks the per-shape collectors keep distinct
// geometries apart while batching within each: two shape groups fired
// together, every result exact.
func TestBatchedMixedShapes(t *testing.T) {
	p := rng.NewPool(778)
	jobsA := makeBatchJobs(t, p, 3, 24, 16, 20)
	jobsB := makeBatchJobs(t, p, 3, 10, 8, 6)
	jobs := append(append([]batchJob{}, jobsA...), jobsB...)

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   10 * time.Second,
		MaxSessions:   len(jobs),
		Batch: &BatchConfig{
			Window:   50 * time.Millisecond,
			JoinWait: 2 * time.Second,
		},
	})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		go func(j batchJob) {
			defer wg.Done()
			c0, c1 := dialPair(t, addr0, addr1)
			defer c0.Close()
			defer c1.Close()
			got, err := RequestMul(c0, c1, j.in0, j.in1)
			if err != nil {
				errs <- err
				return
			}
			if !got.Equal(j.want) {
				t.Errorf("mixed-shape batched result differs by %v", got.MaxAbsDiff(j.want))
			}
		}(jobs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchedSurvivesClientKill kills one client's party-1 connection
// before its upload gets through, so the leader proposes a member the
// follower never receives: the follower must drop exactly that member and
// the survivors' batched results must stay bit-identical, while the dead
// client's request fails instead of wedging anyone.
func TestBatchedSurvivesClientKill(t *testing.T) {
	const clients = 5 // index clients-1 is the victim
	p := rng.NewPool(779)
	jobs := makeBatchJobs(t, p, clients, 24, 16, 20)

	droppedBefore := metrics.batchDropped.Value()

	addr0, addr1, shutdown := startServePair(t, ServeConfig{
		ClientTimeout: 10 * time.Second,
		PeerTimeout:   2 * time.Second,
		MaxSessions:   clients,
		Batch: &BatchConfig{
			Window:   100 * time.Millisecond,
			MaxBatch: clients,
			JoinWait: 300 * time.Millisecond,
		},
	})
	defer shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := range jobs {
		wg.Add(1)
		go func(i int, j batchJob) {
			defer wg.Done()
			victim := i == clients-1
			c0, err := comm.DialRetry(addr0, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
			if err != nil {
				errs <- err
				return
			}
			defer c0.Close()
			var c1 *comm.Conn
			if victim {
				// The party-1 link dies before the first frame leaves: the
				// upload reaches party 0 only.
				raw, err := net.Dial("tcp", addr1)
				if err != nil {
					errs <- err
					return
				}
				fc := comm.NewFaultConn(raw)
				fc.DropAfterFrames(0)
				c1 = comm.Wrap(fc)
			} else {
				c1, err = comm.DialRetry(addr1, comm.RetryConfig{Attempts: 10, BaseDelay: 10 * time.Millisecond})
				if err != nil {
					errs <- err
					return
				}
			}
			defer c1.Close()
			c0.SetTimeouts(20*time.Second, 20*time.Second)
			c1.SetTimeouts(20*time.Second, 20*time.Second)
			got, err := RequestMul(c0, c1, j.in0, j.in1)
			if victim {
				if err == nil {
					t.Error("killed client's request succeeded, want error")
				}
				return
			}
			if err != nil {
				errs <- err
				return
			}
			if !got.Equal(j.want) {
				t.Errorf("survivor result differs from serial reference by %v", got.MaxAbsDiff(j.want))
			}
		}(i, jobs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The victim's half reached the leader, so the leader proposed it and
	// the follower must have dropped it (whether it shared the survivors'
	// batch or got its own proposal).
	if metrics.batchDropped.Value() == droppedBefore {
		t.Error("psml_batch_dropped_members_total did not move")
	}
}

// TestBatchCtlCodecRoundTrip pins the control frame format both parties
// must agree on, and that hostile frames fail cleanly.
func TestBatchCtlCodecRoundTrip(t *testing.T) {
	prop := batchProposal{
		id:        0xdeadbeefcafef00d,
		shape:     batchShape{m: 24, k: 16, n: 20},
		stackBand: 48,
		ids:       []uint64{1, 2, 3},
	}
	got, err := parseProposal(appendProposal(nil, prop))
	if err != nil {
		t.Fatal(err)
	}
	if got.id != prop.id || got.shape != prop.shape || got.stackBand != prop.stackBand || len(got.ids) != 3 || got.ids[2] != 3 {
		t.Fatalf("proposal round trip: %+v", got)
	}

	ack := batchAck{id: 7, ids: []uint64{2, 3}}
	gotAck, err := parseAck(appendAck(nil, ack))
	if err != nil {
		t.Fatal(err)
	}
	if gotAck.id != 7 || len(gotAck.ids) != 2 || gotAck.ids[0] != 2 {
		t.Fatalf("ack round trip: %+v", gotAck)
	}

	for _, bad := range [][]byte{
		nil,
		{batchCtlVersion},
		appendProposal(nil, prop)[:20],            // truncated
		append(appendAck(nil, ack), 0xff),         // trailing garbage
		{9, batchKindPropose, 0, 0, 0, 0, 0, 0},   // wrong version
		{batchCtlVersion, 7, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
	} {
		if _, err := parseProposal(bad); err == nil {
			t.Errorf("parseProposal accepted %x", bad)
		}
		if _, err := parseAck(bad); err == nil {
			t.Errorf("parseAck accepted %x", bad)
		}
	}
}
