package mpc

import (
	"sync"
	"time"

	"parsecureml/internal/hw"
)

// Planner is the runtime side of the paper's contribution 1: the offline
// profiling tables (hw.Platform's cost models) promoted to a live
// controller for the serving layer's cross-session batching. For each
// request shape it answers "dispatch now or hold for more tenants", and
// for a chosen batch it answers "how tall should the streamed bands be" —
// both as computed crossovers, not tuned constants.
//
// Two signal sources blend:
//
//   - The analytic model. hw.Platform.BatchWindow() is the fixed per-round
//     exchange overhead a merge recovers (the most a request should ever
//     wait on an idle link), and hw.Platform.BatchBandRows sizes the
//     stacked exchange's bands so compute hides transfer.
//
//   - Measurement. The serving stack's psml_phase_seconds{phase="exchange"}
//     histogram records what exchanges actually cost on this deployment;
//     its median minus the model's size-dependent transfer term estimates
//     the real fixed overhead, which on loaded or slow fabrics dwarfs the
//     2 µs the paper's InfiniBand tables predict. The planner takes the
//     larger of the two, clamped to [MinWindow, MaxWindow].
//
// Per-shape inter-arrival gaps (EWMA) gate the whole mechanism: when a
// shape's requests arrive much further apart than the largest window could
// bridge, waiting is pure loss and the planner dispatches immediately.
//
// A Planner is safe for concurrent use and is shared by both serving
// parties' batch schedulers.
//
// WireCodec (wirecodec.go) is the same model-plus-measurement pattern
// applied to the per-tensor encoding decision: hw.Platform.CodecWorthwhile
// is the analytic crossover, and a live bandwidth EWMA (ObserveLink)
// stands in for the exchange histogram.
type Planner struct {
	// HW is the analytic platform model. The zero value is not useful;
	// use NewPlanner or fill in hw.Paper().
	HW hw.Platform
	// MinWindow..MaxWindow clamp the computed batch window (ISSUE range:
	// 200µs–2ms). NewPlanner sets the defaults.
	MinWindow time.Duration
	MaxWindow time.Duration

	mu     sync.Mutex
	shapes map[batchShape]*shapeArrivals
}

// Planner defaults: the adaptive window's clamp range.
const (
	defaultMinWindow = 200 * time.Microsecond
	defaultMaxWindow = 2 * time.Millisecond
)

// gapDispatchFactor: a shape whose EWMA inter-arrival gap exceeds this
// multiple of the maximum window cannot plausibly collect a second member
// in time — dispatch immediately.
const gapDispatchFactor = 4

// ewmaAlpha weighs the newest inter-arrival gap; ~16-sample memory.
const ewmaAlpha = 1.0 / 16

// batchShape keys batchable work: only requests with identical GEMM
// geometry can row-stack.
type batchShape struct{ m, k, n int }

// shapeArrivals tracks one shape's request arrival process.
type shapeArrivals struct {
	last    time.Time
	ewmaGap float64 // seconds; 0 until two arrivals seen
}

// batchPlan is one shape's current batching decision.
type batchPlan struct {
	// window is how long the collector holds the first request of a batch
	// for more same-shape arrivals. 0 means dispatch immediately.
	window time.Duration
	// stackBand is the row-band height for streaming the stacked E matrix
	// of stackRows total rows (as passed to Plan via waiting×m); bands of
	// this height keep the fused GEMM pipelined behind the transfer.
	stackBand int
}

// NewPlanner returns a planner over the given platform model with the
// default window clamp.
func NewPlanner(p hw.Platform) *Planner {
	return &Planner{HW: p, MinWindow: defaultMinWindow, MaxWindow: defaultMaxWindow}
}

// Observe records one request arrival of the given shape. now is explicit
// so tests can replay arrival processes deterministically.
func (p *Planner) Observe(m, k, n int, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shapes == nil {
		p.shapes = make(map[batchShape]*shapeArrivals)
	}
	s := p.shapes[batchShape{m, k, n}]
	if s == nil {
		s = &shapeArrivals{}
		p.shapes[batchShape{m, k, n}] = s
	}
	if !s.last.IsZero() {
		gap := now.Sub(s.last).Seconds()
		if gap < 0 {
			gap = 0
		}
		if s.ewmaGap == 0 {
			s.ewmaGap = gap
		} else {
			s.ewmaGap += ewmaAlpha * (gap - s.ewmaGap)
		}
	}
	s.last = now
}

// gap returns the shape's EWMA inter-arrival gap in seconds (0 = unknown).
func (p *Planner) gap(m, k, n int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.shapes[batchShape{m, k, n}]; s != nil {
		return s.ewmaGap
	}
	return 0
}

// Plan returns the current batching decision for one m×k × k×n request
// shape with stackRows rows already committed to the forming batch.
func (p *Planner) Plan(m, k, n, stackRows int) batchPlan {
	minW, maxW := p.MinWindow, p.MaxWindow
	if minW <= 0 {
		minW = defaultMinWindow
	}
	if maxW < minW {
		maxW = minW
	}

	// Fixed exchange overhead: the analytic floor, raised by measurement
	// when this deployment's exchanges cost more than the model's fabric.
	fixed := p.HW.BatchWindow()
	if metrics.phaseExchange.Count() >= plannerMinSamples {
		measured := metrics.phaseExchange.Quantile(0.5).Seconds() - p.HW.ExchangeTransferTime(m, k, n)
		if measured > fixed {
			fixed = measured
		}
	}
	window := time.Duration(fixed * float64(time.Second))
	if window < minW {
		window = minW
	}
	if window > maxW {
		window = maxW
	}

	// Sparse arrivals: no second tenant will show up inside any window we
	// would tolerate — dispatch now.
	if g := p.gap(m, k, n); g > gapDispatchFactor*maxW.Seconds() {
		window = 0
	}

	band := p.HW.BatchBandRows(stackRows, k, n)
	if band < 1 {
		band = 1
	}
	return batchPlan{window: window, stackBand: band}
}

// plannerMinSamples gates the measured-overhead estimate: below this many
// recorded exchanges the histogram median is noise and the analytic model
// rules alone.
const plannerMinSamples = 32
