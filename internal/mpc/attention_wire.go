package mpc

import (
	"fmt"
	"math"

	"parsecureml/internal/comm"
	"parsecureml/internal/ml"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Wire-path transformer inference: the client (who owns both the model
// and the data, Fig. 1b) drives one multi-head attention block — plus an
// optional feed-forward stack — through the two-server serving stack.
// Every GEMM (Q/K/V projections, each head's QKᵀ score product and
// score·V context product, the output projection, the FF layers) is one
// RequestMul, so the traffic rides the session mux, the cross-session
// batcher, and the adaptive wire codecs unchanged. The softmax runs
// client-side on the recombined scores with ml.ApproxSoftmax — the same
// approximation (and DESIGN.md error contract) as the secure training
// path, but strictly less leaky than the server-side reveal: on the
// wire path no server ever sees scores or probabilities, only shares
// and masked E/F frames.
type WireTransformer struct {
	Heads  int
	Causal bool

	Wq, Wk, Wv, Wo *tensor.Matrix
	Bq, Bk, Bv, Bo *tensor.Matrix

	// Optional feed-forward stack with scaled residual (nil ⇒ attention
	// only).
	FF1W, FF1B, FF2W, FF2B *tensor.Matrix
	FF1Act                 ActivationKind
	FF1HasAct              bool
	HasFF                  bool

	pool *rng.Pool
	muls int
}

// NewWireAttention wraps a plaintext attention block for wire-path
// inference. seed drives every share split and triplet, so two runs with
// the same seed issue bit-identical requests.
func NewWireAttention(a *ml.Attention, seed uint64) *WireTransformer {
	return &WireTransformer{
		Heads: a.Heads, Causal: a.Causal,
		Wq: a.Wq, Wk: a.Wk, Wv: a.Wv, Wo: a.Wo,
		Bq: a.Bq, Bk: a.Bk, Bv: a.Bv, Bo: a.Bo,
		pool: rng.NewPool(seed),
	}
}

// NewWireTransformer wraps a full plaintext transformer block
// (attention + feed-forward) for wire-path inference.
func NewWireTransformer(b *ml.TransformerBlock, seed uint64) *WireTransformer {
	t := NewWireAttention(b.Att, seed)
	act, hasAct := wireActOf(b.FF1.Act)
	t.FF1W, t.FF1B, t.FF2W, t.FF2B = b.FF1.W, b.FF1.B, b.FF2.W, b.FF2.B
	t.FF1Act, t.FF1HasAct = act, hasAct
	t.HasFF = true
	return t
}

func wireActOf(a ml.Activation) (ActivationKind, bool) {
	switch a {
	case ml.ReLU:
		return ActReLU, true
	case ml.Sigmoid:
		return ActSigmoid, true
	case ml.SigmoidTaylor:
		return ActSigmoidTaylor, true
	default:
		return ActPiecewise, a == ml.Piecewise
	}
}

// Muls reports how many RequestMul round trips the last Infer issued.
func (t *WireTransformer) Muls() int { return t.muls }

// mul splits one product's inputs (serial pool draws keep runs
// bit-stable) and executes it as a RequestMul over both servers.
func (t *WireTransformer) mul(s0, s1 comm.Framer, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	a0, a1 := SplitRand(t.pool, a)
	b0, b1 := SplitRand(t.pool, b)
	tr0, tr1 := GenGemmTripletShares(t.pool, a.Rows, a.Cols, b.Cols)
	t.muls++
	return RequestMul(s0, s1, Shares{A: a0, B: b0, T: tr0}, Shares{A: a1, B: b1, T: tr1})
}

func (t *WireTransformer) proj(s0, s1 comm.Framer, x, w, b *tensor.Matrix) (*tensor.Matrix, error) {
	out, err := t.mul(s0, s1, x, w)
	if err != nil {
		return nil, err
	}
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c := range row {
			row[c] += b.Data[c]
		}
	}
	return out, nil
}

func wireSliceCols(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// Infer runs the block over a T×d token sequence through the server
// pair behind s0/s1 and returns the recombined output.
func (t *WireTransformer) Infer(s0, s1 comm.Framer, x *tensor.Matrix) (*tensor.Matrix, error) {
	d := t.Wq.Rows
	if x.Cols != d {
		return nil, fmt.Errorf("mpc: wire transformer input width %d, want %d", x.Cols, d)
	}
	if t.Heads <= 0 || d%t.Heads != 0 {
		return nil, fmt.Errorf("mpc: wire transformer width %d for %d heads", d, t.Heads)
	}
	t.muls = 0
	q, err := t.proj(s0, s1, x, t.Wq, t.Bq)
	if err != nil {
		return nil, fmt.Errorf("mpc: Q projection: %w", err)
	}
	k, err := t.proj(s0, s1, x, t.Wk, t.Bk)
	if err != nil {
		return nil, fmt.Errorf("mpc: K projection: %w", err)
	}
	v, err := t.proj(s0, s1, x, t.Wv, t.Bv)
	if err != nil {
		return nil, fmt.Errorf("mpc: V projection: %w", err)
	}
	dh := d / t.Heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	ctx := tensor.New(x.Rows, d)
	for h := 0; h < t.Heads; h++ {
		lo := h * dh
		qh := wireSliceCols(q, lo, lo+dh)
		kh := wireSliceCols(k, lo, lo+dh)
		vh := wireSliceCols(v, lo, lo+dh)
		s, err := t.mul(s0, s1, qh, kh.Transpose())
		if err != nil {
			return nil, fmt.Errorf("mpc: head %d scores: %w", h, err)
		}
		tensor.Scale(s, s, scale)
		p := tensor.New(s.Rows, s.Cols)
		ml.ApproxSoftmax(p, s, t.Causal)
		ch, err := t.mul(s0, s1, p, vh)
		if err != nil {
			return nil, fmt.Errorf("mpc: head %d context: %w", h, err)
		}
		for r := 0; r < ch.Rows; r++ {
			copy(ctx.Row(r)[lo:lo+dh], ch.Row(r))
		}
	}
	out, err := t.proj(s0, s1, ctx, t.Wo, t.Bo)
	if err != nil {
		return nil, fmt.Errorf("mpc: output projection: %w", err)
	}
	y := tensor.New(x.Rows, d)
	tensor.Add(y, x, out)
	tensor.Scale(y, y, ml.ResidualScale)
	if !t.HasFF {
		return y, nil
	}
	h1, err := t.proj(s0, s1, y, t.FF1W, t.FF1B)
	if err != nil {
		return nil, fmt.Errorf("mpc: FF1: %w", err)
	}
	if t.FF1HasAct {
		tensor.Apply(h1, h1, t.FF1Act.Apply)
	}
	h2, err := t.proj(s0, s1, h1, t.FF2W, t.FF2B)
	if err != nil {
		return nil, fmt.Errorf("mpc: FF2: %w", err)
	}
	outF := tensor.New(y.Rows, y.Cols)
	tensor.Add(outF, y, h2)
	tensor.Scale(outF, outF, ml.ResidualScale)
	return outF, nil
}
