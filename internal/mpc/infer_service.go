package mpc

import (
	"encoding/binary"
	"fmt"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Wire inference service: a model owner splits an MLP's weights to two
// psml-server-style parties once; afterwards any number of input batches
// flow through as shares and come back as prediction shares. Layers are
// evaluated with the Beaver protocol between the two parties; activations
// use the reveal-and-reshare protocol over the same peer link. This is
// the cloud-inference scenario of Fig. 1b made concrete end to end.
//
// Session wire format (client -> server i):
//
//	frame 0: u32 layerCount, then per layer: u32 actKind,
//	         W_i, B_i, U_i, V_i, Z_i (tensor codec)
//	frame 1..: one input-share matrix per request; server replies with one
//	         prediction-share matrix. Client closing ends the session.
//
// The per-layer triplet (U_i, V_i, Z_i) is sized for the session's fixed
// batch geometry and reused across requests, matching the framework's
// site semantics.

// InferLayer is one dense layer's per-party session material.
type InferLayer struct {
	Act    ActivationKind
	HasAct bool
	W, B   *tensor.Matrix
	T      TripletShares
}

// EncodeInferSession serializes the session-setup frame for one party.
func EncodeInferSession(layers []InferLayer) []byte {
	size := 4
	for _, l := range layers {
		size += 4 + tensor.EncodedSize(l.W) + tensor.EncodedSize(l.B) +
			tensor.EncodedSize(l.T.U) + tensor.EncodedSize(l.T.V) + tensor.EncodedSize(l.T.Z)
	}
	frame := binary.LittleEndian.AppendUint32(make([]byte, 0, size), uint32(len(layers)))
	for _, l := range layers {
		act := uint32(l.Act)
		if !l.HasAct {
			act = 0xffffffff
		}
		frame = binary.LittleEndian.AppendUint32(frame, act)
		frame = tensor.EncodeMatrix(frame, l.W)
		frame = tensor.EncodeMatrix(frame, l.B)
		frame = tensor.EncodeMatrix(frame, l.T.U)
		frame = tensor.EncodeMatrix(frame, l.T.V)
		frame = tensor.EncodeMatrix(frame, l.T.Z)
	}
	return frame
}

// DecodeInferSession parses a session-setup frame.
func DecodeInferSession(frame []byte) ([]InferLayer, error) {
	if len(frame) < 4 {
		return nil, fmt.Errorf("mpc: session frame too short")
	}
	count := int(binary.LittleEndian.Uint32(frame))
	if count < 1 || count > 1024 {
		return nil, fmt.Errorf("mpc: session layer count %d", count)
	}
	off := 4
	layers := make([]InferLayer, count)
	for i := range layers {
		if len(frame) < off+4 {
			return nil, fmt.Errorf("mpc: session frame truncated at layer %d", i)
		}
		act := binary.LittleEndian.Uint32(frame[off:])
		off += 4
		layers[i].HasAct = act != 0xffffffff
		if layers[i].HasAct {
			layers[i].Act = ActivationKind(act)
		}
		mats := make([]*tensor.Matrix, 5)
		for j := range mats {
			m, n, err := tensor.DecodeMatrix(frame[off:])
			if err != nil {
				return nil, fmt.Errorf("mpc: session layer %d matrix %d: %w", i, j, err)
			}
			mats[j] = m
			off += n
		}
		layers[i].W, layers[i].B = mats[0], mats[1]
		layers[i].T = TripletShares{U: mats[2], V: mats[3], Z: mats[4]}
	}
	if off != len(frame) {
		return nil, fmt.Errorf("mpc: session frame has trailing bytes")
	}
	return layers, nil
}

// remoteActivation runs the reveal-based activation between the two
// parties over their peer link: exchange pre-activation shares (fixed
// order), evaluate f on the reconstruction, re-share with party 0's mask.
func remoteActivation(party int, peer *comm.Conn, kind ActivationKind, yi *tensor.Matrix, mask *tensor.Matrix) (*tensor.Matrix, error) {
	exchT0 := time.Now()
	frame := tensor.EncodeMatrix(make([]byte, 0, tensor.EncodedSize(yi)), yi)
	var peerFrame []byte
	var err error
	if party == 0 {
		if err = peer.WriteFrame(frame); err != nil {
			return nil, err
		}
		if peerFrame, err = peer.ReadFrame(); err != nil {
			return nil, err
		}
	} else {
		if peerFrame, err = peer.ReadFrame(); err != nil {
			return nil, err
		}
		if err = peer.WriteFrame(frame); err != nil {
			return nil, err
		}
	}
	metrics.phaseExchange.ObserveSince(exchT0)
	peerY, _, err := tensor.DecodeMatrix(peerFrame)
	if err != nil {
		return nil, err
	}
	reconT0 := time.Now()
	y := tensor.AddTo(yi, peerY)
	fy := tensor.New(y.Rows, y.Cols)
	tensor.Apply(fy, y, kind.Apply)
	metrics.phaseReconstruct.ObserveSince(reconT0)
	if party == 0 {
		// share = f(y) − R; ship R to party 1.
		share := tensor.SubTo(fy, mask)
		if err := peer.WriteFrame(tensor.EncodeMatrix(make([]byte, 0, tensor.EncodedSize(mask)), mask)); err != nil {
			return nil, err
		}
		return share, nil
	}
	rFrame, err := peer.ReadFrame()
	if err != nil {
		return nil, err
	}
	r, _, err := tensor.DecodeMatrix(rFrame)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// ServeInference handles one inference session on the client connection:
// read the session frame, then answer input-share requests until the
// client disconnects. maskSeed derives party 0's activation re-sharing
// masks (party 1's value is unused).
func ServeInference(party int, client, peer *comm.Conn, maskPool interface {
	NewUniform(rows, cols int, lo, hi float32) *tensor.Matrix
}) error {
	setup, err := client.ReadFrame()
	if err != nil {
		return err
	}
	layers, err := DecodeInferSession(setup)
	if err != nil {
		return err
	}
	for {
		req, err := client.ReadFrame()
		if err != nil {
			return err // EOF-family: session over (caller classifies)
		}
		x, _, err := tensor.DecodeMatrix(req)
		if err != nil {
			return err
		}
		for _, l := range layers {
			in := Shares{A: x, B: l.W, T: l.T}
			y, err := RemoteParty(party, peer, in)
			if err != nil {
				return err
			}
			// Bias: share-local row broadcast.
			for r := 0; r < y.Rows; r++ {
				row := y.Row(r)
				for c := range row {
					row[c] += l.B.Data[c]
				}
			}
			if l.HasAct {
				var mask *tensor.Matrix
				if party == 0 {
					mask = maskPool.NewUniform(y.Rows, y.Cols, -ShareRange, ShareRange)
				}
				y, err = remoteActivation(party, peer, l.Act, y, mask)
				if err != nil {
					return err
				}
			}
			x = y
		}
		if err := client.WriteFrame(tensor.EncodeMatrix(make([]byte, 0, tensor.EncodedSize(x)), x)); err != nil {
			return err
		}
	}
}

// BuildInferSession prepares both parties' session material from a
// plaintext MLP described as (W, B, act) dense layers, for a fixed batch
// size. The client-side counterpart of ServeInference.
func BuildInferSession(c *Client, batch int, weights []*tensor.Matrix, biases []*tensor.Matrix,
	acts []ActivationKind, hasActs []bool) (p0, p1 []InferLayer) {

	p0 = make([]InferLayer, len(weights))
	p1 = make([]InferLayer, len(weights))
	for i, w := range weights {
		w0, w1, _ := c.Split(w)
		b0, b1, _ := c.Split(biases[i])
		t0, t1, _ := c.GenGemmTriplet(batch, w.Rows, w.Cols, false)
		p0[i] = InferLayer{Act: acts[i], HasAct: hasActs[i], W: w0, B: b0, T: t0}
		p1[i] = InferLayer{Act: acts[i], HasAct: hasActs[i], W: w1, B: b1, T: t1}
	}
	return p0, p1
}

// RequestInference sends one input's shares to both serving parties and
// merges the returned prediction shares.
func RequestInference(s0, s1 *comm.Conn, x0, x1 *tensor.Matrix) (*tensor.Matrix, error) {
	if err := s0.WriteFrame(tensor.EncodeMatrix(make([]byte, 0, tensor.EncodedSize(x0)), x0)); err != nil {
		return nil, err
	}
	if err := s1.WriteFrame(tensor.EncodeMatrix(make([]byte, 0, tensor.EncodedSize(x1)), x1)); err != nil {
		return nil, err
	}
	f0, err := s0.ReadFrame()
	if err != nil {
		return nil, err
	}
	f1, err := s1.ReadFrame()
	if err != nil {
		return nil, err
	}
	p0, _, err := tensor.DecodeMatrix(f0)
	if err != nil {
		return nil, err
	}
	p1, _, err := tensor.DecodeMatrix(f1)
	if err != nil {
		return nil, err
	}
	return tensor.AddTo(p0, p1), nil
}
