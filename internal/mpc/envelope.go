package mpc

import (
	"encoding/binary"
	"fmt"
	"time"

	"parsecureml/internal/hw"
)

// Request envelopes: optional fixed-size extensions riding between the
// 8-byte request id and the shares payload, so deadline metadata crosses
// every hop (client → router → replica) inside the one frame the hops
// already relay. Both are distinguished from legacy frames by a 4-byte
// magic at offset 8 — legacy payloads start with a tensor codec tag
// ('D'/'H'/'S'), which no magic's leading byte collides with, so old
// clients and new servers interoperate in both directions.
//
//	deadline: [id u64] "PSDL" [budget-micros u32] [shares...]
//	error:    [id u64] "PSER" [code u32] [retry-after-micros u32]
//
// The budget is RELATIVE (time remaining), not an absolute deadline:
// hops subtract their own elapsed time before forwarding, so the scheme
// needs no clock synchronization between client, router, and replicas.

const (
	deadlineMagic  = 0x5053444C // "PSDL"
	routeErrMagic  = 0x50534552 // "PSER"
	envelopeBytes  = 8          // magic + one u32, either envelope kind
	routeErrFrameB = requestIDBytes + envelopeBytes + 4
)

// RouteErrorCode classifies a typed protocol error frame.
type RouteErrorCode uint32

const (
	// RouteNoReplicas: the router's registry is empty (or fully draining);
	// retryable once capacity joins.
	RouteNoReplicas RouteErrorCode = 1
	// RouteRetriesExhausted: every relay attempt in the router's ladder
	// failed; retryable — the next attempt re-picks on a refreshed ring.
	RouteRetriesExhausted RouteErrorCode = 2
	// RouteDeadlineExceeded: the request's remaining budget cannot cover
	// the cost-model estimate for its shape; not retryable within the
	// same budget.
	RouteDeadlineExceeded RouteErrorCode = 3
	// RouteDraining: the replica is draining and accepts no new work;
	// retryable against a re-picked replica.
	RouteDraining RouteErrorCode = 4
)

func (c RouteErrorCode) String() string {
	switch c {
	case RouteNoReplicas:
		return "no_replicas"
	case RouteRetriesExhausted:
		return "retries_exhausted"
	case RouteDeadlineExceeded:
		return "deadline_exceeded"
	case RouteDraining:
		return "draining"
	}
	return fmt.Sprintf("code_%d", uint32(c))
}

// RouteError is the decoded form of a typed error frame: a failure the
// serving fleet reports to the client in-band instead of closing the
// connection. Retryable errors carry a hint for when to try again.
type RouteError struct {
	Code       RouteErrorCode
	RetryAfter time.Duration
}

func (e *RouteError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("mpc: route error %s (retry after %v)", e.Code, e.RetryAfter)
	}
	return fmt.Sprintf("mpc: route error %s", e.Code)
}

// Retryable reports whether the same request may succeed if re-sent —
// the fleet-side condition was transient (capacity, placement), not a
// property of the request itself.
func (e *RouteError) Retryable() bool {
	switch e.Code {
	case RouteNoReplicas, RouteRetriesExhausted, RouteDraining:
		return true
	}
	return false
}

// budgetMicros clamps a duration into the envelope's u32 microsecond
// field: sub-microsecond remainders round to zero (already expired for
// scheduling purposes) and anything over ~71 minutes saturates.
func budgetMicros(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	us := d / time.Microsecond
	if us > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(us)
}

// EncodeRequestBudget is EncodeRequest with a deadline envelope: the
// request carries its remaining time budget, which each hop decrements
// and checks against the cost model before doing work.
func EncodeRequestBudget(id uint64, budget time.Duration, in Shares) []byte {
	frame := make([]byte, 0, requestIDBytes+envelopeBytes+sharesSize(in))
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint32(frame, deadlineMagic)
	frame = binary.LittleEndian.AppendUint32(frame, budgetMicros(budget))
	return appendShares(frame, in)
}

// PeekBudget reads a request frame's deadline envelope without decoding
// the payload. ok is false on legacy frames (no envelope).
func PeekBudget(frame []byte) (budget time.Duration, ok bool) {
	if len(frame) < requestIDBytes+envelopeBytes ||
		binary.LittleEndian.Uint32(frame[requestIDBytes:]) != deadlineMagic {
		return 0, false
	}
	us := binary.LittleEndian.Uint32(frame[requestIDBytes+4:])
	return time.Duration(us) * time.Microsecond, true
}

// SetBudget rewrites the deadline envelope's budget in place — the relay
// hop's "subtract my elapsed time" step, touching none of the payload.
// Reports false if the frame carries no envelope.
func SetBudget(frame []byte, budget time.Duration) bool {
	if len(frame) < requestIDBytes+envelopeBytes ||
		binary.LittleEndian.Uint32(frame[requestIDBytes:]) != deadlineMagic {
		return false
	}
	binary.LittleEndian.PutUint32(frame[requestIDBytes+4:], budgetMicros(budget))
	return true
}

// stripEnvelope returns the shares payload of a request frame, skipping
// a deadline envelope when present. Frames too short to carry an id
// yield an empty payload rather than a panic.
func stripEnvelope(frame []byte) []byte {
	if len(frame) < requestIDBytes {
		return nil
	}
	if len(frame) >= requestIDBytes+envelopeBytes &&
		binary.LittleEndian.Uint32(frame[requestIDBytes:]) == deadlineMagic {
		return frame[requestIDBytes+envelopeBytes:]
	}
	return frame[requestIDBytes:]
}

// PeekRequestShape reads the multiplication geometry (m, k, n) off a
// request frame from the matrix headers alone — no payload decode, so a
// router can run the cost model on frames it only relays. ok is false
// when the frame is too short or not a dense/FP16 request.
func PeekRequestShape(frame []byte) (m, k, n int, ok bool) {
	p := stripEnvelope(frame)
	rows, cols, size, ok := peekMatrixHeader(p)
	if !ok {
		return 0, 0, 0, false
	}
	m, k = rows, cols
	if size > len(p) {
		return 0, 0, 0, false
	}
	brows, bcols, _, ok := peekMatrixHeader(p[size:])
	if !ok || brows != k {
		return 0, 0, 0, false
	}
	return m, k, bcols, true
}

// peekMatrixHeader reads one encoded matrix's geometry and total wire
// size without touching its element data.
func peekMatrixHeader(p []byte) (rows, cols, size int, ok bool) {
	if len(p) < 9 {
		return 0, 0, 0, false
	}
	rows = int(binary.LittleEndian.Uint32(p[1:]))
	cols = int(binary.LittleEndian.Uint32(p[5:]))
	if rows <= 0 || cols <= 0 {
		return 0, 0, 0, false
	}
	switch p[0] {
	case 'D':
		size = 9 + 4*rows*cols
	case 'H':
		size = 9 + 2*rows*cols
	default:
		return 0, 0, 0, false
	}
	return rows, cols, size, true
}

// DeadlineEstimate is the floor a request's remaining budget must cover
// for shape (m, k, n): the paper platform's online-phase exchange model —
// transfer time for the E/F volume plus the fixed per-exchange latency of
// the two peer rounds. Deliberately optimistic (it prices only the
// irreducible exchange, not compute or queueing): a budget below it
// CANNOT be met, so shedding on it never drops a request that had a
// chance, while expired work is refused before it occupies a replica.
func DeadlineEstimate(m, k, n int) time.Duration {
	p := hw.Paper()
	secs := p.ExchangeTransferTime(m, k, n) + p.ExchangeFixedCost(2)
	return time.Duration(secs * float64(time.Second))
}

// EncodeRouteError builds a typed error frame for request id: the
// in-band alternative to closing the client connection, so one failed
// placement does not kill a session with other requests in flight.
func EncodeRouteError(id uint64, code RouteErrorCode, retryAfter time.Duration) []byte {
	frame := make([]byte, 0, routeErrFrameB)
	frame = binary.LittleEndian.AppendUint64(frame, id)
	frame = binary.LittleEndian.AppendUint32(frame, routeErrMagic)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(code))
	return binary.LittleEndian.AppendUint32(frame, budgetMicros(retryAfter))
}

// DecodeRouteError recognizes a typed error frame. ok is false for any
// other frame (a result, a legacy payload); the id is only meaningful
// when ok.
func DecodeRouteError(frame []byte) (id uint64, e *RouteError, ok bool) {
	if len(frame) != routeErrFrameB ||
		binary.LittleEndian.Uint32(frame[requestIDBytes:]) != routeErrMagic {
		return 0, nil, false
	}
	id = binary.LittleEndian.Uint64(frame)
	us := binary.LittleEndian.Uint32(frame[requestIDBytes+8:])
	return id, &RouteError{
		Code:       RouteErrorCode(binary.LittleEndian.Uint32(frame[requestIDBytes+4:])),
		RetryAfter: time.Duration(us) * time.Microsecond,
	}, true
}
