package mpc

import (
	"fmt"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// Server is one of the two computation parties. Both servers of a
// deployment are simulated in one process and driven deterministically by
// an orchestrator; the links between them are metered simtime resources
// carrying real encoded frames.
type Server struct {
	*Node
	Party int // 0 or 1

	out  *comm.Link // this server -> peer
	peer *Server

	// Per-stream compressed channels (§4.4). Streams are keyed so each
	// (layer, operand) pair tracks its own epoch-over-epoch delta.
	senders   map[string]*comm.DeltaSender
	receivers map[string]*comm.DeltaReceiver

	// Compress toggles the §4.4 compressed transmission (Fig. 16).
	Compress bool
	// PipelineTransfers toggles the Fig. 5 H2D/compute overlap.
	PipelineTransfers bool
	// DrySparsity is the assumed E/F delta sparsity for dry-run scheduling
	// (tensor compute off); see comm.DeltaSender.DrySparsity.
	DrySparsity float64
}

// NewServerPair creates two wired servers on eng. withGPU attaches one
// simulated V100 per server (the paper's platform).
func NewServerPair(n0, n1 *Node) (*Server, *Server) {
	s0 := &Server{
		Node:      n0,
		Party:     0,
		senders:   make(map[string]*comm.DeltaSender),
		receivers: make(map[string]*comm.DeltaReceiver),
		Compress:  true, PipelineTransfers: true,
	}
	s1 := &Server{
		Node:      n1,
		Party:     1,
		senders:   make(map[string]*comm.DeltaSender),
		receivers: make(map[string]*comm.DeltaReceiver),
		Compress:  true, PipelineTransfers: true,
	}
	s0.out = comm.NewLink("net."+n0.Name+"->"+n1.Name, n0.Platform.Net, n0.Eng)
	s1.out = comm.NewLink("net."+n1.Name+"->"+n0.Name, n1.Platform.Net, n1.Eng)
	s0.peer, s1.peer = s1, s0
	return s0, s1
}

// Link returns this server's outgoing link (for traffic accounting).
func (s *Server) Link() *comm.Link { return s.out }

func (s *Server) sender(stream string) *comm.DeltaSender {
	ds, ok := s.senders[stream]
	if !ok {
		ds = comm.NewDeltaSender(s.out)
		s.senders[stream] = ds
	}
	ds.Enabled = s.Compress
	ds.DrySparsity = s.DrySparsity
	return ds
}

func (s *Server) receiver(stream string) *comm.DeltaReceiver {
	dr, ok := s.receivers[stream]
	if !ok {
		dr = &comm.DeltaReceiver{}
		s.receivers[stream] = dr
	}
	return dr
}

// ResetStreams rebases every compressed delta stream: each sender's next
// Send ships a dense base frame and each receiver discards its
// accumulated state. Delta values are fp32-history-dependent, so this is
// the bit-determinism barrier a checkpoint needs — a restored run and
// the run that wrote the checkpoint diverge unless both rebase here.
func (s *Server) ResetStreams() {
	for _, ds := range s.senders {
		ds.Reset()
	}
	for _, dr := range s.receivers {
		dr.Reset()
	}
}

// sendShare transmits a masked share to the peer over the stream's
// compressed channel; the peer decodes immediately (deterministic
// simulation). Returns the reconstructed-by-peer matrix and the arrival
// task.
func (s *Server) sendShare(stream string, m *tensor.Matrix, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	frame, task, _ := s.sender(stream).Send(m, deps...)
	if frame == nil { // dry run: transfer charged, values not materialized
		return tensor.New(m.Rows, m.Cols), task
	}
	got, err := s.peer.receiver(stream).Receive(frame)
	if err != nil {
		panic(fmt.Sprintf("mpc: peer decode on stream %s: %v", stream, err))
	}
	return got, task
}

// EF is the reconstructed public pair E = A−U, F = B−V one server holds
// after the reconstruct phase, with the task that produced it.
type EF struct {
	E, F *tensor.Matrix
	Done *simtime.Task
}

// reconstructHalf reconstructs one public mask (E = X−U across both
// parties) from per-party shares x_i and mask shares u_i: local subtract
// (Eq. 4), compressed exchange, local sum (Eq. 5). Returns the public
// value as held by each server plus per-server completion tasks.
func reconstructHalf(stream string, s0, s1 *Server, x0, u0, x1, u1 *tensor.Matrix,
	dep0, dep1 *simtime.Task) (at0, at1 *tensor.Matrix, t0, t1 *simtime.Task) {

	h0 := tensor.SubTo(x0, u0)
	h1 := tensor.SubTo(x1, u1)
	c0 := s0.ElemTask("reconstruct.local", 3*h0.Bytes(), dep0)
	c1 := s1.ElemTask("reconstruct.local", 3*h1.Bytes(), dep1)

	h0atPeer, tx0 := s0.sendShare(stream, h0, c0)
	h1atPeer, tx1 := s1.sendShare(stream, h1, c1)

	at0 = tensor.AddTo(h0, h1atPeer)
	at1 = tensor.AddTo(h1, h0atPeer)
	t0 = s0.ElemTask("reconstruct.sum", 3*at0.Bytes(), c0, tx1)
	t1 = s1.ElemTask("reconstruct.sum", 3*at1.Bytes(), c1, tx0)
	return at0, at1, t0, t1
}

// ReconstructEF runs the paper's "reconstruct" step for one triplet
// multiplication on both servers: each computes E_i = A_i−U_i and
// F_i = B_i−V_i on its CPU (Eq. 4), ships them to the peer over the
// compressed channels (Eq. 5 exchange), and sums to the public E and F.
// stream names the multiplication so epoch-over-epoch deltas compress.
//
// The E and F halves carry independent dependencies (depA vs depB): this
// is the hook for the paper's second pipeline (Fig. 6) — in the backward
// pass F (from the weights) is reconstructible as soon as the forward
// pass ends, while E (from the incoming delta) must wait for the deeper
// layer's GPU operation. Callers wanting the serial (non-pipelined)
// schedule pass the same joined dependency for both halves.
func ReconstructEF(stream string, s0, s1 *Server, in0, in1 Shares,
	depA0, depB0, depA1, depB1 *simtime.Task) (EF, EF) {

	e0, e1, te0, te1 := reconstructHalf(stream+".E", s0, s1, in0.A, in0.T.U, in1.A, in1.T.U, depA0, depA1)
	f0, f1, tf0, tf1 := reconstructHalf(stream+".F", s0, s1, in0.B, in0.T.V, in1.B, in1.T.V, depB0, depB1)

	return EF{E: e0, F: f0, Done: s0.Eng.After(te0, tf0)},
		EF{E: e1, F: f1, Done: s1.Eng.After(te1, tf1)}
}

// Reveal jointly reconstructs a shared value on both servers (one
// exchange + local sum). Used where the protocol deliberately publishes a
// quantity — activation inputs, SVM margins — mirroring the released
// implementation (DESIGN.md documents the leak).
func Reveal(stream string, s0, s1 *Server, x0, x1 *tensor.Matrix, dep0, dep1 *simtime.Task) (*tensor.Matrix, *simtime.Task, *simtime.Task) {
	x0atPeer, tx0 := s0.sendShare(stream, x0, dep0)
	x1atPeer, tx1 := s1.sendShare(stream, x1, dep1)
	pub := tensor.AddTo(x0, x1atPeer)
	pubAt1 := tensor.AddTo(x1, x0atPeer)
	t0 := s0.ElemTask("reveal.sum", 3*pub.Bytes(), dep0, tx1)
	t1 := s1.ElemTask("reveal.sum", 3*pubAt1.Bytes(), dep1, tx0)
	_ = pubAt1 // identical to pub; both servers hold it
	return pub, t0, t1
}

// Reshare refreshes a shared value's randomness: server 0 draws a fresh
// mask R, keeps R as its new share, and sends x0−R to server 1, which
// folds it into its share. The reconstruction is unchanged and the message
// is uniform given R.
//
// In the float domain this is load-bearing for *training*: a Beaver
// multiplication's output shares have magnitude ~√k·(mask·operand) even
// when the product itself is small, and without refreshing they compound
// into the persistent weight shares epoch over epoch until FP32 overflows
// (the ring domain in internal/fixed wraps exactly and does not need
// this). The secure layers therefore reshare every multiplication output;
// the cost (mask generation + one transfer) is charged here.
func Reshare(stream string, s0, s1 *Server, mask *rng.Pool, x0, x1 *tensor.Matrix,
	dep0, dep1 *simtime.Task) (nx0, nx1 *tensor.Matrix, t0, t1 *simtime.Task) {

	r := mask.NewUniform(x0.Rows, x0.Cols, -ShareRange, ShareRange)
	diff := tensor.SubTo(x0, r)
	tGen := s0.RandTask("reshare.mask", x0.Rows*x0.Cols, dep0)
	tGen = s0.ElemTask("reshare.sub", 3*x0.Bytes(), tGen)

	var tSend *simtime.Task
	var diffAt1 *tensor.Matrix
	if tensor.ComputeEnabled() {
		frame := tensor.EncodeMatrix(nil, diff)
		tSend = s0.out.SendRaw(frame, tGen)
		var err error
		diffAt1, _, err = tensor.DecodeMatrix(frame)
		must(err)
	} else {
		tSend = s0.out.SendSized("reshare", tensor.EncodedSizeDense(x0.Rows, x0.Cols), tGen)
		diffAt1 = tensor.New(x0.Rows, x0.Cols)
	}
	nx1 = tensor.AddTo(x1, diffAt1)
	t1 = s1.ElemTask("reshare.add", 3*x1.Bytes(), dep1, tSend)
	return r, nx1, tGen, t1
}

// OnlineMulGPU executes the online GPU operation for this server's share
// of C = A×B in the fused Eq. (8) form:
//
//	C_i = [(−i)·E+A_i | E] × [F ; B_i] + Z_i
//	    = ((−i)·E+A_i)×F + E×B_i + Z_i
//
// i.e. one element-wise merge and two GEMMs. With PipelineTransfers the
// H2D copies of F, B_i and Z_i overlap earlier kernels (Fig. 5); without
// it every kernel waits for all transfers.
func (s *Server) OnlineMulGPU(ef EF, in Shares, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	if s.Dev == nil {
		panic("mpc: OnlineMulGPU on a CPU-only server")
	}
	if len(s.Devs) > 1 {
		return s.onlineMulMultiGPU(ef, in, deps...)
	}
	d := s.Dev
	// Working set: E, A, D (m×k each), F, B (k×n each), Z, C (m×n each).
	m, k, n := in.A.Rows, in.A.Cols, in.B.Cols
	need := int64(4 * (3*m*k + 2*k*n + 2*m*n))
	if d.MemUsed()+need > DefaultGPUMemBudget(d) {
		return s.onlineMulGPUChunked(ef, in, deps...)
	}
	pre := append([]*simtime.Task{ef.Done}, deps...)

	dE, tE, err := d.H2D(ef.E, pre...)
	must(err)
	dA, tA, err := d.H2D(in.A, pre...)
	must(err)
	dF, tF, err := d.H2D(ef.F, pre...)
	must(err)
	dB, tB, err := d.H2D(in.B, pre...)
	must(err)
	dZ, tZ, err := d.H2D(in.T.Z, pre...)
	must(err)

	// D = (−i)·E + A_i. For party 0 the scale is 0·E, i.e. D = A_i: the
	// kernel is still issued (the released code does the same) but is a
	// cheap element-wise pass either way.
	dD := d.MustAlloc(in.A.Rows, in.A.Cols)
	var tD *simtime.Task
	if s.Party == 1 {
		d.Scale(dD, dE, -1, tE)
		tD = d.AXPY(dD, 1, dA, tA)
	} else {
		tD = d.Scale(dD, dA, 1, tA) // (−0)·E + A_i = A_i (device copy)
	}

	var barrier *simtime.Task
	if !s.PipelineTransfers {
		// Serial mode: the first GEMM waits for every transfer.
		barrier = s.Eng.After(tE, tA, tF, tB, tZ)
	}

	dC := d.MustAlloc(in.A.Rows, in.B.Cols)
	g1 := d.Gemm(dC, dD, dF, tD, tF, barrier) // D×F
	g2 := d.GemmAcc(dC, dE, dB, g1, tB)       // += E×B_i
	g3 := d.AXPY(dC, 1, dZ, g2, tZ)           // += Z_i
	host, tOut := d.D2H(dC, g3)

	d.Free(dE)
	d.Free(dA)
	d.Free(dF)
	d.Free(dB)
	d.Free(dZ)
	d.Free(dD)
	d.Free(dC)
	return host, tOut
}

// OnlineMulCPU is the CPU fallback for the same computation — used by the
// adaptive engine for workloads too small to pay the PCIe tax, and by the
// SecureML baseline.
func (s *Server) OnlineMulCPU(ef EF, in Shares, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	m, k, n := in.A.Rows, in.A.Cols, in.B.Cols
	d := in.A.Clone()
	if s.Party == 1 {
		tensor.AXPY(d, -1, ef.E)
	}
	c := tensor.MulTo(d, ef.F)
	eb := tensor.MulTo(ef.E, in.B)
	tensor.Add(c, c, eb)
	tensor.Add(c, c, in.T.Z)

	pre := append([]*simtime.Task{ef.Done}, deps...)
	t := s.ElemTask("online.D", 3*d.Bytes(), pre...)
	t = s.GemmTask("online.DF", m, k, n, t)
	t = s.GemmTask("online.EBi", m, k, n, t)
	t = s.ElemTask("online.accZ", 3*3*c.Bytes(), t)
	return c, t
}

// OnlineHadamardGPU executes the element-wise (point-to-point) online
// operation used by the paper's CNN (§7.2): with ⊙ for Hadamard,
// C_i = (−i)·E⊙F + A_i⊙F + E⊙B_i + Z_i.
func (s *Server) OnlineHadamardGPU(ef EF, in Shares, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	if s.Dev == nil {
		panic("mpc: OnlineHadamardGPU on a CPU-only server")
	}
	d := s.Dev
	pre := append([]*simtime.Task{ef.Done}, deps...)

	dE, tE, err := d.H2D(ef.E, pre...)
	must(err)
	dA, tA, err := d.H2D(in.A, pre...)
	must(err)
	dF, tF, err := d.H2D(ef.F, pre...)
	must(err)
	dB, tB, err := d.H2D(in.B, pre...)
	must(err)
	dZ, tZ, err := d.H2D(in.T.Z, pre...)
	must(err)

	var barrier *simtime.Task
	if !s.PipelineTransfers {
		barrier = s.Eng.After(tE, tA, tF, tB, tZ)
	}

	dD := d.MustAlloc(in.A.Rows, in.A.Cols)
	var tD *simtime.Task
	if s.Party == 1 {
		d.Scale(dD, dE, -1, tE, barrier)
		tD = d.AXPY(dD, 1, dA, tA)
	} else {
		tD = d.Scale(dD, dA, 1, tA, barrier)
	}
	dC := d.MustAlloc(in.A.Rows, in.A.Cols)
	k1 := d.Hadamard(dC, dD, dF, tD, tF)
	dT := d.MustAlloc(in.A.Rows, in.A.Cols)
	k2 := d.Hadamard(dT, dE, dB, tB, k1)
	k3 := d.AXPY(dC, 1, dT, k2)
	k4 := d.AXPY(dC, 1, dZ, k3, tZ)
	host, tOut := d.D2H(dC, k4)

	d.Free(dE)
	d.Free(dA)
	d.Free(dF)
	d.Free(dB)
	d.Free(dZ)
	d.Free(dD)
	d.Free(dC)
	d.Free(dT)
	return host, tOut
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
