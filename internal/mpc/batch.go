package mpc

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsecureml/internal/comm"
	"parsecureml/internal/tensor"
)

// Cross-session request batching: the serving-side half of the paper's
// contribution 1. N concurrent tenants issuing same-geometry multiplications
// each pay a full Beaver exchange — 2 mux frames per direction of fixed
// per-round overhead — while the GEMMs themselves are small. A per-shape
// collector holds compatible requests for a short window (static, or the
// planner's computed crossover) and executes the whole group as ONE
// row-stacked exchange: the E shares concatenate to a (B·m)×k stack, the F
// shares to a (B·k)×n stack, one frame sequence moves each way, and each
// member's slice of the fused banded GEMM is computed with exactly the
// per-session op sequence — so results are bit-identical to serving the
// requests one by one (every dst row of the GEMM accumulates independently;
// see tensor.Gemm).
//
// Coordination: the two parties see the same request ids but not in the
// same order or at the same time, so batch membership must be agreed, not
// assumed. Party 0 leads: it collects, then sends a proposal (batch id,
// shape, band height, member ids) on a reserved mux control session. Party
// 1 claims each proposed id from its own arrivals — waiting JoinWait for
// stragglers still in flight — and acks the subset it holds. Both sides
// execute the acked subset in proposal order over a fresh mux session keyed
// by the batch id; members that missed the batch on either side fall back
// to the ordinary per-request path on BOTH sides (the leader omits them
// from the exec, the follower remembers them as dropped), so one slow or
// dead client never wedges its co-tenants.
//
// Both parties must enable batching together (ServeConfig.Batch), like the
// wire pipeline: a leader whose peer never opens the control session sees
// every proposal go unanswered and pays the ack timeout per batch.

// batchCtlID is the reserved mux session carrying batch proposals and
// acks ("psmlbch1"). Request ids start from a random 64-bit base, so a
// collision with a live request id is as likely as any other id reuse.
const batchCtlID uint64 = 0x70736d6c62636831

// Batch control frame layout (little-endian):
//
//	propose: ver kind=1 | u64 batchID | u32 m k n stackBand | u32 count | count × u64 ids
//	ack:     ver kind=2 | u64 batchID | u32 count | count × u64 ids (subset, proposal order)
const (
	batchCtlVersion  byte = 1
	batchKindPropose byte = 1
	batchKindAck     byte = 2
)

// maxBatchCtlIDs bounds the member count a control frame may carry, so a
// hostile frame cannot force a huge allocation.
const maxBatchCtlIDs = 1 << 12

// BatchConfig enables and tunes cross-session request batching on
// ServeClients. Both parties must configure it together.
type BatchConfig struct {
	// Window is how long the collector holds the first request of a batch
	// for more same-shape arrivals. <= 0 selects the default (500µs) unless
	// Planner is set, in which case the planner computes the window per
	// shape from the hw cost models and measured exchange costs.
	Window time.Duration
	// MaxBatch caps the members of one batch; a full batch dispatches
	// immediately. <= 0 selects 16.
	MaxBatch int
	// MaxRows caps the stacked E rows of one batch (members × m); reaching
	// it dispatches immediately. <= 0 selects 4096.
	MaxRows int
	// JoinWait is how long the follower waits for a proposed member whose
	// request has not reached it yet before dropping that member from the
	// batch. <= 0 selects 150ms.
	JoinWait time.Duration
	// Planner, when non-nil, computes the batch window and band height per
	// shape instead of the static Window / whole-stack defaults.
	Planner *Planner
}

const (
	defaultBatchWindow  = 500 * time.Microsecond
	defaultBatchMax     = 16
	defaultBatchMaxRows = 4096
	defaultJoinWait     = 150 * time.Millisecond
)

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Window <= 0 {
		c.Window = defaultBatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultBatchMax
	}
	if c.MaxRows <= 0 {
		c.MaxRows = defaultBatchMaxRows
	}
	if c.JoinWait <= 0 {
		c.JoinWait = defaultJoinWait
	}
	return c
}

// batcher is what a serving loop offers each request to. handled=false
// means "not batched, serve it on the ordinary per-request path" —
// degenerate shapes, duplicate ids, members dropped by the peer, and
// anything arriving after close. handled=true with err!=nil is a failed
// batch exchange: the request failed, like a per-request exchange error.
// On success, ci is a row view into the shared stacked result; release
// returns the backing store to the pool once the caller has encoded it.
type batcher interface {
	do(id uint64, in Shares) (ci *tensor.Matrix, release func(), handled bool, err error)
	close()
}

// newBatcher wires the party's side of the batch protocol onto the mux.
// codec, when non-nil, compresses the stacked E/F exchanges exactly like
// the per-request wire path (rounding is elementwise, so a stacked FP16
// round equals rounding each member individually).
func newBatcher(party int, mux *comm.Mux, cfg BatchConfig, pool *tensor.Pool, codec *WireCodec) (batcher, error) {
	ctl, err := mux.Open(batchCtlID)
	if err != nil {
		return nil, fmt.Errorf("mpc: batch control session: %w", err)
	}
	cfg = cfg.withDefaults()
	if pool == nil {
		pool = tensor.NewPool()
	}
	if party == 0 {
		l := &batchLeader{
			cfg:     cfg,
			mux:     mux,
			ctl:     ctl,
			pool:    pool,
			codec:   codec,
			pending: make(map[batchShape]*pendingBatch),
			acks:    make(map[uint64]chan batchAck),
			done:    make(chan struct{}),
		}
		go l.ackLoop()
		return l, nil
	}
	f := &batchFollower{
		cfg:     cfg,
		mux:     mux,
		ctl:     ctl,
		pool:    pool,
		codec:   codec,
		waiting: make(map[uint64]*batchMember),
		expect:  make(map[uint64]chan *batchMember),
		dropped: make(map[uint64]struct{}),
		done:    make(chan struct{}),
	}
	// Upper bound on leader-side collection before a proposal can reach us:
	// its window plus control-frame latency, padded generously — a expired
	// wait only costs falling back to the individual path.
	maxWindow := cfg.Window
	if cfg.Planner != nil && defaultMaxWindow > maxWindow {
		maxWindow = defaultMaxWindow
	}
	f.proposalWait = 2*cfg.JoinWait + maxWindow + 250*time.Millisecond
	go f.proposalLoop()
	return f, nil
}

// batchOutcome is the collector's answer to one parked request.
type batchOutcome struct {
	ci       *tensor.Matrix
	release  func()
	err      error
	fallback bool // not batched after all: serve individually
}

// batchMember is one request parked in a forming batch.
type batchMember struct {
	id    uint64
	in    Shares
	shape batchShape
	out   chan batchOutcome // buffered 1: delivery never blocks
}

// shapeOf returns the request's batch key; ok=false for degenerate
// geometry the stacking math cannot handle (batchExec divides by m).
func shapeOf(in Shares) (batchShape, bool) {
	s := batchShape{m: in.A.Rows, k: in.A.Cols, n: in.B.Cols}
	return s, s.m > 0 && s.k > 0 && s.n > 0
}

func fallbackMember(mem *batchMember) {
	metrics.batchFallbacks.Inc()
	mem.out <- batchOutcome{fallback: true}
}

func fallbackAll(members []*batchMember) {
	for _, mem := range members {
		fallbackMember(mem)
	}
}

func errAll(members []*batchMember, err error) {
	for _, mem := range members {
		mem.out <- batchOutcome{err: err}
	}
}

// distributeBatch hands each member its row view of the stacked result.
// The backing store returns to the pool when the last member releases.
func distributeBatch(members []*batchMember, cstack *tensor.Matrix, m int, pool *tensor.Pool) {
	refs := new(atomic.Int32)
	refs.Store(int32(len(members)))
	release := func() {
		if refs.Add(-1) == 0 {
			pool.Put(cstack)
		}
	}
	for j, mem := range members {
		mem.out <- batchOutcome{ci: cstack.SliceRows(j*m, (j+1)*m), release: release}
	}
}

// ---- leader (party 0) ----

// pendingBatch is one shape's forming batch on the leader.
type pendingBatch struct {
	shape      batchShape
	created    time.Time
	members    []*batchMember
	ids        map[uint64]struct{}
	timer      *time.Timer
	dispatched bool
}

type batchLeader struct {
	cfg   BatchConfig
	mux   *comm.Mux
	ctl   *comm.MuxSession
	pool  *tensor.Pool
	codec *WireCodec

	mu      sync.Mutex
	closed  bool
	pending map[batchShape]*pendingBatch
	acks    map[uint64]chan batchAck

	closeOnce sync.Once
	done      chan struct{}
}

func (l *batchLeader) window(s batchShape) time.Duration {
	if p := l.cfg.Planner; p != nil {
		return p.Plan(s.m, s.k, s.n, s.m).window
	}
	return l.cfg.Window
}

func (l *batchLeader) stackBand(s batchShape, stackRows int) int {
	if p := l.cfg.Planner; p != nil {
		return p.Plan(s.m, s.k, s.n, stackRows).stackBand
	}
	return 0 // whole stack: one E frame, minimal fixed cost
}

func (l *batchLeader) do(id uint64, in Shares) (*tensor.Matrix, func(), bool, error) {
	shape, ok := shapeOf(in)
	if !ok {
		return nil, nil, false, nil
	}
	if p := l.cfg.Planner; p != nil {
		p.Observe(shape.m, shape.k, shape.n, time.Now())
	}
	mem := &batchMember{id: id, in: in, shape: shape, out: make(chan batchOutcome, 1)}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, nil, false, nil
	}
	pb := l.pending[shape]
	if pb != nil {
		if _, dup := pb.ids[id]; dup {
			// Two in-flight requests under one id cannot share a batch —
			// the ack and the result distribution key by id.
			l.mu.Unlock()
			return nil, nil, false, nil
		}
		pb.members = append(pb.members, mem)
		pb.ids[id] = struct{}{}
		full := len(pb.members) >= l.cfg.MaxBatch || len(pb.members)*shape.m >= l.cfg.MaxRows
		l.mu.Unlock()
		if full {
			l.dispatch(shape, pb)
		}
	} else {
		pb = &pendingBatch{
			shape:   shape,
			created: time.Now(),
			members: []*batchMember{mem},
			ids:     map[uint64]struct{}{id: {}},
		}
		// The leader batches EVERY request while batching is on — a window
		// of 0 just dispatches a singleton immediately. The follower's half
		// of any request therefore always sees a proposal promptly; it
		// never has to guess whether the leader is collecting.
		if window := l.window(shape); window > 0 {
			l.pending[shape] = pb
			pb.timer = time.AfterFunc(window, func() { l.dispatch(shape, pb) })
			l.mu.Unlock()
		} else {
			l.mu.Unlock()
			l.dispatch(shape, pb)
		}
	}
	out := <-mem.out
	if out.fallback {
		return nil, nil, false, nil
	}
	return out.ci, out.release, true, out.err
}

// dispatch seals pb (idempotent: the window timer and the full-batch check
// race benignly) and runs its exchange on a fresh goroutine.
func (l *batchLeader) dispatch(shape batchShape, pb *pendingBatch) {
	l.mu.Lock()
	if pb.dispatched {
		l.mu.Unlock()
		return
	}
	pb.dispatched = true
	if l.pending[shape] == pb {
		delete(l.pending, shape)
	}
	l.mu.Unlock()
	if pb.timer != nil {
		pb.timer.Stop()
	}
	metrics.batchWait.ObserveSince(pb.created)
	go l.run(pb)
}

// ackWait bounds the leader's wait for the follower's ack: the follower
// may hold the proposal for JoinWait collecting stragglers, plus slack for
// the control round trip.
func (l *batchLeader) ackWait() time.Duration { return l.cfg.JoinWait + 2*time.Second }

func (l *batchLeader) run(pb *pendingBatch) {
	members := pb.members
	metrics.batches.Inc()
	metrics.batchRequests.Add(uint64(len(members)))

	batchID := newRequestID()
	ackCh := make(chan batchAck, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		fallbackAll(members)
		return
	}
	l.acks[batchID] = ackCh
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.acks, batchID)
		l.mu.Unlock()
	}()

	ids := make([]uint64, len(members))
	for i, mem := range members {
		ids[i] = mem.id
	}
	prop := batchProposal{id: batchID, shape: pb.shape, stackBand: l.stackBand(pb.shape, len(members)*pb.shape.m), ids: ids}
	if err := l.ctl.WriteFrame(appendProposal(nil, prop)); err != nil {
		fallbackAll(members)
		return
	}

	var ack batchAck
	timer := time.NewTimer(l.ackWait())
	defer timer.Stop()
	select {
	case ack = <-ackCh:
	case <-timer.C:
		fallbackAll(members)
		return
	case <-l.done:
		fallbackAll(members)
		return
	}

	acked := make(map[uint64]struct{}, len(ack.ids))
	for _, id := range ack.ids {
		acked[id] = struct{}{}
	}
	accepted := make([]*batchMember, 0, len(members))
	for _, mem := range members {
		if _, ok := acked[mem.id]; ok {
			accepted = append(accepted, mem)
		} else {
			// The follower never saw this member's half: it runs on the
			// ordinary per-request path on both sides.
			metrics.batchDropped.Inc()
			fallbackMember(mem)
		}
	}
	if len(accepted) == 0 {
		return
	}

	sess, err := l.mux.Open(batchID)
	if err != nil {
		errAll(accepted, fmt.Errorf("mpc: batch %016x: %w", batchID, err))
		return
	}
	start := time.Now()
	cstack, err := batchExec(0, sess, pb.shape, accepted, prop.stackBand, l.pool, l.codec)
	metrics.batchExec.ObserveSince(start)
	if err != nil {
		sess.Abort()
		errAll(accepted, fmt.Errorf("mpc: batch %016x: %w", batchID, err))
		return
	}
	sess.Close()
	distributeBatch(accepted, cstack, pb.shape.m, l.pool)
}

// ackLoop owns the control session's read side on the leader.
func (l *batchLeader) ackLoop() {
	var buf []byte
	for {
		frame, err := readFrameInto(l.ctl, buf)
		if err != nil {
			if comm.IsTimeout(err) {
				continue // idle control session; keep listening
			}
			return // mux dead or batcher closed
		}
		buf = frame
		ack, err := parseAck(frame)
		if err != nil {
			continue
		}
		l.mu.Lock()
		ch := l.acks[ack.id]
		delete(l.acks, ack.id)
		l.mu.Unlock()
		if ch != nil {
			ch <- ack
		}
	}
}

func (l *batchLeader) close() {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		pend := l.pending
		l.pending = map[batchShape]*pendingBatch{}
		l.mu.Unlock()
		close(l.done)
		l.ctl.Close()
		for _, pb := range pend {
			if pb.timer != nil {
				pb.timer.Stop()
			}
			l.mu.Lock()
			already := pb.dispatched
			pb.dispatched = true
			l.mu.Unlock()
			if !already {
				fallbackAll(pb.members)
			}
		}
	})
}

// ---- follower (party 1) ----

// droppedRing bounds how many proposed-but-missed ids the follower
// remembers; a remembered id's late arrival skips the batch wait entirely.
const droppedRing = 1024

type batchFollower struct {
	cfg          BatchConfig
	mux          *comm.Mux
	ctl          *comm.MuxSession
	pool         *tensor.Pool
	codec        *WireCodec
	proposalWait time.Duration

	mu       sync.Mutex
	closed   bool
	waiting  map[uint64]*batchMember      // parked in do(), awaiting a proposal
	expect   map[uint64]chan *batchMember // proposals awaiting a straggler id
	dropped  map[uint64]struct{}          // proposed ids we never received
	dropRing [droppedRing]uint64
	dropNext int
	dropFull bool

	closeOnce sync.Once
	done      chan struct{}
}

// addDroppedLocked remembers id as dropped from a batch (caller holds mu).
func (f *batchFollower) addDroppedLocked(id uint64) {
	if _, ok := f.dropped[id]; ok {
		return
	}
	if f.dropFull {
		delete(f.dropped, f.dropRing[f.dropNext])
	}
	f.dropRing[f.dropNext] = id
	f.dropped[id] = struct{}{}
	f.dropNext++
	if f.dropNext == droppedRing {
		f.dropNext = 0
		f.dropFull = true
	}
}

func (f *batchFollower) do(id uint64, in Shares) (*tensor.Matrix, func(), bool, error) {
	shape, ok := shapeOf(in)
	if !ok {
		return nil, nil, false, nil
	}
	mem := &batchMember{id: id, in: in, shape: shape, out: make(chan batchOutcome, 1)}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, nil, false, nil
	}
	if _, drop := f.dropped[id]; drop {
		// The leader already gave up on this member and fell back; match it.
		delete(f.dropped, id)
		f.mu.Unlock()
		metrics.batchFallbacks.Inc()
		return nil, nil, false, nil
	}
	if ch, ok := f.expect[id]; ok {
		// A proposal is already waiting for exactly this request.
		delete(f.expect, id)
		f.mu.Unlock()
		ch <- mem
		return f.await(mem)
	}
	f.waiting[id] = mem
	f.mu.Unlock()

	timer := time.NewTimer(f.proposalWait)
	defer timer.Stop()
	select {
	case out := <-mem.out:
		return f.resolve(out)
	case <-timer.C:
	case <-f.done:
	}
	f.mu.Lock()
	if _, still := f.waiting[id]; still {
		// No proposal claimed us in time (the leader may not be batching,
		// or its half never arrived): withdraw to the individual path.
		delete(f.waiting, id)
		f.mu.Unlock()
		metrics.batchFallbacks.Inc()
		return nil, nil, false, nil
	}
	f.mu.Unlock()
	// A batch claimed us just as the timer fired; its outcome is guaranteed.
	return f.await(mem)
}

// await blocks for a claimed member's outcome (delivery is guaranteed once
// a batch has claimed the member, on every batch exit path).
func (f *batchFollower) await(mem *batchMember) (*tensor.Matrix, func(), bool, error) {
	return f.resolve(<-mem.out)
}

func (f *batchFollower) resolve(out batchOutcome) (*tensor.Matrix, func(), bool, error) {
	if out.fallback {
		return nil, nil, false, nil
	}
	return out.ci, out.release, true, out.err
}

// proposalLoop owns the control session's read side on the follower.
func (f *batchFollower) proposalLoop() {
	var buf []byte
	for {
		frame, err := readFrameInto(f.ctl, buf)
		if err != nil {
			if comm.IsTimeout(err) {
				continue
			}
			return
		}
		buf = frame
		prop, err := parseProposal(frame)
		if err != nil {
			continue
		}
		go f.runBatch(prop)
	}
}

// runBatch claims the proposed members from the follower's own arrivals,
// acks the subset it holds, and executes the batch. Every member claimed
// here receives exactly one outcome on every exit path.
func (f *batchFollower) runBatch(prop batchProposal) {
	deadline := time.NewTimer(f.cfg.JoinWait)
	defer deadline.Stop()
	expired := false
	members := make([]*batchMember, 0, len(prop.ids))
	ackIDs := make([]uint64, 0, len(prop.ids))
	for _, id := range prop.ids {
		var mem *batchMember
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			break
		}
		if w, ok := f.waiting[id]; ok {
			delete(f.waiting, id)
			f.mu.Unlock()
			mem = w
		} else if expired {
			f.addDroppedLocked(id)
			f.mu.Unlock()
			continue
		} else {
			// Not here yet — its upload may still be in flight. Hold the
			// batch for it under the shared JoinWait budget.
			ch := make(chan *batchMember, 1)
			f.expect[id] = ch
			f.mu.Unlock()
			select {
			case mem = <-ch:
			case <-deadline.C:
				expired = true
			case <-f.done:
				expired = true
			}
			if mem == nil {
				f.mu.Lock()
				if _, still := f.expect[id]; still {
					delete(f.expect, id)
					f.addDroppedLocked(id)
					f.mu.Unlock()
					continue
				}
				f.mu.Unlock()
				// do() claimed the channel in the same instant the timer
				// fired; its send is imminent.
				mem = <-ch
			}
		}
		if mem.shape != prop.shape {
			// The client sent different geometry to the two parties; no
			// batch can hold it. Individual path on both sides (the leader
			// sees the missing ack entry).
			fallbackMember(mem)
			continue
		}
		members = append(members, mem)
		ackIDs = append(ackIDs, id)
	}

	// Always ack, even an empty set: the leader converts the missing
	// members to fallbacks instead of waiting out its ack timeout.
	if err := f.ctl.WriteFrame(appendAck(nil, batchAck{id: prop.id, ids: ackIDs})); err != nil {
		fallbackAll(members)
		return
	}
	if len(members) == 0 {
		return
	}
	metrics.batches.Inc()
	metrics.batchRequests.Add(uint64(len(members)))

	sess, err := f.mux.Open(prop.id)
	if err != nil {
		errAll(members, fmt.Errorf("mpc: batch %016x: %w", prop.id, err))
		return
	}
	start := time.Now()
	cstack, err := batchExec(1, sess, prop.shape, members, prop.stackBand, f.pool, f.codec)
	metrics.batchExec.ObserveSince(start)
	if err != nil {
		sess.Abort()
		errAll(members, fmt.Errorf("mpc: batch %016x: %w", prop.id, err))
		return
	}
	sess.Close()
	distributeBatch(members, cstack, prop.shape.m, f.pool)
}

func (f *batchFollower) close() {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		f.mu.Unlock()
		close(f.done)
		f.ctl.Close()
		// Members parked in do() observe f.done and withdraw themselves;
		// members claimed by in-flight batches get their outcome from the
		// batch goroutine, whose mux reads are deadline-bounded.
	})
}

// ---- stacked execution ----

// sendStacked streams this party's half of a batch exchange: the stacked F
// share as one head frame (encoded under fKind), then the stacked E share
// in bands (encoded under eKind; locally dense CSR bands fall back to raw
// per band). Returns the total bytes shipped for the codec's bandwidth
// feedback.
func sendStacked(conn comm.Framer, fstack, estack *tensor.Matrix, band int, fKind, eKind wireCodecKind) (int, error) {
	var view tensor.Matrix
	sent := 0
	buf := appendWireTensor(nil, fstack, fKind)
	sent += len(buf)
	if err := conn.WriteFrame(buf); err != nil {
		return sent, err
	}
	for lo := 0; lo < estack.Rows; lo += band {
		hi := min(lo+band, estack.Rows)
		buf = appendWireTensor(buf[:0], estack.SliceRowsInto(&view, lo, hi), eKind)
		sent += len(buf)
		if err := conn.WriteFrame(buf); err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// batchExec runs this party's side of one batched exchange over sess: B
// members of identical m×k × k×n geometry, row-stacked. The wire protocol
// is the pipelined exchange's, applied to the stacks: one (B·k)×n F frame,
// then the (B·m)×k E stack in bands of stackBand rows, full duplex. Each
// member's rows run exactly the per-session op sequence (Eqs. 4, 5, 8) —
// every dst row of the fused GEMM accumulates independently, so the
// result is bit-identical to B individual exchanges (under codec, to B
// individual exchanges with the same picks: FP16 rounding is elementwise
// and the retained stack is rounded in place before use, like wireMul).
// Returns the pooled (B·m)×n stacked result; the caller distributes row
// views and releases.
func batchExec(party int, sess *comm.MuxSession, shape batchShape, members []*batchMember, stackBand int, pool *tensor.Pool, codec *WireCodec) (*tensor.Matrix, error) {
	m, k, n := shape.m, shape.k, shape.n
	B := len(members)
	stackRows := B * m
	if stackBand <= 0 || stackBand > stackRows {
		stackBand = stackRows
	}

	// Local stacked shares (Eq. 4): E = A − U, F = B − V, member by member.
	estack := pool.Get(stackRows, k)
	fstack := pool.Get(B*k, n)
	var jView tensor.Matrix
	for j, mem := range members {
		tensor.Sub(estack.SliceRowsInto(&jView, j*m, (j+1)*m), mem.in.A, mem.in.T.U)
	}
	for j, mem := range members {
		tensor.Sub(fstack.SliceRowsInto(&jView, j*k, (j+1)*k), mem.in.B, mem.in.T.V)
	}
	eKind, fKind := codecRaw, codecRaw
	if codec != nil {
		eKind = codec.pick(estack, tensorE)
		if eKind == codecFP16 {
			tensor.RoundMatrixFloat16InPlace(estack)
		}
		fKind = codec.pick(fstack, tensorF)
		if fKind == codecFP16 {
			tensor.RoundMatrixFloat16InPlace(fstack)
		}
	}

	sendDone := make(chan error, 1)
	sentBytes := make(chan int, 1)
	go func() {
		sent, err := sendStacked(sess, fstack, estack, stackBand, fKind, eKind)
		sentBytes <- sent
		sendDone <- err
	}()
	drained := false
	defer func() {
		if !drained {
			// The reader failed first: kill the session so the sender's
			// writes unblock before its buffers go back to the pool.
			sess.Abort()
			<-sendDone
		}
		pool.Put(estack)
		pool.Put(fstack)
	}()

	var exchDur, reconDur, gemmDur time.Duration
	var recvBuf []byte

	// Public stacked F (Eq. 5).
	t0 := time.Now()
	frame, err := readFrameInto(sess, recvBuf)
	exchDur += time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("mpc: batch recv F: %w", err)
	}
	recvBuf = frame
	peerF := pool.Get(B*k, n)
	defer pool.Put(peerF)
	if _, err := tensor.DecodeAnyInto(peerF, frame); err != nil {
		return nil, fmt.Errorf("mpc: batch decode F: %w", err)
	}
	t0 = time.Now()
	fpub := pool.Get(B*k, n)
	defer pool.Put(fpub)
	tensor.Add(fpub, fstack, peerF)
	reconDur += time.Since(t0)

	cstack := pool.Get(stackRows, n)
	ok := false
	defer func() {
		if !ok {
			pool.Put(cstack)
		}
	}()

	peerBand := pool.Get(stackBand, k)
	epubBuf := pool.Get(stackBand, k)
	dBuf := pool.Get(stackBand, k)
	defer func() {
		pool.Put(peerBand)
		pool.Put(epubBuf)
		pool.Put(dBuf)
	}()

	var pbView, eView, esView, eSlice, dSlice, aView, cView, fView, zView tensor.Matrix
	for lo := 0; lo < stackRows; lo += stackBand {
		hi := min(lo+stackBand, stackRows)
		rows := hi - lo
		t0 := time.Now()
		frame, err := readFrameInto(sess, recvBuf)
		exchDur += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("mpc: batch recv E band %d: %w", lo/stackBand, err)
		}
		recvBuf = frame
		pb := peerBand.SliceRowsInto(&pbView, 0, rows)
		if _, err := tensor.DecodeAnyInto(pb, frame); err != nil {
			return nil, fmt.Errorf("mpc: batch decode E band %d: %w", lo/stackBand, err)
		}
		// Reconstruct the stacked public E band, then fuse each member's
		// overlap with the per-session op sequence (Eqs. 5, 8).
		t0 = time.Now()
		eBand := epubBuf.SliceRowsInto(&eView, 0, rows)
		tensor.Add(eBand, estack.SliceRowsInto(&esView, lo, hi), pb)
		t1 := time.Now()
		reconDur += t1.Sub(t0)
		for j := lo / m; j < B && j*m < hi; j++ {
			ov0, ov1 := max(j*m, lo), min((j+1)*m, hi)
			if ov0 >= ov1 {
				continue
			}
			in := members[j].in
			lr0, lr1 := ov0-j*m, ov1-j*m
			eSl := eBand.SliceRowsInto(&eSlice, ov0-lo, ov1-lo)
			dSl := dBuf.SliceRowsInto(&dSlice, ov0-lo, ov1-lo)
			if party == 1 {
				tensor.Sub(dSl, in.A.SliceRowsInto(&aView, lr0, lr1), eSl)
			} else {
				dSl.CopyFrom(in.A.SliceRowsInto(&aView, lr0, lr1))
			}
			cSl := cstack.SliceRowsInto(&cView, ov0, ov1)
			fj := fpub.SliceRowsInto(&fView, j*k, (j+1)*k)
			tensor.Gemm(cSl, dSl, fj, 1, 0)                             // D×F
			tensor.Gemm(cSl, eSl, in.B, 1, 1)                           // += E×B_i
			tensor.AXPY(cSl, 1, in.T.Z.SliceRowsInto(&zView, lr0, lr1)) // += Z_i
		}
		gemmDur += time.Since(t1)
	}
	t0 = time.Now()
	sendErr := <-sendDone
	drained = true
	exchDur += time.Since(t0)
	if sendErr != nil {
		return nil, fmt.Errorf("mpc: batch send E/F: %w", sendErr)
	}
	codec.ObserveLink(<-sentBytes, exchDur)
	metrics.phaseExchange.Observe(exchDur)
	metrics.phaseReconstruct.Observe(reconDur)
	metrics.phaseGemm.Observe(gemmDur)
	ok = true
	return cstack, nil
}

// ---- control frame codec ----

type batchProposal struct {
	id        uint64
	shape     batchShape
	stackBand int
	ids       []uint64
}

type batchAck struct {
	id  uint64
	ids []uint64
}

func appendProposal(buf []byte, p batchProposal) []byte {
	buf = append(buf, batchCtlVersion, batchKindPropose)
	buf = binary.LittleEndian.AppendUint64(buf, p.id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.shape.m))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.shape.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.shape.n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.stackBand))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.ids)))
	for _, id := range p.ids {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	return buf
}

func parseProposal(frame []byte) (batchProposal, error) {
	var p batchProposal
	if len(frame) < 30 || frame[0] != batchCtlVersion || frame[1] != batchKindPropose {
		return p, fmt.Errorf("mpc: bad batch proposal frame")
	}
	p.id = binary.LittleEndian.Uint64(frame[2:])
	p.shape.m = int(binary.LittleEndian.Uint32(frame[10:]))
	p.shape.k = int(binary.LittleEndian.Uint32(frame[14:]))
	p.shape.n = int(binary.LittleEndian.Uint32(frame[18:]))
	p.stackBand = int(binary.LittleEndian.Uint32(frame[22:]))
	count := int(binary.LittleEndian.Uint32(frame[26:]))
	if count > maxBatchCtlIDs || len(frame) != 30+8*count {
		return p, fmt.Errorf("mpc: batch proposal length mismatch")
	}
	p.ids = make([]uint64, count) // copy: the frame buffer is reused
	for i := range p.ids {
		p.ids[i] = binary.LittleEndian.Uint64(frame[30+8*i:])
	}
	return p, nil
}

func appendAck(buf []byte, a batchAck) []byte {
	buf = append(buf, batchCtlVersion, batchKindAck)
	buf = binary.LittleEndian.AppendUint64(buf, a.id)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.ids)))
	for _, id := range a.ids {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	return buf
}

func parseAck(frame []byte) (batchAck, error) {
	var a batchAck
	if len(frame) < 14 || frame[0] != batchCtlVersion || frame[1] != batchKindAck {
		return a, fmt.Errorf("mpc: bad batch ack frame")
	}
	a.id = binary.LittleEndian.Uint64(frame[2:])
	count := int(binary.LittleEndian.Uint32(frame[10:]))
	if count > maxBatchCtlIDs || len(frame) != 14+8*count {
		return a, fmt.Errorf("mpc: batch ack length mismatch")
	}
	a.ids = make([]uint64, count)
	for i := range a.ids {
		a.ids[i] = binary.LittleEndian.Uint64(frame[14+8*i:])
	}
	return a, nil
}
