package mpc

import (
	"errors"
	"io"
	"sync"
	"testing"

	"parsecureml/internal/comm"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// A plaintext 2-layer MLP evaluated by the wire inference service must
// produce the same predictions.
func TestServeInferenceEndToEnd(t *testing.T) {
	p := rng.NewPool(1)
	const batch, in, hidden, out = 8, 12, 10, 4

	w1 := p.NewUniform(in, hidden, -0.3, 0.3)
	b1 := p.NewUniform(1, hidden, -0.1, 0.1)
	w2 := p.NewUniform(hidden, out, -0.3, 0.3)
	b2 := p.NewUniform(1, out, -0.1, 0.1)

	plaintext := func(x *tensor.Matrix) *tensor.Matrix {
		h := tensor.MulTo(x, w1)
		for r := 0; r < h.Rows; r++ {
			row := h.Row(r)
			for c := range row {
				row[c] += b1.Data[c]
			}
		}
		tensor.Apply(h, h, ActReLU.Apply)
		y := tensor.MulTo(h, w2)
		for r := 0; r < y.Rows; r++ {
			row := y.Row(r)
			for c := range row {
				row[c] += b2.Data[c]
			}
		}
		tensor.Apply(y, y, ActPiecewise.Apply)
		return y
	}

	client := newRemoteClient()
	s0, s1 := BuildInferSession(client, batch,
		[]*tensor.Matrix{w1, w2}, []*tensor.Matrix{b1, b2},
		[]ActivationKind{ActReLU, ActPiecewise}, []bool{true, true})

	client0a, client0b := comm.Pipe()
	client1a, client1b := comm.Pipe()
	peerA, peerB := comm.Pipe()

	maskPool := rng.NewPool(77)
	var wg sync.WaitGroup
	wg.Add(2)
	var err0, err1 error
	go func() {
		defer wg.Done()
		err0 = ServeInference(0, client0b, peerA, maskPool)
	}()
	go func() {
		defer wg.Done()
		err1 = ServeInference(1, client1b, peerB, rng.NewPool(0))
	}()

	// Session setup.
	if err := client0a.WriteFrame(EncodeInferSession(s0)); err != nil {
		t.Fatal(err)
	}
	if err := client1a.WriteFrame(EncodeInferSession(s1)); err != nil {
		t.Fatal(err)
	}

	// Several requests on one session.
	for round := 0; round < 3; round++ {
		x := p.NewUniform(batch, in, -1, 1)
		x0, x1, _ := client.Split(x)
		got, err := RequestInference(client0a, client1a, x0, x1)
		if err != nil {
			t.Fatal(err)
		}
		want := plaintext(x)
		if !got.ApproxEqual(want, 0.01) {
			t.Fatalf("round %d: served prediction off by %v", round, got.MaxAbsDiff(want))
		}
	}
	client0a.Close()
	client1a.Close()
	wg.Wait()
	for _, err := range []error{err0, err1} {
		if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("server error: %v", err)
		}
	}
	peerA.Close()
	peerB.Close()
}

func TestInferSessionFrameRoundTrip(t *testing.T) {
	p := rng.NewPool(2)
	layers := []InferLayer{
		{
			Act: ActReLU, HasAct: true,
			W: p.NewUniform(4, 3, -1, 1), B: p.NewUniform(1, 3, -1, 1),
			T: TripletShares{U: p.NewUniform(2, 4, -1, 1), V: p.NewUniform(4, 3, -1, 1), Z: p.NewUniform(2, 3, -1, 1)},
		},
		{
			HasAct: false,
			W:      p.NewUniform(3, 1, -1, 1), B: p.NewUniform(1, 1, -1, 1),
			T: TripletShares{U: p.NewUniform(2, 3, -1, 1), V: p.NewUniform(3, 1, -1, 1), Z: p.NewUniform(2, 1, -1, 1)},
		},
	}
	got, err := DecodeInferSession(EncodeInferSession(layers))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].HasAct || got[0].Act != ActReLU || got[1].HasAct {
		t.Fatalf("session metadata mismatch: %+v", got)
	}
	if !got[0].W.Equal(layers[0].W) || !got[1].T.Z.Equal(layers[1].T.Z) {
		t.Fatal("session matrices corrupted")
	}
}

func TestDecodeInferSessionErrors(t *testing.T) {
	if _, err := DecodeInferSession(nil); err == nil {
		t.Fatal("nil frame must error")
	}
	if _, err := DecodeInferSession([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero layers must error")
	}
	p := rng.NewPool(3)
	layers := []InferLayer{{
		HasAct: false,
		W:      p.NewUniform(2, 2, -1, 1), B: p.NewUniform(1, 2, -1, 1),
		T: TripletShares{U: p.NewUniform(2, 2, -1, 1), V: p.NewUniform(2, 2, -1, 1), Z: p.NewUniform(2, 2, -1, 1)},
	}}
	frame := EncodeInferSession(layers)
	if _, err := DecodeInferSession(frame[:len(frame)-3]); err == nil {
		t.Fatal("truncated session must error")
	}
	if _, err := DecodeInferSession(append(frame, 1)); err == nil {
		t.Fatal("trailing bytes must error")
	}
}
