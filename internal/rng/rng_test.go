package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"parsecureml/internal/tensor"
)

func TestFillUniformDeterministicAcrossWorkerCounts(t *testing.T) {
	const seed = 42
	ref := tensor.New(100, 137) // 13700 elements: spans >1 block
	FillUniformSerial(ref, seed, 0, -1, 1)

	for _, workers := range []int{1, 2, 3, 8} {
		prev := tensor.SetMaxWorkers(workers)
		p := NewPool(seed)
		m := tensor.New(100, 137)
		p.FillUniform(m, -1, 1)
		tensor.SetMaxWorkers(prev)
		if !m.Equal(ref) {
			t.Fatalf("fill with %d workers differs from serial reference", workers)
		}
	}
}

func TestDistinctFillsDistinctContent(t *testing.T) {
	p := NewPool(7)
	a := p.NewUniform(50, 50, 0, 1)
	b := p.NewUniform(50, 50, 0, 1)
	if a.Equal(b) {
		t.Fatal("two fills from the same pool produced identical matrices")
	}
	// Reseeding replays the same sequence of fills.
	p.Reseed(7)
	a2 := p.NewUniform(50, 50, 0, 1)
	if !a2.Equal(a) {
		t.Fatal("reseeded pool did not replay the first fill")
	}
}

func TestUniformRange(t *testing.T) {
	p := NewPool(1)
	m := p.NewUniform(64, 64, -2, 3)
	for _, v := range m.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform value %v out of [-2,3)", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	p := NewPool(2)
	m := p.NewUniform(300, 300, 0, 1)
	var sum, sq float64
	for _, v := range m.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(len(m.Data))
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance %v, want ~0.0833", variance)
	}
}

func TestNormalMoments(t *testing.T) {
	p := NewPool(3)
	m := p.NewNormal(300, 300, 1.5, 2)
	var sum, sq float64
	for _, v := range m.Data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(len(m.Data))
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-1.5) > 0.05 {
		t.Fatalf("normal mean %v, want 1.5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance %v, want 4", variance)
	}
}

func TestFillBernoulliSparsity(t *testing.T) {
	p := NewPool(4)
	m := tensor.New(400, 400)
	p.FillBernoulli(m, 0.1, func(r *Rand) float32 { return 1 + r.Float32() })
	sp := m.Sparsity()
	if sp < 0.88 || sp > 0.92 {
		t.Fatalf("sparsity %v, want ~0.9", sp)
	}
	for _, v := range m.Data {
		if v != 0 && (v < 1 || v >= 2) {
			t.Fatalf("nonzero value %v out of [1,2)", v)
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(5)
	f := func(n16 uint16) bool {
		n := int(n16%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(6)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded Rand streams diverged")
		}
	}
}

func TestNormFloat32Finite(t *testing.T) {
	r := NewRand(8)
	for i := 0; i < 100000; i++ {
		v := r.NormFloat32()
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite normal sample %v", v)
		}
	}
}

func TestPoolConcurrentFills(t *testing.T) {
	p := NewPool(11)
	var wg sync.WaitGroup
	mats := make([]*tensor.Matrix, 8)
	for i := range mats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mats[i] = p.NewUniform(100, 100, 0, 1)
		}(i)
	}
	wg.Wait()
	// All fills distinct (different fill IDs), none empty.
	for i := range mats {
		for j := i + 1; j < len(mats); j++ {
			if mats[i].Equal(mats[j]) {
				t.Fatalf("concurrent fills %d and %d identical", i, j)
			}
		}
	}
}

func TestLockedRandProducesValidOutput(t *testing.T) {
	l := NewLockedRand(1)
	m := tensor.New(64, 64)
	FillUniformLocked(m, l, 0, 1)
	for _, v := range m.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("locked fill value %v out of range", v)
		}
	}
}

func TestEmptyMatrixFill(t *testing.T) {
	p := NewPool(12)
	m := tensor.New(0, 5)
	p.FillUniform(m, 0, 1) // must not panic
}

func BenchmarkFillUniformParallel(b *testing.B) {
	p := NewPool(1)
	m := tensor.New(2048, 2048)
	b.SetBytes(int64(m.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FillUniform(m, 0, 1)
	}
}

func BenchmarkFillUniformSerial(b *testing.B) {
	m := tensor.New(2048, 2048)
	b.SetBytes(int64(m.Bytes()))
	for i := 0; i < b.N; i++ {
		FillUniformSerial(m, 1, uint32(i), 0, 1)
	}
}

func BenchmarkFillUniformLockedAntiPattern(b *testing.B) {
	l := NewLockedRand(1)
	m := tensor.New(256, 256)
	b.SetBytes(int64(m.Bytes()))
	for i := 0; i < b.N; i++ {
		FillUniformLocked(m, l, 0, 1)
	}
}
