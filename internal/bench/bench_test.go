package bench

import (
	"strconv"
	"strings"
	"testing"
)

// parse a cell like "33.8x" or "12.34%" or "123.4" into a float.
func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func lastRow(tb Table) []string { return tb.Rows[len(tb.Rows)-1] }

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	for _, e := range All() {
		tb := e.Run(opts)
		if tb.ID != e.ID {
			t.Errorf("%s: table ID %q", e.ID, tb.ID)
		}
		if len(tb.Rows) == 0 || len(tb.Header) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		for _, row := range tb.Rows {
			if len(row) > len(tb.Header) {
				t.Errorf("%s: row wider than header: %v", e.ID, row)
			}
		}
		if s := tb.String(); !strings.Contains(s, tb.Title) {
			t.Errorf("%s: rendering lost the title", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig10"); !ok {
		t.Fatal("fig10 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1(DefaultOptions())
	if len(tb.Rows) != 4 {
		t.Fatalf("Table1 rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		slow := cellFloat(t, row[3])
		// Paper: ~2x for all four. Our CNN/MLP land there; linear/logistic
		// run higher because our original baseline models an efficient
		// GEMM whereas the paper's baseline implementation is very slow
		// (32.66 s for linear regression on MNIST ≈ 12 MFLOPS). Guard the
		// shape: a small multiple for the compute-bound models, bounded
		// overhead for the matrix-vector ones (see EXPERIMENTS.md).
		limit := 6.0
		if row[0] == "linear" || row[0] == "logistic" {
			limit = 40
		}
		if slow < 1.1 || slow > limit {
			t.Errorf("Table1 %s slowdown %v outside [1.1, %v]", row[0], slow, limit)
		}
	}
}

func TestFigure10SpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := Figure10(opts)
	avg := cellFloat(t, lastRow(tb)[4])
	// Paper: 33.8x average. Shape claim: order of magnitude.
	if avg < 5 || avg > 150 {
		t.Fatalf("overall speedup average %v outside [5,150]", avg)
	}
	// Every individual cell must show ParSecureML ahead.
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		if v := cellFloat(t, row[4]); v <= 1 {
			t.Errorf("%s/%s: speedup %v <= 1", row[0], row[1], v)
		}
	}
}

func TestFigure11OnlineExceedsOverall(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	overall := cellFloat(t, lastRow(Figure10(opts))[4])
	online := cellFloat(t, lastRow(Figure11(opts))[4])
	if online <= overall {
		t.Fatalf("online speedup (%v) should exceed overall (%v), as in the paper (64.5 vs 33.8)", online, overall)
	}
}

func TestFigure12OfflineModest(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := Figure12(opts)
	avg := cellFloat(t, lastRow(tb)[4])
	// Paper: ~1.3x — modest, far below the online speedup.
	if avg < 1.0 || avg > 5 {
		t.Fatalf("offline speedup average %v outside [1.0, 5]", avg)
	}
}

func TestFigure7Crossover(t *testing.T) {
	tb := Figure7(DefaultOptions())
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first[3] != "CPU" {
		t.Fatalf("small matrices should favor CPU: %v", first)
	}
	if last[3] != "GPU" {
		t.Fatalf("16384 should favor GPU: %v", last)
	}
}

func TestFigure8GemmShareGrows(t *testing.T) {
	tb := Figure8(DefaultOptions())
	prev := -1.0
	for _, row := range tb.Rows {
		share := cellFloat(t, row[1])
		if share < prev {
			t.Fatalf("GEMM share must grow with n: %v", tb.Rows)
		}
		prev = share
	}
	if final := cellFloat(t, tb.Rows[len(tb.Rows)-1][1]); final < 50 {
		t.Fatalf("GEMM share at 16384 = %v%%, paper says >50%%", final)
	}
}

func TestTable3OccupancyDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := Table3(opts)
	last := lastRow(tb)
	sec := cellFloat(t, last[6])
	par := cellFloat(t, last[7])
	if sec < 80 {
		t.Fatalf("SecureML average occupancy %v%%, paper says >90%% mostly", sec)
	}
	if par >= sec {
		t.Fatalf("ParSecureML occupancy (%v%%) must drop below SecureML (%v%%)", par, sec)
	}
}

func TestFigure16SavesTraffic(t *testing.T) {
	tb := Figure16(DefaultOptions())
	avg := cellFloat(t, lastRow(tb)[4])
	if avg <= 0 {
		t.Fatalf("compression saved nothing: %v%%", avg)
	}
	if avg > 90 {
		t.Fatalf("compression saving %v%% implausibly high", avg)
	}
}

func TestFigure17SpeedupGrowsWithSize(t *testing.T) {
	tb := Figure17(DefaultOptions())
	first := cellFloat(t, tb.Rows[0][4])
	last := cellFloat(t, tb.Rows[len(tb.Rows)-1][4])
	if last <= first {
		t.Fatalf("speedup must grow with workload size: %v -> %v", first, last)
	}
}

func TestAblationPipelineNonNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := AblationPipeline(opts)
	for _, row := range tb.Rows {
		if imp := cellFloat(t, row[4]); imp < -0.5 {
			t.Errorf("%s/%s: pipeline hurt by %v%%", row[0], row[1], imp)
		}
	}
}

func TestAblationAdaptiveChoices(t *testing.T) {
	tb := AblationAdaptive(DefaultOptions())
	if tb.Rows[0][3] != "CPU" {
		t.Fatalf("n=16 should run on CPU: %v", tb.Rows[0])
	}
	n := len(tb.Rows)
	if tb.Rows[n-2][3] != "GPU" {
		t.Fatalf("n=4096 should run on GPU: %v", tb.Rows[n-2])
	}
}

func TestAblationActivationShape(t *testing.T) {
	tb := AblationActivation(DefaultOptions())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Fit error must improve piecewise -> taylor -> sigmoid(0).
	fitPiece := cellFloat(t, tb.Rows[0][1])
	fitTaylor := cellFloat(t, tb.Rows[1][1])
	fitExact := cellFloat(t, tb.Rows[2][1])
	if !(fitPiece > fitTaylor && fitTaylor > fitExact) || fitExact != 0 {
		t.Fatalf("fit errors not ordered: %v %v %v", fitPiece, fitTaylor, fitExact)
	}
	// The paper's claim: all variants still learn (secure acc tracks plain).
	for _, row := range tb.Rows {
		sec, plain := cellFloat(t, row[2]), cellFloat(t, row[3])
		if plain < 0.9 {
			t.Fatalf("%s: plaintext failed to learn (%v)", row[0], plain)
		}
		if sec < plain-0.05 {
			t.Fatalf("%s: secure accuracy %v lost >5 points vs plaintext %v", row[0], sec, plain)
		}
	}
}

func TestAblationNetworkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("network ablation in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := AblationNetwork(opts)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	ibOff := cellFloat(t, tb.Rows[0][2])
	ibOn := cellFloat(t, tb.Rows[1][2])
	ethOff := cellFloat(t, tb.Rows[2][2])
	ethOn := cellFloat(t, tb.Rows[3][2])
	if ethOff <= ibOff {
		t.Fatalf("slow fabric (%v) must cost more than fast (%v)", ethOff, ibOff)
	}
	if ibOn > ibOff || ethOn > ethOff {
		t.Fatal("compression must never slow a fabric down")
	}
	// Compression's absolute saving must be larger on the slow fabric.
	if (ethOff - ethOn) <= (ibOff - ibOn) {
		t.Fatalf("compression saved less on the slow fabric: %v vs %v", ethOff-ethOn, ibOff-ibOn)
	}
}

func TestAblationMultiGPUMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-GPU ablation in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := AblationMultiGPU(opts)
	for _, row := range tb.Rows {
		g1 := cellFloat(t, row[2])
		g2 := cellFloat(t, row[3])
		g4 := cellFloat(t, row[4])
		if !(g1 > g2 && g2 > g4) {
			t.Fatalf("%s/%s: multi-GPU times not monotone: %v %v %v", row[0], row[1], g1, g2, g4)
		}
		if g4 < g1/4 {
			t.Fatalf("%s/%s: super-linear scaling %v -> %v is implausible", row[0], row[1], g1, g4)
		}
	}
}

func TestAblationGPUGenerationOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("gpu-generation ablation in -short mode")
	}
	opts := DefaultOptions()
	opts.QuickBatches = 2
	tb := AblationGPUGeneration(opts)
	for _, row := range tb.Rows {
		p100 := cellFloat(t, row[2])
		fp32 := cellFloat(t, row[3])
		tc := cellFloat(t, row[4])
		if !(tc <= fp32 && fp32 <= p100) {
			t.Fatalf("%s/%s: generation ordering violated: %v %v %v", row[0], row[1], p100, fp32, tc)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "has,comma"}, {"q\"uote", "2"}},
	}
	csv := tb.CSV()
	want := "a,b\n1,\"has,comma\"\n\"q\"\"uote\",2\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
}
