package bench

import (
	"fmt"

	"parsecureml/internal/dataset"
	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/secureml"
	"parsecureml/internal/tensor"
)

// AblationActivation (A4) studies the §4.2 activation design space: the
// paper's Eq. (9) piecewise function against the Taylor-series sigmoid fit
// it rejects and the exact logistic function. For each, a logistic
// regression trains securely (real arithmetic) and the table reports the
// fit error against the exact sigmoid and the resulting accuracy — the
// evidence behind "such a replacement has little impact on accuracy".
func AblationActivation(opts Options) Table {
	t := Table{
		ID:     "ablation-activation",
		Title:  "Ablation: secure activation function choice (Eq. 9 vs Taylor vs exact sigmoid)",
		Header: []string{"activation", "max |f-sigmoid| on [-4,4]", "secure accuracy", "plaintext accuracy"},
		Notes:  "paper §4.2 rejects the Taylor fit and uses Eq. 9; exact sigmoid is computable here because activations are revealed",
	}

	spec := dataset.Spec{Name: "act", H: 4, W: 8, Classes: 2, Density: 1}
	const n, batch, epochs = 192, 32, 40
	x, y := dataset.Binary(spec, n, opts.Seed, false)
	var xs, ys []*tensor.Matrix
	for lo := 0; lo+batch <= n; lo += batch {
		xs = append(xs, x.SliceRows(lo, lo+batch))
		ys = append(ys, y.SliceRows(lo, lo+batch))
	}

	for _, act := range []ml.Activation{ml.Piecewise, ml.SigmoidTaylor, ml.Sigmoid} {
		// Fit error against the exact sigmoid over [-4, 4].
		var maxErr float64
		for i := -400; i <= 400; i++ {
			xv := float32(i) / 100
			d := float64(act.Apply(xv) - ml.Sigmoid.Apply(xv))
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}

		mk := func() *ml.Model {
			return ml.NewModel("logistic-"+act.String(), ml.MSE{},
				ml.NewDense(spec.InDim(), 1, act, rng.NewRand(opts.Seed)))
		}
		cfg := mpc.DefaultConfig()
		cfg.TensorCores = false
		cfg.Seed = opts.Seed
		d := mpc.NewDeployment(cfg)
		sm := secureml.FromPlain(d, mk(), secureml.MSELoss)
		sm.Prepare(xs, ys)
		sm.TrainEpochs(epochs, 0.4)
		trained := mk()
		sm.RevealInto(trained)
		secAcc := ml.BinaryAccuracy(trained.Predict(x), y, true)

		plain := mk()
		for e := 0; e < epochs; e++ {
			for b := range xs {
				plain.TrainBatch(xs[b], ys[b], 0.4)
			}
		}
		plainAcc := ml.BinaryAccuracy(plain.Predict(x), y, true)

		t.Rows = append(t.Rows, []string{
			act.String(), fmt.Sprintf("%.4f", maxErr), f2(secAcc), f2(plainAcc),
		})
	}
	return t
}
