package bench

// Figures 10–13: ParSecureML vs SecureML speedups over the full
// 6-model × 5-dataset evaluation matrix. Each cell runs both systems on
// identical workloads (dry-run scheduling at paper scale) and reports the
// time ratio.

func speedupTable(id, title, notes string, metric func(par, sec secureRun) (float64, float64)) func(Options) Table {
	return func(opts Options) Table {
		t := Table{
			ID:     id,
			Title:  title,
			Header: []string{"Dataset", "Model", "SecureML (s)", "ParSecureML (s)", "Speedup"},
			Notes:  notes,
		}
		var sum float64
		var count int
		inferOnly := id == "fig13"
		for _, w := range evaluationMatrix() {
			par := runSecure(w, parSecureMLConfig(opts.Seed), opts, inferOnly)
			sec := runSecure(w, secureMLBaselineConfig(opts.Seed), opts, inferOnly)
			pv, sv := metric(par, sec)
			ratio := sv / pv
			sum += ratio
			count++
			t.Rows = append(t.Rows, []string{
				w.spec.Name, w.model, f1(sv), f1(pv), fx(ratio),
			})
		}
		t.Rows = append(t.Rows, []string{"average", "", "", "", fx(sum / float64(count))})
		return t
	}
}

// Figure10 reproduces Fig. 10: overall (offline+online) training speedup.
// Paper average: 33.8×.
var Figure10 = speedupTable("fig10",
	"Overall speedup: ParSecureML over SecureML (training, 1 epoch)",
	"paper Fig. 10: average 33.8x",
	func(par, sec secureRun) (float64, float64) { return par.Phases.Total, sec.Phases.Total })

// Figure11 reproduces Fig. 11: online-phase speedup. Paper average: 64.5×.
var Figure11 = speedupTable("fig11",
	"Online speedup",
	"paper Fig. 11: average 64.5x",
	func(par, sec secureRun) (float64, float64) { return par.Phases.Online, sec.Phases.Online })

// Figure12 reproduces Fig. 12: offline-phase speedup (the client's GPU
// accelerating Z = U×V). Paper average ≈ 1.3×.
var Figure12 = speedupTable("fig12",
	"Offline speedup",
	"paper Fig. 12: ~1.3x across benchmarks",
	func(par, sec secureRun) (float64, float64) { return par.Phases.Offline, sec.Phases.Offline })

// Figure13 reproduces Fig. 13: secure inference (forward pass only).
// Paper average: 31.7×. Linear regression stands in for SVM inference as
// both compute w^T x + b (§7.2).
var Figure13 = speedupTable("fig13",
	"Inference speedup (forward pass)",
	"paper Fig. 13: average 31.7x; SVM inference == linear (w^T x + b)",
	func(par, sec secureRun) (float64, float64) { return par.Phases.Online, sec.Phases.Online })
