package bench

import (
	"fmt"
	"time"

	"parsecureml/internal/dataset"
	"parsecureml/internal/fixed"
	"parsecureml/internal/hw"
	"parsecureml/internal/profile"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// AblationPipeline (A1 in DESIGN.md) isolates the double pipeline: the
// full system with and without the Fig. 5 transfer overlap + Fig. 6
// cross-layer reconstruct overlap.
func AblationPipeline(opts Options) Table {
	t := Table{
		ID:     "ablation-pipeline",
		Title:  "Ablation: double pipeline on/off (full system otherwise)",
		Header: []string{"Dataset", "Model", "no pipeline (s)", "pipeline (s)", "improvement"},
	}
	cells := []workload{
		{"MLP", dataset.MNIST},
		{"CNN", dataset.MNIST},
		{"MLP", dataset.VGGFace2},
		{"RNN", dataset.Synthetic},
	}
	for _, w := range cells {
		on := parSecureMLConfig(opts.Seed)
		off := parSecureMLConfig(opts.Seed)
		off.Pipeline = false
		with := runSecure(w, on, opts, false).Phases.Online
		without := runSecure(w, off, opts, false).Phases.Online
		t.Rows = append(t.Rows, []string{
			w.spec.Name, w.model, f2(without), f2(with), pct(1 - with/without),
		})
	}
	return t
}

// AblationDomain (A2) compares the paper's FP32 share domain against the
// cryptographically faithful Z_2^64 fixed-point domain of SecureML on the
// online triplet multiplication, with real wall-clock timing on this
// machine — the cost of soundness.
func AblationDomain(opts Options) Table {
	t := Table{
		ID:     "ablation-domain",
		Title:  "Ablation: float vs ring (Z_2^64) share domain, online C_i (wall clock)",
		Header: []string{"n", "float (ms)", "ring (ms)", "ring/float"},
		Notes:  "float is the paper's released domain; ring is SecureML-faithful (internal/fixed)",
	}
	r := rng.NewRand(opts.Seed)
	for _, n := range []int{64, 128, 256} {
		// Float domain: D×F + E×B + Z with tensor kernels.
		e := tensor.New(n, n)
		f := tensor.New(n, n)
		ai := tensor.New(n, n)
		bi := tensor.New(n, n)
		zi := tensor.New(n, n)
		for _, m := range []*tensor.Matrix{e, f, ai, bi, zi} {
			for i := range m.Data {
				m.Data[i] = r.Float32() - 0.5
			}
		}
		// Best of three timed runs after one warm-up (stabilizes the
		// goroutine pool and caches).
		bestOf := func(fn func()) float64 {
			fn()
			best := -1.0
			for i := 0; i < 3; i++ {
				start := time.Now()
				fn()
				if d := float64(time.Since(start)) / 1e6; best < 0 || d < best {
					best = d
				}
			}
			return best
		}
		floatMS := bestOf(func() {
			c := tensor.MulTo(ai, f)
			eb := tensor.MulTo(e, bi)
			tensor.Add(c, c, eb)
			tensor.Add(c, c, zi)
		})

		// Ring domain: same shape through fixed.MulShares.
		re := fixed.EncodeMatrix(e)
		rf := fixed.EncodeMatrix(f)
		ra := fixed.EncodeMatrix(ai)
		rb := fixed.EncodeMatrix(bi)
		rz := fixed.EncodeMatrix(zi)
		ringMS := bestOf(func() {
			fixed.MulShares(1, re, rf, ra, rb, rz)
		})

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), f2(floatMS), f2(ringMS), f2(ringMS / floatMS),
		})
	}
	return t
}

// AblationAdaptive (A3) compares placement policies over a mixed bag of
// GEMM sizes: always-CPU, always-GPU, and the profiling-guided adaptive
// advisor (§4.2). The adaptive policy must never lose to either fixed
// policy.
func AblationAdaptive(opts Options) Table {
	p := hw.Paper()
	adv := profile.NewAdvisor(p, true)
	sizes := []int{16, 64, 128, 256, 512, 1024, 2048, 4096}

	cost := func(n int, place profile.Placement) float64 {
		if place == profile.CPU {
			return p.CPU.GemmTime(n, n, n, true)
		}
		return p.GPU.GemmTime(n, n, n, true) + 3*p.PCIe.TransferTime(4*n*n)
	}
	var cpuTotal, gpuTotal, adaptTotal float64
	rows := [][]string{}
	for _, n := range sizes {
		c := cost(n, profile.CPU)
		g := cost(n, profile.GPU)
		choice := adv.Gemm(n, n, n)
		a := cost(n, choice)
		cpuTotal += c
		gpuTotal += g
		adaptTotal += a
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), f2(c * 1e3), f2(g * 1e3), choice.String(),
		})
	}
	rows = append(rows, []string{"total(ms)", f2(cpuTotal * 1e3), f2(gpuTotal * 1e3),
		fmt.Sprintf("adaptive %s", f2(adaptTotal*1e3))})
	return Table{
		ID:     "ablation-adaptive",
		Title:  "Ablation: adaptive vs fixed placement over mixed GEMM sizes",
		Header: []string{"n", "CPU (ms)", "GPU+PCIe (ms)", "adaptive choice"},
		Rows:   rows,
		Notes:  fmt.Sprintf("crossover at n=%d; adaptive total <= min(fixed)", adv.CrossoverDim(1, 8192)),
	}
}
