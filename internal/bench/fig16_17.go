package bench

import (
	"fmt"

	"parsecureml/internal/dataset"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/secureml"
	"parsecureml/internal/tensor"
)

// Figure16 reproduces Fig. 16: the communication saved by the compressed
// (delta-CSR) transmission. This experiment needs real values — delta
// sparsity is data-dependent — so it trains proxy-scale models with real
// arithmetic on each dataset's sparsity profile and measures actual wire
// bytes against the dense-only baseline. Paper average: 22.9 % saved.
func Figure16(opts Options) Table {
	t := Table{
		ID:     "fig16",
		Title:  "Compressed transmission: inter-server traffic saved",
		Header: []string{"Dataset", "Model", "dense bytes", "wire bytes", "saved", "CSR sends"},
		Notes:  "paper Fig. 16: average 22.9% communication reduction; run at proxy scale with real values",
	}
	var sum float64
	var count int
	for _, spec := range dataset.All() {
		proxy := spec
		// Cap the feature width so real arithmetic stays fast; sparsity
		// profile (Density) is what matters.
		if proxy.InDim() > 784 {
			proxy.H, proxy.W = 28, 28
		}
		for _, model := range []string{"MLP", "logistic", "CNN"} {
			x, labels := dataset.Classification(proxy, 64, opts.Seed)
			plain := buildModel(model, proxy, rng.NewRand(opts.Seed))
			var y *tensor.Matrix
			if plain.OutDim() == 1 {
				_, y = dataset.Binary(proxy, 64, opts.Seed, false)
			} else {
				y = dataset.OneHotLabels(labels, plain.OutDim())
			}

			cfg := parSecureMLConfig(opts.Seed)
			cfg.TensorCores = false
			d := mpc.NewDeployment(cfg)
			m := secureml.FromPlain(d, plain, secureml.MSELoss)
			m.Prepare([]*tensor.Matrix{x.SliceRows(0, 32), x.SliceRows(32, 64)},
				[]*tensor.Matrix{y.SliceRows(0, 32), y.SliceRows(32, 64)})
			m.TrainEpochs(4, 0.05)

			st := d.S0.Link().Stats()
			st1 := d.S1.Link().Stats()
			dense := st.DenseBytes + st1.DenseBytes
			wire := st.WireBytes + st1.WireBytes
			saved := 1 - float64(wire)/float64(dense)
			sum += saved
			count++
			t.Rows = append(t.Rows, []string{
				spec.Name, model,
				fmt.Sprintf("%d", dense), fmt.Sprintf("%d", wire),
				pct(saved), fmt.Sprintf("%d", st.CompressedSends+st1.CompressedSends),
			})
		}
	}
	t.Rows = append(t.Rows, []string{"average", "", "", "", pct(sum / float64(count)), ""})
	return t
}

// Figure17 reproduces Fig. 17: ParSecureML-vs-SecureML speedup as the
// SYNTHETIC workload grows from 1 MB to 4 GB. A workload of N 32×64
// matrices is processed as one secure multiplication of the stacked
// (N·32)×64 input against a 64×64 model — the triplet-multiplication
// pattern at growing scale. The paper: improvement increases with size.
func Figure17(opts Options) Table {
	prev := tensor.SetCompute(false)
	defer tensor.SetCompute(prev)

	t := Table{
		ID:     "fig17",
		Title:  "Speedup vs workload size (SYNTHETIC, 32x64 matrices)",
		Header: []string{"matrices", "size (MB)", "SecureML (s)", "ParSecureML (s)", "speedup"},
		Notes:  "paper Fig. 17: performance improvement grows with workload size (1 MB to 4 GB)",
	}
	for _, n := range []int{128, 512, 2048, 8192, 32768, 131072, 524288} {
		rows := n * 32
		mb := float64(rows*64*4) / (1 << 20)
		// Chunk the stacked input so device buffers stay inside V100
		// memory (4 GB of operands would not fit resident all at once).
		const chunkRows = 1 << 20
		run := func(cfg mpc.Config) float64 {
			d := mpc.NewDeployment(cfg)
			b := tensor.New(64, 64)
			for lo, c := 0, 0; lo < rows; lo, c = lo+chunkRows, c+1 {
				hi := lo + chunkRows
				if hi > rows {
					hi = rows
				}
				a := tensor.New(hi-lo, 64)
				d.SecureMatMul(fmt.Sprintf("w%d", c), a, b)
			}
			return d.Eng.Makespan()
		}
		sec := run(secureMLBaselineConfig(opts.Seed))
		par := run(parSecureMLConfig(opts.Seed))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), f1(mb), f2(sec), f2(par), fx(sec / par),
		})
	}
	return t
}
