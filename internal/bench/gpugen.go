package bench

import (
	"parsecureml/internal/dataset"
	"parsecureml/internal/hw"
)

// AblationGPUGeneration (A5) replays the §5.2 hardware claim: the V100's
// Tensor Cores against its own FP32 pipe and against the previous
// generation (P100), on the two GEMM-heaviest benchmarks.
func AblationGPUGeneration(opts Options) Table {
	t := Table{
		ID:     "ablation-gpu-generation",
		Title:  "Ablation: V100 Tensor Cores vs V100 FP32 vs P100",
		Header: []string{"Dataset", "Model", "P100 (s)", "V100 FP32 (s)", "V100 TC (s)"},
		Notes:  "§5.2 cites 2.5-12x TC-over-FP32 GEMM gains and 12x peak over P100; full-run gains are diluted by transfers and reconstructs (Fig. 15)",
	}
	cells := []workload{
		{"MLP", dataset.VGGFace2},
		{"CNN", dataset.MNIST},
	}
	for _, w := range cells {
		tc := parSecureMLConfig(opts.Seed)

		fp := parSecureMLConfig(opts.Seed)
		fp.TensorCores = false

		pascal := parSecureMLConfig(opts.Seed)
		pascal.TensorCores = false
		pascal.Platform = hw.P100()

		tTC := runSecure(w, tc, opts, false).Phases.Total
		tFP := runSecure(w, fp, opts, false).Phases.Total
		tP := runSecure(w, pascal, opts, false).Phases.Total
		t.Rows = append(t.Rows, []string{w.spec.Name, w.model, f2(tP), f2(tFP), f2(tTC)})
	}
	return t
}

// AblationMultiGPU (A7) implements the paper's multi-GPU outlook (§8,
// [63]): the online Eq. (8) operation row-splits across several V100s per
// server. Reconstruct/communication stay serial, so scaling is sublinear —
// Amdahl on the protocol's CPU/network fraction.
func AblationMultiGPU(opts Options) Table {
	t := Table{
		ID:     "ablation-multigpu",
		Title:  "Ablation: GPUs per server (online phase, data-parallel Eq. 8)",
		Header: []string{"Dataset", "Model", "1 GPU (s)", "2 GPUs (s)", "4 GPUs (s)"},
		Notes:  "sublinear scaling: reconstructs and the E/F exchange stay serial",
	}
	cells := []workload{
		{"MLP", dataset.VGGFace2},
		{"CNN", dataset.MNIST},
	}
	for _, w := range cells {
		var times []string
		for _, gpus := range []int{1, 2, 4} {
			cfg := parSecureMLConfig(opts.Seed)
			cfg.GPUsPerServer = gpus
			times = append(times, f2(runSecure(w, cfg, opts, false).Phases.Online))
		}
		t.Rows = append(t.Rows, append([]string{w.spec.Name, w.model}, times...))
	}
	return t
}
