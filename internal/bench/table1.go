package bench

import (
	"parsecureml/internal/baseline"
	"parsecureml/internal/dataset"
	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
)

// Table1 reproduces Table 1: the original (security-ignorant) CPU
// implementation against the SecureML re-implementation on MNIST, one
// training epoch at batch 128. The paper reports slowdowns of
// CNN 2.49×, MLP 1.80×, linear 1.93×, logistic 1.97× (average ≈ 2×).
func Table1(opts Options) Table {
	p := hw.Paper()
	spec := dataset.MNIST
	t := Table{
		ID:     "table1",
		Title:  "Original vs SecureML (MNIST, 1 epoch, batch 128)",
		Header: []string{"Method", "Original (s)", "SecureML (s)", "Slowdown (x)"},
		Notes:  "paper: CNN 2.49x, MLP 1.80x, linear 1.93x, logistic 1.97x (avg ~2x); both sides serial scalar CPU",
	}
	batches := (spec.Samples + PaperBatch - 1) / PaperBatch
	for _, model := range []string{"CNN", "MLP", "linear", "logistic"} {
		plain := buildModel(model, spec, rng.NewRand(opts.Seed))
		orig := baseline.TrainingTime(
			baseline.OriginalCPUTime(p, plain.TrainOps(PaperBatch), false), batches, 1)

		run := runSecure(workload{model, spec}, secureMLBaselineConfig(opts.Seed), opts, false)
		secure := run.Phases.Total
		t.Rows = append(t.Rows, []string{model, f2(orig), f2(secure), f2(secure / orig)})
	}
	return t
}
