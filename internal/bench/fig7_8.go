package bench

import (
	"fmt"

	"parsecureml/internal/gpu"
	"parsecureml/internal/hw"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// Figure7 reproduces Fig. 7: generating an n×n uniform matrix with
// thread-local MT19937 on the CPU versus cuRAND on the GPU (including the
// PCIe copy of the result to the host, where the framework needs it). The
// paper's takeaway: the GPU only wins for large matrices, so ParSecureML
// keeps random generation on the CPU (§5.1).
func Figure7(opts Options) Table {
	p := hw.Paper()
	t := Table{
		ID:     "fig7",
		Title:  "Random matrix generation: CPU MT19937 vs GPU cuRAND (+PCIe)",
		Header: []string{"n", "CPU (ms)", "GPU (ms)", "winner"},
		Notes:  "paper Fig. 7: CPU wins at small n; crossover appears only at very large matrices",
	}
	for _, n := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
		elems := n * n
		cpu := p.CPU.RandTime(elems, true)
		gpuT := p.GPU.RandTime(elems) + p.PCIe.TransferTime(4*elems)
		winner := "CPU"
		if gpuT < cpu {
			winner = "GPU"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), f2(cpu * 1e3), f2(gpuT * 1e3), winner,
		})
	}
	return t
}

// Figure8 reproduces Fig. 8: the fraction of total GPU activity spent in
// GEMM kernels as the matrix dimension grows, measured with the device's
// nvprof-style profiler over one H2D + GEMM + D2H round trip (the paper's
// §5.2 motivation for optimizing GEMM with Tensor Cores).
func Figure8(opts Options) Table {
	prev := tensor.SetCompute(false)
	defer tensor.SetCompute(prev)

	t := Table{
		ID:     "fig8",
		Title:  "GEMM share of GPU activity vs matrix dimension",
		Header: []string{"n", "GEMM time %", "copy time %"},
		Notes:  "paper Fig. 8: GEMM share grows with n, exceeding 50% at n=16384",
	}
	for _, n := range []int{1024, 2048, 4096, 8192, 16384} {
		eng := simtime.NewEngine()
		dev := gpu.New("gpu0", hw.Paper(), eng)
		dev.SetMemCapacity(64 << 30) // the 16K case needs 3 GiB buffers
		a := tensor.New(n, n)
		da, _, err := dev.H2D(a)
		if err != nil {
			panic(err)
		}
		db, _, err := dev.H2D(a)
		if err != nil {
			panic(err)
		}
		dc := dev.MustAlloc(n, n)
		dev.Gemm(dc, da, db)
		dev.D2H(dc)
		prof := dev.Profiler()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			pct(prof.Share("gemm", "gemm.tc")),
			pct(prof.Share("h2d", "d2h")),
		})
	}
	return t
}
