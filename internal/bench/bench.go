// Package bench regenerates every table and figure of the paper's
// evaluation (§7). Each experiment returns a Table whose rows mirror the
// paper's presentation; EXPERIMENTS.md records paper-vs-measured values.
//
// Execution strategy: timing experiments run the real protocol code in
// dry-run mode (tensor.SetCompute(false)) so the paper's full-size
// workloads schedule in milliseconds while producing the same task
// timeline as a real run (invariance is enforced by tests); value-
// dependent experiments (Fig. 16 compression, accuracy checks) run real
// arithmetic at reduced scale. In Quick mode a run schedules a
// representative subset of batches and scales linearly — exact up to the
// one-time GPU warm-up because batches are independent.
package bench

import (
	"fmt"
	"strings"

	"parsecureml/internal/dataset"
	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/secureml"
	"parsecureml/internal/tensor"
)

// Table is one reproduced artifact.
type Table struct {
	ID     string // e.g. "table1", "fig10"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// CSV renders the table as comma-separated values (header + rows).
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	esc(t.Header)
	for _, row := range t.Rows {
		esc(row)
	}
	return b.String()
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Options controls experiment scale.
type Options struct {
	// Quick schedules at most QuickBatches representative batches per run
	// and scales linearly; full mode schedules every batch.
	Quick        bool
	QuickBatches int
	// Seed drives all synthetic data and share randomness.
	Seed uint64
}

// DefaultOptions returns quick-mode settings.
func DefaultOptions() Options {
	return Options{Quick: true, QuickBatches: 4, Seed: 1}
}

// Experiment is one reproducible artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Table
}

// All returns every experiment in the paper's order, followed by the
// repository's own ablations.
func All() []Experiment {
	return []Experiment{
		{"table1", "Original vs SecureML slowdown (MNIST)", Table1},
		{"fig2", "Two-party computation time breakdown (MLP, MNIST one batch)", Figure2},
		{"fig7", "cuRAND (GPU) vs MT19937 (CPU) random generation", Figure7},
		{"fig8", "GEMM share of GPU time vs matrix dimension", Figure8},
		{"fig10", "Overall speedup: ParSecureML vs SecureML", Figure10},
		{"fig11", "Online speedup", Figure11},
		{"fig12", "Offline speedup", Figure12},
		{"fig13", "Inference speedup", Figure13},
		{"fig14", "CPU parallelism benefit", Figure14},
		{"fig15", "Tensor Core benefit", Figure15},
		{"table2", "Slowdown vs non-secure GPU ML", Table2},
		{"table3", "Online/total time and occupancy", Table3},
		{"fig16", "Compression communication benefit", Figure16},
		{"fig17", "Speedup vs workload size (SYNTHETIC)", Figure17},
		{"ablation-pipeline", "Ablation: double pipeline on/off", AblationPipeline},
		{"ablation-domain", "Ablation: float vs ring share domain", AblationDomain},
		{"ablation-adaptive", "Ablation: adaptive vs fixed placement", AblationAdaptive},
		{"ablation-activation", "Ablation: secure activation function choice", AblationActivation},
		{"ablation-gpu-generation", "Ablation: V100 Tensor Cores vs FP32 vs P100", AblationGPUGeneration},
		{"ablation-network", "Ablation: fabric speed x compression", AblationNetwork},
		{"ablation-multigpu", "Ablation: GPUs per server", AblationMultiGPU},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// PaperBatch is the evaluation batch size (§7.1).
const PaperBatch = 128

// ConvFilters is the CNN's output-channel count (the paper leaves it
// unspecified; 8 keeps the largest workload, NIST 512×512, inside V100
// memory exactly as any real run would require).
const ConvFilters = 8

// workload names one (model, dataset) cell of the evaluation matrix.
type workload struct {
	model string
	spec  dataset.Spec
}

// evaluationMatrix lists the 26 combinations of Figs. 10–13 and Tables
// 2–3: five models on every dataset, RNN on SYNTHETIC only (§7.1).
func evaluationMatrix() []workload {
	var out []workload
	for _, spec := range dataset.All() {
		for _, m := range []string{"CNN", "MLP", "linear", "logistic", "SVM"} {
			out = append(out, workload{m, spec})
		}
		if spec.Name == "SYNTHETIC" {
			out = append(out, workload{"RNN", spec})
		}
	}
	return out
}

// buildModel constructs the plaintext architecture for a workload.
func buildModel(name string, spec dataset.Spec, r *rng.Rand) *ml.Model {
	switch name {
	case "CNN":
		return ml.NewCNNCh(spec.H, spec.W, spec.InChannels(), ConvFilters, r)
	case "MLP":
		return ml.NewMLP(spec.InDim(), r)
	case "RNN":
		return ml.NewRNNModel(spec.W, 128, spec.SeqSteps, r)
	case "linear":
		return ml.NewLinearRegression(spec.InDim(), r)
	case "logistic":
		return ml.NewLogisticRegression(spec.InDim(), r)
	case "SVM":
		return ml.NewSVM(spec.InDim(), r)
	default:
		panic("bench: unknown model " + name)
	}
}

func lossFor(model string) secureml.LossKind {
	if model == "SVM" {
		return secureml.HingeLoss
	}
	return secureml.MSELoss
}

// batchGeometry returns the total batch count of a full run and the
// number actually scheduled under opts.
func batchGeometry(spec dataset.Spec, opts Options) (total, scheduled int) {
	total = (spec.Samples + PaperBatch - 1) / PaperBatch
	scheduled = total
	if opts.Quick && scheduled > opts.QuickBatches {
		scheduled = opts.QuickBatches
	}
	return total, scheduled
}

// secureRun is one measured secure execution.
type secureRun struct {
	Phases     secureml.Phases
	InferTime  float64 // forward-only online time, scaled
	WireBytes  int64
	DenseBytes int64
}

// runSecure schedules a full training run (1 epoch, the paper's
// configuration) of the workload under cfg, in dry-run mode, scaling from
// the scheduled batch subset to the full batch count.
func runSecure(w workload, cfg mpc.Config, opts Options, inferOnly bool) secureRun {
	return runSecureN(w, cfg, opts, inferOnly, 1)
}

// runSecureEpochs is runSecure with a training epoch count.
func runSecureEpochs(w workload, cfg mpc.Config, opts Options, epochs int) secureRun {
	return runSecureN(w, cfg, opts, false, epochs)
}

func runSecureN(w workload, cfg mpc.Config, opts Options, inferOnly bool, epochs int) secureRun {
	prev := tensor.SetCompute(false)
	defer tensor.SetCompute(prev)

	total, scheduled := batchGeometry(w.spec, opts)
	scale := float64(total) / float64(scheduled)

	d := mpc.NewDeployment(cfg)
	// Dry schedules can reach millions of tasks in full mode; keep only
	// the aggregates (makespan/kind totals stay exact).
	d.Eng.SetRetainTasks(false)
	plain := buildModel(w.model, w.spec, rng.NewRand(opts.Seed))
	m := secureml.FromPlain(d, plain, lossFor(w.model))

	xs := make([]*tensor.Matrix, scheduled)
	ys := make([]*tensor.Matrix, scheduled)
	outDim := plain.OutDim()
	for b := range xs {
		xs[b] = tensor.New(PaperBatch, w.spec.InDim())
		ys[b] = tensor.New(PaperBatch, outDim)
	}
	m.Prepare(xs, ys)
	// Offline scaling: the per-batch split/upload portion scales with the
	// batch count; the batch-shared triplet generation does not.
	split := m.OfflineSplit()
	sites := m.Phases().Offline - split
	offline := split*scale + sites

	var run secureRun
	if inferOnly {
		m.InferBatches()
		ph := m.Phases()
		run.InferTime = ph.Online * scale
		run.Phases = secureml.Phases{
			Offline: offline,
			Online:  ph.Online * scale,
			Total:   offline + ph.Online*scale,
		}
	} else {
		m.TrainEpochs(epochs, 0.1)
		ph := m.Phases()
		run.Phases = secureml.Phases{
			Offline: offline,
			Online:  ph.Online * scale,
			Total:   offline + ph.Online*scale,
		}
	}
	st0, st1 := d.S0.Link().Stats(), d.S1.Link().Stats()
	run.WireBytes = int64(float64(st0.WireBytes+st1.WireBytes) * scale)
	run.DenseBytes = int64(float64(st0.DenseBytes+st1.DenseBytes) * scale)
	return run
}

// parSecureMLConfig is the full system (Figs. 10–13 treatment arm).
func parSecureMLConfig(seed uint64) mpc.Config {
	cfg := mpc.DefaultConfig()
	cfg.Seed = seed
	cfg.DrySparsityHint = 0.85 // calibrated by Figure16's real-mode run
	return cfg
}

// secureMLBaselineConfig is the paper's baseline arm.
func secureMLBaselineConfig(seed uint64) mpc.Config {
	cfg := mpc.SecureMLConfig()
	cfg.Seed = seed
	return cfg
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func fx(v float64) string  { return fmt.Sprintf("%.1fx", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
