package bench

import (
	"strings"

	"parsecureml/internal/dataset"
	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/secureml"
	"parsecureml/internal/tensor"
)

// Figure2 reproduces Fig. 2's time breakdown: SecureML's MLP on the whole
// MNIST training set as ONE batch of 60 000 samples. The paper measures
// offline encrypt 62.68 s, offline transmit 0.21 s, then online
// compute1 ≈ 0.19 s, communicate ≈ 0.24 s, compute2 ≈ 95.52 s.
func Figure2(opts Options) Table {
	prev := tensor.SetCompute(false)
	defer tensor.SetCompute(prev)

	cfg := secureMLBaselineConfig(opts.Seed)
	d := mpc.NewDeployment(cfg)
	spec := dataset.MNIST
	plain := ml.NewMLP(spec.InDim(), rng.NewRand(opts.Seed))
	m := secureml.FromPlain(d, plain, secureml.MSELoss)

	x := tensor.New(spec.Samples, spec.InDim()) // the paper's single batch
	y := tensor.New(spec.Samples, plain.OutDim())
	m.Prepare([]*tensor.Matrix{x}, []*tensor.Matrix{y})
	offlineEnd := d.Eng.Makespan()
	m.TrainEpochs(1, 0.1)

	// Attribute task time to the paper's five phases (task names carry
	// the protocol step; kinds carry the resource class).
	var encrypt, transmit, compute1, communicate, compute2 float64
	for _, t := range d.Eng.Tasks() {
		res := t.Resource.Name
		offline := t.End <= offlineEnd+1e-12
		switch {
		case strings.HasPrefix(res, "client") && offline:
			encrypt += t.Duration()
		case strings.HasPrefix(res, "net.client") && offline:
			transmit += t.Duration()
		case t.Kind == "net" && !offline:
			communicate += t.Duration()
		case strings.HasPrefix(t.Name, "reconstruct."):
			compute1 += t.Duration()
		case !offline && !strings.HasPrefix(res, "~") && !strings.HasPrefix(res, "client"):
			compute2 += t.Duration()
		}
	}
	return Table{
		ID:     "fig2",
		Title:  "SecureML time breakdown, MLP on MNIST in one batch",
		Header: []string{"Phase", "Time (s)"},
		Rows: [][]string{
			{"offline: client encrypt", f2(encrypt)},
			{"offline: transmit to servers", f2(transmit)},
			{"online: compute1 (E_i, F_i)", f2(compute1)},
			{"online: communicate (E, F)", f2(communicate)},
			{"online: compute2 (C_i)", f2(compute2)},
		},
		Notes: "paper: 62.68 / 0.21 / ~0.19 / ~0.24 / 95.52 s (our client partitions in parallel, so encrypt is smaller; see EXPERIMENTS.md)",
	}
}
