package bench

import (
	"parsecureml/internal/dataset"
	"parsecureml/internal/hw"
)

// AblationNetwork (A6) studies fabric sensitivity: the paper's 100 Gb/s
// InfiniBand against commodity 10 Gb/s Ethernet. SecureML's own evaluation
// highlighted LAN-vs-WAN as the protocol's weak point; this shows where
// ParSecureML's compressed transmission earns its keep — the slower the
// fabric, the larger the compression win.
func AblationNetwork(opts Options) Table {
	t := Table{
		ID:     "ablation-network",
		Title:  "Ablation: fabric speed x compression (MLP on MNIST geometry)",
		Header: []string{"fabric", "compression", "online (s)", "comm saved"},
		Notes:  "compression matters more on slower fabrics; fabric hurts the communication-bound reconstructs",
	}
	w := workload{"MLP", dataset.MNIST}
	for _, fabric := range []struct {
		name string
		p    hw.Platform
	}{
		{"100Gb/s IB", hw.Paper()},
		{"10Gb/s Eth", hw.SlowNet()},
	} {
		for _, compress := range []bool{false, true} {
			cfg := parSecureMLConfig(opts.Seed)
			cfg.Platform = fabric.p
			cfg.Compress = compress
			// Compression needs epoch-over-epoch deltas: run 3 epochs so
			// two are in the compressed steady state.
			run := runSecureEpochs(w, cfg, opts, 3)
			saved := "-"
			if compress && run.DenseBytes > 0 {
				saved = pct(1 - float64(run.WireBytes)/float64(run.DenseBytes))
			}
			label := "off"
			if compress {
				label = "on"
			}
			t.Rows = append(t.Rows, []string{fabric.name, label, f2(run.Phases.Online), saved})
		}
	}
	return t
}
