package bench

// Figures 14–15: the §5 deep-optimization benefits, measured by toggling
// one feature of the full system at a time (the paper's baseline for both
// is "ParSecureML without the §5 optimizations").

// Figure14 reproduces Fig. 14: the CPU-parallelism benefit (thread-local
// MT19937 + parallel add/sub). Paper average: 10.71 % improvement,
// varying with dataset size (VGGFace2 17.6 %, MNIST 8.7 %).
func Figure14(opts Options) Table {
	t := Table{
		ID:     "fig14",
		Title:  "CPU optimization benefit (parallel RNG + elementwise)",
		Header: []string{"Dataset", "Model", "serial CPU (s)", "parallel CPU (s)", "improvement"},
		Notes:  "paper Fig. 14: average 10.71%",
	}
	var sum float64
	var count int
	for _, w := range evaluationMatrix() {
		on := parSecureMLConfig(opts.Seed)
		off := parSecureMLConfig(opts.Seed)
		off.ParallelCPU = false
		with := runSecure(w, on, opts, false).Phases.Total
		without := runSecure(w, off, opts, false).Phases.Total
		imp := 1 - with/without
		sum += imp
		count++
		t.Rows = append(t.Rows, []string{w.spec.Name, w.model, f1(without), f1(with), pct(imp)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", "", pct(sum / float64(count))})
	return t
}

// Figure15 reproduces Fig. 15: the Tensor-Core benefit. Paper average:
// 3.11 %, largest for workloads dominated by large GEMMs.
func Figure15(opts Options) Table {
	t := Table{
		ID:     "fig15",
		Title:  "GPU Tensor Core benefit",
		Header: []string{"Dataset", "Model", "FP32 (s)", "TensorCore (s)", "improvement"},
		Notes:  "paper Fig. 15: average 3.11%",
	}
	var sum float64
	var count int
	for _, w := range evaluationMatrix() {
		on := parSecureMLConfig(opts.Seed)
		off := parSecureMLConfig(opts.Seed)
		off.TensorCores = false
		with := runSecure(w, on, opts, false).Phases.Total
		without := runSecure(w, off, opts, false).Phases.Total
		imp := 1 - with/without
		sum += imp
		count++
		t.Rows = append(t.Rows, []string{w.spec.Name, w.model, f1(without), f1(with), pct(imp)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", "", pct(sum / float64(count))})
	return t
}
