package bench

import (
	"parsecureml/internal/baseline"
	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
)

// Table2 reproduces Table 2: both secure systems against ordinary
// (non-secure) GPU machine learning. Paper averages: GPU time 16.4 s,
// SecureML 249× slower, ParSecureML 11× slower.
func Table2(opts Options) Table {
	p := hw.Paper()
	t := Table{
		ID:     "table2",
		Title:  "Slowdown vs non-secure GPU machine learning (training, 1 epoch)",
		Header: []string{"Dataset", "Model", "GPU time (s)", "SecureML slowdown (x)", "ParSecureML slowdown (x)"},
		Notes:  "paper Table 2 averages: 16.40 s / 249.34x / 10.98x",
	}
	var sumG, sumS, sumP float64
	var count int
	for _, w := range evaluationMatrix() {
		plain := buildModel(w.model, w.spec, rng.NewRand(opts.Seed))
		batches := (w.spec.Samples + PaperBatch - 1) / PaperBatch
		gpuTime := baseline.TrainingTime(
			baseline.OriginalGPUTime(p, plain.TrainOps(PaperBatch), 4*PaperBatch*w.spec.InDim()),
			batches, 1)

		sec := runSecure(w, secureMLBaselineConfig(opts.Seed), opts, false).Phases.Total
		par := runSecure(w, parSecureMLConfig(opts.Seed), opts, false).Phases.Total

		sumG += gpuTime
		sumS += sec / gpuTime
		sumP += par / gpuTime
		count++
		t.Rows = append(t.Rows, []string{
			w.spec.Name, w.model, f2(gpuTime), f2(sec / gpuTime), f2(par / gpuTime),
		})
	}
	n := float64(count)
	t.Rows = append(t.Rows, []string{"average", "all", f2(sumG / n), f2(sumS / n), f2(sumP / n)})
	return t
}

// Table3 reproduces Table 3: online time, total time and occupancy
// (online/total) for both systems. Paper: SecureML occupancy >90 % for
// most tasks; ParSecureML reduces it to 54.2 % on average.
func Table3(opts Options) Table {
	t := Table{
		ID:    "table3",
		Title: "Time breakdown: online vs total, occupancy",
		Header: []string{"Dataset", "Model",
			"SecureML online (s)", "SecureML total (s)",
			"ParSecureML online (s)", "ParSecureML total (s)",
			"occ. SecureML", "occ. ParSecureML"},
		Notes: "paper Table 3: SecureML occupancy mostly >90%; ParSecureML average 54.2%",
	}
	var sumOccS, sumOccP float64
	var count int
	for _, w := range evaluationMatrix() {
		sec := runSecure(w, secureMLBaselineConfig(opts.Seed), opts, false).Phases
		par := runSecure(w, parSecureMLConfig(opts.Seed), opts, false).Phases
		sumOccS += sec.Occupancy()
		sumOccP += par.Occupancy()
		count++
		t.Rows = append(t.Rows, []string{
			w.spec.Name, w.model,
			f2(sec.Online), f2(sec.Total),
			f2(par.Online), f2(par.Total),
			pct(sec.Occupancy()), pct(par.Occupancy()),
		})
	}
	n := float64(count)
	t.Rows = append(t.Rows, []string{"average", "", "", "", "", "", pct(sumOccS / n), pct(sumOccP / n)})
	return t
}
