package gpu

import (
	"fmt"
	"sort"
	"strings"
)

// Profiler aggregates device activity the way nvprof does (paper §5.2):
// per-kind call counts, accumulated time, and data volume for the copy
// engines. The Fig. 8 experiment (GEMM share of total GPU time) reads it.
type Profiler struct {
	rows map[string]*ProfileRow
}

// ProfileRow is one aggregated activity class.
type ProfileRow struct {
	Kind    string
	Calls   int
	Seconds float64
	Bytes   int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{rows: make(map[string]*ProfileRow)}
}

func (p *Profiler) record(kind string, seconds float64, bytes int) {
	r, ok := p.rows[kind]
	if !ok {
		r = &ProfileRow{Kind: kind}
		p.rows[kind] = r
	}
	r.Calls++
	r.Seconds += seconds
	r.Bytes += int64(bytes)
}

// Reset clears all rows.
func (p *Profiler) Reset() { p.rows = make(map[string]*ProfileRow) }

// Rows returns the activity classes sorted by descending time.
func (p *Profiler) Rows() []ProfileRow {
	out := make([]ProfileRow, 0, len(p.rows))
	for _, r := range p.rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Total returns the summed device-activity time across all kinds.
func (p *Profiler) Total() float64 {
	var s float64
	for _, r := range p.rows {
		s += r.Seconds
	}
	return s
}

// Share returns kind's fraction of total activity time (0 when idle).
func (p *Profiler) Share(kinds ...string) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	var s float64
	for _, k := range kinds {
		if r, ok := p.rows[k]; ok {
			s += r.Seconds
		}
	}
	return s / total
}

// String renders an nvprof-like table.
func (p *Profiler) String() string {
	var b strings.Builder
	total := p.Total()
	fmt.Fprintf(&b, "%-12s %8s %14s %8s %12s\n", "Activity", "Calls", "Time(ms)", "Time%", "Bytes")
	for _, r := range p.Rows() {
		pct := 0.0
		if total > 0 {
			pct = 100 * r.Seconds / total
		}
		fmt.Fprintf(&b, "%-12s %8d %14.3f %7.2f%% %12d\n", r.Kind, r.Calls, r.Seconds*1e3, pct, r.Bytes)
	}
	return b.String()
}
