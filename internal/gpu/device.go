// Package gpu simulates a discrete CUDA-class accelerator: device-resident
// buffers, host↔device copies charged to PCIe channel timelines, compute
// kernels (GEMM, element-wise, im2col, activation) that execute for real on
// the host (bit-exact results) while charging modeled V100 kernel times to
// a device compute timeline, a Tensor-Core mode that rounds GEMM inputs
// through binary16 exactly like the hardware's FP16-multiply/FP32-accumulate
// pipe, a one-time warm-up cost, and an nvprof-style profiler.
//
// Timing semantics come from the simtime engine: kernels on the same device
// serialize; copies ride separate H2D and D2H channels, so a kernel can
// overlap a transfer exactly as in the paper's first pipeline (Fig. 5).
//
// A Device is not safe for concurrent use; in the framework each simulated
// server goroutine owns one Device, matching one V100 per node (§7.1).
package gpu

import (
	"errors"
	"fmt"

	"parsecureml/internal/hw"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// ErrOutOfMemory is returned by Alloc when the device memory is exhausted.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// DefaultMemBytes is the device memory capacity (a 16 GB V100).
const DefaultMemBytes = 16 << 30

// Device is one simulated GPU.
type Device struct {
	name    string
	model   hw.GPUModel
	pcie    hw.LinkModel
	eng     *simtime.Engine
	compute *simtime.Resource
	h2d     *simtime.Resource
	d2h     *simtime.Resource

	tensorCores bool
	warmedUp    bool

	memUsed int64
	memCap  int64

	prof *Profiler
}

// Buffer is a device-resident matrix.
type Buffer struct {
	dev  *Device
	data *tensor.Matrix
	// ready is the task that last wrote the buffer; kernels reading the
	// buffer may depend on it for convenience.
	ready *simtime.Task
	freed bool
}

// Rows returns the buffer's row count.
func (b *Buffer) Rows() int { return b.data.Rows }

// Cols returns the buffer's column count.
func (b *Buffer) Cols() int { return b.data.Cols }

// Bytes returns the buffer size in bytes.
func (b *Buffer) Bytes() int { return b.data.Bytes() }

// Ready returns the task that last wrote the buffer (may be nil).
func (b *Buffer) Ready() *simtime.Task { return b.ready }

// New creates a device on the given platform, attached to eng's timelines.
// The name prefixes the device's simtime resources ("gpu0.compute", ...).
func New(name string, p hw.Platform, eng *simtime.Engine) *Device {
	return &Device{
		name:    name,
		model:   p.GPU,
		pcie:    p.PCIe,
		eng:     eng,
		compute: eng.Resource(name + ".compute"),
		h2d:     eng.Resource(name + ".h2d"),
		d2h:     eng.Resource(name + ".d2h"),
		memCap:  DefaultMemBytes,
		prof:    NewProfiler(),
	}
}

// SetMemCapacity overrides the device memory size (bytes).
func (d *Device) SetMemCapacity(bytes int64) { d.memCap = bytes }

// MemCapacity returns the device memory size (bytes).
func (d *Device) MemCapacity() int64 { return d.memCap }

// MemUsed returns the currently allocated device memory in bytes.
func (d *Device) MemUsed() int64 { return d.memUsed }

// EnableTensorCores switches GEMM kernels to the Tensor-Core pipe
// (cublasSetMathMode(CUBLAS_TENSOR_OP_MATH) in the paper, §5.2): inputs are
// rounded through binary16, accumulation stays FP32, and the cost model
// uses the Tensor-Core throughput curve.
func (d *Device) EnableTensorCores(on bool) { d.tensorCores = on }

// TensorCoresEnabled reports the current math mode.
func (d *Device) TensorCoresEnabled() bool { return d.tensorCores }

// Profiler returns the device's profiler.
func (d *Device) Profiler() *Profiler { return d.prof }

// Engine returns the simtime engine the device charges.
func (d *Device) Engine() *simtime.Engine { return d.eng }

// ComputeResource exposes the compute timeline (for schedulers).
func (d *Device) ComputeResource() *simtime.Resource { return d.compute }

// warm charges the one-time warm-up on first use and returns its task (nil
// afterwards).
func (d *Device) warm() *simtime.Task {
	if d.warmedUp {
		return nil
	}
	d.warmedUp = true
	t := d.eng.Schedule(d.compute, "warmup", d.name+" warm-up", d.model.WarmUp)
	d.prof.record("warmup", d.model.WarmUp, 0)
	return t
}

// Alloc reserves an uninitialized rows×cols device buffer.
func (d *Device) Alloc(rows, cols int) (*Buffer, error) {
	bytes := int64(4 * rows * cols)
	if d.memUsed+bytes > d.memCap {
		return nil, fmt.Errorf("%w: want %d, used %d of %d", ErrOutOfMemory, bytes, d.memUsed, d.memCap)
	}
	d.memUsed += bytes
	return &Buffer{dev: d, data: tensor.New(rows, cols)}, nil
}

// MustAlloc is Alloc for callers that treat OOM as fatal.
func (d *Device) MustAlloc(rows, cols int) *Buffer {
	b, err := d.Alloc(rows, cols)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer's device memory. Double frees panic.
func (d *Device) Free(b *Buffer) {
	if b.freed {
		panic("gpu: double free")
	}
	b.freed = true
	d.memUsed -= int64(b.Bytes())
}

// H2D copies host into a fresh device buffer, charging the H2D channel.
func (d *Device) H2D(host *tensor.Matrix, deps ...*simtime.Task) (*Buffer, *simtime.Task, error) {
	b, err := d.Alloc(host.Rows, host.Cols)
	if err != nil {
		return nil, nil, err
	}
	t := d.H2DInto(b, host, deps...)
	return b, t, nil
}

// H2DInto copies host into an existing buffer of identical shape.
func (d *Device) H2DInto(b *Buffer, host *tensor.Matrix, deps ...*simtime.Task) *simtime.Task {
	if b.data.Rows != host.Rows || b.data.Cols != host.Cols {
		panic(fmt.Sprintf("gpu: H2DInto shape %dx%d into %dx%d", host.Rows, host.Cols, b.data.Rows, b.data.Cols))
	}
	b.data.CopyFrom(host)
	dur := d.pcie.TransferTime(host.Bytes())
	t := d.eng.Schedule(d.h2d, "h2d", fmt.Sprintf("H2D %dB", host.Bytes()), dur, deps...)
	d.prof.record("h2d", dur, host.Bytes())
	b.ready = t
	return t
}

// H2DRows copies host rows [lo,hi) into the same rows of b, charging only
// those bytes — the chunked transfer primitive behind the Fig. 5 pipeline.
func (d *Device) H2DRows(b *Buffer, host *tensor.Matrix, lo, hi int, deps ...*simtime.Task) *simtime.Task {
	if b.data.Rows != host.Rows || b.data.Cols != host.Cols {
		panic("gpu: H2DRows shape mismatch")
	}
	chunk := host.SliceRows(lo, hi)
	b.data.SliceRows(lo, hi).CopyFrom(chunk)
	dur := d.pcie.TransferTime(chunk.Bytes())
	t := d.eng.Schedule(d.h2d, "h2d", fmt.Sprintf("H2D rows[%d:%d] %dB", lo, hi, chunk.Bytes()), dur, deps...)
	d.prof.record("h2d", dur, chunk.Bytes())
	b.ready = t
	return t
}

// D2H copies a device buffer back to a new host matrix on the D2H channel.
func (d *Device) D2H(b *Buffer, deps ...*simtime.Task) (*tensor.Matrix, *simtime.Task) {
	host := b.data.Clone()
	dur := d.pcie.TransferTime(b.Bytes())
	allDeps := append([]*simtime.Task{b.ready}, deps...)
	t := d.eng.Schedule(d.d2h, "d2h", fmt.Sprintf("D2H %dB", b.Bytes()), dur, allDeps...)
	d.prof.record("d2h", dur, b.Bytes())
	return host, t
}

// Data exposes the device-resident matrix for in-simulation readers (e.g.
// kernels of the owning server). Mutating it without a kernel breaks
// profiling honesty; tests only.
func (b *Buffer) Data() *tensor.Matrix { return b.data }
