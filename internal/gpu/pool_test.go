package gpu

import (
	"strings"
	"testing"

	"parsecureml/internal/hw"
	"parsecureml/internal/simtime"
)

func TestBufferPoolReuse(t *testing.T) {
	d := New("gpu0", hw.Paper(), simtime.NewEngine())
	p := NewBufferPool(d)

	b1, err := p.Get(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	used := d.MemUsed()
	p.Put(b1)
	if d.MemUsed() != used {
		t.Fatal("Put must keep device memory allocated")
	}
	b2, err := p.Get(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b1 {
		t.Fatal("same-shape Get must reuse the pooled buffer")
	}
	if d.MemUsed() != used {
		t.Fatal("reuse must not grow device memory")
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d, want 1/1", hits, misses)
	}

	// Different shape allocates fresh.
	b3, err := p.Get(16, 17)
	if err != nil {
		t.Fatal(err)
	}
	if b3 == b1 {
		t.Fatal("different shapes must not share buffers")
	}
	p.Put(b2)
	p.Put(b3)
	p.Release()
	if d.MemUsed() != 0 {
		t.Fatalf("Release leaked %d bytes", d.MemUsed())
	}
	if !strings.Contains(p.String(), "hits: 1") {
		t.Fatalf("String: %s", p.String())
	}
}

func TestBufferPoolRespectsDeviceCap(t *testing.T) {
	d := New("gpu0", hw.Paper(), simtime.NewEngine())
	d.SetMemCapacity(4 * 16 * 16)
	p := NewBufferPool(d)
	b, err := p.Get(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(16, 16); err == nil {
		t.Fatal("second allocation must hit the capacity")
	}
	p.Put(b)
	if _, err := p.Get(16, 16); err != nil {
		t.Fatalf("pooled reuse must succeed at capacity: %v", err)
	}
}

func TestBufferPoolPanics(t *testing.T) {
	d1 := New("gpu0", hw.Paper(), simtime.NewEngine())
	d2 := New("gpu1", hw.Paper(), simtime.NewEngine())
	p := NewBufferPool(d1)
	foreign := d2.MustAlloc(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("foreign Put must panic")
			}
		}()
		p.Put(foreign)
	}()
	own := d1.MustAlloc(2, 2)
	d1.Free(own)
	defer func() {
		if recover() == nil {
			t.Error("freed Put must panic")
		}
	}()
	p.Put(own)
}
