package gpu

import "fmt"

// BufferPool recycles device buffers by shape, the standard discipline for
// iterative training workloads: the same layer geometries recur every
// batch, so reusing allocations avoids allocator churn and fragmentation
// on a memory-capped device. Not safe for concurrent use (like the Device
// it wraps).
type BufferPool struct {
	dev  *Device
	free map[[2]int][]*Buffer

	hits, misses int
}

// NewBufferPool returns an empty pool over dev.
func NewBufferPool(dev *Device) *BufferPool {
	return &BufferPool{dev: dev, free: make(map[[2]int][]*Buffer)}
}

// Get returns a rows×cols buffer, reusing a pooled one when available.
// Reused buffers keep their previous contents (callers overwrite).
func (p *BufferPool) Get(rows, cols int) (*Buffer, error) {
	key := [2]int{rows, cols}
	if list := p.free[key]; len(list) > 0 {
		b := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.hits++
		return b, nil
	}
	p.misses++
	return p.dev.Alloc(rows, cols)
}

// Put returns a buffer to the pool for reuse. The buffer must have come
// from this pool's device and must not be used afterwards by the caller.
func (p *BufferPool) Put(b *Buffer) {
	if b.dev != p.dev {
		panic("gpu: BufferPool.Put of a foreign buffer")
	}
	if b.freed {
		panic("gpu: BufferPool.Put of a freed buffer")
	}
	key := [2]int{b.Rows(), b.Cols()}
	p.free[key] = append(p.free[key], b)
}

// Release frees every pooled buffer back to the device.
func (p *BufferPool) Release() {
	for key, list := range p.free {
		for _, b := range list {
			p.dev.Free(b)
		}
		delete(p.free, key)
	}
}

// Stats reports pool effectiveness.
func (p *BufferPool) Stats() (hits, misses int) { return p.hits, p.misses }

// String summarizes the pool.
func (p *BufferPool) String() string {
	cached := 0
	for _, list := range p.free {
		cached += len(list)
	}
	return fmt.Sprintf("BufferPool{cached: %d, hits: %d, misses: %d}", cached, p.hits, p.misses)
}
