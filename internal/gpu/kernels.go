package gpu

import (
	"fmt"

	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// Compute kernels. Each kernel executes the real computation immediately
// (results are independent of simulated time) and schedules a task of the
// modeled duration on the device compute timeline, depending on the source
// buffers' last writers plus any explicit deps.

func (d *Device) kernelDeps(explicit []*simtime.Task, bufs ...*Buffer) []*simtime.Task {
	deps := make([]*simtime.Task, 0, len(explicit)+len(bufs)+1)
	if w := d.warm(); w != nil {
		deps = append(deps, w)
	}
	deps = append(deps, explicit...)
	for _, b := range bufs {
		if b != nil && b.ready != nil {
			deps = append(deps, b.ready)
		}
	}
	return deps
}

// Gemm computes dst = a×b on the device. In Tensor-Core mode the inputs are
// rounded through binary16 before the multiply (FP32 accumulation), exactly
// the numeric contract of cublasSgemmEx on Tensor Cores.
func (d *Device) Gemm(dst, a, b *Buffer, deps ...*simtime.Task) *simtime.Task {
	m, k, n := a.data.Rows, a.data.Cols, b.data.Cols
	var dur float64
	if d.tensorCores {
		ra := tensor.New(a.data.Rows, a.data.Cols)
		rb := tensor.New(b.data.Rows, b.data.Cols)
		tensor.RoundMatrixFloat16(ra, a.data)
		tensor.RoundMatrixFloat16(rb, b.data)
		tensor.Mul(dst.data, ra, rb)
		dur = d.model.GemmTime(m, k, n, true)
	} else {
		tensor.Mul(dst.data, a.data, b.data)
		dur = d.model.GemmTime(m, k, n, false)
	}
	kind := "gemm"
	if d.tensorCores {
		kind = "gemm.tc"
	}
	t := d.eng.Schedule(d.compute, kind, fmt.Sprintf("GEMM %dx%dx%d", m, k, n), dur, d.kernelDeps(deps, a, b)...)
	d.prof.record(kind, dur, 0)
	dst.ready = t
	return t
}

// GemmAcc computes dst += a×b (beta = 1).
func (d *Device) GemmAcc(dst, a, b *Buffer, deps ...*simtime.Task) *simtime.Task {
	m, k, n := a.data.Rows, a.data.Cols, b.data.Cols
	var dur float64
	if d.tensorCores {
		ra := tensor.New(a.data.Rows, a.data.Cols)
		rb := tensor.New(b.data.Rows, b.data.Cols)
		tensor.RoundMatrixFloat16(ra, a.data)
		tensor.RoundMatrixFloat16(rb, b.data)
		tensor.Gemm(dst.data, ra, rb, 1, 1)
		dur = d.model.GemmTime(m, k, n, true)
	} else {
		tensor.Gemm(dst.data, a.data, b.data, 1, 1)
		dur = d.model.GemmTime(m, k, n, false)
	}
	kind := "gemm"
	if d.tensorCores {
		kind = "gemm.tc"
	}
	t := d.eng.Schedule(d.compute, kind, fmt.Sprintf("GEMM+ %dx%dx%d", m, k, n), dur, d.kernelDeps(deps, dst, a, b)...)
	d.prof.record(kind, dur, 0)
	dst.ready = t
	return t
}

func (d *Device) elementwise(kind, name string, dst *Buffer, bytes int, explicit []*simtime.Task, srcs ...*Buffer) *simtime.Task {
	dur := d.model.ElemwiseTime(bytes)
	t := d.eng.Schedule(d.compute, kind, name, dur, d.kernelDeps(explicit, srcs...)...)
	d.prof.record(kind, dur, 0)
	dst.ready = t
	return t
}

// Add computes dst = a + b element-wise on the device.
func (d *Device) Add(dst, a, b *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.Add(dst.data, a.data, b.data)
	return d.elementwise("elem", "add", dst, 3*dst.Bytes(), deps, a, b)
}

// Sub computes dst = a - b element-wise on the device.
func (d *Device) Sub(dst, a, b *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.Sub(dst.data, a.data, b.data)
	return d.elementwise("elem", "sub", dst, 3*dst.Bytes(), deps, a, b)
}

// Scale computes dst = alpha*a on the device.
func (d *Device) Scale(dst, a *Buffer, alpha float32, deps ...*simtime.Task) *simtime.Task {
	tensor.Scale(dst.data, a.data, alpha)
	return d.elementwise("elem", "scale", dst, 2*dst.Bytes(), deps, a)
}

// AXPY computes dst += alpha*a on the device.
func (d *Device) AXPY(dst *Buffer, alpha float32, a *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.AXPY(dst.data, alpha, a.data)
	return d.elementwise("elem", "axpy", dst, 3*dst.Bytes(), deps, dst, a)
}

// Hadamard computes dst = a ⊙ b on the device (the paper's CNN
// point-to-point multiplication, §7.2).
func (d *Device) Hadamard(dst, a, b *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.Hadamard(dst.data, a.data, b.data)
	return d.elementwise("elem", "hadamard", dst, 3*dst.Bytes(), deps, a, b)
}

// Im2Col lowers a batch of images into the patch matrix on the device.
// The destination buffer must have shape (batch·patches)×(patchSize).
func (d *Device) Im2Col(dst, src *Buffer, shape tensor.ConvShape, deps ...*simtime.Task) *simtime.Task {
	lowered := tensor.Im2Col(src.data, shape)
	if !lowered.SameShape(dst.data) {
		panic(fmt.Sprintf("gpu: Im2Col dst %dx%d, want %dx%d", dst.data.Rows, dst.data.Cols, lowered.Rows, lowered.Cols))
	}
	dst.data.CopyFrom(lowered)
	// im2col reads each input element up to KH*KW times; charge the write
	// volume (dominant for stride 1).
	return d.elementwise("im2col", "im2col", dst, 2*dst.Bytes(), deps, src)
}

// PiecewiseActivation applies the paper's Eq. (9) activation
// f(x) = 0 (x<-½), x+½ (|x|≤½), 1 (x>½) on the device.
func (d *Device) PiecewiseActivation(dst, a *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.Apply(dst.data, a.data, PiecewiseLinear)
	return d.elementwise("activation", "piecewise", dst, 2*dst.Bytes(), deps, a)
}

// ReLU applies max(0,x) on the device.
func (d *Device) ReLU(dst, a *Buffer, deps ...*simtime.Task) *simtime.Task {
	tensor.Apply(dst.data, a.data, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
	return d.elementwise("activation", "relu", dst, 2*dst.Bytes(), deps, a)
}

// Rand fills the buffer with uniform [0,1) values on the device (cuRAND
// analogue); fill is a host-side generator used for the real values.
func (d *Device) Rand(dst *Buffer, fill func(*tensor.Matrix), deps ...*simtime.Task) *simtime.Task {
	fill(dst.data)
	dur := d.model.RandTime(dst.data.Rows * dst.data.Cols)
	t := d.eng.Schedule(d.compute, "curand", fmt.Sprintf("cuRAND %d", dst.data.Rows*dst.data.Cols), dur, d.kernelDeps(deps)...)
	d.prof.record("curand", dur, 0)
	dst.ready = t
	return t
}

// PiecewiseLinear is Eq. (9) of the paper, the MPC-friendly activation used
// instead of sigmoid/softmax.
func PiecewiseLinear(x float32) float32 {
	switch {
	case x < -0.5:
		return 0
	case x > 0.5:
		return 1
	default:
		return x + 0.5
	}
}

// PiecewiseLinearDeriv is the derivative of Eq. (9): 1 inside (-½,½), else 0.
func PiecewiseLinearDeriv(x float32) float32 {
	if x > -0.5 && x < 0.5 {
		return 1
	}
	return 0
}
