package gpu

import (
	"errors"
	"math"
	"testing"

	"parsecureml/internal/hw"
	"parsecureml/internal/rng"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

func newTestDevice() (*Device, *simtime.Engine) {
	eng := simtime.NewEngine()
	return New("gpu0", hw.Paper(), eng), eng
}

func TestH2DGemmD2HCorrectness(t *testing.T) {
	d, _ := newTestDevice()
	p := rng.NewPool(1)
	a := p.NewUniform(33, 17, -1, 1)
	b := p.NewUniform(17, 29, -1, 1)

	da, _, err := d.H2D(a)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := d.H2D(b)
	if err != nil {
		t.Fatal(err)
	}
	dc := d.MustAlloc(33, 29)
	d.Gemm(dc, da, db)
	got, _ := d.D2H(dc)
	want := tensor.MulNaive(a, b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("device GEMM wrong by %v", got.MaxAbsDiff(want))
	}
}

func TestTimelineOrdering(t *testing.T) {
	d, eng := newTestDevice()
	a := tensor.New(256, 256)
	da, th2d, _ := d.H2D(a)
	db := d.MustAlloc(256, 256)
	tk := d.Gemm(db, da, da)
	if tk.Start < th2d.End {
		t.Fatalf("kernel started %v before its input transfer finished %v", tk.Start, th2d.End)
	}
	_, td2h := d.D2H(db)
	if td2h.Start < tk.End {
		t.Fatal("D2H started before the kernel finished")
	}
	if eng.Makespan() < th2d.End+tk.Duration() {
		t.Fatal("makespan inconsistent")
	}
}

func TestWarmupChargedOnce(t *testing.T) {
	d, _ := newTestDevice()
	a := d.MustAlloc(8, 8)
	b := d.MustAlloc(8, 8)
	d.Add(b, a, a)
	d.Add(b, a, a)
	rows := d.Profiler().Rows()
	for _, r := range rows {
		if r.Kind == "warmup" && r.Calls != 1 {
			t.Fatalf("warm-up charged %d times", r.Calls)
		}
	}
	if d.Profiler().Share("warmup") == 0 {
		t.Fatal("warm-up never charged")
	}
}

func TestTensorCoreNumericContract(t *testing.T) {
	d, _ := newTestDevice()
	p := rng.NewPool(2)
	a := p.NewUniform(64, 64, -1, 1)
	b := p.NewUniform(64, 64, -1, 1)
	da, _, _ := d.H2D(a)
	db, _, _ := d.H2D(b)
	dc := d.MustAlloc(64, 64)

	d.EnableTensorCores(true)
	d.Gemm(dc, da, db)
	gotTC, _ := d.D2H(dc)

	// Oracle: round inputs to f16, multiply in f32.
	ra, rb := tensor.New(64, 64), tensor.New(64, 64)
	tensor.RoundMatrixFloat16(ra, a)
	tensor.RoundMatrixFloat16(rb, b)
	want := tensor.MulNaive(ra, rb)
	if !gotTC.ApproxEqual(want, 1e-3) {
		t.Fatalf("tensor-core GEMM numeric contract violated: %v", gotTC.MaxAbsDiff(want))
	}

	// The rounding must actually change something vs full FP32 on generic
	// data, and the error must stay small.
	fp32 := tensor.MulNaive(a, b)
	diff := gotTC.MaxAbsDiff(fp32)
	if diff == 0 {
		t.Fatal("tensor-core result identical to FP32 — rounding not applied")
	}
	if diff > 0.5 {
		t.Fatalf("tensor-core error too large: %v", diff)
	}
}

func TestTensorCoreFasterForLargeGemm(t *testing.T) {
	dTC, _ := newTestDevice()
	dTC.EnableTensorCores(true)
	dFP, _ := newTestDevice()

	a := tensor.New(2048, 2048)
	run := func(d *Device) float64 {
		da, _, _ := d.H2D(a)
		dc := d.MustAlloc(2048, 2048)
		k := d.Gemm(dc, da, da)
		return k.Duration()
	}
	tc, fp := run(dTC), run(dFP)
	if tc >= fp {
		t.Fatalf("tensor-core kernel (%v) not faster than FP32 (%v) at 2048³", tc, fp)
	}
}

func TestElementwiseKernels(t *testing.T) {
	d, _ := newTestDevice()
	a := tensor.FromSlice(1, 4, []float32{1, -2, 3, -4})
	b := tensor.FromSlice(1, 4, []float32{10, 20, 30, 40})
	da, _, _ := d.H2D(a)
	db, _, _ := d.H2D(b)
	dc := d.MustAlloc(1, 4)

	d.Add(dc, da, db)
	if got, _ := d.D2H(dc); got.At(0, 0) != 11 {
		t.Fatalf("Add: %v", got)
	}
	d.Sub(dc, db, da)
	if got, _ := d.D2H(dc); got.At(0, 3) != 44 {
		t.Fatalf("Sub: %v", got)
	}
	d.Scale(dc, da, -1)
	if got, _ := d.D2H(dc); got.At(0, 1) != 2 {
		t.Fatalf("Scale: %v", got)
	}
	d.Hadamard(dc, da, db)
	if got, _ := d.D2H(dc); got.At(0, 2) != 90 {
		t.Fatalf("Hadamard: %v", got)
	}
	d.AXPY(dc, 1, da) // dc = hadamard + a
	if got, _ := d.D2H(dc); got.At(0, 0) != 11 {
		t.Fatalf("AXPY: %v", got)
	}
	d.ReLU(dc, da)
	if got, _ := d.D2H(dc); got.At(0, 1) != 0 || got.At(0, 2) != 3 {
		t.Fatalf("ReLU: %v", got)
	}
	d.PiecewiseActivation(dc, da)
	if got, _ := d.D2H(dc); got.At(0, 0) != 1 || got.At(0, 1) != 0 {
		t.Fatalf("Piecewise: %v", got)
	}
}

func TestPiecewiseLinearFunction(t *testing.T) {
	cases := []struct{ x, want float32 }{
		{-10, 0}, {-0.51, 0}, {-0.5, 0}, {-0.25, 0.25}, {0, 0.5}, {0.25, 0.75}, {0.5, 1}, {3, 1},
	}
	for _, c := range cases {
		if got := PiecewiseLinear(c.x); math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("f(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if PiecewiseLinearDeriv(0) != 1 || PiecewiseLinearDeriv(0.6) != 0 || PiecewiseLinearDeriv(-0.6) != 0 {
		t.Fatal("derivative wrong")
	}
}

func TestMemoryAccounting(t *testing.T) {
	d, _ := newTestDevice()
	d.SetMemCapacity(100)
	b1, err := d.Alloc(5, 5) // 100 bytes
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 100 {
		t.Fatalf("MemUsed = %d", d.MemUsed())
	}
	if _, err := d.Alloc(1, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	d.Free(b1)
	if d.MemUsed() != 0 {
		t.Fatalf("MemUsed after free = %d", d.MemUsed())
	}
	if _, err := d.Alloc(5, 5); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d, _ := newTestDevice()
	b := d.MustAlloc(2, 2)
	d.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Free(b)
}

func TestH2DRowsChunking(t *testing.T) {
	d, _ := newTestDevice()
	p := rng.NewPool(3)
	host := p.NewUniform(100, 8, 0, 1)
	buf := d.MustAlloc(100, 8)
	t1 := d.H2DRows(buf, host, 0, 50)
	t2 := d.H2DRows(buf, host, 50, 100)
	if t2.Start < t1.End {
		t.Fatal("chunked copies must serialize on the H2D channel")
	}
	got, _ := d.D2H(buf)
	if !got.Equal(host) {
		t.Fatal("chunked copy corrupted data")
	}
	// Each chunk charges half the bytes.
	if t1.Duration() <= 0 || math.Abs(t1.Duration()-t2.Duration()) > 1e-12 {
		t.Fatalf("chunk durations %v vs %v", t1.Duration(), t2.Duration())
	}
}

func TestH2DOverlapWithCompute(t *testing.T) {
	// Fig. 5 in miniature: a kernel on buffer A may overlap the H2D of B.
	d, _ := newTestDevice()
	a := tensor.New(512, 512)
	da, _, _ := d.H2D(a)
	dc := d.MustAlloc(512, 512)
	k := d.Gemm(dc, da, da)
	b := tensor.New(2048, 2048) // big transfer
	_, tb, _ := d.H2D(b)
	if tb.Start >= k.End {
		t.Fatalf("independent H2D (start %v) must overlap the kernel (end %v)", tb.Start, k.End)
	}
}

func TestIm2ColKernel(t *testing.T) {
	d, _ := newTestDevice()
	p := rng.NewPool(4)
	shape := tensor.NewConvShape(8, 8, 3, 3, 1, 0)
	host := p.NewUniform(2, 64, -1, 1)
	src, _, _ := d.H2D(host)
	dst := d.MustAlloc(2*shape.Patches(), shape.PatchSize())
	d.Im2Col(dst, src, shape)
	got, _ := d.D2H(dst)
	if !got.Equal(tensor.Im2Col(host, shape)) {
		t.Fatal("device im2col differs from host im2col")
	}
}

func TestProfilerShares(t *testing.T) {
	d, _ := newTestDevice()
	a := tensor.New(1024, 1024)
	da, _, _ := d.H2D(a)
	dc := d.MustAlloc(1024, 1024)
	d.Gemm(dc, da, da)
	d.D2H(dc)
	prof := d.Profiler()
	if prof.Share("gemm") <= 0 {
		t.Fatal("gemm share missing")
	}
	sum := prof.Share("gemm", "h2d", "d2h", "warmup")
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("profiler shares sum to %v", sum)
	}
	if s := prof.String(); len(s) == 0 {
		t.Fatal("empty profiler table")
	}
	prof.Reset()
	if prof.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGemmAcc(t *testing.T) {
	d, _ := newTestDevice()
	a := tensor.FromSlice(1, 1, []float32{3})
	b := tensor.FromSlice(1, 1, []float32{4})
	da, _, _ := d.H2D(a)
	db, _, _ := d.H2D(b)
	dc := d.MustAlloc(1, 1)
	d.Gemm(dc, da, db)    // 12
	d.GemmAcc(dc, da, db) // 24
	got, _ := d.D2H(dc)
	if got.At(0, 0) != 24 {
		t.Fatalf("GemmAcc: %v", got.At(0, 0))
	}
}

func TestDeviceRand(t *testing.T) {
	d, _ := newTestDevice()
	p := rng.NewPool(9)
	buf := d.MustAlloc(64, 64)
	d.Rand(buf, func(m *tensor.Matrix) { p.FillUniform(m, 0, 1) })
	host, _ := d.D2H(buf)
	for _, v := range host.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("rand value %v", v)
		}
	}
	if d.Profiler().Share("curand") <= 0 {
		t.Fatal("curand not profiled")
	}
}

func BenchmarkDeviceGemm1024(b *testing.B) {
	d, _ := newTestDevice()
	a := tensor.New(1024, 1024)
	da, _, _ := d.H2D(a)
	dc := d.MustAlloc(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Gemm(dc, da, da)
	}
}
