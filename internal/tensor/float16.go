package tensor

import "math"

// IEEE 754 binary16 conversion, used to emulate Tensor-Core GEMM: Tensor
// Cores multiply FP16 inputs and accumulate in FP32 (paper §5.2, Fig. 9),
// so the simulated tensor-core kernel rounds its inputs through binary16
// before multiplying. Round-to-nearest-even, with proper handling of
// subnormals, infinities and NaN.

// Float32ToFloat16Bits converts f to its nearest binary16 representation.
func Float32ToFloat16Bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // Inf
	case exp > 142: // overflow (unbiased > 15) -> Inf
		return sign | 0x7c00
	case exp >= 113: // normal range (unbiased -14..15)
		h := sign | uint16((exp-112)<<10) | uint16(man>>13)
		// round to nearest even on the 13 dropped bits
		round := man & 0x1fff
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++ // carries propagate correctly into the exponent
		}
		return h
	case exp >= 103: // subnormal half: mantissa = round(M · 2^(exp-126))
		man |= 0x800000 // implicit leading 1
		shift := uint32(126 - exp)
		h := sign | uint16(man>>shift)
		dropped := man & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if dropped > half || (dropped == half && h&1 == 1) {
			h++ // may carry into the normal range, which is layout-contiguous
		}
		return h
	default: // underflow to zero
		return sign
	}
}

// Float16BitsToFloat32 expands a binary16 bit pattern to float32.
func Float16BitsToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf/NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7fc00000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		for man&0x400 == 0 {
			man <<= 1
			exp--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | (exp+113)<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}

// RoundFloat16 rounds f through binary16 precision and back.
func RoundFloat16(f float32) float32 {
	return Float16BitsToFloat32(Float32ToFloat16Bits(f))
}

// RoundMatrixFloat16 writes the binary16-rounded copy of a into dst
// (dst may alias a). This models loading an FP32 matrix into Tensor-Core
// input registers.
func RoundMatrixFloat16(dst, a *Matrix) {
	dst.mustSameShape(a, "RoundMatrixFloat16")
	if !ComputeEnabled() {
		return
	}
	parallelFor(len(a.Data), CacheLineFloats, func(lo, hi int) {
		da, dd := a.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = RoundFloat16(da[i])
		}
	})
}

// RoundMatrixFloat16InPlace rounds m through binary16 on the calling
// goroutine. The wire codec's "use what you ship" contract needs this on
// the serving hot path: a sender electing the FP16 format must round its
// retained share before encoding, and spawning parallelFor goroutines
// there would put allocations back on the 2 allocs/op request loop.
func RoundMatrixFloat16InPlace(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = RoundFloat16(v)
	}
}
