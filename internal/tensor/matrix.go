// Package tensor provides the dense and sparse matrix substrate used by
// every other component of the framework: row-major FP32 matrices, blocked
// parallel GEMM, cache-line-aware parallel element-wise kernels (paper
// §5.1), im2col lowering for convolutions, the CSR sparse format used by
// the compressed inter-node transmission (paper §4.4), and a compact binary
// codec for on-the-wire encoding.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major FP32 matrix. The zero value is an empty 0×0
// matrix. Data has length Rows*Cols; element (r,c) is Data[r*Cols+c].
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows×cols matrix. It panics if either dimension is
// negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	if !ComputeEnabled() {
		return &Matrix{Rows: rows, Cols: cols}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. It panics if the length does not match.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view (no copy) of row r.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy (shape-only when the source is shape-only).
func (m *Matrix) Clone() *Matrix {
	if m.shapeOnly() {
		return &Matrix{Rows: m.Rows, Cols: m.Cols}
	}
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src's contents into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// FillFunc sets element (r,c) to f(r,c).
func (m *Matrix) FillFunc(f func(r, c int) float32) {
	if m.shapeOnly() {
		return
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] = f(r, c)
		}
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) mustSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Bytes returns the logical payload size of the matrix in bytes (4 bytes
// per FP32 element), the quantity charged to PCIe and network models. It
// is shape-derived so dry-run (shape-only) matrices charge correctly.
func (m *Matrix) Bytes() int { return 4 * m.Rows * m.Cols }

// String formats small matrices fully and large ones by shape only.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(r, c))
		}
	}
	return s + "]"
}

// Equal reports exact element-wise equality (shapes included).
func (m *Matrix) Equal(o *Matrix) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between m
// and o. Shapes must match.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	m.mustSameShape(o, "MaxAbsDiff")
	var max float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(o.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// ApproxEqual reports whether all elements agree within tol.
func (m *Matrix) ApproxEqual(o *Matrix, tol float64) bool {
	return m.SameShape(o) && m.MaxAbsDiff(o) <= tol
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		a := math.Abs(float64(v))
		if a > max {
			max = a
		}
	}
	return max
}

// Sum returns the sum of all elements in float64 precision.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm in float64 precision.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// NNZ returns the number of non-zero elements.
func (m *Matrix) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of zero elements in [0,1]; an empty or
// shape-only matrix reports sparsity 1.
func (m *Matrix) Sparsity() float64 {
	if len(m.Data) == 0 {
		return 1
	}
	return 1 - float64(m.NNZ())/float64(len(m.Data))
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	if m.shapeOnly() {
		return &Matrix{Rows: m.Cols, Cols: m.Rows}
	}
	out := New(m.Cols, m.Rows)
	// Blocked transpose for cache friendliness.
	const bs = 32
	for rb := 0; rb < m.Rows; rb += bs {
		rmax := min(rb+bs, m.Rows)
		for cb := 0; cb < m.Cols; cb += bs {
			cmax := min(cb+bs, m.Cols)
			for r := rb; r < rmax; r++ {
				for c := cb; c < cmax; c++ {
					out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
				}
			}
		}
	}
	return out
}

// Reshape returns a view of m with new dimensions; rows*cols must equal the
// current element count. The returned matrix shares Data with m.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows*cols != m.Rows*m.Cols {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.Rows, m.Cols, rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: m.Data}
}

// SliceRows returns a view of rows [lo, hi) sharing storage with m.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %d rows", lo, hi, m.Rows))
	}
	if m.shapeOnly() {
		return &Matrix{Rows: hi - lo, Cols: m.Cols}
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// SliceRowsInto points view at rows [lo, hi) of m, sharing storage, and
// returns view. It is SliceRows without the header allocation: hot loops
// that re-slice per row band (the wire pipeline) keep one persistent view
// header and retarget it each band.
func (m *Matrix) SliceRowsInto(view *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %d rows", lo, hi, m.Rows))
	}
	view.Rows, view.Cols = hi-lo, m.Cols
	if m.shapeOnly() {
		view.Data = nil
		return view
	}
	view.Data = m.Data[lo*m.Cols : hi*m.Cols]
	return view
}

// ConcatRows stacks a and b vertically into a new matrix ([A ; B] in the
// paper's Eq. 8 notation). Column counts must match.
func ConcatRows(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	if out.shapeOnly() {
		return out
	}
	copy(out.Data, a.Data)
	copy(out.Data[a.Rows*a.Cols:], b.Data)
	return out
}

// ConcatCols places a and b side by side into a new matrix ([A | B] in the
// paper's Eq. 8 notation). Row counts must match.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	if out.shapeOnly() {
		return out
	}
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
