package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSparseMatrix(r *rand.Rand, rows, cols int, density float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		if r.Float64() < density {
			m.Data[i] = float32(r.NormFloat64())
		}
	}
	return m
}

func TestCSRRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, density := range []float64{0, 0.01, 0.25, 0.5, 1} {
		m := randomSparseMatrix(r, 17, 23, density)
		back := FromDense(m).ToDense()
		if !back.Equal(m) {
			t.Fatalf("CSR round trip failed at density %v", density)
		}
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(rows8, cols8 uint8, density float64) bool {
		rows, cols := int(rows8%30)+1, int(cols8%30)+1
		if density < 0 {
			density = -density
		}
		for density > 1 {
			density /= 2
		}
		m := randomSparseMatrix(r, rows, cols, density)
		c := FromDense(m)
		if c.NNZ() != m.NNZ() {
			return false
		}
		return c.ToDense().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRAddInto(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	base := randomMatrix(r, 9, 13)
	delta := randomSparseMatrix(r, 9, 13, 0.2)
	want := AddTo(base, delta)
	got := base.Clone()
	FromDense(delta).AddInto(got)
	if !got.Equal(want) {
		t.Fatal("AddInto differs from dense addition")
	}
}

func TestCSRBytesSmallerWhenSparse(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	sparse := randomSparseMatrix(r, 100, 100, 0.05)
	dense := randomSparseMatrix(r, 100, 100, 0.9)
	if FromDense(sparse).Bytes() >= sparse.Bytes() {
		t.Fatalf("CSR of 5%%-dense matrix not smaller: %d vs %d", FromDense(sparse).Bytes(), sparse.Bytes())
	}
	if FromDense(dense).Bytes() <= dense.Bytes() {
		t.Fatalf("CSR of 90%%-dense matrix should be larger: %d vs %d", FromDense(dense).Bytes(), dense.Bytes())
	}
}

func TestSpMV(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 0, 2, 0, 3, 0})
	c := FromDense(m)
	x := []float32{1, 2, 3}
	dst := make([]float32, 2)
	c.SpMV(dst, x)
	if dst[0] != 7 || dst[1] != 6 {
		t.Fatalf("SpMV = %v", dst)
	}
}

func TestCodecDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	m := randomMatrix(r, 13, 7)
	buf := EncodeMatrix(nil, m)
	if len(buf) != EncodedSizeDense(13, 7) {
		t.Fatalf("encoded size %d, want %d", len(buf), EncodedSizeDense(13, 7))
	}
	got, n, err := DecodeMatrix(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !got.Equal(m) {
		t.Fatal("dense codec round trip failed")
	}
}

func TestCodecCSRRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	m := randomSparseMatrix(r, 31, 17, 0.1)
	c := FromDense(m)
	buf := EncodeCSR(nil, c)
	got, n, err := DecodeCSR(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !got.ToDense().Equal(m) {
		t.Fatal("CSR codec round trip failed")
	}
}

func TestCodecDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	m := randomMatrix(r, 3, 3)
	c := FromDense(randomSparseMatrix(r, 4, 4, 0.3))
	buf := EncodeMatrix(nil, m)
	buf = EncodeCSR(buf, c)

	d1, s1, n1, err := Decode(buf)
	if err != nil || d1 == nil || s1 != nil {
		t.Fatalf("first decode: %v %v %v", d1, s1, err)
	}
	if !d1.Equal(m) {
		t.Fatal("first payload mismatch")
	}
	d2, s2, n2, err := Decode(buf[n1:])
	if err != nil || d2 != nil || s2 == nil {
		t.Fatalf("second decode: %v %v %v", d2, s2, err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if !s2.ToDense().Equal(c.ToDense()) {
		t.Fatal("second payload mismatch")
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, _, err := Decode(nil); err == nil {
		t.Fatal("empty buffer must error")
	}
	if _, _, _, err := Decode([]byte{0xFF}); err == nil {
		t.Fatal("bad tag must error")
	}
	m := New(4, 4)
	buf := EncodeMatrix(nil, m)
	if _, _, err := DecodeMatrix(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated dense must error")
	}
	c := FromDense(FromSlice(1, 2, []float32{1, 0}))
	cb := EncodeCSR(nil, c)
	if _, _, err := DecodeCSR(cb[:len(cb)-1]); err == nil {
		t.Fatal("truncated CSR must error")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	f := func(rows8, cols8 uint8) bool {
		rows, cols := int(rows8%16)+1, int(cols8%16)+1
		m := randomSparseMatrix(r, rows, cols, 0.3)
		d, n, err := DecodeMatrix(EncodeMatrix(nil, m))
		if err != nil || n == 0 || !d.Equal(m) {
			return false
		}
		c, n2, err := DecodeCSR(EncodeCSR(nil, FromDense(m)))
		return err == nil && n2 > 0 && c.ToDense().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
