package tensor

import "fmt"

// GEMM kernels. Mul is the workhorse behind every triplet multiplication:
// a cache-blocked i-k-j loop parallelized over row bands. MulNaive is the
// obviously-correct reference oracle used by the tests.

func mustMulShapes(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Mul destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
}

// Mul computes dst = a × b using the parallel blocked kernel. dst must not
// alias a or b.
func Mul(dst, a, b *Matrix) {
	Gemm(dst, a, b, 1, 0)
}

// MulTo returns a newly allocated a × b.
func MulTo(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	Mul(dst, a, b)
	return dst
}

// Gemm computes dst = alpha·(a × b) + beta·dst. dst must not alias a or b.
// The i-k-j loop order streams rows of b while a row of dst stays hot in
// cache; parallelism is across bands of dst rows, so no two goroutines
// write the same row.
func Gemm(dst, a, b *Matrix, alpha, beta float32) {
	mustMulShapes(dst, a, b)
	if !ComputeEnabled() {
		return
	}
	k, cols := a.Cols, b.Cols
	parallelFor(a.Rows, 1, func(lo, hi int) {
		// Accumulate each destination row in float64: secret-shared
		// operands carry masks that inflate magnitudes, and FP32
		// accumulation error over long inner dimensions would rival the
		// gradient signal during secure training.
		acc := make([]float64, cols)
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			for j := range acc {
				acc[j] = 0
			}
			arow := a.Row(i)
			for p := 0; p < k; p++ {
				av := float64(alpha * arow[p])
				if av == 0 {
					continue
				}
				brow := b.Data[p*cols : (p+1)*cols]
				for j, bv := range brow {
					acc[j] += av * float64(bv)
				}
			}
			switch beta {
			case 0:
				for j := range drow {
					drow[j] = float32(acc[j])
				}
			case 1:
				for j := range drow {
					drow[j] += float32(acc[j])
				}
			default:
				for j := range drow {
					drow[j] = beta*drow[j] + float32(acc[j])
				}
			}
		}
	})
}

// MulNaive is the textbook triple loop, single-threaded, accumulating in
// float64. It is the correctness oracle for Mul and the GPU kernels.
func MulNaive(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	mustMulShapes(dst, a, b)
	if !ComputeEnabled() {
		return dst
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc float64
			for p := 0; p < a.Cols; p++ {
				acc += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			dst.Set(i, j, float32(acc))
		}
	}
	return dst
}

// MulABT computes dst = a × bᵀ without materializing the transpose; rows of
// a and rows of b are combined by inner products (cache-friendly for the
// backward pass dX = dY × Wᵀ).
func MulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MulABT inner dimension mismatch %dx%d * (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MulABT destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if !ComputeEnabled() {
		return
	}
	parallelFor(a.Rows, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var acc float64
				for p, av := range arow {
					acc += float64(av) * float64(brow[p])
				}
				drow[j] = float32(acc)
			}
		}
	})
}

// MulATB computes dst = aᵀ × b without materializing the transpose
// (the backward-pass weight gradient dW = Xᵀ × dY). Parallelism is across
// bands of dst rows (columns of a), so writes never race.
func MulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MulATB inner dimension mismatch (%dx%d)T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MulATB destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if !ComputeEnabled() {
		return
	}
	parallelFor(a.Cols, 1, func(lo, hi int) {
		acc := make([]float64, b.Cols)
		for i := lo; i < hi; i++ {
			for j := range acc {
				acc[j] = 0
			}
			for p := 0; p < a.Rows; p++ {
				av := float64(a.At(p, i))
				if av == 0 {
					continue
				}
				brow := b.Row(p)
				for j, bv := range brow {
					acc[j] += av * float64(bv)
				}
			}
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = float32(acc[j])
			}
		}
	})
}

// GemmFLOPs returns the floating-point operation count of an m×k × k×n
// multiplication (2·m·k·n), the quantity the hardware cost models charge.
func GemmFLOPs(m, k, n int) float64 {
	return 2 * float64(m) * float64(k) * float64(n)
}
