package tensor

import (
	"fmt"
	"sync"
)

// accPool recycles the float64 accumulator rows the GEMM kernels carry.
// The wire serving path calls Gemm per row band per request; allocating a
// fresh accumulator per worker per call is most of the kernels' steady-
// state garbage.
var accPool = sync.Pool{New: func() any { return new([]float64) }}

func getAcc(n int) *[]float64 {
	p := accPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putAcc(p *[]float64) { accPool.Put(p) }

// GEMM kernels. Mul is the workhorse behind every triplet multiplication:
// a cache-blocked i-k-j loop parallelized over row bands. MulNaive is the
// obviously-correct reference oracle used by the tests.

func mustMulShapes(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Mul destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
}

// Mul computes dst = a × b using the parallel blocked kernel. dst must not
// alias a or b.
func Mul(dst, a, b *Matrix) {
	Gemm(dst, a, b, 1, 0)
}

// MulTo returns a newly allocated a × b.
func MulTo(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	Mul(dst, a, b)
	return dst
}

// Gemm computes dst = alpha·(a × b) + beta·dst. dst must not alias a or b.
// The i-k-j loop order streams rows of b while a row of dst stays hot in
// cache; parallelism is across bands of dst rows, so no two goroutines
// write the same row.
// gemmSerialWork is the m·k·n multiply count below which Gemm runs
// single-threaded: goroutine fan-out costs more than the arithmetic for
// band-sized operands, and the wire serving hot path (many small per-band
// GEMMs per request) must not allocate a closure per call. Each dst row
// is accumulated independently, so the cutoff never changes results.
const gemmSerialWork = 1 << 16

func Gemm(dst, a, b *Matrix, alpha, beta float32) {
	mustMulShapes(dst, a, b)
	if !ComputeEnabled() {
		return
	}
	if a.Rows*a.Cols*b.Cols <= gemmSerialWork {
		gemmRows(dst, a, b, alpha, beta, 0, a.Rows)
		return
	}
	parallelFor(a.Rows, 1, func(lo, hi int) {
		gemmRows(dst, a, b, alpha, beta, lo, hi)
	})
}

// gemmRows runs the blocked i-k-j kernel over dst rows [lo, hi).
func gemmRows(dst, a, b *Matrix, alpha, beta float32, lo, hi int) {
	k, cols := a.Cols, b.Cols
	// Accumulate each destination row in float64: secret-shared
	// operands carry masks that inflate magnitudes, and FP32
	// accumulation error over long inner dimensions would rival the
	// gradient signal during secure training.
	accp := getAcc(cols)
	defer putAcc(accp)
	acc := *accp
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range acc {
			acc[j] = 0
		}
		arow := a.Row(i)
		for p := 0; p < k; p++ {
			av := float64(alpha * arow[p])
			if av == 0 {
				continue
			}
			brow := b.Data[p*cols : (p+1)*cols]
			for j, bv := range brow {
				acc[j] += av * float64(bv)
			}
		}
		switch beta {
		case 0:
			for j := range drow {
				drow[j] = float32(acc[j])
			}
		case 1:
			for j := range drow {
				drow[j] += float32(acc[j])
			}
		default:
			for j := range drow {
				drow[j] = beta*drow[j] + float32(acc[j])
			}
		}
	}
}

// MulNaive is the textbook triple loop, single-threaded, accumulating in
// float64. It is the correctness oracle for Mul and the GPU kernels.
func MulNaive(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	mustMulShapes(dst, a, b)
	if !ComputeEnabled() {
		return dst
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc float64
			for p := 0; p < a.Cols; p++ {
				acc += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			dst.Set(i, j, float32(acc))
		}
	}
	return dst
}

// abtBlock is the panel height of MulABT: rows of a combined against one
// streamed row of b before moving on, so the b row is loaded from memory
// once per panel instead of once per output row.
const abtBlock = 8

// MulABT computes dst = a × bᵀ without materializing the transpose; rows
// of a and rows of b are combined by float64 inner products. Rows of a are
// processed in cache-blocked panels of abtBlock (like Gemm's banding): the
// unblocked loop streamed the whole of b through cache once per output
// row, which made the backward pass dX = dY × Wᵀ memory-bound on
// realistically sized weight matrices.
func MulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MulABT inner dimension mismatch %dx%d * (%dx%d)T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MulABT destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if !ComputeEnabled() {
		return
	}
	parallelFor(a.Rows, 1, func(lo, hi int) {
		for ib := lo; ib < hi; ib += abtBlock {
			imax := min(ib+abtBlock, hi)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				for i := ib; i < imax; i++ {
					arow := a.Row(i)
					var acc float64
					for p, bv := range brow {
						acc += float64(arow[p]) * float64(bv)
					}
					dst.Data[i*dst.Cols+j] = float32(acc)
				}
			}
		}
	})
}

// MulATB computes dst = aᵀ × b without materializing the transpose
// (the backward-pass weight gradient dW = Xᵀ × dY). Parallelism is across
// bands of dst rows (columns of a), so writes never race.
func MulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MulATB inner dimension mismatch (%dx%d)T * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MulATB destination %dx%d for %dx%d result", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	if !ComputeEnabled() {
		return
	}
	parallelFor(a.Cols, 1, func(lo, hi int) {
		accp := getAcc(b.Cols)
		defer putAcc(accp)
		acc := *accp
		for i := lo; i < hi; i++ {
			for j := range acc {
				acc[j] = 0
			}
			for p := 0; p < a.Rows; p++ {
				av := float64(a.At(p, i))
				if av == 0 {
					continue
				}
				brow := b.Row(p)
				for j, bv := range brow {
					acc[j] += av * float64(bv)
				}
			}
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = float32(acc[j])
			}
		}
	})
}

// GemmFLOPs returns the floating-point operation count of an m×k × k×n
// multiplication (2·m·k·n), the quantity the hardware cost models charge.
func GemmFLOPs(m, k, n int) float64 {
	return 2 * float64(m) * float64(k) * float64(n)
}
