package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	cases := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {5, 1, 5}, {16, 16, 16},
		{17, 33, 9}, {64, 128, 32}, {100, 7, 100}, {1, 200, 1},
	}
	for _, c := range cases {
		a := randomMatrix(r, c[0], c[1])
		b := randomMatrix(r, c[1], c[2])
		want := MulNaive(a, b)
		got := MulTo(a, b)
		if !got.ApproxEqual(want, 1e-3*float64(c[1])) {
			t.Fatalf("Mul %v: max diff %v", c, got.MaxAbsDiff(want))
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomMatrix(r, 9, 9)
	id := New(9, 9)
	for i := 0; i < 9; i++ {
		id.Set(i, i, 1)
	}
	if !MulTo(a, id).ApproxEqual(a, 0) {
		t.Fatal("A*I != A")
	}
	if !MulTo(id, a).ApproxEqual(a, 0) {
		t.Fatal("I*A != A")
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	a := randomMatrix(r, 8, 6)
	b := randomMatrix(r, 6, 10)
	c0 := randomMatrix(r, 8, 10)

	// dst = 2*A*B + 3*dst
	dst := c0.Clone()
	Gemm(dst, a, b, 2, 3)
	ab := MulNaive(a, b)
	want := New(8, 10)
	for i := range want.Data {
		want.Data[i] = 2*ab.Data[i] + 3*c0.Data[i]
	}
	if !dst.ApproxEqual(want, 1e-3) {
		t.Fatalf("Gemm(2,3) max diff %v", dst.MaxAbsDiff(want))
	}

	// beta=1 accumulates
	dst = c0.Clone()
	Gemm(dst, a, b, 1, 1)
	for i := range want.Data {
		want.Data[i] = ab.Data[i] + c0.Data[i]
	}
	if !dst.ApproxEqual(want, 1e-3) {
		t.Fatalf("Gemm(1,1) max diff %v", dst.MaxAbsDiff(want))
	}
}

// Property: matrix multiplication distributes over addition,
// (A0+A1)×B == A0×B + A1×B — the identity underlying additive secret
// sharing of triplet multiplications.
func TestMulDistributesOverAddition(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(m8, k8, n8 uint8) bool {
		m, k, n := int(m8%12)+1, int(k8%12)+1, int(n8%12)+1
		a0 := randomMatrix(r, m, k)
		a1 := randomMatrix(r, m, k)
		b := randomMatrix(r, k, n)
		left := MulTo(AddTo(a0, a1), b)
		right := AddTo(MulTo(a0, b), MulTo(a1, b))
		return left.ApproxEqual(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulABT(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	// Sizes straddle abtBlock boundaries: below, exact multiple, above,
	// and a parallel-band case.
	cases := [][3]int{{7, 5, 11}, {8, 8, 16}, {17, 9, 33}, {70, 41, 23}}
	for _, c := range cases {
		a := randomMatrix(r, c[0], c[2])
		b := randomMatrix(r, c[1], c[2])
		got := New(c[0], c[1])
		MulABT(got, a, b)
		want := MulNaive(a, b.Transpose())
		if !got.ApproxEqual(want, 1e-3) {
			t.Fatalf("MulABT %v max diff %v", c, got.MaxAbsDiff(want))
		}
	}
}

// mulABTUnblocked is the pre-optimization loop (one full sweep of b per
// output row), kept as the benchmark baseline for the blocked kernel.
func mulABTUnblocked(dst, a, b *Matrix) {
	parallelFor(a.Rows, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var acc float64
				for p, av := range arow {
					acc += float64(av) * float64(brow[p])
				}
				drow[j] = float32(acc)
			}
		}
	})
}

// Backward-pass shape dX = dY × Wᵀ: batch×out times (in×out)T.
func benchmarkMulABT(b *testing.B, fn func(dst, x, y *Matrix), batch, in, out int) {
	r := rand.New(rand.NewSource(2))
	dy := randomMatrix(r, batch, out)
	w := randomMatrix(r, in, out)
	dst := New(batch, in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, dy, w)
	}
	b.ReportMetric(GemmFLOPs(batch, out, in)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMulABTBackward(b *testing.B) {
	b.Run("blocked", func(b *testing.B) { benchmarkMulABT(b, MulABT, 128, 1024, 512) })
	b.Run("unblocked", func(b *testing.B) { benchmarkMulABT(b, mulABTUnblocked, 128, 1024, 512) })
}

func TestMulATB(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	a := randomMatrix(r, 11, 7)
	b := randomMatrix(r, 11, 5)
	got := New(7, 5)
	MulATB(got, a, b)
	want := MulNaive(a.Transpose(), b)
	if !got.ApproxEqual(want, 1e-3) {
		t.Fatalf("MulATB max diff %v", got.MaxAbsDiff(want))
	}
}

func TestMulShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { MulTo(New(2, 3), New(4, 5)) },
		func() { Mul(New(3, 3), New(2, 3), New(3, 2)) },
		func() { MulABT(New(2, 2), New(2, 3), New(2, 4)) },
		func() { MulATB(New(2, 2), New(3, 2), New(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected shape panic")
				}
			}()
			fn()
		}()
	}
}

func TestGemmFLOPs(t *testing.T) {
	if got := GemmFLOPs(10, 20, 30); got != 12000 {
		t.Fatalf("GemmFLOPs = %v", got)
	}
}

func TestMulSingleWorkerEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	a := randomMatrix(r, 33, 47)
	b := randomMatrix(r, 47, 29)
	par := MulTo(a, b)
	prev := SetMaxWorkers(1)
	ser := MulTo(a, b)
	SetMaxWorkers(prev)
	if !par.Equal(ser) {
		t.Fatal("parallel and serial GEMM disagree bit-for-bit")
	}
}

func benchmarkMul(b *testing.B, n int) {
	r := rand.New(rand.NewSource(1))
	x := randomMatrix(r, n, n)
	y := randomMatrix(r, n, n)
	dst := New(n, n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, x, y)
	}
	b.ReportMetric(GemmFLOPs(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkMul128(b *testing.B)  { benchmarkMul(b, 128) }
func BenchmarkMul512(b *testing.B)  { benchmarkMul(b, 512) }
func BenchmarkMul1024(b *testing.B) { benchmarkMul(b, 1024) }

func BenchmarkAdd1M(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomMatrix(r, 1024, 1024)
	y := randomMatrix(r, 1024, 1024)
	dst := New(1024, 1024)
	b.SetBytes(int64(12 * 1024 * 1024))
	for i := 0; i < b.N; i++ {
		Add(dst, x, y)
	}
}
