package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary wire codec for dense, FP16-dense and CSR matrices. The
// compressed-transmission experiments (Fig. 16) measure real encoded byte
// counts, so the codec is a compact little-endian format rather than gob:
//
//	dense: 'D' u32(rows) u32(cols) rows*cols × f32
//	fp16:  'H' u32(rows) u32(cols) rows*cols × binary16
//	csr:   'S' u32(rows) u32(cols) u32(nnz) (rows+1) × u32 rowptr,
//	       nnz × u32 colidx, nnz × f32 values
//
// Every format is self-describing through its leading tag, so a receiver
// decodes whatever arrives (DecodeAnyInto) and codec choice is a sender-
// local decision — the property the adaptive wire-compression layer
// (internal/mpc/wirecodec.go) builds on. FP16 is lossy: the sender must
// round its own retained copy identically (see RoundMatrixFloat16InPlace)
// or the two parties desync.

var (
	// ErrCodecShort indicates a truncated buffer.
	ErrCodecShort = errors.New("tensor: codec: buffer too short")
	// ErrCodecTag indicates an unknown leading type tag.
	ErrCodecTag = errors.New("tensor: codec: unknown type tag")
)

const (
	tagDense = 'D'
	tagCSR   = 'S'
	tagFP16  = 'H'
)

// EncodedSizeDense returns the wire size of a dense rows×cols matrix.
func EncodedSizeDense(rows, cols int) int { return 1 + 8 + 4*rows*cols }

// EncodedSizeFP16 returns the wire size of an FP16-dense rows×cols matrix.
func EncodedSizeFP16(rows, cols int) int { return 1 + 8 + 2*rows*cols }

// EncodedSizeCSR returns the wire size of a rows×cols CSR frame carrying
// nnz stored values: tag + header, (rows+1) row pointers, and an (index,
// value) pair per non-zero. Selectors compare this against
// EncodedSizeDense before electing the sparse format — at small matrices
// the row-pointer overhead makes CSR the larger encoding even above the
// 75 % sparsity threshold.
func EncodedSizeCSR(rows, cols, nnz int) int { return 13 + 4*(rows+1) + 8*nnz }

// EncodedSize returns the wire size of m, so frame buffers can be
// preallocated at exact capacity instead of append-grown element by
// element (which reallocates a multi-MB frame a dozen times over).
func EncodedSize(m *Matrix) int { return EncodedSizeDense(m.Rows, m.Cols) }

// EncodeMatrix appends the wire form of m to buf and returns the result.
// Preallocate with EncodedSize to avoid growth copies on large matrices.
func EncodeMatrix(buf []byte, m *Matrix) []byte {
	if m.shapeOnly() {
		panic("tensor: EncodeMatrix on a shape-only (dry-run) matrix")
	}
	buf = append(buf, tagDense)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	// Bulk-extend once, then write in place: per-element append pays a
	// capacity check (and amortized copies) per value.
	need := 4 * len(m.Data)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	out := buf[off:]
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return buf
}

// EncodeMatrixFP16 appends the binary16 wire form of m to buf and returns
// the result — half the dense payload. Conversion is round-to-nearest-even
// (see float16.go); values beyond the binary16 range encode as ±Inf, so
// senders gate on MaxAbs before electing this format. Like EncodeMatrix,
// the loop writes into a bulk-extended tail in place.
func EncodeMatrixFP16(buf []byte, m *Matrix) []byte {
	if m.shapeOnly() {
		panic("tensor: EncodeMatrixFP16 on a shape-only (dry-run) matrix")
	}
	buf = append(buf, tagFP16)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	need := 2 * len(m.Data)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	out := buf[off:]
	for i, v := range m.Data {
		binary.LittleEndian.PutUint16(out[2*i:], Float32ToFloat16Bits(v))
	}
	return buf
}

// AppendMatrixCSR appends the CSR wire form of the dense matrix m to buf
// and returns the result, byte-identical to EncodeCSR(buf, FromDense(m))
// but without materializing a CSR: one counting pass sizes the frame, a
// second pass streams row pointers, column indices and values directly
// into the bulk-extended tail. This keeps the serving hot path's sparse
// sends allocation-free (modulo first-use buffer growth).
func AppendMatrixCSR(buf []byte, m *Matrix) []byte {
	if m.shapeOnly() {
		panic("tensor: AppendMatrixCSR on a shape-only (dry-run) matrix")
	}
	nnz := m.NNZ()
	need := EncodedSizeCSR(m.Rows, m.Cols, nnz)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	out := buf[off:]
	out[0] = tagCSR
	binary.LittleEndian.PutUint32(out[1:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(out[5:], uint32(m.Cols))
	binary.LittleEndian.PutUint32(out[9:], uint32(nnz))
	// Section offsets within the frame; filled in one scan.
	rowPtrOff := 13
	colOff := rowPtrOff + 4*(m.Rows+1)
	valOff := colOff + 4*nnz
	binary.LittleEndian.PutUint32(out[rowPtrOff:], 0)
	p := 0
	for r := 0; r < m.Rows; r++ {
		for j, v := range m.Row(r) {
			if v != 0 {
				binary.LittleEndian.PutUint32(out[colOff+4*p:], uint32(j))
				binary.LittleEndian.PutUint32(out[valOff+4*p:], math.Float32bits(v))
				p++
			}
		}
		binary.LittleEndian.PutUint32(out[rowPtrOff+4*(r+1):], uint32(p))
	}
	return buf
}

// DecodeMatrixInto decodes a dense matrix of dst's exact shape from buf
// into dst's existing storage, returning the bytes consumed. This is the
// steady-state receive path: a serving loop that knows the session
// geometry reuses one destination per stream instead of allocating a
// matrix per frame. A shape mismatch is an error (a hostile or desynced
// frame), not a panic.
func DecodeMatrixInto(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 9 || buf[0] != tagDense {
		return 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	if rows != dst.Rows || cols != dst.Cols {
		return 0, fmt.Errorf("tensor: codec: frame is %dx%d, destination %dx%d", rows, cols, dst.Rows, dst.Cols)
	}
	need := EncodedSizeDense(rows, cols)
	if len(buf) < need {
		return 0, ErrCodecShort
	}
	if dst.shapeOnly() {
		return need, nil
	}
	payload := buf[9:need]
	for i := range dst.Data {
		dst.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return need, nil
}

// DecodeMatrixFP16Into decodes an FP16-dense frame of dst's exact shape
// into dst's existing storage, returning the bytes consumed — the lossy
// half of the steady-state receive path, same contract as DecodeMatrixInto.
func DecodeMatrixFP16Into(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 9 || buf[0] != tagFP16 {
		return 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	if rows != dst.Rows || cols != dst.Cols {
		return 0, fmt.Errorf("tensor: codec: frame is %dx%d, destination %dx%d", rows, cols, dst.Rows, dst.Cols)
	}
	need := EncodedSizeFP16(rows, cols)
	if len(buf) < need {
		return 0, ErrCodecShort
	}
	if dst.shapeOnly() {
		return need, nil
	}
	payload := buf[9:need]
	for i := range dst.Data {
		dst.Data[i] = Float16BitsToFloat32(binary.LittleEndian.Uint16(payload[2*i:]))
	}
	return need, nil
}

// DecodeCSRInto decodes a CSR frame of dst's exact shape by zeroing dst
// and scattering the stored values into it, returning the bytes consumed.
// Structural validation happens on the fly — row pointers monotone within
// [0, nnz] and bracketed by 0/nnz, nnz bounded by rows·cols, column
// indices within [0, cols) — with no CSR struct and no allocation, so the
// banded exchange can receive sparse frames at steady state. dst is
// clobbered even on a validation error partway through the scatter.
func DecodeCSRInto(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 13 || buf[0] != tagCSR {
		return 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	nnz := int(binary.LittleEndian.Uint32(buf[9:]))
	if rows != dst.Rows || cols != dst.Cols {
		return 0, fmt.Errorf("tensor: codec: frame is %dx%d, destination %dx%d", rows, cols, dst.Rows, dst.Cols)
	}
	if nnz > rows*cols {
		return 0, fmt.Errorf("tensor: codec: CSR nnz %d exceeds %dx%d", nnz, rows, cols)
	}
	rest := len(buf) - 13
	if rows > rest/4-1 || nnz > rest/8 {
		return 0, ErrCodecShort
	}
	need := EncodedSizeCSR(rows, cols, nnz)
	if len(buf) < need {
		return 0, ErrCodecShort
	}
	if dst.shapeOnly() {
		return need, nil
	}
	rowPtrOff := 13
	colOff := rowPtrOff + 4*(rows+1)
	valOff := colOff + 4*nnz
	if int(binary.LittleEndian.Uint32(buf[rowPtrOff:])) != 0 ||
		int(binary.LittleEndian.Uint32(buf[rowPtrOff+4*rows:])) != nnz {
		return 0, fmt.Errorf("tensor: codec: CSR row pointer bounds")
	}
	dst.Zero()
	prev := 0
	for r := 0; r < rows; r++ {
		end := int(binary.LittleEndian.Uint32(buf[rowPtrOff+4*(r+1):]))
		if end < prev || end > nnz {
			return 0, fmt.Errorf("tensor: codec: CSR row pointers not monotone in [0,%d]", nnz)
		}
		row := dst.Row(r)
		for p := prev; p < end; p++ {
			c := int(binary.LittleEndian.Uint32(buf[colOff+4*p:]))
			if c < 0 || c >= cols {
				return 0, fmt.Errorf("tensor: codec: CSR column index %d out of %d", c, cols)
			}
			row[c] = math.Float32frombits(binary.LittleEndian.Uint32(buf[valOff+4*p:]))
		}
		prev = end
	}
	return need, nil
}

// DecodeAnyInto decodes whichever self-describing format buf carries —
// dense, FP16-dense or CSR — into dst's existing storage, returning the
// bytes consumed. This is the receive side of the adaptive wire codec: the
// sender picks a format per tensor and the receiver follows the tag, so no
// per-tensor agreement is needed. Allocation-free on every format.
func DecodeAnyInto(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 1 {
		return 0, ErrCodecShort
	}
	switch buf[0] {
	case tagDense:
		return DecodeMatrixInto(dst, buf)
	case tagFP16:
		return DecodeMatrixFP16Into(dst, buf)
	case tagCSR:
		return DecodeCSRInto(dst, buf)
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrCodecTag, buf[0])
	}
}

// EncodeCSR appends the wire form of c to buf and returns the result.
func EncodeCSR(buf []byte, c *CSR) []byte {
	buf = append(buf, tagCSR)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Values)))
	for _, v := range c.RowPtr {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range c.ColIdx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range c.Values {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// Decode reads one encoded matrix from buf. Exactly one of the dense/CSR
// results is non-nil (FP16 frames decode as a dense matrix). It returns
// the number of bytes consumed.
func Decode(buf []byte) (dense *Matrix, sparse *CSR, n int, err error) {
	if len(buf) < 1 {
		return nil, nil, 0, ErrCodecShort
	}
	switch buf[0] {
	case tagDense:
		m, n, err := DecodeMatrix(buf)
		return m, nil, n, err
	case tagFP16:
		m, n, err := DecodeMatrixFP16(buf)
		return m, nil, n, err
	case tagCSR:
		c, n, err := DecodeCSR(buf)
		return nil, c, n, err
	default:
		return nil, nil, 0, fmt.Errorf("%w: 0x%02x", ErrCodecTag, buf[0])
	}
}

// DecodeMatrixFP16 decodes an FP16-dense frame into a fresh matrix,
// returning it and the bytes consumed. Dimension fields are validated
// against the buffer length before any allocation.
func DecodeMatrixFP16(buf []byte) (*Matrix, int, error) {
	if len(buf) < 9 || buf[0] != tagFP16 {
		return nil, 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	if cols != 0 && rows > (len(buf)-9)/2/cols {
		return nil, 0, ErrCodecShort
	}
	need := EncodedSizeFP16(rows, cols)
	if len(buf) < need {
		return nil, 0, ErrCodecShort
	}
	m := New(rows, cols)
	payload := buf[9:need]
	for i := range m.Data {
		m.Data[i] = Float16BitsToFloat32(binary.LittleEndian.Uint16(payload[2*i:]))
	}
	return m, need, nil
}

// DecodeMatrix decodes a dense matrix, returning it and the bytes consumed.
// Dimension fields are validated against the buffer length before any
// allocation, so hostile frames fail cleanly.
func DecodeMatrix(buf []byte) (*Matrix, int, error) {
	if len(buf) < 9 || buf[0] != tagDense {
		return nil, 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	// Overflow-safe payload check: rows*cols elements of 4 bytes must fit.
	if cols != 0 && rows > (len(buf)-9)/4/cols {
		return nil, 0, ErrCodecShort
	}
	need := EncodedSizeDense(rows, cols)
	if len(buf) < need {
		return nil, 0, ErrCodecShort
	}
	m := New(rows, cols)
	off := 9
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return m, need, nil
}

// DecodeCSR decodes a CSR matrix, returning it and the bytes consumed.
// Beyond length checks, the structural invariants are validated — row
// pointers monotone within [0, nnz], column indices within [0, cols) — so
// a hostile frame cannot produce a CSR that panics ToDense or AddInto.
func DecodeCSR(buf []byte) (*CSR, int, error) {
	if len(buf) < 13 || buf[0] != tagCSR {
		return nil, 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	nnz := int(binary.LittleEndian.Uint32(buf[9:]))
	// A well-formed CSR stores at most one value per cell; more means the
	// frame carries duplicate column indices (values would silently
	// overwrite on expansion), so reject it outright.
	if nnz > rows*cols {
		return nil, 0, fmt.Errorf("tensor: codec: CSR nnz %d exceeds %dx%d", nnz, rows, cols)
	}
	// Overflow-safe: (rows+1) row pointers and nnz (index, value) pairs.
	rest := len(buf) - 13
	if rows > rest/4-1 || nnz > rest/8 {
		return nil, 0, ErrCodecShort
	}
	need := 13 + 4*(rows+1) + 8*nnz
	if len(buf) < need {
		return nil, 0, ErrCodecShort
	}
	c := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, nnz),
		Values: make([]float32, nnz),
	}
	off := 13
	prev := int32(0)
	for i := range c.RowPtr {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		if v < prev || v > int32(nnz) {
			return nil, 0, fmt.Errorf("tensor: codec: CSR row pointers not monotone in [0,%d]", nnz)
		}
		c.RowPtr[i] = v
		prev = v
		off += 4
	}
	if c.RowPtr[0] != 0 || c.RowPtr[rows] != int32(nnz) {
		return nil, 0, fmt.Errorf("tensor: codec: CSR row pointer bounds")
	}
	for i := range c.ColIdx {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		if v < 0 || int(v) >= cols {
			return nil, 0, fmt.Errorf("tensor: codec: CSR column index %d out of %d", v, cols)
		}
		c.ColIdx[i] = v
		off += 4
	}
	for i := range c.Values {
		c.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return c, need, nil
}
