package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary wire codec for dense and CSR matrices. The compressed-transmission
// experiments (Fig. 16) measure real encoded byte counts, so the codec is a
// compact little-endian format rather than gob:
//
//	dense: 'D' u32(rows) u32(cols) rows*cols × f32
//	csr:   'S' u32(rows) u32(cols) u32(nnz) (rows+1) × u32 rowptr,
//	       nnz × u32 colidx, nnz × f32 values

var (
	// ErrCodecShort indicates a truncated buffer.
	ErrCodecShort = errors.New("tensor: codec: buffer too short")
	// ErrCodecTag indicates an unknown leading type tag.
	ErrCodecTag = errors.New("tensor: codec: unknown type tag")
)

const (
	tagDense = 'D'
	tagCSR   = 'S'
)

// EncodedSizeDense returns the wire size of a dense rows×cols matrix.
func EncodedSizeDense(rows, cols int) int { return 1 + 8 + 4*rows*cols }

// EncodedSize returns the wire size of m, so frame buffers can be
// preallocated at exact capacity instead of append-grown element by
// element (which reallocates a multi-MB frame a dozen times over).
func EncodedSize(m *Matrix) int { return EncodedSizeDense(m.Rows, m.Cols) }

// EncodeMatrix appends the wire form of m to buf and returns the result.
// Preallocate with EncodedSize to avoid growth copies on large matrices.
func EncodeMatrix(buf []byte, m *Matrix) []byte {
	if m.shapeOnly() {
		panic("tensor: EncodeMatrix on a shape-only (dry-run) matrix")
	}
	buf = append(buf, tagDense)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Cols))
	// Bulk-extend once, then write in place: per-element append pays a
	// capacity check (and amortized copies) per value.
	need := 4 * len(m.Data)
	off := len(buf)
	if cap(buf)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:off+need]
	out := buf[off:]
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeMatrixInto decodes a dense matrix of dst's exact shape from buf
// into dst's existing storage, returning the bytes consumed. This is the
// steady-state receive path: a serving loop that knows the session
// geometry reuses one destination per stream instead of allocating a
// matrix per frame. A shape mismatch is an error (a hostile or desynced
// frame), not a panic.
func DecodeMatrixInto(dst *Matrix, buf []byte) (int, error) {
	if len(buf) < 9 || buf[0] != tagDense {
		return 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	if rows != dst.Rows || cols != dst.Cols {
		return 0, fmt.Errorf("tensor: codec: frame is %dx%d, destination %dx%d", rows, cols, dst.Rows, dst.Cols)
	}
	need := EncodedSizeDense(rows, cols)
	if len(buf) < need {
		return 0, ErrCodecShort
	}
	if dst.shapeOnly() {
		return need, nil
	}
	payload := buf[9:need]
	for i := range dst.Data {
		dst.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return need, nil
}

// EncodeCSR appends the wire form of c to buf and returns the result.
func EncodeCSR(buf []byte, c *CSR) []byte {
	buf = append(buf, tagCSR)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Values)))
	for _, v := range c.RowPtr {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range c.ColIdx {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range c.Values {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// Decode reads one encoded matrix from buf. Exactly one of the dense/CSR
// results is non-nil. It returns the number of bytes consumed.
func Decode(buf []byte) (dense *Matrix, sparse *CSR, n int, err error) {
	if len(buf) < 1 {
		return nil, nil, 0, ErrCodecShort
	}
	switch buf[0] {
	case tagDense:
		m, n, err := DecodeMatrix(buf)
		return m, nil, n, err
	case tagCSR:
		c, n, err := DecodeCSR(buf)
		return nil, c, n, err
	default:
		return nil, nil, 0, fmt.Errorf("%w: 0x%02x", ErrCodecTag, buf[0])
	}
}

// DecodeMatrix decodes a dense matrix, returning it and the bytes consumed.
// Dimension fields are validated against the buffer length before any
// allocation, so hostile frames fail cleanly.
func DecodeMatrix(buf []byte) (*Matrix, int, error) {
	if len(buf) < 9 || buf[0] != tagDense {
		return nil, 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	// Overflow-safe payload check: rows*cols elements of 4 bytes must fit.
	if cols != 0 && rows > (len(buf)-9)/4/cols {
		return nil, 0, ErrCodecShort
	}
	need := EncodedSizeDense(rows, cols)
	if len(buf) < need {
		return nil, 0, ErrCodecShort
	}
	m := New(rows, cols)
	off := 9
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return m, need, nil
}

// DecodeCSR decodes a CSR matrix, returning it and the bytes consumed.
// Beyond length checks, the structural invariants are validated — row
// pointers monotone within [0, nnz], column indices within [0, cols) — so
// a hostile frame cannot produce a CSR that panics ToDense or AddInto.
func DecodeCSR(buf []byte) (*CSR, int, error) {
	if len(buf) < 13 || buf[0] != tagCSR {
		return nil, 0, ErrCodecShort
	}
	rows := int(binary.LittleEndian.Uint32(buf[1:]))
	cols := int(binary.LittleEndian.Uint32(buf[5:]))
	nnz := int(binary.LittleEndian.Uint32(buf[9:]))
	// Overflow-safe: (rows+1) row pointers and nnz (index, value) pairs.
	rest := len(buf) - 13
	if rows > rest/4-1 || nnz > rest/8 {
		return nil, 0, ErrCodecShort
	}
	need := 13 + 4*(rows+1) + 8*nnz
	if len(buf) < need {
		return nil, 0, ErrCodecShort
	}
	c := &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int32, rows+1),
		ColIdx: make([]int32, nnz),
		Values: make([]float32, nnz),
	}
	off := 13
	prev := int32(0)
	for i := range c.RowPtr {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		if v < prev || v > int32(nnz) {
			return nil, 0, fmt.Errorf("tensor: codec: CSR row pointers not monotone in [0,%d]", nnz)
		}
		c.RowPtr[i] = v
		prev = v
		off += 4
	}
	if c.RowPtr[0] != 0 || c.RowPtr[rows] != int32(nnz) {
		return nil, 0, fmt.Errorf("tensor: codec: CSR row pointer bounds")
	}
	for i := range c.ColIdx {
		v := int32(binary.LittleEndian.Uint32(buf[off:]))
		if v < 0 || int(v) >= cols {
			return nil, 0, fmt.Errorf("tensor: codec: CSR column index %d out of %d", v, cols)
		}
		c.ColIdx[i] = v
		off += 4
	}
	for i := range c.Values {
		c.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return c, need, nil
}
