package tensor

import "sync/atomic"

// Compute switch: when disabled, matrices are allocated shape-only (nil
// Data) and every kernel becomes a no-op after its shape checks. The
// benchmark harness uses this to *schedule* the paper's full-size
// workloads (tens of GB of matrix traffic) through the unchanged protocol
// code and read modeled times off the simtime engine, without performing
// or allocating the arithmetic. Correctness of the schedule is guaranteed
// by tests asserting that compute-on and compute-off runs of the same
// workload produce identical task timelines.
//
// The switch is process-global (atomic); toggle it only around
// single-workload sections, and restore the previous value.

var computeOn atomic.Bool

func init() { computeOn.Store(true) }

// SetCompute enables or disables real arithmetic and returns the previous
// setting.
func SetCompute(on bool) bool {
	return computeOn.Swap(on)
}

// ComputeEnabled reports whether kernels perform real arithmetic.
func ComputeEnabled() bool { return computeOn.Load() }

// shapeOnly reports whether m carries no values (dry-run allocation).
func (m *Matrix) shapeOnly() bool { return m.Data == nil && m.Rows*m.Cols > 0 }
