package tensor

import (
	"bytes"
	"math/rand"
	"testing"
)

// Tests for the adaptive-wire-codec substrate: the FP16 and streaming-CSR
// formats, the tag-dispatching DecodeAnyInto receive path, and the
// size-aware CompressionWorthwhile crossover.

func TestEncodeMatrixFP16RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := randomMatrix(r, 9, 7)
	frame := EncodeMatrixFP16(nil, m)
	if len(frame) != EncodedSizeFP16(m.Rows, m.Cols) {
		t.Fatalf("frame is %d bytes, want %d", len(frame), EncodedSizeFP16(m.Rows, m.Cols))
	}
	dst := New(m.Rows, m.Cols)
	n, err := DecodeMatrixFP16Into(dst, frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeMatrixFP16Into: n=%d err=%v", n, err)
	}
	for i, v := range m.Data {
		if want := RoundFloat16(v); dst.Data[i] != want {
			t.Fatalf("element %d: %v, want binary16-rounded %v", i, dst.Data[i], want)
		}
	}
	// The allocating generic Decode must handle the tag too.
	dm, _, n2, err := Decode(frame)
	if err != nil || dm == nil || n2 != len(frame) {
		t.Fatalf("Decode('H'): n=%d err=%v", n2, err)
	}
	if !dm.Equal(dst) {
		t.Fatal("Decode and DecodeMatrixFP16Into disagree")
	}
	// A value already representable in binary16 survives exactly.
	e := FromSlice(1, 3, []float32{1.5, -0.25, 2048})
	ef := EncodeMatrixFP16(nil, e)
	ed := New(1, 3)
	if _, err := DecodeMatrixFP16Into(ed, ef); err != nil {
		t.Fatal(err)
	}
	if !ed.Equal(e) {
		t.Fatalf("binary16-exact values changed: %v -> %v", e.Data, ed.Data)
	}
}

func TestAppendMatrixCSRMatchesEncodeCSR(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {17, 9}, {32, 32}} {
		m := randomSparseMatrix(r, shape[0], shape[1], 0.2)
		streamed := AppendMatrixCSR(nil, m)
		structed := EncodeCSR(nil, FromDense(m))
		if !bytes.Equal(streamed, structed) {
			t.Fatalf("%dx%d: AppendMatrixCSR diverges from EncodeCSR(FromDense)", shape[0], shape[1])
		}
		if len(streamed) != EncodedSizeCSR(m.Rows, m.Cols, m.NNZ()) {
			t.Fatalf("%dx%d: frame is %d bytes, want %d", shape[0], shape[1], len(streamed), EncodedSizeCSR(m.Rows, m.Cols, m.NNZ()))
		}
	}
}

func TestDecodeCSRIntoScatters(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	m := randomSparseMatrix(r, 11, 6, 0.3)
	frame := AppendMatrixCSR(nil, m)
	// Stale content in dst must be cleared, not merged.
	dst := randomMatrix(r, 11, 6)
	n, err := DecodeCSRInto(dst, frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeCSRInto: n=%d err=%v", n, err)
	}
	if !dst.Equal(m) {
		t.Fatal("CSR scatter does not reproduce the source matrix")
	}
}

func TestDecodeAnyIntoDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	m := randomSparseMatrix(r, 8, 8, 0.25)
	dst := New(8, 8)
	for name, frame := range map[string][]byte{
		"dense": EncodeMatrix(nil, m),
		"fp16":  EncodeMatrixFP16(nil, m),
		"csr":   AppendMatrixCSR(nil, m),
	} {
		dst.Zero()
		n, err := DecodeAnyInto(dst, frame)
		if err != nil || n != len(frame) {
			t.Fatalf("%s: n=%d err=%v", name, n, err)
		}
		if name == "fp16" {
			if dst.MaxAbsDiff(m) > 1e-2 {
				t.Fatalf("fp16 payload off by %v", dst.MaxAbsDiff(m))
			}
		} else if !dst.Equal(m) {
			t.Fatalf("%s payload not bit-identical", name)
		}
	}
	if _, err := DecodeAnyInto(dst, []byte{'X', 0, 0}); err == nil {
		t.Fatal("unknown tag decoded")
	}
	if _, err := DecodeAnyInto(dst, nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	// Shape mismatches are errors on every format.
	small := New(2, 2)
	for name, frame := range map[string][]byte{
		"dense": EncodeMatrix(nil, m),
		"fp16":  EncodeMatrixFP16(nil, m),
		"csr":   AppendMatrixCSR(nil, m),
	} {
		if _, err := DecodeAnyInto(small, frame); err == nil {
			t.Fatalf("%s: decoded an 8x8 frame into a 2x2 destination", name)
		}
	}
}

// The steady-state receive path must stay allocation-free on every format.
func TestDecodeAnyIntoAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	m := randomSparseMatrix(r, 16, 16, 0.2)
	dst := New(16, 16)
	for name, frame := range map[string][]byte{
		"dense": EncodeMatrix(nil, m),
		"fp16":  EncodeMatrixFP16(nil, m),
		"csr":   AppendMatrixCSR(nil, m),
	} {
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := DecodeAnyInto(dst, frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: DecodeAnyInto allocates %.1f/op", name, allocs)
		}
	}
}

// Hostile frame: nnz exceeding rows*cols means duplicate column indices;
// both the allocating and in-place decoders must reject it.
func TestDecodeCSRRejectsOverfullNNZ(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	frame := AppendMatrixCSR(nil, m) // nnz = 4 = rows*cols: valid
	if _, _, err := DecodeCSR(frame); err != nil {
		t.Fatalf("full 2x2 CSR rejected: %v", err)
	}
	// Forge nnz = 5 with a plausible payload (duplicate col in row 0).
	forged := []byte{'S',
		2, 0, 0, 0, // rows
		2, 0, 0, 0, // cols
		5, 0, 0, 0, // nnz > rows*cols
		0, 0, 0, 0, 3, 0, 0, 0, 5, 0, 0, 0, // rowptr 0,3,5
		0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, // colidx 0,0,1,0,1
	}
	for i := 0; i < 5; i++ {
		forged = append(forged, 0, 0, 128, 63) // five 1.0f values
	}
	if _, _, err := DecodeCSR(forged); err == nil {
		t.Fatal("DecodeCSR accepted nnz > rows*cols")
	}
	if _, err := DecodeCSRInto(New(2, 2), forged); err == nil {
		t.Fatal("DecodeCSRInto accepted nnz > rows*cols")
	}
}

// Satellite regression: CompressionWorthwhile at the size crossover. A
// threshold-sparse matrix below the crossover dimension must go dense —
// CSR would be the same size or larger — while the next size up
// compresses.
func TestCompressionWorthwhileCrossover(t *testing.T) {
	// 2×2, one value: 75 % sparse but 25 dense bytes vs 33 CSR bytes.
	tiny := New(2, 2)
	tiny.Set(0, 0, 1)
	if CompressionWorthwhile(tiny, DefaultSparsityThreshold) {
		t.Fatal("2x2 with 1 value: CSR is larger, must not be worthwhile")
	}
	// 3×3, two values (~78 % sparse): exactly break-even at 45 bytes each.
	edge := New(3, 3)
	edge.Set(0, 0, 1)
	edge.Set(2, 2, 1)
	if got := EncodedSizeCSR(3, 3, 2); got != EncodedSizeDense(3, 3) {
		t.Fatalf("3x3/2nnz sizes: CSR %d, dense %d — crossover arithmetic moved", got, EncodedSizeDense(3, 3))
	}
	if CompressionWorthwhile(edge, DefaultSparsityThreshold) {
		t.Fatal("break-even 3x3 must not be worthwhile (no bytes saved)")
	}
	// 4×4, four values: first square size where threshold sparsity wins
	// (65 CSR bytes vs 73 dense).
	four := New(4, 4)
	for i := 0; i < 4; i++ {
		four.Set(i, i, 1)
	}
	if !CompressionWorthwhile(four, DefaultSparsityThreshold) {
		t.Fatal("4x4 with 4 values clears both the threshold and the size crossover")
	}
	// Sparsity threshold still gates: a big half-dense matrix saves no bytes
	// under the rule even though the size check alone might let sub-threshold
	// densities through.
	half := New(32, 32)
	for i := 0; i < 32*32/2; i++ {
		half.Data[2*i] = 1
	}
	if CompressionWorthwhile(half, DefaultSparsityThreshold) {
		t.Fatal("50% dense matrix is below the sparsity threshold")
	}
}
