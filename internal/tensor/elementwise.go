package tensor

// Element-wise kernels. These cover the CPU-side work the paper leaves off
// the GPU: the matrix additions and subtractions of Eqs. (3) and (5)
// (share splitting, E/F reconstruction). All binary kernels run in
// parallel over cache-line-aligned chunks (paper §5.1) and write into a
// caller-supplied destination so buffers can be reused across iterations.

// elementwiseSerialFloats is the vector length below which the
// element-wise kernels run inline: for short operands the goroutine
// fan-out costs more than the loop itself, and the wire serving hot path
// (several small kernels per row band per request) must not allocate a
// closure per call. The kernels are position-independent, so the cutoff
// never changes results.
const elementwiseSerialFloats = 4096

// Add computes dst = a + b element-wise. dst may alias a or b.
func Add(dst, a, b *Matrix) {
	a.mustSameShape(b, "Add")
	dst.mustSameShape(a, "Add")
	if !ComputeEnabled() {
		return
	}
	if len(dst.Data) <= elementwiseSerialFloats {
		for i := range dst.Data {
			dst.Data[i] = a.Data[i] + b.Data[i]
		}
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, db, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = da[i] + db[i]
		}
	})
}

// Sub computes dst = a - b element-wise. dst may alias a or b.
func Sub(dst, a, b *Matrix) {
	a.mustSameShape(b, "Sub")
	dst.mustSameShape(a, "Sub")
	if !ComputeEnabled() {
		return
	}
	if len(dst.Data) <= elementwiseSerialFloats {
		for i := range dst.Data {
			dst.Data[i] = a.Data[i] - b.Data[i]
		}
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, db, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = da[i] - db[i]
		}
	})
}

// AddTo returns a newly allocated a + b.
func AddTo(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	Add(out, a, b)
	return out
}

// SubTo returns a newly allocated a - b.
func SubTo(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	Sub(out, a, b)
	return out
}

// Scale computes dst = alpha * a. dst may alias a.
func Scale(dst, a *Matrix, alpha float32) {
	dst.mustSameShape(a, "Scale")
	if !ComputeEnabled() {
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, dd := a.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = alpha * da[i]
		}
	})
}

// AXPY computes dst = dst + alpha*a (the BLAS axpy kernel, used by SGD
// weight updates). dst may alias a.
func AXPY(dst *Matrix, alpha float32, a *Matrix) {
	dst.mustSameShape(a, "AXPY")
	if !ComputeEnabled() {
		return
	}
	if len(dst.Data) <= elementwiseSerialFloats {
		for i := range dst.Data {
			dst.Data[i] += alpha * a.Data[i]
		}
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, dd := a.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] += alpha * da[i]
		}
	})
}

// Hadamard computes dst = a ⊙ b (element-wise product); the paper's CNN
// implementation uses point-to-point multiplication (§7.2). dst may alias
// a or b.
func Hadamard(dst, a, b *Matrix) {
	a.mustSameShape(b, "Hadamard")
	dst.mustSameShape(a, "Hadamard")
	if !ComputeEnabled() {
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, db, dd := a.Data[lo:hi], b.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = da[i] * db[i]
		}
	})
}

// Apply computes dst[i] = f(a[i]) in parallel. dst may alias a.
func Apply(dst, a *Matrix, f func(float32) float32) {
	dst.mustSameShape(a, "Apply")
	if !ComputeEnabled() {
		return
	}
	if len(dst.Data) <= elementwiseSerialFloats {
		for i := range dst.Data {
			dst.Data[i] = f(a.Data[i])
		}
		return
	}
	parallelFor(len(dst.Data), CacheLineFloats, func(lo, hi int) {
		da, dd := a.Data[lo:hi], dst.Data[lo:hi]
		for i := range dd {
			dd[i] = f(da[i])
		}
	})
}

// AddSerial is the single-threaded reference used by the Fig. 14 CPU
// optimization-benefit experiment and by tests as a parallelism oracle.
func AddSerial(dst, a, b *Matrix) {
	a.mustSameShape(b, "AddSerial")
	dst.mustSameShape(a, "AddSerial")
	if !ComputeEnabled() {
		return
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubSerial is the single-threaded counterpart of Sub.
func SubSerial(dst, a, b *Matrix) {
	a.mustSameShape(b, "SubSerial")
	dst.mustSameShape(a, "SubSerial")
	if !ComputeEnabled() {
		return
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}
