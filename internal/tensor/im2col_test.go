package tensor

import (
	"math/rand"
	"testing"
)

func TestConvShape(t *testing.T) {
	s := NewConvShape(28, 28, 5, 5, 1, 0)
	if s.OutH != 24 || s.OutW != 24 {
		t.Fatalf("28x28 conv5 out %dx%d, want 24x24", s.OutH, s.OutW)
	}
	s = NewConvShape(28, 28, 5, 5, 1, 2)
	if s.OutH != 28 || s.OutW != 28 {
		t.Fatalf("same-pad conv out %dx%d", s.OutH, s.OutW)
	}
	s = NewConvShape(32, 32, 3, 3, 2, 1)
	if s.OutH != 16 || s.OutW != 16 {
		t.Fatalf("strided conv out %dx%d", s.OutH, s.OutW)
	}
}

func TestConvShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty output")
		}
	}()
	NewConvShape(2, 2, 5, 5, 1, 0)
}

// Direct (nested-loop) convolution oracle.
func convDirect(img []float32, s ConvShape, kernel []float32) []float32 {
	out := make([]float32, s.OutH*s.OutW)
	for oy := 0; oy < s.OutH; oy++ {
		for ox := 0; ox < s.OutW; ox++ {
			var acc float32
			for ky := 0; ky < s.KH; ky++ {
				for kx := 0; kx < s.KW; kx++ {
					iy := oy*s.Stride + ky - s.Pad
					ix := ox*s.Stride + kx - s.Pad
					if iy >= 0 && iy < s.InH && ix >= 0 && ix < s.InW {
						acc += img[iy*s.InW+ix] * kernel[ky*s.KW+kx]
					}
				}
			}
			out[oy*s.OutW+ox] = acc
		}
	}
	return out
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	configs := []ConvShape{
		NewConvShape(8, 8, 3, 3, 1, 0),
		NewConvShape(8, 8, 3, 3, 1, 1),
		NewConvShape(12, 10, 5, 5, 1, 2),
		NewConvShape(16, 16, 5, 5, 2, 0),
	}
	for _, s := range configs {
		batch := 3
		in := randomMatrix(r, batch, s.InH*s.InW)
		kernel := randomMatrix(r, s.PatchSize(), 1)
		patches := Im2Col(in, s)
		if patches.Rows != batch*s.Patches() || patches.Cols != s.PatchSize() {
			t.Fatalf("Im2Col shape %dx%d", patches.Rows, patches.Cols)
		}
		out := MulTo(patches, kernel)
		for b := 0; b < batch; b++ {
			want := convDirect(in.Row(b), s, kernel.Data)
			for i, w := range want {
				got := out.At(b*s.Patches()+i, 0)
				if diff := got - w; diff > 1e-4 || diff < -1e-4 {
					t.Fatalf("conv %+v batch %d pos %d: got %v want %v", s, b, i, got, w)
				}
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e.
// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y.
func TestCol2ImAdjoint(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	s := NewConvShape(9, 9, 3, 3, 1, 1)
	batch := 2
	x := randomMatrix(r, batch, s.InH*s.InW)
	y := randomMatrix(r, batch*s.Patches(), s.PatchSize())

	ax := Im2Col(x, s)
	var lhs float64
	for i := range ax.Data {
		lhs += float64(ax.Data[i]) * float64(y.Data[i])
	}
	aty := Col2Im(y, batch, s)
	var rhs float64
	for i := range aty.Data {
		rhs += float64(aty.Data[i]) * float64(x.Data[i])
	}
	if d := lhs - rhs; d > 1e-2 || d < -1e-2 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestIm2ColShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Im2Col(New(1, 10), NewConvShape(8, 8, 3, 3, 1, 0))
}

func BenchmarkIm2ColMNISTBatch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := NewConvShape(28, 28, 5, 5, 1, 0)
	in := randomMatrix(r, 128, 28*28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Im2Col(in, s)
	}
}

// Multi-channel im2col must equal the per-channel convolution sum.
func TestIm2ColMultiChannelMatchesDirect(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	s := NewConvShapeCh(6, 6, 3, 3, 3, 1, 1)
	if s.PatchSize() != 27 || s.InDim() != 108 {
		t.Fatalf("shape dims: patch %d in %d", s.PatchSize(), s.InDim())
	}
	batch := 2
	in := randomMatrix(r, batch, s.InDim())
	kernel := randomMatrix(r, s.PatchSize(), 1)
	out := MulTo(Im2Col(in, s), kernel)

	single := NewConvShape(6, 6, 3, 3, 1, 1)
	for b := 0; b < batch; b++ {
		for pos := 0; pos < s.Patches(); pos++ {
			var want float32
			for c := 0; c < 3; c++ {
				img := in.Row(b)[c*36 : (c+1)*36]
				kc := kernel.Data[c*9 : (c+1)*9]
				got := convDirect(img, single, kc)
				want += got[pos]
			}
			if d := out.At(b*s.Patches()+pos, 0) - want; d > 1e-4 || d < -1e-4 {
				t.Fatalf("batch %d pos %d: %v vs %v", b, pos, out.At(b*s.Patches()+pos, 0), want)
			}
		}
	}
}

// Multi-channel Col2Im adjoint identity.
func TestCol2ImMultiChannelAdjoint(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	s := NewConvShapeCh(5, 7, 2, 3, 3, 1, 1)
	batch := 2
	x := randomMatrix(r, batch, s.InDim())
	y := randomMatrix(r, batch*s.Patches(), s.PatchSize())
	ax := Im2Col(x, s)
	var lhs float64
	for i := range ax.Data {
		lhs += float64(ax.Data[i]) * float64(y.Data[i])
	}
	aty := Col2Im(y, batch, s)
	var rhs float64
	for i := range aty.Data {
		rhs += float64(aty.Data[i]) * float64(x.Data[i])
	}
	if d := lhs - rhs; d > 1e-2 || d < -1e-2 {
		t.Fatalf("multi-channel adjoint violated: %v vs %v", lhs, rhs)
	}
}
