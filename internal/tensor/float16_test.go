package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{float32(math.Inf(1)), 0x7c00},  // +Inf
		{float32(math.Inf(-1)), 0xfc00}, // -Inf
		{65536, 0x7c00},                 // overflow -> Inf
		{5.9604645e-8, 0x0001},          // smallest subnormal
		{6.0975552e-5, 0x03ff},          // largest subnormal
		{6.1035156e-5, 0x0400},          // smallest normal (2^-14)
		{0.333251953125, 0x3555},        // 1/3 rounded to half
		{float32(math.SmallestNonzeroFloat32), 0x0000}, // underflow to zero
	}
	for _, c := range cases {
		if got := Float32ToFloat16Bits(c.f); got != c.bits {
			t.Errorf("Float32ToFloat16Bits(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestFloat16BitsToFloat32KnownValues(t *testing.T) {
	if got := Float16BitsToFloat32(0x3c00); got != 1 {
		t.Fatalf("0x3c00 -> %v", got)
	}
	if got := Float16BitsToFloat32(0x7bff); got != 65504 {
		t.Fatalf("0x7bff -> %v", got)
	}
	if got := Float16BitsToFloat32(0x0001); got != 5.9604645e-8 {
		t.Fatalf("0x0001 -> %v", got)
	}
	if !math.IsInf(float64(Float16BitsToFloat32(0x7c00)), 1) {
		t.Fatal("0x7c00 must decode to +Inf")
	}
	if !math.IsNaN(float64(Float16BitsToFloat32(0x7e00))) {
		t.Fatal("0x7e00 must decode to NaN")
	}
	if got := Float16BitsToFloat32(0x8000); got != 0 || math.Signbit(float64(got)) == false {
		t.Fatalf("0x8000 must decode to -0, got %v", got)
	}
}

// Property: round-tripping any representable half through float32 is exact.
func TestFloat16ExactRoundTrip(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		h := uint16(bits)
		f := Float16BitsToFloat32(h)
		if math.IsNaN(float64(f)) {
			continue // NaN payloads are canonicalized
		}
		if got := Float32ToFloat16Bits(f); got != h {
			// -0 and +0 both encode fine; anything else is a bug.
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, got)
		}
	}
}

// Property: rounding error is within half a ULP (relative 2^-11) in the
// normal range.
func TestFloat16RelativeError(t *testing.T) {
	f := func(x float32) bool {
		if x != x || math.IsInf(float64(x), 0) {
			return true
		}
		ax := math.Abs(float64(x))
		if ax < 6.2e-5 || ax > 65000 {
			return true // outside the half normal range
		}
		r := RoundFloat16(x)
		rel := math.Abs(float64(r)-float64(x)) / ax
		return rel <= 1.0/2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundFloat16Idempotent(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for i := 0; i < 1000; i++ {
		x := float32(r.NormFloat64() * 100)
		once := RoundFloat16(x)
		if RoundFloat16(once) != once {
			t.Fatalf("rounding not idempotent for %v", x)
		}
	}
}

func TestRoundMatrixFloat16(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	m := randomMatrix(r, 20, 20)
	dst := New(20, 20)
	RoundMatrixFloat16(dst, m)
	for i, v := range m.Data {
		if dst.Data[i] != RoundFloat16(v) {
			t.Fatalf("element %d: %v vs %v", i, dst.Data[i], RoundFloat16(v))
		}
	}
	// In-place aliasing works too.
	cp := m.Clone()
	RoundMatrixFloat16(cp, cp)
	if !cp.Equal(dst) {
		t.Fatal("aliased rounding differs")
	}
}

func TestFloat16RoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (0x3c00) and 1+2^-10
	// (0x3c01); ties round to even -> 0x3c00.
	x := float32(1) + float32(math.Pow(2, -11))
	if got := Float32ToFloat16Bits(x); got != 0x3c00 {
		t.Fatalf("tie not rounded to even: %#04x", got)
	}
	// 1 + 3*2^-11 is halfway between 0x3c01 and 0x3c02 -> rounds to 0x3c02.
	x = float32(1) + 3*float32(math.Pow(2, -11))
	if got := Float32ToFloat16Bits(x); got != 0x3c02 {
		t.Fatalf("tie not rounded to even: %#04x", got)
	}
}
