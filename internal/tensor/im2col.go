package tensor

import "fmt"

// Convolution lowering. The paper's CNN uses a 5×5 convolution; the secure
// framework protects it the same way as a dense layer, by lowering each
// convolution to a matrix multiplication over im2col patches (or, in the
// authors' point-to-point variant, a Hadamard product per window, §7.2).

// ConvShape describes a 2-D convolution over a (possibly multi-channel)
// feature map laid out as one image per matrix row, channel-major:
// [c0 row-major | c1 | …]. Channels == 0 is treated as 1.
type ConvShape struct {
	InH, InW   int // input height and width
	Channels   int // input channels (0 => 1)
	KH, KW     int // kernel height and width
	Stride     int
	Pad        int
	OutH, OutW int // derived output size
}

// NewConvShape computes the output geometry for a single-channel input,
// panicking on impossible configurations.
func NewConvShape(inH, inW, kh, kw, stride, pad int) ConvShape {
	return NewConvShapeCh(inH, inW, 1, kh, kw, stride, pad)
}

// NewConvShapeCh is NewConvShape with an input-channel count.
func NewConvShapeCh(inH, inW, channels, kh, kw, stride, pad int) ConvShape {
	if stride < 1 {
		panic("tensor: conv stride must be >= 1")
	}
	if channels < 1 {
		panic("tensor: conv channels must be >= 1")
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("tensor: conv %dx%d kernel %dx%d stride %d pad %d yields empty output", inH, inW, kh, kw, stride, pad))
	}
	return ConvShape{InH: inH, InW: inW, Channels: channels, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// InChannels returns the channel count (>= 1).
func (s ConvShape) InChannels() int {
	if s.Channels < 1 {
		return 1
	}
	return s.Channels
}

// InDim returns the flattened per-sample input width (Channels·InH·InW).
func (s ConvShape) InDim() int { return s.InChannels() * s.InH * s.InW }

// PatchSize returns the number of elements per im2col patch
// (Channels·KH·KW).
func (s ConvShape) PatchSize() int { return s.InChannels() * s.KH * s.KW }

// Patches returns the number of sliding-window positions (OutH*OutW).
func (s ConvShape) Patches() int { return s.OutH * s.OutW }

// Im2Col lowers a batch of single-channel images (one image per row of in,
// each of length InH*InW) into a patch matrix of shape
// (batch*OutH*OutW) × (KH*KW); multiplying it by a flattened kernel column
// performs the convolution.
func Im2Col(in *Matrix, s ConvShape) *Matrix {
	if in.Cols != s.InDim() {
		panic(fmt.Sprintf("tensor: Im2Col input row length %d, want %d", in.Cols, s.InDim()))
	}
	batch := in.Rows
	ch := s.InChannels()
	plane := s.InH * s.InW
	out := New(batch*s.Patches(), s.PatchSize())
	if !ComputeEnabled() {
		return out
	}
	parallelFor(batch, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			img := in.Row(b)
			for oy := 0; oy < s.OutH; oy++ {
				for ox := 0; ox < s.OutW; ox++ {
					dst := out.Row(b*s.Patches() + oy*s.OutW + ox)
					p := 0
					for c := 0; c < ch; c++ {
						imgC := img[c*plane:]
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.Stride + ky - s.Pad
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.Stride + kx - s.Pad
								if iy >= 0 && iy < s.InH && ix >= 0 && ix < s.InW {
									dst[p] = imgC[iy*s.InW+ix]
								} else {
									dst[p] = 0
								}
								p++
							}
						}
					}
				}
			}
		}
	})
	return out
}

// Col2Im scatters patch-space gradients back to image space (the adjoint of
// Im2Col), accumulating overlapping windows. cols has shape
// (batch*OutH*OutW) × (KH*KW); the result has one image per row.
func Col2Im(cols *Matrix, batch int, s ConvShape) *Matrix {
	if cols.Rows != batch*s.Patches() || cols.Cols != s.PatchSize() {
		panic(fmt.Sprintf("tensor: Col2Im input %dx%d, want %dx%d", cols.Rows, cols.Cols, batch*s.Patches(), s.PatchSize()))
	}
	ch := s.InChannels()
	plane := s.InH * s.InW
	out := New(batch, s.InDim())
	if !ComputeEnabled() {
		return out
	}
	parallelFor(batch, 1, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			img := out.Row(b)
			for oy := 0; oy < s.OutH; oy++ {
				for ox := 0; ox < s.OutW; ox++ {
					src := cols.Row(b*s.Patches() + oy*s.OutW + ox)
					p := 0
					for c := 0; c < ch; c++ {
						imgC := img[c*plane:]
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.Stride + ky - s.Pad
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.Stride + kx - s.Pad
								if iy >= 0 && iy < s.InH && ix >= 0 && ix < s.InW {
									imgC[iy*s.InW+ix] += src[p]
								}
								p++
							}
						}
					}
				}
			}
		}
	})
	return out
}
