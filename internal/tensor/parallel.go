package tensor

import (
	"runtime"
	"sync"
)

// CacheLineFloats is the number of FP32 values per 64-byte cache line. The
// paper (§5.1) schedules at least one cache line of cyclic work per thread
// to avoid false sharing when several threads write the result matrix; our
// contiguous-chunk partitioning achieves the same effect as long as chunk
// boundaries are cache-line aligned.
const CacheLineFloats = 16

// maxWorkers bounds the parallelism used by the element-wise and GEMM
// kernels. It defaults to GOMAXPROCS and can be lowered for experiments
// (e.g., the Fig. 14 serial-CPU baseline).
var (
	workersMu  sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetMaxWorkers sets the worker-pool width for all parallel tensor kernels
// and returns the previous value. n < 1 is treated as 1.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	workersMu.Lock()
	prev := maxWorkers
	maxWorkers = n
	workersMu.Unlock()
	return prev
}

// MaxWorkers returns the current worker-pool width.
func MaxWorkers() int {
	workersMu.RLock()
	defer workersMu.RUnlock()
	return maxWorkers
}

// parallelFor splits [0, n) into contiguous chunks, each a multiple of
// align (except possibly the last), and runs fn(lo, hi) on each chunk from
// its own goroutine. With fewer than 2*align items or a single worker it
// runs inline.
func parallelFor(n, align int, fn func(lo, hi int)) {
	if align < 1 {
		align = 1
	}
	workers := MaxWorkers()
	if workers == 1 || n < 2*align {
		fn(0, n)
		return
	}
	chunks := (n + align - 1) / align
	if workers > chunks {
		workers = chunks
	}
	// Chunk size: ceil division by workers, rounded up to align so no two
	// workers share a cache line of the destination.
	chunk := (n + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
