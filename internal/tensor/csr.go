package tensor

import "fmt"

// CSR is a compressed-sparse-row matrix, the format the paper's compressed
// inter-node transmission uses when a delta matrix is at least 75 % zero
// (§4.4, referencing Bell & Garland's CUDA SpMV report).
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // length Rows+1
	ColIdx     []int32 // length NNZ
	Values     []float32
}

// DefaultSparsityThreshold is the paper's default: compress when ≥75 % of
// the elements are zero.
const DefaultSparsityThreshold = 0.75

// FromDense converts m to CSR form.
func FromDense(m *Matrix) *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int32, m.Rows+1),
	}
	nnz := m.NNZ()
	c.ColIdx = make([]int32, 0, nnz)
	c.Values = make([]float32, 0, nnz)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, v := range row {
			if v != 0 {
				c.ColIdx = append(c.ColIdx, int32(j))
				c.Values = append(c.Values, v)
			}
		}
		c.RowPtr[r+1] = int32(len(c.Values))
	}
	return c
}

// ToDense expands the CSR matrix back to dense form.
func (c *CSR) ToDense() *Matrix {
	m := New(c.Rows, c.Cols)
	for r := 0; r < c.Rows; r++ {
		row := m.Row(r)
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			row[c.ColIdx[p]] = c.Values[p]
		}
	}
	return m
}

// AddInto accumulates the sparse matrix into dst (dst += c), the operation
// a receiver applies to reconstruct E_{i,j+1} = E_{i,j} + Δ (Eq. 11).
func (c *CSR) AddInto(dst *Matrix) {
	if dst.Rows != c.Rows || dst.Cols != c.Cols {
		panic(fmt.Sprintf("tensor: CSR.AddInto shape mismatch %dx%d vs %dx%d", c.Rows, c.Cols, dst.Rows, dst.Cols))
	}
	for r := 0; r < c.Rows; r++ {
		row := dst.Row(r)
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			row[c.ColIdx[p]] += c.Values[p]
		}
	}
}

// NNZ returns the stored non-zero count.
func (c *CSR) NNZ() int { return len(c.Values) }

// Bytes returns the encoded payload size in bytes: row pointers, column
// indices and values at 4 bytes each. This is what the network model is
// charged when a delta is sent compressed.
func (c *CSR) Bytes() int {
	return 4 * (len(c.RowPtr) + len(c.ColIdx) + len(c.Values))
}

// CompressionWorthwhile reports whether encoding m as CSR is smaller than
// sending it dense — the run-time check behind the ≥75 % rule. The
// sparsity threshold alone is not sufficient: the (rows+1) row pointers
// and per-value column indices are pure overhead, so at small matrices a
// 75 %-sparse CSR frame can still be the LARGER encoding (a 2×2 with one
// value: 25 dense bytes vs 33 CSR bytes). Both conditions must hold —
// sparse enough for the paper's rule AND strictly fewer encoded bytes.
func CompressionWorthwhile(m *Matrix, sparsityThreshold float64) bool {
	return m.Sparsity() >= sparsityThreshold &&
		EncodedSizeCSR(m.Rows, m.Cols, m.NNZ()) < EncodedSizeDense(m.Rows, m.Cols)
}

// SpMV computes dst = c × x for a dense vector x (length Cols); dst must
// have length Rows. Included for completeness of the CSR substrate.
func (c *CSR) SpMV(dst, x []float32) {
	if len(x) != c.Cols || len(dst) != c.Rows {
		panic(fmt.Sprintf("tensor: SpMV dimensions: matrix %dx%d, x %d, dst %d", c.Rows, c.Cols, len(x), len(dst)))
	}
	for r := 0; r < c.Rows; r++ {
		var acc float32
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			acc += c.Values[p] * x[c.ColIdx[p]]
		}
		dst[r] = acc
	}
}
