package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pool recycles dense matrix backing stores across requests. The serving
// hot path (internal/mpc's wire pipeline) churns through E/F/D/C matrices
// of a handful of shapes on every request; allocating them fresh puts
// multi-MB garbage on every multiplication. A Pool keys recycled buffers
// by capacity class (next power of two of the element count), so any
// rows×cols request is satisfied by any retired buffer of the same class.
//
// Get returns a matrix with UNINITIALIZED contents: callers must fully
// overwrite it (every kernel writing dst with beta=0 semantics does; use
// GetZeroed when accumulating). A Pool is safe for concurrent use.
type Pool struct {
	classes [maxPoolClass]sync.Pool
	// Recycling accounting: a hit is a Get satisfied by a retired buffer,
	// a miss is a Get that had to allocate. Mirrored into the package
	// totals so the observability layer can expose a process-wide rate.
	hits, misses atomic.Int64
}

// Package-wide pool accounting across every Pool; see PoolTotals.
var poolHits, poolMisses atomic.Int64

// PoolTotals returns process-wide pool recycling counts: Gets served
// from retired buffers (hits) and Gets that allocated (misses). The
// hit rate is the fraction of serving-path matrix demand the pools
// absorb instead of the GC.
func PoolTotals() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// Stats returns this pool's hit/miss counts.
func (p *Pool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// maxPoolClass bounds the recycled capacity classes at 2^31 elements
// (8 GiB of FP32) — anything larger falls through to the GC.
const maxPoolClass = 32

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// poolClass returns the size class for n elements: the smallest c with
// 1<<c >= n. n must be > 0.
func poolClass(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a rows×cols matrix backed by a recycled buffer when one is
// available. Contents are undefined; the caller must overwrite every
// element before reading. In dry-run mode (SetCompute(false)) it returns a
// shape-only matrix, matching New.
func (p *Pool) Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: Pool.Get with negative dimension")
	}
	if !ComputeEnabled() {
		return &Matrix{Rows: rows, Cols: cols}
	}
	need := rows * cols
	if need == 0 {
		return &Matrix{Rows: rows, Cols: cols, Data: []float32{}}
	}
	c := poolClass(need)
	if c >= maxPoolClass {
		p.misses.Add(1)
		poolMisses.Add(1)
		return New(rows, cols)
	}
	if v := p.classes[c].Get(); v != nil {
		m := v.(*Matrix)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:need]
		p.hits.Add(1)
		poolHits.Add(1)
		return m
	}
	p.misses.Add(1)
	poolMisses.Add(1)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, need, 1<<c)}
}

// GetZeroed is Get with the contents cleared — for destinations that are
// accumulated into rather than overwritten.
func (p *Pool) GetZeroed(rows, cols int) *Matrix {
	m := p.Get(rows, cols)
	m.Zero()
	return m
}

// Preallocate seeds the pool with count retired buffers sized for
// rows×cols matrices, so a serving process can pay its steady-state
// allocations at startup instead of on the first requests — with N
// concurrent sessions sharing one pool, the cold-start burst is N× the
// single-session one. Shapes in the same capacity class share the seeded
// buffers. No-ops in dry-run mode and on out-of-class sizes.
func (p *Pool) Preallocate(rows, cols, count int) {
	if rows <= 0 || cols <= 0 || !ComputeEnabled() {
		return
	}
	c := poolClass(rows * cols)
	if c >= maxPoolClass {
		return
	}
	for i := 0; i < count; i++ {
		p.classes[c].Put(&Matrix{Rows: rows, Cols: cols, Data: make([]float32, 1<<c)})
	}
}

// Put retires m's backing store for reuse. m must not be used (nor any
// view sharing its Data) after Put. Nil, shape-only, and foreign-capacity
// matrices are dropped silently, so Put is safe on anything Get returned
// and harmless on anything else.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	c := poolClass(cap(m.Data))
	// Only buffers with exact class capacity re-enter the pool: a Get
	// must be able to reslice to any size in the class.
	if c >= maxPoolClass || cap(m.Data) != 1<<c {
		return
	}
	m.Data = m.Data[:cap(m.Data)]
	p.classes[c].Put(m)
}
