package tensor

import (
	"math/rand"
	"testing"
)

// Robustness: the wire codec must reject arbitrary and corrupted byte
// streams with an error — never panic, never over-read — since frames
// arrive from the (untrusted) network path.

func FuzzDecode(f *testing.F) {
	m := New(3, 4)
	m.Set(1, 2, 1.5)
	f.Add(EncodeMatrix(nil, m))
	f.Add(EncodeCSR(nil, FromDense(m)))
	f.Add([]byte{})
	f.Add([]byte{'D', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'S', 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dense, sparse, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		if dense == nil && sparse == nil {
			t.Fatal("success with no payload")
		}
	})
}

// FuzzDecodeAnyCodec drives the in-place multi-format receive path — the
// decoder the adaptive wire codec puts on the serving hot path — with
// arbitrary bytes against a fixed-shape destination. Success must consume
// a sane byte count; failure must leave no panic and no over-read. Seeds
// cover all three tags plus the documented hostile shapes: malformed tag,
// truncated payloads, and CSR frames claiming nnz > rows*cols.
func FuzzDecodeAnyCodec(f *testing.F) {
	m := New(3, 4)
	m.Set(1, 2, 1.5)
	m.Set(0, 3, -2)
	f.Add(EncodeMatrix(nil, m))
	f.Add(EncodeMatrixFP16(nil, m))
	f.Add(AppendMatrixCSR(nil, m))
	f.Add([]byte{'X', 3, 0, 0, 0, 4, 0, 0, 0})                            // unknown tag
	f.Add(EncodeMatrixFP16(nil, m)[:11])                                  // truncated FP16 payload
	f.Add(AppendMatrixCSR(nil, m)[:14])                                   // truncated CSR rowptr
	f.Add([]byte{'S', 3, 0, 0, 0, 4, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})    // nnz >> rows*cols
	f.Add([]byte{'S', 3, 0, 0, 0, 4, 0, 0, 0, 13, 0, 0, 0, 0, 0, 0, 0})   // nnz 13 > 12
	f.Add([]byte{'H', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0}) // huge claimed shape
	f.Fuzz(func(t *testing.T, data []byte) {
		dst := New(3, 4)
		n, err := DecodeAnyInto(dst, data)
		if err != nil {
			// The destination stays a valid 3x4 even after a mid-scatter
			// CSR validation failure.
			_ = dst.NNZ()
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// A decoded frame must round-trip through the allocating Decode too.
		if _, _, _, err := Decode(data[:n]); err != nil {
			t.Fatalf("DecodeAnyInto accepted a frame Decode rejects: %v", err)
		}
	})
}

// Property: random single-byte corruption of a valid frame either fails to
// decode or decodes without panicking (bit flips in the float payload are
// legitimately undetectable in this header-checked format).
func TestCodecCorruptionNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randomMatrix(r, 9, 7)
	base := EncodeMatrix(nil, m)
	csr := EncodeCSR(nil, FromDense(randomSparseMatrix(r, 9, 7, 0.2)))
	for trial := 0; trial < 2000; trial++ {
		var frame []byte
		if trial%2 == 0 {
			frame = append([]byte(nil), base...)
		} else {
			frame = append([]byte(nil), csr...)
		}
		idx := r.Intn(len(frame))
		frame[idx] ^= byte(1 + r.Intn(255))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on corrupted frame (byte %d): %v", idx, p)
				}
			}()
			Decode(frame)
		}()
	}
}

// Truncation at every prefix length must error cleanly.
func TestCodecTruncationSweep(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := randomMatrix(r, 4, 5)
	frame := EncodeMatrix(nil, m)
	for n := 0; n < len(frame); n++ {
		if _, _, _, err := Decode(frame[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
	c := EncodeCSR(nil, FromDense(randomSparseMatrix(r, 6, 6, 0.3)))
	for n := 0; n < len(c); n++ {
		if _, _, _, err := Decode(c[:n]); err == nil {
			t.Fatalf("CSR prefix of %d bytes decoded without error", n)
		}
	}
}
