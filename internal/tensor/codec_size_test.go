package tensor

import (
	"math/rand"
	"testing"
)

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for _, c := range [][2]int{{1, 1}, {3, 7}, {16, 16}, {33, 129}} {
		m := randomMatrix(r, c[0], c[1])
		frame := EncodeMatrix(nil, m)
		if len(frame) != EncodedSize(m) {
			t.Fatalf("%dx%d: EncodedSize %d, frame %d bytes", c[0], c[1], EncodedSize(m), len(frame))
		}
		// Exact-capacity preallocation must not grow.
		buf := make([]byte, 0, EncodedSize(m))
		out := EncodeMatrix(buf, m)
		if &out[0] != &buf[:1][0] {
			t.Fatal("exact-capacity encode reallocated")
		}
	}
}

func TestDecodeMatrixInto(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	m := randomMatrix(r, 9, 13)
	frame := EncodeMatrix(nil, m)

	dst := New(9, 13)
	n, err := DecodeMatrixInto(dst, frame)
	if err != nil || n != len(frame) {
		t.Fatalf("DecodeMatrixInto: n=%d err=%v", n, err)
	}
	if !dst.Equal(m) {
		t.Fatal("round trip mismatch")
	}

	// Reuse must overwrite stale contents.
	dst.Fill(42)
	if _, err := DecodeMatrixInto(dst, frame); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(m) {
		t.Fatal("second decode into same buffer mismatch")
	}

	// Shape mismatch is an error, not a panic.
	if _, err := DecodeMatrixInto(New(13, 9), frame); err == nil {
		t.Fatal("shape mismatch must error")
	}
	// Truncation.
	if _, err := DecodeMatrixInto(New(9, 13), frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated frame must error")
	}
	// Decoding into a row-band view shares the parent's storage.
	big := New(18, 13)
	view := big.SliceRows(3, 12)
	if _, err := DecodeMatrixInto(view, frame); err != nil {
		t.Fatal(err)
	}
	if !big.SliceRows(3, 12).Equal(m) {
		t.Fatal("band view decode did not land in parent storage")
	}
}

func TestEncodeMatrixAppendsAfterExisting(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	a := randomMatrix(r, 4, 5)
	b := randomMatrix(r, 5, 2)
	frame := EncodeMatrix(nil, a)
	frame = EncodeMatrix(frame, b)
	gotA, n, err := DecodeMatrix(frame)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _, err := DecodeMatrix(frame[n:])
	if err != nil {
		t.Fatal(err)
	}
	if !gotA.Equal(a) || !gotB.Equal(b) {
		t.Fatal("concatenated encode mismatch")
	}
}
