package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64())
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad allocation: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if m.Data[5] != 7 {
		t.Fatalf("row-major layout violated")
	}
	row := m.Row(1)
	row[0] = 3
	if m.At(1, 0) != 3 {
		t.Fatalf("Row must be a view")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := randomMatrix(r, 5, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 1e9)
	if m.At(0, 0) == 1e9 {
		t.Fatal("clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {64, 33}, {100, 1}, {1, 100}, {65, 65}} {
		m := randomMatrix(r, dims[0], dims[1])
		tr := m.Transpose()
		if tr.Rows != m.Cols || tr.Cols != m.Rows {
			t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
		}
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if m.At(i, j) != tr.At(j, i) {
					t.Fatalf("transpose mismatch at (%d,%d)", i, j)
				}
			}
		}
		if !tr.Transpose().Equal(m) {
			t.Fatal("double transpose is not identity")
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	m := New(2, 6)
	v := m.Reshape(3, 4)
	v.Set(2, 3, 9)
	if m.At(1, 5) != 9 {
		t.Fatal("reshape must share storage")
	}
}

func TestSliceRows(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := randomMatrix(r, 10, 4)
	s := m.SliceRows(2, 5)
	if s.Rows != 3 || s.Cols != 4 {
		t.Fatalf("bad slice shape %dx%d", s.Rows, s.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if s.At(i, j) != m.At(i+2, j) {
				t.Fatalf("slice content mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestConcat(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{3, 4})
	v := ConcatRows(a, b)
	if v.Rows != 2 || v.At(1, 1) != 4 {
		t.Fatalf("ConcatRows wrong: %v", v)
	}
	h := ConcatCols(a, b)
	if h.Cols != 4 || h.At(0, 3) != 4 || h.At(0, 1) != 2 {
		t.Fatalf("ConcatCols wrong: %v", h)
	}
}

func TestSparsityNNZ(t *testing.T) {
	m := FromSlice(2, 4, []float32{0, 1, 0, 0, 2, 0, 0, 0})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.Sparsity() != 0.75 {
		t.Fatalf("Sparsity = %v", m.Sparsity())
	}
	// 2×4 with 2 values is exactly break-even (41 dense bytes vs 41 CSR
	// bytes): the size-aware rule declines it. A larger matrix at the same
	// sparsity clears the index overhead and compresses.
	if CompressionWorthwhile(m, DefaultSparsityThreshold) {
		t.Fatal("break-even 2x4 should not be compression-worthwhile")
	}
	big := New(16, 16)
	for i := 0; i < 16; i++ {
		big.Set(i, i, 1) // 1/16 dense: far past the threshold and the size crossover
	}
	if !CompressionWorthwhile(big, DefaultSparsityThreshold) {
		t.Fatal("16x16 with 16 values should be compression-worthwhile")
	}
}

func TestElementwiseAgainstSerial(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 15, 16, 17, 1000, 4096} {
		a := randomMatrix(r, 1, n)
		b := randomMatrix(r, 1, n)
		want := New(1, n)
		AddSerial(want, a, b)
		got := New(1, n)
		Add(got, a, b)
		if !got.Equal(want) {
			t.Fatalf("Add(n=%d) differs from serial", n)
		}
		SubSerial(want, a, b)
		Sub(got, a, b)
		if !got.Equal(want) {
			t.Fatalf("Sub(n=%d) differs from serial", n)
		}
	}
}

func TestAddSubRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(rows8, cols8 uint8) bool {
		rows, cols := int(rows8%20)+1, int(cols8%20)+1
		a := randomMatrix(r, rows, cols)
		b := randomMatrix(r, rows, cols)
		sum := AddTo(a, b)
		back := SubTo(sum, b)
		return back.ApproxEqual(a, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleAXPYHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	s := New(1, 3)
	Scale(s, a, 2)
	if s.At(0, 2) != 6 {
		t.Fatalf("Scale wrong: %v", s)
	}
	d := b.Clone()
	AXPY(d, -1, a)
	if d.At(0, 0) != 3 || d.At(0, 2) != 3 {
		t.Fatalf("AXPY wrong: %v", d)
	}
	h := New(1, 3)
	Hadamard(h, a, b)
	if h.At(0, 1) != 10 {
		t.Fatalf("Hadamard wrong: %v", h)
	}
	ap := New(1, 3)
	Apply(ap, a, func(x float32) float32 { return x * x })
	if ap.At(0, 2) != 9 {
		t.Fatalf("Apply wrong: %v", ap)
	}
}

func TestAliasedElementwise(t *testing.T) {
	a := FromSlice(1, 4, []float32{1, 2, 3, 4})
	b := FromSlice(1, 4, []float32{10, 20, 30, 40})
	Add(a, a, b) // dst aliases a
	if a.At(0, 3) != 44 {
		t.Fatalf("aliased Add wrong: %v", a)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers = %d", MaxWorkers())
	}
	r := rand.New(rand.NewSource(6))
	a := randomMatrix(r, 100, 100)
	b := randomMatrix(r, 100, 100)
	want := New(100, 100)
	AddSerial(want, a, b)
	got := New(100, 100)
	Add(got, a, b)
	if !got.Equal(want) {
		t.Fatal("single-worker Add differs")
	}
	SetMaxWorkers(7) // odd worker count, exercises chunk rounding
	Add(got, a, b)
	if !got.Equal(want) {
		t.Fatal("7-worker Add differs")
	}
}

func TestStatsHelpers(t *testing.T) {
	m := FromSlice(1, 4, []float32{-3, 1, 2, 0})
	if m.Sum() != 0 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if got := m.FrobeniusNorm(); got < 3.74 || got > 3.75 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
	if m.Bytes() != 16 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMaxAbsDiffShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	New(2, 2).MaxAbsDiff(New(2, 3))
}
