package tensor

import (
	"math/rand"
	"testing"
)

func TestPoolRecyclesWithinClass(t *testing.T) {
	p := NewPool()
	m := p.Get(16, 16)
	if m.Rows != 16 || m.Cols != 16 || len(m.Data) != 256 {
		t.Fatalf("Get shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Fill(7)
	p.Put(m)
	// Same class (256 <= cap <= 256): a differently shaped request may
	// reuse the buffer; either way the shape must be exact.
	n := p.Get(8, 32)
	if n.Rows != 8 || n.Cols != 32 || len(n.Data) != 256 {
		t.Fatalf("reuse shape: %dx%d len %d", n.Rows, n.Cols, len(n.Data))
	}
	p.Put(n)
}

func TestPoolSmallerRequestReusesLargerClassBuffer(t *testing.T) {
	p := NewPool()
	m := p.Get(10, 10) // class 128
	p.Put(m)
	n := p.Get(9, 9) // 81 -> class 128 too
	if len(n.Data) != 81 {
		t.Fatalf("len = %d", len(n.Data))
	}
	if cap(n.Data) != 128 {
		t.Fatalf("cap = %d, want recycled 128", cap(n.Data))
	}
}

func TestPoolZeroAndForeign(t *testing.T) {
	p := NewPool()
	z := p.Get(0, 5)
	if z.Rows != 0 || z.Cols != 5 || len(z.Data) != 0 {
		t.Fatalf("zero-size Get: %+v", z)
	}
	p.Put(z)   // dropped silently
	p.Put(nil) // no-op
	// Foreign capacity (not a power of two) is dropped, not pooled.
	p.Put(FromSlice(1, 3, make([]float32, 3)))
	m := p.Get(1, 3)
	if len(m.Data) != 3 || cap(m.Data) != 4 {
		t.Fatalf("foreign buffer re-entered pool: len %d cap %d", len(m.Data), cap(m.Data))
	}
}

func TestPoolGetZeroed(t *testing.T) {
	p := NewPool()
	m := p.Get(4, 4)
	m.Fill(3)
	p.Put(m)
	z := p.GetZeroed(4, 4)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %v", i, v)
		}
	}
}

func TestPoolDryRun(t *testing.T) {
	prev := SetCompute(false)
	defer SetCompute(prev)
	p := NewPool()
	m := p.Get(6, 6)
	if m.Data != nil || m.Rows != 6 {
		t.Fatalf("dry-run Get must be shape-only, got %+v", m)
	}
	p.Put(m) // shape-only: dropped
}

func TestPoolKernelsOverwriteRecycledGarbage(t *testing.T) {
	// The pool contract: Get's contents are undefined and destinations
	// must be fully overwritten. Verify the kernels the wire path uses
	// do overwrite: Sub, Add, Gemm beta=0.
	r := rand.New(rand.NewSource(4))
	p := NewPool()
	dirt := p.Get(12, 12)
	dirt.Fill(1e30)
	p.Put(dirt)

	a := randomMatrix(r, 12, 12)
	b := randomMatrix(r, 12, 12)
	dst := p.Get(12, 12)
	Sub(dst, a, b)
	if !dst.ApproxEqual(SubTo(a, b), 0) {
		t.Fatal("Sub into recycled buffer differs")
	}
	p.Put(dst)

	dst = p.Get(12, 12)
	Gemm(dst, a, b, 1, 0)
	if !dst.ApproxEqual(MulTo(a, b), 0) {
		t.Fatal("Gemm beta=0 into recycled buffer differs")
	}
}

func TestPoolPreallocate(t *testing.T) {
	p := NewPool()
	p.Preallocate(16, 16, 4)
	for i := 0; i < 4; i++ {
		m := p.Get(12, 12) // 144 -> class 256, same as 16x16
		if cap(m.Data) != 256 {
			t.Fatalf("Get %d: cap = %d, want preallocated 256", i, cap(m.Data))
		}
	}
	// sync.Pool may drop items across GC/scheduler moves, so all 4 Gets
	// hitting isn't guaranteed — but at least one seeded buffer must be
	// reusable or Preallocate isn't seeding the right class at all.
	hits, _ := p.Stats()
	if hits == 0 {
		t.Fatal("no pool hits after Preallocate; seeded buffers not reusable")
	}
	// Degenerate sizes are no-ops, not panics.
	p.Preallocate(0, 5, 3)
	p.Preallocate(-1, 5, 3)
}
