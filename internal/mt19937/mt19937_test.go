package mt19937

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference vectors from the original mt19937ar.c test output
// (init_by_array with {0x123, 0x234, 0x345, 0x456}).
var refArraySeeded32 = []uint32{
	1067595299, 955945823, 477289528, 4107218783, 4228976476,
	3344332714, 3355579695, 227628506, 810200273, 2591290167,
}

// First outputs for the default single seed 5489 (well-known vector).
var refDefaultSeed32 = []uint32{
	3499211612, 581869302, 3890346734, 3586334585, 545404204,
}

// Reference vectors from mt19937-64.c test output
// (init_by_array64 with {0x12345, 0x23456, 0x34567, 0x45678}).
var refArraySeeded64 = []uint64{
	7266447313870364031, 4946485549665804864, 16945909448695747420,
	16394063075524226720, 4873882236456199058, 14877448043947020171,
	6740343660852211943, 13857871200353263164, 5249110015610582907,
	10205081126064480383,
}

func TestMT19937ReferenceVectorArraySeed(t *testing.T) {
	mt := &MT19937{}
	mt.SeedSlice([]uint32{0x123, 0x234, 0x345, 0x456})
	for i, want := range refArraySeeded32 {
		if got := mt.Uint32(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937ReferenceVectorDefaultSeed(t *testing.T) {
	mt := New(DefaultSeed)
	for i, want := range refDefaultSeed32 {
		if got := mt.Uint32(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestMT19937x64ReferenceVector(t *testing.T) {
	mt := &MT19937_64{}
	mt.SeedSlice([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	for i, want := range refArraySeeded64 {
		if got := mt.Uint64(); got != want {
			t.Fatalf("output %d: got %d, want %d", i, got, want)
		}
	}
}

func TestSameSeedSameStream(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 10000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams with different seeds agreed on %d/1000 outputs", same)
	}
}

func TestReseedResetsStream(t *testing.T) {
	mt := New(99)
	first := make([]uint32, 100)
	for i := range first {
		first[i] = mt.Uint32()
	}
	mt.Seed(99)
	for i := range first {
		if got := mt.Uint32(); got != first[i] {
			t.Fatalf("after reseed, output %d: got %d, want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	mt := New(7)
	for i := 0; i < 100000; i++ {
		f := mt.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	mt64 := New64(7)
	for i := 0; i < 100000; i++ {
		f := mt64.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("64-bit Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	mt := New(11)
	for i := 0; i < 100000; i++ {
		f := mt.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	mt := New(123)
	const iters = 200000
	var sum float64
	for i := 0; i < iters; i++ {
		sum += mt.Float64()
	}
	mean := sum / iters
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

// MT19937 satisfies math/rand.Source so it can drive the standard library's
// distributions when needed.
func TestRandSourceCompatibility(t *testing.T) {
	var src rand.Source = &sourceAdapter{mt: New(42)}
	r := rand.New(src)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

type sourceAdapter struct{ mt *MT19937 }

func (s *sourceAdapter) Int63() int64    { return s.mt.Int63() }
func (s *sourceAdapter) Seed(seed int64) { s.mt.Seed64(seed) }

func TestInt63NonNegative(t *testing.T) {
	f := func(seed uint32) bool {
		mt := New(seed)
		for i := 0; i < 50; i++ {
			if mt.Int63() < 0 {
				return false
			}
		}
		mt64 := New64(uint64(seed))
		for i := 0; i < 50; i++ {
			if mt64.Int63() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SeedSlice with a single-element key is deterministic and distinct
// from plain Seed with the same value.
func TestSeedSliceDeterministic(t *testing.T) {
	f := func(key uint32) bool {
		a, b := &MT19937{}, &MT19937{}
		a.SeedSlice([]uint32{key})
		b.SeedSlice([]uint32{key})
		for i := 0; i < 20; i++ {
			if a.Uint32() != b.Uint32() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64Composition(t *testing.T) {
	a, b := New(2024), New(2024)
	for i := 0; i < 100; i++ {
		hi := uint64(b.Uint32())
		lo := uint64(b.Uint32())
		if got, want := a.Uint64(), hi<<32|lo; got != want {
			t.Fatalf("Uint64 output %d: got %d, want %d", i, got, want)
		}
	}
}

func BenchmarkMT19937Uint32(b *testing.B) {
	mt := New(1)
	b.SetBytes(4)
	for i := 0; i < b.N; i++ {
		_ = mt.Uint32()
	}
}

func BenchmarkMT19937x64Uint64(b *testing.B) {
	mt := New64(1)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		_ = mt.Uint64()
	}
}

func BenchmarkMT19937Float32(b *testing.B) {
	mt := New(1)
	for i := 0; i < b.N; i++ {
		_ = mt.Float32()
	}
}
