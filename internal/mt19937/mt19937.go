// Package mt19937 implements the Mersenne Twister pseudo-random number
// generators MT19937 (32-bit) and MT19937-64, the generators ParSecureML
// uses for its thread-safe parallel random-matrix generation (paper §5.1).
//
// The implementations follow Matsumoto & Nishimura, "Mersenne Twister: a
// 623-dimensionally equidistributed uniform pseudo-random number generator"
// (ACM TOMACS 1998) and are verified against the reference output vectors in
// the package tests. A generator is NOT safe for concurrent use; following
// the paper, each worker owns its own generator (see package rng).
package mt19937

const (
	n         = 624
	m         = 397
	matrixA   = 0x9908b0df
	upperMask = 0x80000000
	lowerMask = 0x7fffffff

	// DefaultSeed is the seed used by the reference implementation when no
	// seed is supplied.
	DefaultSeed = 5489
)

// MT19937 is the classic 32-bit Mersenne Twister.
type MT19937 struct {
	state [n]uint32
	index int
}

// New returns a 32-bit Mersenne Twister seeded with seed.
func New(seed uint32) *MT19937 {
	mt := &MT19937{}
	mt.Seed(seed)
	return mt
}

// Seed resets the generator state from a single 32-bit seed, using the
// initialization routine init_genrand from the reference implementation.
func (mt *MT19937) Seed(seed uint32) {
	mt.state[0] = seed
	for i := 1; i < n; i++ {
		mt.state[i] = 1812433253*(mt.state[i-1]^(mt.state[i-1]>>30)) + uint32(i)
	}
	mt.index = n
}

// SeedSlice initializes the state from a key array, mirroring
// init_by_array from the reference implementation. It allows seeding with
// more than 32 bits of entropy (used to decorrelate per-worker generators).
func (mt *MT19937) SeedSlice(key []uint32) {
	mt.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if n > k {
		k = n
	}
	for ; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 30)) * 1664525)) + key[j] + uint32(j)
		i++
		j++
		if i >= n {
			mt.state[0] = mt.state[n-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = n - 1; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 30)) * 1566083941)) - uint32(i)
		i++
		if i >= n {
			mt.state[0] = mt.state[n-1]
			i = 1
		}
	}
	mt.state[0] = 0x80000000
	mt.index = n
}

// twist regenerates the full state block.
func (mt *MT19937) twist() {
	for i := 0; i < n; i++ {
		y := (mt.state[i] & upperMask) | (mt.state[(i+1)%n] & lowerMask)
		next := mt.state[(i+m)%n] ^ (y >> 1)
		if y&1 != 0 {
			next ^= matrixA
		}
		mt.state[i] = next
	}
	mt.index = 0
}

// Uint32 returns the next 32-bit output word.
func (mt *MT19937) Uint32() uint32 {
	if mt.index >= n {
		mt.twist()
	}
	y := mt.state[mt.index]
	mt.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

// Uint64 returns a 64-bit value assembled from two 32-bit outputs.
func (mt *MT19937) Uint64() uint64 {
	hi := uint64(mt.Uint32())
	lo := uint64(mt.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform value in [0,1) with 53-bit resolution, matching
// genrand_res53 from the reference implementation.
func (mt *MT19937) Float64() float64 {
	a := mt.Uint32() >> 5
	b := mt.Uint32() >> 6
	return (float64(a)*67108864.0 + float64(b)) / 9007199254740992.0
}

// Float32 returns a uniform value in [0,1).
func (mt *MT19937) Float32() float32 {
	// 24 high bits give the full float32 mantissa resolution.
	return float32(mt.Uint32()>>8) / (1 << 24)
}

// Int63 returns a non-negative 63-bit integer, satisfying the contract of
// math/rand.Source.
func (mt *MT19937) Int63() int64 {
	return int64(mt.Uint64() >> 1)
}

// Seed64 implements math/rand.Source's Seed by folding the 64-bit seed into
// a key array.
func (mt *MT19937) Seed64(seed int64) {
	mt.SeedSlice([]uint32{uint32(seed), uint32(uint64(seed) >> 32)})
}

const (
	n64        = 312
	m64        = 156
	matrixA64  = 0xB5026F5AA96619E9
	upperMask6 = 0xFFFFFFFF80000000
	lowerMask6 = 0x7FFFFFFF
)

// MT19937_64 is the 64-bit Mersenne Twister variant.
type MT19937_64 struct {
	state [n64]uint64
	index int
}

// New64 returns a 64-bit Mersenne Twister seeded with seed.
func New64(seed uint64) *MT19937_64 {
	mt := &MT19937_64{}
	mt.Seed(seed)
	return mt
}

// Seed resets the generator state from a 64-bit seed (init_genrand64).
func (mt *MT19937_64) Seed(seed uint64) {
	mt.state[0] = seed
	for i := 1; i < n64; i++ {
		mt.state[i] = 6364136223846793005*(mt.state[i-1]^(mt.state[i-1]>>62)) + uint64(i)
	}
	mt.index = n64
}

// SeedSlice initializes from a key array (init_by_array64).
func (mt *MT19937_64) SeedSlice(key []uint64) {
	mt.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if n64 > k {
		k = n64
	}
	for ; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= n64 {
			mt.state[0] = mt.state[n64-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = n64 - 1; k > 0; k-- {
		mt.state[i] = (mt.state[i] ^ ((mt.state[i-1] ^ (mt.state[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= n64 {
			mt.state[0] = mt.state[n64-1]
			i = 1
		}
	}
	mt.state[0] = 1 << 63
	mt.index = n64
}

func (mt *MT19937_64) twist() {
	for i := 0; i < n64; i++ {
		x := (mt.state[i] & upperMask6) | (mt.state[(i+1)%n64] & lowerMask6)
		next := mt.state[(i+m64)%n64] ^ (x >> 1)
		if x&1 != 0 {
			next ^= matrixA64
		}
		mt.state[i] = next
	}
	mt.index = 0
}

// Uint64 returns the next 64-bit output word.
func (mt *MT19937_64) Uint64() uint64 {
	if mt.index >= n64 {
		mt.twist()
	}
	x := mt.state[mt.index]
	mt.index++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// Float64 returns a uniform value in [0,1) with 53-bit resolution
// (genrand64_res53).
func (mt *MT19937_64) Float64() float64 {
	return float64(mt.Uint64()>>11) / 9007199254740992.0
}

// Int63 returns a non-negative 63-bit integer (math/rand.Source contract).
func (mt *MT19937_64) Int63() int64 {
	return int64(mt.Uint64() >> 1)
}
