// Package pipeline provides software-pipelining primitives over simtime:
// a generic stage pipeline (rounds flowing through heterogeneous resources
// with or without round barriers) and the analysis helpers the double-
// pipeline experiments use. The paper's two pipelines map onto it as:
//
//   - Fig. 5 (intra-multiplication): stages = {H2D channel, GPU compute};
//     rounds = the operands/chunks of one Eq. (8) multiplication.
//   - Fig. 6 (cross-layer): stages = {CPU+network reconstruct, GPU
//     operation}; rounds = layers of the backward pass. Overlapped mode
//     lets layer l+1's reconstruct run while layer l computes, saving one
//     reconstruct per layer exactly as the paper describes.
//
// The concrete trainer (internal/secureml) wires the same dependency
// structure directly into its task graph; this package is the analyzable,
// property-testable model of that structure, and the ablation benches use
// it to decompose where pipeline time goes.
package pipeline

import (
	"fmt"

	"parsecureml/internal/simtime"
)

// Stage is one pipeline stage bound to a resource.
type Stage struct {
	Res  *simtime.Resource
	Kind string
	// Dur gives the stage duration for a round.
	Dur func(round int) float64
}

// Result reports a scheduled pipeline run.
type Result struct {
	// Last[r] is the final task of round r.
	Last []*simtime.Task
	// Makespan is the completion time of the whole run relative to the
	// engine state before the run (callers on a fresh engine read it as
	// absolute).
	Makespan float64
}

// Run schedules rounds through stages in order. In overlapped mode, round
// r's stage s waits only for round r's stage s−1 and the stage resource
// (classic software pipelining). In serial mode every round additionally
// waits for the previous round to fully finish — the paper's "original
// execution" of Fig. 6a.
func Run(eng *simtime.Engine, stages []Stage, rounds int, overlapped bool) Result {
	if len(stages) == 0 || rounds <= 0 {
		return Result{}
	}
	last := make([]*simtime.Task, rounds)
	var prevRoundEnd *simtime.Task
	for r := 0; r < rounds; r++ {
		var prev *simtime.Task
		for s, st := range stages {
			deps := make([]*simtime.Task, 0, 2)
			if prev != nil {
				deps = append(deps, prev)
			}
			if !overlapped && s == 0 && prevRoundEnd != nil {
				deps = append(deps, prevRoundEnd)
			}
			prev = eng.Schedule(st.Res, st.Kind, fmt.Sprintf("%s[r%d]", st.Kind, r), st.Dur(r), deps...)
		}
		last[r] = prev
		prevRoundEnd = prev
	}
	return Result{Last: last, Makespan: last[rounds-1].End}
}

// SerialSpan returns the analytic makespan of the serial schedule: the sum
// of every stage duration over every round.
func SerialSpan(stages []Stage, rounds int) float64 {
	var total float64
	for r := 0; r < rounds; r++ {
		for _, st := range stages {
			total += st.Dur(r)
		}
	}
	return total
}

// BoundSpan returns the analytic lower bound of the overlapped schedule
// for constant-duration stages: fill latency (one pass through all stages)
// plus (rounds−1) beats of the slowest stage.
func BoundSpan(durs []float64, rounds int) float64 {
	var fill, beat float64
	for _, d := range durs {
		fill += d
		if d > beat {
			beat = d
		}
	}
	return fill + float64(rounds-1)*beat
}

// Gain runs both schedules on fresh engines and returns
// serial/overlapped makespans and their ratio.
func Gain(mkStages func(eng *simtime.Engine) []Stage, rounds int) (serial, overlapped, ratio float64) {
	se := simtime.NewEngine()
	serial = Run(se, mkStages(se), rounds, false).Makespan
	oe := simtime.NewEngine()
	overlapped = Run(oe, mkStages(oe), rounds, true).Makespan
	if overlapped > 0 {
		ratio = serial / overlapped
	}
	return serial, overlapped, ratio
}
