package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"parsecureml/internal/simtime"
)

func twoStages(eng *simtime.Engine, d1, d2 float64) []Stage {
	return []Stage{
		{Res: eng.Resource("reconstruct"), Kind: "reconstruct", Dur: func(int) float64 { return d1 }},
		{Res: eng.Resource("gpu"), Kind: "gpuop", Dur: func(int) float64 { return d2 }},
	}
}

func TestSerialEqualsSum(t *testing.T) {
	eng := simtime.NewEngine()
	res := Run(eng, twoStages(eng, 2, 3), 4, false)
	if got, want := res.Makespan, 4*(2.0+3.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("serial makespan %v, want %v", got, want)
	}
}

func TestOverlappedMatchesBound(t *testing.T) {
	eng := simtime.NewEngine()
	res := Run(eng, twoStages(eng, 2, 3), 4, true)
	want := BoundSpan([]float64{2, 3}, 4) // 5 + 3*3 = 14
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Fatalf("overlapped makespan %v, want %v", res.Makespan, want)
	}
	if res.Makespan >= 4*(2.0+3.0) {
		t.Fatal("overlap must beat serial")
	}
}

func TestFig6Shape(t *testing.T) {
	// The paper's claim: pipelining saves one reconstruct per layer. With
	// reconstruct r and GPU op g per layer over L layers:
	// serial = L(r+g); pipelined ≈ r + L·g when g ≥ r.
	const layers = 8
	mk := func(eng *simtime.Engine) []Stage { return twoStages(eng, 1, 4) }
	serial, overlapped, ratio := Gain(mk, layers)
	if math.Abs(serial-layers*5.0) > 1e-9 {
		t.Fatalf("serial %v", serial)
	}
	if math.Abs(overlapped-(1+layers*4.0)) > 1e-9 {
		t.Fatalf("overlapped %v, want %v", overlapped, 1+layers*4.0)
	}
	if ratio <= 1 {
		t.Fatalf("ratio %v", ratio)
	}
}

func TestVariableDurations(t *testing.T) {
	eng := simtime.NewEngine()
	stages := []Stage{
		{Res: eng.Resource("a"), Kind: "a", Dur: func(r int) float64 { return float64(r + 1) }},
		{Res: eng.Resource("b"), Kind: "b", Dur: func(r int) float64 { return 1 }},
	}
	res := Run(eng, stages, 3, true)
	// Stage a serializes 1+2+3 = 6; last b waits for a[2] at 6, ends 7.
	if math.Abs(res.Makespan-7) > 1e-12 {
		t.Fatalf("makespan %v, want 7", res.Makespan)
	}
	if len(res.Last) != 3 || res.Last[2].End != res.Makespan {
		t.Fatal("Last tasks inconsistent")
	}
}

func TestEmptyInputs(t *testing.T) {
	eng := simtime.NewEngine()
	if r := Run(eng, nil, 5, true); r.Makespan != 0 || r.Last != nil {
		t.Fatal("nil stages must be a no-op")
	}
	if r := Run(eng, twoStages(eng, 1, 1), 0, true); r.Makespan != 0 {
		t.Fatal("zero rounds must be a no-op")
	}
}

// Properties: overlapped ≤ serial always; overlapped ≥ slowest-stage total;
// overlapped ≥ BoundSpan for constant durations (equality for 2 stages).
func TestScheduleInvariants(t *testing.T) {
	f := func(d1u, d2u, d3u uint8, roundsU uint8) bool {
		d1 := float64(d1u%50) / 10
		d2 := float64(d2u%50) / 10
		d3 := float64(d3u%50) / 10
		rounds := int(roundsU%6) + 1
		mk := func(eng *simtime.Engine) []Stage {
			return []Stage{
				{Res: eng.Resource("x"), Kind: "x", Dur: func(int) float64 { return d1 }},
				{Res: eng.Resource("y"), Kind: "y", Dur: func(int) float64 { return d2 }},
				{Res: eng.Resource("z"), Kind: "z", Dur: func(int) float64 { return d3 }},
			}
		}
		serial, overlapped, _ := Gain(mk, rounds)
		if overlapped > serial+1e-9 {
			return false
		}
		bound := BoundSpan([]float64{d1, d2, d3}, rounds)
		if overlapped+1e-9 < bound {
			return false
		}
		return math.Abs(serial-SerialSpan(mk(simtime.NewEngine()), rounds)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedResourceSerializes(t *testing.T) {
	// Two stages on the SAME resource cannot overlap across rounds.
	eng := simtime.NewEngine()
	r := eng.Resource("only")
	stages := []Stage{
		{Res: r, Kind: "s1", Dur: func(int) float64 { return 1 }},
		{Res: r, Kind: "s2", Dur: func(int) float64 { return 1 }},
	}
	res := Run(eng, stages, 5, true)
	if math.Abs(res.Makespan-10) > 1e-12 {
		t.Fatalf("same-resource pipeline %v, want 10 (no overlap possible)", res.Makespan)
	}
}
