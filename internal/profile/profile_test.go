package profile

import (
	"strings"
	"testing"

	"parsecureml/internal/hw"
)

func TestGemmPlacementBySize(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	if got := a.Gemm(16, 16, 16); got != CPU {
		t.Fatalf("tiny GEMM placed on %v, want CPU", got)
	}
	if got := a.Gemm(4096, 4096, 4096); got != GPU {
		t.Fatalf("large GEMM placed on %v, want GPU", got)
	}
}

func TestElemwiseStaysOnCPU(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	// The paper keeps the add/sub reconstruct work on the CPU at every
	// size it evaluates: PCIe alone costs more than the CPU pass.
	for _, bytes := range []int{1 << 10, 1 << 20, 1 << 28} {
		if got := a.Elemwise(bytes); got != CPU {
			t.Fatalf("elemwise %dB placed on %v, want CPU", bytes, got)
		}
	}
}

func TestRandCrossover(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	if got := a.Rand(512 * 512); got != CPU {
		t.Fatalf("small rand on %v, want CPU (Fig. 7)", got)
	}
	if got := a.Rand(16384 * 16384); got != GPU {
		t.Fatalf("huge rand on %v, want GPU (Fig. 7)", got)
	}
}

func TestDecisionLogAndSummary(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	a.Gemm(10, 10, 10)
	a.Gemm(2048, 2048, 2048)
	a.Rand(100)
	log := a.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries", len(log))
	}
	for _, d := range log {
		if d.CPUCost <= 0 || d.GPUCost <= 0 {
			t.Fatalf("non-positive modeled cost: %+v", d)
		}
	}
	s := a.Summary()
	if !strings.Contains(s, "gemm") || !strings.Contains(s, "rand") {
		t.Fatalf("summary missing classes:\n%s", s)
	}
	a.ResetLog()
	if len(a.Log()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestGPUBiasFlipsDecision(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	// Find a size where GPU wins, then bias it out.
	if a.Gemm(2048, 2048, 2048) != GPU {
		t.Fatal("precondition: 2048³ should be GPU")
	}
	a.GPUBias = 1e6
	if a.Gemm(2048, 2048, 2048) != CPU {
		t.Fatal("large GPU bias must force CPU")
	}
}

func TestCalibrate(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	modeled := a.P.CPU.GemmFlopsPerCore * float64(a.P.CPU.Cores) * a.P.CPU.ParallelEff
	a.Calibrate(modeled / 2) // machine half as fast as modeled
	if a.CPUScale < 1.99 || a.CPUScale > 2.01 {
		t.Fatalf("CPUScale = %v, want 2", a.CPUScale)
	}
	a.Calibrate(0) // ignored
	if a.CPUScale < 1.99 {
		t.Fatal("zero measurement must not reset scale")
	}
}

func TestCrossoverDim(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	dim := a.CrossoverDim(1, 8192)
	if dim <= 1 || dim > 8192 {
		t.Fatalf("crossover at %d, want interior knee", dim)
	}
	// Consistency: below the knee CPU, at/above the knee GPU.
	cpuSide := a.P.CPU.GemmTime(dim-1, dim-1, dim-1, true)
	gpuSide := a.P.GPU.GemmTime(dim-1, dim-1, dim-1, false) + 3*a.P.PCIe.TransferTime(4*(dim-1)*(dim-1))
	if gpuSide < cpuSide {
		t.Fatalf("dim %d below knee should favor CPU", dim-1)
	}
}

func TestTensorCoresShiftCrossoverDown(t *testing.T) {
	fp := NewAdvisor(hw.Paper(), false)
	tc := NewAdvisor(hw.Paper(), true)
	if tc.CrossoverDim(1, 8192) > fp.CrossoverDim(1, 8192) {
		t.Fatal("tensor cores must not raise the GPU crossover size")
	}
}

func TestPlacementString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Placement.String")
	}
}

func TestMeasureHostGemmFlops(t *testing.T) {
	flops := MeasureHostGemmFlops(128, 2)
	// Any functioning machine lands between 10 MFLOPS and 10 TFLOPS.
	if flops < 1e7 || flops > 1e13 {
		t.Fatalf("measured %v FLOP/s implausible", flops)
	}
}

func TestCalibrateFromProbe(t *testing.T) {
	a := NewAdvisor(hw.Paper(), false)
	measured := a.CalibrateFromProbe(96, 2)
	if measured <= 0 || a.CPUScale <= 0 {
		t.Fatalf("calibration failed: measured %v scale %v", measured, a.CPUScale)
	}
	// The advisor must still make sane boundary decisions afterwards.
	if a.Gemm(8, 8, 8) != CPU {
		t.Fatal("tiny GEMM must stay on CPU after calibration")
	}
}
