package profile

import (
	"time"

	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// Live calibration: measure this host's actual GEMM throughput with a real
// probe multiplication and reconcile the advisor's CPU model with it —
// the paper's profiling stage (§4.2) where nvprof/wall-clock measurements,
// not datasheets, decide placements.

// MeasureHostGemmFlops times an n×n×n multiplication on the host and
// returns the achieved FLOP/s (best of reps runs after one warm-up).
func MeasureHostGemmFlops(n, reps int) float64 {
	if n < 8 {
		n = 8
	}
	if reps < 1 {
		reps = 1
	}
	p := rng.NewPool(0x9a11b)
	a := p.NewUniform(n, n, -1, 1)
	b := p.NewUniform(n, n, -1, 1)
	dst := tensor.New(n, n)
	tensor.Mul(dst, a, b) // warm-up
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		tensor.Mul(dst, a, b)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return tensor.GemmFLOPs(n, n, n) / best.Seconds()
}

// CalibrateFromProbe measures the host and adjusts the advisor so its
// CPU-vs-GPU decisions reflect the machine it actually runs on.
func (a *Advisor) CalibrateFromProbe(n, reps int) float64 {
	measured := MeasureHostGemmFlops(n, reps)
	a.Calibrate(measured)
	return measured
}
