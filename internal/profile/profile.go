// Package profile implements the paper's profiling-guided adaptive GPU
// utilization (§4.2): decide, per operation, whether the GPU's compute
// advantage outweighs the PCIe transfers, kernel-launch latency and
// warm-up it drags in — "if the PCIe data transmission overhead is larger
// than the GPU acceleration benefits, we cannot obtain overall performance
// benefits" (§3.3, challenge 2).
//
// Two sources feed the decision: the analytic hardware models (internal/hw)
// and optional measured corrections from probe runs (Calibrate), mirroring
// the paper's use of nvprof profiles to fix the placement of each phase.
package profile

import (
	"fmt"
	"sort"
	"sync"

	"parsecureml/internal/hw"
)

// Placement says where an operation should run.
type Placement int

// Placement values.
const (
	CPU Placement = iota
	GPU
)

// String returns "CPU" or "GPU".
func (p Placement) String() string {
	if p == GPU {
		return "GPU"
	}
	return "CPU"
}

// Decision records one placement choice with its modeled costs, for the
// decision log the adaptive engine exposes.
type Decision struct {
	Op      string
	CPUCost float64
	GPUCost float64
	Choice  Placement
}

// Advisor makes placement decisions for a node.
type Advisor struct {
	P           hw.Platform
	TensorCores bool
	// CPUScale multiplies modeled CPU costs (set by Calibrate to reconcile
	// the model with measured throughput on this machine).
	CPUScale float64
	// GPUBias multiplies modeled GPU costs; >1 penalizes the GPU (e.g. to
	// account for contention the model misses).
	GPUBias float64

	mu  sync.Mutex
	log []Decision
}

// NewAdvisor returns an advisor over platform p.
func NewAdvisor(p hw.Platform, tensorCores bool) *Advisor {
	return &Advisor{P: p, TensorCores: tensorCores, CPUScale: 1, GPUBias: 1}
}

func (a *Advisor) decide(op string, cpu, gpu float64) Placement {
	cpu *= a.CPUScale
	gpu *= a.GPUBias
	choice := CPU
	if gpu < cpu {
		choice = GPU
	}
	a.mu.Lock()
	a.log = append(a.log, Decision{Op: op, CPUCost: cpu, GPUCost: gpu, Choice: choice})
	a.mu.Unlock()
	return choice
}

// Gemm places an m×k × k×n multiplication whose operands must be shipped
// to the device and whose result comes back.
func (a *Advisor) Gemm(m, k, n int) Placement {
	cpu := a.P.CPU.GemmTime(m, k, n, true)
	xfer := a.P.PCIe.TransferTime(4*(m*k+k*n)) + a.P.PCIe.TransferTime(4*m*n)
	gpu := a.P.GPU.GemmTime(m, k, n, a.TensorCores) + xfer
	return a.decide(fmt.Sprintf("gemm %dx%dx%d", m, k, n), cpu, gpu)
}

// TripletZ places the offline Z = U×V computation (the >90 % offline step).
func (a *Advisor) TripletZ(m, k, n int) Placement {
	return a.Gemm(m, k, n)
}

// Elemwise places an element-wise pass over the given bytes. The paper
// keeps these on the CPU ("distributing the rest operations on GPUs could
// cause extra 4.5 percent performance degradation", §4.2); the model
// reproduces that: transfer alone exceeds the CPU pass.
func (a *Advisor) Elemwise(bytes int) Placement {
	cpu := a.P.CPU.ElemwiseTime(3*bytes, true)
	gpu := a.P.GPU.ElemwiseTime(3*bytes) + 2*a.P.PCIe.TransferTime(bytes) + a.P.PCIe.TransferTime(bytes)
	return a.decide(fmt.Sprintf("elemwise %dB", bytes), cpu, gpu)
}

// Rand places generation of n random values that must end up in host
// memory (Fig. 7's cuRAND-vs-MT19937 comparison).
func (a *Advisor) Rand(n int) Placement {
	cpu := a.P.CPU.RandTime(n, true)
	gpu := a.P.GPU.RandTime(n) + a.P.PCIe.TransferTime(4*n)
	return a.decide(fmt.Sprintf("rand %d", n), cpu, gpu)
}

// Log returns a copy of the decision log.
func (a *Advisor) Log() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Decision, len(a.log))
	copy(out, a.log)
	return out
}

// ResetLog clears the decision log.
func (a *Advisor) ResetLog() {
	a.mu.Lock()
	a.log = nil
	a.mu.Unlock()
}

// Summary aggregates the log into per-op-class GPU fractions, the view the
// paper's profiling stage produces.
func (a *Advisor) Summary() string {
	type agg struct{ gpu, total int }
	classes := map[string]*agg{}
	for _, d := range a.Log() {
		var class string
		fmt.Sscanf(d.Op, "%s", &class)
		c, ok := classes[class]
		if !ok {
			c = &agg{}
			classes[class] = c
		}
		c.total++
		if d.Choice == GPU {
			c.gpu++
		}
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		c := classes[n]
		s += fmt.Sprintf("%-10s %4d ops, %5.1f%% on GPU\n", n, c.total, 100*float64(c.gpu)/float64(c.total))
	}
	return s
}

// Calibrate adjusts CPUScale from a measured CPU GEMM throughput
// (FLOP/s): the paper's profiling step, reduced to one scalar. Callers
// measure a probe GEMM with real wall time and pass the achieved rate.
func (a *Advisor) Calibrate(measuredCPUGemmFlops float64) {
	modeled := a.P.CPU.GemmFlopsPerCore * float64(a.P.CPU.Cores) * a.P.CPU.ParallelEff
	if measuredCPUGemmFlops > 0 {
		a.CPUScale = modeled / measuredCPUGemmFlops
	}
}

// CrossoverDim finds the smallest square GEMM dimension (within [lo,hi])
// for which the advisor picks the GPU — the knee the paper's Fig. 17 and
// §7.7 discuss. Returns hi+1 if the GPU never wins in range.
func (a *Advisor) CrossoverDim(lo, hi int) int {
	ans := hi + 1
	for l, h := lo, hi; l <= h; {
		mid := (l + h) / 2
		cpu := a.P.CPU.GemmTime(mid, mid, mid, true)
		xfer := 3 * a.P.PCIe.TransferTime(4*mid*mid)
		gpu := a.P.GPU.GemmTime(mid, mid, mid, a.TensorCores) + xfer
		if gpu < cpu {
			ans = mid
			h = mid - 1
		} else {
			l = mid + 1
		}
	}
	return ans
}
