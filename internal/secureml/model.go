package secureml

import (
	"fmt"

	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// LossKind selects the secure training objective.
type LossKind int

// Loss kinds: MSELoss covers linear/logistic/MLP/CNN/RNN (SecureML trains
// its classifiers against squared error on the squashed output); HingeLoss
// is the SVM objective, computed with one secure Hadamard (margin = y⊙pred)
// plus a joint margin reconstruction.
const (
	MSELoss LossKind = iota
	HingeLoss
)

// Phases reports a run's time split the way the paper does (Table 3):
// offline = client preparation, online = server processing.
type Phases struct {
	Offline float64
	Online  float64
	Total   float64
}

// Occupancy is online/total (Table 3's rightmost columns).
func (p Phases) Occupancy() float64 {
	if p.Total == 0 {
		return 0
	}
	return p.Online / p.Total
}

// Model is a secret-shared network bound to a deployment.
type Model struct {
	Name string
	d    *mpc.Deployment

	layers []secureLayer
	loss   LossKind
	cache  *siteCache

	batch   int
	batches int

	// offline-prepared batch shares
	xs, ys []shared

	offlineSplitEnd float64 // makespan after the per-batch input splits
	offlineEnd      float64
	prepared        bool

	// epochsDone counts completed training epochs across TrainEpochs and
	// TrainEpochsCheckpointed calls; Restore sets it from a checkpoint.
	epochsDone int
}

// FromPlain builds the secure counterpart of a plaintext model: the
// client splits the initial weights to the servers. Layer kinds map by
// type; unknown layers panic.
func FromPlain(d *mpc.Deployment, plain *ml.Model, loss LossKind) *Model {
	m := &Model{Name: plain.Name, d: d, loss: loss, cache: newSiteCache(d)}
	for i, l := range plain.Layers {
		switch pl := l.(type) {
		case *ml.Dense:
			act, hasAct := mapAct(pl.Act)
			m.layers = append(m.layers, newSecureDense(m, i, pl.InDim(), pl.OutDim(), act, hasAct, pl.W, pl.B))
		case *ml.Conv2D:
			act, hasAct := mapAct(pl.Act)
			m.layers = append(m.layers, newSecureConv(m, i, pl.Shape, pl.Filters, act, hasAct, pl.K, pl.B))
		case *ml.RNN:
			act, _ := mapAct(pl.Act)
			m.layers = append(m.layers, newSecureRNN(m, i, pl.InStep, pl.Hidden, pl.Steps, act, pl.Wx, pl.Wh, pl.B))
		case *ml.AvgPool:
			m.layers = append(m.layers, &securePool{idx: i, p: pl})
		case *ml.Attention:
			m.layers = append(m.layers, newSecureAttention(m, i, attWeightsOf(pl)))
		case *ml.TransformerBlock:
			act1, hasAct1 := mapAct(pl.FF1.Act)
			act2, hasAct2 := mapAct(pl.FF2.Act)
			m.layers = append(m.layers, &secureTransformer{
				att: newSecureAttention(m, i, attWeightsOf(pl.Att)),
				// Feed-forward sub-layers get site indices far above any
				// top-level layer index so their "L%d.*" keys can't collide.
				ff1: newSecureDense(m, ffSiteBase+i*2, pl.FF1.InDim(), pl.FF1.OutDim(), act1, hasAct1, pl.FF1.W, pl.FF1.B),
				ff2: newSecureDense(m, ffSiteBase+i*2+1, pl.FF2.InDim(), pl.FF2.OutDim(), act2, hasAct2, pl.FF2.W, pl.FF2.B),
			})
		default:
			panic(fmt.Sprintf("secureml: unsupported layer type %T", l))
		}
	}
	return m
}

// ffSiteBase offsets the site indices of transformer feed-forward
// sub-layers past any plausible top-level layer index (Load caps layer
// count at 1024).
const ffSiteBase = 1 << 16

func attWeightsOf(a *ml.Attention) *attentionWeights {
	return &attentionWeights{
		heads: a.Heads, causal: a.Causal,
		wq: a.Wq, wk: a.Wk, wv: a.Wv, wo: a.Wo,
		bq: a.Bq, bk: a.Bk, bv: a.Bv, bo: a.Bo,
	}
}

func mapAct(a ml.Activation) (mpc.ActivationKind, bool) {
	switch a {
	case ml.ReLU:
		return mpc.ActReLU, true
	case ml.Piecewise:
		return mpc.ActPiecewise, true
	case ml.Sigmoid:
		return mpc.ActSigmoid, true
	case ml.SigmoidTaylor:
		return mpc.ActSigmoidTaylor, true
	default:
		return mpc.ActPiecewise, false // identity: no activation protocol
	}
}

// splitClient secret-shares a client-held tensor and uploads the shares to
// the servers (offline).
func (m *Model) splitClient(secret *tensor.Matrix) shared {
	s0, s1, t := m.d.Client.Split(secret)
	t = m.d.Upload(secret.Bytes(), t)
	return shared{s0: s0, s1: s1, t0: t, t1: t}
}

// Deployment returns the underlying deployment.
func (m *Model) Deployment() *mpc.Deployment { return m.d }

// AllowLazySites permits site creation during the online phase (tests and
// single-shot inference convenience); offline/online attribution then
// blurs, so benches never use it.
func (m *Model) AllowLazySites() { m.cache.lazyOK = true }

// Prepare runs the offline phase for a training run: the client splits
// every batch of inputs and labels and generates every multiplication
// site's triplet. The xs[i] rows are one batch of samples; shapes must
// chain through the model.
func (m *Model) Prepare(xs, ys []*tensor.Matrix) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("secureml: Prepare needs matching, non-empty batch lists")
	}
	m.batch = xs[0].Rows
	m.batches = len(xs)
	m.xs = m.xs[:0]
	m.ys = m.ys[:0]
	var last *simtime.Task
	for b := range xs {
		if xs[b].Rows != m.batch {
			panic("secureml: Prepare requires a uniform batch size (triplet sites are batch-shared)")
		}
		m.xs = append(m.xs, m.splitClient(xs[b]))
		m.ys = append(m.ys, m.splitClient(ys[b]))
	}
	m.offlineSplitEnd = m.d.Eng.Makespan()
	// Triplet sites are shared across batches (released-implementation
	// semantics): one site set per layer geometry.
	for _, l := range m.layers {
		last = l.prepare(m.cache, m.batch, last)
	}
	if m.loss == HingeLoss {
		s := m.cache.prepare("hinge", "hadamard", m.batch, 1, 1, last)
		last = s.ready
	}
	m.offlineEnd = m.d.Eng.Makespan()
	m.prepared = true
}

// forwardBatch runs the secure forward pass for prepared batch b,
// returning the prediction shares.
func (m *Model) forwardBatch(b int) shared {
	tag := fmt.Sprintf("b%d", b)
	x := m.xs[b]
	for _, l := range m.layers {
		x = l.forward(m, tag, x)
	}
	return x
}

// lossGrad computes ∂L/∂pred as shares. MSE is share-local; hinge uses a
// secure Hadamard for the margin plus a joint reconstruction of the margin
// mask (documented leak, mirroring the activation protocol).
func (m *Model) lossGrad(b int, pred shared) shared {
	tag := fmt.Sprintf("b%d", b)
	y := m.ys[b]
	switch m.loss {
	case HingeLoss:
		margin := secureHadamard(m.d, m.cache, "hinge", fmt.Sprintf("hinge.%s", tag), y, pred)
		// Jointly reveal the margin to form the public subgradient mask
		// 1[y·pred < 1], then grad_i = −mask ⊙ y_i / batch (local).
		pub, t0, t1 := mpc.Reveal(fmt.Sprintf("hingemask.%s", tag), m.d.S0, m.d.S1,
			margin.s0, margin.s1, margin.t0, margin.t1)
		mask := tensor.New(pred.rows(), pred.cols())
		if tensor.ComputeEnabled() {
			for i, v := range pub.Data {
				if v < 1 {
					mask.Data[i] = 1
				}
			}
		}
		maskedY := shared{s0: y.s0, s1: y.s1,
			t0: m.d.S0.ElemTask("hinge.mask", 2*mask.Bytes(), t0),
			t1: m.d.S1.ElemTask("hinge.mask", 2*mask.Bytes(), t1)}
		g := hadamardPublic(m.d, maskedY, mask)
		return scaleShares(m.d, g, -1/float32(pred.rows()))
	default:
		g := subShares(m.d, pred, y)
		return scaleShares(m.d, g, 1/float32(pred.rows()))
	}
}

// trainOneEpoch runs one full pass of secure SGD over the prepared
// batches. Gradient accumulators are consumed by update() every batch,
// so between epochs the only mutable training state is the weight
// shares plus the RNG cursors — exactly what a checkpoint captures.
func (m *Model) trainOneEpoch(lr float32) {
	for b := 0; b < m.batches; b++ {
		tag := fmt.Sprintf("b%d", b)
		pred := m.forwardBatch(b)
		grad := m.lossGrad(b, pred)
		for i := len(m.layers) - 1; i >= 0; i-- {
			grad = m.layers[i].backward(m, tag, grad)
		}
		for _, l := range m.layers {
			l.update(m, lr)
		}
	}
}

// TrainEpochs runs secure SGD for the prepared batches. Epochs are
// relative: each call trains `epochs` more on top of whatever ran (or
// was restored) before.
func (m *Model) TrainEpochs(epochs int, lr float32) {
	if !m.prepared {
		panic("secureml: TrainEpochs before Prepare")
	}
	for e := 0; e < epochs; e++ {
		m.trainOneEpoch(lr)
		m.epochsDone++
	}
}

// EpochsDone reports how many epochs the model has completed, including
// epochs inherited through Restore.
func (m *Model) EpochsDone() int { return m.epochsDone }

// TrainEpochsCheckpointed trains until `total` epochs have completed —
// absolute, so a model restored at epoch k trains total−k more — and
// hands a checkpoint to sink every `every` epochs (and always at
// `total`). A sink error stops training and is returned; the epochs
// before it remain applied.
//
// Checkpoint cadence affects bit-exactness, not just durability: every
// checkpoint rebases the compressed E/F delta streams, which changes
// fp32 rounding downstream. Two runs match bit-for-bit only if they
// checkpoint at the same epochs — compare a resumed run against an
// uninterrupted run with the same `every`, not against TrainEpochs.
func (m *Model) TrainEpochsCheckpointed(total int, lr float32, every int, sink func(epoch int, data []byte) error) error {
	if !m.prepared {
		panic("secureml: TrainEpochsCheckpointed before Prepare")
	}
	if every <= 0 {
		every = 1
	}
	for m.epochsDone < total {
		m.trainOneEpoch(lr)
		m.epochsDone++
		if sink != nil && (m.epochsDone%every == 0 || m.epochsDone == total) {
			if err := sink(m.epochsDone, m.Checkpoint(lr)); err != nil {
				return err
			}
		}
	}
	return nil
}

// InferBatches runs forward passes only over the prepared batches (the
// paper's secure-inference experiment, Fig. 13). Results are merged by
// the client; the returned matrices are the plaintext predictions.
func (m *Model) InferBatches() []*tensor.Matrix {
	if !m.prepared {
		panic("secureml: InferBatches before Prepare")
	}
	out := make([]*tensor.Matrix, m.batches)
	for b := 0; b < m.batches; b++ {
		pred := m.forwardBatch(b)
		tDown := m.d.Download(pred.s0.Bytes(), pred.t0, pred.t1)
		merged, _ := m.d.Client.Combine(pred.s0, pred.s1, tDown)
		out[b] = merged
	}
	return out
}

// OfflineSplit returns the portion of the offline phase spent splitting
// and uploading batch data (scales with batch count), as opposed to the
// batch-shared triplet generation. Benchmark scaling uses it.
func (m *Model) OfflineSplit() float64 { return m.offlineSplitEnd }

// Phases reports the offline/online/total split of everything run so far.
func (m *Model) Phases() Phases {
	total := m.d.Eng.Makespan()
	online := total - m.offlineEnd
	if online < 0 {
		online = 0
	}
	return Phases{Offline: m.offlineEnd, Online: online, Total: total}
}

// RevealInto reconstructs the trained weight shares back into the
// plaintext model (the client's final download). Layer structure must
// match FromPlain's source.
func (m *Model) RevealInto(plain *ml.Model) {
	for i, l := range m.layers {
		switch sl := l.(type) {
		case *secureDense:
			pl := plain.Layers[i].(*ml.Dense)
			pl.W.CopyFrom(sl.w.reveal())
			pl.B.CopyFrom(sl.b.reveal())
		case *secureConv:
			pl := plain.Layers[i].(*ml.Conv2D)
			pl.K.CopyFrom(sl.k.reveal())
			pl.B.CopyFrom(sl.b.reveal())
		case *secureRNN:
			pl := plain.Layers[i].(*ml.RNN)
			pl.Wx.CopyFrom(sl.wx.reveal())
			pl.Wh.CopyFrom(sl.wh.reveal())
			pl.B.CopyFrom(sl.b.reveal())
		case *secureAttention:
			revealAttention(sl, plain.Layers[i].(*ml.Attention))
		case *secureTransformer:
			pl := plain.Layers[i].(*ml.TransformerBlock)
			revealAttention(sl.att, pl.Att)
			pl.FF1.W.CopyFrom(sl.ff1.w.reveal())
			pl.FF1.B.CopyFrom(sl.ff1.b.reveal())
			pl.FF2.W.CopyFrom(sl.ff2.w.reveal())
			pl.FF2.B.CopyFrom(sl.ff2.b.reveal())
		}
	}
}

func revealAttention(sl *secureAttention, pl *ml.Attention) {
	pl.Wq.CopyFrom(sl.wq.reveal())
	pl.Wk.CopyFrom(sl.wk.reveal())
	pl.Wv.CopyFrom(sl.wv.reveal())
	pl.Wo.CopyFrom(sl.wo.reveal())
	pl.Bq.CopyFrom(sl.bq.reveal())
	pl.Bk.CopyFrom(sl.bk.reveal())
	pl.Bv.CopyFrom(sl.bv.reveal())
	pl.Bo.CopyFrom(sl.bo.reveal())
}
