package secureml

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

// ckptFixture builds a small two-layer model with deterministic weights
// and data; calling it twice with the same cfg yields bit-identical
// starting states.
func ckptFixture(cfg mpc.Config) (*Model, *ml.Model, []*tensor.Matrix, []*tensor.Matrix) {
	r := rng.NewRand(41)
	plain := ml.NewModel("ckpt-toy", ml.MSE{},
		ml.NewDense(8, 6, ml.ReLU, r),
		ml.NewDense(6, 1, ml.Identity, r),
	)
	x := tensor.New(8, 8)
	y := tensor.New(8, 1)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := range y.Data {
		y.Data[i] = r.Float32()
	}
	xs, ys := batches(x, y, 4)
	d := mpc.NewDeployment(cfg)
	m := FromPlain(d, plain, MSELoss)
	m.Prepare(xs, ys)
	return m, plain, xs, ys
}

func revealBits(t *testing.T, m *Model, plain *ml.Model) []uint32 {
	t.Helper()
	m.RevealInto(plain)
	var bits []uint32
	for _, l := range plain.Layers {
		dl := l.(*ml.Dense)
		for _, v := range dl.W.Data {
			bits = append(bits, math.Float32bits(v))
		}
		for _, v := range dl.B.Data {
			bits = append(bits, math.Float32bits(v))
		}
	}
	return bits
}

// A run resumed from an epoch-k checkpoint must reach weights
// bit-identical to an uninterrupted run with the same checkpoint
// cadence. Exercised with compression both off and on: the compressed
// E/F delta streams are fp32-history-dependent, so this is what proves
// the checkpoint's delta-stream rebase works.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Compress = compress
			const total, every = 4, 2
			const lr = 0.1

			// Uninterrupted run, checkpointing every 2 epochs.
			mA, plainA, _, _ := ckptFixture(cfg)
			ckpts := map[int][]byte{}
			if err := mA.TrainEpochsCheckpointed(total, lr, every, func(epoch int, data []byte) error {
				ckpts[epoch] = data
				return nil
			}); err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			wantBits := revealBits(t, mA, plainA)

			// "Crashed" run: a fresh process rebuilds the model, restores
			// the epoch-2 checkpoint, and finishes.
			mB, plainB, _, _ := ckptFixture(cfg)
			info, err := mB.Restore(ckpts[2])
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if info.Epoch != 2 || info.LR != lr {
				t.Fatalf("restore info = %+v", info)
			}
			if mB.EpochsDone() != 2 {
				t.Fatalf("EpochsDone after restore = %d", mB.EpochsDone())
			}
			if err := mB.TrainEpochsCheckpointed(total, lr, every, func(int, []byte) error { return nil }); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			gotBits := revealBits(t, mB, plainB)

			if len(gotBits) != len(wantBits) {
				t.Fatalf("weight count mismatch: %d vs %d", len(gotBits), len(wantBits))
			}
			for i := range gotBits {
				if gotBits[i] != wantBits[i] {
					t.Fatalf("weight %d differs after resume: %08x vs %08x", i, gotBits[i], wantBits[i])
				}
			}
			// And the final checkpoints themselves must agree.
			lastA := ckpts[total]
			lastB := mB.Checkpoint(lr)
			if !bytes.Equal(lastA, lastB) {
				t.Fatalf("final checkpoints differ (%d vs %d bytes)", len(lastA), len(lastB))
			}
		})
	}
}

func TestCheckpointRoundTripAndValidation(t *testing.T) {
	cfg := testConfig()
	m, _, _, _ := ckptFixture(cfg)
	m.TrainEpochs(1, 0.1)
	data := m.Checkpoint(0.1)

	st, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.name != "ckpt-toy" || st.epochs != 1 || st.lr != 0.1 || len(st.layers) != 2 {
		t.Fatalf("decoded state = %+v", st)
	}

	// Truncations at every offset must error, never panic.
	for i := 0; i < len(data); i++ {
		if _, err := decodeCheckpoint(data[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	// Trailing garbage is rejected (a partial concatenation, not a frame).
	if _, err := decodeCheckpoint(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatalf("trailing byte accepted")
	}
	// Version skew is rejected up front.
	skew := append([]byte{}, data...)
	skew[4] = 0xFF
	if _, err := decodeCheckpoint(skew); err == nil {
		t.Fatalf("version skew accepted")
	}
	// A structurally different model refuses the checkpoint wholesale.
	r := rng.NewRand(7)
	other := ml.NewModel("other", ml.MSE{}, ml.NewDense(8, 6, ml.ReLU, r), ml.NewDense(6, 1, ml.Identity, r))
	x := tensor.New(4, 8)
	y := tensor.New(4, 1)
	om := FromPlain(mpc.NewDeployment(cfg), other, MSELoss)
	om.Prepare([]*tensor.Matrix{x}, []*tensor.Matrix{y})
	if _, err := om.Restore(data); err == nil {
		t.Fatalf("mismatched model accepted the checkpoint")
	}
	// om is untouched by the failed restore.
	if om.EpochsDone() != 0 {
		t.Fatalf("failed restore advanced EpochsDone to %d", om.EpochsDone())
	}
}

func TestCheckpointFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, _, ok, err := LatestCheckpoint(dir); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	for epoch, data := range map[int][]byte{2: []byte("two"), 10: []byte("ten"), 4: []byte("four")} {
		if _, err := WriteCheckpointFile(dir, epoch, data); err != nil {
			t.Fatalf("write epoch %d: %v", epoch, err)
		}
	}
	// A stray temp file (crash mid-write) must not confuse the scan.
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-stray"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, epoch, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if epoch != 10 {
		t.Fatalf("latest epoch = %d", epoch)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "ten" {
		t.Fatalf("latest content %q, %v", got, err)
	}
}

// FuzzCheckpointCodec hammers the decode path: arbitrary input must
// error or decode cleanly — never panic, and never allocate beyond what
// the buffer length justifies (matrix payload sizes are validated before
// allocation, so a 4-GiB dimension claim in a 100-byte buffer fails
// fast).
func FuzzCheckpointCodec(f *testing.F) {
	m, _, _, _ := ckptFixture(testConfig())
	m.TrainEpochs(1, 0.1)
	valid := m.Checkpoint(0.1)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	f.Add([]byte("PSCK"))
	skew := append([]byte{}, valid...)
	skew[4] = 2 // future version
	f.Add(skew)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeCheckpoint(data)
		if err == nil && st == nil {
			t.Fatalf("nil state with nil error")
		}
	})
}
