package secureml

import (
	"parsecureml/internal/ml"
	"parsecureml/internal/simtime"
)

// securePool wraps average pooling, which is linear and therefore applies
// share-locally with no triplet, no exchange, and no reveal — the reason
// MPC frameworks favor average over max pooling.
type securePool struct {
	idx int
	p   *ml.AvgPool
}

func (l *securePool) inDim() int  { return l.p.InDim() }
func (l *securePool) outDim() int { return l.p.OutDim() }

func (l *securePool) prepare(cache *siteCache, batch int, dep *simtime.Task) *simtime.Task {
	return dep // no offline material needed
}

func (l *securePool) forward(m *Model, batchTag string, x shared) shared {
	bytes := 4 * x.rows() * (l.p.InDim() + l.p.OutDim())
	return shared{
		s0: l.p.Forward(x.s0),
		s1: l.p.Forward(x.s1),
		t0: m.d.S0.ElemTask("avgpool", bytes, x.t0),
		t1: m.d.S1.ElemTask("avgpool", bytes, x.t1),
	}
}

func (l *securePool) backward(m *Model, batchTag string, dout shared) shared {
	bytes := 4 * dout.rows() * (l.p.InDim() + l.p.OutDim())
	return shared{
		s0: l.p.Backward(dout.s0),
		s1: l.p.Backward(dout.s1),
		t0: m.d.S0.ElemTask("avgpool.bwd", bytes, dout.t0),
		t1: m.d.S1.ElemTask("avgpool.bwd", bytes, dout.t1),
	}
}

func (l *securePool) update(m *Model, lr float32) {}
