package secureml

import (
	"bytes"
	"testing"

	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/rng"
	"parsecureml/internal/tensor"
)

func TestSecureTransformerForwardMatchesPlaintext(t *testing.T) {
	r := rng.NewRand(21)
	plain := ml.NewTransformer(12, 16, 4, 24, r)
	x := tensor.New(8, 12)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	want := plain.Predict(x)

	d := mpc.NewDeployment(testConfig())
	m := FromPlain(d, plain, MSELoss)
	y := tensor.New(8, 10)
	m.Prepare([]*tensor.Matrix{x}, []*tensor.Matrix{y})
	got := m.InferBatches()[0]
	if !got.ApproxEqual(want, 0.02) {
		t.Fatalf("secure transformer forward off by %v", got.MaxAbsDiff(want))
	}
}

func TestSecureAttentionForwardMatchesPlaintext(t *testing.T) {
	r := rng.NewRand(22)
	att := ml.NewAttention(8, 2, true, r)
	plain := ml.NewModel("att", ml.MSE{}, att)
	x := tensor.New(6, 8)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	want := plain.Predict(x)

	d := mpc.NewDeployment(testConfig())
	m := FromPlain(d, plain, MSELoss)
	y := tensor.New(6, 8)
	m.Prepare([]*tensor.Matrix{x}, []*tensor.Matrix{y})
	got := m.InferBatches()[0]
	if !got.ApproxEqual(want, 0.02) {
		t.Fatalf("secure attention forward off by %v", got.MaxAbsDiff(want))
	}
}

// Secure transformer SGD must track plaintext SGD batch for batch.
func TestSecureTransformerTrainingMatchesPlaintext(t *testing.T) {
	r := rng.NewRand(23)
	plain := ml.NewTransformer(12, 8, 2, 12, r)
	var buf bytes.Buffer
	if err := ml.Save(&buf, plain); err != nil {
		t.Fatal(err)
	}
	ref, err := ml.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	x := tensor.New(16, 12)
	y := tensor.New(16, 10)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	for i := 0; i < 16; i++ {
		y.Set(i, i%10, 1)
	}
	xs, ys := batches(x, y, 8)

	d := mpc.NewDeployment(testConfig())
	m := FromPlain(d, plain, MSELoss)
	m.Prepare(xs, ys)
	m.TrainEpochs(2, 0.05)

	for e := 0; e < 2; e++ {
		for b := range xs {
			ref.TrainBatch(xs[b], ys[b], 0.05)
		}
	}

	trained := ml.NewTransformer(12, 8, 2, 12, rng.NewRand(0))
	m.RevealInto(trained)
	tb := trained.Layers[1].(*ml.TransformerBlock)
	rb := ref.Layers[1].(*ml.TransformerBlock)
	for name, pair := range map[string][2]*tensor.Matrix{
		"Att.Wq": {tb.Att.Wq, rb.Att.Wq},
		"Att.Wo": {tb.Att.Wo, rb.Att.Wo},
		"FF1.W":  {tb.FF1.W, rb.FF1.W},
		"FF2.W":  {tb.FF2.W, rb.FF2.W},
	} {
		if !pair[0].ApproxEqual(pair[1], 0.02) {
			t.Fatalf("%s diverged by %v", name, pair[0].MaxAbsDiff(pair[1]))
		}
	}
}

// A transformer checkpoint must survive the encode/restore round trip.
func TestTransformerCheckpointRoundTrip(t *testing.T) {
	r := rng.NewRand(24)
	plain := ml.NewTransformer(12, 8, 2, 12, r)
	x := tensor.New(8, 12)
	y := tensor.New(8, 10)
	for i := range x.Data {
		x.Data[i] = r.Float32() - 0.5
	}
	xs, ys := []*tensor.Matrix{x}, []*tensor.Matrix{y}

	d := mpc.NewDeployment(testConfig())
	m := FromPlain(d, plain, MSELoss)
	m.Prepare(xs, ys)
	m.TrainEpochs(1, 0.05)
	ck := m.Checkpoint(0.05)

	d2 := mpc.NewDeployment(testConfig())
	m2 := FromPlain(d2, ml.NewTransformer(12, 8, 2, 12, rng.NewRand(99)), MSELoss)
	m2.Prepare(xs, ys)
	if _, err := m2.Restore(ck); err != nil {
		t.Fatal(err)
	}

	m.TrainEpochs(1, 0.05)
	m2.TrainEpochs(1, 0.05)
	a := ml.NewTransformer(12, 8, 2, 12, rng.NewRand(0))
	b := ml.NewTransformer(12, 8, 2, 12, rng.NewRand(0))
	m.RevealInto(a)
	m2.RevealInto(b)
	ta := a.Layers[1].(*ml.TransformerBlock)
	tbb := b.Layers[1].(*ml.TransformerBlock)
	if !ta.Att.Wq.Equal(tbb.Att.Wq) || !ta.FF1.W.Equal(tbb.FF1.W) {
		t.Fatal("restored transformer training diverged from the original")
	}
}
