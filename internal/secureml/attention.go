package secureml

import (
	"fmt"
	"math"

	"parsecureml/internal/ml"
	"parsecureml/internal/mpc"
	"parsecureml/internal/simtime"
	"parsecureml/internal/tensor"
)

// secureAttention is multi-head self-attention over shares. Attention is
// GEMM-dominated, which is exactly the shape the banded E/F pipeline and
// the wire batching were built for: the Q/K/V projections, every head's
// QKᵀ score product and score·V context product, and the output
// projection are each their own Beaver multiplication site. The softmax
// is the one nonlinearity — it runs the reveal-and-reshare protocol
// (mpc.SecureRowSoftmax) with the piecewise/polynomial approximation
// whose error contract lives in DESIGN.md, mirroring how the existing
// activations are handled. The residual combiner is the linear
// (x + MHA(x))/√2 layernorm substitute, so it stays share-local.
type secureAttention struct {
	idx    int
	dm     int // model width
	heads  int
	causal bool

	wq, wk, wv, wo shared
	bq, bk, bv, bo shared

	// forward caches
	x, q, k, v, ctx shared
	qhs, khs, vhs   []shared
	ps              []shared         // re-shared per-head probabilities
	probs           []*tensor.Matrix // public per-head probabilities

	dwq, dwk, dwv, dwo shared
	dbq, dbk, dbv, dbo shared
	hasGrad            bool
}

func newSecureAttention(m *Model, idx int, pl *attentionWeights) *secureAttention {
	l := &secureAttention{idx: idx, dm: pl.wq.Rows, heads: pl.heads, causal: pl.causal}
	l.wq, l.wk, l.wv, l.wo = m.splitClient(pl.wq), m.splitClient(pl.wk), m.splitClient(pl.wv), m.splitClient(pl.wo)
	l.bq, l.bk, l.bv, l.bo = m.splitClient(pl.bq), m.splitClient(pl.bk), m.splitClient(pl.bv), m.splitClient(pl.bo)
	return l
}

// attentionWeights is the plain-side parameter bundle newSecureAttention
// splits (decoupled from ml.Attention so RevealInto can reuse it).
type attentionWeights struct {
	heads          int
	causal         bool
	wq, wk, wv, wo *tensor.Matrix
	bq, bk, bv, bo *tensor.Matrix
}

func (l *secureAttention) inDim() int  { return l.dm }
func (l *secureAttention) outDim() int { return l.dm }

func (l *secureAttention) key(op string) string {
	return fmt.Sprintf("L%d.%s", l.idx, op)
}

func (l *secureAttention) hkey(op string, h int) string {
	return fmt.Sprintf("L%d.%s.h%d", l.idx, op, h)
}

func (l *secureAttention) prepare(cache *siteCache, batch int, dep *simtime.Task) *simtime.Task {
	d, dh := l.dm, l.dm/l.heads
	last := dep
	for _, op := range []string{"q", "k", "v"} {
		last = cache.prepare(l.key(op), "gemm", batch, d, d, last).ready
	}
	for h := 0; h < l.heads; h++ {
		last = cache.prepare(l.hkey("sc", h), "gemm", batch, dh, batch, last).ready
		last = cache.prepare(l.hkey("ctx", h), "gemm", batch, batch, dh, last).ready
	}
	last = cache.prepare(l.key("o"), "gemm", batch, d, d, last).ready
	// backward
	last = cache.prepare(l.key("dctx"), "gemm", batch, d, d, last).ready
	last = cache.prepare(l.key("dWo"), "gemm", d, batch, d, last).ready
	for h := 0; h < l.heads; h++ {
		last = cache.prepare(l.hkey("dP", h), "gemm", batch, dh, batch, last).ready
		last = cache.prepare(l.hkey("dV", h), "gemm", batch, batch, dh, last).ready
		last = cache.prepare(l.hkey("dQ", h), "gemm", batch, batch, dh, last).ready
		last = cache.prepare(l.hkey("dK", h), "gemm", batch, batch, dh, last).ready
	}
	for _, op := range []string{"dWq", "dWk", "dWv"} {
		last = cache.prepare(l.key(op), "gemm", d, batch, d, last).ready
	}
	for _, op := range []string{"dXq", "dXk", "dXv"} {
		last = cache.prepare(l.key(op), "gemm", batch, d, d, last).ready
	}
	return last
}

// secureSoftmax runs the reveal-and-reshare softmax protocol, returning
// the re-shared probabilities plus the public probability matrix both
// servers hold afterwards.
func secureSoftmax(d *mpc.Deployment, key string, causal bool, s shared) (shared, *tensor.Matrix) {
	r0, r1 := mpc.SecureRowSoftmax(key, d.S0, d.S1, d.MaskPool(), causal, s.s0, s.s1, s.t0, s.t1)
	return shared{s0: r0.Share, s1: r1.Share, t0: r0.Done, t1: r1.Done}, r0.Deriv
}

// softmaxBackwardShares computes dS = P⊙(dP − rowsum(dP⊙P)) on shares.
// P is public after the softmax reveal and the map is linear in dP, so
// it is share-local — no extra multiplication sites or exchanges.
func softmaxBackwardShares(d *mpc.Deployment, pub *tensor.Matrix, dp shared) shared {
	comp := func(m *tensor.Matrix) *tensor.Matrix {
		out := tensor.New(m.Rows, m.Cols)
		if !tensor.ComputeEnabled() {
			return out
		}
		for r := 0; r < m.Rows; r++ {
			pr, dr, or := pub.Row(r), m.Row(r), out.Row(r)
			var dot float32
			for c := range pr {
				dot += pr[c] * dr[c]
			}
			for c := range pr {
				or[c] = pr[c] * (dr[c] - dot)
			}
		}
		return out
	}
	return localBoth(d, "smbwd", 4*dp.s0.Bytes(), dp, comp)
}

func (l *secureAttention) forward(m *Model, batchTag string, x shared) shared {
	d, dh := l.dm, l.dm/l.heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	l.x = x
	l.q = addBias(m.d, secureMatMul(m.d, m.cache, l.key("q"), l.key("q")+"."+batchTag, x, l.wq), l.bq)
	l.k = addBias(m.d, secureMatMul(m.d, m.cache, l.key("k"), l.key("k")+"."+batchTag, x, l.wk), l.bk)
	l.v = addBias(m.d, secureMatMul(m.d, m.cache, l.key("v"), l.key("v")+"."+batchTag, x, l.wv), l.bv)

	batch := x.rows()
	l.ctx = shared{s0: tensor.New(batch, d), s1: tensor.New(batch, d), t0: x.t0, t1: x.t1}
	l.qhs, l.khs, l.vhs = l.qhs[:0], l.khs[:0], l.vhs[:0]
	l.ps, l.probs = l.ps[:0], l.probs[:0]
	for h := 0; h < l.heads; h++ {
		lo := h * dh
		qh := sliceCols(m.d, l.q, lo, lo+dh)
		kh := sliceCols(m.d, l.k, lo, lo+dh)
		vh := sliceCols(m.d, l.v, lo, lo+dh)
		l.qhs, l.khs, l.vhs = append(l.qhs, qh), append(l.khs, kh), append(l.vhs, vh)
		s := secureMatMul(m.d, m.cache, l.hkey("sc", h), l.hkey("sc", h)+"."+batchTag, qh, transposeShares(m.d, kh))
		s = scaleShares(m.d, s, scale)
		p, pub := secureSoftmax(m.d, l.hkey("sm", h)+"."+batchTag, l.causal, s)
		l.ps, l.probs = append(l.ps, p), append(l.probs, pub)
		ch := secureMatMul(m.d, m.cache, l.hkey("ctx", h), l.hkey("ctx", h)+"."+batchTag, p, vh)
		l.ctx = writeCols(m.d, l.ctx, ch, lo)
	}
	out := addBias(m.d, secureMatMul(m.d, m.cache, l.key("o"), l.key("o")+"."+batchTag, l.ctx, l.wo), l.bo)
	return scaleShares(m.d, addShares(m.d, x, out), ml.ResidualScale)
}

func (l *secureAttention) backward(m *Model, batchTag string, dout shared) shared {
	d, dh := l.dm, l.dm/l.heads
	scale := float32(1 / math.Sqrt(float64(dh)))
	batch := dout.rows()

	// y = (x + ctx·Wo + bo)·α
	dres := scaleShares(m.d, dout, ml.ResidualScale)
	dctx := secureMatMul(m.d, m.cache, l.key("dctx"), l.key("dctx")+"."+batchTag, dres, transposeShares(m.d, l.wo))
	gwo := secureMatMul(m.d, m.cache, l.key("dWo"), l.key("dWo")+"."+batchTag, transposeShares(m.d, l.ctx), dres)
	gbo := colSum(m.d, dres)

	dq := shared{s0: tensor.New(batch, d), s1: tensor.New(batch, d), t0: dout.t0, t1: dout.t1}
	dk := shared{s0: tensor.New(batch, d), s1: tensor.New(batch, d), t0: dout.t0, t1: dout.t1}
	dv := shared{s0: tensor.New(batch, d), s1: tensor.New(batch, d), t0: dout.t0, t1: dout.t1}
	for h := 0; h < l.heads; h++ {
		lo := h * dh
		dch := sliceCols(m.d, dctx, lo, lo+dh)
		dp := secureMatMul(m.d, m.cache, l.hkey("dP", h), l.hkey("dP", h)+"."+batchTag, dch, transposeShares(m.d, l.vhs[h]))
		dvh := secureMatMul(m.d, m.cache, l.hkey("dV", h), l.hkey("dV", h)+"."+batchTag, transposeShares(m.d, l.ps[h]), dch)
		ds := softmaxBackwardShares(m.d, l.probs[h], dp)
		ds = scaleShares(m.d, ds, scale)
		dqh := secureMatMul(m.d, m.cache, l.hkey("dQ", h), l.hkey("dQ", h)+"."+batchTag, ds, l.khs[h])
		dkh := secureMatMul(m.d, m.cache, l.hkey("dK", h), l.hkey("dK", h)+"."+batchTag, transposeShares(m.d, ds), l.qhs[h])
		dq = writeCols(m.d, dq, dqh, lo)
		dk = writeCols(m.d, dk, dkh, lo)
		dv = writeCols(m.d, dv, dvh, lo)
	}

	xT := transposeShares(m.d, l.x)
	gwq := secureMatMul(m.d, m.cache, l.key("dWq"), l.key("dWq")+"."+batchTag, xT, dq)
	gwk := secureMatMul(m.d, m.cache, l.key("dWk"), l.key("dWk")+"."+batchTag, xT, dk)
	gwv := secureMatMul(m.d, m.cache, l.key("dWv"), l.key("dWv")+"."+batchTag, xT, dv)
	gbq, gbk, gbv := colSum(m.d, dq), colSum(m.d, dk), colSum(m.d, dv)

	dx := dres
	dx = addShares(m.d, dx, secureMatMul(m.d, m.cache, l.key("dXq"), l.key("dXq")+"."+batchTag, dq, transposeShares(m.d, l.wq)))
	dx = addShares(m.d, dx, secureMatMul(m.d, m.cache, l.key("dXk"), l.key("dXk")+"."+batchTag, dk, transposeShares(m.d, l.wk)))
	dx = addShares(m.d, dx, secureMatMul(m.d, m.cache, l.key("dXv"), l.key("dXv")+"."+batchTag, dv, transposeShares(m.d, l.wv)))

	if l.hasGrad {
		l.dwq, l.dwk, l.dwv, l.dwo = addShares(m.d, l.dwq, gwq), addShares(m.d, l.dwk, gwk), addShares(m.d, l.dwv, gwv), addShares(m.d, l.dwo, gwo)
		l.dbq, l.dbk, l.dbv, l.dbo = addShares(m.d, l.dbq, gbq), addShares(m.d, l.dbk, gbk), addShares(m.d, l.dbv, gbv), addShares(m.d, l.dbo, gbo)
	} else {
		l.dwq, l.dwk, l.dwv, l.dwo = gwq, gwk, gwv, gwo
		l.dbq, l.dbk, l.dbv, l.dbo = gbq, gbk, gbv, gbo
		l.hasGrad = true
	}
	return dx
}

func (l *secureAttention) update(m *Model, lr float32) {
	if !l.hasGrad {
		return
	}
	l.wq = axpyInPlace(m.d, l.wq, -lr, l.dwq)
	l.wk = axpyInPlace(m.d, l.wk, -lr, l.dwk)
	l.wv = axpyInPlace(m.d, l.wv, -lr, l.dwv)
	l.wo = axpyInPlace(m.d, l.wo, -lr, l.dwo)
	l.bq = axpyInPlace(m.d, l.bq, -lr, l.dbq)
	l.bk = axpyInPlace(m.d, l.bk, -lr, l.dbk)
	l.bv = axpyInPlace(m.d, l.bv, -lr, l.dbv)
	l.bo = axpyInPlace(m.d, l.bo, -lr, l.dbo)
	l.hasGrad = false
}

// secureTransformer is attention followed by the two-layer feed-forward
// stack (plain secureDense machinery), each branch wrapped in the scaled
// residual — the secure counterpart of ml.TransformerBlock.
type secureTransformer struct {
	att      *secureAttention
	ff1, ff2 *secureDense

	y shared // attention output cache
}

func (l *secureTransformer) inDim() int  { return l.att.dm }
func (l *secureTransformer) outDim() int { return l.att.dm }

func (l *secureTransformer) prepare(cache *siteCache, batch int, dep *simtime.Task) *simtime.Task {
	last := l.att.prepare(cache, batch, dep)
	last = l.ff1.prepare(cache, batch, last)
	return l.ff2.prepare(cache, batch, last)
}

func (l *secureTransformer) forward(m *Model, batchTag string, x shared) shared {
	y := l.att.forward(m, batchTag, x)
	l.y = y
	h := l.ff2.forward(m, batchTag, l.ff1.forward(m, batchTag, y))
	return scaleShares(m.d, addShares(m.d, y, h), ml.ResidualScale)
}

func (l *secureTransformer) backward(m *Model, batchTag string, dout shared) shared {
	d1 := scaleShares(m.d, dout, ml.ResidualScale)
	dff := l.ff1.backward(m, batchTag, l.ff2.backward(m, batchTag, d1))
	dy := addShares(m.d, d1, dff)
	return l.att.backward(m, batchTag, dy)
}

func (l *secureTransformer) update(m *Model, lr float32) {
	l.att.update(m, lr)
	l.ff1.update(m, lr)
	l.ff2.update(m, lr)
}
